open Hrt_stats

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---- Summary ---- *)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.(check (float 0.)) "mean" 0. (Summary.mean s);
  Alcotest.(check (float 0.)) "variance" 0. (Summary.variance s)

let test_summary_basic () =
  let s = Summary.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  Alcotest.(check int) "count" 8 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Summary.mean s);
  (* Sample variance with n-1: sum sq dev = 32, / 7. *)
  Alcotest.(check (float 1e-9)) "variance" (32. /. 7.) (Summary.variance s);
  Alcotest.(check (float 0.)) "min" 2. (Summary.min s);
  Alcotest.(check (float 0.)) "max" 9. (Summary.max s);
  Alcotest.(check (float 0.)) "total" 40. (Summary.total s)

let test_summary_single () =
  let s = Summary.of_array [| 42. |] in
  Alcotest.(check (float 0.)) "mean" 42. (Summary.mean s);
  Alcotest.(check (float 0.)) "variance with 1 sample" 0. (Summary.variance s)

let test_summary_merge () =
  let xs = Array.init 50 (fun i -> float_of_int i) in
  let ys = Array.init 30 (fun i -> float_of_int (i * 3)) in
  let merged = Summary.merge (Summary.of_array xs) (Summary.of_array ys) in
  let direct = Summary.of_array (Array.append xs ys) in
  Alcotest.(check int) "count" (Summary.count direct) (Summary.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Summary.mean direct) (Summary.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Summary.variance direct)
    (Summary.variance merged);
  Alcotest.(check (float 0.)) "min" (Summary.min direct) (Summary.min merged);
  Alcotest.(check (float 0.)) "max" (Summary.max direct) (Summary.max merged)

let test_summary_merge_empty () =
  let s = Summary.of_array [| 1.; 2. |] in
  let e = Summary.create () in
  Alcotest.(check (float 0.)) "merge right empty" (Summary.mean s)
    (Summary.mean (Summary.merge s e));
  Alcotest.(check (float 0.)) "merge left empty" (Summary.mean s)
    (Summary.mean (Summary.merge e s))

let test_summary_int64 () =
  let s = Summary.create () in
  Summary.add_int64 s 1000L;
  Summary.add_int64 s 3000L;
  Alcotest.(check (float 0.)) "int64 mean" 2000. (Summary.mean s)

(* ---- Histogram ---- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:100. ~bins:10 in
  Histogram.add h 5.;
  Histogram.add h 15.;
  Histogram.add h 15.5;
  Histogram.add h 99.9;
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9);
  Alcotest.(check int) "total" 4 (Histogram.count h)

let test_histogram_edges () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Histogram.add h 0.;
  Histogram.add h 10.;
  Histogram.add h (-0.001);
  Alcotest.(check int) "lo inclusive" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "hi exclusive -> overflow" 1 (Histogram.overflow h);
  Alcotest.(check int) "below lo -> underflow" 1 (Histogram.underflow h)

let test_histogram_bounds () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Alcotest.(check (float 1e-9)) "bin lo" 4. (Histogram.bin_lo h 2);
  Alcotest.(check (float 1e-9)) "bin hi" 6. (Histogram.bin_hi h 2);
  Alcotest.(check int) "bins" 5 (Histogram.bins h)

let test_histogram_max_bin () =
  let h = Histogram.of_array ~lo:0. ~hi:10. ~bins:10 [| 5.2; 5.4; 5.9; 1.0 |] in
  Alcotest.(check int) "max bin" 5 (Histogram.max_bin h)

let test_histogram_invalid () =
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Histogram.create: lo >= hi")
    (fun () -> ignore (Histogram.create ~lo:1. ~hi:1. ~bins:2));
  Alcotest.check_raises "bins <= 0" (Invalid_argument "Histogram.create: bins <= 0")
    (fun () -> ignore (Histogram.create ~lo:0. ~hi:1. ~bins:0))

let test_histogram_render () =
  let h = Histogram.of_array ~lo:0. ~hi:2. ~bins:2 [| 0.5; 1.5; 1.7 |] in
  let s = Histogram.render ~width:10 h in
  Alcotest.(check bool) "mentions counts" true
    (String.length s > 0 && String.contains s '#')

(* Regression: render used to compute [count * width] in int before
   dividing by the peak — counts past [max_int / width] overflowed and
   flipped the bar length negative ([String.make] then raised). Counts
   near max_int must render a full-width bar. *)
let test_histogram_render_huge_counts () =
  let width = 50 in
  let huge = max_int / width * 2 in
  let h = Histogram.of_counts ~lo:0. ~hi:3. [| huge; huge / 2; 1 |] in
  let s = Histogram.render ~width h in
  let bar line =
    let n = ref 0 in
    String.iter (fun c -> if c = '#' then incr n) line;
    !n
  in
  (match String.split_on_char '\n' s with
  | peak_line :: half_line :: _ ->
    Alcotest.(check int) "peak bin renders full width" width (bar peak_line);
    Alcotest.(check int) "half-peak bin renders half width" (width / 2)
      (bar half_line)
  | _ -> Alcotest.fail "render produced too few lines");
  Alcotest.(check int) "totals accumulate" (huge + (huge / 2) + 1)
    (Histogram.count h)

(* ---- Percentile ---- *)

let test_percentile_basic () =
  let p = Percentile.of_array [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "p0" 1. (Percentile.value p 0.);
  Alcotest.(check (float 1e-9)) "median" 3. (Percentile.median p);
  Alcotest.(check (float 1e-9)) "p100" 5. (Percentile.value p 100.);
  Alcotest.(check (float 1e-9)) "p25 interpolated" 2. (Percentile.value p 25.)

let test_percentile_interpolation () =
  let p = Percentile.of_array [| 10.; 20. |] in
  Alcotest.(check (float 1e-9)) "p50 between" 15. (Percentile.value p 50.)

let test_percentile_unsorted_input () =
  let p = Percentile.of_array [| 5.; 1.; 3.; 2.; 4. |] in
  Alcotest.(check (float 1e-9)) "median of unsorted" 3. (Percentile.median p)

(* NaN regressions: on the seed code these silently poisoned sorts (via
   polymorphic compare), bin indices, and running means. *)
let test_percentile_rejects_nan () =
  let p = Percentile.of_array [| 1.; 2.; 3. |] in
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Percentile.add: NaN sample") (fun () ->
      Percentile.add p Float.nan);
  Alcotest.(check (float 1e-9)) "median unpoisoned" 2. (Percentile.median p)

let test_histogram_rejects_nan () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Histogram.add: NaN sample") (fun () ->
      Histogram.add h Float.nan);
  Alcotest.(check int) "no phantom sample" 0 (Histogram.count h)

let test_summary_rejects_nan () =
  let s = Summary.of_array [| 1.; 3. |] in
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Summary.add: NaN sample") (fun () ->
      Summary.add s Float.nan);
  Alcotest.(check (float 1e-9)) "mean unpoisoned" 2. (Summary.mean s)

let test_percentile_errors () =
  let p = Percentile.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Percentile.value: empty")
    (fun () -> ignore (Percentile.median p));
  Percentile.add p 1.;
  Alcotest.check_raises "range" (Invalid_argument "Percentile.value: p out of range")
    (fun () -> ignore (Percentile.value p 101.))

(* ---- Table ---- *)

let test_table_render () =
  let t =
    Table.create ~title:"demo"
      ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.row t [ "alpha"; "1" ];
  Table.row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0
    && contains_sub s "== demo ==");
  Alcotest.(check bool) "right alignment pads" true
    (contains_sub s "|     1 |");
  Alcotest.(check int) "rows" 2 (Table.rows t)

let test_table_mismatch () =
  let t = Table.create ~title:"t" ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "cell count"
    (Invalid_argument "Table.row: 2 cells for 1 columns (table \"t\")")
    (fun () -> Table.row t [ "x"; "y" ])

let test_table_rowf () =
  let t =
    Table.create ~title:"t" ~columns:[ ("a", Table.Left); ("b", Table.Left) ]
  in
  Table.rowf t "%d\t%s" 42 "hi";
  Alcotest.(check int) "one row" 1 (Table.rows t)

let test_cells () =
  Alcotest.(check string) "integral float" "42" (Table.cell_f 42.0);
  Alcotest.(check string) "pct" "12.5%" (Table.cell_pct 12.49999)

(* ---- Csv ---- *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csv.escape "a\"b")

let test_csv_line () =
  Alcotest.(check string) "line" "a,\"b,c\",d" (Csv.line [ "a"; "b,c"; "d" ])

let test_csv_write () =
  let path = Filename.temp_file "hrt" ".csv" in
  Csv.write ~path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "content" [ "x,y"; "1,2"; "3,4" ]
    (List.rev !lines)

let suite =
  [
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary basic moments" `Quick test_summary_basic;
    Alcotest.test_case "summary single sample" `Quick test_summary_single;
    Alcotest.test_case "summary merge = concat" `Quick test_summary_merge;
    Alcotest.test_case "summary merge with empty" `Quick test_summary_merge_empty;
    Alcotest.test_case "summary int64" `Quick test_summary_int64;
    Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
    Alcotest.test_case "histogram edge cases" `Quick test_histogram_edges;
    Alcotest.test_case "histogram bin bounds" `Quick test_histogram_bounds;
    Alcotest.test_case "histogram max bin" `Quick test_histogram_max_bin;
    Alcotest.test_case "histogram invalid args" `Quick test_histogram_invalid;
    Alcotest.test_case "histogram render" `Quick test_histogram_render;
    Alcotest.test_case "histogram render huge counts" `Quick
      test_histogram_render_huge_counts;
    Alcotest.test_case "percentile basic" `Quick test_percentile_basic;
    Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolation;
    Alcotest.test_case "percentile unsorted input" `Quick test_percentile_unsorted_input;
    Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
    Alcotest.test_case "percentile rejects NaN" `Quick test_percentile_rejects_nan;
    Alcotest.test_case "histogram rejects NaN" `Quick test_histogram_rejects_nan;
    Alcotest.test_case "summary rejects NaN" `Quick test_summary_rejects_nan;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table column mismatch" `Quick test_table_mismatch;
    Alcotest.test_case "table rowf" `Quick test_table_rowf;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "csv escaping" `Quick test_csv_escape;
    Alcotest.test_case "csv line" `Quick test_csv_line;
    Alcotest.test_case "csv write file" `Quick test_csv_write;
  ]
