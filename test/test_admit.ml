(* Analytical admission: oracle verdicts + certificates, the memoized
   service, the typed Admission.verdict API, and oracle/simulator
   cross-validation (test-scale corpus; CI runs the full one). *)

open Hrt_engine
open Hrt_core
open Hrt_analysis

let to_alcotest = QCheck_alcotest.to_alcotest

let phi_overhead = Taskset.overhead_of_platform Hrt_hw.Platform.phi

let p ~period_us ~slice_us =
  Constraints.periodic ~period:(Time.us period_us) ~slice:(Time.us slice_us) ()

let production ?(policy = Config.Edf) tasks =
  Taskset.make ~config:{ Config.default with Config.policy }
    ~overhead_ns:phi_overhead tasks

(* Full CPU, zero overhead: rejections here are raw-infeasibility claims. *)
let raw ?(policy = Config.Edf) tasks =
  Taskset.make
    ~config:
      {
        Config.default with
        Config.policy;
        util_limit = 1.0;
        strict_reservations = false;
        sporadic_reservation = 1.0;
      }
    ~overhead_ns:0L tasks

let check_ok name ts r =
  match Oracle.check ts r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: certificate fails replay: %s" name msg

(* ---- oracle verdicts ---- *)

let test_edf_admit () =
  let ts = production [ p ~period_us:1000 ~slice_us:300; p ~period_us:2000 ~slice_us:400 ] in
  let r = Oracle.analyze ts in
  Alcotest.(check bool) "admitted" true (Admission.admitted r.Oracle.verdict);
  (match r.Oracle.certs with
  | [ Oracle.Edf_demand { horizon; _ } ] ->
    Alcotest.(check int64) "hyperperiod" (Time.ms 2) horizon
  | _ -> Alcotest.fail "expected exactly one EDF demand certificate");
  check_ok "edf admit" ts r

let test_edf_reject () =
  let ts = production [ p ~period_us:100 ~slice_us:90 ] in
  let r = Oracle.analyze ts in
  (match r.Oracle.verdict with
  | Admission.Rejected { reason = Admission.Rejection.Hyperperiod_demand { interval; demand } } ->
    Alcotest.(check int64) "interval" (Time.us 100) interval;
    Alcotest.(check int64) "demand" 99_231L demand
  | v ->
    Alcotest.failf "expected demand rejection, got %s"
      (Format.asprintf "%a" Admission.pp_verdict v));
  Alcotest.(check bool) "exact infeasibility" true (Oracle.exact_infeasible ts r);
  check_ok "edf reject" ts r

(* Harmonic set at 100% utilization: exactly RM-schedulable, above the
   Liu-Layland bound — the oracle admits what the runtime ledger's
   sufficient test refuses. *)
let test_rm_exact_beats_liu_layland () =
  let tasks = [ p ~period_us:100 ~slice_us:50; p ~period_us:200 ~slice_us:100 ] in
  let ts = raw ~policy:Config.Rm tasks in
  let r = Oracle.analyze ts in
  Alcotest.(check bool) "oracle admits" true (Admission.admitted r.Oracle.verdict);
  (match r.Oracle.certs with
  | [ Oracle.Rm_points responses ] ->
    Alcotest.(check int) "one point per task" 2 (List.length responses)
  | _ -> Alcotest.fail "expected RM scheduling-point certificate");
  check_ok "rm exact" ts r;
  let ledger =
    Admission.create
      { Config.default with Config.policy = Config.Rm; util_limit = 1.0;
        strict_reservations = false }
  in
  let admit_one c =
    Admission.request ledger ~now:0L ~old_constr:(Constraints.aperiodic ()) c
  in
  ignore (admit_one (List.nth tasks 0));
  match admit_one (List.nth tasks 1) with
  | Admission.Rejected { reason = Admission.Rejection.Utilization_bound _ } -> ()
  | v ->
    Alcotest.failf "ledger should reject above Liu-Layland, got %s"
      (Format.asprintf "%a" Admission.pp_verdict v)

let test_rm_blocking () =
  let ts = raw ~policy:Config.Rm [ p ~period_us:10 ~slice_us:6; p ~period_us:14 ~slice_us:7 ] in
  let r = Oracle.analyze ts in
  Alcotest.(check bool) "rejected" false (Admission.admitted r.Oracle.verdict);
  (match r.Oracle.certs with
  | [ Oracle.Rm_blocking { period; chain; _ } ] ->
    Alcotest.(check int64) "blocked task" (Time.us 14) period;
    Alcotest.(check int) "one blocking link" 1 (List.length chain)
  | _ -> Alcotest.fail "expected RM blocking certificate");
  Alcotest.(check bool) "exact infeasibility" true (Oracle.exact_infeasible ts r);
  check_ok "rm blocking" ts r

let test_sporadic_density () =
  let s size_us deadline_us =
    Constraints.sporadic ~size:(Time.us size_us) ~deadline:(Time.us deadline_us) ()
  in
  let fits = production [ s 90 1000 ] in
  let r = Oracle.analyze fits in
  Alcotest.(check bool) "9% density fits" true (Admission.admitted r.Oracle.verdict);
  check_ok "density fits" fits r;
  let over = production [ s 90 1000; s 50 1000 ] in
  let r = Oracle.analyze over in
  (match r.Oracle.verdict with
  | Admission.Rejected { reason = Admission.Rejection.Density_bound _ } -> ()
  | _ -> Alcotest.fail "expected density rejection");
  Alcotest.(check bool) "density is sufficient-only" false
    (Oracle.exact_infeasible over r);
  check_ok "density over" over r

let test_structural_rejection () =
  let ts = production [ Constraints.periodic ~period:(Time.us 10) ~slice:(Time.us 11) () ] in
  let r = Oracle.analyze ts in
  (match r.Oracle.verdict with
  | Admission.Rejected { reason = Admission.Rejection.Invalid _ } -> ()
  | _ -> Alcotest.fail "expected structural rejection");
  Alcotest.(check int) "no certificates" 0 (List.length r.Oracle.certs);
  check_ok "structural" ts r

(* ---- certificate tampering: the checker must refuse ---- *)

let test_check_rejects_tampering () =
  let ts = production [ p ~period_us:1000 ~slice_us:300 ] in
  let r = Oracle.analyze ts in
  check_ok "clean" ts r;
  let tampered_cert =
    match r.Oracle.certs with
    | [ Oracle.Edf_demand { horizon; interval; demand } ] ->
      [ Oracle.Edf_demand { horizon; interval; demand = Time.(demand + 1L) } ]
    | _ -> Alcotest.fail "expected EDF certificate"
  in
  (match Oracle.check ts { r with Oracle.certs = tampered_cert } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered demand must not replay");
  let flipped =
    {
      r with
      Oracle.verdict =
        Admission.Rejected
          {
            reason =
              Admission.Rejection.Hyperperiod_demand
                { interval = Time.us 1000; demand = 0L };
          };
    }
  in
  match Oracle.check ts flipped with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "flipped verdict must not replay"

(* ---- golden verdicts: the Fig 6-9 feasibility edge on Phi ---- *)

(* Single periodic task at 50% slice across the Fig 6 period grid, under
   the production view (79% capacity, Phi's 9231ns per-arrival charge).
   The paper's observed edge: periods at and below ~30us are infeasible
   purely from scheduler overhead; 40us and up clear it. *)
let test_golden_feasibility_edge () =
  let golden =
    [
      (1000, "admitted (headroom 0.280769)");
      (100, "admitted (headroom 0.197690)");
      (50, "admitted (headroom 0.105380)");
      (40, "admitted (headroom 0.059225)");
      (30, "rejected: demand 24231ns exceeds supply in interval [0,30000ns]");
      (20, "rejected: demand 19231ns exceeds supply in interval [0,20000ns]");
      (10, "rejected: demand 14231ns exceeds supply in interval [0,10000ns]");
    ]
  in
  List.iter
    (fun (period_us, expect) ->
      let ts = production [ p ~period_us ~slice_us:(period_us / 2) ] in
      let r = Oracle.analyze ts in
      Alcotest.(check string)
        (Printf.sprintf "period %dus" period_us)
        expect
        (Format.asprintf "%a" Admission.pp_verdict r.Oracle.verdict);
      check_ok "golden" ts r)
    golden

(* ---- taskset canonicalization ---- *)

let test_fingerprint_permutation () =
  let a = p ~period_us:100 ~slice_us:20 in
  let b = p ~period_us:200 ~slice_us:50 in
  let c = p ~period_us:500 ~slice_us:100 in
  let f tasks = Taskset.fingerprint (production tasks) in
  Alcotest.(check string) "permutation invariant" (f [ a; b; c ]) (f [ c; a; b ]);
  Alcotest.(check bool) "different set differs" true (f [ a; b ] <> f [ a; c ]);
  let g policy = Taskset.fingerprint (production ~policy [ a; b ]) in
  Alcotest.(check bool) "policy is part of the key" true
    (g Config.Edf <> g Config.Rm)

(* ---- service cache ---- *)

let corpus ~n ~seed =
  let rng = Rng.create seed in
  List.init n (fun i ->
      let tasks =
        List.init
          (1 + Rng.int rng 3)
          (fun _ ->
            let period_us = 50 + Rng.int rng 950 in
            let slice_us = 1 + Rng.int rng (period_us / 2) in
            p ~period_us ~slice_us)
      in
      production ~policy:(if i mod 2 = 0 then Config.Edf else Config.Rm) tasks)

let test_cache_warm_equals_cold () =
  let svc = Service.create () in
  let ts = production [ p ~period_us:100 ~slice_us:30; p ~period_us:250 ~slice_us:50 ] in
  let cold = Service.query svc ts in
  let warm = Service.query svc ts in
  Alcotest.(check bool) "identical result" true (cold = warm);
  let s = Service.stats svc in
  Alcotest.(check int) "one miss" 1 s.Service.misses;
  Alcotest.(check int) "one hit" 1 s.Service.hits;
  (* A permutation of the same multiset is a hit, not a new analysis. *)
  let permuted =
    production [ p ~period_us:250 ~slice_us:50; p ~period_us:100 ~slice_us:30 ]
  in
  let r = Service.query svc permuted in
  Alcotest.(check bool) "permutation served from cache" true (r = cold);
  Alcotest.(check int) "still one miss" 1 (Service.stats svc).Service.misses

let test_cache_eviction_fifo () =
  let svc = Service.create ~shards:1 ~capacity:2 () in
  let sets = corpus ~n:3 ~seed:7L in
  List.iter (fun ts -> ignore (Service.query svc ts)) sets;
  let s = Service.stats svc in
  Alcotest.(check int) "third insert evicts the first" 1 s.Service.evictions;
  Alcotest.(check int) "population capped" 2 s.Service.entries;
  ignore (Service.query svc (List.hd sets));
  Alcotest.(check int) "evicted entry re-analyzed" 4
    (Service.stats svc).Service.misses

let test_batch_jobs_identical () =
  let sets = corpus ~n:40 ~seed:11L in
  let seq = Service.batch (Service.create ()) sets in
  let pool = Hrt_par.Par.Pool.create ~jobs:4 in
  let par = Service.batch ~pool (Service.create ()) sets in
  Alcotest.(check bool) "jobs=1 and jobs=4 byte-identical" true (seq = par);
  (* Re-batching the same corpus is all hits and returns the same list. *)
  let svc = Service.create () in
  let first = Service.batch svc sets in
  let second = Service.batch ~pool svc sets in
  Alcotest.(check bool) "warm batch identical" true (first = second);
  let s = Service.stats svc in
  Alcotest.(check int) "second pass all hits" (List.length sets) s.Service.hits

(* Regression: two domains missing the same fingerprint used to both run
   Oracle.analyze and both count a miss (and both insert, leaving two
   eviction-queue entries for one key). Single-flight collapses the race:
   exactly one analysis, one miss, one entry, one eviction slot — however
   many domains hammer the key. *)
let test_cache_single_flight () =
  let ts =
    production [ p ~period_us:700 ~slice_us:180; p ~period_us:900 ~slice_us:200 ]
  in
  let domains = 4 and rounds = 8 in
  let svc = Service.create ~shards:1 ~capacity:2 () in
  let gate = Atomic.make 0 in
  let workers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr gate;
            while Atomic.get gate < domains do
              Domain.cpu_relax ()
            done;
            List.init rounds (fun _ -> Service.query svc ts)))
  in
  let results = List.concat_map Domain.join workers in
  let expect = List.hd results in
  List.iter
    (fun r -> Alcotest.(check bool) "all domains same result" true (r = expect))
    results;
  let s = Service.stats svc in
  Alcotest.(check int) "exactly one analysis ran" 1 s.Service.misses;
  Alcotest.(check int) "every other query is a hit"
    ((domains * rounds) - 1)
    s.Service.hits;
  Alcotest.(check int) "one cache entry" 1 s.Service.entries;
  (* One eviction-queue slot for the hammered key: at capacity 2, two more
     distinct inserts evict it exactly once (a double insert would leave a
     second queue entry and evict twice). *)
  List.iter
    (fun other -> ignore (Service.query svc other))
    (corpus ~n:2 ~seed:21L);
  Alcotest.(check int) "hammered key held one eviction slot" 1
    (Service.stats svc).Service.evictions

(* The single-flight accounting makes cache stats independent of the job
   count: a corpus with duplicates sees the same hit/miss totals at
   jobs=1 and jobs=4. *)
let test_cache_stats_job_invariant () =
  let base = corpus ~n:12 ~seed:17L in
  let sets = base @ base @ base in
  let run jobs =
    let svc = Service.create () in
    let results =
      if jobs > 1 then
        Service.batch ~pool:(Hrt_par.Par.Pool.create ~jobs) svc sets
      else Service.batch svc sets
    in
    (results, Service.stats svc)
  in
  let r1, s1 = run 1 in
  let r4, s4 = run 4 in
  Alcotest.(check bool) "results identical" true (r1 = r4);
  Alcotest.(check int) "same misses" s1.Service.misses s4.Service.misses;
  Alcotest.(check int) "same hits" s1.Service.hits s4.Service.hits;
  Alcotest.(check int) "same entries" s1.Service.entries s4.Service.entries

let test_service_probes () =
  let sink = Hrt_obs.Sink.create ~trace:false () in
  let svc = Service.create () in
  Service.register_probes svc sink;
  ignore (Service.batch svc (corpus ~n:4 ~seed:3L));
  Hrt_obs.Sink.sample_probes sink;
  let rows = Hrt_obs.Metrics.rows (Hrt_obs.Sink.metrics sink) in
  List.iter
    (fun name ->
      if not (List.exists (List.mem name) rows) then
        Alcotest.failf "probe %s not exported" name)
    [ "admit.cache.hits"; "admit.cache.misses"; "admit.cache.evictions";
      "admit.cache.entries" ]

(* ---- typed verdict API ---- *)

let test_verdict_api () =
  let adm h = Admission.Admitted { headroom = h } in
  let rej =
    Admission.Rejected
      { reason = Admission.Rejection.Overload_shed { boundary = 2 } }
  in
  Alcotest.(check bool) "rejection wins" false
    (Admission.admitted (Admission.worse (adm 0.5) rej));
  (match Admission.worse (adm 0.5) (adm 0.2) with
  | Admission.Admitted { headroom } ->
    Alcotest.(check (float 1e-9)) "smaller headroom wins" 0.2 headroom
  | _ -> Alcotest.fail "two admissions combine to an admission");
  Alcotest.(check (option (float 1e-9))) "headroom of admission" (Some 0.3)
    (Admission.headroom (adm 0.3));
  Alcotest.(check (option (float 1e-9))) "headroom of rejection" None
    (Admission.headroom rej)

(* The Obs admission event and downstream dashboards key on these tags:
   renaming one is a compatibility break and must be deliberate. *)
let test_rejection_names_stable () =
  let open Admission.Rejection in
  let cases =
    [
      (Invalid { msg = "x" }, "invalid");
      (Granularity { period = 1L; slice = 1L }, "granularity");
      (Utilization_bound { util = 1.; bound = 0.79 }, "utilization-bound");
      (Density_bound { density = 1.; bound = 0.099 }, "density-bound");
      (Hyperperiod_demand { interval = 1L; demand = 2L }, "hyperperiod-demand");
      (Past_deadline { arrival = 2L; deadline = 1L }, "past-deadline");
      (Overload_shed { boundary = 1 }, "overload-shed");
    ]
  in
  List.iter
    (fun (reason, expect) ->
      Alcotest.(check string) expect expect (name reason))
    cases

(* ---- randomized properties ---- *)

(* Any task set the generator can produce — feasible, infeasible, mixed
   sporadics, either policy, either capacity view — yields a result whose
   certificate replays through the independent checker. *)
let prop_certificates_replay =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* raw_view = bool in
      let* policy = oneofl [ Config.Edf; Config.Rm ] in
      let* tasks =
        list_size (return n)
          (let* sporadic = frequency [ (4, return false); (1, return true) ] in
           if sporadic then
             let* size_us = int_range 1 200 in
             let* deadline_us = int_range 100 2000 in
             return
               (Constraints.sporadic ~size:(Time.us size_us)
                  ~deadline:(Time.us deadline_us) ())
           else
             let* period_us = oneofl [ 10; 20; 50; 100; 250; 500; 1000 ] in
             let* slice_pct = int_range 1 99 in
             return (p ~period_us ~slice_us:(Stdlib.max 1 (period_us * slice_pct / 100))))
      in
      return (if raw_view then raw ~policy tasks else production ~policy tasks))
  in
  QCheck.Test.make ~name:"oracle certificates replay" ~count:300
    (QCheck.make gen) (fun ts ->
      match Oracle.check ts (Oracle.analyze ts) with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "certificate replay: %s" msg)

(* Oracle/simulator/ledger agreement corridor, both policies. The CI
   `admit` job runs the 200-set corpus; this keeps a smaller one in every
   `dune runtest`. *)
let test_cross_validation policy () =
  let ctx = Hrt_harness.Exp.Ctx.make ~policy () in
  let o = Hrt_harness.Admit_xval.run ~ctx ~sets:20 ~policy () in
  Alcotest.(check (list string)) "no disagreements" [] o.Hrt_harness.Admit_xval.disagreements;
  Alcotest.(check bool) "corpus straddles the edge" true
    (o.Hrt_harness.Admit_xval.admitted > 0 && o.Hrt_harness.Admit_xval.infeasible > 0)

let suite =
  [
    Alcotest.test_case "EDF admit + certificate" `Quick test_edf_admit;
    Alcotest.test_case "EDF reject + witness" `Quick test_edf_reject;
    Alcotest.test_case "RM exact beats Liu-Layland" `Quick
      test_rm_exact_beats_liu_layland;
    Alcotest.test_case "RM blocking chain" `Quick test_rm_blocking;
    Alcotest.test_case "sporadic density" `Quick test_sporadic_density;
    Alcotest.test_case "structural rejection" `Quick test_structural_rejection;
    Alcotest.test_case "checker rejects tampering" `Quick
      test_check_rejects_tampering;
    Alcotest.test_case "golden Fig 6-9 feasibility edge" `Quick
      test_golden_feasibility_edge;
    Alcotest.test_case "fingerprint canonicalization" `Quick
      test_fingerprint_permutation;
    Alcotest.test_case "cache warm equals cold" `Quick
      test_cache_warm_equals_cold;
    Alcotest.test_case "cache eviction FIFO" `Quick test_cache_eviction_fifo;
    Alcotest.test_case "batch jobs=1 vs jobs=4" `Quick test_batch_jobs_identical;
    Alcotest.test_case "cache single-flight" `Quick test_cache_single_flight;
    Alcotest.test_case "cache stats job-invariant" `Quick
      test_cache_stats_job_invariant;
    Alcotest.test_case "cache probes exported" `Quick test_service_probes;
    Alcotest.test_case "verdict combine API" `Quick test_verdict_api;
    Alcotest.test_case "rejection names stable" `Quick
      test_rejection_names_stable;
    to_alcotest prop_certificates_replay;
    Alcotest.test_case "cross-validation EDF" `Slow
      (test_cross_validation Config.Edf);
    Alcotest.test_case "cross-validation RM" `Slow
      (test_cross_validation Config.Rm);
  ]
