open Hrt_engine

let test_schedule_order () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule eng ~at:20L (fun _ -> log := 2 :: !log));
  ignore (Engine.schedule eng ~at:10L (fun _ -> log := 1 :: !log));
  ignore (Engine.schedule eng ~at:30L (fun _ -> log := 3 :: !log));
  Engine.run eng;
  Alcotest.(check (list int)) "execution order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int64) "final time" 30L (Engine.now eng)

let test_schedule_past_rejected () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~at:10L (fun eng ->
      try
        ignore (Engine.schedule eng ~at:5L (fun _ -> ()));
        Alcotest.fail "past schedule accepted"
      with Invalid_argument _ -> ()));
  Engine.run eng

let test_schedule_after () =
  let eng = Engine.create () in
  let fired_at = ref 0L in
  ignore (Engine.schedule eng ~at:100L (fun eng ->
      ignore (Engine.schedule_after eng ~after:50L (fun eng ->
          fired_at := Engine.now eng))));
  Engine.run eng;
  Alcotest.(check int64) "relative schedule" 150L !fired_at

let test_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule eng ~at:10L (fun _ -> fired := true) in
  Engine.cancel eng h;
  Engine.run eng;
  Alcotest.(check bool) "cancelled did not fire" false !fired

let test_run_until () =
  let eng = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule eng ~at:(Int64.of_int (i * 10)) (fun _ -> incr count))
  done;
  Engine.run ~until:55L eng;
  Alcotest.(check int) "only events <= until" 5 !count;
  Alcotest.(check int64) "clock advanced to until" 55L (Engine.now eng);
  Engine.run eng;
  Alcotest.(check int) "rest run later" 10 !count

let test_stop () =
  let eng = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Engine.schedule eng ~at:(Int64.of_int i) (fun eng ->
           incr count;
           if !count = 3 then Engine.stop eng))
  done;
  Engine.run eng;
  Alcotest.(check int) "stopped after 3" 3 !count

let test_max_events () =
  let eng = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule eng ~at:(Int64.of_int i) (fun _ -> incr count))
  done;
  Engine.run ~max_events:4 eng;
  Alcotest.(check int) "bounded" 4 !count

let test_freeze_defers_events () =
  let eng = Engine.create () in
  let fired_at = ref 0L in
  ignore (Engine.schedule eng ~at:10L (fun eng -> Engine.freeze eng ~until:100L));
  ignore (Engine.schedule eng ~at:50L (fun eng -> fired_at := Engine.now eng));
  Engine.run eng;
  Alcotest.(check int64) "deferred to window end" 100L !fired_at

let test_freeze_preserves_order () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule eng ~at:10L (fun eng -> Engine.freeze eng ~until:100L));
  ignore (Engine.schedule eng ~at:20L (fun _ -> log := "a" :: !log));
  ignore (Engine.schedule eng ~at:30L (fun _ -> log := "b" :: !log));
  Engine.run eng;
  Alcotest.(check (list string)) "order kept" [ "a"; "b" ] (List.rev !log)

let test_frozen_overlap () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~at:10L (fun eng -> Engine.freeze eng ~until:30L));
  ignore (Engine.schedule eng ~at:60L (fun eng -> Engine.freeze eng ~until:80L));
  Engine.run eng;
  Alcotest.(check int64) "full windows" 40L (Engine.frozen_overlap eng 0L 100L);
  Alcotest.(check int64) "partial overlap" 10L (Engine.frozen_overlap eng 20L 60L);
  Alcotest.(check int64) "no overlap" 0L (Engine.frozen_overlap eng 31L 59L);
  Alcotest.(check int64) "empty interval" 0L (Engine.frozen_overlap eng 50L 50L);
  Alcotest.(check int64) "total" 40L (Engine.total_frozen eng)

let test_freeze_extension () =
  let eng = Engine.create () in
  ignore
    (Engine.schedule eng ~at:10L (fun eng ->
         Engine.freeze eng ~until:30L;
         Engine.freeze eng ~until:50L));
  let fired_at = ref 0L in
  ignore (Engine.schedule eng ~at:20L (fun eng -> fired_at := Engine.now eng));
  Engine.run eng;
  Alcotest.(check int64) "extended window" 50L !fired_at;
  Alcotest.(check int64) "one merged window" 40L (Engine.frozen_overlap eng 0L 100L)

let test_determinism () =
  (* Two engines with the same seed and same construction produce the same
     event trace. *)
  let trace seed =
    let eng = Engine.create ~seed () in
    let log = ref [] in
    let rng = Engine.rng eng in
    for _ = 1 to 50 do
      let t = Int64.of_int (Rng.int rng 1000) in
      ignore
        (Engine.schedule eng ~at:t (fun eng ->
             log := Engine.now eng :: !log))
    done;
    Engine.run eng;
    !log
  in
  Alcotest.(check (list int64)) "identical traces" (trace 99L) (trace 99L)

let test_steady_state_allocation () =
  (* The zero-allocation contract: a steady-state run driven by a cached
     action must not grow the major heap. The only per-event allocations
     allowed are the boxed int64s for the advancing clock, which die in the
     minor heap; the queue itself (pool + wheel) recycles entries in place.
     Bound the total allocation rate and the words promoted by minor GCs. *)
  let eng = Engine.create () in
  let remaining = ref 10_000 in
  let action = ref (Engine.Callback (fun _ -> ())) in
  let key =
    Engine.register_source eng (fun eng ->
        if !remaining > 0 then begin
          decr remaining;
          ignore (Engine.schedule_action_after eng ~after:3L !action)
        end)
  in
  action := Engine.Timer_fire key;
  ignore (Engine.schedule_action eng ~at:1L !action);
  (* Warm-up: let the entry pool and wheel reach steady state. *)
  Engine.run ~until:2_000L eng;
  let measured = !remaining in
  Alcotest.(check bool) "warm-up ran" true (measured > 0 && measured < 10_000);
  Gc.full_major ();
  let stat0 = Gc.quick_stat () in
  let bytes0 = Gc.allocated_bytes () in
  Engine.run eng;
  let bytes1 = Gc.allocated_bytes () in
  let stat1 = Gc.quick_stat () in
  Alcotest.(check int) "all events ran" 0 !remaining;
  let per_event = (bytes1 -. bytes0) /. float_of_int measured in
  if per_event > 64. then
    Alcotest.failf "allocation regression: %.1f bytes/event (bound 64)"
      per_event;
  let promoted = stat1.Gc.promoted_words -. stat0.Gc.promoted_words in
  if promoted > 256. then
    Alcotest.failf "steady-state run promoted %.0f words to the major heap"
      promoted

let suite =
  [
    Alcotest.test_case "schedule order" `Quick test_schedule_order;
    Alcotest.test_case "past schedule rejected" `Quick test_schedule_past_rejected;
    Alcotest.test_case "schedule_after" `Quick test_schedule_after;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "run until" `Quick test_run_until;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "max_events" `Quick test_max_events;
    Alcotest.test_case "freeze defers events" `Quick test_freeze_defers_events;
    Alcotest.test_case "freeze preserves order" `Quick test_freeze_preserves_order;
    Alcotest.test_case "frozen overlap accounting" `Quick test_frozen_overlap;
    Alcotest.test_case "freeze extension merges" `Quick test_freeze_extension;
    Alcotest.test_case "determinism per seed" `Quick test_determinism;
    Alcotest.test_case "steady-state allocation bound" `Quick
      test_steady_state_allocation;
  ]
