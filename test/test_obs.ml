open Hrt_engine
open Hrt_core
open Hrt_obs

(* ---- metrics registry ---- *)

let test_counter_identity () =
  let m = Metrics.create () in
  let c1 = Metrics.counter m "x" in
  let c2 = Metrics.counter m "x" in
  Metrics.incr c1;
  Metrics.add c2 2;
  (* Same name + label resolves to the same instrument. *)
  Alcotest.(check int) "shared count" 3 (Metrics.counter_value c1);
  Alcotest.(check int) "one instrument" 1 (Metrics.size m)

let test_cpu_label_separates () =
  let m = Metrics.create () in
  let a = Metrics.counter m ~cpu:0 "x" in
  let b = Metrics.counter m ~cpu:1 "x" in
  let g = Metrics.counter m "x" in
  Metrics.incr a;
  Metrics.incr a;
  Metrics.incr b;
  Alcotest.(check int) "cpu 0" 2 (Metrics.counter_value a);
  Alcotest.(check int) "cpu 1" 1 (Metrics.counter_value b);
  Alcotest.(check int) "global" 0 (Metrics.counter_value g);
  Alcotest.(check int) "three instruments" 3 (Metrics.size m)

let test_kind_mismatch_rejected () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Metrics.gauge: \"x\" is not a gauge") (fun () ->
      ignore (Metrics.gauge m "x"))

let test_gauge_watermark () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "hwm" in
  Metrics.watermark g (-5.);
  Alcotest.(check (float 0.)) "first call sets" (-5.) (Metrics.gauge_value g);
  Metrics.watermark g (-9.);
  Alcotest.(check (float 0.)) "lower ignored" (-5.) (Metrics.gauge_value g);
  Metrics.watermark g 3.;
  Alcotest.(check (float 0.)) "higher wins" 3. (Metrics.gauge_value g)

let test_histo_matches_percentile () =
  let m = Metrics.create () in
  let h = Metrics.histo m "lat" in
  let p = Hrt_stats.Percentile.create () in
  let r = Rng.create 9L in
  for _ = 1 to 500 do
    let v = Rng.float r *. 1000. in
    Metrics.observe h v;
    Hrt_stats.Percentile.add p v
  done;
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f" q)
        (Hrt_stats.Percentile.value p q)
        (Metrics.histo_percentile h q))
    [ 50.; 90.; 99.; 100. ];
  Alcotest.(check int) "count" 500 (Metrics.histo_count h)

let test_rows_shape () =
  let m = Metrics.create () in
  Metrics.incr (Metrics.counter m ~cpu:1 "b");
  Metrics.set (Metrics.gauge m "a") 2.5;
  Metrics.observe (Metrics.histo m "c") 4.;
  let rows = Metrics.rows m in
  Alcotest.(check int) "row count" 3 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "width matches header"
        (List.length Metrics.header)
        (List.length row))
    rows;
  (* Sorted by (name, cpu). *)
  Alcotest.(check (list string)) "sort order" [ "a"; "b"; "c" ]
    (List.map List.hd rows)

(* ---- sink ---- *)

let test_null_sink_noop () =
  let s = Sink.null in
  Alcotest.(check bool) "disabled" false (Sink.enabled s);
  Sink.emit s ~time:5L ~cpu:0 (Event.Dispatch { tid = 1; thread = "t" });
  Alcotest.(check bool) "no tracer" true (Sink.tracer s = None);
  Alcotest.(check int) "no metrics recorded" 0 (Metrics.size (Sink.metrics s))

let test_sink_derives_metrics () =
  let s = Sink.create () in
  Sink.emit s ~time:10L ~cpu:0
    (Event.Deadline_miss
       { tid = 3; thread = "rt"; lateness_ns = 2_000L; crit = "mid" });
  Sink.emit s ~time:20L ~cpu:0
    (Event.Deadline_miss
       { tid = 3; thread = "rt"; lateness_ns = 4_000L; crit = "mid" });
  let m = Sink.metrics s in
  Alcotest.(check int) "miss counter" 2
    (Metrics.counter_value (Metrics.counter m ~cpu:0 "sched.deadline_miss"));
  let h = Metrics.histo m ~cpu:0 "sched.miss_lateness_us" in
  Alcotest.(check int) "lateness samples" 2 (Metrics.histo_count h);
  Alcotest.(check (float 1e-9)) "lateness max us" 4. (Metrics.histo_max h);
  let tr = Option.get (Sink.tracer s) in
  Alcotest.(check int) "traced" 2 (Tracer.count tr ~kind:"deadline-miss")

let test_subscriber () =
  let s = Sink.create ~trace:false () in
  let seen = ref [] in
  Sink.subscribe s (fun ~time ~cpu:_ ev -> seen := (time, Event.kind ev) :: !seen);
  Sink.emit s ~time:1L ~cpu:0 Event.Idle;
  Sink.emit s ~time:2L ~cpu:1 (Event.Irq { dur_ns = 100L });
  Alcotest.(check (list (pair int64 string)))
    "subscriber saw all"
    [ (1L, "idle"); (2L, "irq") ]
    (List.rev !seen)

(* ---- chrome trace export ---- *)

let test_chrome_json_shape () =
  let span =
    Export.chrome_json
      { Tracer.time = 1_500L; cpu = 2; event = Event.Sched_pass { dur_ns = 3_000L } }
  in
  Alcotest.(check string) "complete event"
    "{\"name\":\"sched-pass\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":1.500,\"dur\":3.000,\"pid\":2,\"tid\":0,\"args\":{}}"
    span;
  let inst =
    Export.chrome_json
      {
        Tracer.time = 2_000L;
        cpu = 0;
        event = Event.Dispatch { tid = 7; thread = "a\"b" };
      }
  in
  Alcotest.(check string) "instant event, escaped args"
    "{\"name\":\"dispatch\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":2.000,\"pid\":0,\"tid\":7,\"args\":{\"tid\":\"7\",\"thread\":\"a\\\"b\"}}"
    inst

let test_chrome_lines_bracketed () =
  let tr = Tracer.create () in
  Tracer.record tr ~time:1L ~cpu:0 Event.Idle;
  Tracer.record tr ~time:2L ~cpu:1 Event.Idle;
  let lines = Export.chrome_lines tr in
  Alcotest.(check string) "opens array" "[" (List.hd lines);
  Alcotest.(check string) "closes array" "]" (List.nth lines (List.length lines - 1));
  (* Every body line except the last ends with a comma (valid JSON array). *)
  let body = List.filteri (fun i _ -> i > 0 && i < List.length lines - 1) lines in
  List.iteri
    (fun i line ->
      let wants_comma = i < List.length body - 1 in
      Alcotest.(check bool)
        (Printf.sprintf "comma on line %d" i)
        wants_comma
        (String.length line > 0 && line.[String.length line - 1] = ','))
    body;
  (* Two CPUs seen -> two process_name metadata lines + two events. *)
  Alcotest.(check int) "line count" (2 + 2 + 2) (List.length lines)

let test_json_escape () =
  Alcotest.(check string) "control chars" "a\\nb\\t\\\\\\\"c"
    (Export.json_escape "a\nb\t\\\"c")

(* ---- end to end: a real scheduler run produces a coherent trace ---- *)

let test_end_to_end_events () =
  let sink = Sink.create () in
  let config = { Config.default with Config.admission_control = false } in
  let sys =
    Scheduler.create ~num_cpus:2 ~config ~obs:sink Hrt_hw.Platform.phi
  in
  let period = Time.us 100 in
  (* A slice of 95% of the period plus timer overhead forces misses. *)
  let slice = Time.us 95 in
  ignore (Hrt_harness.Exp.periodic_thread sys ~cpu:1 ~period ~slice ());
  Scheduler.run ~until:(Time.ms 10) sys;
  let tr = Option.get (Sink.tracer sink) in
  Alcotest.(check bool) "dispatches recorded" true
    (Tracer.count tr ~kind:"dispatch" > 0);
  Alcotest.(check bool) "sched passes recorded" true
    (Tracer.count tr ~kind:"sched-pass" > 0);
  let misses = Scheduler.total_misses sys in
  Alcotest.(check int) "trace misses = account misses" misses
    (Tracer.count tr ~kind:"deadline-miss");
  Alcotest.(check bool) "misses happened" true (misses > 0);
  (* run() snapshots engine gauges. *)
  let m = Sink.metrics sink in
  Alcotest.(check bool) "events_executed gauge" true
    (Metrics.gauge_value (Metrics.gauge m "engine.events_executed") > 0.);
  Alcotest.(check bool) "queue hwm gauge" true
    (Metrics.gauge_value (Metrics.gauge m "engine.queue_depth_hwm") > 0.);
  (* Timestamps are monotone per CPU. *)
  let last = Array.make 2 Int64.min_int in
  Tracer.iter tr (fun r ->
      Alcotest.(check bool) "monotone per cpu" true
        (Int64.compare r.Tracer.time last.(r.Tracer.cpu) >= 0);
      last.(r.Tracer.cpu) <- r.Tracer.time)

let test_disabled_run_records_nothing () =
  let config = { Config.default with Config.admission_control = false } in
  let sys =
    Scheduler.create ~num_cpus:2 ~config ~obs:Sink.null Hrt_hw.Platform.phi
  in
  ignore
    (Hrt_harness.Exp.periodic_thread sys ~cpu:1 ~period:(Time.us 100)
       ~slice:(Time.us 50) ());
  Scheduler.run ~until:(Time.ms 5) sys;
  Alcotest.(check int) "no metrics" 0 (Metrics.size (Sink.metrics Sink.null))

(* ---- event part round trips ---- *)

(* One sample per constructor; coverage is checked against
   [Event.all_kinds] so adding a constructor without extending this list
   fails the test. *)
let event_samples =
  [
    Event.Dispatch { tid = 3; thread = "t3" };
    Event.Preempt { tid = 3; thread = "t3" };
    Event.Deadline_miss { tid = 3; thread = "t3"; lateness_ns = 17L; crit = "high" };
    Event.Admission_accept { tid = 4; cls = Event.Cls_periodic };
    Event.Admission_reject
      { tid = 5; cls = Event.Cls_sporadic; reason = "density-bound" };
    Event.Arrival
      { tid = 3; thread = "t3"; arrival = 10L; deadline = 1_010L; period = 1_000L };
    Event.Complete { tid = 3; thread = "t3" };
    Event.Block { tid = 3; thread = "t3" };
    Event.Wake { tid = 3; thread = "t3" };
    Event.Irq { dur_ns = 250L };
    Event.Sched_pass { dur_ns = 420L };
    Event.Steal_attempt { victim = Some 2; success = true };
    Event.Steal_attempt { victim = None; success = false };
    Event.Barrier_arrive { barrier = 1; tid = 7; order = 0 };
    Event.Barrier_release { barrier = 1; parties = 4; wait_ns = 900L };
    Event.Group_phase { tid = 7; phase = "join" };
    Event.Elected { election = 0; round = 2; tid = 7; leader = true };
    Event.Policy { policy = "edf" };
    Event.Fault_plan { plan = "smi-storm" };
    Event.Overload { boundary = "mid" };
    Event.Overload { boundary = "none" };
    Event.Shed { tid = 9; thread = "t9"; crit = "low" };
    Event.Demote { tid = 9; thread = "t9" };
    Event.Recover { tid = 9; thread = "t9"; crit = "low" };
    Event.Idle;
  ]

let test_event_round_trip () =
  List.iter
    (fun e ->
      let rebuilt =
        Event.of_parts ~kind:(Event.kind e) ~args:(Event.args e)
          ~dur_ns:(Event.dur_ns e)
      in
      match rebuilt with
      | Some e' when e' = e -> ()
      | Some _ -> Alcotest.failf "%s: round trip changed the event" (Event.kind e)
      | None -> Alcotest.failf "%s: of_parts rejected its own parts" (Event.kind e))
    event_samples

let test_event_samples_cover_all_kinds () =
  let sampled =
    List.sort_uniq compare (List.map Event.kind event_samples)
  in
  let all = List.sort_uniq compare Event.all_kinds in
  Alcotest.(check (list string)) "every constructor sampled" all sampled

let test_of_parts_rejects_malformed () =
  Alcotest.(check bool)
    "unknown kind" true
    (Event.of_parts ~kind:"no-such-event" ~args:[] ~dur_ns:None = None);
  Alcotest.(check bool)
    "missing field" true
    (Event.of_parts ~kind:"dispatch" ~args:[ ("thread", "t3") ] ~dur_ns:None
    = None);
  Alcotest.(check bool)
    "malformed number" true
    (Event.of_parts ~kind:"dispatch"
       ~args:[ ("tid", "xyz"); ("thread", "t3") ]
       ~dur_ns:None
    = None)

(* ---- merge / child / absorb (the parallel-sweep fold-back) ---- *)

let test_metrics_merge () =
  let dst = Metrics.create () and src = Metrics.create () in
  Metrics.add (Metrics.counter dst "c") 2;
  Metrics.add (Metrics.counter src "c") 3;
  Metrics.add (Metrics.counter src "only-src") 7;
  Metrics.set (Metrics.gauge src "g") 1.5;
  ignore (Metrics.gauge dst "untouched");
  let h = Metrics.histo dst "h" in
  Metrics.observe h 1.;
  Metrics.observe (Metrics.histo src "h") 3.;
  Metrics.merge dst src;
  Alcotest.(check int) "counters add" 5 (Metrics.counter_value (Metrics.counter dst "c"));
  Alcotest.(check int) "missing counter created" 7
    (Metrics.counter_value (Metrics.counter dst "only-src"));
  Alcotest.(check (float 0.)) "set gauge copied" 1.5
    (Metrics.gauge_value (Metrics.gauge dst "g"));
  Alcotest.(check int) "histo samples replayed" 2 (Metrics.histo_count h);
  Alcotest.(check (float 0.)) "histo max" 3. (Metrics.histo_max h);
  (* src untouched, and no duplicated rows in dst. *)
  Alcotest.(check int) "src size unchanged" 4 (Metrics.size src);
  Alcotest.(check int) "dst rows = instruments" (Metrics.size dst)
    (List.length (Metrics.rows dst))

let test_metrics_merge_no_double_rows () =
  let dst = Metrics.create () and src = Metrics.create () in
  Metrics.incr (Metrics.counter dst "shared");
  Metrics.incr (Metrics.counter src "shared");
  Metrics.merge dst src;
  Metrics.merge dst src;
  Alcotest.(check int) "one row for the shared key" 1
    (List.length (Metrics.rows dst));
  Alcotest.(check int) "counts kept adding" 3
    (Metrics.counter_value (Metrics.counter dst "shared"))

let test_metrics_merge_kind_mismatch () =
  let dst = Metrics.create () and src = Metrics.create () in
  ignore (Metrics.counter dst "x");
  ignore (Metrics.gauge src "x");
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Metrics.merge: \"x\" is not a gauge in both registries") (fun () ->
      Metrics.merge dst src)

let test_sink_child_of_disabled_is_null () =
  let ch = Sink.child Sink.null in
  Alcotest.(check bool) "disabled" false (Sink.enabled ch)

let test_sink_absorb_replays_in_order () =
  let parent = Sink.create ~trace:true () in
  let seen = ref [] in
  Sink.subscribe parent (fun ~time ~cpu:_ ev -> seen := (time, Event.kind ev) :: !seen);
  Sink.emit parent ~time:1L ~cpu:0 Event.Idle;
  let ch = Sink.child parent in
  Alcotest.(check bool) "child enabled" true (Sink.enabled ch);
  Alcotest.(check bool) "child has its own tracer" true
    (Option.is_some (Sink.tracer ch));
  Sink.emit ch ~time:2L ~cpu:1 (Event.Irq { dur_ns = 100L });
  Sink.emit ch ~time:3L ~cpu:1 Event.Idle;
  (* Child events reach the parent's subscribers only at absorb time. *)
  Alcotest.(check int) "parent saw only its own event" 1 (List.length !seen);
  Sink.absorb parent ch;
  Alcotest.(check int) "replayed to subscribers" 3 (List.length !seen);
  Alcotest.(check bool) "in recorded order" true
    (List.rev_map fst !seen = [ 1L; 2L; 3L ]);
  (match Sink.tracer parent with
  | None -> Alcotest.fail "parent tracer"
  | Some tr -> Alcotest.(check int) "trace appended" 3 (Tracer.length tr));
  (* Child metrics folded in: the Irq event derived a counter. *)
  Alcotest.(check bool) "metrics merged" true
    (List.length (Metrics.rows (Sink.metrics parent)) > 0)

let suite =
  [
    Alcotest.test_case "counter identity by (name, cpu)" `Quick
      test_counter_identity;
    Alcotest.test_case "cpu label separates instruments" `Quick
      test_cpu_label_separates;
    Alcotest.test_case "kind mismatch rejected" `Quick
      test_kind_mismatch_rejected;
    Alcotest.test_case "gauge watermark" `Quick test_gauge_watermark;
    Alcotest.test_case "histogram matches Percentile" `Quick
      test_histo_matches_percentile;
    Alcotest.test_case "rows match header shape" `Quick test_rows_shape;
    Alcotest.test_case "null sink is a no-op" `Quick test_null_sink_noop;
    Alcotest.test_case "sink derives metrics from events" `Quick
      test_sink_derives_metrics;
    Alcotest.test_case "subscribers see every event" `Quick test_subscriber;
    Alcotest.test_case "chrome-trace event shape" `Quick test_chrome_json_shape;
    Alcotest.test_case "chrome-trace array framing" `Quick
      test_chrome_lines_bracketed;
    Alcotest.test_case "json escaping" `Quick test_json_escape;
    Alcotest.test_case "scheduler run traces coherently" `Quick
      test_end_to_end_events;
    Alcotest.test_case "disabled sink records nothing" `Quick
      test_disabled_run_records_nothing;
    Alcotest.test_case "event parts round trip" `Quick test_event_round_trip;
    Alcotest.test_case "round-trip samples cover all kinds" `Quick
      test_event_samples_cover_all_kinds;
    Alcotest.test_case "of_parts rejects malformed input" `Quick
      test_of_parts_rejects_malformed;
    Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    Alcotest.test_case "metrics merge: no duplicate rows" `Quick
      test_metrics_merge_no_double_rows;
    Alcotest.test_case "metrics merge: kind mismatch" `Quick
      test_metrics_merge_kind_mismatch;
    Alcotest.test_case "sink child of disabled is null" `Quick
      test_sink_child_of_disabled_is_null;
    Alcotest.test_case "sink absorb replays in order" `Quick
      test_sink_absorb_replays_in_order;
  ]
