(* The trace invariant verifier: hand-built good/bad traces per rule, a
   mutated-trace corpus proving every rule fires on real scheduler output,
   replay round-trips through the exporter, and the EDF-clean / RM-flagged
   ablation acceptance case. *)

open Hrt_engine
open Hrt_core
open Hrt_group
open Hrt_harness
module Obs = Hrt_obs
module Event = Hrt_obs.Event
module V = Hrt_verify

let phi = Hrt_hw.Platform.phi

(* ---- helpers ---- *)

let check records =
  let c = V.Checker.create () in
  List.iter (fun (time, cpu, event) -> V.Checker.feed c ~time ~cpu event) records;
  V.Report.of_checker c

let count rule (r : V.Report.t) =
  match List.assoc_opt rule r.V.Report.counts with Some n -> n | None -> 0

let assert_clean name (r : V.Report.t) =
  if not (V.Report.passed r) then
    Alcotest.failf "%s: expected clean verdict, got: %s" name
      (V.Report.verdict_line r)

let assert_fires name rule (r : V.Report.t) =
  if count rule r = 0 then
    Alcotest.failf "%s: expected %s to fire, got: %s" name (V.Rules.name rule)
      (V.Report.verdict_line r)

let assert_only name rule (r : V.Report.t) =
  assert_fires name rule r;
  List.iter
    (fun (other, n) ->
      if other <> rule && n > 0 then
        Alcotest.failf "%s: unexpected %s violations (%d): %s" name
          (V.Rules.name other) n (V.Report.verdict_line r))
    r.V.Report.counts

let name_of tid = "t" ^ string_of_int tid
let pol p = Event.Policy { policy = p }
let accept tid = Event.Admission_accept { tid; cls = Event.Cls_periodic }
let disp tid = Event.Dispatch { tid; thread = name_of tid }
let comp tid = Event.Complete { tid; thread = name_of tid }
let blk tid = Event.Block { tid; thread = name_of tid }
let wk tid = Event.Wake { tid; thread = name_of tid }

let arr tid ~a ~d ~p =
  Event.Arrival { tid; thread = name_of tid; arrival = a; deadline = d; period = p }

let miss ?(crit = "mid") tid ~late =
  Event.Deadline_miss { tid; thread = name_of tid; lateness_ns = late; crit }

(* ---- hand-built good trace ---- *)

let test_good_trace () =
  let records =
    [
      (0L, 0, pol "edf");
      (0L, 1, pol "edf");
      (0L, 1, accept 1);
      (100L, 1, Event.Irq { dur_ns = 50L });
      (150L, 1, Event.Sched_pass { dur_ns = 100L });
      (1000L, 1, arr 1 ~a:1000L ~d:5000L ~p:4000L);
      (1050L, 1, Event.Sched_pass { dur_ns = 100L });
      (1200L, 1, disp 1);
      (2000L, 1, blk 1);
      (2050L, 1, Event.Sched_pass { dur_ns = 40L });
      (2100L, 1, Event.Idle);
      (2500L, 1, wk 1);
      (2600L, 1, disp 1);
      (3000L, 1, comp 1);
      (3000L, 1, Event.Idle);
      (3100L, 1, Event.Steal_attempt { victim = Some 2; success = false });
      (* group activity on cpus 2 and 3 *)
      (100L, 2, Event.Group_phase { tid = 7; phase = "join" });
      (120L, 2, Event.Barrier_arrive { barrier = 0; tid = 7; order = 0 });
      (150L, 3, Event.Barrier_arrive { barrier = 0; tid = 8; order = 1 });
      (150L, 3, Event.Barrier_release { barrier = 0; parties = 2; wait_ns = 30L });
      (200L, 2, Event.Elected { election = 0; round = 0; tid = 7; leader = true });
      (210L, 3, Event.Elected { election = 0; round = 0; tid = 8; leader = false });
      (* a new round reuses the same barrier and election ids *)
      (300L, 2, Event.Barrier_arrive { barrier = 0; tid = 7; order = 0 });
      (320L, 3, Event.Barrier_arrive { barrier = 0; tid = 8; order = 1 });
      (320L, 3, Event.Barrier_release { barrier = 0; parties = 2; wait_ns = 20L });
      (400L, 2, Event.Elected { election = 0; round = 1; tid = 7; leader = false });
      (410L, 3, Event.Elected { election = 0; round = 1; tid = 8; leader = true });
      (* a second run segment resets all state: fresh clocks are legal *)
      (0L, 0, pol "rm");
      (0L, 1, pol "rm");
      (0L, 1, accept 1);
      (500L, 1, arr 1 ~a:500L ~d:1500L ~p:1000L);
      (600L, 1, disp 1);
      (900L, 1, comp 1);
    ]
  in
  let r = check records in
  assert_clean "good trace" r;
  Alcotest.(check int) "segments" 2 r.V.Report.segments;
  Alcotest.(check int) "events" (List.length records) r.V.Report.events

(* ---- per-rule bad traces ---- *)

let test_bad_monotonic () =
  assert_only "backwards clock" V.Rules.Monotonic_time
    (check [ (1000L, 1, Event.Idle); (500L, 1, Event.Idle) ])

let test_wake_exempt_from_monotonicity () =
  (* Cross-CPU wakes are stamped at the waker's clock and may precede the
     target CPU's latest event. *)
  assert_clean "early wake"
    (check
       [
         (0L, 1, accept 1);
         (10L, 1, arr 1 ~a:10L ~d:1000L ~p:1000L);
         (20L, 1, disp 1);
         (500L, 1, blk 1);
         (600L, 1, Event.Idle);
         (550L, 1, wk 1);
         (700L, 1, disp 1);
         (800L, 1, comp 1);
       ])

let test_bad_causality_dispatch_blocked () =
  let r =
    check
      [
        (0L, 1, accept 1);
        (10L, 1, arr 1 ~a:10L ~d:1000L ~p:1000L);
        (20L, 1, disp 1);
        (30L, 1, blk 1);
        (40L, 1, disp 1);
      ]
  in
  assert_only "dispatch while blocked" V.Rules.Causality r

let test_bad_causality_lifecycle () =
  assert_fires "wake of unblocked" V.Rules.Causality (check [ (0L, 1, wk 1) ]);
  assert_fires "complete without arrival" V.Rules.Causality
    (check [ (0L, 1, comp 1) ]);
  assert_fires "miss without arrival" V.Rules.Causality
    (check [ (0L, 1, miss 1 ~late:5L) ]);
  assert_fires "arrival without admission" V.Rules.Causality
    (check [ (0L, 1, arr 1 ~a:0L ~d:100L ~p:100L) ]);
  assert_fires "double arrival" V.Rules.Causality
    (check
       [
         (0L, 1, accept 1);
         (10L, 1, arr 1 ~a:10L ~d:100L ~p:100L);
         (20L, 1, arr 1 ~a:20L ~d:110L ~p:100L);
       ]);
  assert_fires "preempt of idle cpu" V.Rules.Causality
    (check [ (0L, 1, Event.Preempt { tid = 3; thread = "t3" }) ])

let test_bad_cpu_mutex () =
  assert_only "one thread on two cpus" V.Rules.Cpu_mutex
    (check [ (0L, 0, disp 5); (10L, 1, disp 5) ])

let test_bad_hard_rt () =
  let r =
    check
      [
        (0L, 0, pol "edf");
        (0L, 1, accept 1);
        (10L, 1, arr 1 ~a:10L ~d:1000L ~p:1000L);
        (1500L, 1, miss 1 ~late:500L);
      ]
  in
  assert_only "admitted miss" V.Rules.Hard_rt r

let test_bad_conformance_edf () =
  let r =
    check
      [
        (0L, 0, pol "edf");
        (0L, 1, accept 1);
        (0L, 1, accept 2);
        (10L, 1, arr 1 ~a:10L ~d:10_000L ~p:10_000L);
        (10L, 1, arr 2 ~a:10L ~d:5_000L ~p:5_000L);
        (20L, 1, disp 1);
      ]
  in
  assert_only "edf picks later deadline" V.Rules.Policy_conformance r;
  (* control: dispatching the earliest deadline is conformant *)
  assert_clean "edf picks earliest deadline"
    (check
       [
         (0L, 0, pol "edf");
         (0L, 1, accept 1);
         (0L, 1, accept 2);
         (10L, 1, arr 1 ~a:10L ~d:10_000L ~p:10_000L);
         (10L, 1, arr 2 ~a:10L ~d:5_000L ~p:5_000L);
         (20L, 1, disp 2);
       ])

let test_bad_conformance_rm () =
  (* Under RM the fixed-priority key is the period: the long-period thread
     must not run while the short one is released, even when its absolute
     deadline is earlier. *)
  let r =
    check
      [
        (0L, 0, pol "rm");
        (0L, 1, accept 1);
        (0L, 1, accept 2);
        (10L, 1, arr 1 ~a:10L ~d:4_000L ~p:4_000L);
        (10L, 1, arr 2 ~a:10L ~d:5_000L ~p:1_000L);
        (20L, 1, disp 1);
      ]
  in
  assert_only "rm picks longer period" V.Rules.Policy_conformance r

let test_bad_accounting () =
  assert_only "overlapping spans" V.Rules.Accounting
    (check
       [
         (1000L, 1, Event.Sched_pass { dur_ns = 500L });
         (1200L, 1, Event.Sched_pass { dur_ns = 100L });
       ]);
  assert_fires "negative duration" V.Rules.Accounting
    (check [ (0L, 1, Event.Irq { dur_ns = -5L }) ])

let test_bad_barrier () =
  let arrive o tid = Event.Barrier_arrive { barrier = 0; tid; order = o } in
  assert_only "duplicate order" V.Rules.Barrier_safety
    (check [ (0L, 1, arrive 0 7); (10L, 2, arrive 0 8) ]);
  assert_only "double crossing" V.Rules.Barrier_safety
    (check [ (0L, 1, arrive 0 7); (10L, 1, arrive 1 7) ]);
  assert_only "short release" V.Rules.Barrier_safety
    (check
       [
         (0L, 1, arrive 0 7);
         (10L, 1, Event.Barrier_release { barrier = 0; parties = 2; wait_ns = 10L });
       ]);
  assert_only "wait span mismatch" V.Rules.Barrier_safety
    (check
       [
         (0L, 1, arrive 0 7);
         (10L, 2, arrive 1 8);
         (10L, 2, Event.Barrier_release { barrier = 0; parties = 2; wait_ns = 99L });
       ])

let test_bad_election () =
  let elected tid leader =
    Event.Elected { election = 0; round = 0; tid; leader }
  in
  assert_only "two leaders" V.Rules.Election_safety
    (check [ (0L, 1, elected 7 true); (10L, 2, elected 8 true) ]);
  assert_only "double decision" V.Rules.Election_safety
    (check [ (0L, 1, elected 7 false); (10L, 1, elected 7 false) ])

(* ---- mutated-trace corpus over real scheduler output ----

   Record a real run, assert it is verifier-clean, then prove every rule
   fires on a targeted corruption of that same trace. *)

let record_run ?(config = Config.default) ~until f =
  let sink = Obs.Sink.create ~trace:true () in
  let sys = Scheduler.create ~num_cpus:4 ~config ~obs:sink phi in
  f sys;
  Scheduler.run ~until sys;
  match Obs.Sink.tracer sink with
  | Some tr ->
    List.map
      (fun { Obs.Tracer.time; cpu; event } -> (time, cpu, event))
      (Array.to_list (Obs.Tracer.to_array tr))
  | None -> assert false

let rt_base =
  lazy
    (record_run ~until:(Time.ms 20) (fun sys ->
         ignore
           (Exp.periodic_thread sys ~cpu:1 ~period:(Time.us 1000)
              ~slice:(Time.us 150) ());
         ignore
           (Exp.periodic_thread sys ~cpu:1 ~period:(Time.us 1500)
              ~slice:(Time.us 225) ())))

let group_base =
  lazy
    (record_run ~until:(Time.ms 5) (fun sys ->
         let group = Group.create sys ~name:"g" in
         let election = Election.create group in
         let barrier = Gbarrier.create sys ~parties:3 in
         for i = 1 to 3 do
           ignore
             (Scheduler.spawn sys ~cpu:i ~bound:true
                (Program.seq
                   [
                     Program.of_steps [ Thread.Compute (Time.us (7 * i)) ];
                     Gbarrier.cross barrier;
                   ]))
         done;
         for i = 1 to 3 do
           ignore
             (Scheduler.spawn sys ~cpu:i ~bound:true
                (Program.seq
                   [
                     Group.join group;
                     Election.elect election ~on_result:(fun _ -> ());
                   ]))
         done))

let test_base_traces_clean () =
  assert_clean "rt base" (check (Lazy.force rt_base));
  assert_clean "group base" (check (Lazy.force group_base))

(* Apply [f] at the first record satisfying [pick]; fail if none does. *)
let mutate_at ~pick ~f records =
  let hit = ref false in
  let out =
    List.concat_map
      (fun r -> if (not !hit) && pick r then (hit := true; f r) else [ r ])
      records
  in
  if not !hit then Alcotest.fail "mutation found no anchor record";
  out

let test_mutation_monotonic () =
  (* Append an event dated before the CPU's final timestamp. *)
  let records = Lazy.force rt_base in
  let last_on_1 =
    List.fold_left
      (fun acc (t, cpu, _) -> if cpu = 1 then t else acc)
      0L records
  in
  let r = check (records @ [ (Int64.sub last_on_1 1L, 1, Event.Idle) ]) in
  assert_fires "stale appended event" V.Rules.Monotonic_time r

let test_mutation_cpu_mutex () =
  let records =
    mutate_at
      ~pick:(fun (_, cpu, ev) ->
        cpu = 1 && match ev with Event.Dispatch _ -> true | _ -> false)
      ~f:(fun (t, _, ev) -> [ (t, 1, ev); (t, 0, ev) ])
      (Lazy.force rt_base)
  in
  assert_fires "dispatch duplicated on cpu 0" V.Rules.Cpu_mutex (check records)

let test_mutation_hard_rt () =
  let records =
    mutate_at
      ~pick:(fun (_, _, ev) ->
        match ev with Event.Arrival _ -> true | _ -> false)
      ~f:(fun (t, cpu, ev) ->
        match ev with
        | Event.Arrival { tid; thread; _ } ->
          [
            (t, cpu, ev);
            ( t,
              cpu,
              Event.Deadline_miss { tid; thread; lateness_ns = 1L; crit = "mid" }
            );
          ]
        | _ -> assert false)
      (Lazy.force rt_base)
  in
  assert_fires "injected miss" V.Rules.Hard_rt (check records)

let test_mutation_causality () =
  (* Deleting a completion makes the thread's next arrival a double one. *)
  let records =
    mutate_at
      ~pick:(fun (_, _, ev) ->
        match ev with Event.Complete _ -> true | _ -> false)
      ~f:(fun _ -> [])
      (Lazy.force rt_base)
  in
  assert_fires "deleted completion" V.Rules.Causality (check records)

let test_mutation_conformance () =
  (* Retarget a real-time dispatch at the other released thread when it has
     the larger EDF key: the verifier's oracle must notice. *)
  let active : (int, int64) Hashtbl.t = Hashtbl.create 4 in
  let records =
    mutate_at
      ~pick:(fun (_, _, ev) ->
        match ev with
        | Event.Arrival { tid; deadline; _ } ->
          Hashtbl.replace active tid deadline;
          false
        | Event.Complete { tid; _ } ->
          Hashtbl.remove active tid;
          false
        | Event.Dispatch { tid; _ } ->
          Hashtbl.mem active tid
          && Hashtbl.fold
               (fun tid' d' best ->
                 best
                 || tid' <> tid
                    && Int64.compare d' (Hashtbl.find active tid) > 0)
               active false
        | _ -> false)
      ~f:(fun (t, cpu, ev) ->
        match ev with
        | Event.Dispatch { tid; _ } ->
          let worse =
            Hashtbl.fold
              (fun tid' d' best ->
                if tid' <> tid && Int64.compare d' (Hashtbl.find active tid) > 0
                then Some tid'
                else best)
              active None
          in
          (match worse with
          | Some tid' -> [ (t, cpu, disp tid') ]
          | None -> assert false)
        | _ -> assert false)
      (Lazy.force rt_base)
  in
  assert_fires "retargeted dispatch" V.Rules.Policy_conformance (check records)

let test_mutation_accounting () =
  (* Pick a pass on the busy CPU so later spans land inside the inflated
     window (the boot pass on cpu 0 has no successors to collide with). *)
  let records =
    mutate_at
      ~pick:(fun (_, cpu, ev) ->
        cpu = 1 && match ev with Event.Sched_pass _ -> true | _ -> false)
      ~f:(fun (t, cpu, _) ->
        [ (t, cpu, Event.Sched_pass { dur_ns = Time.ms 50 }) ])
      (Lazy.force rt_base)
  in
  assert_fires "inflated pass duration" V.Rules.Accounting (check records)

let test_mutation_barrier () =
  let records =
    mutate_at
      ~pick:(fun (_, _, ev) ->
        match ev with Event.Barrier_arrive _ -> true | _ -> false)
      ~f:(fun (t, cpu, ev) -> [ (t, cpu, ev); (t, cpu, ev) ])
      (Lazy.force group_base)
  in
  assert_fires "duplicated barrier arrival" V.Rules.Barrier_safety
    (check records)

let test_mutation_election () =
  let records =
    mutate_at
      ~pick:(fun (_, _, ev) ->
        match ev with
        | Event.Elected { leader; _ } -> not leader
        | _ -> false)
      ~f:(fun (t, cpu, ev) ->
        match ev with
        | Event.Elected e -> [ (t, cpu, Event.Elected { e with leader = true }) ]
        | _ -> assert false)
      (Lazy.force group_base)
  in
  assert_fires "loser promoted to leader" V.Rules.Election_safety
    (check records)

(* ---- exporter -> reader round trip ---- *)

let test_export_replay_round_trip () =
  let tracer = Obs.Tracer.create () in
  let samples =
    [
      (0L, 0, pol "edf");
      (123_456_789L, 1, accept 3);
      (123_457_000L, 1, arr 3 ~a:123_457_000L ~d:123_999_999L ~p:542_999L);
      (123_458_001L, 1, Event.Irq { dur_ns = 1_234L });
      (123_459_002L, 1, Event.Sched_pass { dur_ns = 567L });
      (123_460_003L, 1, disp 3);
      (123_470_004L, 1, Event.Preempt { tid = 3; thread = "t3" });
      (123_480_005L, 1, miss 3 ~late:42L);
      (123_490_006L, 1, comp 3);
      (123_500_007L, 1, Event.Steal_attempt { victim = None; success = false });
      (123_510_008L, 1, Event.Idle);
    ]
  in
  List.iter (fun (time, cpu, event) -> Obs.Tracer.record tracer ~time ~cpu event) samples;
  let contents =
    String.concat "\n" (Obs.Export.chrome_lines tracer) ^ "\n"
  in
  match V.Trace_reader.parse contents with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok records ->
    let got =
      List.map (fun { V.Trace_reader.time; cpu; event } -> (time, cpu, event)) records
    in
    Alcotest.(check int) "record count" (List.length samples) (List.length got);
    List.iter2
      (fun (et, ec, ee) (gt, gc, ge) ->
        Alcotest.(check int64) "time" et gt;
        Alcotest.(check int) "cpu" ec gc;
        Alcotest.(check bool)
          (Printf.sprintf "event %s" (Event.kind ee))
          true (ee = ge))
      samples got

let test_reader_rejects_garbage () =
  (match V.Trace_reader.parse "{\"name\":1}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-array accepted");
  match V.Trace_reader.parse "[\n{\"name\":\"nope\",\"ph\":\"i\",\"ts\":1,\"pid\":0,\"tid\":0,\"args\":{}}\n]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown event kind accepted"

(* ---- live checker on a seeded random run (property) ---- *)

let prop_random_run_is_clean =
  QCheck.Test.make ~name:"seeded random schedulable run is verifier-clean"
    ~count:12
    QCheck.(
      triple (int_bound 1000) (1 -- 3)
        (pair bool (int_bound 1)))
    (fun (seed, nthreads, (rm, extra_cpu)) ->
      let sink = Obs.Sink.create ~trace:false () in
      let live = V.Live.attach sink in
      let config =
        {
          Config.default with
          Config.policy = (if rm then Config.Rm else Config.Edf);
        }
      in
      let sys =
        Scheduler.create ~seed:(Int64.of_int (seed + 1)) ~num_cpus:3 ~config
          ~obs:sink phi
      in
      for i = 0 to nthreads - 1 do
        let period = Time.us (500 * (i + 2)) in
        let slice = Int64.div period 8L in
        ignore
          (Exp.periodic_thread sys ~cpu:(1 + (i mod 2)) ~period ~slice ())
      done;
      (* Aperiodic background load, stealable across CPUs. *)
      ignore
        (Scheduler.spawn sys ~cpu:(1 + extra_cpu)
           (Program.of_steps
              [ Thread.Compute (Time.us 300); Thread.Compute (Time.us 200) ]));
      Scheduler.run ~until:(Time.ms 15) sys;
      let report = V.Live.report live in
      if not (V.Report.passed report) then
        QCheck.Test.fail_reportf "random run not clean: %s"
          (V.Report.verdict_line report);
      true)

(* ---- the ablation acceptance case: EDF clean, RM flagged ---- *)

let test_edf_clean_rm_flagged () =
  let run policy =
    let sink = Obs.Sink.create ~trace:false () in
    let live = V.Live.attach sink in
    let config =
      { Config.default with Config.admission_control = false; policy }
    in
    let sys = Scheduler.create ~num_cpus:2 ~config ~obs:sink phi in
    let p1 = Time.us 1000 and p2 = Time.us 1500 in
    (* total utilization 0.95, past RM's 2-task Liu-Layland bound *)
    let slice p = Int64.of_float (Int64.to_float p *. 0.475) in
    let phase = Time.ms 5 in
    let t1 = Exp.periodic_thread sys ~cpu:1 ~phase ~period:p1 ~slice:(slice p1) () in
    let t2 = Exp.periodic_thread sys ~cpu:1 ~phase ~period:p2 ~slice:(slice p2) () in
    ignore
      (Engine.schedule (Scheduler.engine sys) ~at:(Time.ms 2) (fun _ ->
           Scheduler.reanchor sys t1 ~first_arrival:(Time.ms 3);
           Scheduler.reanchor sys t2 ~first_arrival:(Time.ms 3)));
    Scheduler.run ~until:(Time.ms 100) sys;
    V.Live.report live
  in
  let edf = run Config.Edf in
  assert_clean "EDF past the RM bound" edf;
  let rm = run Config.Rm in
  assert_only "RM past its bound" V.Rules.Hard_rt rm

(* ---- graceful degradation under injected faults ---- *)

(* In a fault-injected segment (marked by a Fault_plan event anywhere in
   the trace) the hard-RT rule stands down and the degradation contract
   takes over: a deadline miss is tolerable exactly when the CPU has
   announced a shed boundary strictly above the missing thread's
   criticality. *)

let test_degradation_clean_shed () =
  let records =
    [
      (0L, 0, Event.Fault_plan { plan = "smi-storm" });
      (0L, 1, pol "edf");
      (0L, 1, accept 1);
      (0L, 1, accept 2);
      (1000L, 1, arr 1 ~a:1000L ~d:2000L ~p:1000L);
      (1100L, 1, arr 2 ~a:1100L ~d:2100L ~p:1000L);
      (1200L, 1, disp 2);
      (* Overload: boundary "mid" protects mid and high; the low worker's
         miss is tolerated and it is shed. *)
      (1500L, 1, Event.Overload { boundary = "mid" });
      (1500L, 1, miss ~crit:"low" 1 ~late:50L);
      (1500L, 1, Event.Shed { tid = 1; thread = name_of 1; crit = "low" });
      (1500L, 1, Event.Demote { tid = 1; thread = name_of 1 });
      (1500L, 1, comp 1);
      (1600L, 1, comp 2);
      (* Quiet again: the shed thread recovers its admission. *)
      (3000L, 1, Event.Overload { boundary = "none" });
      (3000L, 1, accept 1);
      (3000L, 1, Event.Recover { tid = 1; thread = name_of 1; crit = "low" });
    ]
  in
  assert_clean "low-criticality miss under a shed" (check records)

let test_degradation_fires_on_high_miss () =
  let records =
    [
      (0L, 0, Event.Fault_plan { plan = "smi-storm" });
      (0L, 1, pol "edf");
      (0L, 1, accept 2);
      (1100L, 1, arr 2 ~a:1100L ~d:2100L ~p:1000L);
      (1200L, 1, disp 2);
      (1500L, 1, Event.Overload { boundary = "mid" });
      (* A high-criticality miss at (or above) the boundary breaks the
         degradation contract. *)
      (2163L, 1, miss ~crit:"high" 2 ~late:63L);
      (2200L, 1, comp 2);
    ]
  in
  assert_only "high-criticality miss during a shed" V.Rules.Degradation
    (check records)

let test_degradation_fires_without_shed () =
  (* Faulted segment but no Overload announcement: any miss violates the
     contract (boundary 0 tolerates nothing), and it is the degradation
     rule, not hard-rt, that reports it. *)
  let records =
    [
      (0L, 0, Event.Fault_plan { plan = "smi-storm" });
      (0L, 1, pol "edf");
      (0L, 1, accept 1);
      (1000L, 1, arr 1 ~a:1000L ~d:2000L ~p:1000L);
      (2050L, 1, miss ~crit:"low" 1 ~late:50L);
      (2100L, 1, comp 1);
    ]
  in
  assert_only "miss with no shed in effect" V.Rules.Degradation
    (check records)

(* ---- report formatting ---- *)

let test_verdict_line () =
  let clean = check [ (0L, 0, pol "edf") ] in
  Alcotest.(check string)
    "pass line" "verdict=pass events=1 segments=1 violations=0"
    (V.Report.verdict_line clean);
  let bad = check [ (0L, 1, comp 1); (10L, 1, comp 1) ] in
  Alcotest.(check string)
    "fail line" "verdict=fail events=2 segments=1 violations=2 rules=causality:2"
    (V.Report.verdict_line bad);
  (* counterexamples carry index, time and cpu *)
  match bad.V.Report.violations with
  | { V.Checker.rule = V.Rules.Causality; index = 0; time = 0L; cpu = 1; _ }
    :: _ ->
    ()
  | _ -> Alcotest.fail "counterexample coordinates wrong"

let suite =
  [
    Alcotest.test_case "good trace is clean" `Quick test_good_trace;
    Alcotest.test_case "monotonic-time fires" `Quick test_bad_monotonic;
    Alcotest.test_case "wake exempt from monotonicity" `Quick
      test_wake_exempt_from_monotonicity;
    Alcotest.test_case "causality: dispatch while blocked" `Quick
      test_bad_causality_dispatch_blocked;
    Alcotest.test_case "causality: lifecycle orders" `Quick
      test_bad_causality_lifecycle;
    Alcotest.test_case "cpu-mutex fires" `Quick test_bad_cpu_mutex;
    Alcotest.test_case "hard-rt-soundness fires" `Quick test_bad_hard_rt;
    Alcotest.test_case "policy-conformance fires (EDF)" `Quick
      test_bad_conformance_edf;
    Alcotest.test_case "policy-conformance fires (RM)" `Quick
      test_bad_conformance_rm;
    Alcotest.test_case "accounting fires" `Quick test_bad_accounting;
    Alcotest.test_case "barrier-safety fires" `Quick test_bad_barrier;
    Alcotest.test_case "election-safety fires" `Quick test_bad_election;
    Alcotest.test_case "real traces are clean" `Quick test_base_traces_clean;
    Alcotest.test_case "mutation: monotonic-time" `Quick
      test_mutation_monotonic;
    Alcotest.test_case "mutation: cpu-mutex" `Quick test_mutation_cpu_mutex;
    Alcotest.test_case "mutation: hard-rt-soundness" `Quick
      test_mutation_hard_rt;
    Alcotest.test_case "mutation: causality" `Quick test_mutation_causality;
    Alcotest.test_case "mutation: policy-conformance" `Quick
      test_mutation_conformance;
    Alcotest.test_case "mutation: accounting" `Quick test_mutation_accounting;
    Alcotest.test_case "mutation: barrier-safety" `Quick test_mutation_barrier;
    Alcotest.test_case "mutation: election-safety" `Quick
      test_mutation_election;
    Alcotest.test_case "export/replay round trip" `Quick
      test_export_replay_round_trip;
    Alcotest.test_case "reader rejects garbage" `Quick
      test_reader_rejects_garbage;
    QCheck_alcotest.to_alcotest prop_random_run_is_clean;
    Alcotest.test_case "EDF clean, RM flagged past bound" `Quick
      test_edf_clean_rm_flagged;
    Alcotest.test_case "degradation: low miss under shed is clean" `Quick
      test_degradation_clean_shed;
    Alcotest.test_case "degradation: high miss during shed fires" `Quick
      test_degradation_fires_on_high_miss;
    Alcotest.test_case "degradation: miss without shed fires" `Quick
      test_degradation_fires_without_shed;
    Alcotest.test_case "verdict line format" `Quick test_verdict_line;
  ]
