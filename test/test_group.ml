open Hrt_engine
open Hrt_core
open Hrt_group

let phi = Hrt_hw.Platform.phi

let mk ?(num_cpus = 9) ?(config = Config.default) () =
  Scheduler.create ~num_cpus ~config phi

(* ---- membership ---- *)

let test_join_leave () =
  let sys = mk () in
  let group = Group.create sys ~name:"g" in
  let joined = ref 0 in
  let threads =
    List.init 4 (fun i ->
        Scheduler.spawn sys ~cpu:(i + 1) ~bound:true
          (Program.seq
             [
               Group.join group;
               Program.of_thunks
                 [
                   (fun _ ->
                     incr joined;
                     Thread.Block);
                 ];
             ]))
  in
  Scheduler.run ~until:(Time.ms 2) sys;
  Alcotest.(check int) "all joined" 4 !joined;
  Alcotest.(check int) "size" 4 (Group.size group);
  Alcotest.(check int) "members listed" 4 (List.length (Group.members group));
  (* Leave via fresh bodies. *)
  List.iter
    (fun (th : Thread.t) ->
      th.Thread.body <- Program.seq [ Group.leave group ];
      Scheduler.wake sys th)
    threads;
  Scheduler.run ~until:(Time.ms 4) sys;
  Alcotest.(check int) "all left" 0 (Group.size group)

let test_registry () =
  let sys = mk () in
  let g = Group.create sys ~name:"named" in
  Alcotest.(check bool) "found" true
    (match Group.find sys "named" with Some g' -> g' == g | None -> false);
  Alcotest.(check bool) "missing" true (Group.find sys "other" = None);
  Group.destroy g;
  Alcotest.(check bool) "destroyed" true (Group.find sys "named" = None)

let test_destroy_nonempty_rejected () =
  let sys = mk () in
  let g = Group.create sys ~name:"busy" in
  ignore
    (Scheduler.spawn sys ~cpu:1
       (Program.seq [ Group.join g; Program.of_steps [ Thread.Block ] ]));
  Scheduler.run ~until:(Time.ms 1) sys;
  Alcotest.check_raises "members remain"
    (Invalid_argument "Group.destroy: members remain") (fun () ->
      Group.destroy g)

let test_group_lock () =
  let sys = mk () in
  let g = Group.create sys ~name:"l" in
  let a = Thread.make ~id:100 ~name:"a" ~cpu:0 (fun _ -> Thread.Exit) in
  let b = Thread.make ~id:101 ~name:"b" ~cpu:0 (fun _ -> Thread.Exit) in
  Group.lock g a;
  Alcotest.(check bool) "owner" true
    (match Group.locked_by g with Some o -> o == a | None -> false);
  Alcotest.check_raises "second locker" (Invalid_argument "Group.lock: held")
    (fun () -> Group.lock g b);
  Alcotest.check_raises "wrong unlocker" (Invalid_argument "Group.unlock: not owner")
    (fun () -> Group.unlock g b);
  Group.unlock g a;
  Alcotest.(check bool) "released" true (Group.locked_by g = None)

(* ---- election ---- *)

let test_election_single_leader () =
  let sys = mk () in
  let group = Group.create sys ~name:"e" in
  let election = Election.create group in
  let leaders = ref 0 and done_ = ref 0 in
  for i = 1 to 6 do
    ignore
      (Scheduler.spawn sys ~cpu:i ~bound:true
         (Program.seq
            [
              Group.join group;
              Election.elect election ~on_result:(fun l ->
                  if l then incr leaders;
                  incr done_);
            ]))
  done;
  Scheduler.run ~until:(Time.ms 5) sys;
  Alcotest.(check int) "all answered" 6 !done_;
  Alcotest.(check int) "exactly one leader" 1 !leaders;
  Alcotest.(check bool) "leader recorded" true (Election.leader election <> None);
  Election.reset election;
  Alcotest.(check bool) "reset clears" true (Election.leader election = None)

(* ---- barrier ---- *)

let test_barrier_releases_all () =
  let sys = mk () in
  let b = Gbarrier.create sys ~parties:5 in
  let released = ref 0 in
  for i = 1 to 5 do
    ignore
      (Scheduler.spawn sys ~cpu:i ~bound:true
         (Program.seq
            [
              Program.of_steps [ Thread.Compute (Time.us (10 * i)) ];
              Gbarrier.cross b;
              Program.of_thunks
                [
                  (fun _ ->
                    incr released;
                    Thread.Exit);
                ];
            ]))
  done;
  Scheduler.run ~until:(Time.ms 5) sys;
  Alcotest.(check int) "all released" 5 !released;
  Alcotest.(check int) "one round" 1 (Gbarrier.rounds b)

let test_barrier_no_early_release () =
  let sys = mk () in
  let b = Gbarrier.create sys ~parties:3 in
  let released = ref 0 in
  for i = 1 to 2 do
    (* Only 2 of 3 parties arrive. *)
    ignore
      (Scheduler.spawn sys ~cpu:i ~bound:true
         (Program.seq
            [
              Gbarrier.cross b;
              Program.of_thunks [ (fun _ -> incr released; Thread.Exit) ];
            ]))
  done;
  Scheduler.run ~until:(Time.ms 5) sys;
  Alcotest.(check int) "nobody released" 0 !released

let test_barrier_release_order_and_stagger () =
  let sys = mk () in
  let b = Gbarrier.create sys ~parties:4 in
  let orders = ref [] in
  let release_times = ref [] in
  for i = 1 to 4 do
    ignore
      (Scheduler.spawn sys ~cpu:i ~bound:true
         (Program.seq
            [
              (* Stagger arrivals: cpu i arrives after i*20us of work. *)
              Program.of_steps [ Thread.Compute (Time.us (20 * i)) ];
              Gbarrier.cross b ~record_order:(fun th k ->
                  orders := (th.Thread.cpu, k) :: !orders);
              Program.of_thunks
                [
                  (fun { Thread.svc; _ } ->
                    release_times := svc.Thread.now () :: !release_times;
                    Thread.Exit);
                ];
            ]))
  done;
  Scheduler.run ~until:(Time.ms 5) sys;
  (* Arrival order = cpu order (arrival stagger dominates); release order
     matches arrival order. *)
  List.iter
    (fun (cpu, k) -> Alcotest.(check int) "order = arrival order" (cpu - 1) k)
    !orders;
  let times = List.sort compare !release_times in
  Alcotest.(check int) "all released" 4 (List.length times);
  (* Departures are staggered, spanning roughly parties * delta. *)
  let span = Time.(List.nth times 3 - List.nth times 0) in
  Alcotest.(check bool) "staggered departures" true
    Time.(span > 0L && span < Time.us 30)

let test_barrier_reusable_rounds () =
  let sys = mk () in
  let b = Gbarrier.create sys ~parties:3 in
  let finished = ref 0 in
  for i = 1 to 3 do
    let round = ref 0 in
    let crossing = ref None in
    ignore
      (Scheduler.spawn sys ~cpu:i ~bound:true (fun ctx ->
           if !round >= 5 then begin
             incr finished;
             Thread.Exit
           end
           else begin
             let body =
               match !crossing with
               | Some c -> c
               | None ->
                 let c = Gbarrier.cross b in
                 crossing := Some c;
                 c
             in
             match body ctx with
             | Thread.Exit ->
               crossing := None;
               incr round;
               Thread.Compute (Time.us 5)
             | op -> op
           end))
  done;
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check int) "five rounds" 5 (Gbarrier.rounds b);
  Alcotest.(check int) "all finished" 3 !finished

(* ---- reduction ---- *)

let test_reduction_combines () =
  let sys = mk () in
  let group = Group.create sys ~name:"r" in
  let red = Reduction.create group ~zero:0 ~combine:( + ) in
  Reduction.set_parties red 4;
  let results = ref [] in
  for i = 1 to 4 do
    ignore
      (Scheduler.spawn sys ~cpu:i ~bound:true
         (Program.seq
            [
              Group.join group;
              Reduction.reduce red
                ~value:(fun () -> i * 10)
                ~on_result:(fun r -> results := r :: !results);
            ]))
  done;
  Scheduler.run ~until:(Time.ms 5) sys;
  Alcotest.(check int) "everyone got the sum" 4 (List.length !results);
  List.iter (fun r -> Alcotest.(check int) "sum" 100 r) !results;
  Alcotest.(check (option int)) "last result" (Some 100) (Reduction.last_result red)

let test_reduction_or_semantics () =
  let sys = mk () in
  let group = Group.create sys ~name:"or" in
  let red = Reduction.create group ~zero:false ~combine:( || ) in
  Reduction.set_parties red 3;
  let results = ref [] in
  for i = 1 to 3 do
    ignore
      (Scheduler.spawn sys ~cpu:i ~bound:true
         (Program.seq
            [
              Group.join group;
              Reduction.reduce red
                ~value:(fun () -> i = 2)
                ~on_result:(fun r -> results := r :: !results);
            ]))
  done;
  Scheduler.run ~until:(Time.ms 5) sys;
  List.iter (fun r -> Alcotest.(check bool) "OR true" true r) !results

(* ---- group admission (Algorithm 1) ---- *)

let admit_group ?(phase_correction = true) ?(config = Config.default) ~workers
    constr =
  let sys = mk ~num_cpus:(workers + 1) ~config () in
  let results = ref [] in
  Hrt_harness.Exp.run_group_admission ~phase_correction sys ~workers constr ();
  ignore results;
  Scheduler.run ~until:(Time.ms 50) sys;
  sys

let test_group_admission_success () =
  let workers = 6 in
  let sys =
    admit_group ~workers
      (Constraints.periodic ~period:(Time.us 200) ~slice:(Time.us 40) ())
  in
  (* All members must now be periodic and making lock-step progress. *)
  let group = Option.get (Group.find sys "exp-group") in
  List.iter
    (fun (th : Thread.t) ->
      Alcotest.(check bool) "member realtime" true (Thread.is_realtime th);
      Alcotest.(check bool) "arrivals happening" true (th.Thread.arrivals > 50);
      Alcotest.(check int) "no misses" 0 th.Thread.misses)
    (Group.members group)

let test_group_admission_all_or_nothing () =
  (* Pre-load one CPU with a big periodic thread so its member fails; the
     whole group must fall back to aperiodic. *)
  let workers = 4 in
  let sys = mk ~num_cpus:(workers + 1) () in
  let hog_admitted = ref false in
  ignore
    (Scheduler.spawn sys ~cpu:2 ~bound:true
       (Program.seq
          [
            Program.of_steps
              (Scheduler.admission_ops sys
                 (Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 70) ())
                 ~on_result:(fun v -> hog_admitted := Admission.admitted v));
            Program.compute_forever (Time.sec 3600);
          ]));
  Scheduler.run ~until:(Time.ms 1) sys;
  Alcotest.(check bool) "hog admitted" true !hog_admitted;
  Hrt_harness.Exp.run_group_admission sys ~workers
    (Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 30) ())
    ();
  Scheduler.run ~until:(Time.ms 30) sys;
  let group = Option.get (Group.find sys "exp-group") in
  List.iter
    (fun (th : Thread.t) ->
      Alcotest.(check bool) "fell back to aperiodic" false (Thread.is_realtime th))
    (Group.members group)

let test_phase_correction_tightens_spread () =
  let measure pc =
    let workers = 24 in
    let sys = mk ~num_cpus:(workers + 1) () in
    let period = Time.us 200 in
    let collector =
      Hrt_harness.Exp.make_spread_collector sys ~workers ~period
        ~settle:(Time.ms 10)
    in
    Hrt_harness.Exp.run_group_admission ~phase_correction:pc sys ~workers
      (Constraints.periodic ~period ~slice:(Time.us 40) ())
      ();
    Scheduler.run ~until:(Time.ms 40) sys;
    let sp = Hrt_harness.Exp.spreads collector in
    Alcotest.(check bool) "collected" true (Array.length sp > 10);
    Hrt_stats.Summary.mean (Hrt_stats.Summary.of_array sp)
  in
  let raw = measure false and fixed = measure true in
  Alcotest.(check bool) "correction tightens spread" true (fixed < raw *. 0.85)

let test_release_orders_recorded () =
  let workers = 5 in
  let sys = mk ~num_cpus:(workers + 1) () in
  let group = Group.create sys ~name:"orders" in
  let barrier = Gbarrier.create sys ~parties:workers in
  let session = ref None in
  for i = 1 to workers do
    ignore
      (Scheduler.spawn sys ~cpu:i ~bound:true
         (Program.seq
            [
              Group.join group;
              Gbarrier.cross barrier;
              (fun _ ->
                (if !session = None then
                   session :=
                     Some
                       (Group_sched.prepare group
                          (Constraints.periodic ~period:(Time.us 500)
                             ~slice:(Time.us 50) ())));
                Thread.Exit);
              (let b = ref None in
               fun ctx ->
                 let body =
                   match !b with
                   | Some body -> body
                   | None ->
                     let body =
                       Group_sched.change_constraints (Option.get !session)
                         ~on_result:(fun v ->
                           Alcotest.(check bool) "admitted" true
                             (Admission.admitted v))
                     in
                     b := Some body;
                     body
                 in
                 body ctx);
              Program.compute_forever (Time.sec 3600);
            ]))
  done;
  Scheduler.run ~until:(Time.ms 30) sys;
  let session = Option.get !session in
  Alcotest.(check (option bool)) "verdict" (Some true)
    (Group_sched.succeeded session);
  let orders =
    List.filter_map
      (fun th -> Group_sched.release_order session th)
      (Group.members group)
  in
  Alcotest.(check int) "all ordered" workers (List.length orders);
  Alcotest.(check (list int)) "orders are a permutation" [ 0; 1; 2; 3; 4 ]
    (List.sort compare orders)

let suite =
  [
    Alcotest.test_case "join and leave" `Quick test_join_leave;
    Alcotest.test_case "named registry" `Quick test_registry;
    Alcotest.test_case "destroy nonempty rejected" `Quick test_destroy_nonempty_rejected;
    Alcotest.test_case "group lock" `Quick test_group_lock;
    Alcotest.test_case "election: single leader" `Quick test_election_single_leader;
    Alcotest.test_case "barrier releases all" `Quick test_barrier_releases_all;
    Alcotest.test_case "barrier holds until full" `Quick test_barrier_no_early_release;
    Alcotest.test_case "barrier order and stagger" `Quick test_barrier_release_order_and_stagger;
    Alcotest.test_case "barrier reusable across rounds" `Quick test_barrier_reusable_rounds;
    Alcotest.test_case "reduction combines" `Quick test_reduction_combines;
    Alcotest.test_case "reduction OR over errors" `Quick test_reduction_or_semantics;
    Alcotest.test_case "group admission success" `Quick test_group_admission_success;
    Alcotest.test_case "group admission all-or-nothing" `Quick test_group_admission_all_or_nothing;
    Alcotest.test_case "phase correction tightens spread" `Quick test_phase_correction_tightens_spread;
    Alcotest.test_case "release orders recorded" `Quick test_release_orders_recorded;
  ]
