(* Long mixed-workload integration tests with global invariants. *)

open Hrt_engine
open Hrt_core
open Hrt_stats

let phi = Hrt_hw.Platform.phi

let overhead_ns (acc : Account.t) ghz =
  (Summary.total (Account.irq_cycles acc)
  +. Summary.total (Account.other_cycles acc)
  +. Summary.total (Account.resched_cycles acc)
  +. Summary.total (Account.switch_cycles acc))
  /. ghz

(* Every nanosecond of a CPU goes somewhere: thread progress, idle,
   scheduler overhead, or SMI missing time. *)
let test_time_conservation () =
  let horizon = Time.ms 50 in
  let sys = Scheduler.create ~num_cpus:2 phi in
  let threads =
    [
      Exp_helpers.periodic sys ~cpu:1 ~period:(Time.us 100) ~slice:(Time.us 30);
      Exp_helpers.periodic sys ~cpu:1 ~period:(Time.us 500) ~slice:(Time.us 100);
      Scheduler.spawn sys ~cpu:1 ~bound:true
        (Program.compute_forever (Time.us 40));
    ]
  in
  let smi =
    Hrt_hw.Smi.install (Scheduler.engine sys)
      { Hrt_hw.Smi.mean_interval = Time.ms 2; duration_mean = Time.us 40; duration_jitter = 0.2 }
  in
  Scheduler.run ~until:horizon sys;
  let used =
    List.fold_left
      (fun acc (th : Thread.t) -> acc +. Int64.to_float th.Thread.cpu_time)
      0. threads
  in
  let idle = Int64.to_float (Local_sched.idle_time (Scheduler.sched sys 1)) in
  let overhead =
    overhead_ns (Local_sched.account (Scheduler.sched sys 1)) phi.Hrt_hw.Platform.ghz
  in
  let stolen = Int64.to_float (Hrt_hw.Smi.total_stolen smi) in
  let accounted = used +. idle +. overhead +. stolen in
  let total = Int64.to_float horizon in
  let ratio = accounted /. total in
  Alcotest.(check bool)
    (Printf.sprintf "time conserved (ratio %.4f)" ratio)
    true
    (ratio > 0.97 && ratio < 1.03)

let test_soak_mixed_no_crash_deterministic () =
  (* Everything at once for 200 simulated ms: RT group, sporadic, batch,
     tasks, devices, SMIs. The run must be deterministic and keep all
     accounting invariants. *)
  let fingerprint () =
    let sys = Scheduler.create ~seed:1234L ~num_cpus:6 phi in
    (* RT group on CPUs 1-4. *)
    Hrt_harness.Exp.run_group_admission sys ~workers:4
      (Constraints.periodic ~period:(Time.us 200) ~slice:(Time.us 60) ())
      ();
    (* Batch threads, unbound: work stealing moves them around. *)
    for i = 1 to 6 do
      ignore
        (Scheduler.spawn sys ~name:(Printf.sprintf "batch%d" i) ~cpu:5
           (Program.compute_forever (Time.us 70)))
    done;
    (* Tasks on CPU 5. *)
    for _ = 1 to 50 do
      Scheduler.submit_task sys ~cpu:5 ~declared:(Time.us 10)
        ~duration:(Time.us 8) (fun () -> ())
    done;
    for _ = 1 to 10 do
      Scheduler.submit_task sys ~cpu:5 ~duration:(Time.us 25) (fun () -> ())
    done;
    (* Device noise on CPU 0, SMIs everywhere. *)
    let dev =
      Scheduler.add_device sys ~name:"nic" ~mean_interval:(Time.us 120)
        ~handler_cost:(Hrt_hw.Platform.cost 15_000. 1_500.)
        ()
    in
    Scheduler.start_device sys dev;
    ignore
      (Hrt_hw.Smi.install (Scheduler.engine sys)
         { Hrt_hw.Smi.mean_interval = Time.ms 1; duration_mean = Time.us 25; duration_jitter = 0.2 });
    Scheduler.run ~until:(Time.ms 200) sys;
    (match Hrt_group.Group.find sys "exp-group" with
    | Some g ->
      (* Group members kept lock-step through all the noise. *)
      List.iter
        (fun (th : Thread.t) ->
          Alcotest.(check bool) "group member active" true
            (th.Thread.arrivals > 800))
        (Hrt_group.Group.members g);
      Hrt_group.Group.dispose g
    | None -> Alcotest.fail "group vanished");
    ( Scheduler.total_arrivals sys,
      Scheduler.total_misses sys,
      Engine.events_executed (Scheduler.engine sys) )
  in
  let a = fingerprint () in
  let b = fingerprint () in
  Alcotest.(check bool) "soak deterministic" true (a = b);
  let arrivals, _, events = a in
  Alcotest.(check bool) "plenty of activity" true
    (arrivals > 3000 && events > 10_000)

let test_soak_group_isolated_from_noise () =
  (* The group's miss count must not depend on the noise on other CPUs. *)
  let run ~noisy =
    let sys = Scheduler.create ~seed:7L ~num_cpus:6 phi in
    Hrt_harness.Exp.run_group_admission sys ~workers:4
      (Constraints.periodic ~period:(Time.us 200) ~slice:(Time.us 60) ())
      ();
    if noisy then begin
      for i = 1 to 8 do
        ignore
          (Scheduler.spawn sys ~name:(Printf.sprintf "noise%d" i) ~cpu:5
             (Program.compute_forever (Time.us 100)))
      done;
      let dev =
        Scheduler.add_device sys ~name:"nic" ~mean_interval:(Time.us 100)
          ~handler_cost:(Hrt_hw.Platform.cost 20_000. 2_000.)
          ()
      in
      Scheduler.start_device sys dev
    end;
    Scheduler.run ~until:(Time.ms 100) sys;
    let g = Option.get (Hrt_group.Group.find sys "exp-group") in
    let misses =
      List.fold_left
        (fun acc (th : Thread.t) -> acc + th.Thread.misses)
        0 (Hrt_group.Group.members g)
    in
    Hrt_group.Group.dispose g;
    misses
  in
  Alcotest.(check int) "quiet run misses" (run ~noisy:false) (run ~noisy:true)

let suite =
  [
    Alcotest.test_case "per-CPU time conservation" `Quick test_time_conservation;
    Alcotest.test_case "mixed soak: deterministic, active" `Slow test_soak_mixed_no_crash_deterministic;
    Alcotest.test_case "group isolated from node noise" `Slow test_soak_group_isolated_from_noise;
  ]
