let () =
  Alcotest.run "hrt"
    [
      ("time", Test_time.suite);
      ("rng", Test_rng.suite);
      ("event_queue", Test_event_queue.suite);
      ("engine", Test_engine.suite);
      ("trace", Test_trace.suite);
      ("stats", Test_stats.suite);
      ("par", Test_par.suite);
      ("obs", Test_obs.suite);
      ("hw", Test_hw.suite);
      ("kernel", Test_kernel.suite);
      ("buddy", Test_buddy.suite);
      ("core-data", Test_core_data.suite);
      ("policy", Test_policy.suite);
      ("scheduler", Test_sched.suite);
      ("scheduler-edge", Test_sched_edge.suite);
      ("group", Test_group.suite);
      ("bsp", Test_bsp.suite);
      ("properties", Test_props.suite);
      ("harness", Test_harness.suite);
      ("golden", Test_golden.suite);
      ("cyclic", Test_cyclic.suite);
      ("soak", Test_soak.suite);
      ("omp-runtime", Test_omp.suite);
      ("nesl", Test_nesl.suite);
      ("verify", Test_verify.suite);
      ("fault", Test_fault.suite);
      ("lint", Test_lint.suite);
      ("admit", Test_admit.suite);
      ("serve", Test_serve.suite);
    ]
