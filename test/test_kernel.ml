open Hrt_engine
open Hrt_kernel

(* ---- Waitqueue ---- *)

let test_waitqueue_fifo () =
  let q = Waitqueue.create () in
  Waitqueue.enqueue q 1;
  Waitqueue.enqueue q 2;
  Waitqueue.enqueue q 3;
  Alcotest.(check (option int)) "oldest first" (Some 1) (Waitqueue.wake_one q);
  Alcotest.(check (list int)) "wake all in order" [ 2; 3 ] (Waitqueue.wake_all q);
  Alcotest.(check bool) "empty" true (Waitqueue.is_empty q)

let test_waitqueue_remove () =
  let q = Waitqueue.create () in
  List.iter (Waitqueue.enqueue q) [ 1; 2; 3; 2 ];
  Alcotest.(check (option int)) "removes first match" (Some 2)
    (Waitqueue.remove q (fun x -> x = 2));
  Alcotest.(check int) "others kept" 3 (Waitqueue.length q);
  Alcotest.(check (list int)) "order preserved" [ 1; 3; 2 ] (Waitqueue.wake_all q)

let test_waitqueue_remove_missing () =
  let q = Waitqueue.create () in
  Waitqueue.enqueue q 1;
  Alcotest.(check (option int)) "no match" None
    (Waitqueue.remove q (fun x -> x = 9));
  Alcotest.(check int) "unchanged" 1 (Waitqueue.length q)

(* ---- Deque ---- *)

let test_deque_ends () =
  let d = Deque.create () in
  Deque.push_back d 2;
  Deque.push_back d 3;
  Deque.push_front d 1;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Deque.to_list d);
  Alcotest.(check (option int)) "peek" (Some 1) (Deque.peek_front d);
  Alcotest.(check (option int)) "pop" (Some 1) (Deque.pop_front d);
  Alcotest.(check int) "length" 2 (Deque.length d)

let test_deque_remove () =
  let d = Deque.create () in
  List.iter (Deque.push_back d) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "remove middle" (Some 3)
    (Deque.remove d (fun x -> x = 3));
  Alcotest.(check (list int)) "rest in order" [ 1; 2; 4 ] (Deque.to_list d);
  Alcotest.(check (option int)) "remove missing" None
    (Deque.remove d (fun x -> x = 9))

let test_deque_mixed_ops () =
  let d = Deque.create () in
  Deque.push_back d 1;
  ignore (Deque.pop_front d);
  Deque.push_back d 2;
  Deque.push_front d 0;
  Deque.push_back d 3;
  Alcotest.(check (list int)) "interleaved" [ 0; 2; 3 ] (Deque.to_list d)

(* ---- Task ---- *)

let test_task_routing () =
  let q = Task.create () in
  Task.submit q ~declared:(Time.us 5) ~duration:(Time.us 4) ~now:0L (fun () -> ());
  Task.submit q ~duration:(Time.us 10) ~now:0L (fun () -> ());
  Alcotest.(check int) "sized" 1 (Task.sized_pending q);
  Alcotest.(check int) "unsized" 1 (Task.unsized_pending q)

let test_task_take_sized_fit () =
  let q = Task.create () in
  Task.submit q ~declared:(Time.us 50) ~duration:(Time.us 40) ~now:0L (fun () -> ());
  Task.submit q ~declared:(Time.us 5) ~duration:(Time.us 4) ~now:0L (fun () -> ());
  (* Room for 10us: the 50us task is skipped, the 5us one returned. *)
  (match Task.take_sized q ~fits:(Time.us 10) with
  | Some t -> Alcotest.(check (option int64)) "small one" (Some (Time.us 5)) t.Task.declared
  | None -> Alcotest.fail "expected a task");
  Alcotest.(check int) "big one still queued" 1 (Task.sized_pending q);
  Alcotest.(check bool) "nothing fits 10us now" true
    (Task.take_sized q ~fits:(Time.us 10) = None)

let test_task_fifo_within_fits () =
  let q = Task.create () in
  let mk tag = Task.submit q ~declared:(Time.us 1) ~duration:(Time.us 1) ~now:(Int64.of_int tag) (fun () -> ()) in
  mk 1; mk 2; mk 3;
  let t = Option.get (Task.take_sized q ~fits:(Time.us 10)) in
  Alcotest.(check int64) "oldest first" 1L t.Task.submitted

let test_task_latency () =
  let q = Task.create () in
  Task.submit q ~declared:1L ~duration:1L ~now:100L (fun () -> ());
  let t = Option.get (Task.take_sized q ~fits:10L) in
  Task.complete q t ~now:350L;
  Alcotest.(check int) "executed" 1 (Task.executed q);
  Alcotest.(check (float 1e-9)) "latency" 250. (Task.mean_latency q)

let test_task_unsized_order () =
  let q = Task.create () in
  Task.submit q ~duration:1L ~now:1L (fun () -> ());
  Task.submit q ~duration:1L ~now:2L (fun () -> ());
  let a = Option.get (Task.take_unsized q) in
  Alcotest.(check int64) "fifo" 1L a.Task.submitted

(* ---- Worksteal ---- *)

let test_worksteal_prefers_loaded () =
  let rng = Rng.create 41L in
  let load = function 1 -> 10 | 2 -> 3 | _ -> 0 in
  for _ = 1 to 50 do
    match Worksteal.pick_victim rng ~self:0 ~n:3 ~load with
    | Some v -> Alcotest.(check bool) "victim has load" true (v = 1 || v = 2)
    | None -> Alcotest.fail "two loaded victims exist"
  done;
  (* With both probes available, the heavier one must win when both are
     probed; over many trials victim 1 dominates. *)
  let ones = ref 0 in
  for _ = 1 to 200 do
    match Worksteal.pick_victim rng ~self:0 ~n:3 ~load with
    | Some 1 -> incr ones
    | _ -> ()
  done;
  Alcotest.(check bool) "heavier victim dominates" true (!ones > 120)

let test_worksteal_empty () =
  let rng = Rng.create 43L in
  Alcotest.(check (option int)) "nothing to steal" None
    (Worksteal.pick_victim rng ~self:0 ~n:4 ~load:(fun _ -> 0))

let test_worksteal_small_system () =
  let rng = Rng.create 47L in
  Alcotest.(check (option int)) "n<2" None
    (Worksteal.pick_victim rng ~self:0 ~n:1 ~load:(fun _ -> 5));
  (* n=2: the only other CPU. *)
  (match Worksteal.pick_victim rng ~self:0 ~n:2 ~load:(fun i -> if i = 1 then 4 else 0) with
  | Some 1 -> ()
  | _ -> Alcotest.fail "must pick cpu 1")

let test_worksteal_never_self () =
  let rng = Rng.create 53L in
  for _ = 1 to 200 do
    match Worksteal.pick_victim rng ~self:2 ~n:4 ~load:(fun _ -> 1) with
    | Some v -> Alcotest.(check bool) "not self" true (v <> 2)
    | None -> Alcotest.fail "load everywhere"
  done

(* ---- Thread_pool ---- *)

let test_pool_alloc_free () =
  let p = Thread_pool.create ~capacity:3 in
  let a = Option.get (Thread_pool.alloc p) in
  let b = Option.get (Thread_pool.alloc p) in
  let c = Option.get (Thread_pool.alloc p) in
  Alcotest.(check bool) "distinct" true (a <> b && b <> c && a <> c);
  Alcotest.(check (option int)) "exhausted" None (Thread_pool.alloc p);
  Thread_pool.free p b;
  Alcotest.(check int) "in use" 2 (Thread_pool.in_use p);
  Alcotest.(check (option int)) "recycled slot" (Some b) (Thread_pool.alloc p)

let test_pool_double_free () =
  let p = Thread_pool.create ~capacity:2 in
  let a = Option.get (Thread_pool.alloc p) in
  Thread_pool.free p a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Thread_pool.free: slot not in use") (fun () ->
      Thread_pool.free p a)

let test_pool_invalid () =
  Alcotest.check_raises "capacity" (Invalid_argument "Thread_pool.create")
    (fun () -> ignore (Thread_pool.create ~capacity:0))

let suite =
  [
    Alcotest.test_case "waitqueue fifo" `Quick test_waitqueue_fifo;
    Alcotest.test_case "waitqueue remove" `Quick test_waitqueue_remove;
    Alcotest.test_case "waitqueue remove missing" `Quick test_waitqueue_remove_missing;
    Alcotest.test_case "deque ends" `Quick test_deque_ends;
    Alcotest.test_case "deque remove" `Quick test_deque_remove;
    Alcotest.test_case "deque mixed ops" `Quick test_deque_mixed_ops;
    Alcotest.test_case "task routing by size tag" `Quick test_task_routing;
    Alcotest.test_case "task take_sized fit" `Quick test_task_take_sized_fit;
    Alcotest.test_case "task fifo" `Quick test_task_fifo_within_fits;
    Alcotest.test_case "task latency accounting" `Quick test_task_latency;
    Alcotest.test_case "task unsized order" `Quick test_task_unsized_order;
    Alcotest.test_case "worksteal prefers loaded" `Quick test_worksteal_prefers_loaded;
    Alcotest.test_case "worksteal empty" `Quick test_worksteal_empty;
    Alcotest.test_case "worksteal small systems" `Quick test_worksteal_small_system;
    Alcotest.test_case "worksteal never self" `Quick test_worksteal_never_self;
    Alcotest.test_case "thread pool alloc/free" `Quick test_pool_alloc_free;
    Alcotest.test_case "thread pool double free" `Quick test_pool_double_free;
    Alcotest.test_case "thread pool invalid" `Quick test_pool_invalid;
  ]
