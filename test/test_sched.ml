open Hrt_engine
open Hrt_kernel
open Hrt_core

(* End-to-end behaviour of the hard real-time scheduler. *)

let phi = Hrt_hw.Platform.phi

let mk ?(num_cpus = 3) ?(config = Config.default) ?(seed = 42L) () =
  Scheduler.create ~seed ~num_cpus ~config phi

let periodic_body sys ?(work = Time.sec 3600) constr on_admit =
  Program.seq
    [
      Program.of_steps (Scheduler.admission_ops sys constr ~on_result:on_admit);
      Program.compute_forever work;
    ]

let spawn_periodic ?phase ?(cpu = 1) sys ~period ~slice =
  let admitted = ref false in
  let th =
    Scheduler.spawn sys ~cpu ~bound:true
      (periodic_body sys
         (Constraints.periodic ?phase ~period ~slice ())
         (fun v -> admitted := Admission.admitted v))
  in
  (th, admitted)

let test_periodic_lifecycle () =
  let sys = mk () in
  let th, admitted = spawn_periodic sys ~period:(Time.us 100) ~slice:(Time.us 50) in
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check bool) "admitted" true !admitted;
  Alcotest.(check bool) "~98 arrivals" true
    (th.Thread.arrivals >= 95 && th.Thread.arrivals <= 100);
  Alcotest.(check int) "no misses" 0 th.Thread.misses

let test_throttling_proportional () =
  (* cpu_time tracks slice/period across utilization levels. *)
  let run slice_pct =
    let sys = mk () in
    let period = Time.us 100 in
    let slice = Int64.div (Int64.mul period (Int64.of_int slice_pct)) 100L in
    let th, _ = spawn_periodic sys ~period ~slice in
    Scheduler.run ~until:(Time.ms 20) sys;
    Time.to_float_ms th.Thread.cpu_time /. 20.
  in
  let u25 = run 25 and u50 = run 50 and u75 = run 75 in
  Alcotest.(check bool) "25% within tolerance" true (u25 > 0.22 && u25 < 0.28);
  Alcotest.(check bool) "50% within tolerance" true (u50 > 0.46 && u50 < 0.54);
  Alcotest.(check bool) "75% within tolerance" true (u75 > 0.70 && u75 < 0.80)

let test_rejected_thread_stays_aperiodic () =
  let sys = mk () in
  let admitted = ref true in
  let th =
    Scheduler.spawn sys ~cpu:1 ~bound:true
      (periodic_body sys
         (* 90% > 79% capacity under strict reservations. *)
         (Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 90) ())
         (fun v -> admitted := Admission.admitted v))
  in
  Scheduler.run ~until:(Time.ms 5) sys;
  Alcotest.(check bool) "rejected" false !admitted;
  Alcotest.(check bool) "still aperiodic" false (Thread.is_realtime th);
  (* And being alone, it still runs at ~100% as aperiodic. *)
  Alcotest.(check bool) "runs anyway" true
    (Time.to_float_ms th.Thread.cpu_time > 4.0)

let test_edf_two_threads () =
  let sys = mk ~num_cpus:2 () in
  let a, _ = spawn_periodic sys ~cpu:1 ~period:(Time.us 100) ~slice:(Time.us 30) in
  let b, _ = spawn_periodic sys ~cpu:1 ~period:(Time.us 200) ~slice:(Time.us 60) in
  Scheduler.run ~until:(Time.ms 20) sys;
  Alcotest.(check int) "a no misses" 0 a.Thread.misses;
  Alcotest.(check int) "b no misses" 0 b.Thread.misses;
  Alcotest.(check bool) "a ~30%" true
    (let u = Time.to_float_ms a.Thread.cpu_time /. 20. in
     u > 0.27 && u < 0.33);
  Alcotest.(check bool) "b ~30%" true
    (let u = Time.to_float_ms b.Thread.cpu_time /. 20. in
     u > 0.27 && u < 0.33)

let test_edf_orders_by_deadline () =
  (* Two threads with the same period but staggered phases: the dispatch
     order within each period must follow deadlines. *)
  let sys = mk ~num_cpus:2 () in
  let a, _ =
    spawn_periodic sys ~cpu:1 ~period:(Time.us 200) ~slice:(Time.us 40)
  in
  let b, _ =
    spawn_periodic ~phase:(Time.us 100) sys ~cpu:1 ~period:(Time.us 200)
      ~slice:(Time.us 40)
  in
  let order = ref [] in
  Scheduler.set_dispatch_hook sys
    (Some
       (fun _ th time ->
         if Time.(time > Time.ms 2) && Time.(time < Time.ms 3) then
           order := (th.Thread.id, th.Thread.deadline) :: !order));
  Scheduler.run ~until:(Time.ms 4) sys;
  ignore (a, b);
  let sorted = List.rev !order in
  List.iteri
    (fun i (_, d) ->
      match List.nth_opt sorted (i + 1) with
      | Some (_, d') ->
        Alcotest.(check bool) "dispatches in deadline order within window" true
          Time.(d <= d' || d' > 0L)
      | None -> ())
    sorted

let test_infeasible_misses_small () =
  let config = { Config.default with Config.admission_control = false } in
  let sys = mk ~config () in
  let th, _ = spawn_periodic sys ~period:(Time.us 10) ~slice:(Time.us 5) in
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check bool) "misses nearly every period" true
    (float_of_int th.Thread.misses /. float_of_int th.Thread.arrivals > 0.9);
  (* Miss times stay small: a few scheduler overheads, not whole periods. *)
  Alcotest.(check bool) "miss amounts small" true
    (Thread.mean_miss_time th < 20_000.)

let test_sporadic_demotion () =
  let sys = mk () in
  let phase_done = ref false in
  let th =
    Scheduler.spawn sys ~cpu:1 ~bound:true
      (Program.seq
         [
           Program.of_thunks
             [
               (fun { Thread.svc; _ } ->
                 Thread.Set_constraints
                   ( Constraints.sporadic ~size:(Time.us 500)
                       ~deadline:Time.(svc.Thread.now () + Time.ms 8)
                       ~aper_prio:7 (),
                     fun v ->
                       Alcotest.(check bool) "sporadic admitted" true
                         (Admission.admitted v) ));
             ];
           Program.of_steps [ Thread.Compute (Time.us 500) ];
           Program.of_thunks
             [
               (fun _ ->
                 phase_done := true;
                 Thread.Compute (Time.ms 100));
             ];
         ])
  in
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check bool) "work done before deadline" true !phase_done;
  Alcotest.(check int) "no miss" 0 th.Thread.misses;
  (match th.Thread.constr with
  | Constraints.Aperiodic { prio } ->
    Alcotest.(check int) "demoted to aperiodic prio" 7 prio
  | _ -> Alcotest.fail "sporadic not demoted")

let test_smi_pushes_completion () =
  (* A tight-slack thread misses exactly when an SMI eats its slack. *)
  let config = { Config.default with Config.strict_reservations = false } in
  let sys = mk ~config () in
  let th, _ = spawn_periodic sys ~period:(Time.us 100) ~slice:(Time.us 80) in
  ignore
    (Engine.schedule (Scheduler.engine sys) ~at:(Time.us 1050) (fun eng ->
         Hrt_hw.Smi.inject eng ~duration:(Time.us 40)));
  Scheduler.run ~until:(Time.ms 3) sys;
  (* The 40us of missing time exceeds the ~11us of slack per period, so a
     short cascade of misses follows while the debt drains. *)
  Alcotest.(check bool) "a small cascade of misses" true
    (th.Thread.misses >= 1 && th.Thread.misses <= 8);
  Alcotest.(check bool) "missed by at most the SMI duration" true
    (Thread.mean_miss_time th < 60_000.);
  (* No further misses once the debt is gone. *)
  Alcotest.(check bool) "recovers" true (th.Thread.arrivals > 20)

let test_eager_starts_immediately_lazy_delays () =
  let start_of cfg =
    let sys = mk ~config:cfg () in
    let started = ref None in
    let th, _ = spawn_periodic sys ~period:(Time.ms 1) ~slice:(Time.us 100) in
    Scheduler.set_dispatch_hook sys
      (Some
         (fun _ t time ->
           if t == th && Thread.is_realtime t && !started = None then
             started := Some Time.(time - t.Thread.arrival)));
    Scheduler.run ~until:(Time.ms 5) sys;
    (Option.get !started, th.Thread.misses)
  in
  let eager_start, eager_miss = start_of Config.default in
  let lazy_start, lazy_miss =
    start_of { Config.default with Config.dispatch = Config.Lazy }
  in
  Alcotest.(check bool) "eager starts at arrival" true
    Time.(eager_start < Time.us 50);
  Alcotest.(check bool) "lazy starts near latest start" true
    Time.(lazy_start > Time.us 800);
  Alcotest.(check int) "eager no miss" 0 eager_miss;
  Alcotest.(check int) "lazy no miss without noise" 0 lazy_miss

let test_aperiodic_priority () =
  let quantum = { Config.default with Config.aperiodic_quantum = Time.us 500 } in
  let sys = mk ~config:quantum () in
  let hi = Scheduler.spawn sys ~cpu:1 ~bound:true ~prio:5
      (Program.compute_forever (Time.us 50)) in
  let lo = Scheduler.spawn sys ~cpu:1 ~bound:true ~prio:1
      (Program.compute_forever (Time.us 50)) in
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check bool) "high prio dominates" true
    (Time.to_float_ms hi.Thread.cpu_time > 9.0);
  Alcotest.(check bool) "low prio starves while high runnable" true
    (Time.to_float_ms lo.Thread.cpu_time < 1.0)

let test_aperiodic_round_robin () =
  let config = { Config.default with Config.aperiodic_quantum = Time.us 200 } in
  let sys = mk ~config () in
  let a = Scheduler.spawn sys ~cpu:1 ~bound:true (Program.compute_forever (Time.us 50)) in
  let b = Scheduler.spawn sys ~cpu:1 ~bound:true (Program.compute_forever (Time.us 50)) in
  Scheduler.run ~until:(Time.ms 10) sys;
  let ta = Time.to_float_ms a.Thread.cpu_time in
  let tb = Time.to_float_ms b.Thread.cpu_time in
  Alcotest.(check bool) "both progress" true (ta > 3. && tb > 3.);
  Alcotest.(check bool) "fair within 20%" true (Float.abs (ta -. tb) < 2.)

let test_work_stealing () =
  let sys = mk ~num_cpus:4 () in
  (* Eight unbound compute-bound threads all spawned on CPU 1. *)
  let threads =
    List.init 8 (fun i ->
        Scheduler.spawn sys ~name:(Printf.sprintf "w%d" i) ~cpu:1
          (Program.of_steps [ Thread.Compute (Time.ms 2); Thread.Exit ]))
  in
  Scheduler.run ~until:(Time.ms 30) sys;
  let total_steals =
    List.fold_left
      (fun acc i -> acc + Account.steals (Local_sched.account (Scheduler.sched sys i)))
      0 [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "stealing happened" true (total_steals > 0);
  Alcotest.(check bool) "all finished (parallelized)" true
    (List.for_all (fun th -> th.Thread.state = Thread.Exited) threads);
  (* 8 x 2ms = 16ms of work done in well under 16ms thanks to 4 CPUs. *)
  let spread =
    List.sort_uniq compare (List.map (fun th -> th.Thread.cpu) threads)
  in
  Alcotest.(check bool) "ran on several CPUs" true (List.length spread >= 2)

let test_bound_threads_not_stolen () =
  let sys = mk ~num_cpus:4 () in
  let threads =
    List.init 4 (fun i ->
        Scheduler.spawn sys ~name:(Printf.sprintf "b%d" i) ~cpu:1 ~bound:true
          (Program.of_steps [ Thread.Compute (Time.ms 1); Thread.Exit ]))
  in
  Scheduler.run ~until:(Time.ms 30) sys;
  List.iter
    (fun th -> Alcotest.(check int) "stayed on cpu 1" 1 th.Thread.cpu)
    threads

let test_cross_cpu_wake_kicks () =
  let sys = mk ~num_cpus:3 () in
  let sleeper_state = ref "unset" in
  let sleeper =
    Scheduler.spawn sys ~name:"sleeper" ~cpu:2 ~bound:true
      (Program.seq
         [
           Program.of_steps [ Thread.Block ];
           Program.of_thunks
             [
               (fun _ ->
                 sleeper_state := "woken";
                 Thread.Exit);
             ];
         ])
  in
  ignore
    (Scheduler.spawn sys ~name:"waker" ~cpu:1 ~bound:true
       (Program.seq
          [
            Program.of_steps [ Thread.Compute (Time.us 100) ];
            Program.of_thunks
              [
                (fun { Thread.svc; _ } ->
                  svc.Thread.wake sleeper;
                  Thread.Exit);
              ];
          ]));
  Scheduler.run ~until:(Time.ms 5) sys;
  Alcotest.(check string) "woken across CPUs" "woken" !sleeper_state;
  Alcotest.(check bool) "a kick was sent" true
    (Account.kicks (Local_sched.account (Scheduler.sched sys 2)) > 0)

let test_sleep_until () =
  let sys = mk () in
  let woke_at = ref 0L in
  ignore
    (Scheduler.spawn sys ~cpu:1
       (Program.seq
          [
            Program.of_steps [ Thread.Sleep_until (Time.ms 3) ];
            Program.of_thunks
              [
                (fun { Thread.svc; _ } ->
                  woke_at := svc.Thread.now ();
                  Thread.Exit);
              ];
          ]));
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check bool) "woke shortly after 3ms" true
    Time.(!woke_at >= Time.ms 3 && !woke_at < Time.ms 3 + Time.us 50)

let test_exit_frees_slot () =
  let sys = mk () in
  let before = Scheduler.threads_alive sys in
  ignore
    (Scheduler.spawn sys ~cpu:1 (Program.of_steps [ Thread.Compute (Time.us 10) ]));
  Alcotest.(check int) "alive while queued" (before + 1) (Scheduler.threads_alive sys);
  Scheduler.run ~until:(Time.ms 1) sys;
  Alcotest.(check int) "slot freed on exit" before (Scheduler.threads_alive sys)

let test_spawn_validation () =
  let sys = mk () in
  Alcotest.check_raises "bad cpu" (Invalid_argument "Scheduler.spawn: bad CPU")
    (fun () -> ignore (Scheduler.spawn sys ~cpu:99 (Program.of_steps [])))

let test_thread_limit () =
  let config = { Config.default with Config.max_threads = 4 } in
  let sys = mk ~config () in
  for _ = 1 to 4 do
    ignore (Scheduler.spawn sys ~cpu:1 (Program.of_steps [ Thread.Block ]))
  done;
  Alcotest.check_raises "limit" (Failure "Scheduler.spawn: thread limit exceeded")
    (fun () -> ignore (Scheduler.spawn sys ~cpu:1 (Program.of_steps [])))

let test_tasks_do_not_delay_rt () =
  let sys = mk () in
  let th, _ = spawn_periodic sys ~period:(Time.us 100) ~slice:(Time.us 50) in
  (* Swamp the CPU with sized tasks. *)
  for _ = 1 to 200 do
    Scheduler.submit_task sys ~cpu:1 ~declared:(Time.us 20) ~duration:(Time.us 18)
      (fun () -> ())
  done;
  Scheduler.run ~until:(Time.ms 20) sys;
  Alcotest.(check int) "rt unaffected by tasks" 0 th.Thread.misses;
  Alcotest.(check bool) "tasks executed in slack" true
    (Task.executed (Local_sched.tasks (Scheduler.sched sys 1)) > 150)

let test_unsized_tasks_via_helper () =
  let sys = mk () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Scheduler.submit_task sys ~cpu:1 ~duration:(Time.us 10) (fun () -> incr count)
  done;
  Scheduler.run ~until:(Time.ms 5) sys;
  Alcotest.(check int) "all unsized ran" 10 !count

let test_rephase_shifts_schedule () =
  let sys = mk () in
  let th, _ = spawn_periodic sys ~period:(Time.us 100) ~slice:(Time.us 20) in
  Scheduler.run ~until:(Time.ms 1) sys;
  let before = th.Thread.next_arrival in
  Scheduler.rephase sys th ~delta:(Time.us 37);
  Alcotest.(check int64) "shifted" Time.(before + Time.us 37) th.Thread.next_arrival;
  Scheduler.run ~until:(Time.ms 2) sys;
  Alcotest.(check int) "still no misses" 0 th.Thread.misses

let test_determinism_end_to_end () =
  let fingerprint seed =
    let sys = mk ~seed ~num_cpus:4 () in
    let th, _ = spawn_periodic sys ~period:(Time.us 100) ~slice:(Time.us 40) in
    ignore (Scheduler.spawn sys ~cpu:2 (Program.compute_forever (Time.us 30)));
    Scheduler.run ~until:(Time.ms 10) sys;
    ( th.Thread.cpu_time,
      th.Thread.arrivals,
      Engine.events_executed (Scheduler.engine sys) )
  in
  let a = fingerprint 7L and b = fingerprint 7L in
  Alcotest.(check bool) "bit-identical runs" true (a = b);
  let c = fingerprint 8L in
  Alcotest.(check bool) "seed changes details" true (a <> c)

let test_device_irq_charges_cpu () =
  let sys = mk () in
  let dev =
    Scheduler.add_device sys ~name:"disk" ~mean_interval:(Time.us 100)
      ~handler_cost:(Hrt_hw.Platform.cost 20_000. 1_000.)
      ()
  in
  Scheduler.steer_device sys dev ~cpus:[ 1 ];
  Scheduler.start_device sys dev;
  let th = Scheduler.spawn sys ~cpu:1 ~bound:true (Program.compute_forever (Time.us 50)) in
  Scheduler.run ~until:(Time.ms 10) sys;
  (* ~100 interrupts x ~15us handler = ~1.5ms stolen from the thread. *)
  let t = Time.to_float_ms th.Thread.cpu_time in
  Alcotest.(check bool) "thread lost handler time" true (t > 7.0 && t < 9.5)

let suite =
  [
    Alcotest.test_case "periodic lifecycle" `Quick test_periodic_lifecycle;
    Alcotest.test_case "throttling proportional to slice" `Quick test_throttling_proportional;
    Alcotest.test_case "rejected thread stays aperiodic" `Quick test_rejected_thread_stays_aperiodic;
    Alcotest.test_case "two EDF threads coexist" `Quick test_edf_two_threads;
    Alcotest.test_case "EDF dispatch order" `Quick test_edf_orders_by_deadline;
    Alcotest.test_case "infeasible constraints miss small" `Quick test_infeasible_misses_small;
    Alcotest.test_case "sporadic demotion" `Quick test_sporadic_demotion;
    Alcotest.test_case "SMI pushes completion past deadline" `Quick test_smi_pushes_completion;
    Alcotest.test_case "eager vs lazy dispatch point" `Quick test_eager_starts_immediately_lazy_delays;
    Alcotest.test_case "aperiodic priority" `Quick test_aperiodic_priority;
    Alcotest.test_case "aperiodic round robin" `Quick test_aperiodic_round_robin;
    Alcotest.test_case "work stealing spreads load" `Quick test_work_stealing;
    Alcotest.test_case "bound threads not stolen" `Quick test_bound_threads_not_stolen;
    Alcotest.test_case "cross-CPU wake sends kick" `Quick test_cross_cpu_wake_kicks;
    Alcotest.test_case "sleep until" `Quick test_sleep_until;
    Alcotest.test_case "exit frees pool slot" `Quick test_exit_frees_slot;
    Alcotest.test_case "spawn validation" `Quick test_spawn_validation;
    Alcotest.test_case "thread limit enforced" `Quick test_thread_limit;
    Alcotest.test_case "tasks never delay RT threads" `Quick test_tasks_do_not_delay_rt;
    Alcotest.test_case "unsized tasks via helper thread" `Quick test_unsized_tasks_via_helper;
    Alcotest.test_case "rephase shifts schedule" `Quick test_rephase_shifts_schedule;
    Alcotest.test_case "end-to-end determinism" `Quick test_determinism_end_to_end;
    Alcotest.test_case "device irq charges the thread" `Quick test_device_irq_charges_cpu;
  ]
