open Hrt_engine

let test_order () =
  let q = Event_queue.create ~dummy:"" in
  ignore (Event_queue.add q ~time:30L "c");
  ignore (Event_queue.add q ~time:10L "a");
  ignore (Event_queue.add q ~time:20L "b");
  let pop () = Option.get (Event_queue.pop q) in
  Alcotest.(check (pair int64 string)) "first" (10L, "a") (pop ());
  Alcotest.(check (pair int64 string)) "second" (20L, "b") (pop ());
  Alcotest.(check (pair int64 string)) "third" (30L, "c") (pop ());
  Alcotest.(check bool) "empty" true (Event_queue.pop q = None)

let test_fifo_ties () =
  let q = Event_queue.create ~dummy:"" in
  for i = 0 to 9 do
    ignore (Event_queue.add q ~time:5L (string_of_int i))
  done;
  for i = 0 to 9 do
    let _, v = Option.get (Event_queue.pop q) in
    Alcotest.(check string) "insertion order at equal time" (string_of_int i) v
  done

let test_cancel () =
  let q = Event_queue.create ~dummy:"" in
  let a = Event_queue.add q ~time:1L "a" in
  ignore (Event_queue.add q ~time:2L "b");
  Event_queue.cancel q a;
  Alcotest.(check bool) "cancelled not live" false (Event_queue.is_live q a);
  Alcotest.(check int) "size excludes cancelled" 1 (Event_queue.size q);
  let _, v = Option.get (Event_queue.pop q) in
  Alcotest.(check string) "skips cancelled" "b" v

let test_cancel_idempotent () =
  let q = Event_queue.create ~dummy:() in
  let a = Event_queue.add q ~time:1L () in
  Event_queue.cancel q a;
  Event_queue.cancel q a;
  Alcotest.(check int) "size stays 0" 0 (Event_queue.size q)

let test_stale_handle_after_pop () =
  (* Once an event fires its handle must go stale: a slot recycled for a
     later event must not be cancellable through the old handle. *)
  let q = Event_queue.create ~dummy:"" in
  let a = Event_queue.add q ~time:1L "a" in
  ignore (Event_queue.pop q);
  Alcotest.(check bool) "fired handle dead" false (Event_queue.is_live q a);
  let b = Event_queue.add q ~time:2L "b" in
  Event_queue.cancel q a;
  Alcotest.(check bool) "recycled slot untouched" true (Event_queue.is_live q b);
  Alcotest.(check int) "size" 1 (Event_queue.size q)

let test_peek () =
  let q = Event_queue.create ~dummy:() in
  Alcotest.(check bool) "empty peek" true (Event_queue.peek_time q = None);
  let a = Event_queue.add q ~time:7L () in
  ignore (Event_queue.add q ~time:9L ());
  Alcotest.(check (option int64)) "peek min" (Some 7L) (Event_queue.peek_time q);
  Event_queue.cancel q a;
  Alcotest.(check (option int64)) "peek skips cancelled" (Some 9L)
    (Event_queue.peek_time q)

let test_requeue_is_reinsertion () =
  let q = Event_queue.create ~dummy:"" in
  let a = Event_queue.add q ~time:1L "a" in
  let b = Event_queue.add q ~time:2L "b" in
  (* Defer both to the same instant; each requeue is a fresh insertion, so
     they fire in requeue order, not original insertion order. *)
  ignore (Event_queue.requeue q b ~time:50L);
  ignore (Event_queue.requeue q a ~time:50L);
  let _, v1 = Option.get (Event_queue.pop q) in
  let _, v2 = Option.get (Event_queue.pop q) in
  Alcotest.(check string) "b requeued first" "b" v1;
  Alcotest.(check string) "a requeued second" "a" v2

let test_requeue_no_queue_jumping () =
  (* Determinism regression: an old entry requeued onto a timestamp that
     already has later-scheduled events must fire AFTER them (FIFO at equal
     times counts from insertion into that instant). The seed reused the
     original seq, letting the requeued event jump the queue. *)
  let q = Event_queue.create ~dummy:"" in
  let e1 = Event_queue.add q ~time:10L "early" in
  ignore (Event_queue.add q ~time:50L "settled");
  ignore (Event_queue.requeue q e1 ~time:50L);
  let _, v1 = Option.get (Event_queue.pop q) in
  let _, v2 = Option.get (Event_queue.pop q) in
  Alcotest.(check string) "already-scheduled event keeps its turn" "settled" v1;
  Alcotest.(check string) "requeued event goes behind" "early" v2

let test_requeue_invalidates_old_handle () =
  let q = Event_queue.create ~dummy:"" in
  let a = Event_queue.add q ~time:1L "a" in
  let a' = Event_queue.requeue q a ~time:5L in
  Alcotest.(check bool) "old handle stale" false (Event_queue.is_live q a);
  (* Cancelling through the stale handle must not touch the requeued
     event, even though it may share the same pool slot. *)
  Event_queue.cancel q a;
  Alcotest.(check bool) "requeued event survives" true
    (Event_queue.is_live q a');
  let _, v = Option.get (Event_queue.pop q) in
  Alcotest.(check string) "fires" "a" v

(* The pool must not retain popped/cancelled payloads: attach a finalizer
   to a heap-allocated payload, drop every reference, and check the GC can
   actually reclaim it while the queue itself stays live (the queue must
   outlive the GC check, or the collector frees the whole pool and hides
   the leak). *)
let test_pop_releases_payload () =
  let q = Event_queue.create ~dummy:(ref 0) in
  let freed = ref false in
  (let payload = ref 42 in
   Gc.finalise (fun _ -> freed := true) payload;
   ignore (Event_queue.add q ~time:1L payload);
   ignore (Event_queue.pop q));
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "popped payload is collectable" true !freed;
  Alcotest.(check int) "queue still live and empty" 0 (Event_queue.size q)

let test_cancel_releases_payload () =
  let q = Event_queue.create ~dummy:(ref 0) in
  let freed = ref false in
  (let payload = ref 7 in
   Gc.finalise (fun _ -> freed := true) payload;
   let e = Event_queue.add q ~time:1L payload in
   ignore (Event_queue.add q ~time:2L (ref 0));
   Event_queue.cancel q e);
  (* Even where cancellation is lazy the payload must be released
     eagerly. *)
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "cancelled payload is collectable" true !freed;
  Alcotest.(check int) "live size" 1 (Event_queue.size q)

let test_grow_does_not_duplicate_payloads () =
  (* Force several pool grows, drain, and make sure every payload can be
     reclaimed: vacated and never-used slots must hold only the dummy. *)
  let q = Event_queue.create ~dummy:(ref 0) in
  let n = 300 in
  let freed = ref 0 in
  for i = 1 to n do
    let payload = ref i in
    Gc.finalise (fun _ -> incr freed) payload;
    ignore (Event_queue.add q ~time:(Int64.of_int i) payload)
  done;
  let rec drain () =
    match Event_queue.pop q with Some _ -> drain () | None -> ()
  in
  drain ();
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check int) "all payloads collectable" n !freed;
  Alcotest.(check int) "queue still live and empty" 0 (Event_queue.size q)

let test_requeue_cancelled_rejected () =
  let q = Event_queue.create ~dummy:() in
  let a = Event_queue.add q ~time:1L () in
  Event_queue.cancel q a;
  Alcotest.check_raises "requeue cancelled"
    (Invalid_argument "Event_queue.requeue: cancelled entry") (fun () ->
      ignore (Event_queue.requeue q a ~time:2L))

let test_large_volume () =
  let q = Event_queue.create ~dummy:() in
  let r = Rng.create 3L in
  for _ = 1 to 10_000 do
    ignore (Event_queue.add q ~time:(Int64.of_int (Rng.int r 1_000_000)) ())
  done;
  let last = ref Int64.min_int in
  let count = ref 0 in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
      Alcotest.(check bool) "monotone" true (Int64.compare t !last >= 0);
      last := t;
      incr count;
      drain ()
  in
  drain ();
  Alcotest.(check int) "all popped" 10_000 !count

let test_overflow_horizon () =
  (* Events beyond the wheel's 2^32 ns horizon live in the overflow heap;
     they must interleave correctly with near events, including events
     added into the far page after the cursor reaches it. *)
  let q = Event_queue.create ~dummy:"" in
  let far = Int64.shift_left 1L 33 in
  ignore (Event_queue.add q ~time:(Int64.add far 5L) "far2");
  ignore (Event_queue.add q ~time:10L "near");
  ignore (Event_queue.add q ~time:far "far1");
  let t1, v1 = Option.get (Event_queue.pop q) in
  Alcotest.(check (pair int64 string)) "near first" (10L, "near") (t1, v1);
  (* Cursor is now at tick 10; an add just above the far events still
     sorts after them even though they never migrate into the wheel. *)
  ignore (Event_queue.add q ~time:(Int64.add far 7L) "far3");
  let vs = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "far events in order" [ "far1"; "far2"; "far3" ]
    vs

let test_past_adds () =
  (* The queue itself accepts times below the cursor (the engine layers
     its own monotonicity check); they fire before everything at or above
     the cursor, in (time, seq) order. *)
  let q = Event_queue.create ~dummy:"" in
  ignore (Event_queue.add q ~time:100L "now");
  ignore (Event_queue.pop q);
  ignore (Event_queue.add q ~time:50L "late-b");
  ignore (Event_queue.add q ~time:40L "late-a");
  ignore (Event_queue.add q ~time:120L "next");
  let vs = List.init 3 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "past adds first, ordered"
    [ "late-a"; "late-b"; "next" ] vs

let test_take_finish_defer () =
  (* The engine's hot-path protocol: take detaches the minimum but keeps
     the entry pooled; defer_inflight re-inserts it behind existing
     same-instant events; finish releases it. *)
  let q = Event_queue.create ~dummy:"" in
  let h0 = Event_queue.add q ~time:10L "deferred" in
  ignore (Event_queue.add q ~time:50L "settled");
  let h = Event_queue.take q in
  Alcotest.(check bool) "took the min" true (h = h0);
  Alcotest.(check int) "in-flight not counted" 1 (Event_queue.size q);
  Alcotest.(check int) "inflight tick" 10 (Event_queue.inflight_tick q h);
  Alcotest.(check string) "inflight payload" "deferred"
    (Event_queue.payload q h);
  Event_queue.defer_inflight q h ~time:50L;
  Alcotest.(check bool) "handle survives a defer" true
    (Event_queue.is_live q h);
  let _, v1 = Option.get (Event_queue.pop q) in
  Alcotest.(check string) "settled keeps its turn" "settled" v1;
  let h2 = Event_queue.take q in
  Alcotest.(check string) "deferred fires behind" "deferred"
    (Event_queue.payload q h2);
  Event_queue.finish q h2;
  Alcotest.(check bool) "no_tick when empty" true
    (Event_queue.next_tick q = Event_queue.no_tick)

let suite =
  [
    Alcotest.test_case "time order" `Quick test_order;
    Alcotest.test_case "FIFO within equal times" `Quick test_fifo_ties;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "stale handle after pop" `Quick
      test_stale_handle_after_pop;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "requeue is a fresh insertion" `Quick
      test_requeue_is_reinsertion;
    Alcotest.test_case "requeue cannot jump same-time FIFO" `Quick
      test_requeue_no_queue_jumping;
    Alcotest.test_case "requeue invalidates old handle" `Quick
      test_requeue_invalidates_old_handle;
    Alcotest.test_case "requeue cancelled rejected" `Quick test_requeue_cancelled_rejected;
    Alcotest.test_case "pop releases payload" `Quick test_pop_releases_payload;
    Alcotest.test_case "cancel releases payload" `Quick
      test_cancel_releases_payload;
    Alcotest.test_case "grow retains no payloads" `Quick
      test_grow_does_not_duplicate_payloads;
    Alcotest.test_case "10k random events sorted" `Quick test_large_volume;
    Alcotest.test_case "overflow horizon interleaving" `Quick
      test_overflow_horizon;
    Alcotest.test_case "past adds fire first" `Quick test_past_adds;
    Alcotest.test_case "take/defer/finish protocol" `Quick
      test_take_finish_defer;
  ]
