(* The pluggable policy layer: unit tests of both POLICY implementations,
   and the integration result the layer exists to demonstrate — past the
   Liu-Layland bound, rate-monotonic dispatch misses deadlines on a
   workload EDF schedules cleanly. *)

open Hrt_engine
open Hrt_core

let mk_thread constr =
  let th =
    Thread.make ~id:1 ~name:"t" ~cpu:0 (fun _ -> Thread.Exit)
  in
  th.Thread.constr <- constr;
  th

let periodic_thread ~period ~deadline ~slice_left =
  let th = mk_thread (Constraints.periodic ~period ~slice:(Time.us 10) ()) in
  th.Thread.deadline <- deadline;
  th.Thread.slice_left <- slice_left;
  th

let test_kinds () =
  Alcotest.(check string) "edf name" "edf" (Policy.name (Policy.of_kind Config.Edf));
  Alcotest.(check string) "rm name" "rm" (Policy.name (Policy.of_kind Config.Rm));
  Alcotest.(check bool) "edf kind" true
    (Policy.kind (Policy.of_kind Config.Edf) = Config.Edf);
  Alcotest.(check bool) "rm kind" true
    (Policy.kind (Policy.of_kind Config.Rm) = Config.Rm);
  Alcotest.(check bool) "of_string edf" true
    (Config.policy_of_string "edf" = Some Config.Edf);
  Alcotest.(check bool) "of_string rm" true
    (Config.policy_of_string "rm" = Some Config.Rm);
  Alcotest.(check bool) "of_string junk" true
    (Config.policy_of_string "fifo" = None)

let test_edf_key_is_deadline () =
  let edf = Policy.of_kind Config.Edf in
  let th = periodic_thread ~period:(Time.us 100) ~deadline:123L ~slice_left:1L in
  Alcotest.(check int64) "key = deadline" 123L (Policy.run_key edf th);
  (* EDF ranks by deadline regardless of period. *)
  let short = periodic_thread ~period:(Time.us 10) ~deadline:200L ~slice_left:1L in
  Alcotest.(check bool) "earlier deadline preempts" true
    (Policy.preempts edf th ~over:short);
  Alcotest.(check bool) "later deadline does not" false
    (Policy.preempts edf short ~over:th)

let test_rm_key_is_period () =
  let rm = Policy.of_kind Config.Rm in
  let short = periodic_thread ~period:(Time.us 10) ~deadline:200L ~slice_left:1L in
  let long = periodic_thread ~period:(Time.us 100) ~deadline:123L ~slice_left:1L in
  Alcotest.(check int64) "key = period" (Time.us 10) (Policy.run_key rm short);
  (* RM ranks by period regardless of deadline: the short-period thread
     wins even though its current deadline is later. *)
  Alcotest.(check bool) "shorter period preempts" true
    (Policy.preempts rm short ~over:long);
  Alcotest.(check bool) "longer period does not" false
    (Policy.preempts rm long ~over:short)

let test_rm_sporadic_deadline_monotonic () =
  let rm = Policy.of_kind Config.Rm in
  let th =
    mk_thread (Constraints.sporadic ~size:(Time.us 10) ~deadline:500L ())
  in
  th.Thread.arrival <- 100L;
  th.Thread.deadline <- 500L;
  Alcotest.(check int64) "key = relative deadline" 400L (Policy.run_key rm th);
  let aper = mk_thread (Constraints.aperiodic ()) in
  Alcotest.(check int64) "aperiodic key is weakest" Int64.max_int
    (Policy.run_key rm aper)

let test_missed_and_latest_start () =
  List.iter
    (fun kind ->
      let p = Policy.of_kind kind in
      let th =
        periodic_thread ~period:(Time.us 100) ~deadline:1000L ~slice_left:50L
      in
      Alcotest.(check bool) "not missed before deadline" false
        (Policy.missed p ~now:999L th);
      Alcotest.(check bool) "missed at deadline with slice owed" true
        (Policy.missed p ~now:1000L th);
      th.Thread.slice_left <- 0L;
      Alcotest.(check bool) "no miss when slice done" false
        (Policy.missed p ~now:1000L th);
      th.Thread.slice_left <- 50L;
      (* latest_start = deadline - slice_left - slack *)
      Alcotest.(check int64) "latest start" 940L
        (Policy.latest_start p ~slack:10L th))
    [ Config.Edf; Config.Rm ]

(* The headline integration result (the `ablation-policy` experiment):
   sweeping total utilization past the 2-task Liu-Layland bound (~82.8%),
   RM starts missing deadlines on a set EDF still schedules cleanly —
   and RM admission would have rejected exactly those sets. *)
let test_rm_misses_past_bound_edf_clean () =
  let points = Hrt_harness.Ablations.edf_vs_rm_points ~ctx:(Hrt_harness.Exp.Ctx.quick ()) () in
  let low = List.hd points in
  let high = List.nth points (List.length points - 1) in
  Alcotest.(check bool) "below bound: RM admits" true low.Hrt_harness.Ablations.rm_admissible;
  Alcotest.(check int) "below bound: RM clean" 0 low.Hrt_harness.Ablations.rm_misses;
  Alcotest.(check int) "below bound: EDF clean" 0 low.Hrt_harness.Ablations.edf_misses;
  Alcotest.(check bool) "past bound: RM rejects" false high.Hrt_harness.Ablations.rm_admissible;
  Alcotest.(check bool) "past bound: RM misses" true
    (high.Hrt_harness.Ablations.rm_misses > 0);
  Alcotest.(check int) "past bound: EDF still clean" 0
    high.Hrt_harness.Ablations.edf_misses;
  Alcotest.(check bool) "both ran the same arrivals" true
    (high.Hrt_harness.Ablations.edf_arrivals > 0
    && high.Hrt_harness.Ablations.edf_arrivals
       = high.Hrt_harness.Ablations.rm_arrivals)

(* A scheduler built with policy = Rm actually dispatches rate-
   monotonically: with one short-period and one long-period thread
   over-committed on one CPU, every miss lands on the long-period
   thread (under EDF the misses would be shared by deadline order). *)
let test_rm_dispatch_protects_short_period () =
  let config =
    {
      Config.default with
      Config.admission_control = false;
      policy = Config.Rm;
    }
  in
  let sys = Scheduler.create ~num_cpus:2 ~config Hrt_hw.Platform.phi in
  (* Simultaneous release (see Ablations.edf_vs_rm_points): the critical
     instant is what exposes RM's bound. *)
  let phase = Time.ms 5 in
  let short =
    Hrt_harness.Exp.periodic_thread sys ~cpu:1 ~phase ~period:(Time.us 1000)
      ~slice:(Time.us 450) ()
  in
  let long =
    Hrt_harness.Exp.periodic_thread sys ~cpu:1 ~phase ~period:(Time.us 1500)
      ~slice:(Time.us 675) ()
  in
  ignore
    (Engine.schedule (Scheduler.engine sys) ~at:(Time.ms 2) (fun _ ->
         Scheduler.reanchor sys short ~first_arrival:(Time.ms 3);
         Scheduler.reanchor sys long ~first_arrival:(Time.ms 3)));
  Scheduler.run ~until:(Time.ms 100) sys;
  Alcotest.(check int) "short-period thread never misses" 0
    short.Thread.misses;
  Alcotest.(check bool) "long-period thread takes every miss" true
    (long.Thread.misses > 0)

let suite =
  [
    Alcotest.test_case "policy kinds and names" `Quick test_kinds;
    Alcotest.test_case "EDF keys by deadline" `Quick test_edf_key_is_deadline;
    Alcotest.test_case "RM keys by period" `Quick test_rm_key_is_period;
    Alcotest.test_case "RM sporadic: deadline monotonic" `Quick
      test_rm_sporadic_deadline_monotonic;
    Alcotest.test_case "miss check and lazy horizon" `Quick
      test_missed_and_latest_start;
    Alcotest.test_case "RM misses past Liu-Layland; EDF clean" `Quick
      test_rm_misses_past_bound_edf_clean;
    Alcotest.test_case "RM dispatch protects the short period" `Quick
      test_rm_dispatch_protects_short_period;
  ]
