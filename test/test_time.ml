open Hrt_engine

let check = Alcotest.(check int64)

let test_units () =
  check "us" 1_000L (Time.us 1);
  check "ms" 1_000_000L (Time.ms 1);
  check "sec" 1_000_000_000L (Time.sec 1);
  check "ns" 17L (Time.ns 17);
  check "negative us" (-2_000L) (Time.us (-2))

let test_arith () =
  check "add" 30L Time.(10L + 20L);
  check "sub" (-10L) Time.(10L - 20L);
  check "mul" 50L Time.(10L * 5);
  check "div" 3L Time.(10L / 3);
  Alcotest.(check bool) "lt" true Time.(1L < 2L);
  Alcotest.(check bool) "le eq" true Time.(2L <= 2L);
  Alcotest.(check bool) "gt" false Time.(1L > 2L);
  Alcotest.(check bool) "ge" true Time.(2L >= 2L)

let test_min_max () =
  check "min" 1L (Time.min 1L 2L);
  check "max" 2L (Time.max 1L 2L);
  check "min neg" (-5L) (Time.min (-5L) 3L)

let test_float_conversions () =
  Alcotest.(check (float 1e-9)) "to_float_us" 1.5 (Time.to_float_us 1_500L);
  Alcotest.(check (float 1e-9)) "to_float_ms" 2.25 (Time.to_float_ms 2_250_000L);
  Alcotest.(check (float 1e-9)) "to_float_s" 0.5 (Time.to_float_s 500_000_000L);
  check "of_float_us rounds" 1_500L (Time.of_float_us 1.5);
  check "of_float_us rounds nearest" 2L (Time.of_float_us 0.0015)

let test_cycles () =
  (* 1.3 GHz: 1000 ns = 1300 cycles exactly. *)
  check "cycles of 1us at 1.3GHz" 1300L (Time.cycles_of_ns ~ghz:1.3 (Time.us 1));
  check "ns of cycles round trip" (Time.us 1)
    (Time.ns_of_cycles ~ghz:1.3 1300L);
  (* Conversion back is conservative: never later (>= requested). *)
  let v = Time.ns_of_cycles ~ghz:1.3 1301L in
  Alcotest.(check bool) "ceil rounding" true Time.(v >= 1001L)

let test_pp () =
  let s v = Format.asprintf "%a" Time.pp v in
  Alcotest.(check string) "ns" "500ns" (s 500L);
  Alcotest.(check string) "us" "12.500us" (s 12_500L);
  Alcotest.(check string) "ms" "3.200ms" (s 3_200_000L);
  Alcotest.(check string) "s" "1.500s" (s 1_500_000_000L)

let suite =
  [
    Alcotest.test_case "unit constructors" `Quick test_units;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "float conversions" `Quick test_float_conversions;
    Alcotest.test_case "cycle conversions" `Quick test_cycles;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]
