open Hrt_engine
open Hrt_core

(* ---- Constraints ---- *)

let test_constructors () =
  (match Constraints.aperiodic ~prio:3 () with
  | Constraints.Aperiodic { prio } -> Alcotest.(check int) "prio" 3 prio
  | _ -> Alcotest.fail "aperiodic");
  (match Constraints.periodic ~phase:1L ~period:10L ~slice:5L () with
  | Constraints.Periodic { phase; period; slice } ->
    Alcotest.(check int64) "phase" 1L phase;
    Alcotest.(check int64) "period" 10L period;
    Alcotest.(check int64) "slice" 5L slice
  | _ -> Alcotest.fail "periodic")

let test_is_realtime () =
  Alcotest.(check bool) "aperiodic" false
    (Constraints.is_realtime (Constraints.aperiodic ()));
  Alcotest.(check bool) "periodic" true
    (Constraints.is_realtime (Constraints.periodic ~period:10L ~slice:1L ()));
  Alcotest.(check bool) "sporadic" true
    (Constraints.is_realtime (Constraints.sporadic ~size:1L ~deadline:10L ()))

let test_utilization () =
  Alcotest.(check (float 1e-9)) "periodic" 0.25
    (Constraints.utilization (Constraints.periodic ~period:100L ~slice:25L ()));
  Alcotest.(check (float 1e-9)) "aperiodic" 0.
    (Constraints.utilization (Constraints.aperiodic ()))

let test_with_phase () =
  let c = Constraints.periodic ~phase:5L ~period:10L ~slice:2L () in
  (match Constraints.with_phase c 7L with
  | Constraints.Periodic { phase; _ } -> Alcotest.(check int64) "new phase" 7L phase
  | _ -> Alcotest.fail "kind preserved");
  let a = Constraints.aperiodic () in
  Alcotest.(check bool) "aperiodic unchanged" true (Constraints.with_phase a 7L = a)

let test_validate () =
  let ok c = Alcotest.(check bool) "valid" true (Result.is_ok (Constraints.validate c)) in
  let bad c = Alcotest.(check bool) "invalid" true (Result.is_error (Constraints.validate c)) in
  ok (Constraints.periodic ~period:10L ~slice:10L ());
  bad (Constraints.periodic ~period:10L ~slice:11L ());
  bad (Constraints.periodic ~period:0L ~slice:0L ());
  bad (Constraints.periodic ~phase:(-1L) ~period:10L ~slice:1L ());
  ok (Constraints.sporadic ~size:1L ~deadline:100L ());
  bad (Constraints.sporadic ~size:0L ~deadline:100L ());
  ok (Constraints.aperiodic ())

(* ---- Config ---- *)

let test_config_default () =
  let c = Config.default in
  Alcotest.(check (float 1e-9)) "util limit" 0.99 c.Config.util_limit;
  Alcotest.(check (float 1e-9)) "capacity strict" 0.79 (Config.periodic_capacity c);
  Alcotest.(check (float 1e-9)) "capacity relaxed" 0.99
    (Config.periodic_capacity { c with Config.strict_reservations = false });
  Alcotest.(check int64) "10Hz quantum" (Time.ms 100) c.Config.aperiodic_quantum;
  Alcotest.(check bool) "valid" true (Result.is_ok (Config.validate c))

let test_config_validate () =
  let bad c = Alcotest.(check bool) "rejected" true (Result.is_error (Config.validate c)) in
  bad { Config.default with Config.util_limit = 0. };
  bad { Config.default with Config.util_limit = 1.5 };
  bad { Config.default with Config.sporadic_reservation = -0.1 };
  bad { Config.default with Config.sporadic_reservation = 0.5; aperiodic_reservation = 0.5 };
  bad { Config.default with Config.max_threads = 0 };
  bad { Config.default with Config.min_period = 0L };
  bad { Config.default with Config.min_period = -1L };
  bad { Config.default with Config.min_slice = 0L };
  bad { Config.default with Config.steal_interval = 0L };
  bad { Config.default with Config.lazy_slack = -1L };
  (* The hyperperiod simulation is an EDF demand test: it must not be
     paired with rate-monotonic dispatch. *)
  bad { Config.default with Config.policy = Config.Rm; admission = Config.Hyperperiod_sim };
  Alcotest.(check bool) "edf + hyperperiod ok" true
    (Result.is_ok
       (Config.validate
          { Config.default with Config.admission = Config.Hyperperiod_sim }))

(* ---- Prio_queue ---- *)

let test_pq_order () =
  let q = Prio_queue.create ~capacity:16 in
  List.iter (fun (k, v) -> ignore (Prio_queue.add q ~key:k v))
    [ (30L, "c"); (10L, "a"); (20L, "b") ];
  Alcotest.(check (option (pair int64 string))) "peek" (Some (10L, "a"))
    (Prio_queue.peek q);
  Alcotest.(check (option (pair int64 string))) "pop a" (Some (10L, "a"))
    (Prio_queue.pop q);
  Alcotest.(check (option (pair int64 string))) "pop b" (Some (20L, "b"))
    (Prio_queue.pop q)

let test_pq_ties_fifo () =
  let q = Prio_queue.create ~capacity:16 in
  for i = 0 to 7 do
    ignore (Prio_queue.add q ~key:5L i)
  done;
  for i = 0 to 7 do
    let _, v = Option.get (Prio_queue.pop q) in
    Alcotest.(check int) "fifo" i v
  done

let test_pq_capacity () =
  let q = Prio_queue.create ~capacity:2 in
  Alcotest.(check bool) "fits" true (Prio_queue.add q ~key:1L ());
  Alcotest.(check bool) "fits" true (Prio_queue.add q ~key:2L ());
  Alcotest.(check bool) "full" false (Prio_queue.add q ~key:3L ());
  Alcotest.(check int) "length" 2 (Prio_queue.length q)

let test_pq_remove () =
  let q = Prio_queue.create ~capacity:16 in
  List.iter (fun v -> ignore (Prio_queue.add q ~key:(Int64.of_int v) v)) [ 5; 1; 3 ];
  Alcotest.(check (option int)) "remove middle" (Some 3)
    (Prio_queue.remove q (fun v -> v = 3));
  Alcotest.(check int) "length" 2 (Prio_queue.length q);
  Alcotest.(check (option (pair int64 int))) "heap intact" (Some (1L, 1))
    (Prio_queue.pop q);
  Alcotest.(check (option int)) "remove missing" None
    (Prio_queue.remove q (fun v -> v = 99))

let test_pq_remove_heap_invariant () =
  (* Removal from the middle must keep the heap ordered. *)
  let q = Prio_queue.create ~capacity:64 in
  let r = Rng.create 61L in
  for _ = 1 to 50 do
    let k = Int64.of_int (Rng.int r 1000) in
    ignore (Prio_queue.add q ~key:k k)
  done;
  (* Remove ~10 random elements. *)
  for _ = 1 to 10 do
    let target = Int64.of_int (Rng.int r 1000) in
    ignore (Prio_queue.remove q (fun v -> Int64.compare v target >= 0))
  done;
  let last = ref Int64.min_int in
  let rec drain () =
    match Prio_queue.pop q with
    | None -> ()
    | Some (k, _) ->
      Alcotest.(check bool) "sorted" true (Int64.compare k !last >= 0);
      last := k;
      drain ()
  in
  drain ()

let test_pq_mem_iter_to_list () =
  let q = Prio_queue.create ~capacity:8 in
  List.iter (fun v -> ignore (Prio_queue.add q ~key:(Int64.of_int v) v)) [ 2; 1; 3 ];
  Alcotest.(check bool) "mem" true (Prio_queue.mem q (fun v -> v = 2));
  Alcotest.(check bool) "not mem" false (Prio_queue.mem q (fun v -> v = 9));
  let sum = ref 0 in
  Prio_queue.iter q (fun _ v -> sum := !sum + v);
  Alcotest.(check int) "iter visits all" 6 !sum;
  Alcotest.(check (list (pair int64 int))) "to_list sorted"
    [ (1L, 1); (2L, 2); (3L, 3) ] (Prio_queue.to_list q);
  Prio_queue.clear q;
  Alcotest.(check bool) "cleared" true (Prio_queue.is_empty q)

(* ---- Admission ---- *)

let mk_admission ?(config = Config.default) () = Admission.create config

(* Most data tests only care whether the request was admitted; the
   verdict-shape tests below inspect the full rejection. *)
let request_ok a ~now ~old_constr c =
  Admission.admitted (Admission.request a ~now ~old_constr c)

let test_admission_aperiodic_always () =
  let a = mk_admission () in
  Alcotest.(check bool) "always" true
    (request_ok a ~now:0L ~old_constr:(Constraints.aperiodic ())
       (Constraints.aperiodic ~prio:9 ()))

let test_admission_periodic_capacity () =
  let a = mk_admission () in
  let old = Constraints.aperiodic () in
  let p u = Constraints.periodic ~period:(Time.us 100)
      ~slice:(Int64.of_float (Int64.to_float (Time.us 100) *. u)) () in
  Alcotest.(check bool) "40% fits" true (request_ok a ~now:0L ~old_constr:old (p 0.4));
  Alcotest.(check bool) "another 30% fits" true
    (request_ok a ~now:0L ~old_constr:old (p 0.3));
  (* capacity is 0.79 with strict reservations: 0.4+0.3+0.2 > 0.79 *)
  Alcotest.(check bool) "20% more rejected" false
    (request_ok a ~now:0L ~old_constr:old (p 0.2));
  Alcotest.(check int) "rejection counted" 1 (Admission.rejections a);
  Alcotest.(check (float 1e-9)) "committed util" 0.7 (Admission.periodic_util a)

let test_admission_release () =
  let a = mk_admission () in
  let old = Constraints.aperiodic () in
  let c = Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 70) () in
  Alcotest.(check bool) "70%" true (request_ok a ~now:0L ~old_constr:old c);
  Admission.release a c;
  Alcotest.(check (float 1e-9)) "released" 0. (Admission.periodic_util a);
  Alcotest.(check bool) "can admit again" true
    (request_ok a ~now:0L ~old_constr:old c)

let test_admission_change_restores_on_failure () =
  let a = mk_admission () in
  let old = Constraints.aperiodic () in
  let c1 = Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 50) () in
  Alcotest.(check bool) "first" true (request_ok a ~now:0L ~old_constr:old c1);
  (* Changing to something infeasible keeps the old contribution. *)
  let c2 = Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 90) () in
  Alcotest.(check bool) "change rejected" false
    (request_ok a ~now:0L ~old_constr:c1 c2);
  Alcotest.(check (float 1e-9)) "old restored" 0.5 (Admission.periodic_util a)

let test_admission_granularity () =
  let a = mk_admission () in
  let old = Constraints.aperiodic () in
  Alcotest.(check bool) "period below bound rejected" false
    (request_ok a ~now:0L ~old_constr:old
       (Constraints.periodic ~period:(Time.ns 1500) ~slice:(Time.ns 700) ()))

let test_admission_sporadic_density () =
  let a = mk_admission () in
  let old = Constraints.aperiodic () in
  (* 10% sporadic reservation * 0.99 limit: density must stay below. *)
  let fits =
    Constraints.sporadic ~size:(Time.us 90) ~deadline:(Time.us 1000) ()
  in
  Alcotest.(check bool) "9% density fits" true
    (request_ok a ~now:0L ~old_constr:old fits);
  let too_much =
    Constraints.sporadic ~size:(Time.us 50) ~deadline:(Time.us 1000) ()
  in
  Alcotest.(check bool) "combined density rejected" false
    (request_ok a ~now:0L ~old_constr:old too_much);
  (* After the first one expires, capacity is back. *)
  Alcotest.(check bool) "after expiry" true
    (request_ok a ~now:(Time.us 2000) ~old_constr:old
       (Constraints.sporadic ~phase:0L ~size:(Time.us 90)
          ~deadline:(Time.us 3000) ()))

(* Regression: a rejected change-request used to roll back by
   re-committing [old_constr], which recomputes a sporadic entry's
   density at the *current* [now] — so every failed re-request at a
   later time silently inflated the stored density (size over a
   shrinking window). The rollback must restore the snapshot instead. *)
let test_admission_rollback_no_drift () =
  let a = mk_admission () in
  let aper = Constraints.aperiodic () in
  let sp =
    Constraints.sporadic ~size:(Time.us 90) ~deadline:(Time.us 1000) ()
  in
  Alcotest.(check bool) "sporadic admitted" true
    (request_ok a ~now:0L ~old_constr:aper sp);
  let d0 = Admission.sporadic_density a ~now:0L in
  (* An infeasible upgrade, retried as time passes: each attempt must
     leave the original admission's density untouched. *)
  let infeasible =
    Constraints.sporadic ~size:(Time.us 900) ~deadline:(Time.us 1000) ()
  in
  List.iter
    (fun now ->
      Alcotest.(check bool) "upgrade rejected" false
        (request_ok a ~now ~old_constr:sp infeasible);
      Alcotest.(check (float 1e-9)) "density stable after rejection" d0
        (Admission.sporadic_density a ~now:0L))
    [ Time.us 100; Time.us 300; Time.us 600; Time.us 900 ]

let test_admission_sporadic_past_deadline () =
  let a = mk_admission () in
  Alcotest.(check bool) "deadline before arrival rejected" false
    (request_ok a ~now:(Time.us 100) ~old_constr:(Constraints.aperiodic ())
       (Constraints.sporadic ~size:1L ~deadline:(Time.us 50) ()))

let test_admission_off () =
  let a = mk_admission ~config:{ Config.default with Config.admission_control = false } () in
  Alcotest.(check bool) "infeasible accepted" true
    (request_ok a ~now:0L ~old_constr:(Constraints.aperiodic ())
       (Constraints.periodic ~period:(Time.us 10) ~slice:(Time.us 9) ()));
  (* Structural garbage is still rejected. *)
  Alcotest.(check bool) "invalid still rejected" false
    (request_ok a ~now:0L ~old_constr:(Constraints.aperiodic ())
       (Constraints.periodic ~period:(Time.us 10) ~slice:(Time.us 11) ()))

let test_admission_hyperperiod_sim () =
  (* The paper's prototype (Section 3.2): a schedule simulation that
     charges scheduler overhead, so it catches the Fig 6 feasibility edge
     that plain utilization bounds miss — and still admits more than RM. *)
  let config = { Config.default with Config.admission = Config.Hyperperiod_sim } in
  let overhead = Time.of_float_us 9.2 (* 2 x ~6000 cycles on Phi *) in
  let old = Constraints.aperiodic () in
  let fresh () = Admission.create ~overhead_ns:overhead config in
  (* 10us period, 10% slice: only 10% utilization, but overhead makes the
     demand 10.2us per 10us period -> reject. *)
  Alcotest.(check bool) "catches the overhead edge" false
    (request_ok (fresh ()) ~now:0L ~old_constr:old
       (Constraints.periodic ~period:(Time.us 10) ~slice:(Time.us 1) ()));
  (* 100us period, 50% slice: demand 59.2us per 100us -> fine. *)
  Alcotest.(check bool) "feasible set admitted" true
    (request_ok (fresh ()) ~now:0L ~old_constr:old
       (Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 50) ()));
  (* Admits more than the RM bound: two threads at 35% each (70% total,
     above the 2-thread Liu-Layland bound of ~65% of capacity). *)
  let a = fresh () in
  Alcotest.(check bool) "first 35%" true
    (request_ok a ~now:0L ~old_constr:old
       (Constraints.periodic ~period:(Time.us 1000) ~slice:(Time.us 350) ()));
  Alcotest.(check bool) "second 35% (beats RM)" true
    (request_ok a ~now:0L ~old_constr:old
       (Constraints.periodic ~period:(Time.us 1000) ~slice:(Time.us 350) ()));
  (* But still bounded by capacity: a third one must fail. *)
  Alcotest.(check bool) "third rejected" false
    (request_ok a ~now:0L ~old_constr:old
       (Constraints.periodic ~period:(Time.us 1000) ~slice:(Time.us 350) ()))

let test_admission_rate_monotonic () =
  let a = mk_admission ~config:{ Config.default with Config.policy = Config.Rm } () in
  let old = Constraints.aperiodic () in
  let p u = Constraints.periodic ~period:(Time.us 100)
      ~slice:(Int64.of_float (Int64.to_float (Time.us 100) *. u)) () in
  (* Liu-Layland bound for n=1 is 1.0; scaled by 0.79 capacity. *)
  Alcotest.(check bool) "single 70% fits" true
    (request_ok a ~now:0L ~old_constr:old (p 0.7));
  (* n=2 bound ~0.828 * 0.79 ~ 0.654: a second 10% thread pushes past. *)
  Alcotest.(check bool) "second rejected under RM" false
    (request_ok a ~now:0L ~old_constr:old (p 0.1))

(* ---- Account ---- *)

let test_account_breakdown () =
  let a = Account.create ~ghz:1.3 in
  Account.record_invocation a ~irq_ns:1000L ~other_ns:100L ~pass_ns:2000L
    ~switch_ns:500L;
  Account.record_invocation a ~irq_ns:1000L ~other_ns:100L ~pass_ns:2000L
    ~switch_ns:0L;
  Alcotest.(check int) "invocations" 2 (Account.invocations a);
  Alcotest.(check (float 1e-6)) "irq cycles" 1300. (Hrt_stats.Summary.mean (Account.irq_cycles a));
  (* Zero switch is not added to the switch distribution. *)
  Alcotest.(check int) "switch samples" 1
    (Hrt_stats.Summary.count (Account.switch_cycles a))

let test_account_misses () =
  let a = Account.create ~ghz:1.0 in
  Account.record_arrival a;
  Account.record_arrival a;
  Account.record_miss a ~miss_time_ns:5_000L;
  Alcotest.(check (float 1e-9)) "rate" 0.5 (Account.miss_rate a);
  Alcotest.(check (float 1e-9)) "miss us" 5.
    (Hrt_stats.Summary.mean (Account.miss_times_us a))

let test_account_merge () =
  let a = Account.create ~ghz:1.0 and b = Account.create ~ghz:1.0 in
  Account.record_arrival a;
  Account.record_miss a ~miss_time_ns:1_000L;
  Account.record_arrival b;
  Account.record_kick b;
  let m = Account.merge a b in
  Alcotest.(check int) "arrivals" 2 (Account.arrivals m);
  Alcotest.(check int) "misses" 1 (Account.misses m);
  Alcotest.(check int) "kicks" 1 (Account.kicks m)

(* ---- Program ---- *)

let dummy_thread body = Thread.make ~id:0 ~name:"t" ~cpu:0 body

let dummy_ctx th =
  {
    Thread.svc =
      {
        Thread.now = (fun () -> 0L);
        wake = (fun _ -> ());
        sample = (fun _ _ -> 0L);
        rng = Rng.create 1L;
      };
    self = th;
  }

let pull body th = body (dummy_ctx th)

let test_program_of_steps () =
  let body = Program.of_steps [ Thread.Compute 5L; Thread.Yield ] in
  let th = dummy_thread body in
  Alcotest.(check bool) "step 1" true (pull body th = Thread.Compute 5L);
  Alcotest.(check bool) "step 2" true (pull body th = Thread.Yield);
  Alcotest.(check bool) "then exit" true (pull body th = Thread.Exit);
  Alcotest.(check bool) "stays exit" true (pull body th = Thread.Exit)

let test_program_repeat () =
  let seen = ref [] in
  let body =
    Program.repeat 3 (fun i _ ->
        seen := i :: !seen;
        Thread.Compute 1L)
  in
  let th = dummy_thread body in
  for _ = 1 to 3 do
    ignore (pull body th)
  done;
  Alcotest.(check bool) "exit after n" true (pull body th = Thread.Exit);
  Alcotest.(check (list int)) "indices" [ 0; 1; 2 ] (List.rev !seen)

let test_program_seq () =
  let body =
    Program.seq
      [
        Program.of_steps [ Thread.Compute 1L ];
        Program.of_steps [ Thread.Compute 2L; Thread.Compute 3L ];
      ]
  in
  let th = dummy_thread body in
  Alcotest.(check bool) "1" true (pull body th = Thread.Compute 1L);
  Alcotest.(check bool) "2" true (pull body th = Thread.Compute 2L);
  Alcotest.(check bool) "3" true (pull body th = Thread.Compute 3L);
  Alcotest.(check bool) "exit" true (pull body th = Thread.Exit)

let test_program_forever () =
  let body = Program.compute_forever 7L in
  let th = dummy_thread body in
  for _ = 1 to 10 do
    Alcotest.(check bool) "compute" true (pull body th = Thread.Compute 7L)
  done

let suite =
  [
    Alcotest.test_case "constraint constructors" `Quick test_constructors;
    Alcotest.test_case "is_realtime" `Quick test_is_realtime;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "with_phase" `Quick test_with_phase;
    Alcotest.test_case "constraint validation" `Quick test_validate;
    Alcotest.test_case "config defaults" `Quick test_config_default;
    Alcotest.test_case "config validation" `Quick test_config_validate;
    Alcotest.test_case "prio queue order" `Quick test_pq_order;
    Alcotest.test_case "prio queue FIFO ties" `Quick test_pq_ties_fifo;
    Alcotest.test_case "prio queue capacity" `Quick test_pq_capacity;
    Alcotest.test_case "prio queue remove" `Quick test_pq_remove;
    Alcotest.test_case "prio queue remove keeps invariant" `Quick test_pq_remove_heap_invariant;
    Alcotest.test_case "prio queue mem/iter/to_list" `Quick test_pq_mem_iter_to_list;
    Alcotest.test_case "admission: aperiodic always" `Quick test_admission_aperiodic_always;
    Alcotest.test_case "admission: periodic capacity" `Quick test_admission_periodic_capacity;
    Alcotest.test_case "admission: release" `Quick test_admission_release;
    Alcotest.test_case "admission: failed change restores" `Quick test_admission_change_restores_on_failure;
    Alcotest.test_case "admission: granularity bound" `Quick test_admission_granularity;
    Alcotest.test_case "admission: sporadic density" `Quick test_admission_sporadic_density;
    Alcotest.test_case "admission: rollback drift regression" `Quick
      test_admission_rollback_no_drift;
    Alcotest.test_case "admission: sporadic past deadline" `Quick test_admission_sporadic_past_deadline;
    Alcotest.test_case "admission: control off" `Quick test_admission_off;
    Alcotest.test_case "admission: rate monotonic bound" `Quick test_admission_rate_monotonic;
    Alcotest.test_case "admission: hyperperiod simulation" `Quick test_admission_hyperperiod_sim;
    Alcotest.test_case "account breakdown" `Quick test_account_breakdown;
    Alcotest.test_case "account misses" `Quick test_account_misses;
    Alcotest.test_case "account merge" `Quick test_account_merge;
    Alcotest.test_case "program of_steps" `Quick test_program_of_steps;
    Alcotest.test_case "program repeat" `Quick test_program_repeat;
    Alcotest.test_case "program seq" `Quick test_program_seq;
    Alcotest.test_case "program forever" `Quick test_program_forever;
  ]
