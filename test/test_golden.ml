(* Determinism golden tests: the scheduler is a deterministic discrete-event
   simulation, so the same seed must give the same results — run to run,
   across refactors, and for any parallel job count (the sweep runner
   merges results by submission index). The pinned numbers below were
   captured from the pre-policy-refactor scheduler; the EDF policy must
   reproduce them bit-for-bit (the policy-layer refactor's safety net). *)

open Hrt_harness

let small_sweep ?(jobs = 1) ?sink () =
  let ctx = Exp.Ctx.make ~scale:Exp.Quick ?sink ~jobs () in
  Miss_sweep.sweep ~ctx ~platform:Hrt_hw.Platform.phi
    ~periods_us:[ 1000; 100; 10 ] ~slices_pct:[ 20; 50 ] ()

let csv_bytes points =
  let table = Miss_sweep.rate_table ~title:"golden" points in
  let path = Filename.temp_file "hrt_golden" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Hrt_stats.Csv.write ~path
        ~header:(Hrt_stats.Table.headers table)
        (Hrt_stats.Table.to_rows table);
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

let test_same_seed_same_csv () =
  let a = csv_bytes (small_sweep ()) in
  let b = csv_bytes (small_sweep ()) in
  Alcotest.(check string) "identical CSV bytes" a b

(* (period us, slice %, arrivals, misses) captured at Quick scale (30 ms
   horizon), seed 42, Phi platform, admission control off. *)
let pinned =
  [
    (1000, 20, 30, 0);
    (1000, 50, 30, 0);
    (100, 20, 298, 0);
    (100, 50, 298, 0);
    (10, 20, 2741, 2366);
    (10, 50, 1930, 1747);
  ]

let test_pinned_counts () =
  let points = small_sweep () in
  List.iter
    (fun (period_us, slice_pct, arrivals, misses) ->
      let p =
        List.find
          (fun (x : Miss_sweep.point) ->
            Int64.equal x.Miss_sweep.period (Hrt_engine.Time.us period_us)
            && x.Miss_sweep.slice_pct = slice_pct)
          points
      in
      let label = Printf.sprintf "%dus/%d%%" period_us slice_pct in
      Alcotest.(check int) (label ^ " arrivals") arrivals p.Miss_sweep.arrivals;
      Alcotest.(check int) (label ^ " misses") misses p.Miss_sweep.misses)
    pinned

(* The tentpole guarantee: fanning the sweep across domains changes
   nothing — not the CSV bytes, and not even the metrics stream when an
   enabled sink is threaded through (child sinks are absorbed back in
   submission order). *)

let test_parallel_csv_identical () =
  let seq = csv_bytes (small_sweep ~jobs:1 ()) in
  let par = csv_bytes (small_sweep ~jobs:4 ()) in
  Alcotest.(check string) "jobs=1 and jobs=4 CSV bytes" seq par

let test_parallel_metrics_identical () =
  let metrics_rows jobs =
    let sink = Hrt_obs.Sink.create () in
    ignore (small_sweep ~jobs ~sink ());
    Hrt_obs.Metrics.rows (Hrt_obs.Sink.metrics sink)
  in
  Alcotest.(check (list (list string)))
    "jobs=1 and jobs=4 metrics rows" (metrics_rows 1) (metrics_rows 4)

(* Tiny BSP grid: 4 workers, 20 iterations per point at Quick scale. *)
let bsp_params ~cpus:_ ~barrier =
  { (Hrt_bsp.Bsp.fine_grain ~cpus:4 ~barrier) with Hrt_bsp.Bsp.iters = 40 }

let test_parallel_bsp_identical () =
  let rows jobs =
    let ctx = Exp.Ctx.make ~scale:Exp.Quick ~jobs () in
    Bsp_sweep.sweep ~ctx ~params:bsp_params ~barrier:true ~no_barrier:false ()
  in
  let seq = rows 1 and par = rows 4 in
  Alcotest.(check int) "same row count" (List.length seq) (List.length par);
  Alcotest.(check bool) "jobs=1 and jobs=4 rows structurally equal" true
    (seq = par)

let suite =
  [
    Alcotest.test_case "same seed, same CSV bytes" `Quick test_same_seed_same_csv;
    Alcotest.test_case "pinned pre-refactor miss counts" `Quick test_pinned_counts;
    Alcotest.test_case "parallel sweep: CSV identical" `Quick test_parallel_csv_identical;
    Alcotest.test_case "parallel sweep: metrics identical" `Quick test_parallel_metrics_identical;
    Alcotest.test_case "parallel BSP sweep: rows identical" `Quick test_parallel_bsp_identical;
  ]
