(* The fault-injection layer: plan construction and scaling, seeded
   determinism (including byte-identity across parallel sweep widths),
   and the graceful-degradation acceptance story — with degradation on,
   the high-criticality thread rides out an SMI storm with zero misses
   and a clean verifier verdict; with it off, the same plan starves it
   and the degradation rule fires. *)

open Hrt_engine
open Hrt_core
open Hrt_harness
module Fault = Hrt_fault.Fault
module V = Hrt_verify

(* ---- plans ---- *)

let test_builtins_resolve () =
  let names = Fault.names () in
  Alcotest.(check bool) "several builtins" true (List.length names >= 5);
  List.iter
    (fun n ->
      match Fault.of_name n with
      | None -> Alcotest.failf "builtin %s does not resolve" n
      | Some p ->
        Alcotest.(check string) "name round-trips" n p.Fault.Plan.name;
        Alcotest.(check bool) "describable" true
          (String.length (Fault.describe p) > 0))
    names;
  Alcotest.(check bool) "junk rejected" true (Fault.of_name "junk" = None)

let test_scale () =
  let plan =
    match Fault.of_name "smi-storm" with
    | Some p -> p
    | None -> Alcotest.fail "no smi-storm"
  in
  let smi_interval p =
    match p.Fault.Plan.items with
    | [ { Fault.Plan.action = Fault.Plan.Smi_storm c; _ } ] ->
      c.Hrt_hw.Smi.mean_interval
    | _ -> Alcotest.fail "unexpected smi-storm shape"
  in
  let base = smi_interval plan in
  Alcotest.(check int64) "intensity 1 is identity" base
    (smi_interval (Fault.Plan.scale plan ~intensity:1.0));
  Alcotest.(check int64) "intensity 2 doubles the rate"
    (Int64.div base 2L)
    (smi_interval (Fault.Plan.scale plan ~intensity:2.0));
  Alcotest.(check int) "intensity 0 disarms" 0
    (List.length (Fault.Plan.scale plan ~intensity:0.0).Fault.Plan.items)

(* ---- determinism ---- *)

let demo ~degrade ?(plan = "smi-storm") () =
  Fault_sweep.run_demo ~seed:42L ~policy:Config.Edf ~degrade
    ~fault:(Fault.of_name plan) ~horizon:(Time.ms 50) ()

let test_demo_deterministic () =
  let a = demo ~degrade:true () and b = demo ~degrade:true () in
  Alcotest.(check bool) "same seed, same outcome" true (a = b)

(* The satellite property: a seeded fault plan replays byte-identically
   whether the sweep grid fans across 1 domain or 4. *)
let test_points_parallel_identical () =
  let pts jobs =
    Fault_sweep.points
      ~ctx:(Exp.Ctx.make ~scale:Exp.Quick ~jobs ())
      ()
  in
  let seq = pts 1 and par = pts 4 in
  Alcotest.(check int) "same grid size" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Fault_sweep.point) (b : Fault_sweep.point) ->
      if a <> b then
        Alcotest.failf "grid point diverged at intensity %.1f (%s, %s)"
          a.Fault_sweep.intensity
          (Config.policy_name a.Fault_sweep.policy)
          (if a.Fault_sweep.degrade then "degrade" else "no-degrade"))
    seq par

(* ---- acceptance: degradation protects high criticality ---- *)

let test_degradation_protects_high () =
  let on = demo ~degrade:true () in
  Alcotest.(check int) "zero high-criticality misses" 0
    on.Fault_sweep.hi_misses;
  Alcotest.(check bool) "lows were shed" true (on.Fault_sweep.sheds > 0);
  Alcotest.(check bool) "lows recovered in quiet gaps" true
    (on.Fault_sweep.recovers > 0);
  let off = demo ~degrade:false () in
  Alcotest.(check bool) "without degradation the high thread misses" true
    (off.Fault_sweep.hi_misses > 0);
  Alcotest.(check int) "no shedding without degradation" 0
    off.Fault_sweep.sheds

(* ---- the verifier closes the loop ---- *)

let verdict ~degrade =
  let sink = Hrt_obs.Sink.create () in
  let live = V.Live.attach sink in
  ignore
    (Fault_sweep.run_demo ~sink ~seed:42L ~policy:Config.Edf ~degrade
       ~fault:(Fault.of_name "smi-storm") ~horizon:(Time.ms 50) ());
  V.Live.report live

let test_selfcheck_verdicts () =
  let clean = verdict ~degrade:true in
  if not (V.Report.passed clean) then
    Alcotest.failf "degraded run should verify clean: %s"
      (V.Report.verdict_line clean);
  let dirty = verdict ~degrade:false in
  Alcotest.(check bool) "no-degrade run fails verification" false
    (V.Report.passed dirty);
  let degradation_violations =
    match List.assoc_opt V.Rules.Degradation dirty.V.Report.counts with
    | Some n -> n
    | None -> 0
  in
  Alcotest.(check bool) "the degradation rule is what fires" true
    (degradation_violations > 0)

let suite =
  [
    Alcotest.test_case "builtin plans resolve" `Quick test_builtins_resolve;
    Alcotest.test_case "intensity scaling" `Quick test_scale;
    Alcotest.test_case "demo run deterministic" `Quick test_demo_deterministic;
    Alcotest.test_case "sweep identical at jobs=1 and jobs=4" `Quick
      test_points_parallel_identical;
    Alcotest.test_case "degradation protects high criticality" `Quick
      test_degradation_protects_high;
    Alcotest.test_case "selfcheck verdicts" `Quick test_selfcheck_verdicts;
  ]
