(* Tiny helpers shared across test files. *)

open Hrt_engine
open Hrt_core

let periodic sys ~cpu ~period ~slice =
  Scheduler.spawn sys ~cpu ~bound:true
    (Program.seq
       [
         Program.of_steps
           (Scheduler.admission_ops sys
              (Constraints.periodic ~period ~slice ())
              ~on_result:(fun _ -> ()));
         Program.compute_forever (Time.sec 3600);
       ])
