open Hrt_engine
open Hrt_core
open Hrt_runtime

let phi = Hrt_hw.Platform.phi
let cost = Hrt_hw.Platform.cost 500. 50.

let mk_ctx ?(sync = `Barrier) ?(mode = Omp.Aperiodic) () =
  let sys = Scheduler.create ~num_cpus:5 phi in
  let team = Omp.create_team sys ~cpus:[ 1; 2; 3; 4 ] ~mode in
  (Nesl.ctx team ~sync, team)

let ragged = [| [| 1; 2; 3 |]; [||]; [| 4 |]; [| 5; 6; 7; 8 |] |]

let test_segvec_structure () =
  let v = Nesl.of_arrays ragged in
  Alcotest.(check int) "segments" 4 (Nesl.segments v);
  Alcotest.(check int) "total" 8 (Nesl.total_length v);
  Alcotest.(check (array int)) "lengths" [| 3; 0; 1; 4 |] (Nesl.segment_lengths v);
  Alcotest.(check (array int)) "flat" [| 1; 2; 3; 4; 5; 6; 7; 8 |] (Nesl.flat v);
  Alcotest.(check bool) "round trip" true (Nesl.to_arrays v = ragged)

let test_empty () =
  let v = Nesl.of_arrays [| [||]; [||] |] in
  Alcotest.(check int) "segments" 2 (Nesl.segments v);
  Alcotest.(check int) "empty" 0 (Nesl.total_length v)

let test_map () =
  let ctx, _ = mk_ctx () in
  let v = Nesl.of_arrays ragged in
  let doubled = Nesl.map ctx ~cost_per_element:cost (fun x -> x * 2) v in
  Nesl.run ctx;
  Alcotest.(check bool) "values doubled, structure kept" true
    (Nesl.to_arrays doubled = Array.map (Array.map (fun x -> x * 2)) ragged)

let test_reduce () =
  let ctx, _ = mk_ctx () in
  let v = Nesl.of_arrays ragged in
  let sums =
    Nesl.reduce ctx ~cost_per_element:cost ~zero:0 ~combine:( + )
      ~of_elt:Fun.id v
  in
  Nesl.run ctx;
  Alcotest.(check (array int)) "per-segment sums" [| 6; 0; 4; 26 |] sums

let test_scan () =
  let ctx, _ = mk_ctx () in
  let v = Nesl.of_arrays [| [| 1; 2; 3; 4 |]; [| 10; 20 |] |] in
  let s =
    Nesl.scan ctx ~cost_per_element:cost ~zero:0 ~combine:( + ) ~of_elt:Fun.id v
  in
  Nesl.run ctx;
  Alcotest.(check bool) "exclusive prefix per segment" true
    (Nesl.to_arrays s = [| [| 0; 1; 3; 6 |]; [| 0; 10 |] |])

let test_pack () =
  let ctx, _ = mk_ctx () in
  let v = Nesl.of_arrays ragged in
  let evens = Nesl.pack ctx ~cost_per_element:cost (fun x -> x mod 2 = 0) v in
  Nesl.run ctx;
  Alcotest.(check bool) "filtered per segment" true
    (Nesl.to_arrays evens = [| [| 2 |]; [||]; [| 4 |]; [| 6; 8 |] |])

let test_time_scales_with_work () =
  let elapsed n =
    let ctx, team = mk_ctx () in
    let v = Nesl.of_arrays [| Array.init n Fun.id |] in
    ignore (Nesl.map ctx ~cost_per_element:cost (fun x -> x + 1) v);
    Nesl.run ctx;
    Int64.to_float (Omp.last_completion team)
  in
  let t1 = elapsed 1_000 and t4 = elapsed 4_000 in
  Alcotest.(check bool) "4x elements ~ 4x time" true
    (t4 /. t1 > 3.0 && t4 /. t1 < 5.0)

let test_timed_pipeline_on_rt_team () =
  (* A three-op NESL pipeline with no barriers at all, on a gang-scheduled
     team: results exact, simulated time charged. *)
  let ctx, team =
    mk_ctx ~sync:`Timed
      ~mode:(Omp.Realtime { period = Time.us 100; slice = Time.us 70 })
      ()
  in
  let v = Nesl.of_arrays (Array.init 16 (fun s -> Array.init (s + 1) Fun.id)) in
  let squared = Nesl.map ctx ~cost_per_element:cost (fun x -> x * x) v in
  let sums =
    Nesl.reduce ctx ~cost_per_element:cost ~zero:0 ~combine:( + )
      ~of_elt:Fun.id squared
  in
  Nesl.run ctx;
  Alcotest.(check bool) "admitted" true (Omp.admitted team);
  Alcotest.(check int) "all ops ran" 2 (Omp.loops_completed team);
  Array.iteri
    (fun s total ->
      let expect = List.fold_left (fun a i -> a + (i * i)) 0 (List.init (s + 1) Fun.id) in
      Alcotest.(check int) "sum of squares" expect total)
    sums

let suite =
  [
    Alcotest.test_case "segmented vector structure" `Quick test_segvec_structure;
    Alcotest.test_case "empty segments" `Quick test_empty;
    Alcotest.test_case "map" `Quick test_map;
    Alcotest.test_case "per-segment reduce" `Quick test_reduce;
    Alcotest.test_case "per-segment scan" `Quick test_scan;
    Alcotest.test_case "pack" `Quick test_pack;
    Alcotest.test_case "time scales with work" `Quick test_time_scales_with_work;
    Alcotest.test_case "timed pipeline on RT team" `Quick test_timed_pipeline_on_rt_team;
  ]
