open Hrt_engine
open Hrt_core
open Hrt_runtime

let phi = Hrt_hw.Platform.phi
let iter_cost = Hrt_hw.Platform.cost 2_000. 200. (* ~1.5us per iteration *)

let cpus n = List.init n (fun i -> i + 1)

let test_parallel_for_covers_all_indices () =
  let sys = Scheduler.create ~num_cpus:5 phi in
  let team = Omp.create_team sys ~cpus:(cpus 4) ~mode:Omp.Aperiodic in
  let hits = Array.make 1000 0 in
  Omp.parallel_for team ~iterations:1000 ~cost_per_iteration:iter_cost
    (fun i -> hits.(i) <- hits.(i) + 1);
  Omp.run_to_completion team;
  Alcotest.(check int) "loop completed" 1 (Omp.loops_completed team);
  Alcotest.(check bool) "every index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_loop_sequence_ordered () =
  (* With barriers, loop k+1 must start only after loop k finished: the
     per-loop sums never interleave. *)
  let sys = Scheduler.create ~num_cpus:5 phi in
  let team = Omp.create_team sys ~cpus:(cpus 4) ~mode:Omp.Aperiodic in
  let log = ref [] in
  for l = 0 to 4 do
    Omp.parallel_for team ~iterations:64 ~cost_per_iteration:iter_cost
      (fun _ -> log := l :: !log)
  done;
  Omp.run_to_completion team;
  Alcotest.(check int) "all loops" 5 (Omp.loops_completed team);
  let seq = List.rev !log in
  Alcotest.(check (list int)) "phases never interleave"
    (List.concat_map (fun l -> List.init 64 (fun _ -> l)) [ 0; 1; 2; 3; 4 ])
    seq

let test_uneven_iterations () =
  let sys = Scheduler.create ~num_cpus:5 phi in
  let team = Omp.create_team sys ~cpus:(cpus 4) ~mode:Omp.Aperiodic in
  let count = ref 0 in
  (* 10 iterations across 4 workers: chunks 2/3/2/3. *)
  Omp.parallel_for team ~iterations:10 ~cost_per_iteration:iter_cost (fun _ ->
      incr count);
  (* And an empty loop. *)
  Omp.parallel_for team ~iterations:0 ~cost_per_iteration:iter_cost (fun _ ->
      incr count);
  Omp.run_to_completion team;
  Alcotest.(check int) "both loops done" 2 (Omp.loops_completed team);
  Alcotest.(check int) "ten bodies" 10 !count

let test_timed_requires_rt () =
  let sys = Scheduler.create ~num_cpus:3 phi in
  let team = Omp.create_team sys ~cpus:(cpus 2) ~mode:Omp.Aperiodic in
  Alcotest.check_raises "timed needs RT"
    (Invalid_argument
       "Omp.parallel_for: `Timed synchronization requires a real-time team")
    (fun () ->
      Omp.parallel_for team ~sync:`Timed ~iterations:10
        ~cost_per_iteration:iter_cost ignore)

let test_rt_team_admitted_and_timed_runs () =
  let sys = Scheduler.create ~num_cpus:9 phi in
  let team =
    Omp.create_team sys ~cpus:(cpus 8)
      ~mode:(Omp.Realtime { period = Time.us 100; slice = Time.us 60 })
  in
  let hits = Array.make 4096 0 in
  for _ = 1 to 3 do
    Omp.parallel_for team ~sync:`Timed ~iterations:4096
      ~cost_per_iteration:iter_cost (fun i -> hits.(i) <- hits.(i) + 1)
  done;
  Omp.run_to_completion team;
  Alcotest.(check bool) "admitted" true (Omp.admitted team);
  Alcotest.(check int) "all loops" 3 (Omp.loops_completed team);
  Alcotest.(check bool) "all indices thrice" true
    (Array.for_all (fun h -> h = 3) hits)

let test_timed_beats_barrier () =
  (* The paper's Section 6.4, through the runtime API: dropping barriers
     under a hard real-time team is faster at fine granularity. *)
  let elapsed ~sync =
    let sys = Scheduler.create ~num_cpus:9 phi in
    let team =
      Omp.create_team sys ~cpus:(cpus 8)
        ~mode:(Omp.Realtime { period = Time.us 100; slice = Time.us 90 })
    in
    for _ = 1 to 40 do
      Omp.parallel_for team ~sync ~iterations:64
        ~cost_per_iteration:iter_cost ignore
    done;
    let t0 = Engine.now (Scheduler.engine sys) in
    Omp.run_to_completion team;
    Alcotest.(check int) "all done" 40 (Omp.loops_completed team);
    Int64.to_float Time.(Omp.last_completion team - t0)
  in
  let with_barrier = elapsed ~sync:`Barrier in
  let timed = elapsed ~sync:`Timed in
  Alcotest.(check bool)
    (Printf.sprintf "timed (%.0fns) beats barrier (%.0fns)" timed with_barrier)
    true (timed < with_barrier)

let test_shutdown () =
  let sys = Scheduler.create ~num_cpus:3 phi in
  let team = Omp.create_team sys ~cpus:(cpus 2) ~mode:Omp.Aperiodic in
  Omp.parallel_for team ~iterations:8 ~cost_per_iteration:iter_cost ignore;
  Omp.run_to_completion team;
  Omp.shutdown team;
  Scheduler.run ~until:Time.(Engine.now (Scheduler.engine sys) + Time.ms 5) sys;
  Alcotest.(check bool) "group unregistered" true
    (Hrt_group.Group.find sys "omp-team" = None)

let suite =
  [
    Alcotest.test_case "parallel_for covers all indices" `Quick test_parallel_for_covers_all_indices;
    Alcotest.test_case "loops never interleave (barrier)" `Quick test_loop_sequence_ordered;
    Alcotest.test_case "uneven and empty iterations" `Quick test_uneven_iterations;
    Alcotest.test_case "`Timed rejected on aperiodic team" `Quick test_timed_requires_rt;
    Alcotest.test_case "RT team: timed loops correct" `Quick test_rt_team_admitted_and_timed_runs;
    Alcotest.test_case "timed beats barrier (fine grain)" `Quick test_timed_beats_barrier;
    Alcotest.test_case "shutdown" `Quick test_shutdown;
  ]
