open Hrt_kernel

let test_create_validation () =
  Alcotest.check_raises "total pow2"
    (Invalid_argument "Buddy.create: total not a power of two") (fun () ->
      ignore (Buddy.create ~total:1000 ~min_block:64));
  Alcotest.check_raises "min pow2"
    (Invalid_argument "Buddy.create: min_block not a power of two") (fun () ->
      ignore (Buddy.create ~total:1024 ~min_block:100));
  Alcotest.check_raises "min <= total"
    (Invalid_argument "Buddy.create: min_block > total") (fun () ->
      ignore (Buddy.create ~total:64 ~min_block:128))

let test_basic_alloc_free () =
  let b = Buddy.create ~total:1024 ~min_block:64 in
  Alcotest.(check int) "starts empty" 1024 (Buddy.free_bytes b);
  let a = Option.get (Buddy.alloc b 100) in
  Alcotest.(check (option int)) "rounded to 128" (Some 128) (Buddy.block_size b a);
  Alcotest.(check int) "used" 128 (Buddy.used_bytes b);
  Buddy.free b a;
  Alcotest.(check int) "all back" 1024 (Buddy.free_bytes b);
  Alcotest.(check int) "fully coalesced" 1024 (Buddy.largest_free_block b)

let test_min_block_floor () =
  let b = Buddy.create ~total:1024 ~min_block:64 in
  let a = Option.get (Buddy.alloc b 1) in
  Alcotest.(check (option int)) "floored at min block" (Some 64)
    (Buddy.block_size b a)

let test_exhaustion () =
  let b = Buddy.create ~total:256 ~min_block:64 in
  let blocks = List.init 4 (fun _ -> Option.get (Buddy.alloc b 64)) in
  Alcotest.(check bool) "full" true (Buddy.alloc b 64 = None);
  Alcotest.(check int) "four live" 4 (Buddy.allocations b);
  List.iter (Buddy.free b) blocks;
  Alcotest.(check bool) "usable again" true (Buddy.alloc b 256 <> None)

let test_oversized () =
  let b = Buddy.create ~total:256 ~min_block:64 in
  Alcotest.(check bool) "too big" true (Buddy.alloc b 512 = None)

let test_split_and_coalesce () =
  let b = Buddy.create ~total:1024 ~min_block:64 in
  let big = Option.get (Buddy.alloc b 512) in
  let small = Option.get (Buddy.alloc b 64) in
  (* 512 + 64 used; the largest free block is 256. *)
  Alcotest.(check int) "fragmented" 256 (Buddy.largest_free_block b);
  Buddy.free b big;
  Alcotest.(check int) "big side coalesced" 512 (Buddy.largest_free_block b);
  Buddy.free b small;
  Alcotest.(check int) "whole zone back" 1024 (Buddy.largest_free_block b);
  Alcotest.(check bool) "invariants" true (Buddy.check b = Ok ())

let test_double_free () =
  let b = Buddy.create ~total:256 ~min_block:64 in
  let a = Option.get (Buddy.alloc b 64) in
  Buddy.free b a;
  Alcotest.check_raises "double free"
    (Invalid_argument "Buddy.free: address not allocated") (fun () ->
      Buddy.free b a)

let test_no_overlap () =
  let b = Buddy.create ~total:4096 ~min_block:64 in
  let blocks = ref [] in
  let rec grab () =
    match Buddy.alloc b 64 with
    | Some off ->
      blocks := off :: !blocks;
      grab ()
    | None -> ()
  in
  grab ();
  let sorted = List.sort compare !blocks in
  Alcotest.(check int) "64 blocks" 64 (List.length sorted);
  List.iteri (fun i off -> Alcotest.(check int) "contiguous" (i * 64) off) sorted

let prop_buddy_model =
  QCheck.Test.make ~name:"buddy invariants under random workloads" ~count:100
    QCheck.(list (pair bool (int_range 1 600)))
    (fun ops ->
      let b = Buddy.create ~total:4096 ~min_block:64 in
      let live = ref [] in
      List.iter
        (fun (do_alloc, size) ->
          if do_alloc then begin
            match Buddy.alloc b size with
            | Some off -> live := off :: !live
            | None -> ()
          end
          else begin
            match !live with
            | off :: rest ->
              Buddy.free b off;
              live := rest
            | [] -> ()
          end)
        ops;
      match Buddy.check b with
      | Ok () ->
        (* Free everything: the zone must fully coalesce. *)
        List.iter (Buddy.free b) !live;
        Buddy.largest_free_block b = 4096 && Buddy.check b = Ok ()
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "alloc/free round trip" `Quick test_basic_alloc_free;
    Alcotest.test_case "min block floor" `Quick test_min_block_floor;
    Alcotest.test_case "exhaustion and reuse" `Quick test_exhaustion;
    Alcotest.test_case "oversized request" `Quick test_oversized;
    Alcotest.test_case "split and coalesce" `Quick test_split_and_coalesce;
    Alcotest.test_case "double free rejected" `Quick test_double_free;
    Alcotest.test_case "allocations never overlap" `Quick test_no_overlap;
    QCheck_alcotest.to_alcotest prop_buddy_model;
  ]
