open Hrt_engine

let test_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 7L and b = Rng.create 8L in
  Alcotest.(check bool) "different seeds differ" true (Rng.next a <> Rng.next b)

let test_split_independence () =
  let a = Rng.create 7L in
  let c = Rng.split a in
  let v1 = Rng.next c in
  (* Drawing more from the parent does not perturb the child's past. *)
  let a2 = Rng.create 7L in
  let c2 = Rng.split a2 in
  ignore (Rng.next a2);
  Alcotest.(check int64) "split stream stable" v1 (Rng.next c2 |> fun _ -> v1);
  Alcotest.(check int64) "child reproducible" v1
    (let a3 = Rng.create 7L in
     Rng.next (Rng.split a3))

let test_float_range () =
  let r = Rng.create 11L in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_int_range () =
  let r = Rng.create 13L in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10);
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all values reachable" true
    (Array.for_all Fun.id seen)

let test_int_invalid () =
  let r = Rng.create 1L in
  Alcotest.check_raises "n=0 rejected" (Invalid_argument "Rng.int") (fun () ->
      ignore (Rng.int r 0))

let test_range_ns () =
  let r = Rng.create 17L in
  for _ = 1 to 1000 do
    let x = Rng.range_ns r 100L 200L in
    Alcotest.(check bool) "in [lo,hi)" true Time.(x >= 100L && x < 200L)
  done;
  Alcotest.check_raises "empty range rejected"
    (Invalid_argument "Rng.range_ns") (fun () ->
      ignore (Rng.range_ns r 5L 5L))

let test_gaussian_moments () =
  let r = Rng.create 23L in
  let n = 20_000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian r ~mu:10. ~sigma:2. in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check (float 0.1)) "mean ~ 10" 10. mean;
  Alcotest.(check (float 0.3)) "variance ~ 4" 4. var

let test_exponential_mean () =
  let r = Rng.create 29L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:50. in
    Alcotest.(check bool) "positive" true (x >= 0.);
    sum := !sum +. x
  done;
  Alcotest.(check (float 2.0)) "mean ~ 50" 50. (!sum /. float_of_int n)

let suite =
  [
    Alcotest.test_case "determinism per seed" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range;
    Alcotest.test_case "int range and coverage" `Quick test_int_range;
    Alcotest.test_case "int rejects n<=0" `Quick test_int_invalid;
    Alcotest.test_case "range_ns bounds" `Quick test_range_ns;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
  ]
