open Hrt_engine

let test_determinism () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 7L and b = Rng.create 8L in
  Alcotest.(check bool) "different seeds differ" true (Rng.next a <> Rng.next b)

let test_split_independence () =
  let a = Rng.create 7L in
  let c = Rng.split a in
  let v1 = Rng.next c in
  (* Drawing more from the parent does not perturb the child's past. *)
  let a2 = Rng.create 7L in
  let c2 = Rng.split a2 in
  ignore (Rng.next a2);
  Alcotest.(check int64) "split stream stable" v1 (Rng.next c2 |> fun _ -> v1);
  Alcotest.(check int64) "child reproducible" v1
    (let a3 = Rng.create 7L in
     Rng.next (Rng.split a3))

let test_float_range () =
  let r = Rng.create 11L in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_int_range () =
  let r = Rng.create 13L in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10);
    seen.(x) <- true
  done;
  Alcotest.(check bool) "all values reachable" true
    (Array.for_all Fun.id seen)

let test_int_invalid () =
  let r = Rng.create 1L in
  Alcotest.check_raises "n=0 rejected" (Invalid_argument "Rng.int") (fun () ->
      ignore (Rng.int r 0))

let test_range_ns () =
  let r = Rng.create 17L in
  for _ = 1 to 1000 do
    let x = Rng.range_ns r 100L 200L in
    Alcotest.(check bool) "in [lo,hi)" true Time.(x >= 100L && x < 200L)
  done;
  Alcotest.check_raises "empty range rejected"
    (Invalid_argument "Rng.range_ns") (fun () ->
      ignore (Rng.range_ns r 5L 5L))

(* Regression for the modulo-bias fix: reducing 63 random bits with a
   plain [mod] gives the low end of a large span extra weight. For
   span = 3 * 2^61, bits in [0, 2^61) and [span, 2^63) both map onto
   [0, 2^61), so the biased probability of landing in the lowest third
   is 1/2 instead of 1/3 — a ~60-sigma signal at 30k draws. Rejection
   sampling restores the uniform 1/3. *)
let test_range_ns_unbiased () =
  let span = Int64.shift_left 3L 61 in
  let third = Int64.shift_left 1L 61 in
  let r = Rng.create 31L in
  let n = 30_000 in
  let low = ref 0 in
  for _ = 1 to n do
    let x = Rng.range_ns r 0L span in
    if not Time.(x >= 0L && x < span) then Alcotest.fail "out of range";
    if Int64.compare x third < 0 then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "lowest third ~ 1/3, got %.3f" frac)
    true
    (frac > 0.30 && frac < 0.37)

(* Same property through [Rng.int]: n = 3 * 2^60 makes the biased
   probability of the lowest third 0.375 (three full copies of the span
   fit in 2^63 plus a partial fourth), ~15 sigma away from 1/3. *)
let test_int_unbiased () =
  let n_span = 3 * (1 lsl 60) in
  let third = 1 lsl 60 in
  let r = Rng.create 37L in
  let n = 30_000 in
  let low = ref 0 in
  for _ = 1 to n do
    let x = Rng.int r n_span in
    if not (x >= 0 && x < n_span) then Alcotest.fail "out of range";
    if x < third then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "lowest third ~ 1/3, got %.3f" frac)
    true
    (frac > 0.30 && frac < 0.36)

let test_gaussian_moments () =
  let r = Rng.create 23L in
  let n = 20_000 in
  let sum = ref 0. and sq = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian r ~mu:10. ~sigma:2. in
    sum := !sum +. x;
    sq := !sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check (float 0.1)) "mean ~ 10" 10. mean;
  Alcotest.(check (float 0.3)) "variance ~ 4" 4. var

let test_exponential_mean () =
  let r = Rng.create 29L in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let x = Rng.exponential r ~mean:50. in
    Alcotest.(check bool) "positive" true (x >= 0.);
    sum := !sum +. x
  done;
  Alcotest.(check (float 2.0)) "mean ~ 50" 50. (!sum /. float_of_int n)

let suite =
  [
    Alcotest.test_case "determinism per seed" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "float in [0,1)" `Quick test_float_range;
    Alcotest.test_case "int range and coverage" `Quick test_int_range;
    Alcotest.test_case "int rejects n<=0" `Quick test_int_invalid;
    Alcotest.test_case "range_ns bounds" `Quick test_range_ns;
    Alcotest.test_case "range_ns modulo-bias regression" `Quick
      test_range_ns_unbiased;
    Alcotest.test_case "int modulo-bias regression" `Quick test_int_unbiased;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
  ]
