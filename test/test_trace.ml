open Hrt_engine

let test_series_creation () =
  let t = Trace.create () in
  let a = Trace.series t "alpha" in
  let b = Trace.series t "beta" in
  Alcotest.(check bool) "same name same series" true (a == Trace.series t "alpha");
  Alcotest.(check bool) "distinct series" false (a == b);
  Alcotest.(check (list string)) "names in creation order" [ "alpha"; "beta" ]
    (Trace.names t)

let test_record () =
  let t = Trace.create () in
  let s = Trace.series t "s" in
  Trace.record s ~time:10L 1.5;
  Trace.record s ~time:20L 2.5;
  Trace.record_event s ~time:30L;
  Alcotest.(check int) "length" 3 (Trace.length s);
  Alcotest.(check (array int64)) "times" [| 10L; 20L; 30L |] (Trace.times s);
  Alcotest.(check (array (float 0.))) "values" [| 1.5; 2.5; 1.0 |]
    (Trace.values s)

let test_growth () =
  let t = Trace.create () in
  let s = Trace.series t "big" in
  for i = 0 to 999 do
    Trace.record s ~time:(Int64.of_int i) (float_of_int i)
  done;
  Alcotest.(check int) "1000 samples" 1000 (Trace.length s);
  Alcotest.(check (float 0.)) "last value" 999. (Trace.values s).(999)

let test_fold () =
  let t = Trace.create () in
  let s = Trace.series t "s" in
  List.iter (fun (tm, v) -> Trace.record s ~time:tm v)
    [ (1L, 1.); (2L, 2.); (3L, 3.) ];
  let sum = Trace.fold s ~init:0. ~f:(fun acc _ v -> acc +. v) in
  Alcotest.(check (float 0.)) "fold sum" 6. sum

let test_find () =
  let t = Trace.create () in
  ignore (Trace.series t "exists");
  Alcotest.(check bool) "find some" true (Trace.find t "exists" <> None);
  Alcotest.(check bool) "find none" true (Trace.find t "missing" = None)

let suite =
  [
    Alcotest.test_case "series creation/identity" `Quick test_series_creation;
    Alcotest.test_case "record and read back" `Quick test_record;
    Alcotest.test_case "growth past capacity" `Quick test_growth;
    Alcotest.test_case "fold" `Quick test_fold;
    Alcotest.test_case "find" `Quick test_find;
  ]
