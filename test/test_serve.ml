(* The admission serving layer: protocol totality (framing and parsing
   never raise on arbitrary bytes), render/parse round-trips, and a live
   server on a private Unix socket — verdict correctness against the
   oracle, load shedding, per-request deadlines, drain under load (every
   accepted request gets exactly one reply), and the TCP listener. *)

open Hrt_core
open Hrt_serve
module P = Protocol

let to_alcotest = QCheck_alcotest.to_alcotest

let sock_path =
  let counter = Atomic.make 0 in
  fun () ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hrt-test-%d-%d.sock" (Unix.getpid ())
         (Atomic.fetch_and_add counter 1))

(* ---- framing ---- *)

let drain_frames dec =
  let rec go acc =
    match P.Decoder.next dec with
    | `Frame payload -> go (payload :: acc)
    | `Await -> (List.rev acc, `Await)
    | `Error e -> (List.rev acc, `Error e)
  in
  go []

let test_decoder_roundtrip () =
  let payloads = [ "query P:1000:300"; "stats"; "multi\nline reply" ] in
  let wire = String.concat "" (List.map P.frame payloads) in
  (* Byte-at-a-time feeding must produce the same frames as one shot. *)
  let dec = P.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      P.Decoder.feed_string dec (String.make 1 c);
      let frames, _ = drain_frames dec in
      got := !got @ frames)
    wire;
  Alcotest.(check (list string)) "byte-at-a-time" payloads !got;
  Alcotest.(check bool) "clean eof" true (P.Decoder.eof dec = `Clean)

let check_error name wire expect_code =
  let dec = P.Decoder.create ~max_frame:1024 () in
  P.Decoder.feed_string dec wire;
  match drain_frames dec with
  | _, `Error e ->
    Alcotest.(check string) name expect_code (P.error_code e);
    (* Errors are sticky: more bytes cannot resurrect the stream. *)
    P.Decoder.feed_string dec (P.frame "stats");
    (match P.Decoder.next dec with
    | `Error e' ->
      Alcotest.(check string) (name ^ " sticky") expect_code (P.error_code e')
    | _ -> Alcotest.failf "%s: error was not sticky" name)
  | _, (`Await : [ `Await | `Error of P.error ]) ->
    Alcotest.failf "%s: expected a framing error" name

let test_decoder_errors () =
  check_error "bad magic" "nope 5\nhello" "bad-magic";
  check_error "bad length" "hrt1 5x\nhello" "bad-length";
  check_error "too large" "hrt1 9999\n" "frame-too-large";
  check_error "header flood" (String.make 64 'q') "bad-magic";
  let dec = P.Decoder.create () in
  P.Decoder.feed_string dec "hrt1 10\nhal";
  (match P.Decoder.next dec with
  | `Await -> ()
  | _ -> Alcotest.fail "partial body should await");
  match P.Decoder.eof dec with
  | `Error (P.Truncated { wanted = 10; got = 3 }) -> ()
  | `Error e -> Alcotest.failf "wrong eof error: %s" (P.describe_error e)
  | `Clean -> Alcotest.fail "eof mid-frame must be an error"

(* Any byte stream, fed in any chunking, never raises and never loops:
   the decoder either yields frames, awaits more, or fails sticky. *)
let prop_decoder_total =
  QCheck.Test.make ~name:"decoder total on arbitrary bytes" ~count:500
    QCheck.(pair (small_list (string_of_size (QCheck.Gen.int_bound 40))) small_nat)
    (fun (chunks, max_frame) ->
      let dec = P.Decoder.create ~max_frame:(1 + max_frame) () in
      List.iter
        (fun chunk ->
          P.Decoder.feed_string dec chunk;
          ignore (drain_frames dec))
        chunks;
      ignore (P.Decoder.eof dec);
      true)

(* frame/decode are inverses for any payload, under any chunk size. *)
let prop_frame_roundtrip =
  QCheck.Test.make ~name:"frame/decode round-trip" ~count:300
    QCheck.(
      pair
        (small_list (string_of_size (QCheck.Gen.int_bound 80)))
        (int_range 1 7))
    (fun (payloads, chunk) ->
      let wire = String.concat "" (List.map P.frame payloads) in
      let dec = P.Decoder.create () in
      let got = ref [] in
      let n = String.length wire in
      let i = ref 0 in
      while !i < n do
        let len = Stdlib.min chunk (n - !i) in
        P.Decoder.feed_string dec (String.sub wire !i len);
        i := !i + len;
        let frames, _ = drain_frames dec in
        got := !got @ frames
      done;
      !got = payloads && P.Decoder.eof dec = `Clean)

(* ---- request parsing ---- *)

let specs_of = function
  | Ok (P.Query { specs; _ }) -> List.length specs
  | _ -> -1

let test_parse_request () =
  (match P.parse_request "query P:1000:300 S:50:400 A" with
  | Ok (P.Query { deadline_ms = None; specs }) ->
    Alcotest.(check int) "three specs" 3 (List.length specs)
  | _ -> Alcotest.fail "query did not parse");
  (match P.parse_request "query @250 P:1000:300" with
  | Ok (P.Query { deadline_ms = Some 250; specs = [ _ ] }) -> ()
  | _ -> Alcotest.fail "deadline token did not parse");
  Alcotest.(check int) "whitespace tolerated" 2
    (specs_of (P.parse_request "  query \t P:1000:300   P:500:100 "));
  (* Batch separators: spaced, glued left, glued right. *)
  List.iter
    (fun payload ->
      match P.parse_request payload with
      | Ok (P.Batch { sets = [ [ _ ]; [ _; _ ] ]; _ }) -> ()
      | _ -> Alcotest.failf "batch %S did not split into [1;2]" payload)
    [
      "batch P:1000:300 ; P:500:100 A";
      "batch P:1000:300; P:500:100 A";
      "batch P:1000:300 ;P:500:100 A";
    ];
  Alcotest.(check bool) "stats" true (P.parse_request "stats" = Ok P.Stats);
  Alcotest.(check bool) "drain" true (P.parse_request "drain" = Ok P.Drain)

let expect_code name payload code =
  match P.parse_request payload with
  | Error e -> Alcotest.(check string) name code (P.error_code e)
  | Ok _ -> Alcotest.failf "%s: %S should not parse" name payload

let test_parse_request_errors () =
  expect_code "junk verb" "frobnicate P:1:2" "bad-verb";
  expect_code "empty" "   " "bad-request";
  expect_code "stats arity" "stats now" "bad-request";
  expect_code "query no specs" "query" "bad-request";
  expect_code "query with sets" "query P:1:2 ; P:3:4" "bad-request";
  expect_code "bad deadline" "query @soon P:1000:300" "bad-deadline";
  expect_code "batch empty set" "batch P:1000:300 ; ; A" "bad-request";
  match P.parse_request "query P:1000:300 P:0:5" with
  | Error (P.Bad_spec { index = 1; _ }) -> ()
  | _ -> Alcotest.fail "malformed spec must carry its index"

let prop_parse_total =
  QCheck.Test.make ~name:"request/reply parsers total" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_bound 120))
    (fun payload ->
      ignore (P.parse_request payload);
      ignore (P.parse_reply payload);
      true)

(* ---- reply round-trips ---- *)

let test_reply_roundtrip () =
  let replies =
    [
      P.Verdicts [ P.Admitted 0.25; P.Rejected "overloaded"; P.expired ];
      P.Stats_reply [ ("served", 12.0); ("p95_us", 81.5) ];
      P.Draining { pending = 7 };
      P.Error_reply { code = "bad-verb"; detail = "unknown verb" };
    ]
  in
  List.iter
    (fun r ->
      match P.parse_reply (P.render_reply r) with
      | Ok r' ->
        Alcotest.(check bool)
          ("round-trip " ^ P.render_reply r)
          true (r = r')
      | Error msg -> Alcotest.failf "reply did not re-parse: %s" msg)
    replies

(* ---- live server ---- *)

let with_server ?(cfg = Server.default_config) ?tcp_port f =
  let path = sock_path () in
  let server = Server.create ?tcp_port ~socket:path cfg in
  let d = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain server;
      Domain.join d;
      if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ())
    (fun () -> f (Client.Unix_path path) server)

let must = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "client: %s" msg

let quiet_cfg = { Server.default_config with Server.jobs = 2 }

let direct_verdict specs =
  let tasks =
    List.map (fun s -> Result.get_ok (P.parse_spec s)) specs
  in
  let ts =
    Hrt_analysis.Taskset.production_view ~policy:Config.Edf
      ~platform:Hrt_hw.Platform.phi tasks
  in
  P.verdict_of_oracle (Hrt_analysis.Oracle.analyze ts).Hrt_analysis.Oracle.verdict

let test_query_matches_oracle () =
  with_server ~cfg:quiet_cfg (fun addr _ ->
      let specs = [ "P:1000:300"; "P:500:100" ] in
      match must (Client.call addr ("query " ^ String.concat " " specs)) with
      | P.Verdicts [ v ] ->
        Alcotest.(check bool) "server verdict = direct oracle" true
          (v = direct_verdict specs)
      | r -> Alcotest.failf "unexpected reply: %s" (P.render_reply r))

let test_batch_verdicts_in_order () =
  with_server ~cfg:quiet_cfg (fun addr _ ->
      let sets = [ [ "P:1000:900"; "A" ]; [ "P:1000:300" ]; [ "S:50:400" ] ] in
      let payload =
        "batch " ^ String.concat " ; " (List.map (String.concat " ") sets)
      in
      match must (Client.call addr payload) with
      | P.Verdicts vs ->
        Alcotest.(check int) "one verdict per set" (List.length sets)
          (List.length vs);
        List.iter2
          (fun v set ->
            Alcotest.(check bool) "order preserved" true
              (v = direct_verdict set))
          vs sets
      | r -> Alcotest.failf "unexpected reply: %s" (P.render_reply r))

let test_pipelined_replies_in_order () =
  with_server ~cfg:quiet_cfg (fun addr _ ->
      let conn = must (Client.connect addr) in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let queries =
            [ [ "P:1000:300" ]; [ "P:1000:900"; "A" ]; [ "P:500:100" ] ]
          in
          List.iter
            (fun set ->
              ignore
                (must (Client.send conn ("query " ^ String.concat " " set))))
            queries;
          List.iter
            (fun set ->
              match must (Client.recv conn) with
              | P.Verdicts [ v ] ->
                Alcotest.(check bool) "pipelined order" true
                  (v = direct_verdict set)
              | r -> Alcotest.failf "unexpected reply: %s" (P.render_reply r))
            queries))

let test_forced_shed () =
  with_server
    ~cfg:{ quiet_cfg with Server.max_queue = 0 }
    (fun addr _ ->
      (match must (Client.call addr "query P:1000:300") with
      | P.Verdicts [ P.Rejected "overloaded" ] -> ()
      | r -> Alcotest.failf "expected overloaded, got %s" (P.render_reply r));
      (* Sheds are replies, not stalls or drops — and stats still serve. *)
      match must (Client.call addr "stats") with
      | P.Stats_reply kvs ->
        Alcotest.(check bool) "shed counted" true
          (match List.assoc_opt "shed" kvs with
          | Some n -> n >= 1.
          | None -> false)
      | r -> Alcotest.failf "unexpected reply: %s" (P.render_reply r))

let test_deadline_expired () =
  with_server ~cfg:quiet_cfg (fun addr _ ->
      match must (Client.call addr "query @0 P:1000:300") with
      | P.Verdicts [ P.Rejected "expired" ] -> ()
      | r -> Alcotest.failf "expected expired, got %s" (P.render_reply r))

let test_protocol_error_over_wire () =
  with_server ~cfg:quiet_cfg (fun addr _ ->
      (* A junk verb is a typed error reply; the connection survives. *)
      let conn = must (Client.connect addr) in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          (match must (Client.request conn "frobnicate") with
          | P.Error_reply { code = "bad-verb"; _ } -> ()
          | r -> Alcotest.failf "unexpected reply: %s" (P.render_reply r));
          match must (Client.request conn "query P:1000:300") with
          | P.Verdicts [ _ ] -> ()
          | r -> Alcotest.failf "conn should survive: %s" (P.render_reply r));
      (* Broken framing is answered with a typed error, then closed. *)
      match addr with
      | Client.Tcp _ -> ()
      | Client.Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Unix.ADDR_UNIX path);
            let junk = "garbage with no framing\n" in
            ignore (Unix.write_substring fd junk 0 (String.length junk));
            let dec = P.Decoder.create () in
            let buf = Bytes.create 1024 in
            let rec read_reply () =
              match P.Decoder.next dec with
              | `Frame payload -> payload
              | `Error e ->
                Alcotest.failf "server reply unframed: %s" (P.describe_error e)
              | `Await -> (
                match Unix.read fd buf 0 1024 with
                | 0 -> Alcotest.fail "connection closed without an error reply"
                | n ->
                  P.Decoder.feed dec buf 0 n;
                  read_reply ())
            in
            (match P.parse_reply (read_reply ()) with
            | Ok (P.Error_reply { code = "bad-magic"; _ }) -> ()
            | Ok r -> Alcotest.failf "unexpected reply: %s" (P.render_reply r)
            | Error msg -> Alcotest.failf "reply did not parse: %s" msg);
            (* ... and the stream ends: framing is unrecoverable. *)
            Alcotest.(check int) "closed after error" 0
              (Unix.read fd buf 0 1024)))

(* Drain under load: pipeline a burst, drain mid-flight, and every
   accepted request still gets exactly one reply (served, or shed with
   the stable overloaded verdict) before the server closes. *)
let test_drain_under_load () =
  let n = 40 in
  with_server ~cfg:quiet_cfg (fun addr server ->
      let conn = must (Client.connect addr) in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          for i = 0 to n - 1 do
            let period = 500 + (10 * i) in
            ignore
              (must
                 (Client.send conn
                    (Printf.sprintf "query P:%d:%d P:900:200" period
                       (period / 3))))
          done;
          Server.request_drain server;
          let replies = ref 0 in
          for _ = 1 to n do
            match must (Client.recv conn) with
            | P.Verdicts [ (P.Admitted _ | P.Rejected _) ] -> incr replies
            | r -> Alcotest.failf "unexpected reply: %s" (P.render_reply r)
          done;
          Alcotest.(check int) "exactly one reply per request" n !replies))

let test_drain_verb_stops_server () =
  let path = sock_path () in
  let server = Server.create ~socket:path quiet_cfg in
  let d = Domain.spawn (fun () -> Server.run server) in
  let addr = Client.Unix_path path in
  (match must (Client.call addr "drain") with
  | P.Draining { pending } ->
    Alcotest.(check bool) "pending non-negative" true (pending >= 0)
  | r -> Alcotest.failf "unexpected reply: %s" (P.render_reply r));
  (* run returns on its own: the drain verb is a full shutdown. *)
  Domain.join d;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists path);
  match Client.call ~attempts:1 addr "stats" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "drained server must not answer"

let test_tcp_listener () =
  with_server ~cfg:quiet_cfg ~tcp_port:0 (fun _ server ->
      match Server.tcp_port server with
      | None -> Alcotest.fail "tcp port not bound"
      | Some port -> (
        match
          must (Client.call (Client.Tcp ("127.0.0.1", port)) "query P:1000:300")
        with
        | P.Verdicts [ v ] ->
          Alcotest.(check bool) "tcp verdict" true
            (v = direct_verdict [ "P:1000:300" ])
        | r -> Alcotest.failf "unexpected reply: %s" (P.render_reply r)))

let suite =
  [
    Alcotest.test_case "decoder round-trip" `Quick test_decoder_roundtrip;
    Alcotest.test_case "decoder typed errors" `Quick test_decoder_errors;
    to_alcotest prop_decoder_total;
    to_alcotest prop_frame_roundtrip;
    Alcotest.test_case "parse request" `Quick test_parse_request;
    Alcotest.test_case "parse request errors" `Quick test_parse_request_errors;
    to_alcotest prop_parse_total;
    Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
    Alcotest.test_case "query matches oracle" `Quick test_query_matches_oracle;
    Alcotest.test_case "batch verdicts in order" `Quick
      test_batch_verdicts_in_order;
    Alcotest.test_case "pipelined replies in order" `Quick
      test_pipelined_replies_in_order;
    Alcotest.test_case "forced shed answers overloaded" `Quick test_forced_shed;
    Alcotest.test_case "deadline expiry answers expired" `Quick
      test_deadline_expired;
    Alcotest.test_case "protocol errors over the wire" `Quick
      test_protocol_error_over_wire;
    Alcotest.test_case "drain under load" `Quick test_drain_under_load;
    Alcotest.test_case "drain verb stops server" `Quick
      test_drain_verb_stops_server;
    Alcotest.test_case "tcp listener" `Quick test_tcp_listener;
  ]
