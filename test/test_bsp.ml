open Hrt_engine
open Hrt_bsp

let small ?(barrier = true) ?(iters = 60) () =
  { (Bsp.fine_grain ~cpus:8 ~barrier) with Bsp.iters }

let test_completes_all_iterations () =
  let p = small () in
  let r = Bsp.run p Bsp.Aperiodic in
  Alcotest.(check int) "iterations" (8 * 60) r.Bsp.iterations_done;
  Alcotest.(check bool) "nonzero exec" true Time.(r.Bsp.exec_time > 0L);
  Alcotest.(check bool) "aperiodic admits trivially" true r.Bsp.admitted

let test_rt_admitted_and_completes () =
  let p = small () in
  let r =
    Bsp.run p
      (Bsp.Rt { period = Time.us 100; slice = Time.us 80; phase_correction = true })
  in
  Alcotest.(check bool) "admitted" true r.Bsp.admitted;
  Alcotest.(check int) "iterations" (8 * 60) r.Bsp.iterations_done

let test_throttling_monotone () =
  let p = small ~barrier:false () in
  let time u =
    let period = Time.us 100 in
    let slice = Int64.of_float (Int64.to_float period *. u) in
    let r = Bsp.run p (Bsp.Rt { period; slice; phase_correction = true }) in
    Time.to_float_ms r.Bsp.exec_time
  in
  let t30 = time 0.3 and t60 = time 0.6 and t90 = time 0.9 in
  Alcotest.(check bool) "30% slower than 60%" true (t30 > t60 *. 1.3);
  Alcotest.(check bool) "60% slower than 90%" true (t60 > t90 *. 1.2)

let test_barrier_removal_gains () =
  let rt = Bsp.Rt { period = Time.us 100; slice = Time.us 90; phase_correction = true } in
  let wb = Bsp.run (small ~barrier:true ()) rt in
  let nb = Bsp.run (small ~barrier:false ()) rt in
  Alcotest.(check bool) "no-barrier faster" true
    Time.(nb.Bsp.exec_time < wb.Bsp.exec_time)

let test_checksum_deterministic () =
  let p = small () in
  let a = Bsp.run ~seed:5L p Bsp.Aperiodic in
  let b = Bsp.run ~seed:5L p Bsp.Aperiodic in
  Alcotest.(check (float 0.)) "same seed same checksum" a.Bsp.checksum b.Bsp.checksum;
  Alcotest.(check int64) "same exec time" a.Bsp.exec_time b.Bsp.exec_time

let test_work_per_iteration_model () =
  let plat = Hrt_hw.Platform.phi in
  let fine = Bsp.work_per_iteration plat (Bsp.fine_grain ~cpus:8 ~barrier:true) in
  let coarse = Bsp.work_per_iteration plat (Bsp.coarse_grain ~cpus:8 ~barrier:true) in
  Alcotest.(check bool) "fine is microseconds" true
    Time.(fine > Time.us 2 && fine < Time.us 50);
  Alcotest.(check bool) "coarse is ~50x fine" true
    (Int64.to_float coarse /. Int64.to_float fine > 20.)

let test_invalid_params () =
  Alcotest.check_raises "cpus < 1" (Invalid_argument "Bsp.run: cpus < 1")
    (fun () -> ignore (Bsp.run { (small ()) with Bsp.cpus = 0 } Bsp.Aperiodic))

let test_exec_time_scales_with_iters () =
  let t iters =
    let r = Bsp.run (small ~barrier:false ~iters ()) Bsp.Aperiodic in
    Time.to_float_ms r.Bsp.exec_time
  in
  let t1 = t 40 and t2 = t 120 in
  Alcotest.(check bool) "3x iterations ~ 3x time" true
    (t2 /. t1 > 2.5 && t2 /. t1 < 3.5)

let test_exec_times_util_constant () =
  (* The Fig 13 invariant at test scale: exec_time * utilization is the
     same across utilizations (coarse grain, where barriers are cheap
     relative to work). *)
  let p = { (Bsp.coarse_grain ~cpus:8 ~barrier:true) with Bsp.iters = 20 } in
  let products =
    List.map
      (fun u ->
        let period = Time.us 500 in
        let slice = Int64.of_float (Int64.to_float period *. u) in
        let r = Bsp.run p (Bsp.Rt { period; slice; phase_correction = true }) in
        Time.to_float_ms r.Bsp.exec_time *. u)
      [ 0.3; 0.5; 0.7; 0.9 ]
  in
  let mn = List.fold_left min (List.hd products) products in
  let mx = List.fold_left max (List.hd products) products in
  Alcotest.(check bool)
    (Printf.sprintf "exec*util constant within 15%% (%.1f..%.1f)" mn mx)
    true
    (mx /. mn < 1.15)

let suite =
  [
    Alcotest.test_case "completes all iterations" `Quick test_completes_all_iterations;
    Alcotest.test_case "rt mode admitted and completes" `Quick test_rt_admitted_and_completes;
    Alcotest.test_case "throttling monotone in utilization" `Quick test_throttling_monotone;
    Alcotest.test_case "barrier removal gains" `Quick test_barrier_removal_gains;
    Alcotest.test_case "checksum deterministic" `Quick test_checksum_deterministic;
    Alcotest.test_case "work/iteration model" `Quick test_work_per_iteration_model;
    Alcotest.test_case "invalid params" `Quick test_invalid_params;
    Alcotest.test_case "exec time scales with iterations" `Quick test_exec_time_scales_with_iters;
    Alcotest.test_case "exec*util constant (Fig 13 invariant)" `Slow test_exec_times_util_constant;
  ]
