(* The deterministic fork-join pool: results always come back in
   submission order, whatever the job count or per-job duration. *)

open Hrt_par

let to_alcotest = QCheck_alcotest.to_alcotest

let test_pool_clamps () =
  Alcotest.(check int) "jobs >= 1" 1 (Par.Pool.jobs (Par.Pool.create ~jobs:0));
  Alcotest.(check int) "jobs as given" 4 (Par.Pool.jobs (Par.Pool.create ~jobs:4));
  Alcotest.(check int) "jobs capped at 64" 64
    (Par.Pool.jobs (Par.Pool.create ~jobs:10_000))

let test_map_empty_and_singleton () =
  let pool = Par.Pool.create ~jobs:4 in
  Alcotest.(check (array int)) "empty" [||] (Par.map pool (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 6 |]
    (Par.map pool (fun x -> 2 * x) [| 3 |])

let test_map_matches_sequential () =
  let input = Array.init 257 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected (Par.map pool f input))
    [ 1; 2; 3; 4; 8 ]

let test_map_list () =
  let pool = Par.Pool.create ~jobs:3 in
  Alcotest.(check (list int)) "list order" [ 2; 4; 6; 8 ]
    (Par.map_list pool (fun x -> 2 * x) [ 1; 2; 3; 4 ])

let test_exception_propagates () =
  let pool = Par.Pool.create ~jobs:4 in
  Alcotest.check_raises "first failure reraised" (Failure "boom-0") (fun () ->
      ignore
        (Par.map pool
           (fun i ->
             if i mod 7 = 0 then failwith (Printf.sprintf "boom-%d" i) else i)
           (Array.init 64 (fun i -> i))))

(* The qcheck property from the issue: index order is preserved under
   random per-job durations (so completion order is scrambled relative to
   submission order). *)
let prop_order_under_random_durations =
  QCheck.Test.make ~name:"Par.map preserves submission order" ~count:30
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 0 40) (int_bound 50)))
    (fun (jobs, delays) ->
      let input = Array.of_list (List.mapi (fun i d -> (i, d)) delays) in
      let pool = Par.Pool.create ~jobs in
      let out =
        Par.map pool
          (fun (i, d) ->
            (* Busy-spin proportional to the random delay so jobs finish
               out of submission order. *)
            let acc = ref 0 in
            for k = 0 to d * 1000 do
              acc := !acc + k
            done;
            ignore !acc;
            i)
          input
      in
      out = Array.map fst input)

let suite =
  [
    Alcotest.test_case "pool clamps job count" `Quick test_pool_clamps;
    Alcotest.test_case "map: empty and singleton" `Quick test_map_empty_and_singleton;
    Alcotest.test_case "map matches sequential for any jobs" `Quick test_map_matches_sequential;
    Alcotest.test_case "map_list keeps order" `Quick test_map_list;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    to_alcotest prop_order_under_random_durations;
  ]
