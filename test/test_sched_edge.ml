(* Edge cases and failure injection for the local scheduler. *)

open Hrt_engine
open Hrt_core

let phi = Hrt_hw.Platform.phi

let mk ?(num_cpus = 3) ?(config = Config.default) ?(seed = 42L) () =
  Scheduler.create ~seed ~num_cpus ~config phi

let spawn_periodic ?(cpu = 1) sys ~period ~slice =
  let th =
    Scheduler.spawn sys ~cpu ~bound:true
      (Program.seq
         [
           Program.of_steps
             (Scheduler.admission_ops sys
                (Constraints.periodic ~period ~slice ())
                ~on_result:(fun _ -> ()));
           Program.compute_forever (Time.sec 3600);
         ])
  in
  th

let test_smi_with_slack_no_miss () =
  (* Eager scheduling: a 30us SMI against ~50us of slack is absorbed. *)
  let sys = mk () in
  let th = spawn_periodic sys ~period:(Time.us 100) ~slice:(Time.us 40) in
  ignore
    (Hrt_hw.Smi.install (Scheduler.engine sys)
       { Hrt_hw.Smi.mean_interval = Time.us 300; duration_mean = Time.us 30; duration_jitter = 0.1 });
  Scheduler.run ~until:(Time.ms 20) sys;
  Alcotest.(check bool) "arrivals continue" true (th.Thread.arrivals > 150);
  (* A single 30us SMI fits in the ~50us of slack; only the rare periods
     hit by two SMIs can miss. *)
  Alcotest.(check bool) "misses are rare" true
    (float_of_int th.Thread.misses /. float_of_int th.Thread.arrivals < 0.05)

let test_freeze_mid_slice_still_full_slice () =
  (* One SMI exactly inside a slice: the thread still receives its full
     guaranteed CPU time (missing time is not charged as progress). *)
  let sys = mk () in
  let th = spawn_periodic sys ~period:(Time.ms 1) ~slice:(Time.us 200) in
  ignore
    (Engine.schedule (Scheduler.engine sys) ~at:(Time.us 1300) (fun eng ->
         Hrt_hw.Smi.inject eng ~duration:(Time.us 50)));
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check int) "no miss (slack 800us)" 0 th.Thread.misses;
  (* ~9-10 full slices of 200us each. *)
  let expect = Time.to_float_ms th.Thread.cpu_time in
  Alcotest.(check bool) "full slices delivered" true
    (expect > 1.7 && expect < 2.3)

let test_blocked_through_periods_rejoins () =
  let sys = mk () in
  let resumed_at = ref 0L in
  let th =
    Scheduler.spawn sys ~cpu:1 ~bound:true
      (Program.seq
         [
           Program.of_steps
             (Scheduler.admission_ops sys
                (Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 20) ())
                ~on_result:(fun _ -> ()));
           Program.of_steps [ Thread.Compute (Time.us 10) ];
           (* Sleep across many periods. *)
           Program.of_steps [ Thread.Sleep_until (Time.ms 5) ];
           Program.of_thunks
             [
               (fun { Thread.svc; _ } ->
                 resumed_at := svc.Thread.now ();
                 Thread.Compute (Time.sec 1));
             ];
         ])
  in
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check bool) "resumed soon after 5ms" true
    Time.(!resumed_at >= Time.ms 5 && !resumed_at < Time.ms 5 + Time.us 200);
  (* Sleeping threads waive their arrivals: no misses for skipped periods. *)
  Alcotest.(check int) "no misses while sleeping" 0 th.Thread.misses;
  (* After resuming, it is throttled to 20% again. *)
  Scheduler.run ~until:(Time.ms 30) sys;
  let used = Time.to_float_ms th.Thread.cpu_time in
  Alcotest.(check bool) "throttled after resume" true (used > 4.0 && used < 6.0)

let test_independent_cpus () =
  (* Two identical workloads on different CPUs: identical arrivals, no
     cross-talk, each meets every deadline. *)
  let sys = mk ~num_cpus:4 () in
  let a = spawn_periodic ~cpu:1 sys ~period:(Time.us 100) ~slice:(Time.us 70) in
  let b = spawn_periodic ~cpu:2 sys ~period:(Time.us 100) ~slice:(Time.us 70) in
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check int) "same arrivals" a.Thread.arrivals b.Thread.arrivals;
  Alcotest.(check int) "a misses" 0 a.Thread.misses;
  Alcotest.(check int) "b misses" 0 b.Thread.misses

let test_ppr_follows_thread_class () =
  let sys = mk () in
  let apic = (Hrt_hw.Machine.cpu (Scheduler.machine sys) 1).Hrt_hw.Machine.apic in
  ignore (spawn_periodic ~cpu:1 sys ~period:(Time.us 100) ~slice:(Time.us 50));
  let rt_seen = ref false and idle_seen = ref false in
  let rec sample at =
    if Time.(at < Time.ms 5) then
      ignore
        (Engine.schedule (Scheduler.engine sys) ~at (fun _ ->
             (if Hrt_hw.Apic.ppr apic = Hrt_hw.Apic.rt_ppr then rt_seen := true
              else if Hrt_hw.Apic.ppr apic = 0 then idle_seen := true);
             sample Time.(at + Time.us 13)))
  in
  sample (Time.ms 1);
  Scheduler.run ~until:(Time.ms 6) sys;
  Alcotest.(check bool) "PPR raised while RT runs" true !rt_seen;
  Alcotest.(check bool) "PPR lowered when idle" true !idle_seen

let test_sporadic_miss_recorded () =
  (* A sporadic thread that blocks instead of computing cannot be saved by
     the scheduler, but one that is starved by an SMI must record a miss. *)
  let config = { Config.default with Config.admission_control = false } in
  let sys = mk ~config () in
  let th =
    Scheduler.spawn sys ~cpu:1 ~bound:true
      (Program.seq
         [
           Program.of_thunks
             [
               (fun { Thread.svc; _ } ->
                 Thread.Set_constraints
                   ( Constraints.sporadic ~size:(Time.us 900)
                       ~deadline:Time.(svc.Thread.now () + Time.ms 1)
                       (),
                     fun _ -> () ));
             ];
           Program.of_steps [ Thread.Compute (Time.ms 2) ];
         ])
  in
  (* Steal most of the window. *)
  ignore
    (Engine.schedule (Scheduler.engine sys) ~at:(Time.us 100) (fun eng ->
         Hrt_hw.Smi.inject eng ~duration:(Time.us 500)));
  Scheduler.run ~until:(Time.ms 5) sys;
  Alcotest.(check int) "sporadic missed" 1 th.Thread.misses

let test_stale_sleep_does_not_wake () =
  (* A thread that blocks, is woken, and blocks again must not be woken by
     its earlier (stale) sleep timeout. *)
  let sys = mk () in
  let wakes = ref 0 in
  let th =
    Scheduler.spawn sys ~cpu:1 ~bound:true
      (Program.seq
         [
           Program.of_steps [ Thread.Sleep_until (Time.ms 2) ];
           Program.of_thunks [ (fun _ -> incr wakes; Thread.Block) ];
           Program.of_thunks [ (fun _ -> incr wakes; Thread.Block) ];
         ])
  in
  (* External wake at 3ms puts it into the second Block; the stale sleep
     event (2ms) must not fire it out of that one. *)
  ignore
    (Engine.schedule (Scheduler.engine sys) ~at:(Time.ms 3) (fun _ ->
         Scheduler.wake sys th));
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check int) "woken exactly twice" 2 !wakes;
  Alcotest.(check bool) "still blocked at the end" true
    (th.Thread.state = Thread.Blocked)

let test_invocation_rate_two_per_period () =
  let sys = mk () in
  ignore (spawn_periodic ~cpu:1 sys ~period:(Time.us 100) ~slice:(Time.us 50));
  Scheduler.run ~until:(Time.ms 20) sys;
  let acc = Local_sched.account (Scheduler.sched sys 1) in
  let per_period =
    float_of_int (Account.invocations acc) /. float_of_int (Account.arrivals acc)
  in
  (* The paper: two interrupts per period (arrival + timeout), possibly
     overlapping, plus occasional conservative-early refires. *)
  Alcotest.(check bool) "~2-3 invocations per period" true
    (per_period >= 1.5 && per_period <= 3.5)

let test_idle_time_accounting () =
  let sys = mk ~num_cpus:2 () in
  ignore (spawn_periodic ~cpu:1 sys ~period:(Time.us 100) ~slice:(Time.us 25)) ;
  Scheduler.run ~until:(Time.ms 20) sys;
  let idle = Time.to_float_ms (Local_sched.idle_time (Scheduler.sched sys 1)) in
  (* ~75% idle minus overheads. *)
  Alcotest.(check bool) "idle ~ 1 - utilization" true (idle > 12. && idle < 16.5)

let test_change_constraints_rt_to_rt () =
  (* A periodic thread renegotiates to a different periodic constraint;
     utilization accounting must swap, not accumulate. *)
  let sys = mk () in
  let changed = ref false in
  let th =
    Scheduler.spawn sys ~cpu:1 ~bound:true
      (Program.seq
         [
           Program.of_steps
             (Scheduler.admission_ops sys
                (Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 60) ())
                ~on_result:(fun v -> assert (Admission.admitted v)));
           Program.of_steps [ Thread.Compute (Time.ms 2) ];
           Program.of_steps
             (Scheduler.admission_ops sys
                (Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 30) ())
                ~on_result:(fun v -> changed := Admission.admitted v));
           Program.compute_forever (Time.sec 3600);
         ])
  in
  Scheduler.run ~until:(Time.ms 30) sys;
  Alcotest.(check bool) "renegotiated" true !changed;
  Alcotest.(check int) "no misses through the change" 0 th.Thread.misses;
  let util = Admission.periodic_util (Local_sched.admission (Scheduler.sched sys 1)) in
  Alcotest.(check (float 1e-9)) "only the new utilization committed" 0.3 util

let test_many_threads_one_cpu () =
  (* Ten 5% threads: all admitted (50% < 79%), none ever misses. *)
  let sys = mk () in
  let threads =
    List.init 10 (fun _ ->
        spawn_periodic ~cpu:1 sys ~period:(Time.ms 1) ~slice:(Time.us 50))
  in
  Scheduler.run ~until:(Time.ms 50) sys;
  List.iter
    (fun (th : Thread.t) ->
      Alcotest.(check bool) "admitted and running" true (th.Thread.arrivals > 40);
      Alcotest.(check int) "no misses" 0 th.Thread.misses)
    threads

let test_exit_while_realtime_releases_util () =
  let sys = mk () in
  ignore
    (Scheduler.spawn sys ~cpu:1 ~bound:true
       (Program.seq
          [
            Program.of_steps
              (Scheduler.admission_ops sys
                 (Constraints.periodic ~period:(Time.us 100) ~slice:(Time.us 70) ())
                 ~on_result:(fun _ -> ()));
            Program.of_steps [ Thread.Compute (Time.us 500) ];
            (* exits here *)
          ]));
  Scheduler.run ~until:(Time.ms 5) sys;
  Alcotest.(check (float 1e-9)) "utilization released on exit" 0.
    (Admission.periodic_util (Local_sched.admission (Scheduler.sched sys 1)));
  (* And the slot can be reused at full utilization. *)
  let th2 = spawn_periodic ~cpu:1 sys ~period:(Time.us 100) ~slice:(Time.us 70) in
  Scheduler.run ~until:(Time.ms 10) sys;
  Alcotest.(check bool) "new thread admitted" true (th2.Thread.arrivals > 10)

let test_threaded_interrupts_protect_rt () =
  (* §3.5's second mechanism: handler bodies run in an aperiodic interrupt
     thread, so the RT thread only pays the bounded acknowledge cost. *)
  let run ~threaded =
    let sys = mk () in
    let dev =
      Scheduler.add_device sys ~name:"nic" ~prio:15 ~threaded
        ~mean_interval:(Time.us 150)
        ~handler_cost:(Hrt_hw.Platform.cost 40_000. 4_000.)
        ()
    in
    Scheduler.steer_device sys dev ~cpus:[ 1 ];
    Scheduler.start_device sys dev;
    let th = spawn_periodic sys ~period:(Time.us 100) ~slice:(Time.us 70) in
    Scheduler.run ~until:(Time.ms 50) sys;
    (th.Thread.misses, th.Thread.arrivals)
  in
  let inline_misses, _ = run ~threaded:false in
  let threaded_misses, arrivals = run ~threaded:true in
  Alcotest.(check bool) "inline handlers wreck the RT thread" true
    (inline_misses > 100);
  Alcotest.(check bool) "threaded handlers protect it" true
    (threaded_misses < arrivals / 50)

let suite =
  [
    Alcotest.test_case "SMIs with slack never miss (eager)" `Quick test_smi_with_slack_no_miss;
    Alcotest.test_case "freeze mid-slice still full slice" `Quick test_freeze_mid_slice_still_full_slice;
    Alcotest.test_case "blocked across periods rejoins" `Quick test_blocked_through_periods_rejoins;
    Alcotest.test_case "CPUs are independent" `Quick test_independent_cpus;
    Alcotest.test_case "PPR follows thread class" `Quick test_ppr_follows_thread_class;
    Alcotest.test_case "sporadic miss recorded" `Quick test_sporadic_miss_recorded;
    Alcotest.test_case "stale sleep does not wake" `Quick test_stale_sleep_does_not_wake;
    Alcotest.test_case "two invocations per period" `Quick test_invocation_rate_two_per_period;
    Alcotest.test_case "idle time accounting" `Quick test_idle_time_accounting;
    Alcotest.test_case "RT-to-RT constraint change" `Quick test_change_constraints_rt_to_rt;
    Alcotest.test_case "ten threads, one CPU, zero misses" `Quick test_many_threads_one_cpu;
    Alcotest.test_case "exit releases utilization" `Quick test_exit_while_realtime_releases_util;
    Alcotest.test_case "threaded interrupts protect RT" `Quick test_threaded_interrupts_protect_rt;
  ]
