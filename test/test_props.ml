(* Property-based tests (qcheck) on core data structures and scheduler
   invariants. *)

open Hrt_engine
open Hrt_core

let to_alcotest = QCheck_alcotest.to_alcotest

(* ---- Prio_queue: heap order ---- *)

let prop_pq_sorted =
  QCheck.Test.make ~name:"prio_queue pops sorted" ~count:200
    QCheck.(list (int_bound 10_000))
    (fun keys ->
      let q = Prio_queue.create ~capacity:(List.length keys + 1) in
      List.iter (fun k -> ignore (Prio_queue.add q ~key:(Int64.of_int k) k)) keys;
      let rec drain last acc =
        match Prio_queue.pop q with
        | None -> List.rev acc
        | Some (k, _) ->
          if Int64.compare k last < 0 then failwith "out of order"
          else drain k (k :: acc)
      in
      let popped = drain Int64.min_int [] in
      List.length popped = List.length keys)

let prop_pq_remove_keeps_order =
  QCheck.Test.make ~name:"prio_queue remove keeps heap invariant" ~count:200
    QCheck.(pair (list (int_bound 1000)) (list (int_bound 1000)))
    (fun (keys, removals) ->
      let q = Prio_queue.create ~capacity:(List.length keys + 1) in
      List.iter (fun k -> ignore (Prio_queue.add q ~key:(Int64.of_int k) k)) keys;
      List.iter
        (fun r -> ignore (Prio_queue.remove q (fun v -> v mod 17 = r mod 17)))
        removals;
      let rec drain last =
        match Prio_queue.pop q with
        | None -> true
        | Some (k, _) -> Int64.compare k last >= 0 && drain k
      in
      drain Int64.min_int)

(* ---- Prio_queue vs a stable-sorted list model ----

   The RT run queue's determinism rests on two properties at once: heap
   order by key AND FIFO among equal keys, preserved across interleaved
   adds, pops and middle removals (threads changing class or being
   stolen). The model is a list kept sorted by (key, insertion seq);
   removal by id mirrors [Prio_queue.remove]'s first-match contract. *)

type pq_op = Pq_add of int | Pq_pop | Pq_remove of int

let pq_op_gen =
  QCheck.Gen.(
    frequency
      [
        (* Keys from a tiny range so equal-key ties are common. *)
        (5, map (fun k -> Pq_add k) (int_bound 7));
        (3, return Pq_pop);
        (2, map (fun i -> Pq_remove i) (int_bound 40));
      ])

let prop_pq_model =
  QCheck.Test.make ~name:"prio_queue: heap order + FIFO ties vs model"
    ~count:500
    (QCheck.make QCheck.Gen.(list_size (int_range 0 80) pq_op_gen))
    (fun ops ->
      let q = Prio_queue.create ~capacity:128 in
      (* model: (key, seq, id) sorted by (key, seq); seq is insertion order,
         id identifies elements for removal. *)
      let model = ref [] in
      let next = ref 0 in
      let insert (k, s, id) =
        let rec go = function
          | [] -> [ (k, s, id) ]
          | (k', s', _) :: _ as rest when (k, s) < (k', s') ->
            (k, s, id) :: rest
          | x :: rest -> x :: go rest
        in
        model := go !model
      in
      List.for_all
        (fun op ->
          match op with
          | Pq_add k ->
            let id = !next in
            incr next;
            let ok = Prio_queue.add q ~key:(Int64.of_int k) id in
            if ok then insert (k, id, id);
            ok
          | Pq_pop -> (
            let got = Prio_queue.pop q in
            match !model with
            | [] -> got = None
            | (k, _, id) :: rest ->
              model := rest;
              got = Some (Int64.of_int k, id))
          | Pq_remove target -> (
            (* Prio_queue.remove scans in heap (array) order, which is not
               the model's sorted order — so only compare against the model
               when the predicate identifies a unique element. *)
            let got = Prio_queue.remove q (fun id -> id = target) in
            match List.partition (fun (_, _, id) -> id = target) !model with
            | [], _ -> got = None
            | [ (_, _, id) ], rest ->
              model := rest;
              got = Some id
            | _ -> false))
        ops
      && Prio_queue.length q = List.length !model
      &&
      (* Drain: the full (key, FIFO) order must survive the interleaving. *)
      let rec drain = function
        | [] -> Prio_queue.pop q = None
        | (k, _, id) :: rest ->
          Prio_queue.pop q = Some (Int64.of_int k, id) && drain rest
      in
      drain !model)

(* ---- Event_queue ---- *)

let prop_eq_sorted_with_cancels =
  QCheck.Test.make ~name:"event_queue sorted despite cancellations" ~count:200
    QCheck.(list (pair (int_bound 10_000) bool))
    (fun entries ->
      let q = Event_queue.create ~dummy:0 in
      let live = ref 0 in
      List.iter
        (fun (t, keep) ->
          let e = Event_queue.add q ~time:(Int64.of_int t) t in
          if keep then incr live else Event_queue.cancel q e)
        entries;
      if Event_queue.size q <> !live then false
      else begin
        let rec drain last n =
          match Event_queue.pop q with
          | None -> n = !live
          | Some (t, _) -> Int64.compare t last >= 0 && drain t (n + 1)
        in
        drain Int64.min_int 0
      end)

(* ---- Timing wheel vs reference heap (differential) ----

   The engine's determinism guarantee rests on the wheel producing the
   exact (time, seq, payload) pop sequence of the original binary heap.
   Drive both implementations with one random operation stream — adds
   (including same-instant FIFO ties, past-time adds once pops have
   advanced the cursor, and far adds beyond the wheel's 2^32 ns horizon),
   cancels and requeues through stored handles, and pops — and demand
   they agree on every observation. *)

type eq_op =
  | Eq_add of int
  | Eq_far of int
  | Eq_cancel of int
  | Eq_requeue of int * int
  | Eq_pop

let eq_op_gen =
  QCheck.Gen.(
    frequency
      [
        (* Times from a tiny range so ties and past adds are common. *)
        (6, map (fun t -> Eq_add t) (int_bound 12));
        (2, map (fun t -> Eq_far t) (int_bound 12));
        (2, map (fun i -> Eq_cancel i) (int_bound 200));
        (2, map (fun (i, t) -> Eq_requeue (i, t)) (pair (int_bound 200) (int_bound 12)));
        (5, return Eq_pop);
      ])

let prop_eq_wheel_matches_heap =
  QCheck.Test.make ~name:"timing wheel matches reference heap" ~count:400
    (QCheck.make QCheck.Gen.(list_size (int_range 0 150) eq_op_gen))
    (fun ops ->
      let w = Event_queue.create ~dummy:(-1) in
      let h = Heap_queue.create () in
      (* Handle pairs for every insertion, newest first. *)
      let hs = ref [] in
      let n = ref 0 in
      let far = Int64.shift_left 1L 33 in
      let pick i = List.nth !hs (i mod !n) in
      let add time =
        let id = !n in
        hs := (Event_queue.add w ~time id, Heap_queue.add h ~time id) :: !hs;
        incr n
      in
      let step op =
        match op with
        | Eq_add t ->
          add (Int64.of_int t);
          true
        | Eq_far t ->
          add (Int64.add far (Int64.of_int t));
          true
        | Eq_cancel i ->
          !n = 0
          ||
          let wh, he = pick i in
          (* Liveness must agree even through fired / already-cancelled /
             requeued handles (generation checks vs lazy marks). *)
          let agree = Event_queue.is_live w wh = Heap_queue.is_live he in
          Event_queue.cancel w wh;
          Heap_queue.cancel h he;
          agree
        | Eq_requeue (i, t) ->
          !n = 0
          ||
          let wh, he = pick i in
          let lw = Event_queue.is_live w wh and lh = Heap_queue.is_live he in
          lw = lh
          && (if lw then begin
                let time = Int64.of_int t in
                hs :=
                  ( Event_queue.requeue w wh ~time,
                    Heap_queue.requeue h he ~time )
                  :: !hs;
                incr n
              end;
              true)
        | Eq_pop -> Event_queue.pop w = Heap_queue.pop h
      in
      List.for_all
        (fun op ->
          step op
          && Event_queue.size w = Heap_queue.size h
          && Event_queue.peek_time w = Heap_queue.peek_time h)
        ops
      &&
      (* Drain both to the end: the tails must be identical too. *)
      let rec drain () =
        let pw = Event_queue.pop w and ph = Heap_queue.pop h in
        pw = ph && (pw = None || drain ())
      in
      drain ())

(* ---- Summary ---- *)

let nonempty_floats =
  QCheck.(list_of_size Gen.(int_range 1 200) (float_bound_exclusive 1000.))

let prop_summary_bounds =
  QCheck.Test.make ~name:"summary: min <= mean <= max" ~count:300 nonempty_floats
    (fun xs ->
      let s = Hrt_stats.Summary.of_array (Array.of_list xs) in
      Hrt_stats.Summary.min s <= Hrt_stats.Summary.mean s +. 1e-9
      && Hrt_stats.Summary.mean s <= Hrt_stats.Summary.max s +. 1e-9)

let prop_summary_merge_commutes =
  QCheck.Test.make ~name:"summary merge commutes" ~count:200
    QCheck.(pair nonempty_floats nonempty_floats)
    (fun (xs, ys) ->
      let a = Hrt_stats.Summary.of_array (Array.of_list xs) in
      let b = Hrt_stats.Summary.of_array (Array.of_list ys) in
      let m1 = Hrt_stats.Summary.merge a b in
      let m2 = Hrt_stats.Summary.merge b a in
      Float.abs (Hrt_stats.Summary.mean m1 -. Hrt_stats.Summary.mean m2) < 1e-6
      && Float.abs
           (Hrt_stats.Summary.variance m1 -. Hrt_stats.Summary.variance m2)
         < 1e-3)

(* ---- Histogram ---- *)

let prop_histogram_conservation =
  QCheck.Test.make ~name:"histogram conserves samples" ~count:300
    QCheck.(list (float_range (-100.) 1100.))
    (fun xs ->
      let h = Hrt_stats.Histogram.create ~lo:0. ~hi:1000. ~bins:13 in
      List.iter (Hrt_stats.Histogram.add h) xs;
      let binned = ref 0 in
      for i = 0 to Hrt_stats.Histogram.bins h - 1 do
        binned := !binned + Hrt_stats.Histogram.bin_count h i
      done;
      !binned + Hrt_stats.Histogram.underflow h + Hrt_stats.Histogram.overflow h
      = List.length xs)

(* ---- Percentile ---- *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone in p" ~count:200
    QCheck.(pair nonempty_floats (list (int_bound 100)))
    (fun (xs, ps) ->
      let p = Hrt_stats.Percentile.of_array (Array.of_list xs) in
      let ps = List.sort compare (List.map float_of_int ps) in
      let rec check last = function
        | [] -> true
        | q :: rest ->
          let v = Hrt_stats.Percentile.value p q in
          v >= last -. 1e-9 && check v rest
      in
      check neg_infinity ps)

(* ---- Rng ---- *)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"rng int in bounds" ~count:300
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let x = Rng.int r n in
      x >= 0 && x < n)

(* ---- Deque vs list model ---- *)

type dq_op = Push_front of int | Push_back of int | Pop | Remove of int

let dq_op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun x -> Push_front x) (int_bound 100));
        (3, map (fun x -> Push_back x) (int_bound 100));
        (2, return Pop);
        (* Values in a residue class so the predicate hits the middle of
           either half (or misses entirely), exercising the half-rebuild
           removal paths. *)
        (2, map (fun x -> Remove x) (int_bound 100));
      ])

let prop_deque_model =
  QCheck.Test.make ~name:"deque behaves like a list" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 0 60) dq_op_gen))
    (fun ops ->
      let d = Hrt_kernel.Deque.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Push_front x ->
            Hrt_kernel.Deque.push_front d x;
            model := x :: !model;
            true
          | Push_back x ->
            Hrt_kernel.Deque.push_back d x;
            model := !model @ [ x ];
            true
          | Pop -> (
            let got = Hrt_kernel.Deque.pop_front d in
            match !model with
            | [] -> got = None
            | x :: rest ->
              model := rest;
              got = Some x)
          | Remove target -> (
            let pred v = v mod 7 = target mod 7 in
            let got = Hrt_kernel.Deque.remove d pred in
            let rec take acc = function
              | [] -> (None, !model)
              | x :: rest when pred x -> (Some x, List.rev_append acc rest)
              | x :: rest -> take (x :: acc) rest
            in
            let expect, rest = take [] !model in
            model := rest;
            got = expect))
        ops
      && Hrt_kernel.Deque.to_list d = !model)

(* ---- Admission: utilization never exceeds capacity ---- *)

let prop_admission_capacity =
  QCheck.Test.make ~name:"admission never over-commits" ~count:200
    QCheck.(list (pair (int_range 10 1000) (int_range 1 100)))
    (fun reqs ->
      let adm = Admission.create Config.default in
      let capacity = Config.periodic_capacity Config.default in
      List.iter
        (fun (period_us, slice_pct) ->
          let period = Time.us period_us in
          let slice =
            Time.max 1_000L
              (Int64.div (Int64.mul period (Int64.of_int slice_pct)) 100L)
          in
          ignore
            (Admission.request adm ~now:0L
               ~old_constr:(Constraints.aperiodic ())
               (Constraints.periodic ~period ~slice ())))
        reqs;
      Admission.periodic_util adm <= capacity +. 1e-9)

(* ---- Time conversions conservative ---- *)

let prop_time_cycle_roundtrip =
  QCheck.Test.make ~name:"cycle conversion conservative" ~count:300
    QCheck.(pair (int_range 1 1_000_000_000) (int_range 10 40))
    (fun (t, ghz10) ->
      let ghz = float_of_int ghz10 /. 10. in
      let t = Int64.of_int t in
      let c = Time.cycles_of_ns ~ghz t in
      let t' = Time.ns_of_cycles ~ghz c in
      (* Floor then ceil: lands within one cycle's worth of nanoseconds
         (plus <= 1 ns of float slack in the frequency). *)
      Float.abs (Int64.to_float (Int64.sub t t')) <= (1. /. ghz) +. 1.)

(* ---- Feasible task sets never miss (the paper's core guarantee) ---- *)

let prop_feasible_no_misses =
  QCheck.Test.make ~name:"feasible task sets never miss" ~count:10
    QCheck.(
      pair (int_range 0 1000)
        (list_of_size Gen.(int_range 1 3) (pair (int_range 2 10) (int_range 5 15))))
    (fun (seed, specs) ->
      (* Periods 200us-1ms, slices 5-15% each, at most 3 threads: total
         utilization <= 45%, far below capacity: the scheduler must meet
         every deadline. *)
      let sys =
        Scheduler.create ~seed:(Int64.of_int seed) ~num_cpus:2
          Hrt_hw.Platform.phi
      in
      let threads =
        List.map
          (fun (p100, slice_pct) ->
            let period = Time.us (p100 * 100) in
            let slice =
              Int64.div (Int64.mul period (Int64.of_int slice_pct)) 100L
            in
            let admitted = ref false in
            let th =
              Scheduler.spawn sys ~cpu:1 ~bound:true
                (Program.seq
                   [
                     Program.of_steps
                       (Scheduler.admission_ops sys
                          (Constraints.periodic ~period ~slice ())
                          ~on_result:(fun v -> admitted := Admission.admitted v));
                     Program.compute_forever (Time.sec 3600);
                   ])
            in
            (th, admitted))
          specs
      in
      Scheduler.run ~until:(Time.ms 30) sys;
      List.for_all
        (fun ((th : Thread.t), admitted) -> !admitted && th.Thread.misses = 0)
        threads)

let suite =
  List.map to_alcotest
    [
      prop_pq_sorted;
      prop_pq_remove_keeps_order;
      prop_pq_model;
      prop_eq_sorted_with_cancels;
      prop_eq_wheel_matches_heap;
      prop_summary_bounds;
      prop_summary_merge_commutes;
      prop_histogram_conservation;
      prop_percentile_monotone;
      prop_rng_int_bounds;
      prop_deque_model;
      prop_admission_capacity;
      prop_time_cycle_roundtrip;
      prop_feasible_no_misses;
    ]
