(* hrt_lint test suite: fixture goldens, mutation tests proving each
   rule fires, config-parser semantics, budget enforcement, a self-scan
   of the real tree, and focused regression tests for the code the lint
   flagged (sink default, buddy pop order, APIC timer probe, fig10
   accumulation order). *)

open Hrt_lint

let diag_lines diags = List.map Diag.to_string diags

let read_lines path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")

(* ---- fixture corpus ---- *)

let fixture_files () =
  Sys.readdir "lint" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.sort String.compare

let is_waived_twin f = Filename.check_suffix (Filename.chop_extension f) "_waived"

let test_fixture_goldens () =
  let fixtures = fixture_files () in
  Alcotest.(check int) "fixture corpus size" 24 (List.length fixtures);
  List.iter
    (fun f ->
      let src = In_channel.with_open_text (Filename.concat "lint" f) In_channel.input_all in
      let expected = read_lines (Filename.concat "lint" (Filename.chop_extension f ^ ".expected")) in
      let diags = Driver.scan_string ~config:Config.all_on ~path:f src in
      Alcotest.(check (list string)) (f ^ " diagnostics") expected (diag_lines diags))
    fixtures

let test_fixture_waiver_split () =
  List.iter
    (fun f ->
      let src = In_channel.with_open_text (Filename.concat "lint" f) In_channel.input_all in
      let diags = Driver.scan_string ~config:Config.all_on ~path:f src in
      let unwaived = List.filter (fun d -> not (Diag.waived d)) diags in
      let waived = List.filter Diag.waived diags in
      if is_waived_twin f then (
        Alcotest.(check int) (f ^ ": no unwaived findings") 0 (List.length unwaived);
        Alcotest.(check bool) (f ^ ": carries a waived finding") true (waived <> []))
      else
        Alcotest.(check bool) (f ^ ": has an unwaived finding") true (unwaived <> []))
    (fixture_files ())

(* ---- mutation tests: a clean hot module, plus one injected defect per
   rule, must trip exactly that rule ---- *)

let clean_base = "[@@@hrt.hot]\n\nlet add a b = a + b\n\nlet scale k x = k * x\n"

let scan src = Driver.scan_string ~config:Config.all_on ~path:"mutant.ml" src

let test_clean_base () =
  Alcotest.(check (list string)) "clean base scans empty" [] (diag_lines (scan clean_base))

let mutations =
  [
    ("dom-mutable-global", "let cache = Hashtbl.create 8\n");
    ("det-wallclock", "let stamp () = Unix.gettimeofday ()\n");
    ("det-entropy", "let flip () = Random.bool ()\n");
    ("det-hashtbl-order", "let digest x = Hashtbl.hash x\n");
    ("det-float-polycmp", "let clamp x = min x 0.5\n");
    ("alloc-closure", "let apply x = (fun y -> y + x) x\n");
    ("alloc-partial", "let bump = List.map succ\n");
    ("alloc-tuple", "let pair x = (x, x)\n");
    ("alloc-option", "let boxed x = Some (x * 2)\n");
    ("alloc-list", "let singleton x = [ x ]\n");
    ("alloc-format", "let show x = Format.asprintf \"%d\" x\n");
    ("alloc-append", "let double s = s ^ s\n");
  ]

let test_mutations () =
  List.iter
    (fun (rule, snippet) ->
      let diags = scan (clean_base ^ snippet) in
      let hit = List.exists (fun d -> d.Diag.rule = rule) diags in
      Alcotest.(check bool)
        (Printf.sprintf "injected %s trips %s (got: %s)" snippet rule
           (String.concat "; " (diag_lines diags)))
        true hit)
    mutations

let test_bare_waiver_is_a_finding () =
  let diags = scan (clean_base ^ "let w = ref 1 [@@hrt.unsynchronized]\n") in
  Alcotest.(check bool) "bare waiver flagged" true
    (List.exists (fun d -> d.Diag.rule = "dom-waiver-reason") diags);
  Alcotest.(check bool) "underlying finding still unwaived" true
    (List.exists (fun d -> d.Diag.rule = "dom-mutable-global" && not (Diag.waived d)) diags)

let test_parse_error_diag () =
  match scan "let = = =\n" with
  | [ d ] ->
    Alcotest.(check string) "rule" "parse-error" d.Diag.rule;
    Alcotest.(check bool) "unwaivable" false (Diag.waived d)
  | ds -> Alcotest.failf "expected one parse-error, got %d diags" (List.length ds)

(* ---- config parsing and scoping ---- *)

let parse_ok s =
  match Config.parse_string s with
  | Ok c -> c
  | Error m -> Alcotest.failf "config parse failed: %s" m

let test_config_parse () =
  let c =
    parse_ok
      "# comment\n\
       waiver-budget nondet 3\n\
       [determinism]\n\
       include lib\n\
       exclude lib/vendor\n\
       allow det-wallclock lib/harness\n\
       [alloc]\n\
       include lib/engine\n"
  in
  Alcotest.(check (option int)) "budget" (Some 3) (Config.budget c "nondet");
  Alcotest.(check (option int)) "unset budget unlimited" None (Config.budget c "alloc_ok");
  let det = Config.scope c Config.Determinism in
  Alcotest.(check bool) "in scope" true (Config.in_scope det ~path:"lib/core/x.ml");
  Alcotest.(check bool) "excluded" false (Config.in_scope det ~path:"lib/vendor/x.ml");
  Alcotest.(check bool) "out of scope" false (Config.in_scope det ~path:"bin/x.ml");
  Alcotest.(check bool) "allow disables rule under prefix" false
    (Config.rule_enabled det ~rule:"det-wallclock" ~path:"lib/harness/bench.ml");
  Alcotest.(check bool) "other rules unaffected" true
    (Config.rule_enabled det ~rule:"det-entropy" ~path:"lib/harness/bench.ml");
  Alcotest.(check bool) "rule on elsewhere" true
    (Config.rule_enabled det ~rule:"det-wallclock" ~path:"lib/core/x.ml");
  let alloc = Config.scope c Config.Alloc in
  Alcotest.(check bool) "domain family untouched" false
    (Config.in_scope (Config.scope c Config.Domain) ~path:"lib/core/x.ml");
  (* Prefixes match whole path components, not raw string prefixes. *)
  Alcotest.(check bool) "component prefix matches" true
    (Config.in_scope alloc ~path:"lib/engine/event_queue.ml");
  Alcotest.(check bool) "no partial-component match" false
    (Config.in_scope alloc ~path:"lib/engine2/event_queue.ml")

let test_config_errors () =
  (match Config.parse_string "frobnicate lib\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown directive accepted");
  match Config.parse_string "waiver-budget nondet many\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric budget accepted"

let test_waiver_budget_exceeded () =
  let config = { Config.all_on with Config.budgets = [ ("alloc_ok", 0) ] } in
  let report = Driver.run ~config ~root:"lint" [ "alloc_closure_waived.ml" ] in
  Alcotest.(check bool) "budget breach is dirty" false (Driver.clean report);
  Alcotest.(check bool) "synthetic waiver-budget finding" true
    (List.exists (fun d -> d.Diag.rule = "waiver-budget") (Driver.unwaived report));
  (* Within budget the same waived file is clean. *)
  let config = { Config.all_on with Config.budgets = [ ("alloc_ok", 1) ] } in
  let report = Driver.run ~config ~root:"lint" [ "alloc_closure_waived.ml" ] in
  Alcotest.(check bool) "within budget is clean" true (Driver.clean report)

(* ---- self-scan: the committed tree must lint clean under the
   committed configuration ---- *)

let rec find_repo_root dir depth =
  if depth > 16 then None
  else if Sys.file_exists (Filename.concat dir ".git")
          && Sys.file_exists (Filename.concat dir ".hrt-lint")
  then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_repo_root parent (depth + 1)

let test_self_scan () =
  match find_repo_root (Sys.getcwd ()) 0 with
  | None -> Alcotest.fail "repository root (.git + .hrt-lint) not found"
  | Some root ->
    let config =
      match Config.load (Filename.concat root ".hrt-lint") with
      | Ok c -> c
      | Error m -> Alcotest.failf "config load failed: %s" m
    in
    let report = Driver.run ~config ~root [ "lib"; "bin" ] in
    let offenders = diag_lines (Driver.unwaived report) in
    Alcotest.(check (list string)) "tree is lint-clean" [] offenders;
    Alcotest.(check bool) "scanned a real tree" true (report.Driver.files > 50)

let test_summary_line () =
  let report = Driver.run ~config:Config.all_on ~root:"lint" [ "alloc_tuple.ml" ] in
  Alcotest.(check string) "summary format"
    "hrt-lint: files=1 findings=1 waived=0 status=dirty"
    (Driver.summary_line report)

(* ---- regressions for the defects the lint surfaced ---- *)

(* lib/kernel/buddy.ml: pop_free used Hashtbl iteration order to pick a
   free block; allocation offsets now always take the lowest offset. *)
let test_buddy_lowest_offset () =
  let b = Hrt_kernel.Buddy.create ~total:512 ~min_block:64 in
  let offs = List.init 4 (fun _ -> Option.get (Hrt_kernel.Buddy.alloc b 64)) in
  Alcotest.(check (list int)) "ascending split order" [ 0; 64; 128; 192 ] offs;
  Hrt_kernel.Buddy.free b 128;
  Hrt_kernel.Buddy.free b 0;
  Alcotest.(check (option int)) "lowest free block first" (Some 0)
    (Hrt_kernel.Buddy.alloc b 64);
  Alcotest.(check (option int)) "then the next lowest" (Some 128)
    (Hrt_kernel.Buddy.alloc b 64)

(* lib/hw/apic.ml: the armed-timer probe the scheduler polls every
   decision is now the allocation-free [timer_armed]; it must agree with
   the option-building diagnostic accessor across arm/fire/cancel. *)
let test_apic_timer_armed () =
  let open Hrt_engine in
  let eng = Engine.create () in
  let apic =
    Hrt_hw.Apic.create ~engine:eng ~rng:(Rng.create 5L) ~tick_ns:25
      ~tsc_deadline:false ~jitter_max_cycles:0. ~ghz:1.3
  in
  let agree label =
    Alcotest.(check bool) (label ^ ": probe matches accessor")
      (Hrt_hw.Apic.timer_armed apic)
      (Hrt_hw.Apic.timer_armed_at apic <> None)
  in
  Alcotest.(check bool) "initially disarmed" false (Hrt_hw.Apic.timer_armed apic);
  agree "initial";
  Hrt_hw.Apic.set_timer_handler apic (fun _ -> ());
  Hrt_hw.Apic.arm apic ~at:100L;
  Alcotest.(check bool) "armed" true (Hrt_hw.Apic.timer_armed apic);
  agree "armed";
  Hrt_hw.Apic.cancel_timer apic;
  Alcotest.(check bool) "cancelled" false (Hrt_hw.Apic.timer_armed apic);
  agree "cancelled";
  Hrt_hw.Apic.arm apic ~at:200L;
  Engine.run eng;
  Alcotest.(check bool) "disarmed after fire" false (Hrt_hw.Apic.timer_armed apic);
  agree "fired"

(* lib/harness/fig10.ml: per-mark accumulation now folds in thread-id
   order instead of Hashtbl order, so the float sums — and therefore the
   rendered tables — are identical run to run. *)
let test_fig10_repeatable () =
  let render () =
    Hrt_harness.Fig10.run ~ctx:(Hrt_harness.Exp.Ctx.quick ()) ()
    |> List.map Hrt_stats.Table.render
    |> String.concat "\n"
  in
  let a = render () in
  Alcotest.(check bool) "produced output" true (String.length a > 0);
  Alcotest.(check string) "identical reruns" a (render ())

let suite =
  [
    Alcotest.test_case "fixture goldens" `Quick test_fixture_goldens;
    Alcotest.test_case "fixture waiver split" `Quick test_fixture_waiver_split;
    Alcotest.test_case "clean base" `Quick test_clean_base;
    Alcotest.test_case "mutations trip rules" `Quick test_mutations;
    Alcotest.test_case "bare waiver is a finding" `Quick test_bare_waiver_is_a_finding;
    Alcotest.test_case "parse error diag" `Quick test_parse_error_diag;
    Alcotest.test_case "config parse" `Quick test_config_parse;
    Alcotest.test_case "config errors" `Quick test_config_errors;
    Alcotest.test_case "waiver budget" `Quick test_waiver_budget_exceeded;
    Alcotest.test_case "summary line" `Quick test_summary_line;
    Alcotest.test_case "self scan clean" `Quick test_self_scan;
    Alcotest.test_case "buddy lowest offset" `Quick test_buddy_lowest_offset;
    Alcotest.test_case "apic timer armed" `Quick test_apic_timer_armed;
    Alcotest.test_case "fig10 repeatable" `Quick test_fig10_repeatable;
  ]
