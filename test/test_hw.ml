open Hrt_engine
open Hrt_hw

(* ---- Tsc ---- *)

let test_tsc_counting () =
  let tsc = Tsc.create ~ghz:1.3 ~start_skew:0L in
  Alcotest.(check int64) "at zero" 0L (Tsc.read tsc ~now:0L);
  Alcotest.(check int64) "1us later" 1300L (Tsc.read tsc ~now:(Time.us 1))

let test_tsc_skew () =
  let tsc = Tsc.create ~ghz:1.3 ~start_skew:(Time.us 1) in
  (* Started 1us late: lags an ideal counter by 1300 cycles. *)
  Alcotest.(check int64) "lag" (-1300L) (Tsc.read tsc ~now:0L);
  Alcotest.(check int64) "offset" (-1300L) (Tsc.offset_cycles tsc)

let test_tsc_write () =
  let tsc = Tsc.create ~ghz:2.0 ~start_skew:(Time.us 3) in
  Tsc.write tsc ~now:(Time.us 10) 12345L;
  Alcotest.(check int64) "read back" 12345L (Tsc.read tsc ~now:(Time.us 10));
  (* Still counts at the same rate afterwards. *)
  Alcotest.(check int64) "counts on" (Int64.add 12345L 2000L)
    (Tsc.read tsc ~now:(Time.us 11))

let test_tsc_adjust () =
  let tsc = Tsc.create ~ghz:2.0 ~start_skew:0L in
  Tsc.adjust tsc 500L;
  Alcotest.(check int64) "adjusted" 500L (Tsc.read tsc ~now:0L);
  Tsc.adjust tsc (-200L);
  Alcotest.(check int64) "adjusted back" 300L (Tsc.read tsc ~now:0L)

(* ---- Apic ---- *)

let mk_apic ?(tick = 25) ?(tsc_deadline = false) ?(jitter = 0.) eng =
  Apic.create ~engine:eng ~rng:(Rng.create 5L) ~tick_ns:tick ~tsc_deadline
    ~jitter_max_cycles:jitter ~ghz:1.3

let test_apic_oneshot () =
  let eng = Engine.create () in
  let apic = mk_apic eng in
  let fired = ref [] in
  Apic.set_timer_handler apic (fun eng -> fired := Engine.now eng :: !fired);
  Apic.arm apic ~at:100L;
  Engine.run eng;
  (match !fired with
  | [ t ] -> Alcotest.(check bool) "conservative, min one tick" true
               Time.(t <= 100L && t >= 25L)
  | _ -> Alcotest.fail "expected exactly one firing");
  Alcotest.(check bool) "disarmed after fire" true (Apic.timer_armed_at apic = None)

let test_apic_conservative_rounding () =
  let eng = Engine.create () in
  let apic = mk_apic ~tick:25 eng in
  let fired = ref 0L in
  Apic.set_timer_handler apic (fun eng -> fired := Engine.now eng);
  (* 110ns = 4.4 ticks -> fires at 4 ticks = 100ns, never later. *)
  Apic.arm apic ~at:110L;
  Engine.run eng;
  Alcotest.(check int64) "rounded down to tick" 100L !fired

let test_apic_tsc_deadline_exact () =
  let eng = Engine.create () in
  let apic = mk_apic ~tsc_deadline:true eng in
  let fired = ref 0L in
  Apic.set_timer_handler apic (fun eng -> fired := Engine.now eng);
  Apic.arm apic ~at:117L;
  Engine.run eng;
  Alcotest.(check int64) "cycle exact" 117L !fired

let test_apic_rearm_cancels () =
  let eng = Engine.create () in
  let apic = mk_apic ~tsc_deadline:true eng in
  let count = ref 0 in
  Apic.set_timer_handler apic (fun _ -> incr count);
  Apic.arm apic ~at:100L;
  Apic.arm apic ~at:200L;
  Engine.run eng;
  Alcotest.(check int) "only one firing" 1 !count;
  Alcotest.(check int64) "at second target" 200L (Engine.now eng)

let test_apic_cancel () =
  let eng = Engine.create () in
  let apic = mk_apic eng in
  let count = ref 0 in
  Apic.set_timer_handler apic (fun _ -> incr count);
  Apic.arm apic ~at:100L;
  Apic.cancel_timer apic;
  Engine.run eng;
  Alcotest.(check int) "cancelled" 0 !count

let test_apic_ppr_gating () =
  let eng = Engine.create () in
  let apic = mk_apic eng in
  let log = ref [] in
  ignore
    (Engine.schedule eng ~at:10L (fun eng ->
         Apic.set_ppr apic eng Apic.rt_ppr;
         (* Device priority 8: held pending. *)
         Apic.deliver apic eng ~prio:8
           (Engine.Callback (fun _ -> log := "dev" :: !log));
         (* Scheduling priority 15: goes through. *)
         Apic.deliver apic eng ~prio:Apic.sched_prio
           (Engine.Callback (fun _ -> log := "sched" :: !log))));
  ignore
    (Engine.schedule eng ~at:50L (fun eng ->
         Alcotest.(check int) "one pending" 1 (Apic.pending_count apic);
         Apic.set_ppr apic eng 0));
  Engine.run eng;
  Alcotest.(check (list string)) "sched immediate, dev on unmask"
    [ "sched"; "dev" ] (List.rev !log);
  Alcotest.(check int) "pending drained" 0 (Apic.pending_count apic)

let test_apic_pending_priority_order () =
  let eng = Engine.create () in
  let apic = mk_apic eng in
  let log = ref [] in
  ignore
    (Engine.schedule eng ~at:10L (fun eng ->
         Apic.set_ppr apic eng 14;
         Apic.deliver apic eng ~prio:5 (Engine.Callback (fun _ -> log := 5 :: !log));
         Apic.deliver apic eng ~prio:9 (Engine.Callback (fun _ -> log := 9 :: !log));
         Apic.deliver apic eng ~prio:7 (Engine.Callback (fun _ -> log := 7 :: !log))));
  ignore (Engine.schedule eng ~at:20L (fun eng -> Apic.set_ppr apic eng 0));
  Engine.run eng;
  Alcotest.(check (list int)) "highest priority first" [ 9; 7; 5 ]
    (List.rev !log)

(* ---- Smi ---- *)

let test_smi_inject () =
  let eng = Engine.create () in
  ignore
    (Engine.schedule eng ~at:10L (fun eng -> Smi.inject eng ~duration:100L));
  let fired = ref 0L in
  ignore (Engine.schedule eng ~at:50L (fun eng -> fired := Engine.now eng));
  Engine.run eng;
  Alcotest.(check int64) "event deferred past SMI" 110L !fired

let test_smi_generator () =
  let eng = Engine.create () in
  let config =
    { Smi.mean_interval = Time.us 100; duration_mean = Time.us 10; duration_jitter = 0.1 }
  in
  let gen = Smi.install eng config in
  (* Keep the engine alive with a periodic heartbeat. *)
  let rec heartbeat at =
    if Time.(at < Time.ms 5) then
      ignore (Engine.schedule eng ~at (fun _ -> heartbeat Time.(at + Time.us 50)))
  in
  heartbeat 1L;
  Engine.run ~until:(Time.ms 5) eng;
  Alcotest.(check bool) "some SMIs happened" true (Smi.count gen > 10);
  Alcotest.(check bool) "stolen time positive" true
    Time.(Smi.total_stolen gen > 0L);
  Alcotest.(check bool) "stolen time matches engine" true
    (Int64.to_float (Engine.total_frozen eng)
     /. Int64.to_float (Smi.total_stolen gen)
    > 0.95)

(* Regression: two overlapping injections used to charge [total_stolen]
   with both full durations even though the freeze windows merged, so the
   books said 250us of missing time for a 150us freeze. Only the
   incremental extension may be charged. *)
let test_smi_overlap_accounting () =
  let eng = Engine.create () in
  let config =
    (* An effectively-infinite interval: only the forced injections run. *)
    { Smi.mean_interval = Time.sec 3600; duration_mean = Time.us 10; duration_jitter = 0. }
  in
  let gen = Smi.install eng config in
  ignore
    (Engine.schedule eng ~at:(Time.us 50) (fun _ ->
         Smi.inject_on gen ~duration:(Time.us 100);
         Smi.inject_on gen ~duration:(Time.us 150)));
  ignore (Engine.schedule eng ~at:(Time.ms 1) (fun _ -> ()));
  Engine.run ~until:(Time.ms 1) eng;
  Alcotest.(check int) "both counted" 2 (Smi.count gen);
  Alcotest.(check int64) "incremental extension only" (Time.us 150)
    (Smi.total_stolen gen);
  Alcotest.(check int64) "matches the engine's frozen time" (Time.us 150)
    (Engine.total_frozen eng)

let test_smi_stop () =
  let eng = Engine.create () in
  let config =
    { Smi.mean_interval = Time.us 50; duration_mean = Time.us 5; duration_jitter = 0. }
  in
  let gen = Smi.install eng config in
  ignore
    (Engine.schedule eng ~at:(Time.us 200) (fun _ -> Smi.stop gen));
  Engine.run ~until:(Time.ms 2) eng;
  let count_at_stop = Smi.count gen in
  Alcotest.(check bool) "stopped eventually" true (count_at_stop < 10)

(* ---- Gpio ---- *)

let test_gpio_transitions () =
  let eng = Engine.create () in
  let gpio = Gpio.create eng in
  ignore (Engine.schedule eng ~at:10L (fun _ -> Gpio.set gpio ~pin:0 true));
  ignore (Engine.schedule eng ~at:20L (fun _ -> Gpio.set gpio ~pin:0 true));
  ignore (Engine.schedule eng ~at:30L (fun _ -> Gpio.set gpio ~pin:0 false));
  Engine.run eng;
  let trans = Gpio.transitions gpio ~pin:0 in
  Alcotest.(check int) "redundant set not recorded" 2 (Array.length trans);
  Alcotest.(check bool) "levels" true
    (trans.(0) = (10L, true) && trans.(1) = (30L, false))

let test_gpio_intervals () =
  let eng = Engine.create () in
  let gpio = Gpio.create eng in
  List.iter
    (fun (t, v) ->
      ignore (Engine.schedule eng ~at:t (fun _ -> Gpio.set gpio ~pin:3 v)))
    [ (10L, true); (20L, false); (30L, true); (45L, false); (50L, true) ];
  Engine.run eng;
  let ivs = Gpio.high_intervals gpio ~pin:3 in
  Alcotest.(check int) "two complete pulses" 2 (Array.length ivs);
  Alcotest.(check bool) "bounds" true
    (ivs.(0) = (10L, 20L) && ivs.(1) = (30L, 45L));
  Alcotest.(check bool) "level now high" true (Gpio.level gpio ~pin:3)

let test_gpio_bad_pin () =
  let eng = Engine.create () in
  let gpio = Gpio.create eng in
  Alcotest.check_raises "pin range" (Invalid_argument "Gpio: pin out of range")
    (fun () -> Gpio.set gpio ~pin:8 true)

(* ---- Irq ---- *)

let test_irq_steering_round_robin () =
  let eng = Engine.create () in
  let apics = Array.init 4 (fun _ -> mk_apic eng) in
  let irq = Irq.create ~engine:eng ~apic_of:(fun i -> apics.(i)) in
  let hits = Array.make 4 0 in
  Irq.set_dispatch irq (fun ~cpu _dev _eng -> hits.(cpu) <- hits.(cpu) + 1);
  let dev =
    Irq.add_device irq ~name:"nic" ~prio:8 ~mean_interval:(Time.us 20)
      ~handler_cost:(Platform.cost 100. 0.)
  in
  Irq.steer irq dev ~cpus:[ 1; 2 ];
  Irq.start irq dev;
  Engine.run ~until:(Time.ms 2) eng;
  Alcotest.(check int) "cpu0 untouched" 0 hits.(0);
  Alcotest.(check int) "cpu3 untouched" 0 hits.(3);
  Alcotest.(check bool) "cpu1 and cpu2 share" true
    (hits.(1) > 10 && hits.(2) > 10 && abs (hits.(1) - hits.(2)) <= 1);
  Alcotest.(check int) "delivered counter" (hits.(1) + hits.(2))
    (Irq.delivered dev)

let test_irq_stop () =
  let eng = Engine.create () in
  let apic = mk_apic eng in
  let irq = Irq.create ~engine:eng ~apic_of:(fun _ -> apic) in
  let count = ref 0 in
  Irq.set_dispatch irq (fun ~cpu:_ _ _ -> incr count);
  let dev =
    Irq.add_device irq ~name:"d" ~prio:8 ~mean_interval:(Time.us 10)
      ~handler_cost:(Platform.cost 10. 0.)
  in
  Irq.start irq dev;
  ignore (Engine.schedule eng ~at:(Time.us 100) (fun _ -> Irq.stop irq dev));
  Engine.run ~until:(Time.ms 1) eng;
  Alcotest.(check bool) "stopped" true (!count < 30)

let test_irq_empty_steer () =
  let eng = Engine.create () in
  let apic = mk_apic eng in
  let irq = Irq.create ~engine:eng ~apic_of:(fun _ -> apic) in
  let dev =
    Irq.add_device irq ~name:"d" ~prio:8 ~mean_interval:1L
      ~handler_cost:(Platform.cost 1. 0.)
  in
  Alcotest.check_raises "empty cpus" (Invalid_argument "Irq.steer: empty CPU list")
    (fun () -> Irq.steer irq dev ~cpus:[])

(* ---- Platform / Machine ---- *)

let test_platform_presets () =
  Alcotest.(check int) "phi cpus" 256 Platform.phi.Platform.num_cpus;
  Alcotest.(check int) "phi cores" 64 Platform.phi.Platform.cores;
  Alcotest.(check (float 1e-9)) "phi clock" 1.3 Platform.phi.Platform.ghz;
  Alcotest.(check int) "r415 cpus" 8 Platform.r415.Platform.num_cpus;
  (* The paper's headline numbers: ~6000 cycles of software overhead on
     Phi per invocation, about half in the pass. *)
  let p = Platform.phi in
  let total =
    p.Platform.irq_dispatch.Platform.mean_cycles
    +. p.Platform.sched_pass.Platform.mean_cycles
    +. p.Platform.ctx_switch.Platform.mean_cycles
    +. p.Platform.sched_other.Platform.mean_cycles
  in
  Alcotest.(check bool) "phi overhead ~6000 cycles" true
    (total > 5_000. && total < 7_000.)

let test_platform_conversions () =
  let p = Platform.phi in
  Alcotest.(check int64) "1300 cycles = 1us" (Time.us 1)
    (Platform.cycles_to_ns p 1300.);
  Alcotest.(check (float 1e-6)) "round trip" 1300.
    (Platform.ns_to_cycles p (Time.us 1));
  Alcotest.(check int64) "nonpositive clamps" 0L (Platform.cycles_to_ns p 0.);
  Alcotest.(check int64) "tiny cost at least 1ns" 1L (Platform.cycles_to_ns p 0.5)

let test_platform_sampling () =
  let p = Platform.phi in
  let rng = Rng.create 31L in
  let cost = Platform.cost 1000. 100. in
  for _ = 1 to 500 do
    let c = Platform.sample_cycles p rng cost in
    Alcotest.(check bool) "truncated below mean/4" true (c >= 250.)
  done;
  let zero_sigma = Platform.cost 1000. 0. in
  Alcotest.(check (float 0.)) "deterministic when sigma=0" 1000.
    (Platform.sample_cycles p rng zero_sigma)

let test_machine_topology () =
  let m = Machine.create ~seed:1L ~num_cpus:8 Platform.phi in
  Alcotest.(check int) "cpus" 8 (Machine.num_cpus m);
  Alcotest.(check int) "cpu0 id" 0 (Machine.cpu m 0).Machine.id;
  (* 4 hardware threads per core on Phi. *)
  Alcotest.(check int) "cpu 0 core" 0 (Machine.cpu m 0).Machine.core;
  Alcotest.(check int) "cpu 5 core" 1 (Machine.cpu m 5).Machine.core;
  (* CPU 0 is the reference: zero boot skew. *)
  Alcotest.(check int64) "cpu0 tsc offset" 0L
    (Tsc.offset_cycles (Machine.cpu m 0).Machine.tsc)

let test_machine_boot_skew () =
  let m = Machine.create ~seed:1L ~num_cpus:16 Platform.phi in
  let skewed = ref 0 in
  for i = 1 to 15 do
    if Tsc.offset_cycles (Machine.cpu m i).Machine.tsc <> 0L then incr skewed
  done;
  Alcotest.(check bool) "most CPUs have skew" true (!skewed >= 14)

let test_machine_invalid () =
  Alcotest.check_raises "zero cpus"
    (Invalid_argument "Machine.create: num_cpus 0") (fun () ->
      ignore (Machine.create ~num_cpus:0 Platform.phi))

let suite =
  [
    Alcotest.test_case "tsc counting" `Quick test_tsc_counting;
    Alcotest.test_case "tsc boot skew" `Quick test_tsc_skew;
    Alcotest.test_case "tsc write" `Quick test_tsc_write;
    Alcotest.test_case "tsc adjust" `Quick test_tsc_adjust;
    Alcotest.test_case "apic one-shot" `Quick test_apic_oneshot;
    Alcotest.test_case "apic conservative rounding" `Quick test_apic_conservative_rounding;
    Alcotest.test_case "apic tsc-deadline mode" `Quick test_apic_tsc_deadline_exact;
    Alcotest.test_case "apic rearm cancels" `Quick test_apic_rearm_cancels;
    Alcotest.test_case "apic cancel" `Quick test_apic_cancel;
    Alcotest.test_case "apic ppr gating" `Quick test_apic_ppr_gating;
    Alcotest.test_case "apic pending priority order" `Quick test_apic_pending_priority_order;
    Alcotest.test_case "smi inject freezes" `Quick test_smi_inject;
    Alcotest.test_case "smi generator" `Quick test_smi_generator;
    Alcotest.test_case "smi overlap accounting" `Quick
      test_smi_overlap_accounting;
    Alcotest.test_case "smi stop" `Quick test_smi_stop;
    Alcotest.test_case "gpio transitions" `Quick test_gpio_transitions;
    Alcotest.test_case "gpio high intervals" `Quick test_gpio_intervals;
    Alcotest.test_case "gpio pin bounds" `Quick test_gpio_bad_pin;
    Alcotest.test_case "irq steering round robin" `Quick test_irq_steering_round_robin;
    Alcotest.test_case "irq stop" `Quick test_irq_stop;
    Alcotest.test_case "irq empty steering rejected" `Quick test_irq_empty_steer;
    Alcotest.test_case "platform presets" `Quick test_platform_presets;
    Alcotest.test_case "platform conversions" `Quick test_platform_conversions;
    Alcotest.test_case "platform sampling" `Quick test_platform_sampling;
    Alcotest.test_case "machine topology" `Quick test_machine_topology;
    Alcotest.test_case "machine boot skew" `Quick test_machine_boot_skew;
    Alcotest.test_case "machine invalid args" `Quick test_machine_invalid;
  ]
