[@@@hrt.hot]

let boxed x = (Some (x + 1) [@hrt.alloc_ok "fixture"])
