let stamp () = Unix.gettimeofday ()
