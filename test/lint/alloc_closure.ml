[@@@hrt.hot]

let scale k xs = Array.map (fun x -> x * k) xs
