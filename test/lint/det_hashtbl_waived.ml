let keys tbl =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
   [@hrt.nondet "fixture: sorted by caller"])
