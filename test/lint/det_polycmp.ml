let clamp x = min x 1.5
