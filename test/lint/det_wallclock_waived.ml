let stamp () = (Unix.gettimeofday () [@hrt.nondet "fixture: self-timing"])
