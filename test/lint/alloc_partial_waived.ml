[@@@hrt.hot]

let bump = (List.map succ [@hrt.alloc_ok "fixture"])
