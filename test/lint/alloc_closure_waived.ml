[@@@hrt.hot]

let scale k xs = Array.map ((fun x -> x * k) [@hrt.alloc_ok "fixture"]) xs
