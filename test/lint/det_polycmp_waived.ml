let clamp x = (min x 1.5 [@hrt.nondet "fixture: NaN-free domain"])
