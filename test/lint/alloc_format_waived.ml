[@@@hrt.hot]

let label x = (Printf.sprintf "t%d" x [@hrt.alloc_ok "fixture"])
