[@@@hrt.hot]

let pair x = (x, x + 1)
