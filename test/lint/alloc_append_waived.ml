[@@@hrt.hot]

let join a b = ((a @ b) [@hrt.alloc_ok "fixture"])
