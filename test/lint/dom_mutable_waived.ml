let table = Hashtbl.create 16 [@@hrt.unsynchronized "fixture: single-domain only"]
let lookup k = Hashtbl.find_opt table k
