[@@@hrt.hot]

let pair x = ((x, x + 1) [@hrt.alloc_ok "fixture"])
