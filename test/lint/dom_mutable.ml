let table = Hashtbl.create 16
let lookup k = Hashtbl.find_opt table k
