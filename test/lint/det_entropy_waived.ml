let draw () = (Random.int 10 [@hrt.nondet "fixture: demo entropy"])
