[@@@hrt.hot]

let widen x = ([ x; x + 1 ] [@hrt.alloc_ok "fixture"])
