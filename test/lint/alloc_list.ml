[@@@hrt.hot]

let widen x = [ x; x + 1 ]
