[@@@hrt.hot]

let boxed x = Some (x + 1)
