[@@@hrt.hot]

let join a b = a @ b
