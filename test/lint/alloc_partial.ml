[@@@hrt.hot]

let bump = List.map succ
