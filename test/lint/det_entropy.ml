let draw () = Random.int 10
