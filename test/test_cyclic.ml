open Hrt_engine
open Hrt_core

let job name period slice = { Cyclic.name; period; slice }

(* Max frame load must stay below the admission capacity (79%): the
   executive's own slice is the worst frame's load. *)
let harmonic_set =
  [
    job "fast" (Time.us 100) (Time.us 20);
    job "mid" (Time.us 200) (Time.us 30);
    job "slow" (Time.us 400) (Time.us 40);
  ]

let test_plan_harmonic () =
  match Cyclic.plan harmonic_set with
  | Error e -> Alcotest.failf "plan failed: %a" Cyclic.pp_error e
  | Ok t ->
    Alcotest.(check int64) "hyperperiod" (Time.us 400) (Cyclic.hyperperiod t);
    Alcotest.(check bool) "frame divides H" true
      (Int64.equal (Int64.rem (Cyclic.hyperperiod t) (Cyclic.frame_size t)) 0L);
    Alcotest.(check bool) "frame fits max slice" true
      Time.(Cyclic.frame_size t >= Time.us 40);
    Alcotest.(check (float 1e-9)) "utilization" 0.45 (Cyclic.utilization t);
    (match Cyclic.validate t with
    | Ok () -> ()
    | Error msg -> Alcotest.fail msg)

let test_plan_counts_instances () =
  match Cyclic.plan harmonic_set with
  | Error _ -> Alcotest.fail "plan failed"
  | Ok t ->
    let count name =
      Array.fold_left
        (fun acc pieces ->
          acc + List.length (List.filter (fun (n, _) -> n = name) pieces))
        0 (Cyclic.frames t)
    in
    Alcotest.(check int) "fast instances" 4 (count "fast");
    Alcotest.(check int) "mid instances" 2 (count "mid");
    Alcotest.(check int) "slow instances" 1 (count "slow")

let test_plan_errors () =
  let err r = match r with Error e -> e | Ok _ -> Alcotest.fail "expected error" in
  (match err (Cyclic.plan []) with
  | Cyclic.Empty_job_set -> ()
  | e -> Alcotest.failf "wrong error: %a" Cyclic.pp_error e);
  (match err (Cyclic.plan [ job "bad" (Time.us 10) (Time.us 20) ]) with
  | Cyclic.Invalid_job "bad" -> ()
  | e -> Alcotest.failf "wrong error: %a" Cyclic.pp_error e);
  (match
     err
       (Cyclic.plan
          [
            job "a" (Time.us 100) (Time.us 60);
            job "b" (Time.us 100) (Time.us 60);
          ])
   with
  | Cyclic.Utilization_too_high _ -> ()
  | e -> Alcotest.failf "wrong error: %a" Cyclic.pp_error e)

let test_executive_runs_jobs () =
  let sys = Scheduler.create ~num_cpus:2 Hrt_hw.Platform.phi in
  let t = Result.get_ok (Cyclic.plan harmonic_set) in
  let completions : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let th =
    Cyclic.spawn sys ~cpu:1 t ~on_job:(fun name _ ->
        Hashtbl.replace completions name
          (1 + Option.value ~default:0 (Hashtbl.find_opt completions name)))
  in
  Scheduler.run ~until:(Time.ms 5) sys;
  (* ~4.x ms of schedule after admission: >= 10 hyperperiods. *)
  let count name = Option.value ~default:0 (Hashtbl.find_opt completions name) in
  Alcotest.(check bool) "fast ran ~40x" true (count "fast" >= 35);
  Alcotest.(check bool) "mid ran ~20x" true (count "mid" >= 17);
  Alcotest.(check bool) "slow ran ~10x" true (count "slow" >= 8);
  (* The 4:2:1 rate structure is preserved. *)
  Alcotest.(check bool) "rate ratios" true
    (abs ((count "fast" / 2) - count "mid") <= 2
    && abs ((count "mid" / 2) - count "slow") <= 2);
  Alcotest.(check int) "no deadline misses ever" 0 th.Thread.misses

let test_executive_deterministic_periods () =
  (* Completion times of the fast job recur with its period. *)
  let sys = Scheduler.create ~num_cpus:2 Hrt_hw.Platform.phi in
  let t = Result.get_ok (Cyclic.plan harmonic_set) in
  let times = ref [] in
  ignore
    (Cyclic.spawn sys ~cpu:1 t ~on_job:(fun name at ->
         if name = "fast" then times := at :: !times));
  Scheduler.run ~until:(Time.ms 3) sys;
  let times = Array.of_list (List.rev !times) in
  Alcotest.(check bool) "enough samples" true (Array.length times > 10);
  (* A job's position inside a frame depends on the frame's contents, so
     consecutive gaps vary — but the static table repeats exactly every
     hyperperiod (4 fast instances): times[i+4] - times[i] = H. *)
  let deviations = ref 0 in
  for i = 4 to Array.length times - 5 do
    let a = times.(i) and b = times.(i + 4) in
    let gap = Time.(b - a) in
    if Int64.compare (Int64.abs (Int64.sub gap (Time.us 400))) 3_000L > 0 then
      incr deviations
  done;
  Alcotest.(check int) "hyperperiodic completions" 0 !deviations

let test_executive_rejected_when_infeasible () =
  (* Strict reservations cap periodic utilization at 79%: a 90% executive
     must be rejected crisply. *)
  let sys = Scheduler.create ~num_cpus:2 Hrt_hw.Platform.phi in
  let t =
    Result.get_ok (Cyclic.plan [ job "hog" (Time.us 100) (Time.us 90) ])
  in
  Alcotest.check_raises "rejected"
    (Failure
       "Cyclic.spawn: executive rejected by admission: utilization 0.900000 \
        exceeds bound 0.790000") (fun () ->
      ignore (Cyclic.spawn sys ~cpu:1 t))

let test_non_harmonic_set () =
  (* 300us and 400us periods: H = 1.2ms; a valid frame must still exist. *)
  let jobs =
    [ job "a" (Time.us 300) (Time.us 30); job "b" (Time.us 400) (Time.us 40) ]
  in
  match Cyclic.plan jobs with
  | Error e -> Alcotest.failf "plan failed: %a" Cyclic.pp_error e
  | Ok t ->
    Alcotest.(check int64) "hyperperiod" (Time.us 1200) (Cyclic.hyperperiod t);
    (match Cyclic.validate t with
    | Ok () -> ()
    | Error m -> Alcotest.fail m)

let prop_plan_valid =
  QCheck.Test.make ~name:"planned tables always validate" ~count:100
    QCheck.(
      list_of_size
        Gen.(int_range 1 4)
        (pair (oneofl [ 100; 200; 400; 500; 1000 ]) (int_range 5 20)))
    (fun specs ->
      let jobs =
        List.mapi
          (fun i (period_us, slice_pct) ->
            let period = Time.us period_us in
            let slice =
              Time.max 1_000L
                (Int64.div (Int64.mul period (Int64.of_int slice_pct)) 100L)
            in
            job (Printf.sprintf "j%d" i) period slice)
          specs
      in
      match Cyclic.plan jobs with
      | Error _ -> true (* rejection is always sound *)
      | Ok t -> Cyclic.validate t = Ok ())

let suite =
  [
    Alcotest.test_case "plan harmonic set" `Quick test_plan_harmonic;
    Alcotest.test_case "plan places every instance" `Quick test_plan_counts_instances;
    Alcotest.test_case "plan error cases" `Quick test_plan_errors;
    Alcotest.test_case "executive runs jobs at rate" `Quick test_executive_runs_jobs;
    Alcotest.test_case "executive perfectly periodic" `Quick test_executive_deterministic_periods;
    Alcotest.test_case "executive rejected when infeasible" `Quick test_executive_rejected_when_infeasible;
    Alcotest.test_case "non-harmonic periods" `Quick test_non_harmonic_set;
    QCheck_alcotest.to_alcotest prop_plan_valid;
  ]
