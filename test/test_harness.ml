(* The experiment harness itself: each figure's headline claim holds at
   Quick scale, and the registry is well-formed. *)

open Hrt_harness

let test_registry_well_formed () =
  let names = List.map (fun e -> e.Registry.name) Registry.all in
  Alcotest.(check int) "21 experiments" 21 (List.length names);
  Alcotest.(check (list string)) "unique names" (List.sort_uniq compare names)
    (List.sort compare names);
  Alcotest.(check bool) "find works" true (Registry.find "fig6" <> None);
  Alcotest.(check bool) "policy ablation listed" true
    (Registry.find "ablation-policy" <> None);
  Alcotest.(check bool) "find rejects junk" true (Registry.find "fig99" = None)

let test_fig3_within_1000_cycles () =
  let sys = Hrt_core.Scheduler.create ~num_cpus:256 Hrt_hw.Platform.phi in
  match Hrt_core.Scheduler.calibration sys with
  | None -> Alcotest.fail "no calibration"
  | Some r ->
    Array.iter
      (fun c ->
        Alcotest.(check bool) "residual < 1000 cycles" true (Float.abs c < 1000.))
      r.Hrt_core.Sync_cal.residual_cycles

let test_fig5_totals () =
  let phi_acc = Fig05.measure Hrt_hw.Platform.phi in
  let r415_acc = Fig05.measure Hrt_hw.Platform.r415 in
  let phi_total = Hrt_core.Account.total_overhead_cycles phi_acc in
  let r415_total = Hrt_core.Account.total_overhead_cycles r415_acc in
  Alcotest.(check bool) "phi ~6000 cycles" true
    (phi_total > 5_000. && phi_total < 7_500.);
  Alcotest.(check bool) "r415 cheaper" true (r415_total < phi_total);
  (* About half the overhead is the scheduling pass (paper Section 5.3). *)
  let pass = Hrt_stats.Summary.mean (Hrt_core.Account.resched_cycles phi_acc) in
  Alcotest.(check bool) "pass ~ half" true
    (pass /. phi_total > 0.35 && pass /. phi_total < 0.60)

let test_fig6_feasibility_edge () =
  let points =
    Miss_sweep.sweep ~ctx:(Exp.Ctx.quick ()) ~platform:Hrt_hw.Platform.phi
      ~periods_us:[ 1000; 100; 10 ] ~slices_pct:[ 20; 50 ] ()
  in
  let rate p s =
    let pt =
      List.find
        (fun (x : Miss_sweep.point) ->
          Int64.equal x.Miss_sweep.period (Hrt_engine.Time.us p)
          && x.Miss_sweep.slice_pct = s)
        points
    in
    pt.Miss_sweep.miss_rate
  in
  Alcotest.(check (float 0.)) "1ms/50% zero" 0. (rate 1000 50);
  Alcotest.(check (float 0.)) "100us/50% zero" 0. (rate 100 50);
  Alcotest.(check bool) "10us/50% beyond the edge" true (rate 10 50 > 0.5);
  Alcotest.(check bool) "10us/20% beyond the edge" true (rate 10 20 > 0.5)

let test_fig7_r415_finer_edge () =
  (* 10us/50% misses on Phi but works on the faster R415 (edge ~4us). *)
  let phi =
    Miss_sweep.sweep ~ctx:(Exp.Ctx.quick ()) ~platform:Hrt_hw.Platform.phi
      ~periods_us:[ 10 ] ~slices_pct:[ 40 ] ()
  in
  let r415 =
    Miss_sweep.sweep ~ctx:(Exp.Ctx.quick ()) ~platform:Hrt_hw.Platform.r415
      ~periods_us:[ 10 ] ~slices_pct:[ 40 ] ()
  in
  Alcotest.(check bool) "phi misses" true
    ((List.hd phi).Miss_sweep.miss_rate > 0.5);
  Alcotest.(check bool) "r415 essentially feasible" true
    ((List.hd r415).Miss_sweep.miss_rate < 0.02)

let test_fig8_miss_times_small () =
  let points =
    Miss_sweep.sweep ~ctx:(Exp.Ctx.quick ()) ~platform:Hrt_hw.Platform.phi
      ~periods_us:[ 10; 20 ] ~slices_pct:[ 50; 90 ] ()
  in
  List.iter
    (fun (p : Miss_sweep.point) ->
      if p.Miss_sweep.misses > 0 then
        Alcotest.(check bool) "misses are microseconds, not periods" true
          (p.Miss_sweep.miss_mean_us < 25.))
    points

let test_fig12_bias_grows_and_correction_works () =
  let mean data = Hrt_stats.Summary.mean (Hrt_stats.Summary.of_array data) in
  let ctx = Exp.Ctx.quick () in
  let raw8 = mean (Fig11.collect ~ctx ~workers:8 ~phase_correction:false ()) in
  let raw32 = mean (Fig11.collect ~ctx ~workers:32 ~phase_correction:false ()) in
  let fix32 = mean (Fig11.collect ~ctx ~workers:32 ~phase_correction:true ()) in
  Alcotest.(check bool) "bias grows with group size" true (raw32 > raw8 *. 1.2);
  Alcotest.(check bool) "correction removes most of it" true (fix32 < raw32 *. 0.85);
  Alcotest.(check bool) "residual is a few thousand cycles" true
    (fix32 > 1_000. && fix32 < 20_000.)

let test_ablation_eager_beats_lazy () =
  (* Reuse the ablation code path and check its verdict numerically. *)
  let tables = Ablations.eager_vs_lazy ~ctx:(Exp.Ctx.quick ()) () in
  Alcotest.(check int) "one table" 1 (List.length tables)

let test_ablation_policy_table () =
  (* Table-level shape; the numeric EDF/RM separation is asserted in
     test_policy.ml against edf_vs_rm_points. *)
  let tables = Ablations.edf_vs_rm ~ctx:(Exp.Ctx.quick ()) () in
  Alcotest.(check int) "one table" 1 (List.length tables);
  let t = List.hd tables in
  Alcotest.(check int) "six utilization points" 6 (Hrt_stats.Table.rows t)

let test_exp_ctx_default () =
  let ctx = Exp.Ctx.default () in
  Alcotest.(check bool) "default policy is EDF" true
    (ctx.Exp.Ctx.policy = Hrt_core.Config.Edf);
  Alcotest.(check bool) "default seed is the golden 42" true
    (Int64.equal ctx.Exp.Ctx.seed 42L);
  Alcotest.(check bool) "default sink is disabled" true
    (not (Hrt_obs.Sink.enabled ctx.Exp.Ctx.sink))

let test_exp_spread_collector () =
  let sys = Hrt_core.Scheduler.create ~num_cpus:5 Hrt_hw.Platform.phi in
  let period = Hrt_engine.Time.us 100 in
  let c =
    Exp.make_spread_collector sys ~workers:4 ~period
      ~settle:(Hrt_engine.Time.ms 2)
  in
  Exp.run_group_admission sys ~workers:4
    (Hrt_core.Constraints.periodic ~period ~slice:(Hrt_engine.Time.us 20) ())
    ();
  Hrt_core.Scheduler.run ~until:(Hrt_engine.Time.ms 20) sys;
  let sp = Exp.spreads c in
  Alcotest.(check bool) "collected spreads" true (Array.length sp > 50);
  Array.iter
    (fun s -> Alcotest.(check bool) "spread positive and sane" true (s >= 0. && s < 1e6))
    sp

let test_light_experiments_produce_tables () =
  List.iter
    (fun name ->
      match Registry.find name with
      | None -> Alcotest.fail ("missing " ^ name)
      | Some e ->
        let tables = e.Registry.run (Exp.Ctx.quick ()) in
        Alcotest.(check bool) (name ^ " has tables") true (List.length tables >= 1);
        List.iter
          (fun t ->
            Alcotest.(check bool) (name ^ " rows") true (Hrt_stats.Table.rows t > 0))
          tables)
    [ "fig3"; "fig4"; "fig5"; "ablation-steering"; "ablation-util" ]

let test_bsp_sweep_grids () =
  let quick = Bsp_sweep.combos ~scale:Exp.Quick in
  let full = Bsp_sweep.combos ~scale:Exp.Full in
  Alcotest.(check bool) "quick smaller than full" true
    (List.length quick < List.length full);
  Alcotest.(check int) "full grid 6x9" 54 (List.length full);
  List.iter
    (fun (p, s) ->
      Alcotest.(check bool) "slice within period" true
        Hrt_engine.Time.(s > 0L && s <= p))
    full;
  Alcotest.(check int) "paper-scale workers" 255 (Bsp_sweep.workers ~scale:Exp.Full)

let test_table_accessors () =
  let t =
    Hrt_stats.Table.create ~title:"x"
      ~columns:[ ("a", Hrt_stats.Table.Left); ("b", Hrt_stats.Table.Right) ]
  in
  Hrt_stats.Table.row t [ "1"; "2" ];
  Alcotest.(check string) "title" "x" (Hrt_stats.Table.title t);
  Alcotest.(check (list string)) "headers" [ "a"; "b" ] (Hrt_stats.Table.headers t);
  Alcotest.(check (list (list string))) "rows" [ [ "1"; "2" ] ]
    (Hrt_stats.Table.to_rows t)

let suite =
  [
    Alcotest.test_case "registry well-formed" `Quick test_registry_well_formed;
    Alcotest.test_case "fig3: all CPUs within 1000 cycles" `Quick test_fig3_within_1000_cycles;
    Alcotest.test_case "fig5: overhead magnitudes" `Quick test_fig5_totals;
    Alcotest.test_case "fig6: feasibility edge at ~10us" `Quick test_fig6_feasibility_edge;
    Alcotest.test_case "fig7: r415 finer edge" `Quick test_fig7_r415_finer_edge;
    Alcotest.test_case "fig8: miss times small" `Quick test_fig8_miss_times_small;
    Alcotest.test_case "fig12: bias grows, correction works" `Slow test_fig12_bias_grows_and_correction_works;
    Alcotest.test_case "ablation eager-vs-lazy runs" `Quick test_ablation_eager_beats_lazy;
    Alcotest.test_case "ablation edf-vs-rm table" `Quick test_ablation_policy_table;
    Alcotest.test_case "experiment ctx defaults" `Quick test_exp_ctx_default;
    Alcotest.test_case "spread collector" `Quick test_exp_spread_collector;
    Alcotest.test_case "experiments produce tables" `Slow test_light_experiments_produce_tables;
    Alcotest.test_case "bsp sweep grids" `Quick test_bsp_sweep_grids;
    Alcotest.test_case "table accessors" `Quick test_table_accessors;
  ]
