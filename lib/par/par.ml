(* Deterministic fork-join parallelism over OCaml 5 domains.

   The contract that makes this library usable for the experiment harness
   is *determinism*: [map] returns results placed by submission index,
   never completion order, so a caller that runs independent deterministic
   jobs gets bit-identical output no matter how many domains execute them
   (and no matter how the domains interleave).

   Work distribution is a single shared index counter: each worker claims
   the next unclaimed job with [Atomic.fetch_and_add]. That is enough —
   jobs here are whole simulations (milliseconds to seconds each), so
   stealing granularity and queue locality are irrelevant; what matters is
   that no job runs twice and no job is skipped. The calling domain
   participates as a worker, so [jobs = 1] degenerates to a plain
   sequential [Array.map] with no domain spawned at all. *)

module Pool = struct
  type t = { jobs : int }

  (* OCaml 5 caps live domains at ~128 (including the main one); well
     before that, spawning more workers than cores only adds overhead.
     Clamp hard so a bad HRT_JOBS value cannot abort the runtime. *)
  let max_jobs = 64

  let create ~jobs = { jobs = Stdlib.max 1 (Stdlib.min jobs max_jobs) }
  let jobs t = t.jobs
end

let map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if Pool.jobs pool = 1 || n = 1 then Array.map f arr
  else begin
    (* Slots are written at most once, each by exactly one domain;
       [Domain.join] publishes them to the caller. *)
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        match Atomic.get failure with
        | Some _ -> continue := false
        | None ->
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else begin
            match f arr.(i) with
            | y -> out.(i) <- Some y
            | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              (* First failure wins; the others drain and stop. *)
              ignore (Atomic.compare_and_set failure None (Some (e, bt)));
              continue := false
          end
      done
    in
    let helpers = Stdlib.min (Pool.jobs pool - 1) (n - 1) in
    let domains = Array.init helpers (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.init n (fun i ->
        match out.(i) with
        | Some y -> y
        | None -> assert false (* every index < n was claimed exactly once *))
  end

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))
