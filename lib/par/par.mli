(** Deterministic fork-join parallelism over OCaml 5 domains.

    The harness fans independent, fully deterministic simulations across
    domains with {!map}. Results are merged by submission index — never by
    completion order — so output is bit-identical to a sequential run.
    Jobs must not share mutable state (each experiment job builds its own
    simulated system); the library gives no other guarantee about how they
    interleave. *)

module Pool : sig
  type t
  (** A parallelism capability: an upper bound on how many domains one
      {!map} call may use. Creating a pool allocates nothing and spawns
      nothing; domains are forked per [map] call and joined before it
      returns, so a pool can be kept or rebuilt freely. *)

  val create : jobs:int -> t
  (** [create ~jobs] allows up to [jobs] concurrent workers (the calling
      domain counts as one). Clamped to [1 .. 64]. *)

  val jobs : t -> int
end

val map : Pool.t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] applies [f] to every element, running up to
    [Pool.jobs pool] applications concurrently, and returns the results in
    submission (index) order. With [jobs = 1] (or fewer than two elements)
    no domain is spawned and this is exactly [Array.map f arr] — same
    order, same exceptions.

    If any [f] raises, remaining unstarted jobs are abandoned, all workers
    are joined, and the first failure is re-raised with its backtrace. *)

val map_list : Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists, preserving order. *)
