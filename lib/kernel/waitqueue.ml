type 'a t = { q : 'a Queue.t }

let create () = { q = Queue.create () }

let enqueue t x = Queue.add x t.q

let wake_one t = Queue.take_opt t.q

let wake_all t =
  let xs = List.of_seq (Queue.to_seq t.q) in
  Queue.clear t.q;
  xs

let remove t pred =
  let found = ref None in
  let keep = Queue.create () in
  Queue.iter
    (fun x ->
      if !found = None && pred x then found := Some x else Queue.add x keep)
    t.q;
  Queue.clear t.q;
  Queue.transfer keep t.q;
  !found

let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q
let iter t f = Queue.iter f t.q
