type 'a t = { mutable front : 'a list; mutable back : 'a list }
(* Elements are [front @ List.rev back]. *)

let create () = { front = []; back = [] }

let push_front t x = t.front <- x :: t.front

let push_back t x = t.back <- x :: t.back

let normalize t =
  if t.front = [] then begin
    t.front <- List.rev t.back;
    t.back <- []
  end

let pop_front t =
  normalize t;
  match t.front with
  | [] -> None
  | x :: rest ->
    t.front <- rest;
    Some x

let peek_front t =
  normalize t;
  match t.front with [] -> None | x :: _ -> Some x

let to_list t = t.front @ List.rev t.back

let remove t pred =
  let all = to_list t in
  let rec go acc = function
    | [] -> None
    | x :: rest ->
      if pred x then begin
        t.front <- List.rev_append acc rest;
        t.back <- [];
        Some x
      end
      else go (x :: acc) rest
  in
  go [] all

let length t = List.length t.front + List.length t.back
let is_empty t = t.front = [] && t.back = []
let iter t f = List.iter f (to_list t)
