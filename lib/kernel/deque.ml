type 'a t = { mutable front : 'a list; mutable back : 'a list }
(* Elements are [front @ List.rev back]. *)

let create () = { front = []; back = [] }

let push_front t x = t.front <- x :: t.front

let push_back t x = t.back <- x :: t.back

let normalize t =
  if t.front = [] then begin
    t.front <- List.rev t.back;
    t.back <- []
  end

let pop_front t =
  normalize t;
  match t.front with
  | [] -> None
  | x :: rest ->
    t.front <- rest;
    Some x

let peek_front t =
  normalize t;
  match t.front with [] -> None | x :: _ -> Some x

let to_list t = t.front @ List.rev t.back

let remove t pred =
  (* First match in logical (front-to-back) order. Only the half holding
     the match is rebuilt, and only up to the match: removing from the
     front list leaves the back list untouched and vice versa. *)
  let rec go acc = function
    | [] -> None
    | x :: rest -> if pred x then Some (acc, x, rest) else go (x :: acc) rest
  in
  match go [] t.front with
  | Some (acc, x, rest) ->
    t.front <- List.rev_append acc rest;
    Some x
  | None -> (
    (* [back] is stored newest-first; scan it in logical order and store
       the survivors back reversed. *)
    match go [] (List.rev t.back) with
    | Some (acc, x, rest) ->
      t.back <- List.rev_append rest acc;
      Some x
    | None -> None)

let length t = List.length t.front + List.length t.back
let is_empty t = t.front = [] && t.back = []
let iter t f = List.iter f (to_list t)
