(** Lightweight tasks (paper Section 3.1).

    Tasks are queued callbacks, cheaper than threads, similar to softIRQs /
    DPCs with one crucial difference: a task may carry a {e size} tag
    declaring its worst-case execution time. The scheduler may execute a
    size-tagged task directly when there is room before the next real-time
    arrival; untagged tasks must go through a helper thread. Either way,
    tasks can never delay periodic or sporadic threads.

    Each task also carries its {e actual} duration (how long it really
    takes), which the simulator charges as busy time; a well-behaved task
    has [duration <= declared size]. *)

open Hrt_engine

type task = {
  declared : Time.ns option;  (** size tag, if any *)
  duration : Time.ns;  (** actual execution time *)
  run : unit -> unit;
  submitted : Time.ns;
}

type t

val create : unit -> t

val submit :
  t -> ?declared:Time.ns -> duration:Time.ns -> now:Time.ns -> (unit -> unit) -> unit

val take_sized : t -> fits:Time.ns -> task option
(** Oldest size-tagged task whose declared size is at most [fits]. *)

val take_unsized : t -> task option
(** Oldest untagged task (helper-thread work). *)

val sized_pending : t -> int
val unsized_pending : t -> int

val executed : t -> int

val complete : t -> task -> now:Time.ns -> unit
(** Record completion; accumulates queueing+execution latency. *)

val mean_latency : t -> float
(** Mean submit-to-complete latency (ns) of completed tasks; 0 if none. *)
