(** Fixed-capacity thread-slot pool.

    The paper fixes the maximum number of threads at compile time so every
    scheduler structure is fixed-size and every scheduler pass has bounded
    cost (Section 3.3). This pool models that: slot ids are recycled
    (reaping/reanimation) and allocation fails when the machine-wide limit
    is reached. *)

type t

val create : capacity:int -> t
(** Requires [capacity > 0]. *)

val alloc : t -> int option
(** A free slot id, or [None] when the pool is exhausted. Recycled slots are
    reused before fresh ones (LIFO, like a thread pool keeping hot state). *)

val free : t -> int -> unit
(** Return a slot. Raises [Invalid_argument] if the slot is not in use. *)

val in_use : t -> int
val capacity : t -> int
