(** Buddy-system memory allocator.

    Nautilus does all memory management explicitly "with buddy system
    allocators that are selected based on the target zone" (paper
    Section 2) — allocation cost is O(log levels) and bounded, part of the
    predictability story that makes the kernel a usable RTOS base. This is
    a faithful power-of-two buddy allocator over a simulated address
    range: splitting on allocation, coalescing with the buddy on free.

    Addresses are plain integers (offsets into the zone). *)

type t

val create : total:int -> min_block:int -> t
(** A zone of [total] bytes with the smallest allocatable block
    [min_block]. Both must be powers of two with
    [min_block <= total]; raises [Invalid_argument] otherwise. *)

val alloc : t -> int -> int option
(** [alloc t size] returns the offset of a block of at least [size] bytes
    (rounded up to a power of two, floored at [min_block]), or [None] when
    no block fits. O(levels). *)

val free : t -> int -> unit
(** Return a block by offset, coalescing with free buddies as far as
    possible. Raises [Invalid_argument] for an address not currently
    allocated. *)

val block_size : t -> int -> int option
(** Size actually reserved for an allocated offset. *)

val free_bytes : t -> int
val used_bytes : t -> int

val largest_free_block : t -> int
(** 0 when full — the external-fragmentation metric. *)

val allocations : t -> int
(** Live allocation count. *)

val check : t -> (unit, string) result
(** Validate internal invariants: free lists hold disjoint, properly
    aligned blocks; free + used = total. For tests. *)
