open Hrt_engine

let pick_victim rng ~self ~n ~load =
  if n < 2 then None
  else begin
    let pick () =
      let rec go () =
        let c = Rng.int rng n in
        if c = self then go () else c
      in
      go ()
    in
    let a = pick () in
    let b = pick () in
    let la = load a and lb = load b in
    if la <= 0 && lb <= 0 then None
    else if la >= lb then Some a
    else Some b
  end
