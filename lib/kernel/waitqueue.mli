(** FIFO wait queues.

    The kernel parks blocked threads here; wake order is arrival order,
    which keeps the simulation deterministic. *)

type 'a t

val create : unit -> 'a t
val enqueue : 'a t -> 'a -> unit

val wake_one : 'a t -> 'a option
(** Remove and return the oldest waiter. *)

val wake_all : 'a t -> 'a list
(** Remove and return every waiter, oldest first. *)

val remove : 'a t -> ('a -> bool) -> 'a option
(** Remove the oldest waiter satisfying the predicate. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val iter : 'a t -> ('a -> unit) -> unit
