open Hrt_engine

type task = {
  declared : Time.ns option;
  duration : Time.ns;
  run : unit -> unit;
  submitted : Time.ns;
}

type t = {
  sized : task Queue.t;
  unsized : task Queue.t;
  mutable executed : int;
  mutable latency_total : float;
}

let create () =
  {
    sized = Queue.create ();
    unsized = Queue.create ();
    executed = 0;
    latency_total = 0.;
  }

let submit t ?declared ~duration ~now run =
  let task = { declared; duration; run; submitted = now } in
  match declared with
  | Some _ -> Queue.add task t.sized
  | None -> Queue.add task t.unsized

let take_sized t ~fits =
  (* Oldest-first scan; tasks too large to fit now stay queued in order. *)
  let keep = Queue.create () in
  let found = ref None in
  Queue.iter
    (fun task ->
      match (!found, task.declared) with
      | None, Some sz when Time.(sz <= fits) -> found := Some task
      | _ -> Queue.add task keep)
    t.sized;
  Queue.clear t.sized;
  Queue.transfer keep t.sized;
  !found

let take_unsized t = Queue.take_opt t.unsized

let sized_pending t = Queue.length t.sized
let unsized_pending t = Queue.length t.unsized
let executed t = t.executed

let complete t task ~now =
  t.executed <- t.executed + 1;
  t.latency_total <- t.latency_total +. Int64.to_float Time.(now - task.submitted)

let mean_latency t =
  if t.executed = 0 then 0. else t.latency_total /. float_of_int t.executed
