type t = {
  total : int;
  min_block : int;
  levels : int;  (* level 0 = min_block, level (levels-1) = total *)
  free_lists : (int, unit) Hashtbl.t array;  (* level -> set of offsets *)
  allocated : (int, int) Hashtbl.t;  (* offset -> level *)
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~total ~min_block =
  if not (is_pow2 total) then invalid_arg "Buddy.create: total not a power of two";
  if not (is_pow2 min_block) then
    invalid_arg "Buddy.create: min_block not a power of two";
  if min_block > total then invalid_arg "Buddy.create: min_block > total";
  let levels = log2 (total / min_block) + 1 in
  let free_lists = Array.init levels (fun _ -> Hashtbl.create 16) in
  Hashtbl.replace free_lists.(levels - 1) 0 ();
  { total; min_block; levels; free_lists; allocated = Hashtbl.create 64 }

let size_of_level t level = t.min_block lsl level

let level_for t size =
  let size = Stdlib.max size t.min_block in
  let rec go level = if size_of_level t level >= size then level else go (level + 1) in
  if size > t.total then None else Some (go 0)

let pop_free t level =
  (* Take the lowest-offset free block rather than whichever the hash
     table yields first: allocation placement is then a pure function of
     the alloc/free history, independent of hash order. *)
  let lowest =
    (Hashtbl.fold
       (fun off () best ->
         match best with
         | Some b when b <= off -> best
         | Some _ | None -> Some off)
       t.free_lists.(level) None
     [@hrt.nondet "min over all entries; result is iteration-order-independent"])
  in
  match lowest with
  | Some off ->
    Hashtbl.remove t.free_lists.(level) off;
    Some off
  | None -> None

let alloc t size =
  match level_for t size with
  | None -> None
  | Some want ->
    (* Find the smallest level >= want with a free block. *)
    let rec find level =
      if level >= t.levels then None
      else begin
        match pop_free t level with
        | Some off -> Some (off, level)
        | None -> find (level + 1)
      end
    in
    (match find want with
    | None -> None
    | Some (off, level) ->
      (* Split down to the wanted level, freeing the upper buddies. *)
      let rec split off level =
        if level = want then off
        else begin
          let child_level = level - 1 in
          let buddy = off + size_of_level t child_level in
          Hashtbl.replace t.free_lists.(child_level) buddy ();
          split off child_level
        end
      in
      let off = split off level in
      Hashtbl.replace t.allocated off want;
      Some off)

let buddy_of t off level =
  off lxor size_of_level t level

let free t off =
  match Hashtbl.find_opt t.allocated off with
  | None -> invalid_arg "Buddy.free: address not allocated"
  | Some level ->
    Hashtbl.remove t.allocated off;
    (* Coalesce upward while the buddy is free. *)
    let rec coalesce off level =
      if level >= t.levels - 1 then Hashtbl.replace t.free_lists.(level) off ()
      else begin
        let buddy = buddy_of t off level in
        if Hashtbl.mem t.free_lists.(level) buddy then begin
          Hashtbl.remove t.free_lists.(level) buddy;
          coalesce (Stdlib.min off buddy) (level + 1)
        end
        else Hashtbl.replace t.free_lists.(level) off ()
      end
    in
    coalesce off level

let block_size t off =
  Option.map (size_of_level t) (Hashtbl.find_opt t.allocated off)

let free_bytes t =
  let sum = ref 0 in
  Array.iteri
    (fun level lst -> sum := !sum + (Hashtbl.length lst * size_of_level t level))
    t.free_lists;
  !sum

let used_bytes t = t.total - free_bytes t

let largest_free_block t =
  let best = ref 0 in
  Array.iteri
    (fun level lst ->
      if Hashtbl.length lst > 0 then best := Stdlib.max !best (size_of_level t level))
    t.free_lists;
  !best

let allocations t = Hashtbl.length t.allocated

let check t =
  (* Collect every block (free and allocated) and verify alignment,
     disjointness, and full coverage. *)
  let blocks = ref [] in
  Array.iteri
    (fun level lst ->
      (Hashtbl.iter (fun off () -> blocks := (off, size_of_level t level) :: !blocks) lst
       [@hrt.nondet "collected blocks are sorted before verification"]))
    t.free_lists;
  (Hashtbl.iter
     (fun off level -> blocks := (off, size_of_level t level) :: !blocks)
     t.allocated
   [@hrt.nondet "collected blocks are sorted before verification"]);
  let blocks = List.sort compare !blocks in
  let rec verify expected = function
    | [] ->
      if expected = t.total then Ok ()
      else Error (Printf.sprintf "coverage gap: ends at %d of %d" expected t.total)
    | (off, size) :: rest ->
      if off <> expected then
        Error (Printf.sprintf "gap or overlap at %d (expected %d)" off expected)
      else if off mod size <> 0 then
        Error (Printf.sprintf "misaligned block at %d size %d" off size)
      else verify (off + size) rest
  in
  verify 0 blocks
