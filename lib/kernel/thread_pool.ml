type t = {
  capacity : int;
  mutable next_fresh : int;
  mutable free_list : int list;
  used : bool array;
  mutable in_use : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Thread_pool.create";
  {
    capacity;
    next_fresh = 0;
    free_list = [];
    used = Array.make capacity false;
    in_use = 0;
  }

let alloc t =
  match t.free_list with
  | id :: rest ->
    t.free_list <- rest;
    t.used.(id) <- true;
    t.in_use <- t.in_use + 1;
    Some id
  | [] ->
    if t.next_fresh >= t.capacity then None
    else begin
      let id = t.next_fresh in
      t.next_fresh <- t.next_fresh + 1;
      t.used.(id) <- true;
      t.in_use <- t.in_use + 1;
      Some id
    end

let free t id =
  if id < 0 || id >= t.capacity || not t.used.(id) then
    invalid_arg "Thread_pool.free: slot not in use";
  t.used.(id) <- false;
  t.free_list <- id :: t.free_list;
  t.in_use <- t.in_use - 1

let in_use t = t.in_use
let capacity t = t.capacity
