(** Work-stealing victim selection.

    The idle thread's work stealer uses power-of-two-random-choices victim
    selection (paper Section 3.4, citing Mitzenmacher) to avoid global
    coordination: probe two random other CPUs and steal from the more
    loaded one, only if it actually has stealable work. *)

open Hrt_engine

val pick_victim : Rng.t -> self:int -> n:int -> load:(int -> int) -> int option
(** [pick_victim rng ~self ~n ~load] probes two distinct CPUs other than
    [self] among [0..n-1] and returns the one with the larger positive
    [load], or [None] when both are empty (or [n < 2]). *)
