(** Double-ended queue (for round-robin run queues).

    A preempted-but-unexpired thread goes back to the front; a thread whose
    quantum expired rotates to the back. *)

type 'a t

val create : unit -> 'a t
val push_front : 'a t -> 'a -> unit
val push_back : 'a t -> 'a -> unit
val pop_front : 'a t -> 'a option
val peek_front : 'a t -> 'a option
val remove : 'a t -> ('a -> bool) -> 'a option
(** Remove the frontmost element satisfying the predicate. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val iter : 'a t -> ('a -> unit) -> unit
(** Front to back. *)

val to_list : 'a t -> 'a list
