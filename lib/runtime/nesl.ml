open Hrt_hw

type 'a seg_vec = {
  data : 'a array;
  offsets : int array; (* segments+1 entries; segment s = [offsets.(s), offsets.(s+1)) *)
}

let of_arrays arrays =
  let n = Array.fold_left (fun acc a -> acc + Array.length a) 0 arrays in
  let offsets = Array.make (Array.length arrays + 1) 0 in
  Array.iteri
    (fun i a -> offsets.(i + 1) <- offsets.(i) + Array.length a)
    arrays;
  if n = 0 then { data = [||]; offsets }
  else begin
    let first =
      let rec find i =
        if Array.length arrays.(i) > 0 then arrays.(i).(0) else find (i + 1)
      in
      find 0
    in
    let data = Array.make n first in
    Array.iteri
      (fun i a -> Array.blit a 0 data offsets.(i) (Array.length a))
      arrays;
    { data; offsets }
  end

let segments t = Array.length t.offsets - 1
let total_length t = Array.length t.data

let segment_lengths t =
  Array.init (segments t) (fun s -> t.offsets.(s + 1) - t.offsets.(s))

let to_arrays t =
  Array.init (segments t) (fun s ->
      Array.sub t.data t.offsets.(s) (t.offsets.(s + 1) - t.offsets.(s)))

let flat t = Array.copy t.data

type ctx = { team : Omp.team; sync : [ `Barrier | `Timed ] }

let ctx team ~sync = { team; sync }

(* The functional result is computed exactly; the simulated execution time
   is charged by flat loops over the same index space (the flattening
   transform's cost), with the loop bodies intentionally pure no-ops. *)
let charge ctx ~iterations ~cost =
  if iterations > 0 then
    Omp.parallel_for ctx.team ~sync:ctx.sync ~iterations
      ~cost_per_iteration:cost ignore

let mean_segment_cost t (c : Platform.cost) =
  let segs = Stdlib.max 1 (segments t) in
  let mean_len = float_of_int (total_length t) /. float_of_int segs in
  Platform.cost
    (c.Platform.mean_cycles *. mean_len)
    (c.Platform.sigma_cycles *. sqrt (Float.max 1. mean_len))

let map ctx ~cost_per_element f t =
  charge ctx ~iterations:(total_length t) ~cost:cost_per_element;
  { data = Array.map f t.data; offsets = Array.copy t.offsets }

let reduce ctx ~cost_per_element ~zero ~combine ~of_elt t =
  (* One flattened loop per segment; per-iteration cost approximates the
     segment's length by the mean (ragged exactness is not needed for the
     timing model). *)
  charge ctx ~iterations:(segments t) ~cost:(mean_segment_cost t cost_per_element);
  Array.init (segments t) (fun s ->
      let acc = ref zero in
      for i = t.offsets.(s) to t.offsets.(s + 1) - 1 do
        acc := combine !acc (of_elt t.data.(i))
      done;
      !acc)

let scan ctx ~cost_per_element ~zero ~combine ~of_elt t =
  charge ctx ~iterations:(segments t) ~cost:(mean_segment_cost t cost_per_element);
  let out = Array.make (total_length t) zero in
  for s = 0 to segments t - 1 do
    let acc = ref zero in
    for i = t.offsets.(s) to t.offsets.(s + 1) - 1 do
      out.(i) <- !acc;
      acc := combine !acc (of_elt t.data.(i))
    done
  done;
  { data = out; offsets = Array.copy t.offsets }

let pack ctx ~cost_per_element pred t =
  charge ctx ~iterations:(total_length t) ~cost:cost_per_element;
  let kept = Array.map (fun a -> Array.of_list (List.filter pred (Array.to_list a))) (to_arrays t) in
  of_arrays kept

let run ctx = Omp.run_to_completion ctx.team
