(** A miniature fork-join parallel run-time ("OpenMP-like") fused with the
    kernel.

    The paper's closing direction (Section 8) is "adding real-time and
    barrier removal support to Nautilus-internal implementations of OpenMP
    and NESL run-times". This module is that idea in miniature: a team of
    worker threads executes a sequence of [parallel_for] loops with static
    block scheduling, and loop-end synchronization is either

    - [`Barrier]: the conventional join — every loop ends in a group
      barrier; works under any scheduling; or
    - [`Timed]: no synchronization at all — valid only for a team admitted
      as a hard real-time group, whose members stay in lock-step purely by
      time (Section 6.4).

    Loop bodies are split into per-worker chunks; the chunk's simulated
    compute time comes from a per-iteration cost model, while the visible
    side effects (the [body] function applied to each index) execute at
    chunk boundaries. *)

open Hrt_engine
open Hrt_hw
open Hrt_core

type team

type mode =
  | Aperiodic  (** conventional non-real-time workers *)
  | Realtime of { period : Time.ns; slice : Time.ns }
      (** workers collectively admitted as a hard real-time group (with
          phase correction) before the first loop runs *)

val create_team : Scheduler.t -> cpus:int list -> mode:mode -> team
(** Spawn one worker per CPU. Raises [Invalid_argument] on an empty CPU
    list. Workers idle until loops are submitted. *)

val parallel_for :
  team ->
  ?sync:[ `Barrier | `Timed ] ->
  iterations:int ->
  cost_per_iteration:Platform.cost ->
  (int -> unit) ->
  unit
(** Enqueue a loop: [body i] runs exactly once for every
    [i in 0..iterations-1]. [sync] defaults to [`Barrier]. Raises
    [Invalid_argument] for [`Timed] on an aperiodic team (without the
    time-synchronized schedules, dropping the barrier is unsound). *)

val loops_submitted : team -> int
val loops_completed : team -> int

val run_to_completion : ?until:Time.ns -> team -> unit
(** Drive the simulation until every submitted loop has completed (or the
    [until] safety horizon, default 100 simulated seconds). *)

val last_completion : team -> Time.ns
(** Instant the most recently completed loop finished its last chunk. *)

val admitted : team -> bool
(** Whether real-time group admission succeeded (always true for
    aperiodic teams; meaningful after the first run). *)

val total_misses : team -> int

val shutdown : team -> unit
(** Ask the workers to exit after the current loop sequence and release
    the team's group registration. *)
