(** Nested data parallelism on a team — a NESL-style core.

    Nautilus's flagship ported run-times include NESL and NDPC (paper
    Section 2), and the future work adds barrier removal to them
    (Section 8). This module gives the essential NESL surface: {e segmented
    vectors} (a ragged nested vector represented flat, plus a segment
    descriptor) and the data-parallel operations over them, compiled to
    flat [parallel_for] loops over the underlying team — the classic
    flattening transform. Under a hard real-time team the loops can run
    with [`Timed] synchronization, i.e. barrier-free.

    Costs: each operation takes a per-element cost model, so the simulated
    time of a NESL program reflects its work; the visible effects are
    computed exactly. *)

open Hrt_hw

type 'a seg_vec
(** A nested vector [[v_0; v_1; ...]] stored flat. *)

val of_arrays : 'a array array -> 'a seg_vec
(** Build from a ragged array-of-arrays. *)

val to_arrays : 'a seg_vec -> 'a array array
val flat : 'a seg_vec -> 'a array
(** The underlying flat data, segment by segment. *)

val segments : 'a seg_vec -> int
val total_length : 'a seg_vec -> int
val segment_lengths : 'a seg_vec -> int array

type ctx
(** Execution context: a team plus the loop-synchronization policy. *)

val ctx : Omp.team -> sync:[ `Barrier | `Timed ] -> ctx

val map :
  ctx -> cost_per_element:Platform.cost -> ('a -> 'b) -> 'a seg_vec -> 'b seg_vec
(** Elementwise apply, preserving segmentation: one flat parallel loop. *)

val reduce :
  ctx ->
  cost_per_element:Platform.cost ->
  zero:'b ->
  combine:('b -> 'b -> 'b) ->
  of_elt:('a -> 'b) ->
  'a seg_vec ->
  'b array
(** Per-segment reduction ("apply-to-each of sum"): a parallel loop over
    segments, each iteration's cost proportional to its segment length
    (the flattened nested loop). *)

val scan :
  ctx ->
  cost_per_element:Platform.cost ->
  zero:'b ->
  combine:('b -> 'b -> 'b) ->
  of_elt:('a -> 'b) ->
  'a seg_vec ->
  'b seg_vec
(** Per-segment exclusive prefix scan. *)

val pack :
  ctx -> cost_per_element:Platform.cost -> ('a -> bool) -> 'a seg_vec -> 'a seg_vec
(** Per-segment filter, preserving segment structure (segments shrink). *)

val run : ctx -> unit
(** Drive the simulation until every operation issued on this context has
    completed (operations are lazy until run). *)
