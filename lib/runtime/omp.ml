open Hrt_engine
open Hrt_hw
open Hrt_core
open Hrt_group

type mode = Aperiodic | Realtime of { period : Time.ns; slice : Time.ns }

type loop = {
  iterations : int;
  cost : Platform.cost;
  body : int -> unit;
  sync : [ `Barrier | `Timed ];
  mutable finished_chunks : int;
}

type team = {
  sys : Scheduler.t;
  mode : mode;
  nworkers : int;
  mutable workers : Thread.t list;
  group : Group.t;
  barrier : Gbarrier.t;
  mutable loops : loop list;  (* reverse submission order *)
  mutable submitted : int;
  mutable completed : int;
  mutable admitted_all : bool;
  mutable shutting_down : bool;
  mutable last_completion : Time.ns;
}

let nth_loop t i = List.nth (List.rev t.loops) i

let chunk t ~iterations w =
  let lo = iterations * w / t.nworkers in
  let hi = iterations * (w + 1) / t.nworkers in
  (lo, hi)

(* The worker's main loop: fetch the next submitted loop, compute the
   chunk, apply its visible effects, synchronize per the loop's policy. *)
let worker_body t ~index =
  let my_loop = ref 0 in
  let stage = ref `Fetch in
  let crossing = ref None in
  fun ({ Thread.svc; self } as ctx : Thread.ctx) ->
    let rec step () =
      match !stage with
      | `Fetch ->
        if !my_loop < t.submitted then begin
          let l = nth_loop t !my_loop in
          let lo, hi = chunk t ~iterations:l.iterations index in
          let n = hi - lo in
          if n = 0 then begin
            stage := `Finish;
            step ()
          end
          else begin
            stage := `Apply;
            let c =
              Platform.cost
                (l.cost.Platform.mean_cycles *. float_of_int n)
                (l.cost.Platform.sigma_cycles *. sqrt (float_of_int n))
            in
            Thread.Compute (svc.Thread.sample self c)
          end
        end
        else if t.shutting_down then Thread.Exit
        else Thread.Block
      | `Apply ->
        let l = nth_loop t !my_loop in
        let lo, hi = chunk t ~iterations:l.iterations index in
        for i = lo to hi - 1 do
          l.body i
        done;
        stage := `Finish;
        step ()
      | `Finish ->
        let l = nth_loop t !my_loop in
        l.finished_chunks <- l.finished_chunks + 1;
        if l.finished_chunks = t.nworkers then begin
          t.completed <- t.completed + 1;
          t.last_completion <- svc.Thread.now ()
        end;
        (match l.sync with
        | `Timed ->
          incr my_loop;
          stage := `Fetch;
          step ()
        | `Barrier ->
          crossing := Some (Gbarrier.cross t.barrier);
          stage := `Join;
          step ())
      | `Join -> (
        match !crossing with
        | None -> assert false
        | Some body -> (
          match body ctx with
          | Thread.Exit ->
            crossing := None;
            incr my_loop;
            stage := `Fetch;
            step ()
          | op -> op))
    in
    step ()

let create_team sys ~cpus ~mode =
  if cpus = [] then invalid_arg "Omp.create_team: no CPUs";
  let nworkers = List.length cpus in
  let group = Group.create sys ~name:"omp-team" in
  let barrier = Gbarrier.create sys ~parties:nworkers in
  let t =
    {
      sys;
      mode;
      nworkers;
      workers = [];
      group;
      barrier;
      loops = [];
      submitted = 0;
      completed = 0;
      admitted_all = true;
      shutting_down = false;
      last_completion = 0L;
    }
  in
  let start_barrier = Gbarrier.create sys ~parties:nworkers in
  let session = ref None in
  let prelude =
    match mode with
    | Aperiodic -> fun _index -> []
    | Realtime { period; slice } ->
      fun _index ->
        [
          Group.join group;
          Gbarrier.cross start_barrier;
          (fun _ctx ->
            (if !session = None then
               session :=
                 Some
                   (Group_sched.prepare group
                      (Constraints.periodic ~period ~slice ())));
            Thread.Exit);
          (let b = ref None in
           fun ctx ->
             let body =
               match !b with
               | Some body -> body
               | None ->
                 let body =
                   Group_sched.change_constraints (Option.get !session)
                     ~on_result:(fun v ->
                       if not (Admission.admitted v) then
                         t.admitted_all <- false)
                 in
                 b := Some body;
                 body
             in
             body ctx);
        ]
  in
  List.iteri
    (fun index cpu ->
      let th =
        Scheduler.spawn sys ~name:(Printf.sprintf "omp-%d" index) ~cpu
          ~bound:true
          (Program.seq (prelude index @ [ worker_body t ~index ]))
      in
      t.workers <- th :: t.workers)
    cpus;
  t

let parallel_for t ?(sync = `Barrier) ~iterations ~cost_per_iteration body =
  (match (sync, t.mode) with
  | `Timed, Aperiodic ->
    invalid_arg
      "Omp.parallel_for: `Timed synchronization requires a real-time team"
  | (`Timed | `Barrier), _ -> ());
  if iterations < 0 then invalid_arg "Omp.parallel_for: negative iterations";
  t.loops <-
    { iterations; cost = cost_per_iteration; body; sync; finished_chunks = 0 }
    :: t.loops;
  t.submitted <- t.submitted + 1;
  List.iter (fun th -> Scheduler.wake t.sys th) t.workers

let loops_submitted t = t.submitted
let loops_completed t = t.completed

let run_to_completion ?(until = Time.sec 100) t =
  let eng = Scheduler.engine t.sys in
  let step = Time.ms 1 in
  let rec drive () =
    if t.completed < t.submitted && Time.(Engine.now eng < until) then begin
      Scheduler.run ~until:(Time.min until Time.(Engine.now eng + step)) t.sys;
      drive ()
    end
  in
  drive ()

let admitted t = t.admitted_all
let last_completion t = t.last_completion
let total_misses t =
  List.fold_left (fun acc (th : Thread.t) -> acc + th.Thread.misses) 0 t.workers

let shutdown t =
  t.shutting_down <- true;
  List.iter (fun th -> Scheduler.wake t.sys th) t.workers;
  Group.dispose t.group
