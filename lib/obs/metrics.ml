open Hrt_stats

type counter = { mutable n : int }
type gauge = { mutable g : float; mutable touched : bool }
type histo = { samples : Percentile.t; summary : Summary.t }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histo of histo

type key = { name : string; cpu : int option }

type t = {
  tbl : (key, instrument) Hashtbl.t;
  mutable order : key list; (* reverse creation order *)
}

let create () = { tbl = Hashtbl.create 64; order = [] }

let find_or_add t ~name ~cpu make =
  let key = { name; cpu } in
  match Hashtbl.find_opt t.tbl key with
  | Some i -> i
  | None ->
    let i = make () in
    Hashtbl.add t.tbl key i;
    t.order <- key :: t.order;
    i

let counter t ?cpu name =
  match find_or_add t ~name ~cpu (fun () -> Counter { n = 0 }) with
  | Counter c -> c
  | Gauge _ | Histo _ ->
    invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)

let gauge t ?cpu name =
  match
    find_or_add t ~name ~cpu (fun () -> Gauge { g = 0.; touched = false })
  with
  | Gauge g -> g
  | Counter _ | Histo _ ->
    invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name)

let histo t ?cpu name =
  match
    find_or_add t ~name ~cpu (fun () ->
        Histo { samples = Percentile.create (); summary = Summary.create () })
  with
  | Histo h -> h
  | Counter _ | Gauge _ ->
    invalid_arg (Printf.sprintf "Metrics.histo: %S is not a histogram" name)

let incr c = c.n <- c.n + 1
let add c k = c.n <- c.n + k
let counter_value c = c.n

let set g v =
  g.g <- v;
  g.touched <- true

let watermark g v = if (not g.touched) || v > g.g then set g v
let gauge_value g = g.g

let observe h v =
  Percentile.add h.samples v;
  Summary.add h.summary v

let histo_count h = Percentile.count h.samples
let histo_mean h = Summary.mean h.summary
let histo_max h = Summary.max h.summary

let histo_percentile h p =
  if Percentile.count h.samples = 0 then 0. else Percentile.value h.samples p

let size t = Hashtbl.length t.tbl

(* Fold [src] into [dst], instrument by instrument, in [src]'s creation
   order. A key already present in [dst] is updated through the existing
   handle — it is NOT appended to [dst.order] again (find_or_add only
   records first creation), so repeated merges cannot duplicate rows.
   Counters add, gauges take the source value (the source is the later
   stream), histograms replay every sample so percentiles stay exact. *)
let merge dst src =
  if not (dst == src) then
    List.iter
      (fun key ->
        let mismatch what =
          invalid_arg
            (Printf.sprintf "Metrics.merge: %S is not a %s in both registries"
               key.name what)
        in
        match Hashtbl.find src.tbl key with
        | Counter c -> (
          match
            find_or_add dst ~name:key.name ~cpu:key.cpu (fun () ->
                Counter { n = 0 })
          with
          | Counter d -> d.n <- d.n + c.n
          | Gauge _ | Histo _ -> mismatch "counter")
        | Gauge g -> (
          match
            find_or_add dst ~name:key.name ~cpu:key.cpu (fun () ->
                Gauge { g = 0.; touched = false })
          with
          | Gauge d -> if g.touched then set d g.g
          | Counter _ | Histo _ -> mismatch "gauge")
        | Histo h -> (
          match
            find_or_add dst ~name:key.name ~cpu:key.cpu (fun () ->
                Histo
                  { samples = Percentile.create (); summary = Summary.create () })
          with
          | Histo d -> Percentile.iter h.samples (fun v -> observe d v)
          | Counter _ | Gauge _ -> mismatch "histogram"))
      (List.rev src.order)

let header =
  [ "metric"; "cpu"; "kind"; "count"; "value"; "mean"; "p50"; "p90"; "p99"; "max" ]

let f v = Printf.sprintf "%.6g" v

let rows t =
  let keys =
    List.sort
      (fun a b ->
        match String.compare a.name b.name with
        | 0 -> Stdlib.compare a.cpu b.cpu
        | c -> c)
      (List.rev t.order)
  in
  List.map
    (fun key ->
      let cpu = match key.cpu with None -> "" | Some c -> string_of_int c in
      match Hashtbl.find t.tbl key with
      | Counter c ->
        [ key.name; cpu; "counter"; string_of_int c.n; ""; ""; ""; ""; ""; "" ]
      | Gauge g ->
        [ key.name; cpu; "gauge"; ""; f g.g; ""; ""; ""; ""; "" ]
      | Histo h ->
        let n = histo_count h in
        [
          key.name;
          cpu;
          "histogram";
          string_of_int n;
          "";
          f (histo_mean h);
          f (histo_percentile h 50.);
          f (histo_percentile h 90.);
          f (histo_percentile h 99.);
          f (if n = 0 then 0. else histo_max h);
        ])
    keys
