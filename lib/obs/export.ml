open Hrt_stats

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_tid ev =
  match ev with
  | Event.Dispatch { tid; _ }
  | Event.Preempt { tid; _ }
  | Event.Deadline_miss { tid; _ }
  | Event.Admission_accept { tid; _ }
  | Event.Admission_reject { tid; _ }
  | Event.Arrival { tid; _ }
  | Event.Complete { tid; _ }
  | Event.Block { tid; _ }
  | Event.Wake { tid; _ }
  | Event.Barrier_arrive { tid; _ }
  | Event.Group_phase { tid; _ }
  | Event.Elected { tid; _ }
  | Event.Shed { tid; _ }
  | Event.Demote { tid; _ }
  | Event.Recover { tid; _ } ->
    tid
  | Event.Irq _ | Event.Sched_pass _ | Event.Steal_attempt _
  | Event.Barrier_release _ | Event.Policy _ | Event.Fault_plan _
  | Event.Overload _ | Event.Idle ->
    0

(* Chrome-trace timestamps are microseconds; keep nanosecond precision with
   three decimals. *)
let ts_us ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1_000.)

let args_json ev =
  match Event.args ev with
  | [] -> "{}"
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
           kvs)
    ^ "}"

let chrome_json { Tracer.time; cpu; event } =
  let name = json_escape (Event.kind event) in
  match Event.dur_ns event with
  | Some dur ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":%d,\"tid\":%d,\"args\":%s}"
      name (ts_us time) (ts_us dur) cpu (event_tid event) (args_json event)
  | None ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":%s}"
      name (ts_us time) cpu (event_tid event) (args_json event)

let metadata_lines tr =
  let cpus = Hashtbl.create 16 in
  Tracer.iter tr (fun r ->
      if not (Hashtbl.mem cpus r.Tracer.cpu) then
        Hashtbl.replace cpus r.Tracer.cpu ());
  (Hashtbl.fold
     (fun cpu () acc ->
       Printf.sprintf
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"CPU %d\"}}"
         cpu cpu
       :: acc)
     cpus []
   [@hrt.nondet "lines are sorted immediately after the fold"])
  |> List.sort compare

(* One JSON value per line inside a valid JSON array: both line-oriented
   (greppable, appendable) and loadable by chrome://tracing and Perfetto. *)
let chrome_lines tr =
  let records = List.map chrome_json (Array.to_list (Tracer.to_array tr)) in
  let body = metadata_lines tr @ records in
  let rec commas = function
    | [] -> []
    | [ last ] -> [ last ]
    | x :: rest -> (x ^ ",") :: commas rest
  in
  ("[" :: commas body) @ [ "]" ]

let write_lines ~path lines =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines)

let write_chrome_trace tr ~path = write_lines ~path (chrome_lines tr)

let write_metrics_csv m ~path =
  Csv.write ~path ~header:Metrics.header (Metrics.rows m)

let metrics_table ?(title = "observability metrics") m =
  let table =
    Table.create ~title
      ~columns:(List.map (fun h -> (h, Table.Left)) Metrics.header)
  in
  List.iter (Table.row table) (Metrics.rows m);
  table
