(** The observability sink: where instrumented code sends events.

    A sink bundles a {!Metrics} registry, an optional {!Tracer}, and a list
    of subscribers. The {!null} sink is disabled: {!emit} on it is a no-op,
    and instrumentation sites are expected to guard event construction with
    {!enabled} so that a run without observability costs nothing beyond a
    predictable branch. *)

open Hrt_engine

type t

type subscriber = time:Time.ns -> cpu:int -> Event.t -> unit

val null : t
(** The disabled sink (the default everywhere). *)

val create : ?trace:bool -> unit -> t
(** An enabled sink. [trace] (default true) also buffers every event in a
    {!Tracer} for later export; metrics are always derived. *)

val enabled : t -> bool

val metrics : t -> Metrics.t
val tracer : t -> Tracer.t option

val emit : t -> time:Time.ns -> cpu:int -> Event.t -> unit
(** Record an event: updates the derived metrics, appends to the trace
    buffer (if any), and notifies subscribers. No-op on a disabled sink. *)

val subscribe : t -> subscriber -> unit
(** Add a callback invoked synchronously on every event (enabled sinks
    only). Used for legacy probe shims and custom harness instruments. *)

val add_probe : t -> name:string -> (unit -> float) -> unit
(** Register a pull gauge: [sample_probes] reads the callback and stores
    the value in the metrics registry under [name]. Used for state that is
    cheap to read but wasteful to push on every change — e.g. the engine's
    pending-event count. No-op on a disabled sink. *)

val sample_probes : t -> unit
(** Read every registered probe into its gauge, in registration order.
    Called by the scheduler at snapshot points (end of run, trace flush). *)

val child : t -> t
(** A fresh sink for one parallel job. Disabled parents yield {!null};
    enabled parents yield an enabled sink with its own metrics registry
    and — whenever the parent traces or has subscribers — its own tracer,
    so everything the job records can later be folded back with
    {!absorb}. Child sinks have no subscribers of their own: a sink is
    used by exactly one domain, and subscriber callbacks (e.g. the live
    verifier) are replayed on the parent's domain at absorb time. *)

val absorb : t -> t -> unit
(** [absorb parent ch] folds a child sink back into its parent, on the
    parent's domain: merges the metrics ({!Metrics.merge}), appends the
    child's trace to the parent's tracer, and replays every recorded
    event to the parent's subscribers, in the order the child recorded
    them. Absorbing children in submission order therefore yields the
    same metric, trace, and subscriber streams as running the jobs
    sequentially on the parent — the parallel-sweep determinism
    guarantee. No-op when either sink is disabled. *)
