(** The observability sink: where instrumented code sends events.

    A sink bundles a {!Metrics} registry, an optional {!Tracer}, and a list
    of subscribers. The {!null} sink is disabled: {!emit} on it is a no-op,
    and instrumentation sites are expected to guard event construction with
    {!enabled} so that a run without observability costs nothing beyond a
    predictable branch. *)

open Hrt_engine

type t

type subscriber = time:Time.ns -> cpu:int -> Event.t -> unit

val null : t
(** The disabled sink (the default everywhere). *)

val create : ?trace:bool -> unit -> t
(** An enabled sink. [trace] (default true) also buffers every event in a
    {!Tracer} for later export; metrics are always derived. *)

val enabled : t -> bool

val metrics : t -> Metrics.t
val tracer : t -> Tracer.t option

val emit : t -> time:Time.ns -> cpu:int -> Event.t -> unit
(** Record an event: updates the derived metrics, appends to the trace
    buffer (if any), and notifies subscribers. No-op on a disabled sink. *)

val subscribe : t -> subscriber -> unit
(** Add a callback invoked synchronously on every event (enabled sinks
    only). Used for legacy probe shims and custom harness instruments. *)

val set_default : t -> unit
(** Install the process-wide default sink picked up by
    [Scheduler.create] when no explicit sink is passed. *)

val get_default : unit -> t
