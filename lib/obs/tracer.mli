(** Structured event trace: an append-only buffer of typed scheduler events
    with simulated-time timestamps. *)

open Hrt_engine

type record = { time : Time.ns; cpu : int; event : Event.t }

type t

val create : unit -> t
val record : t -> time:Time.ns -> cpu:int -> Event.t -> unit
val length : t -> int
val iter : t -> (record -> unit) -> unit
val to_array : t -> record array

val count : t -> kind:string -> int
(** Number of recorded events whose {!Event.kind} equals [kind]. *)
