open Hrt_engine

type subscriber = time:Time.ns -> cpu:int -> Event.t -> unit
type probe = { p_name : string; read : unit -> float }

type t = {
  enabled : bool;
  metrics : Metrics.t;
  trace : Tracer.t option;
  mutable subscribers : subscriber list;
  mutable probes : probe list; (* registration order, oldest first *)
}

let null =
  {
    enabled = false;
    metrics = Metrics.create ();
    trace = None;
    subscribers = [];
    probes = [];
  }

let create ?(trace = true) () =
  {
    enabled = true;
    metrics = Metrics.create ();
    trace = (if trace then Some (Tracer.create ()) else None);
    subscribers = [];
    probes = [];
  }

let enabled t = t.enabled
let metrics t = t.metrics
let tracer t = t.trace
let subscribe t f = t.subscribers <- f :: t.subscribers

let add_probe t ~name read =
  if t.enabled then t.probes <- t.probes @ [ { p_name = name; read } ]

let sample_probes t =
  if t.enabled then
    List.iter
      (fun p -> Metrics.set (Metrics.gauge t.metrics p.p_name) (p.read ()))
      t.probes

let us ns = Int64.to_float ns /. 1_000.

(* Derive the standard per-CPU metrics from an event. Handle lookup is a
   hashtable hit; emit only runs on enabled sinks, so the disabled hot path
   never gets here. *)
let update_metrics t ~cpu ev =
  let m = t.metrics in
  let c name = Metrics.incr (Metrics.counter m ~cpu name) in
  let h name v = Metrics.observe (Metrics.histo m ~cpu name) v in
  match ev with
  | Event.Dispatch _ -> c "sched.dispatch"
  | Event.Preempt _ -> c "sched.preempt"
  | Event.Deadline_miss { lateness_ns; _ } ->
    c "sched.deadline_miss";
    h "sched.miss_lateness_us" (us lateness_ns)
  | Event.Admission_accept _ -> c "admission.accept"
  | Event.Admission_reject _ -> c "admission.reject"
  | Event.Arrival _ -> c "sched.arrival"
  | Event.Complete _ -> c "sched.complete"
  | Event.Block _ -> c "sched.block"
  | Event.Wake _ -> c "sched.wake"
  | Event.Irq { dur_ns } ->
    c "irq.count";
    h "irq.dur_us" (us dur_ns)
  | Event.Sched_pass { dur_ns } ->
    c "sched.pass";
    h "sched.pass_us" (us dur_ns)
  | Event.Steal_attempt { success; _ } ->
    c "steal.attempt";
    if success then c "steal.success"
  | Event.Barrier_arrive _ -> c "barrier.arrive"
  | Event.Barrier_release { wait_ns; _ } ->
    c "barrier.release";
    h "barrier.wait_us" (us wait_ns)
  | Event.Group_phase { phase; _ } -> c ("group.phase." ^ phase)
  | Event.Elected { leader; _ } ->
    c "group.election.decided";
    if leader then c "group.election.leader"
  | Event.Policy { policy } ->
    Metrics.set (Metrics.gauge m ~cpu ("sched.policy." ^ policy)) 1.
  | Event.Fault_plan _ -> c "fault.plan_armed"
  | Event.Overload { boundary } ->
    c "sched.overload_transition";
    Metrics.set
      (Metrics.gauge m ~cpu "sched.overload")
      (if String.equal boundary "none" then 0. else 1.)
  | Event.Shed _ -> c "sched.shed"
  | Event.Demote _ -> c "sched.demote"
  | Event.Recover _ -> c "sched.recover"
  | Event.Idle -> c "sched.idle_transition"

let emit t ~time ~cpu ev =
  if t.enabled then begin
    update_metrics t ~cpu ev;
    (match t.trace with
    | Some tr -> Tracer.record tr ~time ~cpu ev
    | None -> ());
    match t.subscribers with
    | [] -> ()
    | subs -> List.iter (fun f -> f ~time ~cpu ev) subs
  end

(* ---- per-job fan-out ---- *)

let child t =
  if not t.enabled then null
  else
    {
      enabled = true;
      metrics = Metrics.create ();
      (* Keep a tracer whenever the parent could want the events back:
         either it traces itself, or it has subscribers that [absorb] must
         replay to. *)
      trace =
        (if Option.is_some t.trace || t.subscribers <> [] then
           Some (Tracer.create ())
         else None);
      subscribers = [];
      (* Probes read live state owned by the parent's domain (e.g. an
         engine queue); a job's child sink never samples them. *)
      probes = [];
    }

let absorb t ch =
  if t.enabled && ch.enabled && not (ch == t) then begin
    Metrics.merge t.metrics ch.metrics;
    match ch.trace with
    | None -> ()
    | Some ctr ->
      Tracer.iter ctr (fun { Tracer.time; cpu; event } ->
          (match t.trace with
          | Some ptr -> Tracer.record ptr ~time ~cpu event
          | None -> ());
          match t.subscribers with
          | [] -> ()
          | subs -> List.iter (fun f -> f ~time ~cpu event) subs)
  end
