(** Exporters: Chrome-trace JSON for {!Tracer} buffers, CSV and tables for
    {!Metrics} registries.

    The trace output is a valid JSON array with one event object per line —
    the Chrome trace-event format — and loads directly in chrome://tracing
    and Perfetto (one process per simulated CPU, one track per thread). *)

val chrome_json : Tracer.record -> string
(** A single trace-event object (no trailing newline or comma). *)

val chrome_lines : Tracer.t -> string list
(** The full file as lines: "[", per-CPU process-name metadata, one event
    per line, "]". *)

val write_chrome_trace : Tracer.t -> path:string -> unit

val write_metrics_csv : Metrics.t -> path:string -> unit
(** CSV with {!Metrics.header} as the header row. *)

val metrics_table : ?title:string -> Metrics.t -> Hrt_stats.Table.t

val json_escape : string -> string
