(** Metrics registry: counters, gauges and histograms keyed by name plus an
    optional per-CPU label.

    Handles are created on first use and cached by the caller; updating a
    handle is a field write (counter/gauge) or a sample append (histogram),
    so instrumented hot paths stay cheap. Registering the same name with a
    different instrument kind raises [Invalid_argument]. *)

type t

type counter
type gauge
type histo

val create : unit -> t

val counter : t -> ?cpu:int -> string -> counter
val gauge : t -> ?cpu:int -> string -> gauge
val histo : t -> ?cpu:int -> string -> histo

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val set : gauge -> float -> unit

val watermark : gauge -> float -> unit
(** [watermark g v] sets [g] to [max g v] (first call always sets). *)

val gauge_value : gauge -> float

val observe : histo -> float -> unit
(** Raises [Invalid_argument] on NaN (see {!Hrt_stats.Percentile.add}). *)

val histo_count : histo -> int
val histo_mean : histo -> float
val histo_max : histo -> float

val histo_percentile : histo -> float -> float
(** Exact percentile over the recorded samples; 0.0 when empty. *)

val size : t -> int
(** Number of registered instruments. *)

val merge : t -> t -> unit
(** [merge dst src] folds every instrument of [src] into [dst]: counters
    add, gauges take the source value when it was ever set, histograms
    replay every source sample (exact percentiles, Welford summaries in
    source order). Instruments missing from [dst] are created in [src]'s
    creation order; instruments already present keep their single
    creation-order entry, so merging per-job registries after a parallel
    sweep never double-counts a {!rows} line. Raises [Invalid_argument]
    when the same key names different instrument kinds. [src] is not
    modified; merging a registry into itself is a no-op. *)

val header : string list
(** Column names matching {!rows}. *)

val rows : t -> string list list
(** One row per instrument, sorted by (name, cpu), ready for CSV or table
    rendering. *)
