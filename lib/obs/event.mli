(** Typed scheduler events.

    Every observable transition of the simulated node is one of these
    constructors; the tracer records them with a simulated-time timestamp
    and the CPU they happened on. Spans ({!Irq}, {!Sched_pass}) carry their
    duration and export as Chrome-trace complete events; everything else is
    an instant.

    The event set is deliberately complete enough for the offline verifier
    ([Hrt_verify]) to reconstruct the scheduler's ground truth: the RT
    runnable set (arrival/complete/block/wake), per-CPU occupancy
    (dispatch/preempt/idle), admission decisions with their constraint
    class, and group-protocol progress (barrier rounds, election rounds).
    Adding a constructor without exporter and verifier support is a compile
    error — matches over [t] must stay exhaustive. *)

open Hrt_engine

type cls = Cls_aperiodic | Cls_periodic | Cls_sporadic
(** The constraint class an admission decision was about. *)

type t =
  | Dispatch of { tid : int; thread : string }
      (** a thread was context-switched in *)
  | Preempt of { tid : int; thread : string }
      (** a still-runnable thread was switched out *)
  | Deadline_miss of {
      tid : int;
      thread : string;
      lateness_ns : Time.ns;
      crit : string;
    }
      (** detected at the instant the deadline passed with slice still
          owed; [crit] is the thread's criticality name ({!Constraints}
          [crit_name]) so the degradation rule can judge the miss offline *)
  | Admission_accept of { tid : int; cls : cls }
  | Admission_reject of { tid : int; cls : cls; reason : string }
      (** [reason] is the stable rejection tag
          ([Hrt_core.Admission.Rejection.name]) naming the failed test *)
  | Arrival of {
      tid : int;
      thread : string;
      arrival : Time.ns;
      deadline : Time.ns;
      period : Time.ns;
    }
      (** a real-time arrival joined the run queue. [arrival]/[deadline] are
          the absolute logical arrival instant and deadline; [period] is the
          fixed-priority key (the period for periodic threads, the relative
          deadline for sporadic ones) so both EDF and RM/DM dispatch order
          can be re-derived offline *)
  | Complete of { tid : int; thread : string }
      (** the current real-time arrival was retired: slice consumed,
          sporadic size exhausted (degrading to aperiodic), abandoned by a
          re-anchor, or the thread exited mid-arrival *)
  | Block of { tid : int; thread : string }  (** the thread left the runnable set *)
  | Wake of { tid : int; thread : string }
      (** a blocked thread rejoined a run queue. Cross-CPU wakes are stamped
          with the waking CPU's clock, so this is the one event kind whose
          timestamp may precede the target CPU's last event *)
  | Irq of { dur_ns : Time.ns }  (** interrupt entry to exit *)
  | Sched_pass of { dur_ns : Time.ns }  (** one scheduler pass *)
  | Steal_attempt of { victim : int option; success : bool }
  | Barrier_arrive of { barrier : int; tid : int; order : int }
  | Barrier_release of { barrier : int; parties : int; wait_ns : Time.ns }
      (** [wait_ns] is first-arrival to release *)
  | Group_phase of { tid : int; phase : string }
      (** group-admission protocol phase marks (Algorithm 1) *)
  | Elected of { election : int; round : int; tid : int; leader : bool }
      (** one contender's election outcome; exactly one [leader = true] per
          (election, round) *)
  | Policy of { policy : string }
      (** the scheduling policy this CPU dispatches with ("edf", "rm");
          emitted once at boot so traces are self-describing. The CPU-0
          stamp doubles as the run boundary for multi-run traces *)
  | Fault_plan of { plan : string }
      (** a named fault plan was armed on this run ([Hrt_fault]); marks
          the trace segment as fault-injected, which switches the
          verifier from hard-RT soundness to the graceful-degradation
          contract *)
  | Overload of { boundary : string }
      (** this CPU entered (or adjusted) overload mode: real-time
          guarantees below the named criticality are revoked. ["none"]
          marks the return to normal operation after recovery *)
  | Shed of { tid : int; thread : string; crit : string }
      (** an admitted real-time thread below the shed boundary was
          demoted to aperiodic, its constraints revoked *)
  | Demote of { tid : int; thread : string }
      (** a missed arrival was throttled: retired at the deadline instead
          of running late into others' slack *)
  | Recover of { tid : int; thread : string; crit : string }
      (** a shed thread was re-admitted with its original constraints *)
  | Idle  (** the CPU went idle *)

val kind : t -> string
(** Stable kebab-case tag, used as the metric and trace-event name. *)

val dur_ns : t -> Time.ns option
(** Duration for span events, [None] for instants. *)

val args : t -> (string * string) list
(** Payload fields as key/value strings (Chrome-trace [args]). *)

val of_parts :
  kind:string -> args:(string * string) list -> dur_ns:Time.ns option -> t option
(** Inverse of [kind]/[args]/[dur_ns]: rebuild the typed event from its
    exported parts. [None] when the kind is unknown or a payload field is
    missing or malformed. Round-trip law:
    [of_parts ~kind:(kind e) ~args:(args e) ~dur_ns:(dur_ns e) = Some e]. *)

val cls_name : cls -> string
val cls_of_name : string -> cls option

val all_kinds : string list
(** Every tag [kind] can produce, one per constructor. *)
