(** Typed scheduler events.

    Every observable transition of the simulated node is one of these
    constructors; the tracer records them with a simulated-time timestamp
    and the CPU they happened on. Spans ({!Irq}, {!Sched_pass}) carry their
    duration and export as Chrome-trace complete events; everything else is
    an instant. *)

open Hrt_engine

type t =
  | Dispatch of { tid : int; thread : string }
      (** a thread was context-switched in *)
  | Preempt of { tid : int; thread : string }
      (** a still-runnable thread was switched out *)
  | Deadline_miss of { tid : int; thread : string; lateness_ns : Time.ns }
      (** detected at the instant the deadline passed with slice still owed *)
  | Admission_accept of { tid : int }
  | Admission_reject of { tid : int }
  | Irq of { dur_ns : Time.ns }  (** interrupt entry to exit *)
  | Sched_pass of { dur_ns : Time.ns }  (** one scheduler pass *)
  | Steal_attempt of { victim : int option; success : bool }
  | Barrier_arrive of { tid : int; order : int }
  | Barrier_release of { parties : int; wait_ns : Time.ns }
      (** [wait_ns] is first-arrival to release *)
  | Group_phase of { tid : int; phase : string }
      (** group-admission protocol phase marks (Algorithm 1) *)
  | Policy of { policy : string }
      (** the scheduling policy this CPU dispatches with ("edf", "rm");
          emitted once at boot so traces are self-describing *)
  | Idle  (** the CPU went idle *)

val kind : t -> string
(** Stable kebab-case tag, used as the metric and trace-event name. *)

val dur_ns : t -> Time.ns option
(** Duration for span events, [None] for instants. *)

val args : t -> (string * string) list
(** Payload fields as key/value strings (Chrome-trace [args]). *)
