open Hrt_engine

type t =
  | Dispatch of { tid : int; thread : string }
  | Preempt of { tid : int; thread : string }
  | Deadline_miss of { tid : int; thread : string; lateness_ns : Time.ns }
  | Admission_accept of { tid : int }
  | Admission_reject of { tid : int }
  | Irq of { dur_ns : Time.ns }
  | Sched_pass of { dur_ns : Time.ns }
  | Steal_attempt of { victim : int option; success : bool }
  | Barrier_arrive of { tid : int; order : int }
  | Barrier_release of { parties : int; wait_ns : Time.ns }
  | Group_phase of { tid : int; phase : string }
  | Policy of { policy : string }
  | Idle

let kind = function
  | Dispatch _ -> "dispatch"
  | Preempt _ -> "preempt"
  | Deadline_miss _ -> "deadline-miss"
  | Admission_accept _ -> "admission-accept"
  | Admission_reject _ -> "admission-reject"
  | Irq _ -> "irq"
  | Sched_pass _ -> "sched-pass"
  | Steal_attempt _ -> "steal-attempt"
  | Barrier_arrive _ -> "barrier-arrive"
  | Barrier_release _ -> "barrier-release"
  | Group_phase _ -> "group-phase"
  | Policy _ -> "policy"
  | Idle -> "idle"

let dur_ns = function
  | Irq { dur_ns } | Sched_pass { dur_ns } -> Some dur_ns
  | Dispatch _ | Preempt _ | Deadline_miss _ | Admission_accept _
  | Admission_reject _ | Steal_attempt _ | Barrier_arrive _ | Barrier_release _
  | Group_phase _ | Policy _ | Idle ->
    None

let args = function
  | Dispatch { tid; thread } | Preempt { tid; thread } ->
    [ ("tid", string_of_int tid); ("thread", thread) ]
  | Deadline_miss { tid; thread; lateness_ns } ->
    [
      ("tid", string_of_int tid);
      ("thread", thread);
      ("lateness_ns", Int64.to_string lateness_ns);
    ]
  | Admission_accept { tid } | Admission_reject { tid } ->
    [ ("tid", string_of_int tid) ]
  | Irq _ | Sched_pass _ | Idle -> []
  | Steal_attempt { victim; success } ->
    [
      ( "victim",
        match victim with None -> "none" | Some v -> string_of_int v );
      ("success", string_of_bool success);
    ]
  | Barrier_arrive { tid; order } ->
    [ ("tid", string_of_int tid); ("order", string_of_int order) ]
  | Barrier_release { parties; wait_ns } ->
    [
      ("parties", string_of_int parties); ("wait_ns", Int64.to_string wait_ns);
    ]
  | Group_phase { tid; phase } ->
    [ ("tid", string_of_int tid); ("phase", phase) ]
  | Policy { policy } -> [ ("policy", policy) ]
