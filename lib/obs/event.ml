open Hrt_engine

type cls = Cls_aperiodic | Cls_periodic | Cls_sporadic

type t =
  | Dispatch of { tid : int; thread : string }
  | Preempt of { tid : int; thread : string }
  | Deadline_miss of {
      tid : int;
      thread : string;
      lateness_ns : Time.ns;
      crit : string;
    }
  | Admission_accept of { tid : int; cls : cls }
  | Admission_reject of { tid : int; cls : cls; reason : string }
  | Arrival of {
      tid : int;
      thread : string;
      arrival : Time.ns;
      deadline : Time.ns;
      period : Time.ns;
    }
  | Complete of { tid : int; thread : string }
  | Block of { tid : int; thread : string }
  | Wake of { tid : int; thread : string }
  | Irq of { dur_ns : Time.ns }
  | Sched_pass of { dur_ns : Time.ns }
  | Steal_attempt of { victim : int option; success : bool }
  | Barrier_arrive of { barrier : int; tid : int; order : int }
  | Barrier_release of { barrier : int; parties : int; wait_ns : Time.ns }
  | Group_phase of { tid : int; phase : string }
  | Elected of { election : int; round : int; tid : int; leader : bool }
  | Policy of { policy : string }
  | Fault_plan of { plan : string }
  | Overload of { boundary : string }
  | Shed of { tid : int; thread : string; crit : string }
  | Demote of { tid : int; thread : string }
  | Recover of { tid : int; thread : string; crit : string }
  | Idle

let cls_name = function
  | Cls_aperiodic -> "aperiodic"
  | Cls_periodic -> "periodic"
  | Cls_sporadic -> "sporadic"

let cls_of_name = function
  | "aperiodic" -> Some Cls_aperiodic
  | "periodic" -> Some Cls_periodic
  | "sporadic" -> Some Cls_sporadic
  | _ -> None

let kind = function
  | Dispatch _ -> "dispatch"
  | Preempt _ -> "preempt"
  | Deadline_miss _ -> "deadline-miss"
  | Admission_accept _ -> "admission-accept"
  | Admission_reject _ -> "admission-reject"
  | Arrival _ -> "arrival"
  | Complete _ -> "complete"
  | Block _ -> "block"
  | Wake _ -> "wake"
  | Irq _ -> "irq"
  | Sched_pass _ -> "sched-pass"
  | Steal_attempt _ -> "steal-attempt"
  | Barrier_arrive _ -> "barrier-arrive"
  | Barrier_release _ -> "barrier-release"
  | Group_phase _ -> "group-phase"
  | Elected _ -> "elected"
  | Policy _ -> "policy"
  | Fault_plan _ -> "fault-plan"
  | Overload _ -> "overload"
  | Shed _ -> "shed"
  | Demote _ -> "demote"
  | Recover _ -> "recover"
  | Idle -> "idle"

let dur_ns = function
  | Irq { dur_ns } | Sched_pass { dur_ns } -> Some dur_ns
  | Dispatch _ | Preempt _ | Deadline_miss _ | Admission_accept _
  | Admission_reject _ | Arrival _ | Complete _ | Block _ | Wake _
  | Steal_attempt _ | Barrier_arrive _ | Barrier_release _ | Group_phase _
  | Elected _ | Policy _ | Fault_plan _ | Overload _ | Shed _ | Demote _
  | Recover _ | Idle ->
    None

let args = function
  | Dispatch { tid; thread }
  | Preempt { tid; thread }
  | Complete { tid; thread }
  | Block { tid; thread }
  | Wake { tid; thread } ->
    [ ("tid", string_of_int tid); ("thread", thread) ]
  | Deadline_miss { tid; thread; lateness_ns; crit } ->
    [
      ("tid", string_of_int tid);
      ("thread", thread);
      ("lateness_ns", Int64.to_string lateness_ns);
      ("crit", crit);
    ]
  | Shed { tid; thread; crit } | Recover { tid; thread; crit } ->
    [ ("tid", string_of_int tid); ("thread", thread); ("crit", crit) ]
  | Demote { tid; thread } ->
    [ ("tid", string_of_int tid); ("thread", thread) ]
  | Admission_accept { tid; cls } ->
    [ ("tid", string_of_int tid); ("class", cls_name cls) ]
  | Admission_reject { tid; cls; reason } ->
    [ ("tid", string_of_int tid); ("class", cls_name cls); ("reason", reason) ]
  | Arrival { tid; thread; arrival; deadline; period } ->
    [
      ("tid", string_of_int tid);
      ("thread", thread);
      ("arrival_ns", Int64.to_string arrival);
      ("deadline_ns", Int64.to_string deadline);
      ("period_ns", Int64.to_string period);
    ]
  | Irq _ | Sched_pass _ | Idle -> []
  | Steal_attempt { victim; success } ->
    [
      ( "victim",
        match victim with None -> "none" | Some v -> string_of_int v );
      ("success", string_of_bool success);
    ]
  | Barrier_arrive { barrier; tid; order } ->
    [
      ("barrier", string_of_int barrier);
      ("tid", string_of_int tid);
      ("order", string_of_int order);
    ]
  | Barrier_release { barrier; parties; wait_ns } ->
    [
      ("barrier", string_of_int barrier);
      ("parties", string_of_int parties);
      ("wait_ns", Int64.to_string wait_ns);
    ]
  | Group_phase { tid; phase } ->
    [ ("tid", string_of_int tid); ("phase", phase) ]
  | Elected { election; round; tid; leader } ->
    [
      ("election", string_of_int election);
      ("round", string_of_int round);
      ("tid", string_of_int tid);
      ("leader", string_of_bool leader);
    ]
  | Policy { policy } -> [ ("policy", policy) ]
  | Fault_plan { plan } -> [ ("plan", plan) ]
  | Overload { boundary } -> [ ("boundary", boundary) ]

(* [of_parts] inverts [kind]/[args]/[dur_ns]: it is how the offline
   verifier reconstructs typed events from an exported trace, and the
   round-trip property every constructor must satisfy. *)
let of_parts ~kind:k ~args:kvs ~dur_ns:dur =
  let ( let* ) = Option.bind in
  let str key = List.assoc_opt key kvs in
  let int key =
    let* v = str key in
    int_of_string_opt v
  in
  let ns key =
    let* v = str key in
    Int64.of_string_opt v
  in
  let bool key =
    let* v = str key in
    bool_of_string_opt v
  in
  match k with
  | "dispatch" ->
    let* tid = int "tid" in
    let* thread = str "thread" in
    Some (Dispatch { tid; thread })
  | "preempt" ->
    let* tid = int "tid" in
    let* thread = str "thread" in
    Some (Preempt { tid; thread })
  | "complete" ->
    let* tid = int "tid" in
    let* thread = str "thread" in
    Some (Complete { tid; thread })
  | "block" ->
    let* tid = int "tid" in
    let* thread = str "thread" in
    Some (Block { tid; thread })
  | "wake" ->
    let* tid = int "tid" in
    let* thread = str "thread" in
    Some (Wake { tid; thread })
  | "deadline-miss" ->
    let* tid = int "tid" in
    let* thread = str "thread" in
    let* lateness_ns = ns "lateness_ns" in
    let* crit = str "crit" in
    Some (Deadline_miss { tid; thread; lateness_ns; crit })
  | "shed" ->
    let* tid = int "tid" in
    let* thread = str "thread" in
    let* crit = str "crit" in
    Some (Shed { tid; thread; crit })
  | "recover" ->
    let* tid = int "tid" in
    let* thread = str "thread" in
    let* crit = str "crit" in
    Some (Recover { tid; thread; crit })
  | "demote" ->
    let* tid = int "tid" in
    let* thread = str "thread" in
    Some (Demote { tid; thread })
  | "fault-plan" ->
    let* plan = str "plan" in
    Some (Fault_plan { plan })
  | "overload" ->
    let* boundary = str "boundary" in
    Some (Overload { boundary })
  | "admission-accept" ->
    let* tid = int "tid" in
    let* cls = Option.bind (str "class") cls_of_name in
    Some (Admission_accept { tid; cls })
  | "admission-reject" ->
    let* tid = int "tid" in
    let* cls = Option.bind (str "class") cls_of_name in
    let* reason = str "reason" in
    Some (Admission_reject { tid; cls; reason })
  | "arrival" ->
    let* tid = int "tid" in
    let* thread = str "thread" in
    let* arrival = ns "arrival_ns" in
    let* deadline = ns "deadline_ns" in
    let* period = ns "period_ns" in
    Some (Arrival { tid; thread; arrival; deadline; period })
  | "irq" ->
    let* dur_ns = dur in
    Some (Irq { dur_ns })
  | "sched-pass" ->
    let* dur_ns = dur in
    Some (Sched_pass { dur_ns })
  | "steal-attempt" ->
    let* victim =
      match str "victim" with
      | Some "none" -> Some None
      | Some v -> Option.map Option.some (int_of_string_opt v)
      | None -> None
    in
    let* success = bool "success" in
    Some (Steal_attempt { victim; success })
  | "barrier-arrive" ->
    let* barrier = int "barrier" in
    let* tid = int "tid" in
    let* order = int "order" in
    Some (Barrier_arrive { barrier; tid; order })
  | "barrier-release" ->
    let* barrier = int "barrier" in
    let* parties = int "parties" in
    let* wait_ns = ns "wait_ns" in
    Some (Barrier_release { barrier; parties; wait_ns })
  | "group-phase" ->
    let* tid = int "tid" in
    let* phase = str "phase" in
    Some (Group_phase { tid; phase })
  | "elected" ->
    let* election = int "election" in
    let* round = int "round" in
    let* tid = int "tid" in
    let* leader = bool "leader" in
    Some (Elected { election; round; tid; leader })
  | "policy" ->
    let* policy = str "policy" in
    Some (Policy { policy })
  | "idle" -> Some Idle
  | _ -> None

let all_kinds =
  [
    "dispatch";
    "preempt";
    "deadline-miss";
    "admission-accept";
    "admission-reject";
    "arrival";
    "complete";
    "block";
    "wake";
    "irq";
    "sched-pass";
    "steal-attempt";
    "barrier-arrive";
    "barrier-release";
    "group-phase";
    "elected";
    "policy";
    "fault-plan";
    "overload";
    "shed";
    "demote";
    "recover";
    "idle";
  ]
