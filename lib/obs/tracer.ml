open Hrt_engine

type record = { time : Time.ns; cpu : int; event : Event.t }

type t = {
  mutable buf : record array;
  mutable len : int;
}

let dummy = { time = 0L; cpu = 0; event = Event.Idle }

let create () = { buf = [||]; len = 0 }

let grow t =
  let cap = Array.length t.buf in
  let ncap = if cap = 0 then 256 else cap * 2 in
  let nbuf = Array.make ncap dummy in
  Array.blit t.buf 0 nbuf 0 t.len;
  t.buf <- nbuf

let record t ~time ~cpu event =
  if t.len = Array.length t.buf then grow t;
  t.buf.(t.len) <- { time; cpu; event };
  t.len <- t.len + 1

let length t = t.len

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.(i)
  done

let to_array t = Array.sub t.buf 0 t.len

let count t ~kind =
  let n = ref 0 in
  iter t (fun r -> if Event.kind r.event = kind then incr n);
  !n
