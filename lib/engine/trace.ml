type series = {
  name : string;
  mutable times : Time.ns array;
  mutable vals : float array;
  mutable len : int;
}

type t = {
  tbl : (string, series) Hashtbl.t;
  mutable order : string list; (* reverse creation order *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }

let make_series name =
  { name; times = Array.make 64 0L; vals = Array.make 64 0.; len = 0 }

let series t name =
  match Hashtbl.find_opt t.tbl name with
  | Some s -> s
  | None ->
    let s = make_series name in
    Hashtbl.add t.tbl name s;
    t.order <- name :: t.order;
    s

let grow s =
  let cap = Array.length s.times in
  let ntimes = Array.make (cap * 2) 0L in
  let nvals = Array.make (cap * 2) 0. in
  Array.blit s.times 0 ntimes 0 s.len;
  Array.blit s.vals 0 nvals 0 s.len;
  s.times <- ntimes;
  s.vals <- nvals

let record s ~time v =
  if s.len = Array.length s.times then grow s;
  s.times.(s.len) <- time;
  s.vals.(s.len) <- v;
  s.len <- s.len + 1

let record_event s ~time = record s ~time 1.0

let length s = s.len
let name s = s.name
let times s = Array.sub s.times 0 s.len
let values s = Array.sub s.vals 0 s.len

let fold s ~init ~f =
  let acc = ref init in
  for i = 0 to s.len - 1 do
    acc := f !acc s.times.(i) s.vals.(i)
  done;
  !acc

let names t = List.rev t.order
let find t name = Hashtbl.find_opt t.tbl name
