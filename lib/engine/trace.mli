(** Time-series collection for experiments.

    A trace is a set of named series; each series is an append-only sequence
    of (time, value) samples. Harness code records raw observations here and
    post-processes them into the tables/figures of the paper. *)

type t

type series

val create : unit -> t

val series : t -> string -> series
(** [series t name] is the series called [name], created on first use. *)

val record : series -> time:Time.ns -> float -> unit

val record_event : series -> time:Time.ns -> unit
(** Sample with value 1.0 (for edge/event streams). *)

val length : series -> int
val name : series -> string

val times : series -> Time.ns array
val values : series -> float array

val fold : series -> init:'a -> f:('a -> Time.ns -> float -> 'a) -> 'a

val names : t -> string list
(** Series names in creation order. *)

val find : t -> string -> series option
