(** Hierarchical timing-wheel event queue.

    Events are ordered by (time, sequence number): two events at the same
    simulated instant fire in insertion order, and a {!requeue} counts as
    a fresh insertion. The pop sequence is bit-identical to the reference
    binary heap ({!Heap_queue}); the representation differs only in cost:

    - 4 levels x 256 slots, 1 ns per level-0 slot, so add / cancel /
      requeue of anything within 2^32 ns of the cursor is O(1). Events
      beyond the horizon wait in an overflow heap; events scheduled below
      the cursor (the engine permits past adds at queue level) in an
      overdue heap.
    - Entries live in a structure-of-arrays pool recycled through a free
      list, so steady-state traffic performs no heap allocation. Handles
      are immediate ints packing the pool index with a generation
      counter; cancelling a stale handle is a safe no-op.

    The engine drives the queue through the zero-allocation hot-path API
    ({!next_tick} / {!take} / {!finish} / {!defer_inflight}); [add],
    [pop] and friends are the classic interface, used by tests and
    lower-traffic callers. *)

type 'a t

type handle = int
(** Handle to a scheduled event. Handles are immediate (no allocation)
    and generation-checked: once the event fires, is cancelled, or is
    requeued, the old handle goes stale and {!cancel} on it is a no-op. *)

val none : handle
(** A handle that never names a live event ([-1]). *)

val create : dummy:'a -> 'a t
(** [create ~dummy] makes an empty queue. [dummy] fills vacated payload
    slots so the pool never retains dead payloads (closures can capture
    large state). *)

val add : 'a t -> time:Time.ns -> 'a -> handle
(** Schedule a payload. [time] may be below the cursor (the caller — the
    engine — enforces monotonicity of dispatch times). Raises
    [Invalid_argument] if [time] exceeds the +-2^61 ns tick range. *)

val cancel : 'a t -> handle -> unit
(** Idempotent; a no-op on stale handles. A cancelled event is never
    returned by {!pop} or {!take}, and its payload slot is released
    immediately. *)

val is_live : 'a t -> handle -> bool
(** Whether the handle still names a scheduled (not fired, not cancelled,
    not in-flight) event. *)

val entry_time : 'a t -> handle -> Time.ns
(** Scheduled time behind a live handle. Raises [Invalid_argument] on a
    stale one. *)

val requeue : 'a t -> handle -> time:Time.ns -> handle
(** [requeue q h ~time] cancels [h] and re-adds its payload at [time]
    with a {e fresh} sequence number: a requeue counts as a new
    insertion, so it fires after events already scheduled at the same
    instant. Returns the new handle; the old one goes stale. Raises
    [Invalid_argument] if [h] is stale. *)

val pop : 'a t -> (Time.ns * 'a) option
(** Remove and return the earliest live event. *)

val peek_time : 'a t -> Time.ns option
(** Time of the earliest live event without removing it. *)

val size : 'a t -> int
(** Number of live events, O(1). *)

val is_empty : 'a t -> bool

(** {1 Zero-allocation hot path}

    The engine's run loop avoids every boxed intermediate: times are
    compared as int ticks, the minimum is taken while staying pooled
    ("in flight"), its payload is read in place, and the entry is either
    released ({!finish}) or re-inserted at a later time
    ({!defer_inflight}) without a fresh allocation. *)

val no_tick : int
(** Sentinel returned by {!next_tick} on an empty queue ([min_int]). *)

val next_tick : 'a t -> int
(** Tick (int nanoseconds) of the earliest live event, or {!no_tick}. *)

val take : 'a t -> handle
(** Remove the earliest live event from the queue but keep its entry
    pooled in-flight; returns {!none} if the queue is empty. The entry
    MUST subsequently be released with {!finish} or re-inserted with
    {!defer_inflight}. In-flight entries are invisible to {!size},
    {!cancel} and the ordering scans. *)

val inflight_tick : 'a t -> handle -> int
(** Tick of an in-flight entry (undefined on anything else). *)

val payload : 'a t -> handle -> 'a
(** Payload of an in-flight entry (undefined on anything else). *)

val finish : 'a t -> handle -> unit
(** Release an in-flight entry back to the pool. *)

val defer_inflight : 'a t -> handle -> time:Time.ns -> unit
(** Re-insert an in-flight entry at [time] with a fresh sequence number
    but the {e same} generation: the handle its owner holds stays valid,
    so a later precise {!cancel} still reaches the deferred event. *)
