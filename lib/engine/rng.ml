type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = create (next t)

let float t =
  (* 53 random bits scaled into [0,1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

(* Uniform in [0, span) from 63 random bits, without modulo bias: draws
   landing in the incomplete final copy of [0, span) at the top of the
   2^63 range are rejected and redrawn. [Int64.min_int] read as an
   unsigned quantity is exactly 2^63, so [unsigned_rem min_int span] is
   2^63 mod span, and [min_int - rem] is the (positive, representable)
   rejection threshold 2^63 - rem. Accepted draws return the same value
   the old biased code did, so existing seeded streams are preserved
   except on the (astronomically rare, span/2^63) rejected draw. *)
let bounded t span =
  let rem = Int64.unsigned_rem Int64.min_int span in
  let rec draw () =
    let bits = Int64.shift_right_logical (next t) 1 in
    if Int64.equal rem 0L then bits
    else if Int64.compare bits (Int64.sub Int64.min_int rem) >= 0 then draw ()
    else bits
  in
  Int64.rem (draw ()) span

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (bounded t (Int64.of_int n))

let range_ns t lo hi =
  if not Time.(lo < hi) then invalid_arg "Rng.range_ns";
  Int64.add lo (bounded t (Int64.sub hi lo))

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let exponential t ~mean =
  let rec draw () =
    let u = float t in
    if u <= 1e-300 then draw () else u
  in
  -.mean *. log (draw ())
