type 'a entry = {
  time : Time.ns;
  seq : int;
  mutable payload : 'a option;
  (* [None] once popped or cancelled, so the heap never retains dead
     payloads (closures can capture large state). *)
  mutable live : bool;
}

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable live_count : int;
  sentinel : 'a entry;
      (* fills vacated and never-used slots: a dead, payload-free entry *)
}

let create () =
  let sentinel =
    { time = Int64.min_int; seq = -1; payload = None; live = false }
  in
  { heap = [||]; len = 0; next_seq = 0; live_count = 0; sentinel }

let before a b =
  Int64.compare a.time b.time < 0
  || (Int64.equal a.time b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  let ncap = if cap = 0 then 64 else cap * 2 in
  let nheap = Array.make ncap t.sentinel in
  Array.blit t.heap 0 nheap 0 t.len;
  t.heap <- nheap

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add_entry t e =
  if t.len = Array.length t.heap then grow t;
  t.heap.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let add t ~time payload =
  let e = { time; seq = t.next_seq; payload = Some payload; live = true } in
  t.next_seq <- t.next_seq + 1;
  add_entry t e;
  t.live_count <- t.live_count + 1;
  e

let cancel t e =
  if e.live then begin
    e.live <- false;
    e.payload <- None;
    t.live_count <- t.live_count - 1
  end

let is_live e = e.live
let entry_time e = e.time

let remove_root t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.heap.(0) <- t.heap.(t.len);
    t.heap.(t.len) <- t.sentinel;
    sift_down t 0
  end
  else t.heap.(0) <- t.sentinel

let rec pop_entry t =
  if t.len = 0 then None
  else begin
    let root = t.heap.(0) in
    remove_root t;
    if root.live then begin
      root.live <- false;
      Some root
    end
    else pop_entry t
  end

let pop t =
  match pop_entry t with
  | None -> None
  | Some e ->
    t.live_count <- t.live_count - 1;
    let p = match e.payload with Some p -> p | None -> assert false in
    e.payload <- None;
    Some (e.time, p)

let rec peek_time t =
  if t.len = 0 then None
  else begin
    let root = t.heap.(0) in
    if root.live then Some root.time
    else begin
      remove_root t;
      peek_time t
    end
  end

let requeue t e ~time =
  if not e.live then invalid_arg "Heap_queue.requeue: cancelled entry";
  let payload = match e.payload with Some p -> p | None -> assert false in
  cancel t e;
  (* A requeue is a fresh insertion: it takes a new sequence number so the
     documented FIFO tie-break among same-timestamp events holds relative
     to everything already scheduled, not to the entry's original age. *)
  let e' = { time; seq = t.next_seq; payload = Some payload; live = true } in
  t.next_seq <- t.next_seq + 1;
  add_entry t e';
  t.live_count <- t.live_count + 1;
  e'

let size t = t.live_count
let is_empty t = t.live_count = 0
