(** Simulated wall-clock time.

    All time in the simulator is wall-clock time in nanoseconds stored in
    64-bit integers, exactly as the paper's scheduler does (Section 3.3):
    "Time is measured throughout in units of nanoseconds stored in 64 bit
    integers." Cycle counts are converted through a per-platform frequency. *)

type ns = int64
(** A point in (or duration of) simulated time, in nanoseconds. *)

val zero : ns

val ns : int -> ns
(** [ns n] is [n] nanoseconds. *)

val us : int -> ns
(** [us n] is [n] microseconds. *)

val ms : int -> ns
(** [ms n] is [n] milliseconds. *)

val sec : int -> ns
(** [sec n] is [n] seconds. *)

val of_float_us : float -> ns
(** [of_float_us x] is [x] microseconds rounded to the nearest nanosecond. *)

val to_float_us : ns -> float
val to_float_ms : ns -> float
val to_float_s : ns -> float

val ( + ) : ns -> ns -> ns
val ( - ) : ns -> ns -> ns
val ( * ) : ns -> int -> ns
val ( / ) : ns -> int -> ns
val ( < ) : ns -> ns -> bool
val ( <= ) : ns -> ns -> bool
val ( > ) : ns -> ns -> bool
val ( >= ) : ns -> ns -> bool

val min : ns -> ns -> ns
val max : ns -> ns -> ns

val cycles_of_ns : ghz:float -> ns -> int64
(** [cycles_of_ns ~ghz t] is the number of processor cycles elapsed in [t]
    nanoseconds on a clock of [ghz] GHz, rounded down. *)

val ns_of_cycles : ghz:float -> int64 -> ns
(** Inverse of {!cycles_of_ns}, rounded up so that programming a timer from a
    cycle count is conservative (fires no later than requested, up to 1 ns
    of floating-point slack in the frequency). *)

val pp : Format.formatter -> ns -> unit
(** Human-friendly rendering, e.g. ["12.5us"], ["3.2ms"]. *)
