(** Reference binary-heap event queue.

    This is the engine's original event queue, kept verbatim as the
    {e reference implementation} for the hierarchical timing wheel that
    replaced it ({!Event_queue}): the differential property test drives both
    with the same operation stream and demands identical (time, seq, payload)
    pop sequences, and [hrt_sim enginebench] uses it as the allocation-heavy
    baseline the wheel is measured against.

    Events are ordered by (time, sequence number): two events at the same
    simulated instant fire in insertion order. Cancellation is lazy: a
    cancelled entry stays in the heap until popped, then is skipped — but its
    payload is released immediately, and popped slots are overwritten with a
    sentinel, so the queue never retains dead payloads across long runs. *)

type 'a t

type 'a entry
(** Handle to a scheduled event, usable for cancellation. *)

val create : unit -> 'a t

val add : 'a t -> time:Time.ns -> 'a -> 'a entry
(** Schedule a payload. [time] may be in the past relative to previously
    popped events; the caller (the engine) enforces monotonicity. *)

val cancel : 'a t -> 'a entry -> unit
(** Idempotent. A cancelled event is never returned by {!pop}. *)

val is_live : 'a entry -> bool
val entry_time : 'a entry -> Time.ns

val requeue : 'a t -> 'a entry -> time:Time.ns -> 'a entry
(** [requeue q e ~time] cancels [e] and re-adds its payload at [time] with
    a {e fresh} sequence number: a requeue counts as a new insertion, so it
    fires after events already scheduled at the same instant (the FIFO
    tie-break documented above). Returns the new handle. Raises
    [Invalid_argument] if [e] is cancelled. *)

val pop : 'a t -> (Time.ns * 'a) option
(** Remove and return the earliest live event. *)

val peek_time : 'a t -> Time.ns option
(** Time of the earliest live event without removing it. *)

val size : 'a t -> int
(** Number of live events. *)

val is_empty : 'a t -> bool
