(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic quantity in the simulation (interrupt-dispatch jitter,
    SMI arrival, calibration measurement error, ...) is drawn from a stream
    derived from a single seed, so whole experiments replay bit-identically. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. *)

val split : t -> t
(** [split t] derives an independent stream; [t] advances. Use one stream per
    subsystem so adding draws in one place does not perturb another. *)

val next : t -> int64
(** Raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. Exact — large [n]
    that do not divide 2^63 are handled by rejection sampling rather than
    a biased modulo. *)

val range_ns : t -> Time.ns -> Time.ns -> Time.ns
(** [range_ns t lo hi] is uniform in [lo, hi). Requires [lo < hi]. Exact
    for any span (rejection sampling, no modulo bias). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box-Muller. *)

val exponential : t -> mean:float -> float
(** Exponential deviate with the given mean. *)
