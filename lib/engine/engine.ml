type callback = t -> unit

and t = {
  mutable now : Time.ns;
  queue : callback Event_queue.t;
  rng : Rng.t;
  mutable freeze_until : Time.ns;
  (* Closed freeze windows, in increasing order, merged when adjacent.
     [open_freeze] is the start of the currently open window, if any. *)
  mutable windows : (Time.ns * Time.ns) list; (* reverse order *)
  mutable open_freeze : Time.ns option;
  mutable total_frozen_closed : Time.ns;
  mutable stopped : bool;
  mutable executed : int;
  mutable max_pending : int;
}

type handle = callback Event_queue.entry

let create ?(seed = 42L) () =
  {
    now = 0L;
    queue = Event_queue.create ();
    rng = Rng.create seed;
    freeze_until = Int64.min_int;
    windows = [];
    open_freeze = None;
    total_frozen_closed = 0L;
    stopped = false;
    executed = 0;
    max_pending = 0;
  }

let now t = t.now
let rng t = t.rng

let track_depth t =
  let n = Event_queue.size t.queue in
  if n > t.max_pending then t.max_pending <- n

let schedule t ~at f =
  if Time.(at < t.now) then
    invalid_arg
      (Format.asprintf "Engine.schedule: %a is in the past (now %a)" Time.pp at
         Time.pp t.now);
  let h = Event_queue.add t.queue ~time:at f in
  track_depth t;
  h

let schedule_after t ~after f = schedule t ~at:Time.(t.now + after) f

let cancel t h = Event_queue.cancel t.queue h

let close_open_window t =
  match t.open_freeze with
  | None -> ()
  | Some start ->
    let stop = t.freeze_until in
    t.windows <- (start, stop) :: t.windows;
    t.total_frozen_closed <- Time.(t.total_frozen_closed + (stop - start));
    t.open_freeze <- None

let freeze t ~until =
  if Time.(until <= t.now) then ()
  else begin
    (match t.open_freeze with
    | Some _ ->
      (* Extend the open window. *)
      if Time.(until > t.freeze_until) then t.freeze_until <- until
    | None ->
      t.open_freeze <- Some t.now;
      t.freeze_until <- until)
  end

let frozen_overlap t a b =
  if Time.(b <= a) then 0L
  else begin
    let overlap (s, e) =
      let lo = Time.max a s and hi = Time.min b e in
      if Time.(hi > lo) then Time.(hi - lo) else 0L
    in
    let closed =
      List.fold_left (fun acc w -> Time.(acc + overlap w)) 0L t.windows
    in
    match t.open_freeze with
    | None -> closed
    | Some s -> Time.(closed + overlap (s, t.freeze_until))
  end

let total_frozen t =
  (* An open window is committed through [freeze_until]: count all of it. *)
  let open_part =
    match t.open_freeze with
    | None -> 0L
    | Some s -> Time.(t.freeze_until - s)
  in
  Time.(t.total_frozen_closed + Time.max open_part 0L)

let stop t = t.stopped <- true
let events_executed t = t.executed
let pending t = Event_queue.size t.queue
let max_queue_depth t = t.max_pending

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let horizon = match until with None -> Int64.max_int | Some u -> u in
  let continue = ref true in
  while !continue && not t.stopped && !budget > 0 do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some tm when Time.(tm > horizon) -> continue := false
    | Some tm -> (
      (* Defer events that fall inside a frozen window. *)
      if t.open_freeze <> None && Time.(tm < t.freeze_until) then begin
        match Event_queue.pop t.queue with
        | None -> continue := false
        | Some (_, f) ->
          ignore
            (Event_queue.add t.queue ~time:t.freeze_until f
              : callback Event_queue.entry)
      end
      else
        match Event_queue.pop t.queue with
        | None -> continue := false
        | Some (tm, f) ->
          if t.open_freeze <> None && Time.(tm >= t.freeze_until) then
            close_open_window t;
          t.now <- tm;
          t.executed <- t.executed + 1;
          decr budget;
          f t)
  done;
  (match until with
  | Some u when not t.stopped && Time.(t.now < u) -> t.now <- u
  | _ -> ());
  if t.open_freeze <> None && Time.(t.now >= t.freeze_until) then
    close_open_window t
