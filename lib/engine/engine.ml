type action =
  | Callback of (t -> unit)
  | Timer_fire of int
  | Soft_invoke of int
  | Complete of int
  | Wake of int
  | Smi_fire of int
  | Irq_pull of int
  | Fault_tick of int

and t = {
  mutable now : Time.ns;
  mutable now_tick : int;
  queue : action Event_queue.t;
  rng : Rng.t;
  (* Registered event sources: the int carried by every non-[Callback]
     action indexes this table. Long-lived subsystems register once and
     cache one action value, so firing them allocates nothing. *)
  mutable sources : (t -> unit) array;
  mutable n_sources : int;
  mutable freeze_until : Time.ns;
  mutable freeze_tick : int;
  (* Closed freeze windows, in increasing order, merged when adjacent.
     [open_freeze] is the start of the currently open window, if any. *)
  mutable windows : (Time.ns * Time.ns) list; (* reverse order *)
  mutable open_freeze : Time.ns option;
  mutable total_frozen_closed : Time.ns;
  mutable stopped : bool;
  mutable executed : int;
  mutable max_pending : int;
  (* Entry currently being dispatched, and whether its callback parked it
     back into the queue via [defer_current]. *)
  mutable current : Event_queue.handle;
  mutable deferred : bool;
}

type handle = Event_queue.handle

(* Event scheduling and the run loop are the per-event hot path; the
   allocating pieces (construction, freeze-window bookkeeping, error
   formatting) are cold or explicitly waived. *)
[@@@hrt.hot]

let no_handle = Event_queue.none

let nop (_ : t) = ()

let[@hrt.cold] create ?(seed = 42L) () =
  {
    now = 0L;
    now_tick = 0;
    queue = Event_queue.create ~dummy:(Callback nop);
    rng = Rng.create seed;
    sources = [||];
    n_sources = 0;
    freeze_until = Int64.min_int;
    freeze_tick = min_int;
    windows = [];
    open_freeze = None;
    total_frozen_closed = 0L;
    stopped = false;
    executed = 0;
    max_pending = 0;
    current = Event_queue.none;
    deferred = false;
  }

let now t = t.now
let rng t = t.rng

let[@hrt.cold] register_source t f =
  let k = t.n_sources in
  if k = Array.length t.sources then begin
    let n = Array.make (if k = 0 then 8 else 2 * k) nop in
    Array.blit t.sources 0 n 0 k;
    t.sources <- n
  end;
  t.sources.(k) <- f;
  t.n_sources <- k + 1;
  k

let track_depth t =
  let n = Event_queue.size t.queue in
  if n > t.max_pending then t.max_pending <- n

(* Out-of-line so the scheduling fast path performs no formatting. *)
let[@hrt.cold] schedule_past_error at now =
  invalid_arg
    (Format.asprintf "Engine.schedule: %a is in the past (now %a)" Time.pp at
       Time.pp now)

let schedule_action t ~at a =
  if Time.(at < t.now) then schedule_past_error at t.now;
  let h = Event_queue.add t.queue ~time:at a in
  track_depth t;
  h

let schedule_action_after t ~after a =
  schedule_action t ~at:Time.(t.now + after) a

let schedule t ~at f = schedule_action t ~at (Callback f)
let schedule_after t ~after f = schedule_action t ~at:Time.(t.now + after) (Callback f)

let cancel t h = Event_queue.cancel t.queue h

let defer_current t ~at =
  if t.current = Event_queue.none then
    invalid_arg "Engine.defer_current: no event in flight";
  if t.deferred then invalid_arg "Engine.defer_current: already deferred";
  if Time.(at < t.now) then
    invalid_arg "Engine.defer_current: time is in the past";
  t.deferred <- true;
  Event_queue.defer_inflight t.queue t.current ~time:at

let close_open_window t =
  match t.open_freeze with
  | None -> ()
  | Some start ->
    let stop = t.freeze_until in
    t.windows <-
      ((start, stop) :: t.windows
      [@hrt.alloc_ok "one window record per freeze window, not per event"]);
    t.total_frozen_closed <- Time.(t.total_frozen_closed + (stop - start));
    t.open_freeze <- None

(* Ticks mirror the int64 times for the run loop's unboxed comparisons;
   see Event_queue for the range argument. *)
let tick_of u =
  if Int64.compare u (Int64.of_int max_int) >= 0 then max_int
  else Int64.to_int u

let freeze t ~until =
  if Time.(until <= t.now) then ()
  else begin
    (match t.open_freeze with
    | Some _ ->
      (* Extend the open window. *)
      if Time.(until > t.freeze_until) then begin
        t.freeze_until <- until;
        t.freeze_tick <- tick_of until
      end
    | None ->
      t.open_freeze <-
        (Some t.now [@hrt.alloc_ok "one option per freeze window open"]);
      t.freeze_until <- until;
      t.freeze_tick <- tick_of until)
  end

let[@hrt.cold] frozen_overlap t a b =
  if Time.(b <= a) then 0L
  else begin
    let overlap (s, e) =
      let lo = Time.max a s and hi = Time.min b e in
      if Time.(hi > lo) then Time.(hi - lo) else 0L
    in
    let closed =
      List.fold_left (fun acc w -> Time.(acc + overlap w)) 0L t.windows
    in
    match t.open_freeze with
    | None -> closed
    | Some s -> Time.(closed + overlap (s, t.freeze_until))
  end

let[@hrt.cold] total_frozen t =
  (* An open window is committed through [freeze_until]: count all of it. *)
  let open_part =
    match t.open_freeze with
    | None -> 0L
    | Some s -> Time.(t.freeze_until - s)
  in
  Time.(t.total_frozen_closed + Time.max open_part 0L)

let stop t = t.stopped <- true
let events_executed t = t.executed
let pending t = Event_queue.size t.queue
let pending_events = pending
let max_queue_depth t = t.max_pending

let dispatch t a =
  match a with
  | Callback f -> f t
  | Timer_fire k
  | Soft_invoke k
  | Complete k
  | Wake k
  | Smi_fire k
  | Irq_pull k
  | Fault_tick k ->
    t.sources.(k) t

let run ?until ?max_events t =
  t.stopped <- false;
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let horizon = match until with None -> max_int | Some u -> tick_of u in
  let continue = ref true in
  while !continue && not t.stopped && !budget > 0 do
    let tick = Event_queue.next_tick t.queue in
    if tick = Event_queue.no_tick || tick > horizon then continue := false
    else if t.open_freeze <> None && tick < t.freeze_tick then begin
      (* Defer events that fall inside a frozen window. The entry keeps
         its identity (handle, payload) but takes a fresh sequence
         number, exactly like the pop + re-add this replaces. *)
      let h = Event_queue.take t.queue in
      Event_queue.defer_inflight t.queue h ~time:t.freeze_until
    end
    else begin
      let h = Event_queue.take t.queue in
      let tick = Event_queue.inflight_tick t.queue h in
      if t.open_freeze <> None && tick >= t.freeze_tick then
        close_open_window t;
      if tick <> t.now_tick then begin
        t.now_tick <- tick;
        t.now <- Int64.of_int tick
      end;
      t.executed <- t.executed + 1;
      decr budget;
      t.current <- h;
      t.deferred <- false;
      dispatch t (Event_queue.payload t.queue h);
      t.current <- Event_queue.none;
      if not t.deferred then Event_queue.finish t.queue h
    end
  done;
  (match until with
  | Some u when not t.stopped && Time.(t.now < u) ->
    t.now <- u;
    t.now_tick <- tick_of u
  | _ -> ());
  if t.open_freeze <> None && Time.(t.now >= t.freeze_until) then
    close_open_window t
