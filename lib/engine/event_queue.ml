(* Hierarchical timing wheel with a free-list entry pool.

   Geometry: 4 levels x 256 slots, 8 bits per level, 1 ns per level-0
   slot. An entry whose tick shares the current cursor's 2^(8(L+1))-window
   but not its 2^(8L)-window lives at level L; a level-0 slot therefore
   holds exactly one tick value, so appending to the slot list keeps the
   (time, seq) FIFO order without any per-slot sorting. Events beyond the
   wheel's 2^32 ns horizon sit in an overflow binary heap; events added in
   the past (the cursor only moves forward) sit in an overdue heap. The
   three tiers never hold equal-priority elements out of order: overdue
   ticks are strictly below the cursor, wheel ticks are at or above it,
   and the minimum is selected by a (tick, seq) comparison across tier
   heads, so the pop sequence is identical to a single (time, seq) heap.

   Entries live in a structure-of-arrays pool recycled through a free
   list: steady-state add/pop traffic allocates nothing. Handles pack the
   pool index with a generation counter that is bumped whenever the slot
   is freed or re-targeted, so a stale handle's cancel is a safe no-op.

   Cancellation is O(1) and precise for wheel entries (doubly-linked slot
   lists); entries inside either heap are cancelled lazily (marked dead,
   reclaimed when they surface), exactly like the reference heap. *)

(* The whole module is engine hot path: steady-state add/take/requeue
   traffic must stay allocation-free (see DESIGN.md section 10). The few
   allocating conveniences are marked [@@hrt.cold]. *)
[@@@hrt.hot]

type handle = int

let none = -1

(* Handle layout: low [idx_bits] bits are the pool index, the rest is the
   generation (wrapping). 2^21 simultaneous events is far beyond any
   simulated machine here; [add] fails hard if the pool would exceed it. *)
let idx_bits = 21
let idx_mask = (1 lsl idx_bits) - 1
let gen_mask = (1 lsl (62 - idx_bits)) - 1

let levels = 4
let slot_bits = 8
let slots_per_level = 1 lsl slot_bits (* 256 *)
let wheel_slots = levels * slots_per_level

(* [where] codes: a wheel slot id >= 0, or one of: *)
let w_free = -1
let w_overdue = -2 (* live, in the overdue heap *)
let w_overflow = -3 (* live, in the overflow heap *)
let w_dead = -4 (* cancelled, still buried in a heap *)
let w_inflight = -5 (* taken by the engine, not yet finished *)

type 'a t = {
  dummy : 'a;
  (* entry pool (structure of arrays) *)
  mutable e_time : int array; (* tick *)
  mutable e_seq : int array;
  mutable e_gen : int array;
  mutable e_prev : int array;
  mutable e_next : int array; (* doubles as the free-list link *)
  mutable e_where : int array;
  mutable e_payload : 'a array;
  mutable cap : int;
  mutable free_head : int;
  (* wheel *)
  mutable cur : int; (* cursor tick: last dispatched position *)
  head : int array; (* per-slot list head, -1 when empty *)
  tail : int array;
  occ : int array; (* occupancy bitmap, 32 slots per word *)
  mutable wheel_count : int;
  (* heaps of pool indices ordered by (tick, seq), lazily cleaned *)
  mutable od_heap : int array;
  mutable od_len : int;
  mutable of_heap : int array;
  mutable of_len : int;
  mutable next_seq : int;
  mutable live : int;
}

let no_tick = min_int

(* Ticks are plain ints: engine times are int64 nanoseconds, but every
   simulation runs far inside the 62-bit range and unboxed comparisons
   are what make the hot path cheap. *)
let tick_limit = 1 lsl 61

let tick_of_time time =
  let t = Int64.to_int time in
  if
    t >= tick_limit || t <= -tick_limit
    || not (Int64.equal (Int64.of_int t) time)
  then invalid_arg "Event_queue: time out of range"
  else t

let[@hrt.cold] create ~dummy =
  {
    dummy;
    e_time = [||];
    e_seq = [||];
    e_gen = [||];
    e_prev = [||];
    e_next = [||];
    e_where = [||];
    e_payload = [||];
    cap = 0;
    free_head = -1;
    cur = 0;
    head = Array.make wheel_slots (-1);
    tail = Array.make wheel_slots (-1);
    occ = Array.make (wheel_slots / 32) 0;
    wheel_count = 0;
    od_heap = [||];
    od_len = 0;
    of_heap = [||];
    of_len = 0;
    next_seq = 0;
    live = 0;
  }

(* ---- entry pool ---- *)

let[@hrt.cold] grow_pool t =
  let ncap = if t.cap = 0 then 64 else t.cap * 2 in
  if ncap > idx_mask then failwith "Event_queue: entry pool exhausted";
  let ext a fill =
    let n = Array.make ncap fill in
    Array.blit a 0 n 0 t.cap;
    n
  in
  t.e_time <- ext t.e_time 0;
  t.e_seq <- ext t.e_seq 0;
  t.e_gen <- ext t.e_gen 0;
  t.e_prev <- ext t.e_prev (-1);
  t.e_next <- ext t.e_next (-1);
  t.e_where <- ext t.e_where w_free;
  t.e_payload <- ext t.e_payload t.dummy;
  (* Chain the new slots onto the free list, lowest index first. *)
  for i = ncap - 1 downto t.cap do
    t.e_next.(i) <- t.free_head;
    t.free_head <- i
  done;
  t.cap <- ncap

let alloc_entry t =
  if t.free_head < 0 then grow_pool t;
  let i = t.free_head in
  t.free_head <- t.e_next.(i);
  i

let free_entry t i =
  t.e_gen.(i) <- (t.e_gen.(i) + 1) land gen_mask;
  t.e_payload.(i) <- t.dummy;
  t.e_where.(i) <- w_free;
  t.e_next.(i) <- t.free_head;
  t.free_head <- i

let mk_handle t i = i lor (t.e_gen.(i) lsl idx_bits)

let decode t h =
  let i = h land idx_mask in
  if h >= 0 && i < t.cap && t.e_gen.(i) = h lsr idx_bits then i else -1

(* ---- (tick, seq) order ---- *)

let earlier t i j =
  t.e_time.(i) < t.e_time.(j)
  || (t.e_time.(i) = t.e_time.(j) && t.e_seq.(i) < t.e_seq.(j))

(* ---- int-index binary heaps (overdue / overflow) ---- *)

let heap_push t heap len i =
  let a = if Array.length heap <= len then begin
      let ncap = if len = 0 then 16 else 2 * len in
      let n = Array.make ncap (-1) in
      Array.blit heap 0 n 0 len;
      n
    end
    else heap
  in
  a.(len) <- i;
  let pos = ref len in
  while
    !pos > 0
    &&
    let p = (!pos - 1) / 2 in
    earlier t a.(!pos) a.(p)
  do
    let p = (!pos - 1) / 2 in
    let tmp = a.(!pos) in
    a.(!pos) <- a.(p);
    a.(p) <- tmp;
    pos := p
  done;
  a

let rec heap_sift_down t a len i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < len && earlier t a.(l) a.(!m) then m := l;
  if r < len && earlier t a.(r) a.(!m) then m := r;
  if !m <> i then begin
    let tmp = a.(i) in
    a.(i) <- a.(!m);
    a.(!m) <- tmp;
    heap_sift_down t a len !m
  end

let od_push t i =
  t.od_heap <- heap_push t t.od_heap t.od_len i;
  t.od_len <- t.od_len + 1

let of_push t i =
  t.of_heap <- heap_push t t.of_heap t.of_len i;
  t.of_len <- t.of_len + 1

let od_pop_root t =
  let i = t.od_heap.(0) in
  t.od_len <- t.od_len - 1;
  if t.od_len > 0 then begin
    t.od_heap.(0) <- t.od_heap.(t.od_len);
    heap_sift_down t t.od_heap t.od_len 0
  end;
  i

let of_pop_root t =
  let i = t.of_heap.(0) in
  t.of_len <- t.of_len - 1;
  if t.of_len > 0 then begin
    t.of_heap.(0) <- t.of_heap.(t.of_len);
    heap_sift_down t t.of_heap t.of_len 0
  end;
  i

(* Drop cancelled entries off a heap top so the root is live (or the heap
   empty). Dead entries are only reclaimed here: their pool slot must not
   be reused while their index is still buried in the heap array. *)
let rec od_clean t =
  if t.od_len > 0 && t.e_where.(t.od_heap.(0)) = w_dead then begin
    free_entry t (od_pop_root t);
    od_clean t
  end

let rec of_clean t =
  if t.of_len > 0 && t.e_where.(t.of_heap.(0)) = w_dead then begin
    free_entry t (of_pop_root t);
    of_clean t
  end

(* ---- wheel slots ---- *)

let occ_set t s = t.occ.(s lsr 5) <- t.occ.(s lsr 5) lor (1 lsl (s land 31))

let occ_clear t s =
  t.occ.(s lsr 5) <- t.occ.(s lsr 5) land lnot (1 lsl (s land 31))

let ntz8 =
  (* Number of trailing zeros for each byte value 1..255. *)
  let a = Bytes.make 256 '\000' in
  for i = 1 to 255 do
    let n = ref 0 in
    while i land (1 lsl !n) = 0 do
      incr n
    done;
    Bytes.set a i (Char.chr !n)
  done;
  a
[@@hrt.unsynchronized
  "write-once lookup table, fully initialized at module load before any \
   domain is spawned; read-only afterwards"]

let ntz32 w =
  if w land 0xff <> 0 then Char.code (Bytes.get ntz8 (w land 0xff))
  else if w land 0xff00 <> 0 then
    8 + Char.code (Bytes.get ntz8 ((w lsr 8) land 0xff))
  else if w land 0xff0000 <> 0 then
    16 + Char.code (Bytes.get ntz8 ((w lsr 16) land 0xff))
  else 24 + Char.code (Bytes.get ntz8 ((w lsr 24) land 0xff))

(* Word-scan helper for [next_occupied], toplevel so the hot path builds
   no closure. *)
let rec scan_words t whi hi w =
  if w > whi then -1
  else if t.occ.(w) <> 0 then
    let s = (w lsl 5) + ntz32 t.occ.(w) in
    if s <= hi then s else -1
  else scan_words t whi hi (w + 1)

(* First occupied slot id in [lo, hi] (global slot ids), or -1. *)
let next_occupied t lo hi =
  if lo > hi then -1
  else begin
    let w0 = lo lsr 5 and whi = hi lsr 5 in
    let first = t.occ.(w0) lsr (lo land 31) in
    if first <> 0 then lo + ntz32 first
    else scan_words t whi hi (w0 + 1)
  end

let slot_append t s i =
  t.e_where.(i) <- s;
  t.e_next.(i) <- -1;
  let tl = t.tail.(s) in
  if tl < 0 then begin
    t.e_prev.(i) <- -1;
    t.head.(s) <- i;
    t.tail.(s) <- i;
    occ_set t s
  end
  else begin
    t.e_prev.(i) <- tl;
    t.e_next.(tl) <- i;
    t.tail.(s) <- i
  end;
  t.wheel_count <- t.wheel_count + 1

let slot_unlink t i =
  let s = t.e_where.(i) in
  let p = t.e_prev.(i) and n = t.e_next.(i) in
  if p >= 0 then t.e_next.(p) <- n else t.head.(s) <- n;
  if n >= 0 then t.e_prev.(n) <- p else t.tail.(s) <- p;
  if t.head.(s) < 0 then occ_clear t s;
  t.wheel_count <- t.wheel_count - 1

(* Place a live entry relative to the cursor. Level selection is by
   window equality (which byte of the tick differs from the cursor's), so
   within one level indices never wrap: scans always run upward. *)
let place t i =
  let tick = t.e_time.(i) in
  if tick < t.cur then begin
    t.e_where.(i) <- w_overdue;
    od_push t i
  end
  else if tick lsr slot_bits = t.cur lsr slot_bits then
    slot_append t (tick land 0xff) i
  else if tick lsr 16 = t.cur lsr 16 then
    slot_append t (slots_per_level + ((tick lsr 8) land 0xff)) i
  else if tick lsr 24 = t.cur lsr 24 then
    slot_append t ((2 * slots_per_level) + ((tick lsr 16) land 0xff)) i
  else if tick lsr 32 = t.cur lsr 32 then
    slot_append t ((3 * slots_per_level) + ((tick lsr 24) land 0xff)) i
  else begin
    t.e_where.(i) <- w_overflow;
    of_push t i
  end

(* Move every entry of a level-[lvl] slot down, after advancing the
   cursor to the slot's window base. Iterating in list order re-appends
   equal-tick entries in their original (seq) order. *)
let cascade t lvl s =
  let within = s land 0xff in
  let mask_above = -1 lsl (8 * (lvl + 1)) in
  let base = (t.cur land mask_above) lor (within lsl (8 * lvl)) in
  t.cur <- base;
  let i = ref t.head.(s) in
  t.head.(s) <- -1;
  t.tail.(s) <- -1;
  occ_clear t s;
  while !i >= 0 do
    let n = t.e_next.(!i) in
    t.wheel_count <- t.wheel_count - 1;
    place t !i;
    i := n
  done

(* Minimum live wheel entry (pool index), cascading upper-level slots as
   needed; -1 when the wheel is empty. The cursor only ever advances to
   window bases at or below the minimum tick, so placement of later adds
   stays consistent. *)
(* First occupied slot strictly after the cursor's position at [lvl],
   toplevel so [wheel_min] builds no closure. *)
let lvl_scan t lvl =
  let base = lvl * slots_per_level in
  let idx = (t.cur lsr (8 * lvl)) land 0xff in
  next_occupied t (base + idx + 1) (base + slots_per_level - 1)

let rec wheel_min t =
  if t.wheel_count = 0 then -1
  else begin
    match next_occupied t (t.cur land 0xff) (slots_per_level - 1) with
    | s when s >= 0 -> t.head.(s)
    | _ -> (
      match lvl_scan t 1 with
      | s when s >= 0 ->
        cascade t 1 s;
        wheel_min t
      | _ -> (
        match lvl_scan t 2 with
        | s when s >= 0 ->
          cascade t 2 s;
          wheel_min t
        | _ -> (
          match lvl_scan t 3 with
          | s when s >= 0 ->
            cascade t 3 s;
            wheel_min t
          | _ -> -1)))
  end

(* ---- minimum selection across the three tiers ---- *)

(* The minimum is the (tick, seq)-least of the three tier heads. Overdue
   ticks are always below the cursor and wheel ticks at or above it, but
   the overflow heap needs a real comparison both ways: it keeps entries
   whose 2^32 window the cursor has since reached (they are never
   migrated into the wheel) and can even hold ticks the cursor has passed
   (its page jumped over them), which must still beat a later overdue
   entry. *)
let find_min t =
  od_clean t;
  of_clean t;
  let best = wheel_min t in
  let best =
    if t.od_len > 0 && (best < 0 || earlier t t.od_heap.(0) best) then
      t.od_heap.(0)
    else best
  in
  if t.of_len > 0 && (best < 0 || earlier t t.of_heap.(0) best) then
    t.of_heap.(0)
  else best

let remove_min t i =
  (* [i] must be the entry [find_min] returned. The cursor never moves
     backwards: a pop below it (overdue, or a passed-over overflow tick)
     leaves it in place, so the placement of existing wheel entries stays
     consistent with future scans. *)
  match t.e_where.(i) with
  | w when w >= 0 ->
    slot_unlink t i;
    t.cur <- t.e_time.(i)
  | w when w = w_overdue -> ignore (od_pop_root t : int)
  | w when w = w_overflow ->
    ignore (of_pop_root t : int);
    if t.e_time.(i) > t.cur then t.cur <- t.e_time.(i)
  | _ -> assert false

(* ---- public api ---- *)

let size t = t.live
let is_empty t = t.live = 0

let add t ~time payload =
  let tick = tick_of_time time in
  let i = alloc_entry t in
  t.e_time.(i) <- tick;
  t.e_seq.(i) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.e_payload.(i) <- payload;
  place t i;
  t.live <- t.live + 1;
  mk_handle t i

let cancel t h =
  let i = decode t h in
  if i >= 0 then begin
    let w = t.e_where.(i) in
    if w >= 0 then begin
      slot_unlink t i;
      t.live <- t.live - 1;
      free_entry t i
    end
    else if w = w_overdue || w = w_overflow then begin
      (* Lazy: the index stays buried in its heap; mark it dead, release
         the payload now, bump the generation so the handle dies. *)
      t.e_where.(i) <- w_dead;
      t.e_payload.(i) <- t.dummy;
      t.e_gen.(i) <- (t.e_gen.(i) + 1) land gen_mask;
      t.live <- t.live - 1
    end
    (* w_inflight / w_dead / w_free: no-op *)
  end

let is_live t h =
  let i = decode t h in
  i >= 0 && (t.e_where.(i) >= 0 || t.e_where.(i) = w_overdue || t.e_where.(i) = w_overflow)

let entry_time t h =
  let i = decode t h in
  if i < 0 then invalid_arg "Event_queue.entry_time: stale handle"
  else Int64.of_int t.e_time.(i)

(* A requeue is a fresh insertion: new sequence number, so the FIFO
   tie-break counts from insertion into the new instant. *)
let requeue_fresh t i' tick =
  t.e_time.(i') <- tick;
  t.e_seq.(i') <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  place t i';
  mk_handle t i'

let requeue t h ~time =
  if not (is_live t h) then invalid_arg "Event_queue.requeue: cancelled entry";
  let i = h land idx_mask in
  let tick = tick_of_time time in
  if t.e_where.(i) >= 0 then begin
    (* Reuse the record in place; bump the generation so the old handle
       goes stale (a requeue invalidates it, like a cancel + add). *)
    slot_unlink t i;
    t.e_gen.(i) <- (t.e_gen.(i) + 1) land gen_mask;
    requeue_fresh t i tick
  end
  else begin
    (* Buried in a heap: bury the old record dead, move the payload to a
       fresh one. *)
    let p = t.e_payload.(i) in
    t.e_where.(i) <- w_dead;
    t.e_payload.(i) <- t.dummy;
    t.e_gen.(i) <- (t.e_gen.(i) + 1) land gen_mask;
    let i' = alloc_entry t in
    t.e_payload.(i') <- p;
    requeue_fresh t i' tick
  end

let next_tick t =
  let i = find_min t in
  if i < 0 then no_tick else t.e_time.(i)

let[@hrt.cold] peek_time t =
  let i = find_min t in
  if i < 0 then None else Some (Int64.of_int t.e_time.(i))

let take t =
  let i = find_min t in
  if i < 0 then none
  else begin
    remove_min t i;
    t.e_where.(i) <- w_inflight;
    t.live <- t.live - 1;
    mk_handle t i
  end

let inflight_tick t h = t.e_time.(h land idx_mask)
let payload t h = t.e_payload.(h land idx_mask)

let finish t h =
  let i = h land idx_mask in
  free_entry t i

let defer_inflight t h ~time =
  (* Re-insert a taken entry (engine freeze deferral / busy-window
     gating) with a fresh sequence number but the SAME generation: the
     handle the owner holds stays valid, so a later precise cancel still
     reaches the deferred event. *)
  let i = h land idx_mask in
  t.e_time.(i) <- tick_of_time time;
  t.e_seq.(i) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  place t i;
  t.live <- t.live + 1

let[@hrt.cold] pop t =
  let h = take t in
  if h < 0 then None
  else begin
    let i = h land idx_mask in
    let p = t.e_payload.(i) in
    let time = Int64.of_int t.e_time.(i) in
    finish t h;
    Some (time, p)
  end
