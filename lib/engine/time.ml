type ns = int64

let zero = 0L

let ns n = Int64.of_int n
let us n = Int64.mul (Int64.of_int n) 1_000L
let ms n = Int64.mul (Int64.of_int n) 1_000_000L
let sec n = Int64.mul (Int64.of_int n) 1_000_000_000L

let of_float_us x = Int64.of_float (Float.round (x *. 1_000.))
let to_float_us t = Int64.to_float t /. 1_000.
let to_float_ms t = Int64.to_float t /. 1_000_000.
let to_float_s t = Int64.to_float t /. 1_000_000_000.

let ( + ) = Int64.add
let ( - ) = Int64.sub
let ( * ) t n = Int64.mul t (Int64.of_int n)
let ( / ) t n = Int64.div t (Int64.of_int n)
let ( < ) (a : ns) b = Int64.compare a b < 0
let ( <= ) (a : ns) b = Int64.compare a b <= 0
let ( > ) (a : ns) b = Int64.compare a b > 0
let ( >= ) (a : ns) b = Int64.compare a b >= 0

let min (a : ns) b = if a <= b then a else b
let max (a : ns) b = if a >= b then a else b

(* Frequencies of interest (1.3, 2.2 GHz) are exactly representable as small
   rationals over 10, so going through float on values far below 2^53 is
   exact enough: the round-trip error is below one cycle. *)
let cycles_of_ns ~ghz t = Int64.of_float (Int64.to_float t *. ghz)

let ns_of_cycles ~ghz c =
  Int64.of_float (Float.ceil (Int64.to_float c /. ghz))

let pp fmt t =
  let f = Int64.to_float t in
  let af = Float.abs f in
  if Stdlib.( >= ) af 1e9 then Format.fprintf fmt "%.3fs" (f /. 1e9)
  else if Stdlib.( >= ) af 1e6 then Format.fprintf fmt "%.3fms" (f /. 1e6)
  else if Stdlib.( >= ) af 1e3 then Format.fprintf fmt "%.3fus" (f /. 1e3)
  else Format.fprintf fmt "%Ldns" t
