(** Discrete-event simulation engine.

    The engine owns simulated wall-clock time and a cancellable event queue
    (a hierarchical timing wheel, {!Event_queue}). It also implements the one
    hardware behaviour that cuts across every subsystem: SMI-style
    {e freezes}, during which all CPUs stop but time keeps advancing
    ("missing time", paper Section 3.6). A freeze defers every event that
    would fire inside the frozen window to the end of the window, preserving
    relative order, and records the window so that thread progress accounting
    can subtract it.

    {2 Actions}

    An event's payload is an {!action}. Hot subsystems (APIC timers, SMI
    generators, IRQ devices, scheduler kicks, fault injectors) register a
    handler once ({!register_source}), cache the single action value naming
    it, and schedule that value over and over: together with the queue's
    entry pool this makes steady-state event traffic allocation-free. The
    [Callback] constructor keeps the classic closure interface for cold
    paths and tests. *)

type t

(** What to run when an event fires. The [int] carried by every
    constructor except [Callback] is a key from {!register_source}; the
    constructors are distinct only so traces and debuggers can tell event
    kinds apart — the engine dispatches them identically. *)
type action =
  | Callback of (t -> unit)
  | Timer_fire of int  (** one-shot APIC timer expiry *)
  | Soft_invoke of int  (** software-requested scheduler pass *)
  | Complete of int  (** thread completion bookkeeping *)
  | Wake of int  (** cross-CPU kick (IPI) *)
  | Smi_fire of int  (** SMI generator expiry *)
  | Irq_pull of int  (** device interrupt arrival *)
  | Fault_tick of int  (** fault-injection plan step *)

type handle = Event_queue.handle
(** Handle to a scheduled event, usable for cancellation. Immediate and
    generation-checked: after the event fires or is cancelled the handle
    goes stale and {!cancel} on it is a no-op. *)

val no_handle : handle
(** A handle that never names a live event; {!cancel} ignores it. *)

val create : ?seed:int64 -> unit -> t
(** A fresh engine at time 0. [seed] defaults to 42. *)

val now : t -> Time.ns
val rng : t -> Rng.t

val register_source : t -> (t -> unit) -> int
(** Register a long-lived event handler; returns the key to embed in a
    (cached) non-[Callback] action. Sources are never unregistered. *)

val schedule_action : t -> at:Time.ns -> action -> handle
(** Schedule an action at absolute time [at]. Raises [Invalid_argument]
    if [at] is earlier than {!now}. *)

val schedule_action_after : t -> after:Time.ns -> action -> handle
(** Schedule relative to {!now}. *)

val schedule : t -> at:Time.ns -> (t -> unit) -> handle
(** [schedule t ~at f] = [schedule_action t ~at (Callback f)]. *)

val schedule_after : t -> after:Time.ns -> (t -> unit) -> handle
(** Schedule a callback relative to {!now}. *)

val cancel : t -> handle -> unit
(** Idempotent; cancelling an already-fired event is a no-op. *)

val defer_current : t -> at:Time.ns -> unit
(** From inside an event handler: park the event being dispatched back
    into the queue to re-fire at [at] (with a fresh sequence number, so
    it queues behind events already scheduled there — identical ordering
    to cancelling and re-scheduling, but allocation-free). The entry's
    handle remains valid. Raises [Invalid_argument] outside a handler,
    if already deferred, or if [at] is in the past. *)

val freeze : t -> until:Time.ns -> unit
(** Enter (or extend) a frozen window ending at [until]. While frozen, no
    event executes; events due earlier are deferred to the window end. *)

val frozen_overlap : t -> Time.ns -> Time.ns -> Time.ns
(** [frozen_overlap t a b] is the total frozen time inside [\[a, b)]. Used to
    compute how much real progress a thread made while nominally running. *)

val total_frozen : t -> Time.ns
(** Total missing time injected so far. *)

val run : ?until:Time.ns -> ?max_events:int -> t -> unit
(** Execute events in order until the queue is empty, [until] is reached, or
    [max_events] callbacks have run. When stopping at [until], {!now} is set
    to [until]. *)

val stop : t -> unit
(** Stop the current {!run} after the in-flight callback returns. *)

val events_executed : t -> int
(** Number of callbacks executed so far (a cheap progress/perf metric). *)

val pending : t -> int
(** Number of live events still queued, O(1). *)

val pending_events : t -> int
(** Alias of {!pending} (the name the observability gauge uses). *)

val max_queue_depth : t -> int
(** High-water mark of {!pending} over the engine's lifetime (an event-loop
    health metric; exported by the observability layer). *)
