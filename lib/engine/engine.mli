(** Discrete-event simulation engine.

    The engine owns simulated wall-clock time and a cancellable event queue.
    It also implements the one hardware behaviour that cuts across every
    subsystem: SMI-style {e freezes}, during which all CPUs stop but time
    keeps advancing ("missing time", paper Section 3.6). A freeze defers
    every event that would fire inside the frozen window to the end of the
    window, preserving relative order, and records the window so that thread
    progress accounting can subtract it. *)

type t

type handle
(** Handle to a scheduled callback, usable for cancellation. *)

val create : ?seed:int64 -> unit -> t
(** A fresh engine at time 0. [seed] defaults to 42. *)

val now : t -> Time.ns
val rng : t -> Rng.t

val schedule : t -> at:Time.ns -> (t -> unit) -> handle
(** Schedule a callback at absolute time [at]. Raises [Invalid_argument] if
    [at] is earlier than {!now}. *)

val schedule_after : t -> after:Time.ns -> (t -> unit) -> handle
(** Schedule relative to {!now}. *)

val cancel : t -> handle -> unit
(** Idempotent; cancelling an already-fired event is a no-op. *)

val freeze : t -> until:Time.ns -> unit
(** Enter (or extend) a frozen window ending at [until]. While frozen, no
    event executes; events due earlier are deferred to the window end. *)

val frozen_overlap : t -> Time.ns -> Time.ns -> Time.ns
(** [frozen_overlap t a b] is the total frozen time inside [\[a, b)]. Used to
    compute how much real progress a thread made while nominally running. *)

val total_frozen : t -> Time.ns
(** Total missing time injected so far. *)

val run : ?until:Time.ns -> ?max_events:int -> t -> unit
(** Execute events in order until the queue is empty, [until] is reached, or
    [max_events] callbacks have run. When stopping at [until], {!now} is set
    to [until]. *)

val stop : t -> unit
(** Stop the current {!run} after the in-flight callback returns. *)

val events_executed : t -> int
(** Number of callbacks executed so far (a cheap progress/perf metric). *)

val pending : t -> int
(** Number of live events still queued. *)

val max_queue_depth : t -> int
(** High-water mark of {!pending} over the engine's lifetime (an event-loop
    health metric; exported by the observability layer). *)
