(** The admission serving daemon behind [hrt_sim serve].

    A long-running concurrent front-end to the memoized
    {!Hrt_analysis.Service}: clients connect over a Unix-domain socket
    (and optionally TCP on localhost), speak {!Protocol} frames, and get
    one reply per request. Requests land in a bounded FIFO queue drained
    in batches through [Service.batch], fanning analyses across a
    {!Hrt_par.Par.Pool} — so a burst of distinct task sets uses every
    worker domain while repeats are cache hits.

    The server applies admission-themed backpressure to {e itself}
    rather than stalling or dropping connections:

    - {e load shedding} — once the queue holds [max_queue] requests, new
      queries are answered immediately with the stable
      [rejected overloaded] verdict;
    - {e per-request deadlines} — a request whose [@ms] deadline (or the
      server default) passes while queued is answered
      [rejected expired], never served late;
    - {e graceful drain} — on SIGTERM or a [drain] request the server
      stops accepting, answers everything already queued, flushes every
      connection, emits final stats, and returns from {!run}.

    Replies on one connection are delivered in request order even when
    the work completes out of order (per-connection reply slots), so
    pipelined clients can match replies positionally. Every accepted
    request gets exactly one reply; protocol errors are answered with a
    typed [error] frame (framing errors close the connection after the
    reply, since the stream cannot be resynchronized). *)

open Hrt_core

type config = {
  policy : Config.policy;
  platform : Hrt_hw.Platform.t;
  raw : bool;  (** analyze the raw-feasibility view instead of production *)
  jobs : int;  (** worker-domain fan-out for each dispatch batch *)
  max_queue : int;  (** queued requests beyond which queries are shed *)
  max_batch : int;  (** requests served per dispatch batch *)
  max_frame : int;  (** per-frame payload cap handed to the {!Protocol.Decoder} *)
  default_deadline_ms : int option;
      (** applied to requests that carry no [@ms] token *)
}

val default_config : config
(** EDF, phi, production view, jobs 4, max_queue 256, max_batch 64,
    {!Protocol.default_max_frame}, no default deadline. *)

type t

val create :
  ?tcp_port:int ->
  ?sink:Hrt_obs.Sink.t ->
  ?trace_out:string ->
  socket:string ->
  config ->
  t
(** Bind the Unix-domain socket at [socket] (an existing stale socket
    file is replaced) and, with [tcp_port], a TCP listener on
    127.0.0.1:[tcp_port] (0 picks an ephemeral port, see {!tcp_port}).
    With an enabled [sink], serving gauges ([serve.queue.depth],
    [serve.inflight], [serve.shed], [serve.served], [serve.expired],
    [serve.conns]) are registered next to the service's [admit.cache.*]
    probes and sampled at drain. [trace_out] records one Chrome-trace
    span per request (verb, queue+service time, outcome) written at
    drain. Raises [Unix.Unix_error] if binding fails. *)

val tcp_port : t -> int option
(** The bound TCP port, once created (resolves an ephemeral request). *)

val request_drain : t -> unit
(** Ask the running server to drain; safe from any domain or from a
    signal handler. {!run} returns once everything queued is answered
    and flushed. *)

val run : ?install_sigterm:bool -> t -> unit
(** Serve until drained. With [install_sigterm] (daemon mode), SIGTERM
    triggers {!request_drain}. The final stats line is printed to stderr
    on return. *)

val stats_line : t -> string
(** The machine-readable stats payload (same fields as the [stats]
    verb). *)
