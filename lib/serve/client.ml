open Hrt_engine
module Clock = Hrt_harness.Clock

type addr = Unix_path of string | Tcp of string * int

type t = {
  fd : Unix.file_descr;
  dec : Protocol.Decoder.t;
  timeout_s : float;
}

let connect ?(timeout_ms = 2000) addr =
  let domain, sockaddr =
    match addr with
    | Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  match
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | () -> fd
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  with
  | fd ->
    Ok { fd; dec = Protocol.Decoder.create (); timeout_s = float_of_int timeout_ms /. 1000. }
  | exception Unix.Unix_error (err, _, _) ->
    Error (Printf.sprintf "connect: %s" (Unix.error_message err))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t payload =
  let wire = Bytes.of_string (Protocol.frame payload) in
  let len = Bytes.length wire in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write t.fd wire off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (err, _, _) ->
        Error (Printf.sprintf "send: %s" (Unix.error_message err))
  in
  go 0

let recv t =
  let buf = Bytes.create 8192 in
  let deadline = Clock.now () +. t.timeout_s in
  let rec go () =
    match Protocol.Decoder.next t.dec with
    | `Frame payload -> Protocol.parse_reply payload
    | `Error e -> Error (Protocol.describe_error e)
    | `Await -> (
      let remaining = deadline -. Clock.now () in
      if remaining <= 0. then Error "timeout awaiting reply"
      else
        match Unix.select [ t.fd ] [] [] remaining with
        | [], _, _ -> Error "timeout awaiting reply"
        | _ :: _, _, _ -> (
          match Unix.read t.fd buf 0 (Bytes.length buf) with
          | 0 -> (
            match Protocol.Decoder.eof t.dec with
            | `Clean -> Error "connection closed by server"
            | `Error e -> Error (Protocol.describe_error e))
          | n ->
            Protocol.Decoder.feed t.dec buf 0 n;
            go ()
          | exception Unix.Unix_error (err, _, _) ->
            Error (Printf.sprintf "recv: %s" (Unix.error_message err)))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let request t payload =
  match send t payload with Ok () -> recv t | Error _ as e -> e

let call ?(attempts = 5) ?(base_backoff_ms = 25.) ?(timeout_ms = 2000)
    ?(seed = 0x5e7eb0ffL) addr payload =
  let rng = Rng.create seed in
  let rec go attempt last_err =
    if attempt >= attempts then
      Error (Printf.sprintf "%d attempts failed; last: %s" attempts last_err)
    else begin
      let backoff () =
        (* Jittered exponential backoff: full-jitter on [0.5, 1.5) times
           the doubling base, so retrying clients spread out. *)
        let factor = Float.of_int (1 lsl Stdlib.min attempt 10) in
        let jitter = 0.5 +. Rng.float rng in
        Unix.sleepf (base_backoff_ms /. 1000. *. factor *. jitter)
      in
      match connect ~timeout_ms addr with
      | Error msg ->
        backoff ();
        go (attempt + 1) msg
      | Ok conn -> (
        match request conn payload with
        | Ok reply ->
          close conn;
          Ok reply
        | Error msg ->
          close conn;
          backoff ();
          go (attempt + 1) msg)
    end
  in
  go 0 "no attempt made"
