(** A small client for the admission serving daemon.

    Used by [hrt_sim serve --client], the test suite, and CI. All
    receive paths are bounded by a timeout, and the one-shot {!call}
    helper retries with jittered exponential backoff — attempt [i]
    sleeps [base * 2^i * (0.5 + u)] with [u] drawn from the seeded
    {!Hrt_engine.Rng} — so a client racing a daemon that is still
    booting converges without thundering in lock-step. *)

type addr = Unix_path of string | Tcp of string * int

type t

val connect : ?timeout_ms:int -> addr -> (t, string) result
(** One connection attempt (default timeout 2000 ms, applied to
    receives on the resulting connection). *)

val close : t -> unit

val send : t -> string -> (unit, string) result
(** Frame and send one request payload without waiting — pipelining. *)

val recv : t -> (Protocol.reply, string) result
(** Await the next reply frame, bounded by the connection timeout. *)

val request : t -> string -> (Protocol.reply, string) result
(** [send] then [recv]. *)

val call :
  ?attempts:int ->
  ?base_backoff_ms:float ->
  ?timeout_ms:int ->
  ?seed:int64 ->
  addr ->
  string ->
  (Protocol.reply, string) result
(** One-shot RPC with bounded retries: a fresh connection per attempt
    (default 5 attempts, base backoff 25 ms, timeout 2000 ms); any
    connect/send/receive failure backs off and retries, the last error
    is returned when attempts are exhausted. Safe for the idempotent
    serving verbs (queries are pure, [stats]/[drain] are
    idempotent). *)
