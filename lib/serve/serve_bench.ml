open Hrt_engine
module Clock = Hrt_harness.Clock

type result = {
  sets : int;
  repeats : int;
  jobs : int;
  cold_seconds : float;
  warm_seconds : float;
  cold_qps : float;
  warm_qps : float;
  warm_speedup : float;
  batch_qps : float;
  batch_size : int;
  identical : bool;
  shed : int;
  hits : int;
  misses : int;
}

(* Same corpus shape as Admit_bench: 6-12 tasks over near-harmonic
   periods (252 ms lcm), ~50-90% total utilization — a cold query walks
   thousands of EDF demand points, a warm one is a fingerprint plus a
   lookup. Rendered as protocol spec tokens, since these sets travel the
   wire. *)
let gen_specs ~seed index =
  let palette = [| 500; 600; 700; 800; 900; 1000 |] in
  let rng = Rng.create Int64.(add seed (mul 998_244_353L (of_int index))) in
  let n = 6 + Rng.int rng 7 in
  let target = 0.5 +. (0.4 *. Rng.float rng) in
  let specs =
    List.init n (fun _ ->
        let period_us = palette.(Rng.int rng (Array.length palette)) in
        let share = target /. float_of_int n in
        let slice_us =
          Stdlib.min period_us
            (Stdlib.max 5 (int_of_float (float_of_int period_us *. share)))
        in
        Printf.sprintf "P:%d:%d" period_us slice_us)
  in
  String.concat " " specs

let sock_path =
  let counter = Atomic.make 0 in
  fun () ->
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hrt-serve-%d-%d.sock" (Unix.getpid ())
         (Atomic.fetch_and_add counter 1))

let fail fmt = Printf.ksprintf failwith fmt

let must = function
  | Ok v -> v
  | Error msg -> fail "servebench: %s" msg

let verdict_payload = function
  | Protocol.Verdicts _ as r -> Protocol.render_reply r
  | Protocol.Error_reply { code; detail } ->
    fail "servebench: server error %s: %s" code detail
  | Protocol.Stats_reply _ | Protocol.Draining _ ->
    fail "servebench: unexpected reply shape"

let stats_field reply key =
  match reply with
  | Protocol.Stats_reply kvs -> (
    match List.assoc_opt key kvs with
    | Some v -> int_of_float v
    | None -> fail "servebench: stats reply missing %s" key)
  | _ -> fail "servebench: expected a stats reply"

let measure ?(seed = 42L) ?(batch_size = 32) ~sets ~repeats ~jobs () =
  let corpus = List.init sets (fun i -> "query " ^ gen_specs ~seed i) in
  let path = sock_path () in
  let server =
    Server.create ~socket:path
      { Server.default_config with Server.jobs; max_queue = 4096 }
  in
  let srv_domain = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.request_drain server;
      Domain.join srv_domain;
      if Sys.file_exists path then try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let addr = Client.Unix_path path in
      (* First contact retries with backoff while the server boots. *)
      (match Client.call ~seed addr "stats" with
      | Ok _ -> ()
      | Error msg -> fail "servebench: server never came up: %s" msg);
      let conn = must (Client.connect addr) in
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let roundtrip payload =
            verdict_payload (must (Client.request conn payload))
          in
          let cold_seconds, cold_replies =
            Clock.timed (fun () -> List.map roundtrip corpus)
          in
          let identical = ref true in
          let warm_total, () =
            Clock.timed (fun () ->
                for _ = 1 to repeats do
                  List.iter2
                    (fun payload expect ->
                      if roundtrip payload <> expect then identical := false)
                    corpus cold_replies
                done)
          in
          (* Batch frames: group the same corpus [batch_size] sets per
             request. *)
          let batches =
            let rec go acc cur n = function
              | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
              | q :: rest ->
                let spec = String.sub q 6 (String.length q - 6) in
                if n + 1 >= batch_size then
                  go (List.rev (spec :: cur) :: acc) [] 0 rest
                else go acc (spec :: cur) (n + 1) rest
            in
            go [] [] 0 corpus
            |> List.map (fun specs -> "batch " ^ String.concat " ; " specs)
          in
          let batch_total, () =
            Clock.timed (fun () ->
                for _ = 1 to repeats do
                  List.iter (fun b -> ignore (roundtrip b)) batches
                done)
          in
          let stats = must (Client.request conn "stats") in
          let shed = stats_field stats "shed" in
          let hits = stats_field stats "hits" in
          let misses = stats_field stats "misses" in
          let qps n seconds =
            if seconds > 0. then float_of_int n /. seconds else 0.
          in
          let cold_qps = qps sets cold_seconds in
          let warm_qps = qps (sets * repeats) warm_total in
          {
            sets;
            repeats;
            jobs;
            cold_seconds;
            warm_seconds = warm_total /. float_of_int repeats;
            cold_qps;
            warm_qps;
            warm_speedup = (if cold_qps > 0. then warm_qps /. cold_qps else 0.);
            batch_qps = qps (sets * repeats) batch_total;
            batch_size;
            identical = !identical;
            shed;
            hits;
            misses;
          }))

(* ---- JSON artifact (same hand-rolled flat style as BENCH_admit) ---- *)

let to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hrt-serve-bench/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"sets\": %d,\n" r.sets);
  Buffer.add_string b (Printf.sprintf "  \"repeats\": %d,\n" r.repeats);
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" r.jobs);
  Buffer.add_string b
    (Printf.sprintf "  \"warm_queries_per_sec\": %.0f,\n" r.warm_qps);
  Buffer.add_string b
    (Printf.sprintf "  \"cold_queries_per_sec\": %.0f,\n" r.cold_qps);
  Buffer.add_string b
    (Printf.sprintf "  \"warm_speedup_vs_cold\": %.2f,\n" r.warm_speedup);
  Buffer.add_string b
    (Printf.sprintf "  \"batch_queries_per_sec\": %.0f,\n" r.batch_qps);
  Buffer.add_string b (Printf.sprintf "  \"batch_size\": %d,\n" r.batch_size);
  Buffer.add_string b (Printf.sprintf "  \"identical\": %b,\n" r.identical);
  Buffer.add_string b (Printf.sprintf "  \"shed\": %d,\n" r.shed);
  Buffer.add_string b (Printf.sprintf "  \"cache_hits\": %d,\n" r.hits);
  Buffer.add_string b (Printf.sprintf "  \"cache_misses\": %d\n" r.misses);
  Buffer.add_string b "}\n";
  Buffer.contents b

let write r ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json r))

let scan_field text key =
  let needle = Printf.sprintf "\"%s\":" key in
  let nlen = String.length needle in
  let len = String.length text in
  let rec find from =
    if from + nlen > len then None
    else if String.sub text from nlen = needle then Some (from + nlen)
    else find (from + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < len
      && (match text.[!stop] with
         | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | ' ' -> true
         | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.trim (String.sub text start (!stop - start)))

let baseline_warm_qps ~path =
  if not (Sys.file_exists path) then Error (path ^ ": no such baseline")
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match scan_field text "warm_queries_per_sec" with
    | Some v when v > 0. -> Ok v
    | _ -> Error (path ^ ": no warm_queries_per_sec field")
  end

let check_against r ~path ~tolerance =
  match baseline_warm_qps ~path with
  | Error _ as e -> e
  | Ok base ->
    let floor = base *. (1. -. tolerance) in
    if r.warm_qps >= floor then Ok base
    else
      Error
        (Printf.sprintf
           "warm serving regression: measured %.0f q/s < %.0f (baseline %.0f, \
            tolerance %.0f%%)"
           r.warm_qps floor base (100. *. tolerance))
