open Hrt_engine
open Hrt_core

let magic = "hrt1"
let default_max_frame = 65536

type error =
  | Bad_magic of string
  | Bad_length of string
  | Frame_too_large of { len : int; max : int }
  | Truncated of { wanted : int; got : int }
  | Bad_verb of string
  | Bad_request of string
  | Bad_deadline of string
  | Bad_spec of { index : int; msg : string }

let error_code = function
  | Bad_magic _ -> "bad-magic"
  | Bad_length _ -> "bad-length"
  | Frame_too_large _ -> "frame-too-large"
  | Truncated _ -> "truncated"
  | Bad_verb _ -> "bad-verb"
  | Bad_request _ -> "bad-request"
  | Bad_deadline _ -> "bad-deadline"
  | Bad_spec _ -> "bad-spec"

(* Keep peer-controlled junk out of the reply payload: frames carry one
   logical line, so anything echoed back is clipped and de-newlined. *)
let sanitize s =
  let s = if String.length s > 32 then String.sub s 0 32 ^ "..." else s in
  String.map (fun c -> if c = '\n' || c = '\r' then '.' else c) s

let describe_error = function
  | Bad_magic got ->
    Printf.sprintf "expected frame magic %S, got %S" magic (sanitize got)
  | Bad_length got ->
    Printf.sprintf "frame length is not a decimal number: %S" (sanitize got)
  | Frame_too_large { len; max } ->
    Printf.sprintf "frame payload of %d bytes exceeds the %d-byte cap" len max
  | Truncated { wanted; got } ->
    if wanted = 0 then
      Printf.sprintf "stream ended mid-header (%d bytes)" got
    else
      Printf.sprintf "stream ended mid-frame (%d of %d payload bytes)" got
        wanted
  | Bad_verb v ->
    Printf.sprintf "unknown verb %S (query, batch, stats, drain)" (sanitize v)
  | Bad_request msg -> msg
  | Bad_deadline got ->
    Printf.sprintf "deadline token %S is not @<milliseconds>" (sanitize got)
  | Bad_spec { index; msg } -> Printf.sprintf "spec %d: %s" (index + 1) msg

(* ---- framing ---- *)

let frame payload =
  Printf.sprintf "%s %d\n%s" magic (String.length payload) payload

module Decoder = struct
  (* hrt1<sp> + at most 10 length digits + newline. *)
  let max_header = String.length magic + 1 + 10 + 1

  type state = Header | Body of int | Failed of error

  type t = {
    mutable acc : Buffer.t;
    mutable state : state;
    max_frame : int;
  }

  let create ?(max_frame = default_max_frame) () =
    { acc = Buffer.create 256; state = Header; max_frame }

  let feed t b off len =
    match t.state with
    | Failed _ -> ()
    | Header | Body _ -> Buffer.add_subbytes t.acc b off len

  let feed_string t s =
    match t.state with
    | Failed _ -> ()
    | Header | Body _ -> Buffer.add_string t.acc s

  let consume t n =
    let rest = Buffer.sub t.acc n (Buffer.length t.acc - n) in
    let acc = Buffer.create (Stdlib.max 256 (String.length rest)) in
    Buffer.add_string acc rest;
    t.acc <- acc

  let fail t e =
    t.state <- Failed e;
    `Error e

  (* The header is complete when its newline is in the buffer; anything
     longer than [max_header] without one has lost framing. *)
  let try_header t =
    let len = Buffer.length t.acc in
    let limit = Stdlib.min len max_header in
    let nl = ref (-1) in
    (try
       for i = 0 to limit - 1 do
         if Buffer.nth t.acc i = '\n' then begin
           nl := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !nl < 0 then
      if len >= max_header then
        let prefix = Buffer.sub t.acc 0 (Stdlib.min len max_header) in
        if
          len >= String.length magic + 1
          && String.sub prefix 0 (String.length magic + 1) <> magic ^ " "
        then fail t (Bad_magic prefix)
        else fail t (Bad_length prefix)
      else `Await
    else begin
      let header = Buffer.sub t.acc 0 !nl in
      let tag = magic ^ " " in
      if
        String.length header < String.length tag
        || String.sub header 0 (String.length tag) <> tag
      then fail t (Bad_magic header)
      else begin
        let digits =
          String.sub header (String.length tag)
            (String.length header - String.length tag)
        in
        match int_of_string_opt digits with
        | Some n when n >= 0 ->
          if n > t.max_frame then
            fail t (Frame_too_large { len = n; max = t.max_frame })
          else begin
            consume t (!nl + 1);
            t.state <- Body n;
            `Header
          end
        | _ -> fail t (Bad_length digits)
      end
    end

  let rec next t =
    match t.state with
    | Failed e -> `Error e
    | Header -> (
      match try_header t with
      | `Await -> `Await
      | `Error e -> `Error e
      | `Header -> next t)
    | Body n ->
      if Buffer.length t.acc < n then `Await
      else begin
        let payload = Buffer.sub t.acc 0 n in
        consume t n;
        t.state <- Header;
        `Frame payload
      end

  let eof t =
    match t.state with
    | Failed e -> `Error e
    | Body n -> `Error (Truncated { wanted = n; got = Buffer.length t.acc })
    | Header ->
      if Buffer.length t.acc = 0 then `Clean
      else `Error (Truncated { wanted = 0; got = Buffer.length t.acc })
end

(* ---- requests ---- *)

type request =
  | Query of { deadline_ms : int option; specs : Constraints.t list }
  | Batch of { deadline_ms : int option; sets : Constraints.t list list }
  | Stats
  | Drain

let parse_spec s =
  let pos name v =
    match int_of_string_opt v with
    | Some n when n > 0 -> Ok (Time.us n)
    | _ ->
      Error
        (Printf.sprintf "%s: %s must be a positive integer" (sanitize s) name)
  in
  let ( let* ) = Result.bind in
  match String.split_on_char ':' (String.uppercase_ascii s) with
  | [ "A" ] -> Ok (Constraints.aperiodic ())
  | [ "P"; period; slice ] ->
    let* period = pos "period_us" period in
    let* slice = pos "slice_us" slice in
    Ok (Constraints.periodic ~period ~slice ())
  | [ "S"; size; deadline ] ->
    let* size = pos "size_us" size in
    let* deadline = pos "deadline_us" deadline in
    Ok (Constraints.sporadic ~size ~deadline ())
  | _ ->
    Error
      (sanitize s
      ^ ": expected P:<period_us>:<slice_us>, S:<size_us>:<deadline_us>, or A"
      )

let tokens_of payload =
  String.split_on_char ' ' payload
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_deadline = function
  | tok :: rest when String.length tok > 0 && tok.[0] = '@' -> (
    let digits = String.sub tok 1 (String.length tok - 1) in
    match int_of_string_opt digits with
    | Some ms when ms >= 0 -> Ok (Some ms, rest)
    | _ -> Error (Bad_deadline tok))
  | toks -> Ok (None, toks)

let parse_specs toks =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
      match parse_spec tok with
      | Ok c -> go (i + 1) (c :: acc) rest
      | Error msg -> Error (Bad_spec { index = i; msg }))
  in
  go 0 [] toks

(* Split batch tokens on ";" separators. A ";" glued to a spec token is
   split off first — "P:1:2; P:3:4", "P:1:2 ;P:3:4", and "P:1:2 ; P:3:4"
   all read as two sets. *)
let split_sets toks =
  let explode tok =
    match String.split_on_char ';' tok with
    | [ _ ] -> [ tok ]
    | parts ->
      let rec interleave = function
        | [] -> []
        | [ last ] -> [ last ]
        | part :: rest -> part :: ";" :: interleave rest
      in
      List.filter (fun t -> t <> "") (interleave parts)
  in
  let rec go cur acc = function
    | [] -> List.rev (List.rev cur :: acc)
    | ";" :: rest -> go [] (List.rev cur :: acc) rest
    | tok :: rest -> go (tok :: cur) acc rest
  in
  go [] [] (List.concat_map explode toks)

let parse_request payload =
  let ( let* ) = Result.bind in
  match tokens_of payload with
  | [] -> Error (Bad_request "empty request")
  | [ "stats" ] -> Ok Stats
  | "stats" :: _ -> Error (Bad_request "stats takes no arguments")
  | [ "drain" ] -> Ok Drain
  | "drain" :: _ -> Error (Bad_request "drain takes no arguments")
  | "query" :: rest ->
    let* deadline_ms, rest = parse_deadline rest in
    if rest = [] then Error (Bad_request "query needs at least one spec")
    else if List.exists (fun t -> String.contains t ';') rest then
      Error (Bad_request "query takes one task set; use batch for several")
    else
      let* specs = parse_specs rest in
      Ok (Query { deadline_ms; specs })
  | "batch" :: rest ->
    let* deadline_ms, rest = parse_deadline rest in
    if rest = [] then Error (Bad_request "batch needs at least one set")
    else
      let sets = split_sets rest in
      if List.exists (fun set -> set = []) sets then
        Error (Bad_request "batch has an empty task set")
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | set :: rest -> (
            match parse_specs set with
            | Ok specs -> go (specs :: acc) rest
            | Error _ as e -> e)
        in
        let* sets = go [] sets in
        Ok (Batch { deadline_ms; sets })
  | verb :: _ -> Error (Bad_verb verb)

(* ---- replies ---- *)

type verdict = Admitted of float | Rejected of string

let verdict_of_oracle = function
  | Admission.Admitted { headroom } -> Admitted headroom
  | Admission.Rejected { reason } -> Rejected (Admission.Rejection.name reason)

let overloaded = Rejected "overloaded"
let expired = Rejected "expired"

type reply =
  | Verdicts of verdict list
  | Stats_reply of (string * float) list
  | Draining of { pending : int }
  | Error_reply of { code : string; detail : string }

let render_verdict = function
  | Admitted headroom -> Printf.sprintf "admitted %.6f" headroom
  | Rejected reason -> "rejected " ^ reason

let render_reply = function
  | Verdicts vs -> String.concat "\n" (List.map render_verdict vs)
  | Stats_reply kvs ->
    "stats "
    ^ String.concat " "
        (List.map (fun (k, v) -> Printf.sprintf "%s=%.1f" k v) kvs)
  | Draining { pending } -> Printf.sprintf "draining pending=%d" pending
  | Error_reply { code; detail } ->
    Printf.sprintf "error %s %s" code (sanitize detail)

let error_reply e =
  Error_reply { code = error_code e; detail = describe_error e }

let parse_verdict line =
  match tokens_of line with
  | [ "admitted"; h ] -> (
    match float_of_string_opt h with
    | Some h -> Ok (Admitted h)
    | None -> Error ("bad headroom: " ^ sanitize h))
  | [ "rejected"; reason ] -> Ok (Rejected reason)
  | _ -> Error ("bad verdict line: " ^ sanitize line)

let parse_reply payload =
  match String.split_on_char '\n' payload with
  | [] -> Error "empty reply"
  | first :: _ as lines -> (
    match tokens_of first with
    | "stats" :: kvs ->
      let rec go acc = function
        | [] -> Ok (Stats_reply (List.rev acc))
        | kv :: rest -> (
          match String.index_opt kv '=' with
          | Some i -> (
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            match float_of_string_opt v with
            | Some v -> go ((k, v) :: acc) rest
            | None -> Error ("bad stats value: " ^ sanitize kv))
          | None -> Error ("bad stats field: " ^ sanitize kv))
      in
      go [] kvs
    | [ "draining"; kv ] -> (
      match String.index_opt kv '=' with
      | Some i -> (
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        match int_of_string_opt v with
        | Some pending -> Ok (Draining { pending })
        | None -> Error ("bad draining reply: " ^ sanitize payload))
      | None -> Error ("bad draining reply: " ^ sanitize payload))
    | "error" :: code :: detail ->
      Ok (Error_reply { code; detail = String.concat " " detail })
    | _ ->
      let rec go acc = function
        | [] -> Ok (Verdicts (List.rev acc))
        | line :: rest -> (
          match parse_verdict line with
          | Ok v -> go (v :: acc) rest
          | Error _ as e -> e)
      in
      go [] lines)
