(** The admission serving protocol (version 1).

    A length-prefixed, versioned line protocol, symmetric in both
    directions: every message is one {e frame} —

    {v hrt1 <len>\n<payload> v}

    where [<len>] is the payload byte count in ASCII decimal and the
    payload is a single logical line of text (no framing newline of its
    own; batch replies carry embedded newlines). The magic ["hrt1"] names
    protocol version 1; any other prefix is a typed {!error}, as is a
    length past the receiver's frame cap.

    Request payloads ({!request}):

    {v
    query [@<deadline_ms>] SPEC+
    batch [@<deadline_ms>] SPEC+ (; SPEC+)*
    stats
    drain
    v}

    with the same task specs as [hrt_sim admit]: [P:<period_us>:<slice_us>],
    [S:<size_us>:<deadline_us>], or [A]. The optional [@<ms>] token is a
    per-request service deadline: if the server cannot answer within it,
    the request is answered [rejected expired] rather than served late.

    Reply payloads ({!reply}): one verdict line per task set —
    [admitted <headroom>] or [rejected <reason>] — where [<reason>] is a
    stable kebab-case tag: the {!Hrt_core.Admission.Rejection.name} of an
    oracle rejection, or the server-side [overloaded] (queue-depth load
    shed / draining) and [expired] (deadline passed in queue) tags. Other
    replies: [stats k=v ...], [draining pending=<n>], and
    [error <code> <detail>].

    Malformed input of any kind — bad magic, unparsable length, oversized
    or truncated frames, junk verbs, malformed specs — yields a typed
    {!error}, never an exception: the {!Decoder} and parsers are total. *)

open Hrt_core

val magic : string
(** ["hrt1"]. *)

val default_max_frame : int
(** 65536 bytes of payload. *)

(** Every way a peer's bytes can be unusable, each with a stable code. *)
type error =
  | Bad_magic of string  (** frame does not start with [magic ^ " "] *)
  | Bad_length of string  (** length field not a decimal number *)
  | Frame_too_large of { len : int; max : int }
  | Truncated of { wanted : int; got : int }
      (** stream ended mid-frame; [wanted = 0] means mid-header *)
  | Bad_verb of string
  | Bad_request of string  (** well-formed verb, malformed shape *)
  | Bad_deadline of string
  | Bad_spec of { index : int; msg : string }

val error_code : error -> string
(** Stable kebab-case tag ("bad-magic", "frame-too-large", ...). *)

val describe_error : error -> string

(* ---- framing ---- *)

val frame : string -> string
(** [frame payload] is the wire form [hrt1 <len>\n<payload>]. *)

(** Incremental frame decoder: feed raw bytes as they arrive, pull
    complete payloads out. Errors are sticky — a stream that has lost
    framing cannot be resynchronized and the connection should be closed
    after reporting the error. Never raises on any input. *)
module Decoder : sig
  type t

  val create : ?max_frame:int -> unit -> t
  val feed : t -> bytes -> int -> int -> unit
  val feed_string : t -> string -> unit

  val next : t -> [ `Frame of string | `Await | `Error of error ]
  (** Pull the next complete payload, [`Await] when more bytes are
      needed. After an [`Error] every subsequent call returns the same
      error. *)

  val eof : t -> [ `Clean | `Error of error ]
  (** Call when the peer closes: [`Error (Truncated _)] if the stream
      ended mid-frame. *)
end

(* ---- requests ---- *)

type request =
  | Query of { deadline_ms : int option; specs : Constraints.t list }
  | Batch of { deadline_ms : int option; sets : Constraints.t list list }
  | Stats
  | Drain

val parse_spec : string -> (Constraints.t, string) result
(** One task-spec token ([P:..:..], [S:..:..], [A]); shared with the
    [hrt_sim admit] command line. *)

val parse_request : string -> (request, error) result

(* ---- replies ---- *)

type verdict = Admitted of float | Rejected of string

val verdict_of_oracle : Admission.verdict -> verdict
(** Fold a typed runtime verdict to its wire form (headroom, or the
    stable rejection-reason tag). *)

val overloaded : verdict
(** [Rejected "overloaded"] — the load-shed / draining answer. *)

val expired : verdict
(** [Rejected "expired"] — the per-request-deadline answer. *)

type reply =
  | Verdicts of verdict list  (** one line per task set, request order *)
  | Stats_reply of (string * float) list  (** key=value pairs, in order *)
  | Draining of { pending : int }
  | Error_reply of { code : string; detail : string }

val render_reply : reply -> string
val parse_reply : string -> (reply, string) result
(** Total inverses on well-formed payloads:
    [parse_reply (render_reply r) = Ok r] up to float formatting. *)

val error_reply : error -> reply
