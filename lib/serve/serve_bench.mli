(** Serving-throughput benchmark behind [hrt_sim servebench].

    Boots a real {!Server} on a private Unix-domain socket in a spawned
    domain, then drives it with the {!Client} over a randomized corpus of
    analysis-heavy task sets (the same near-harmonic shape as
    [admitbench], rendered as protocol specs):

    - {e cold}: every set queried once against the fresh service — each
      round trip pays for a full oracle analysis;
    - {e warm}: the same corpus repeated — each round trip is framing,
      a fingerprint, and a cache hit;
    - {e batch}: warm passes again, [batch_size] sets per frame — the
      amortized serving ceiling.

    The warm replies are compared byte-for-byte to the cold ones
    ([identical]); the headline [warm_queries_per_sec] backs the CI
    regression gate ([BENCH_serve.json]), and [warm_speedup_vs_cold]
    backs the ≥ 5x serving-memoization claim. *)

type result = {
  sets : int;
  repeats : int;
  jobs : int;
  cold_seconds : float;
  warm_seconds : float;  (** one warm pass over the corpus *)
  cold_qps : float;
  warm_qps : float;
  warm_speedup : float;  (** warm_qps / cold_qps *)
  batch_qps : float;  (** warm passes, [batch_size] sets per frame *)
  batch_size : int;
  identical : bool;  (** warm replies byte-identical to cold replies *)
  shed : int;  (** sets the server answered [overloaded] (expect 0) *)
  hits : int;
  misses : int;
}

val measure :
  ?seed:int64 -> ?batch_size:int -> sets:int -> repeats:int -> jobs:int ->
  unit -> result

val to_json : result -> string
val write : result -> path:string -> unit

val baseline_warm_qps : path:string -> (float, string) Result.t
(** The [warm_queries_per_sec] field of a committed artifact. *)

val check_against :
  result -> path:string -> tolerance:float -> (float, string) Result.t
(** Compare warm serving throughput to the committed baseline:
    [Ok baseline] when within [tolerance] (a fraction), [Error message]
    on regression or unreadable baseline. *)
