open Hrt_core
open Hrt_analysis
open Hrt_par
module Clock = Hrt_harness.Clock

type config = {
  policy : Config.policy;
  platform : Hrt_hw.Platform.t;
  raw : bool;
  jobs : int;
  max_queue : int;
  max_batch : int;
  max_frame : int;
  default_deadline_ms : int option;
}

let default_config =
  {
    policy = Config.Edf;
    platform = Hrt_hw.Platform.phi;
    raw = false;
    jobs = 4;
    max_queue = 256;
    max_batch = 64;
    max_frame = Protocol.default_max_frame;
    default_deadline_ms = None;
  }

(* A reply slot: filled when the request's answer is known, flushed to
   the socket only when every earlier slot of the same connection has
   been flushed — replies leave in request order. *)
type slot = { mutable reply : string option }

type conn = {
  fd : Unix.file_descr;
  dec : Protocol.Decoder.t;
  out : Buffer.t;
  mutable out_pos : int;  (* bytes of [out] already written *)
  slots : slot Queue.t;
  mutable reading : bool;  (* false after EOF or a fatal framing error *)
  mutable fatal : bool;  (* close once slots are answered and flushed *)
  mutable open_ : bool;
}

type work = {
  slot : slot;
  sets : Taskset.t list;
  arrival_ns : int64;
  deadline_ns : int64 option;  (* absolute, monotonic *)
  verb : string;
}

type span = {
  sp_verb : string;
  sp_ts_us : float;  (* arrival, relative to server start *)
  sp_dur_us : float;
  sp_sets : int;
  sp_outcome : string;
}

type t = {
  cfg : config;
  unix_path : string;
  listeners : Unix.file_descr list;
  bound_tcp : int option;
  svc : Service.t;
  pool : Par.Pool.t;
  sink : Hrt_obs.Sink.t;
  trace_out : string option;
  started_ns : int64;
  queue : work Queue.t;
  mutable conns : conn list;
  drain : bool Atomic.t;
  mutable accepting : bool;
  latency : Hrt_stats.Percentile.t;
  mutable spans : span list;  (* newest first *)
  (* counters (single-threaded loop; probes sampled on the same domain) *)
  mutable served : int;  (* task sets answered through the service *)
  mutable shed : int;  (* task sets answered "overloaded" *)
  mutable expired : int;  (* task sets answered "expired" *)
  mutable proto_errors : int;
  mutable accepted_conns : int;
  mutable requests : int;  (* frames parsed into a request *)
  mutable replies : int;  (* reply frames queued for flush *)
  mutable inflight : int;  (* slots not yet filled *)
}

let taskset_of t specs =
  if t.cfg.raw then Taskset.raw_view ~policy:t.cfg.policy specs
  else
    Taskset.production_view ~policy:t.cfg.policy ~platform:t.cfg.platform specs

let listen_unix path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  (fd, bound)

let create ?tcp_port ?(sink = Hrt_obs.Sink.null) ?trace_out ~socket cfg =
  let ufd = listen_unix socket in
  let tcp = Option.map listen_tcp tcp_port in
  let t =
    {
      cfg;
      unix_path = socket;
      listeners = ufd :: (match tcp with Some (fd, _) -> [ fd ] | None -> []);
      bound_tcp = Option.map snd tcp;
      svc = Service.create ();
      pool = Par.Pool.create ~jobs:cfg.jobs;
      sink;
      trace_out;
      started_ns = Clock.now_ns ();
      queue = Queue.create ();
      conns = [];
      drain = Atomic.make false;
      accepting = true;
      latency = Hrt_stats.Percentile.create ();
      spans = [];
      served = 0;
      shed = 0;
      expired = 0;
      proto_errors = 0;
      accepted_conns = 0;
      requests = 0;
      replies = 0;
      inflight = 0;
    }
  in
  if Hrt_obs.Sink.enabled sink then begin
    Service.register_probes t.svc sink;
    let gauge name read = Hrt_obs.Sink.add_probe sink ~name read in
    gauge "serve.queue.depth" (fun () -> float_of_int (Queue.length t.queue));
    gauge "serve.inflight" (fun () -> float_of_int t.inflight);
    gauge "serve.shed" (fun () -> float_of_int t.shed);
    gauge "serve.expired" (fun () -> float_of_int t.expired);
    gauge "serve.served" (fun () -> float_of_int t.served);
    gauge "serve.conns" (fun () -> float_of_int (List.length t.conns))
  end;
  t

let tcp_port t = t.bound_tcp
let request_drain t = Atomic.set t.drain true

(* ---- stats ---- *)

let percentile_or_zero p q =
  if Hrt_stats.Percentile.count p = 0 then 0.
  else Hrt_stats.Percentile.value p q

let stats_fields t =
  [
    ("served", float_of_int t.served);
    ("shed", float_of_int t.shed);
    ("expired", float_of_int t.expired);
    ("errors", float_of_int t.proto_errors);
    ("requests", float_of_int t.requests);
    ("replies", float_of_int t.replies);
    ("queue", float_of_int (Queue.length t.queue));
    ("inflight", float_of_int t.inflight);
    ("conns", float_of_int (List.length t.conns));
    ("hits", float_of_int (Service.stats t.svc).Service.hits);
    ("misses", float_of_int (Service.stats t.svc).Service.misses);
    ("evictions", float_of_int (Service.stats t.svc).Service.evictions);
    ("entries", float_of_int (Service.stats t.svc).Service.entries);
    ("p50_us", percentile_or_zero t.latency 50.);
    ("p95_us", percentile_or_zero t.latency 95.);
    ("p99_us", percentile_or_zero t.latency 99.);
  ]

let stats_line t = Protocol.render_reply (Protocol.Stats_reply (stats_fields t))

(* ---- reply plumbing ---- *)

let new_slot t conn =
  let slot = { reply = None } in
  Queue.push slot conn.slots;
  t.inflight <- t.inflight + 1;
  slot

let fill t slot payload =
  (match slot.reply with
  | None -> t.inflight <- t.inflight - 1
  | Some _ -> ());
  slot.reply <- Some payload

let note_span t ~verb ~arrival_ns ~sets ~outcome =
  let now = Clock.now_ns () in
  let us_of ns = Int64.to_float ns /. 1e3 in
  (match t.trace_out with
  | Some _ ->
    t.spans <-
      {
        sp_verb = verb;
        sp_ts_us = us_of (Int64.sub arrival_ns t.started_ns);
        sp_dur_us = us_of (Int64.sub now arrival_ns);
        sp_sets = sets;
        sp_outcome = outcome;
      }
      :: t.spans
  | None -> ());
  Hrt_stats.Percentile.add t.latency (us_of (Int64.sub now arrival_ns))

(* ---- request handling ---- *)

let verdict_lines vs =
  Protocol.render_reply (Protocol.Verdicts vs)

let rec handle_request t conn payload =
  match Protocol.parse_request payload with
  | Error e ->
    t.proto_errors <- t.proto_errors + 1;
    let slot = new_slot t conn in
    fill t slot (Protocol.render_reply (Protocol.error_reply e))
  | Ok req -> (
    t.requests <- t.requests + 1;
    match req with
    | Protocol.Stats ->
      let slot = new_slot t conn in
      fill t slot (stats_line t)
    | Protocol.Drain ->
      let slot = new_slot t conn in
      Atomic.set t.drain true;
      fill t slot
        (Protocol.render_reply
           (Protocol.Draining { pending = Queue.length t.queue }))
    | Protocol.Query { deadline_ms; specs } ->
      enqueue t conn ~verb:"query" ~deadline_ms [ specs ]
    | Protocol.Batch { deadline_ms; sets } ->
      enqueue t conn ~verb:"batch" ~deadline_ms sets)

and enqueue t conn ~verb ~deadline_ms sets =
  let slot = new_slot t conn in
  let arrival_ns = Clock.now_ns () in
  let nsets = List.length sets in
  if Atomic.get t.drain || Queue.length t.queue >= t.cfg.max_queue then begin
    (* Admission-themed backpressure: past capacity (or draining) the
       server rejects the request outright — a typed, immediate
       [overloaded] verdict per set instead of unbounded queueing. *)
    t.shed <- t.shed + nsets;
    note_span t ~verb ~arrival_ns ~sets:nsets ~outcome:"shed";
    fill t slot (verdict_lines (List.map (fun _ -> Protocol.overloaded) sets))
  end
  else begin
    let deadline_ms =
      match deadline_ms with
      | Some _ as d -> d
      | None -> t.cfg.default_deadline_ms
    in
    let deadline_ns =
      Option.map
        (fun ms -> Int64.add arrival_ns (Int64.of_int (ms * 1_000_000)))
        deadline_ms
    in
    let sets = List.map (taskset_of t) sets in
    Queue.push { slot; sets; arrival_ns; deadline_ns; verb } t.queue
  end

(* One dispatch batch: pop up to [max_batch] requests, answer the ones
   whose deadline already passed, fan the rest through the memoized
   service on the worker pool, and fill the reply slots. *)
let dispatch t =
  if not (Queue.is_empty t.queue) then begin
    let batch = ref [] in
    while (not (Queue.is_empty t.queue)) && List.length !batch < t.cfg.max_batch
    do
      batch := Queue.pop t.queue :: !batch
    done;
    let batch = List.rev !batch in
    let now = Clock.now_ns () in
    let live, dead =
      List.partition
        (fun w ->
          match w.deadline_ns with
          | Some d -> Int64.compare now d <= 0
          | None -> true)
        batch
    in
    List.iter
      (fun w ->
        let n = List.length w.sets in
        t.expired <- t.expired + n;
        note_span t ~verb:w.verb ~arrival_ns:w.arrival_ns ~sets:n
          ~outcome:"expired";
        fill t w.slot
          (verdict_lines (List.map (fun _ -> Protocol.expired) w.sets)))
      dead;
    if live <> [] then begin
      let all_sets = List.concat_map (fun w -> w.sets) live in
      let results = Service.batch ~pool:t.pool t.svc all_sets in
      let rec split results = function
        | [] -> ()
        | w :: rest ->
          let n = List.length w.sets in
          let rec take k acc rs =
            if k = 0 then (List.rev acc, rs)
            else
              match rs with
              | r :: rs -> take (k - 1) (r :: acc) rs
              | [] -> (List.rev acc, [])
          in
          let mine, results = take n [] results in
          t.served <- t.served + n;
          note_span t ~verb:w.verb ~arrival_ns:w.arrival_ns ~sets:n
            ~outcome:"served";
          fill t w.slot
            (verdict_lines
               (List.map
                  (fun r ->
                    Protocol.verdict_of_oracle r.Hrt_analysis.Oracle.verdict)
                  mine));
          split results rest
      in
      split results live
    end
  end

(* ---- I/O ---- *)

let close_conn t conn =
  if conn.open_ then begin
    conn.open_ <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end;
  ignore t

(* Move answered slots (in request order) into the outgoing buffer, then
   push as much of it as the socket accepts. *)
let flush_conn t conn =
  let rec promote () =
    match Queue.peek_opt conn.slots with
    | Some { reply = Some payload } ->
      ignore (Queue.pop conn.slots);
      Buffer.add_string conn.out (Protocol.frame payload);
      t.replies <- t.replies + 1;
      promote ()
    | Some { reply = None } | None -> ()
  in
  promote ();
  let pending = Buffer.length conn.out - conn.out_pos in
  if pending > 0 then begin
    let payload = Buffer.to_bytes conn.out in
    match Unix.write conn.fd payload conn.out_pos pending with
    | n ->
      conn.out_pos <- conn.out_pos + n;
      if conn.out_pos = Buffer.length conn.out then begin
        Buffer.clear conn.out;
        conn.out_pos <- 0
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
      (* Peer vanished mid-reply: nothing more can be delivered. *)
      Queue.clear conn.slots;
      close_conn t conn
  end

let conn_flushed conn =
  Queue.is_empty conn.slots && Buffer.length conn.out = conn.out_pos

let scratch = 8192

let read_conn t conn buf =
  match Unix.read conn.fd buf 0 scratch with
  | 0 -> (
    conn.reading <- false;
    match Protocol.Decoder.eof conn.dec with
    | `Clean -> `Stop
    | `Error e ->
      t.proto_errors <- t.proto_errors + 1;
      let slot = new_slot t conn in
      fill t slot (Protocol.render_reply (Protocol.error_reply e));
      conn.fatal <- true;
      `Stop)
  | n ->
    Protocol.Decoder.feed conn.dec buf 0 n;
    let rec drain_frames () =
      match Protocol.Decoder.next conn.dec with
      | `Frame payload ->
        handle_request t conn payload;
        drain_frames ()
      | `Await -> ()
      | `Error e ->
        (* Framing is unrecoverable: answer with the typed error and
           close once it is flushed. *)
        t.proto_errors <- t.proto_errors + 1;
        conn.reading <- false;
        conn.fatal <- true;
        let slot = new_slot t conn in
        fill t slot (Protocol.render_reply (Protocol.error_reply e))
    in
    drain_frames ();
    if conn.reading then `More else `Stop
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> `Stop
  | exception Unix.Unix_error (_, _, _) ->
    conn.reading <- false;
    Queue.clear conn.slots;
    close_conn t conn;
    `Stop

(* Drain everything the kernel already buffered for this connection —
   requests sent before the drain request must be answered, not reset.
   After the sweep the connection stops reading: anything a client sends
   later is lost to the close, which bounds shutdown. *)
let read_sweep t conn buf =
  let rec go () = if read_conn t conn buf = `More then go () in
  go ();
  conn.reading <- false

let accept_ready t fd =
  let rec go () =
    match Unix.accept ~cloexec:true fd with
    | cfd, _ ->
      Unix.set_nonblock cfd;
      t.accepted_conns <- t.accepted_conns + 1;
      t.conns <-
        {
          fd = cfd;
          dec = Protocol.Decoder.create ~max_frame:t.cfg.max_frame ();
          out = Buffer.create 256;
          out_pos = 0;
          slots = Queue.create ();
          reading = true;
          fatal = false;
          open_ = true;
        }
        :: t.conns;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  go ()

(* ---- trace export ---- *)

let write_trace t =
  match t.trace_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc "[";
        List.iteri
          (fun i sp ->
            if i > 0 then output_string oc ",";
            output_string oc
              (Printf.sprintf
                 "\n\
                  {\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.1f,\"dur\":%.1f,\"args\":{\"sets\":%d,\"outcome\":\"%s\"}}"
                 sp.sp_verb sp.sp_ts_us sp.sp_dur_us sp.sp_sets sp.sp_outcome))
          (List.rev t.spans);
        output_string oc "\n]\n")

(* ---- main loop ---- *)

let close_listeners t =
  if t.accepting then begin
    t.accepting <- false;
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.listeners;
    if Sys.file_exists t.unix_path then
      try Sys.remove t.unix_path with Sys_error _ -> ()
  end

let run ?(install_sigterm = false) t =
  let prev_sigterm =
    if install_sigterm then
      Some
        (Sys.signal Sys.sigterm
           (Sys.Signal_handle (fun _ -> request_drain t)))
    else None
  in
  let buf = Bytes.create scratch in
  let finished = ref false in
  while not !finished do
    let draining = Atomic.get t.drain in
    if draining && t.accepting then begin
      (* Final accept sweep: connections the kernel already completed in
         the backlog get replies (shed, typically) and a clean close
         instead of a reset from the dying listener. *)
      List.iter (accept_ready t) t.listeners;
      close_listeners t
    end;
    let rfds =
      (if t.accepting then t.listeners else [])
      @ List.filter_map
          (fun c -> if c.open_ && c.reading then Some c.fd else None)
          t.conns
    in
    let wfds =
      List.filter_map
        (fun c ->
          if c.open_ && Buffer.length c.out > c.out_pos then Some c.fd
          else None)
        t.conns
    in
    let timeout = if Queue.is_empty t.queue then 0.05 else 0. in
    let readable, writable =
      match Unix.select rfds wfds [] timeout with
      | r, w, _ -> (r, w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    in
    List.iter
      (fun fd ->
        if List.memq fd t.listeners then accept_ready t fd
        else
          match List.find_opt (fun c -> c.fd == fd && c.open_) t.conns with
          | Some conn ->
            let rec go () = if read_conn t conn buf = `More then go () in
            go ()
          | None -> ())
      readable;
    if Atomic.get t.drain then
      (* Answer everything already in flight before closing: each frame
         buffered in a connection's socket gets its reply (new queries
         are shed with [overloaded] at this point, never dropped). *)
      List.iter
        (fun conn ->
          if conn.open_ && conn.reading && not conn.fatal then
            read_sweep t conn buf)
        t.conns;
    dispatch t;
    List.iter
      (fun conn ->
        if conn.open_ then begin
          flush_conn t conn;
          (* ignore [writable]: flush is cheap and write handles EAGAIN *)
          if
            conn.open_ && conn_flushed conn
            && ((not conn.reading) || conn.fatal || Atomic.get t.drain)
          then close_conn t conn
        end)
      t.conns;
    ignore writable;
    t.conns <- List.filter (fun c -> c.open_) t.conns;
    if Atomic.get t.drain && Queue.is_empty t.queue && t.conns = [] then
      finished := true
  done;
  close_listeners t;
  if Hrt_obs.Sink.enabled t.sink then Hrt_obs.Sink.sample_probes t.sink;
  write_trace t;
  Printf.eprintf "%s\n%!" (stats_line t);
  match prev_sigterm with
  | Some prev -> Sys.set_signal Sys.sigterm prev
  | None -> ()
