open Hrt_engine
open Hrt_core
open Hrt_hw

type t = {
  config : Config.t;
  overhead_ns : Time.ns;
  tasks : Constraints.t list;
}

let make ?(config = Config.default) ?(overhead_ns = 0L) tasks =
  { config; overhead_ns; tasks }

(* Mirrors the admission ledger the scheduler boots with: each arrival is
   charged two scheduler invocations, an invocation being the mean cost of
   interrupt dispatch, one scheduler pass, residual bookkeeping, and a
   context switch (Local_sched.create). *)
let overhead_of_platform (plat : Platform.t) =
  let per_invocation =
    plat.Platform.irq_dispatch.Platform.mean_cycles
    +. plat.Platform.sched_pass.Platform.mean_cycles
    +. plat.Platform.sched_other.Platform.mean_cycles
    +. plat.Platform.ctx_switch.Platform.mean_cycles
  in
  Platform.cycles_to_ns plat (2. *. per_invocation)

(* The two analysis views the CLI and the serving daemon expose. The
   production view mirrors the ledger a scheduler boots with (periodic
   capacity limit, measured per-arrival overhead); the raw view asks the
   pure feasibility question (full CPU, zero overhead) — a rejection
   there with an exact certificate means no schedule exists at all. *)
let production_view ~policy ~platform tasks =
  make
    ~config:{ Config.default with Config.policy }
    ~overhead_ns:(overhead_of_platform platform)
    tasks

let raw_view ~policy tasks =
  make
    ~config:
      {
        Config.default with
        Config.policy;
        util_limit = 1.0;
        strict_reservations = false;
        sporadic_reservation = 1.0;
      }
    ~overhead_ns:0L tasks

(* Analysis-relevant view of one task. Periodic phases are dropped: every
   test assumes the synchronous (critical-instant) release pattern, which
   dominates any phasing. Sporadic deadlines are folded to the laxity
   window so two requests with equal demand shape hit the same cache
   line regardless of wall-clock anchoring. *)
let task_token = function
  | Constraints.Aperiodic _ -> "A"
  | Constraints.Periodic { period; slice; _ } ->
    Printf.sprintf "P:%Ld:%Ld" period slice
  | Constraints.Sporadic { phase; size; deadline; _ } ->
    Printf.sprintf "S:%Ld:%Ld" size Time.(deadline - phase)

let canonical t =
  let cfg = t.config in
  let admission_tag =
    match cfg.Config.admission with
    | Config.Policy_bound -> "bound"
    | Config.Hyperperiod_sim -> "sim"
  in
  let header =
    Printf.sprintf "%s:%s:%.9f:%.9f:%.9f:%b:%b:%Ld:%Ld:%Ld"
      (Config.policy_name cfg.Config.policy)
      admission_tag cfg.Config.util_limit cfg.Config.sporadic_reservation
      cfg.Config.aperiodic_reservation cfg.Config.admission_control
      cfg.Config.strict_reservations cfg.Config.min_period
      cfg.Config.min_slice t.overhead_ns
  in
  let tokens = List.sort String.compare (List.map task_token t.tasks) in
  String.concat ";" (header :: tokens)

let fingerprint t = Digest.to_hex (Digest.string (canonical t))

let pp fmt t =
  Format.fprintf fmt "@[<v>%d tasks under %s (overhead %Ldns):@,%a@]"
    (List.length t.tasks)
    (Config.policy_name t.config.Config.policy)
    t.overhead_ns
    (Format.pp_print_list Constraints.pp)
    t.tasks
