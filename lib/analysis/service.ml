open Hrt_par

type shard = {
  lock : Mutex.t;
  table : (string, Oracle.result) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
}

type t = {
  shards : shard array;
  capacity : int;  (* per shard *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ?(shards = 8) ?(capacity = 1024) () =
  let shards = Stdlib.max 1 (Stdlib.min 64 shards) in
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 64;
            order = Queue.create ();
          });
    capacity = Stdlib.max 1 capacity;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

(* Shard choice folds the fingerprint's own hex digits instead of
   [Hashtbl.hash], so the mapping is fixed by the key alone — stable
   across runs, domains, and compiler versions. *)
let shard_of t key =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land max_int) key;
  t.shards.(!h mod Array.length t.shards)

let query t ts =
  let key = Taskset.fingerprint ts in
  let s = shard_of t key in
  let cached = Mutex.protect s.lock (fun () -> Hashtbl.find_opt s.table key) in
  match cached with
  | Some r ->
    Atomic.incr t.hits;
    r
  | None ->
    (* Analyze outside the lock: the oracle is pure, so two domains
       racing on the same key compute equal results and the second
       insert is dropped. *)
    let r = Oracle.analyze ts in
    Atomic.incr t.misses;
    Mutex.protect s.lock (fun () ->
        if not (Hashtbl.mem s.table key) then begin
          if Hashtbl.length s.table >= t.capacity then begin
            match Queue.take_opt s.order with
            | Some victim ->
              Hashtbl.remove s.table victim;
              Atomic.incr t.evictions
            | None -> ()
          end;
          Hashtbl.replace s.table key r;
          Queue.push key s.order
        end);
    r

let batch ?pool t tasksets =
  match pool with
  | Some pool when Par.Pool.jobs pool > 1 ->
    Par.map_list pool (query t) tasksets
  | _ -> List.map (query t) tasksets

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats t =
  let entries =
    Array.fold_left
      (fun acc s ->
        acc + Mutex.protect s.lock (fun () -> Hashtbl.length s.table))
      0 t.shards
  in
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    entries;
  }

let register_probes (t : t) sink =
  let gauge name read = Hrt_obs.Sink.add_probe sink ~name read in
  gauge "admit.cache.hits" (fun () -> float_of_int (Atomic.get t.hits));
  gauge "admit.cache.misses" (fun () -> float_of_int (Atomic.get t.misses));
  gauge "admit.cache.evictions" (fun () ->
      float_of_int (Atomic.get t.evictions));
  gauge "admit.cache.entries" (fun () -> float_of_int (stats t).entries)
