open Hrt_par

(* One in-flight analysis: the first domain to miss on a key computes
   while every later domain waits on the condition instead of repeating
   the work (single-flight). [Abandoned] covers the computing domain
   dying with an exception — waiters then retry from scratch. *)
type flight = {
  fmu : Mutex.t;
  fcv : Condition.t;
  mutable outcome : flight_outcome;
}

and flight_outcome = Running | Done of Oracle.result | Abandoned

type shard = {
  lock : Mutex.t;
  table : (string, Oracle.result) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  inflight : (string, flight) Hashtbl.t;
}

type t = {
  shards : shard array;
  capacity : int;  (* per shard *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ?(shards = 8) ?(capacity = 1024) () =
  let shards = Stdlib.max 1 (Stdlib.min 64 shards) in
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 64;
            order = Queue.create ();
            inflight = Hashtbl.create 8;
          });
    capacity = Stdlib.max 1 capacity;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

(* Shard choice folds the fingerprint's own hex digits instead of
   [Hashtbl.hash], so the mapping is fixed by the key alone — stable
   across runs, domains, and compiler versions. *)
let shard_of t key =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land max_int) key;
  t.shards.(!h mod Array.length t.shards)

(* Insert under the shard lock, evicting FIFO at capacity. Single-flight
   guarantees one insert per distinct computation, so the eviction queue
   carries exactly one entry per resident key. *)
let insert t s key r =
  if not (Hashtbl.mem s.table key) then begin
    if Hashtbl.length s.table >= t.capacity then begin
      match Queue.take_opt s.order with
      | Some victim ->
        Hashtbl.remove s.table victim;
        Atomic.incr t.evictions
      | None -> ()
    end;
    Hashtbl.replace s.table key r;
    Queue.push key s.order
  end

let rec query_key t s key ts =
  let role =
    Mutex.protect s.lock (fun () ->
        match Hashtbl.find_opt s.table key with
        | Some r -> `Hit r
        | None -> (
          match Hashtbl.find_opt s.inflight key with
          | Some f -> `Wait f
          | None ->
            let f =
              { fmu = Mutex.create (); fcv = Condition.create (); outcome = Running }
            in
            Hashtbl.replace s.inflight key f;
            `Compute f))
  in
  match role with
  | `Hit r ->
    Atomic.incr t.hits;
    r
  | `Wait f -> (
    (* Single-flight: a peer domain is already running this analysis;
       wait for its result instead of repeating the work. The waiter
       counts a hit — the result is served from (about-to-be) cache — so
       hit/miss totals are identical at any job count. *)
    let outcome =
      Mutex.protect f.fmu (fun () ->
          while f.outcome = Running do
            Condition.wait f.fcv f.fmu
          done;
          f.outcome)
    in
    match outcome with
    | Done r ->
      Atomic.incr t.hits;
      r
    | Running | Abandoned -> query_key t s key ts)
  | `Compute f -> (
    (* One miss per distinct computation, counted by the domain that
       actually runs the oracle. Analyze outside the shard lock: peers on
       other keys proceed, peers on this key wait on [f]. *)
    Atomic.incr t.misses;
    match Oracle.analyze ts with
    | r ->
      Mutex.protect s.lock (fun () ->
          insert t s key r;
          Hashtbl.remove s.inflight key);
      Mutex.protect f.fmu (fun () -> f.outcome <- Done r);
      Condition.broadcast f.fcv;
      r
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.protect s.lock (fun () -> Hashtbl.remove s.inflight key);
      Mutex.protect f.fmu (fun () -> f.outcome <- Abandoned);
      Condition.broadcast f.fcv;
      Printexc.raise_with_backtrace e bt)

let query t ts =
  let key = Taskset.fingerprint ts in
  let s = shard_of t key in
  query_key t s key ts

let batch ?pool t tasksets =
  match pool with
  | Some pool when Par.Pool.jobs pool > 1 ->
    Par.map_list pool (query t) tasksets
  | _ -> List.map (query t) tasksets

type stats = { hits : int; misses : int; evictions : int; entries : int }

let stats t =
  let entries =
    Array.fold_left
      (fun acc s ->
        acc + Mutex.protect s.lock (fun () -> Hashtbl.length s.table))
      0 t.shards
  in
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    entries;
  }

let register_probes (t : t) sink =
  let gauge name read = Hrt_obs.Sink.add_probe sink ~name read in
  gauge "admit.cache.hits" (fun () -> float_of_int (Atomic.get t.hits));
  gauge "admit.cache.misses" (fun () -> float_of_int (Atomic.get t.misses));
  gauge "admit.cache.evictions" (fun () ->
      float_of_int (Atomic.get t.evictions));
  gauge "admit.cache.entries" (fun () -> float_of_int (stats t).entries)
