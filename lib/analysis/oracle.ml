open Hrt_engine
open Hrt_core

type rm_response = {
  period : Time.ns;
  slice : Time.ns;
  point : Time.ns;
  demand : Time.ns;
}

type blocking_link = { hp_period : Time.ns; hp_cost : Time.ns; jobs : int64 }

type cert =
  | Edf_demand of { horizon : Time.ns; interval : Time.ns; demand : Time.ns }
  | Util of { util : float; bound : float }
  | Rm_points of rm_response list
  | Rm_blocking of {
      period : Time.ns;
      slice : Time.ns;
      chain : blocking_link list;
    }
  | Density of { density : float; bound : float }

type result = { verdict : Admission.verdict; certs : cert list }

(* ---- shared arithmetic ---- *)

let rec gcd64 a b = if Int64.equal b 0L then a else gcd64 b (Int64.rem a b)

(* Hyperperiod capped at 1 s, matching the runtime ledger: the sentinel
   routes pathological period combinations to the utilization test. *)
let hyperperiod set =
  let lcm_capped acc p =
    let l = Int64.div (Int64.mul acc p) (gcd64 acc p) in
    if Int64.compare l 1_000_000_000L > 0 then Int64.min_int else l
  in
  List.fold_left
    (fun acc (p, _) ->
      if Int64.equal acc Int64.min_int then acc else lcm_capped acc p)
    1L set

let edf_demand_at ~ovh set d =
  List.fold_left
    (fun acc (p, s) ->
      let jobs = Int64.div d p in
      Time.(acc + Int64.mul jobs Time.(s + ovh)))
    0L set

let deadline_cap = 4096

let edf_deadlines ~h set =
  let per_task =
    List.concat_map
      (fun (p, _) ->
        let count = Int64.to_int (Int64.div h p) in
        if count > deadline_cap then []
        else List.init count (fun k -> Int64.mul p (Int64.of_int (k + 1))))
      set
  in
  List.sort_uniq Int64.compare (h :: per_task)

let effective_util ~ovh set =
  List.fold_left
    (fun acc (p, s) -> acc +. (Int64.to_float Time.(s + ovh) /. Int64.to_float p))
    0. set

let liu_layland n =
  if n <= 0 then 1.
  else begin
    let fn = float_of_int n in
    fn *. ((2. ** (1. /. fn)) -. 1.)
  end

let ceil_div a b = Int64.div (Int64.add a (Int64.sub b 1L)) b

let slack ~capacity ~demand d =
  ((Int64.to_float d *. capacity) -. Int64.to_float demand) /. Int64.to_float d

(* ---- task extraction ---- *)

let periodics tasks =
  List.filter_map
    (function
      | Constraints.Periodic { period; slice; _ } -> Some (period, slice)
      | _ -> None)
    tasks

(* Sporadic (size, laxity window) pairs, anchored at analysis time zero. *)
let sporadics tasks =
  List.filter_map
    (function
      | Constraints.Sporadic { phase; size; deadline; _ } ->
        Some (size, Time.(deadline - phase))
      | _ -> None)
    tasks

let structural_failure (ts : Taskset.t) =
  let cfg = ts.Taskset.config in
  let rec go = function
    | [] -> None
    | c :: rest -> (
      match Constraints.validate c with
      | Error msg -> Some (Admission.Rejection.Invalid { msg })
      | Ok () -> (
        match c with
        | Constraints.Periodic { period; slice; _ }
          when Time.(period < cfg.Config.min_period)
               || Time.(slice < cfg.Config.min_slice) ->
          Some (Admission.Rejection.Granularity { period; slice })
        | Constraints.Sporadic { phase; deadline; _ }
          when Time.(deadline <= phase) ->
          Some (Admission.Rejection.Past_deadline { arrival = phase; deadline })
        | _ -> go rest))
  in
  go ts.Taskset.tasks

(* ---- EDF: processor-demand criterion ---- *)

let edf_analysis ~ovh ~capacity set =
  let h = hyperperiod set in
  let util = effective_util ~ovh set in
  if Int64.equal h Int64.min_int then begin
    let cert = Util { util; bound = capacity } in
    if util <= capacity then Ok (capacity -. util, cert)
    else
      Error
        ( Admission.Rejection.Utilization_bound { util; bound = capacity },
          cert )
  end
  else begin
    let rec scan min_slack witness = function
      | [] -> Ok (min_slack, witness)
      | d :: rest ->
        let demand = edf_demand_at ~ovh set d in
        if Int64.to_float demand <= Int64.to_float d *. capacity then begin
          let s = slack ~capacity ~demand d in
          if s < min_slack then
            scan s (Edf_demand { horizon = h; interval = d; demand }) rest
          else scan min_slack witness rest
        end
        else
          Error
            ( Admission.Rejection.Hyperperiod_demand { interval = d; demand },
              Edf_demand { horizon = h; interval = d; demand } )
    in
    let first = Edf_demand { horizon = h; interval = h; demand = 0L } in
    scan infinity first (edf_deadlines ~h set)
  end

(* ---- RM: Lehoczky-Sha-Ding scheduling-point criterion ---- *)

(* [hp_of arr i] — every other task whose period is <= task [i]'s: with
   equal periods each peer counts as higher priority for both tasks,
   which is conservative under any dispatcher tie-break. *)
let hp_of arr i =
  let p_i, _ = arr.(i) in
  let hp = ref [] in
  for j = Array.length arr - 1 downto 0 do
    let p_j, _ = arr.(j) in
    if j <> i && Int64.compare p_j p_i <= 0 then hp := arr.(j) :: !hp
  done;
  !hp

let rm_points ~p hp =
  let per_task =
    List.concat_map
      (fun (pj, _) ->
        let count = Int64.to_int (Int64.div p pj) in
        List.init count (fun k -> Int64.mul pj (Int64.of_int (k + 1))))
      hp
  in
  List.sort_uniq Int64.compare (p :: per_task)

let rm_demand_at ~ovh ~slice hp t =
  List.fold_left
    (fun acc (pj, sj) -> Time.(acc + Int64.mul (ceil_div t pj) Time.(sj + ovh)))
    Time.(slice + ovh) hp

let rm_chain ~ovh ~period hp =
  List.map
    (fun (pj, sj) ->
      { hp_period = pj; hp_cost = Time.(sj + ovh); jobs = ceil_div period pj })
    hp

let rm_over_cap arr =
  let n = Array.length arr in
  let over = ref false in
  for i = 0 to n - 1 do
    let p_i, _ = arr.(i) in
    for j = 0 to n - 1 do
      let p_j, _ = arr.(j) in
      if Int64.compare (Int64.div p_i p_j) (Int64.of_int deadline_cap) > 0 then
        over := true
    done
  done;
  !over

let rm_analysis ~ovh ~capacity set =
  let arr =
    Array.of_list
      (List.sort
         (fun (p1, s1) (p2, s2) ->
           match Int64.compare p1 p2 with
           | 0 -> Int64.compare s1 s2
           | c -> c)
         set)
  in
  if rm_over_cap arr then begin
    (* Scheduling-point set too large to enumerate exactly: Liu-Layland
       sufficient bound, scaled by the capacity. *)
    let util = effective_util ~ovh set in
    let bound = liu_layland (Array.length arr) *. capacity in
    let cert = Util { util; bound } in
    if util <= bound then Ok (bound -. util, cert)
    else Error (Admission.Rejection.Utilization_bound { util; bound }, cert)
  end
  else begin
    let n = Array.length arr in
    let responses = ref [] in
    let min_slack = ref infinity in
    let blocked = ref None in
    let i = ref 0 in
    while !blocked = None && !i < n do
      let p_i, s_i = arr.(!i) in
      let hp = hp_of arr !i in
      let best = ref None in
      List.iter
        (fun t ->
          let demand = rm_demand_at ~ovh ~slice:s_i hp t in
          if Int64.to_float demand <= Int64.to_float t *. capacity then begin
            let s = slack ~capacity ~demand t in
            match !best with
            | Some (_, _, s') when s' >= s -> ()
            | _ -> best := Some (t, demand, s)
          end)
        (rm_points ~p:p_i hp);
      (match !best with
      | Some (point, demand, s) ->
        responses := { period = p_i; slice = s_i; point; demand } :: !responses;
        if s < !min_slack then min_slack := s
      | None ->
        let demand = rm_demand_at ~ovh ~slice:s_i hp p_i in
        blocked := Some (p_i, s_i, demand, hp));
      incr i
    done;
    match !blocked with
    | Some (period, slice, demand, hp) ->
      Error
        ( Admission.Rejection.Hyperperiod_demand { interval = period; demand },
          Rm_blocking { period; slice; chain = rm_chain ~ovh ~period hp } )
    | None -> Ok (!min_slack, Rm_points (List.rev !responses))
  end

(* ---- sporadic: density against the reservation ---- *)

let density_bound (cfg : Config.t) =
  cfg.Config.sporadic_reservation *. cfg.Config.util_limit

let total_density sp =
  List.fold_left
    (fun acc (size, window) ->
      acc +. (Int64.to_float size /. Int64.to_float window))
    0. sp

let density_analysis ~cfg sp =
  let bound = density_bound cfg in
  let density = total_density sp in
  let cert = Density { density; bound } in
  if density <= bound then Ok (bound -. density, cert)
  else Error (Admission.Rejection.Density_bound { density; bound }, cert)

(* ---- analyze ---- *)

let analyze (ts : Taskset.t) =
  let cfg = ts.Taskset.config in
  let ovh = ts.Taskset.overhead_ns in
  match structural_failure ts with
  | Some reason ->
    { verdict = Admission.Rejected { reason }; certs = [] }
  | None ->
    let capacity = Config.periodic_capacity cfg in
    let periodic = periodics ts.Taskset.tasks in
    let sporadic = sporadics ts.Taskset.tasks in
    let sp = if sporadic = [] then None else Some (density_analysis ~cfg sporadic) in
    let pe =
      if periodic = [] then None
      else
        Some
          (match cfg.Config.policy with
          | Config.Edf -> edf_analysis ~ovh ~capacity periodic
          | Config.Rm -> rm_analysis ~ovh ~capacity periodic)
    in
    let cert_of = function Ok (_, c) | Error (_, c) -> c in
    let certs = List.filter_map (Option.map cert_of) [ sp; pe ] in
    let verdict =
      match (sp, pe) with
      | Some (Error (reason, _)), _ | _, Some (Error (reason, _)) ->
        Admission.Rejected { reason }
      | _ ->
        let headroom_of = function
          | Some (Ok (h, _)) -> h
          | _ -> infinity
        in
        let h = Float.min (headroom_of sp) (headroom_of pe) in
        let h = if h = infinity then capacity else h in
        Admission.Admitted { headroom = h }
    in
    { verdict; certs }

(* ---- certificate checking ---- *)

exception Check_failed of string

let failf fmt = Printf.ksprintf (fun s -> raise (Check_failed s)) fmt

let feq a b = Float.abs (a -. b) <= 1e-9

(* Re-derive one certificate from the task set and report whether it
   witnesses feasibility ([true]) or infeasibility ([false]). Stored
   arithmetic that does not reproduce raises. *)
let check_cert ~cfg ~ovh ~capacity ~periodic ~sporadic = function
  | Util { util; bound } ->
    let u = effective_util ~ovh periodic in
    if not (feq u util) then
      failf "util certificate: stored %.9f, recomputed %.9f" util u;
    let expected =
      match cfg.Config.policy with
      | Config.Edf -> capacity
      | Config.Rm -> liu_layland (List.length periodic) *. capacity
    in
    if not (feq bound expected) then
      failf "util certificate: stored bound %.9f, expected %.9f" bound expected;
    util <= bound
  | Edf_demand { horizon; interval; demand } ->
    if cfg.Config.policy <> Config.Edf then
      failf "EDF demand certificate under non-EDF policy";
    let h = hyperperiod periodic in
    if not (Int64.equal h horizon) then
      failf "EDF certificate: stored horizon %Ld, recomputed %Ld" horizon h;
    let d = edf_demand_at ~ovh periodic interval in
    if not (Int64.equal d demand) then
      failf "EDF certificate: demand at %Ld stored %Ld, recomputed %Ld"
        interval demand d;
    Int64.to_float demand <= Int64.to_float interval *. capacity
  | Rm_points responses ->
    if cfg.Config.policy <> Config.Rm then
      failf "RM points certificate under non-RM policy";
    let key (p, s) = (p, s) in
    let claimed =
      List.sort compare (List.map (fun r -> key (r.period, r.slice)) responses)
    in
    let actual = List.sort compare (List.map key periodic) in
    if claimed <> actual then
      failf "RM certificate does not cover the periodic tasks exactly";
    List.for_all
      (fun r ->
        if Time.(r.point <= 0L) || Time.(r.point > r.period) then
          failf "RM certificate: point %Ld outside (0, %Ld]" r.point r.period;
        (* hp = the other tasks with period <= r.period: drop one instance
           of the task itself from the multiset. *)
        let dropped = ref false in
        let hp =
          List.filter
            (fun (p, s) ->
              if
                (not !dropped)
                && Int64.equal p r.period
                && Int64.equal s r.slice
              then begin
                dropped := true;
                false
              end
              else Int64.compare p r.period <= 0)
            periodic
        in
        let d = rm_demand_at ~ovh ~slice:r.slice hp r.point in
        if not (Int64.equal d r.demand) then
          failf "RM certificate: demand at %Ld stored %Ld, recomputed %Ld"
            r.point r.demand d;
        Int64.to_float d <= Int64.to_float r.point *. capacity)
      responses
  | Rm_blocking { period; slice; chain } ->
    if cfg.Config.policy <> Config.Rm then
      failf "RM blocking certificate under non-RM policy";
    if not (List.exists (fun (p, s) -> Int64.equal p period && Int64.equal s slice) periodic)
    then failf "RM blocking certificate names a task not in the set";
    let dropped = ref false in
    let hp =
      List.filter
        (fun (p, s) ->
          if (not !dropped) && Int64.equal p period && Int64.equal s slice
          then begin
            dropped := true;
            false
          end
          else Int64.compare p period <= 0)
        periodic
    in
    let expected_chain = rm_chain ~ovh ~period hp in
    let sort_chain =
      List.sort (fun a b -> compare (a.hp_period, a.hp_cost) (b.hp_period, b.hp_cost))
    in
    if sort_chain chain <> sort_chain expected_chain then
      failf "RM blocking chain does not match the higher-priority set";
    (* The chain names the overload at the deadline; infeasibility under
       the point criterion needs every point to fail. *)
    List.iter
      (fun t ->
        let d = rm_demand_at ~ovh ~slice hp t in
        if Int64.to_float d <= Int64.to_float t *. capacity then
          failf
            "RM blocking certificate refuted: point %Ld absorbs demand %Ld"
            t d)
      (rm_points ~p:period hp);
    false
  | Density { density; bound } ->
    let d = total_density sporadic in
    if not (feq d density) then
      failf "density certificate: stored %.9f, recomputed %.9f" density d;
    let b = density_bound cfg in
    if not (feq b bound) then
      failf "density certificate: stored bound %.9f, expected %.9f" bound b;
    density <= bound

(* Headroom one certificate implies, mirroring [analyze]'s combine. *)
let cert_headroom ~capacity = function
  | Util { util; bound } -> bound -. util
  | Edf_demand { interval; demand; _ } -> slack ~capacity ~demand interval
  | Rm_points responses ->
    List.fold_left
      (fun acc r ->
        Float.min acc (slack ~capacity ~demand:r.demand r.point))
      infinity responses
  | Rm_blocking _ -> neg_infinity
  | Density { density; bound } -> bound -. density

let check (ts : Taskset.t) (r : result) =
  let cfg = ts.Taskset.config in
  let ovh = ts.Taskset.overhead_ns in
  let capacity = Config.periodic_capacity cfg in
  let periodic = periodics ts.Taskset.tasks in
  let sporadic = sporadics ts.Taskset.tasks in
  try
    (match (structural_failure ts, r.verdict) with
    | Some reason, Admission.Rejected { reason = claimed } ->
      if reason <> claimed then
        failf "structural rejection mismatch: claimed %s, found %s"
          (Admission.Rejection.describe claimed)
          (Admission.Rejection.describe reason);
      if r.certs <> [] then
        failf "structural rejection must not carry certificates"
    | Some reason, Admission.Admitted _ ->
      failf "admitted a structurally invalid set (%s)"
        (Admission.Rejection.describe reason)
    | None, _ ->
      let statuses =
        List.map
          (fun c -> (c, check_cert ~cfg ~ovh ~capacity ~periodic ~sporadic c))
          r.certs
      in
      (match r.verdict with
      | Admission.Admitted { headroom } ->
        List.iter
          (fun (_, ok) ->
            if not ok then failf "admitted verdict carries a failing certificate")
          statuses;
        if periodic <> [] && not (List.exists (fun (c, _) ->
               match c with
               | Edf_demand _ | Util _ | Rm_points _ -> true
               | _ -> false) statuses)
        then failf "admitted verdict lacks a periodic certificate";
        if sporadic <> []
           && not (List.exists (fun (c, _) ->
                  match c with Density _ -> true | _ -> false) statuses)
        then failf "admitted verdict lacks a density certificate";
        (* For EDF, confirm the stored witness really is the scan minimum
           by re-scanning every deadline independently. *)
        List.iter
          (fun (c, _) ->
            match c with
            | Edf_demand { horizon; _ } ->
              List.iter
                (fun d ->
                  let demand = edf_demand_at ~ovh periodic d in
                  if Int64.to_float demand > Int64.to_float d *. capacity then
                    failf "EDF scan refutes admission: deadline %Ld overloaded" d;
                  if slack ~capacity ~demand d < headroom -. 1e-9 then
                    failf
                      "EDF witness is not the binding interval: deadline %Ld \
                       has less slack"
                      d)
                (edf_deadlines ~h:horizon periodic)
            | _ -> ())
          statuses;
        let expected =
          match statuses with
          | [] -> capacity
          | _ ->
            List.fold_left
              (fun acc (c, _) -> Float.min acc (cert_headroom ~capacity c))
              infinity statuses
        in
        let expected = if expected = infinity then capacity else expected in
        if not (feq headroom expected) then
          failf "headroom %.9f does not match certificates (%.9f)" headroom
            expected
      | Admission.Rejected { reason } ->
        let failing = List.filter (fun (_, ok) -> not ok) statuses in
        if failing = [] then
          failf "rejected verdict but every certificate passes";
        let consistent =
          List.exists
            (fun (c, _) ->
              match (reason, c) with
              | ( Admission.Rejection.Density_bound { density; bound },
                  Density { density = d; bound = b } ) ->
                feq density d && feq bound b
              | ( Admission.Rejection.Utilization_bound { util; bound },
                  Util { util = u; bound = b } ) ->
                feq util u && feq bound b
              | ( Admission.Rejection.Hyperperiod_demand { interval; demand },
                  Edf_demand { interval = i; demand = d; _ } ) ->
                Int64.equal interval i && Int64.equal demand d
              | ( Admission.Rejection.Hyperperiod_demand { interval; demand },
                  Rm_blocking { period; slice; chain = _ } ) ->
                Int64.equal interval period
                && (let dropped = ref false in
                    let hp =
                      List.filter
                        (fun (p, s) ->
                          if
                            (not !dropped)
                            && Int64.equal p period
                            && Int64.equal s slice
                          then begin
                            dropped := true;
                            false
                          end
                          else Int64.compare p period <= 0)
                        periodic
                    in
                    Int64.equal demand (rm_demand_at ~ovh ~slice hp period))
              | _ -> false)
            failing
        in
        if not consistent then
          failf "rejection reason (%s) is not backed by a failing certificate"
            (Admission.Rejection.describe reason)));
    Ok ()
  with Check_failed msg -> Error msg

let exact_infeasible (ts : Taskset.t) (r : result) =
  match r.verdict with
  | Admission.Admitted _ -> false
  | Admission.Rejected { reason } -> (
    match reason with
    | Admission.Rejection.Hyperperiod_demand _ -> true
    | Admission.Rejection.Past_deadline _ -> true
    | Admission.Rejection.Utilization_bound { util; _ } -> (
      match ts.Taskset.config.Config.policy with
      | Config.Edf -> true
      | Config.Rm -> util > Config.periodic_capacity ts.Taskset.config)
    | _ -> false)

(* ---- printing ---- *)

let pp_cert fmt = function
  | Edf_demand { horizon; interval; demand } ->
    Format.fprintf fmt
      "EDF demand: %Ldns over [0,%Ldns] (hyperperiod %Ldns)" demand interval
      horizon
  | Util { util; bound } ->
    Format.fprintf fmt "utilization %.6f against bound %.6f" util bound
  | Rm_points responses ->
    Format.fprintf fmt "@[<v>RM scheduling points:@,%a@]"
      (Format.pp_print_list (fun fmt r ->
           Format.fprintf fmt
             "  task(period=%Ldns slice=%Ldns) completes %Ldns demand by \
              %Ldns"
             r.period r.slice r.demand r.point))
      responses
  | Rm_blocking { period; slice; chain } ->
    Format.fprintf fmt
      "@[<v>RM blocking of task(period=%Ldns slice=%Ldns):@,%a@]" period slice
      (Format.pp_print_list (fun fmt l ->
           Format.fprintf fmt "  %Ld jobs of period %Ldns cost %Ldns each"
             l.jobs l.hp_period l.hp_cost))
      chain
  | Density { density; bound } ->
    Format.fprintf fmt "sporadic density %.6f against reservation %.6f"
      density bound

let pp_result fmt r =
  Format.fprintf fmt "@[<v>%a@,%a@]" Admission.pp_verdict r.verdict
    (Format.pp_print_list pp_cert)
    r.certs
