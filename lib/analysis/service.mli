(** Batched, memoized admission analysis.

    A service front-ends {!Oracle.analyze} with a sharded cache keyed by
    {!Taskset.fingerprint}: permutations of the same constraint multiset
    hit the same entry. Shards are mutex-guarded and the counters are
    atomic, so one service may be shared by the domains of a {!Hrt_par.Par}
    fan-out; because the oracle is deterministic, results are identical
    for any interleaving — a batch at [jobs = n] returns byte-identical
    verdicts to the same batch at [jobs = 1]. *)

open Hrt_par

type t

val create : ?shards:int -> ?capacity:int -> unit -> t
(** [shards] (default 8, clamped to [1 .. 64]) bounds lock contention;
    [capacity] (default 1024, at least 1) bounds entries {e per shard},
    evicted FIFO. *)

val query : t -> Taskset.t -> Oracle.result
(** One analysis, served from cache when an equivalent set (same
    fingerprint) was analyzed before. Concurrent misses on one key are
    single-flight: the first domain runs {!Oracle.analyze} while peers
    block on the in-flight entry and are handed the same result — the
    oracle runs exactly once per distinct computation, one miss is
    counted for the computing domain, and every waiter counts a hit, so
    cache statistics are identical at any job count. *)

val batch : ?pool:Par.Pool.t -> t -> Taskset.t list -> Oracle.result list
(** [query] over the list, in submission order. With a [pool] the queries
    fan across its domains ({!Hrt_par.Par.map_list}); results are
    order-preserving and identical to the sequential run. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats
(** Lifetime counters plus current population across all shards. *)

val register_probes : t -> Hrt_obs.Sink.t -> unit
(** Register pull gauges ["admit.cache.hits"], ["admit.cache.misses"],
    ["admit.cache.evictions"], and ["admit.cache.entries"] on the sink
    ({!Hrt_obs.Sink.add_probe}). *)
