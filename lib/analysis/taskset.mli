(** Immutable constraint sets for offline schedulability analysis.

    A task set pairs a list of {!Hrt_core.Constraints.t} with the scheduler
    configuration and per-arrival overhead charge they would be admitted
    under. Unlike the runtime {!Hrt_core.Admission} ledger — which admits
    one request at a time against mutable accounting state — a task set is
    a pure value: the {!Oracle} analyzes it as a whole, and the {!Service}
    memoizes analyses keyed by its {!fingerprint}.

    Sporadic constraints are interpreted relative to analysis time zero:
    the arrival is the constraint's [phase] and the laxity window is
    [deadline - phase], matching a runtime request issued at [now = 0]. *)

open Hrt_engine
open Hrt_core

type t = private {
  config : Config.t;
  overhead_ns : Time.ns;  (** charged per arrival, twice per invocation *)
  tasks : Constraints.t list;
}

val make : ?config:Config.t -> ?overhead_ns:Time.ns -> Constraints.t list -> t
(** Defaults: {!Hrt_core.Config.default} and zero overhead. *)

val overhead_of_platform : Hrt_hw.Platform.t -> Time.ns
(** The per-arrival scheduler overhead the runtime admission ledger
    charges on this platform: two invocations of
    [irq_dispatch + sched_pass + sched_other + ctx_switch] mean cycles
    (the model {!Hrt_core.Local_sched} installs at boot). *)

val production_view :
  policy:Config.policy -> platform:Hrt_hw.Platform.t -> Constraints.t list -> t
(** The task set a runtime admission request would be judged against:
    default configuration under [policy] with the platform's measured
    per-arrival overhead charged. Shared by [hrt_sim admit] and the
    serving daemon so both answer from the same view. *)

val raw_view : policy:Config.policy -> Constraints.t list -> t
(** The pure feasibility question: full CPU (utilization limit 1.0,
    reservations off) and zero overhead. A rejection with an exact
    certificate under this view means no schedule exists at all. *)

val canonical : t -> string
(** A canonical textual form: analysis-relevant configuration fields
    followed by the multiset of per-task tokens in sorted order. Two task
    sets that differ only by task order (or by analysis-irrelevant fields
    such as periodic phases) have equal canonical forms. *)

val fingerprint : t -> string
(** Hex digest of {!canonical} — the {!Service} cache key. *)

val pp : Format.formatter -> t -> unit
