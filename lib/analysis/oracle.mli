(** Analytical schedulability oracle (exact tests + checkable certificates).

    Where the runtime {!Hrt_core.Admission} ledger answers one request at a
    time with a policy-matched {e sufficient} test, the oracle analyzes a
    whole {!Taskset} offline with the {e exact} test for its policy:

    - {e EDF}: the processor-demand criterion over one hyperperiod — the
      same numerics as the runtime's [Hyperperiod_sim] admission mode
      (each arrival charged its two scheduler invocations, supply scaled
      by the periodic capacity). When the hyperperiod overflows the 1 s
      cap the utilization test takes over, which for implicit-deadline
      periodic sets is exact in both directions.
    - {e RM}: the Lehoczky–Sha–Ding scheduling-point criterion — task
      [i] is schedulable iff {e some} point in the multiples of
      higher-priority periods up to its own deadline absorbs the
      synchronous-release demand. Exact for synchronous periodic sets
      with deadline = period; admits above the Liu–Layland bound.
      Equal-period peers are all counted as higher priority
      (conservative under any tie-break). Pathological period ratios
      (> 4096 jobs of one task per period of another) fall back to the
      Liu–Layland bound, which is sufficient only.
    - {e Sporadic} demand is bounded by the density test against the
      sporadic reservation, anchored at analysis time zero.

    Every verdict ships a {!cert} that {!check} re-derives from the task
    set alone — feasibility witnesses name the binding interval or
    scheduling points, infeasibility witnesses name the overloaded
    interval and the blocking chain that fills it. *)

open Hrt_engine
open Hrt_core

type rm_response = {
  period : Time.ns;  (** the task under test (deadline = period) *)
  slice : Time.ns;
  point : Time.ns;  (** scheduling point witnessing completion *)
  demand : Time.ns;  (** synchronous demand at [point], overhead charged *)
}

type blocking_link = {
  hp_period : Time.ns;  (** a (conservatively) higher-priority task *)
  hp_cost : Time.ns;  (** its slice plus the per-arrival overhead *)
  jobs : int64;  (** arrivals in the blocked task's deadline interval *)
}

type cert =
  | Edf_demand of { horizon : Time.ns; interval : Time.ns; demand : Time.ns }
      (** On admission: the minimum-slack deadline over the scan (the
          binding interval). On rejection: the first overloaded one. *)
  | Util of { util : float; bound : float }
      (** Utilization-bound fallback (capped hyperperiod, or RM sets past
          the scheduling-point cap). [util] has overhead folded in. *)
  | Rm_points of rm_response list
      (** One feasible scheduling point per task, sorted by period. *)
  | Rm_blocking of {
      period : Time.ns;
      slice : Time.ns;
      chain : blocking_link list;
    }
      (** The first unschedulable task and the higher-priority arrivals
          that overfill its deadline interval; {!check} verifies that
          {e every} scheduling point is overloaded, not just the one the
          chain is drawn at. *)
  | Density of { density : float; bound : float }
      (** Aggregate sporadic density against the reservation. *)

type result = {
  verdict : Admission.verdict;
  certs : cert list;  (** empty only for structural rejections *)
}

val analyze : Taskset.t -> result
(** Pure and deterministic: equal {!Taskset.fingerprint}s give equal
    results (the {!Service} memoization contract). Structural problems
    (invalid constraints, granularity, sporadic windows that end before
    they start) reject before any test runs, mirroring the runtime
    ledger's ordering. [admission_control = false] is ignored: the oracle
    always analyzes. *)

val check : Taskset.t -> result -> (unit, string) Result.t
(** Independently re-derive the certificates from the task set: recompute
    every stored demand, point, utilization, and density; confirm
    feasibility witnesses satisfy their inequalities (for EDF, that the
    binding interval really is the scan minimum; for RM blocking, that
    every point fails); and confirm the verdict, its headroom, and its
    rejection reason agree with the certificates. [Error] describes the
    first inconsistency. *)

val exact_infeasible : Taskset.t -> result -> bool
(** Whether a rejection is backed by an exact-necessity argument — the
    set is genuinely unschedulable under its policy at the configured
    capacity, not merely past a sufficient bound. True for EDF demand or
    utilization overruns, RM blocking chains, and structurally impossible
    sporadic windows; false for admitted verdicts and for rejections by
    sufficient-only bounds (Liu–Layland fallback, density reservation,
    granularity). The cross-validation harness uses this to decide when
    a rejection must force simulator misses. *)

val pp_cert : Format.formatter -> cert -> unit
val pp_result : Format.formatter -> result -> unit
