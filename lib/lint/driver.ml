(* Orchestration: file discovery, parsing, rule scoping, waiver budgets,
   rendering. Paths handed to [run] are relative to [root] (the directory
   holding [.hrt-lint]); the relative form is what appears in diagnostics
   and what config scoping matches against. *)

type report = {
  diags : Diag.t list; (* sorted by file/line/col/rule *)
  files : int;
}

let unwaived r = List.filter (fun d -> not (Diag.waived d)) r.diags
let waived r = List.filter Diag.waived r.diags
let clean r = unwaived r = []

let summary_line r =
  Printf.sprintf "hrt-lint: files=%d findings=%d waived=%d status=%s" r.files
    (List.length (unwaived r))
    (List.length (waived r))
    (if clean r then "clean" else "dirty")

(* ---- parsing ---- *)

let parse ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  Location.input_name := file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception exn ->
    let loc, msg =
      match Location.error_of_exn exn with
      | Some (`Ok (e : Location.error)) ->
        ( e.main.loc,
          Format.asprintf "%t" (fun fmt -> e.main.txt fmt)
          |> String.split_on_char '\n' |> List.hd )
      | _ -> (Location.in_file file, Printexc.to_string exn)
    in
    Error (Diag.of_loc ~file ~rule:"parse-error" loc msg)

let rule_family rule =
  if String.length rule >= 4 && String.sub rule 0 4 = "dom-" then
    Some Config.Domain
  else if String.length rule >= 4 && String.sub rule 0 4 = "det-" then
    Some Config.Determinism
  else if String.length rule >= 6 && String.sub rule 0 6 = "alloc-" then
    Some Config.Alloc
  else None

let rule_on config ~path rule =
  match rule_family rule with
  | None -> true
  | Some fam ->
    let s = Config.scope config fam in
    Config.in_scope s ~path && Config.rule_enabled s ~rule ~path

(* [scan_string] is the test entry point: lint one source text under a
   config, as if it lived at [path] relative to the root. *)
let scan_string ~config ~path src =
  match parse ~file:path src with
  | Error d -> [ d ]
  | Ok ast -> Rules.check ~file:path ~rule_on:(rule_on config ~path) ast

(* ---- file discovery ---- *)

let is_ml path = Filename.check_suffix path ".ml"

let rec collect_files ~root acc rel =
  let abs = Filename.concat root rel in
  if Sys.file_exists abs && Sys.is_directory abs then
    Sys.readdir abs |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "" || name.[0] = '.' || name.[0] = '_' then acc
           else collect_files ~root acc (Filename.concat rel name))
         acc
  else if Sys.file_exists abs && is_ml rel then rel :: acc
  else acc

(* ---- budgets ---- *)

let budget_diags config diags =
  let counts = Hashtbl.create 4 in
  List.iter
    (fun d ->
      if Diag.waived d then begin
        let fam = Diag.family d in
        Hashtbl.replace counts fam
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts fam))
      end)
    diags;
  List.filter_map
    (fun fam ->
      let used = Option.value ~default:0 (Hashtbl.find_opt counts fam) in
      match Config.budget config fam with
      | Some cap when used > cap ->
        Some
          (Diag.v ~file:".hrt-lint" ~line:0 ~col:0 ~rule:"waiver-budget"
             (Printf.sprintf
                "%d %s waivers in tree, budget allows %d: fix findings or \
                 raise the budget deliberately"
                used fam cap))
      | _ -> None)
    [ "unsynchronized"; "nondet"; "alloc_ok" ]

(* ---- main entry ---- *)

let run ~config ~root paths =
  let files =
    List.fold_left (fun acc p -> collect_files ~root acc p) [] paths
    |> List.sort_uniq String.compare
  in
  let diags =
    List.concat_map
      (fun rel ->
        let src =
          In_channel.with_open_text (Filename.concat root rel)
            In_channel.input_all
        in
        scan_string ~config ~path:rel src)
      files
  in
  let diags = List.sort Diag.compare_diag (budget_diags config diags @ diags) in
  { diags; files = List.length files }

(* Walk up from [start] looking for a directory with a [.hrt-lint]; that
   directory is the repo root all paths are relative to. *)
let find_root start =
  let rec up dir n =
    if n > 16 then None
    else if Sys.file_exists (Filename.concat dir ".hrt-lint") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n + 1)
  in
  up start 0

let render ?(verbose = false) oc r =
  List.iter
    (fun d ->
      if verbose || not (Diag.waived d) then
        Printf.fprintf oc "%s\n" (Diag.to_string d))
    r.diags;
  Printf.fprintf oc "%s\n" (summary_line r)
