(** The committed [.hrt-lint] configuration: which directories each rule
    family scans, per-directory rule opt-outs, and waiver budgets. *)

type family = Domain | Determinism | Alloc

type scope = {
  includes : string list;
  excludes : string list;
  rule_off : (string * string) list;
}

type t = {
  budgets : (string * int) list;
  domain : scope;
  determinism : scope;
  alloc : scope;
}

(** Scans nothing. *)
val empty : t

(** Every family scans every path, no budget caps (fixture tests). *)
val all_on : t

val scope : t -> family -> scope

(** Waiver budget for a family keyword ([unsynchronized] / [nondet] /
    [alloc_ok]); [None] means unlimited. *)
val budget : t -> string -> int option

val in_scope : scope -> path:string -> bool
val rule_enabled : scope -> rule:string -> path:string -> bool

val parse_string : string -> (t, string) result
val load : string -> (t, string) result
