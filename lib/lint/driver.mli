(** Lint orchestration: discovery, parsing, scoping, budgets, rendering. *)

type report = {
  diags : Diag.t list; (* sorted by file, line, col, rule *)
  files : int;
}

val unwaived : report -> Diag.t list
val waived : report -> Diag.t list

(** True when there are no unwaived findings (exit status 0). *)
val clean : report -> bool

(** [hrt-lint: files=N findings=N waived=N status=clean|dirty] — the
    machine-readable trailer CI greps for. *)
val summary_line : report -> string

(** Lint one source text as if it lived at [path] under the root; the
    entry point fixture and mutation tests use. A parse failure yields a
    single unwaivable [parse-error] finding. *)
val scan_string : config:Config.t -> path:string -> string -> Diag.t list

(** [run ~config ~root paths] lints every [.ml] under the given
    root-relative paths (directories or files; ['.']/['_'] prefixed
    directory entries are skipped), appending waiver-budget findings when
    a family exceeds its cap. *)
val run : config:Config.t -> root:string -> string list -> report

(** Nearest ancestor of [start] containing a [.hrt-lint] file. *)
val find_root : string -> string option

(** Print unwaived findings (all findings with [verbose]) and the summary
    line. *)
val render : ?verbose:bool -> out_channel -> report -> unit
