(** The three rule families: domain-safety ([dom-*]), determinism
    ([det-*]), hot-path allocation ([alloc-*]). Purely syntactic over the
    parse tree; waivers are the [@hrt.unsynchronized] / [@hrt.nondet] /
    [@hrt.alloc_ok] attributes, hot regions are marked with
    [[@@@hrt.hot]] (module) or [[@@hrt.hot]] (binding) and excluded with
    [[@@hrt.cold]]. *)

(** [check ~file ~rule_on ast] returns the findings for one compilation
    unit, sorted by position. [rule_on] is consulted per rule id (scoping
    and per-directory opt-outs are the driver's concern). *)
val check :
  file:string -> rule_on:(string -> bool) -> Parsetree.structure -> Diag.t list
