(* Parser for the committed [.hrt-lint] file.

   Line-oriented format, comments with [#]:

     waiver-budget unsynchronized 8     # global, before any section
     [domain]
     include lib/core
     include lib/engine
     exclude lib/engine/heap_queue.ml
     allow det-wallclock lib/harness    # turn one rule off under a prefix

   Paths are '/'-separated prefixes relative to the repository root (the
   directory holding [.hrt-lint]). A family with no [include] line scans
   nothing, so an empty config is a no-op lint. *)

type family = Domain | Determinism | Alloc

type scope = {
  includes : string list;
  excludes : string list;
  rule_off : (string * string) list; (* rule id, path prefix *)
}

let empty_scope = { includes = []; excludes = []; rule_off = [] }

type t = {
  budgets : (string * int) list; (* waiver family keyword -> max waivers *)
  domain : scope;
  determinism : scope;
  alloc : scope;
}

let empty = { budgets = []; domain = empty_scope; determinism = empty_scope; alloc = empty_scope }

(* Everything on, no budget caps: what fixture tests use. *)
let all_on =
  let s = { empty_scope with includes = [ "" ] } in
  { budgets = []; domain = s; determinism = s; alloc = s }

let scope t = function
  | Domain -> t.domain
  | Determinism -> t.determinism
  | Alloc -> t.alloc

let budget t kind = List.assoc_opt kind t.budgets

(* Prefix match on whole path components: "lib/core" matches
   "lib/core/x.ml" and "lib/core" but not "lib/core2/x.ml". "" matches
   everything. *)
let prefix_matches ~prefix path =
  prefix = "" || prefix = path
  || String.length path > String.length prefix
     && String.sub path 0 (String.length prefix) = prefix
     && path.[String.length prefix] = '/'

let in_scope s ~path =
  List.exists (fun p -> prefix_matches ~prefix:p path) s.includes
  && not (List.exists (fun p -> prefix_matches ~prefix:p path) s.excludes)

let rule_enabled s ~rule ~path =
  not
    (List.exists
       (fun (r, p) -> r = rule && prefix_matches ~prefix:p path)
       s.rule_off)

(* ---- parsing ---- *)

let split_ws line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let parse_string src =
  let lines = String.split_on_char '\n' src in
  let cur = ref None in
  let cfg = ref empty in
  let update f =
    match !cur with
    | None -> Error "directive outside any [section]"
    | Some Domain ->
      cfg := { !cfg with domain = f (!cfg).domain };
      Ok ()
    | Some Determinism ->
      cfg := { !cfg with determinism = f (!cfg).determinism };
      Ok ()
    | Some Alloc ->
      cfg := { !cfg with alloc = f (!cfg).alloc };
      Ok ()
  in
  let err = ref None in
  List.iteri
    (fun i line ->
      if !err = None then
        let fail msg = err := Some (Printf.sprintf "line %d: %s" (i + 1) msg) in
        match split_ws (strip_comment line) with
        | [] -> ()
        | [ "[domain]" ] -> cur := Some Domain
        | [ "[determinism]" ] -> cur := Some Determinism
        | [ "[alloc]" ] -> cur := Some Alloc
        | [ "waiver-budget"; kind; n ] -> (
          match int_of_string_opt n with
          | Some n when n >= 0 ->
            cfg := { !cfg with budgets = (kind, n) :: (!cfg).budgets }
          | _ -> fail "waiver-budget needs a non-negative integer")
        | [ "include"; p ] -> (
          match update (fun s -> { s with includes = p :: s.includes }) with
          | Ok () -> ()
          | Error m -> fail m)
        | [ "exclude"; p ] -> (
          match update (fun s -> { s with excludes = p :: s.excludes }) with
          | Ok () -> ()
          | Error m -> fail m)
        | [ "allow"; rule; p ] -> (
          match update (fun s -> { s with rule_off = (rule, p) :: s.rule_off }) with
          | Ok () -> ()
          | Error m -> fail m)
        | w :: _ -> fail (Printf.sprintf "unknown directive %S" w))
    lines;
  match !err with None -> Ok !cfg | Some m -> Error m

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> (
    match parse_string src with
    | Ok c -> Ok c
    | Error m -> Error (Printf.sprintf "%s: %s" path m))
  | exception Sys_error m -> Error m
