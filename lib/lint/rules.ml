(* The three rule families, all purely syntactic over [Parsetree]:

   Domain-safety ([dom-*]): module-toplevel bindings that create mutable
   state ([ref], [Hashtbl.create], arrays, ...) in modules reachable from
   [Par.map] jobs must be [Atomic.make], live next to a [Mutex.create] in
   the same structure, or carry [@hrt.unsynchronized "reason"].

   Determinism ([det-*]): wall-clock and entropy escapes
   ([Unix.gettimeofday], [Random.*]), unordered [Hashtbl]
   iteration/hashing, and polymorphic [compare]/[min]/[max] on float
   operands. Waivable with [@hrt.nondet "reason"].

   Hot-path allocation ([alloc-*]): inside [[@@@hrt.hot]] modules or
   [[@@hrt.hot]] bindings (minus [[@@hrt.cold]] opt-outs), flag closure
   literals, under-saturated applications of known stdlib functions,
   tuple/option/list construction, [Printf]/[Format] calls, and
   [@]/[List.map]-style list builders. Waivable with
   [@hrt.alloc_ok "reason"]. Statically-allocated constants
   ([Some 3], [(1, 2)]) are not flagged. *)

open Parsetree

type ctx = {
  file : string;
  on : string -> bool; (* rule id enabled for this file *)
  mutable out : Diag.t list;
}

let emit ctx ?waiver ~rule loc msg =
  if ctx.on rule then
    ctx.out <- Diag.of_loc ?waiver ~file:ctx.file ~rule loc msg :: ctx.out

(* ---- attribute helpers ---- *)

let attr_name (a : attribute) = a.attr_name.Location.txt
let find_attr name attrs = List.find_opt (fun a -> attr_name a = name) attrs
let has_attr name attrs = find_attr name attrs <> None

let string_payload (a : attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
    Some s
  | _ -> None

(* A waiver attribute must carry its safety argument as a string payload;
   a bare one is itself a finding. *)
let waiver_reason ctx ~rule name attrs =
  match find_attr name attrs with
  | None -> None
  | Some a -> (
    match string_payload a with
    | Some reason -> Some reason
    | None ->
      emit ctx ~rule a.attr_loc
        (Printf.sprintf "[@%s] waiver without a reason string" name);
      None)

let lid_to_string l = String.concat "." (Longident.flatten l)

let head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (lid_to_string txt)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Domain safety *)

let mutable_creators =
  [
    "ref";
    "Stdlib.ref";
    "Hashtbl.create";
    "Buffer.create";
    "Queue.create";
    "Stack.create";
    "Bytes.create";
    "Bytes.make";
    "Array.make";
    "Array.create_float";
    "Array.init";
    "Weak.create";
    "Dynarray.create";
  ]

let rec is_function_spine e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> is_function_spine e
  | _ -> false

(* Scan a toplevel value RHS for mutable-state creators, without entering
   function bodies (state created inside a function is not toplevel
   state). *)
let rec scan_toplevel_value ctx ~guarded ~waiver e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> ()
  | Pexp_apply (f, args) ->
    (match head_ident f with
    | Some "Atomic.make" -> () (* safe by construction *)
    | Some name when List.mem name mutable_creators ->
      if not guarded then
        emit ctx ?waiver ~rule:"dom-mutable-global" e.pexp_loc
          (Printf.sprintf
             "module-toplevel mutable state (%s): use Atomic.t, guard it \
              with a Mutex.t created in the same structure, or waive with \
              [@hrt.unsynchronized \"reason\"]"
             name)
    | _ -> ());
    (match head_ident f with
    | Some "Atomic.make" -> ()
    | _ ->
      scan_toplevel_value ctx ~guarded ~waiver f;
      List.iter (fun (_, a) -> scan_toplevel_value ctx ~guarded ~waiver a) args)
  | Pexp_array _ ->
    if not guarded then
      emit ctx ?waiver ~rule:"dom-mutable-global" e.pexp_loc
        "module-toplevel mutable state (array literal): use Atomic.t, guard \
         it with a Mutex.t created in the same structure, or waive with \
         [@hrt.unsynchronized \"reason\"]"
  | _ -> iter_children ctx ~guarded ~waiver e

and iter_children ctx ~guarded ~waiver e =
  (* Generic one-level descent: the collector iterator does not recurse
     itself, so [default_iterator.expr] hands it exactly the direct
     subexpressions, and [scan_toplevel_value] drives further descent
     (stopping at function boundaries). *)
  let collector =
    {
      Ast_iterator.default_iterator with
      expr = (fun _ child -> scan_toplevel_value ctx ~guarded ~waiver child);
    }
  in
  Ast_iterator.default_iterator.expr collector e

(* Does this binding's RHS create a Mutex.t (making sibling mutable state
   "provably mutex-guarded")? *)
let rec creates_mutex e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> head_ident f = Some "Mutex.create"
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> creates_mutex e
  | Pexp_let (_, _, body) | Pexp_sequence (_, body) | Pexp_open (_, body) ->
    creates_mutex body
  | _ -> false

let domain_check_structure ctx items =
  let has_mutex =
    List.exists
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) -> List.exists (fun vb -> creates_mutex vb.pvb_expr) vbs
        | _ -> false)
      items
  in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            if not (is_function_spine vb.pvb_expr) then begin
              let waiver =
                match
                  waiver_reason ctx ~rule:"dom-waiver-reason"
                    "hrt.unsynchronized" vb.pvb_attributes
                with
                | Some r -> Some r
                | None ->
                  waiver_reason ctx ~rule:"dom-waiver-reason"
                    "hrt.unsynchronized" vb.pvb_expr.pexp_attributes
              in
              scan_toplevel_value ctx ~guarded:has_mutex ~waiver vb.pvb_expr
            end)
          vbs
      | _ -> ())
    items

(* ------------------------------------------------------------------ *)
(* Determinism *)

let wallclock_idents =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.localtime";
    "Unix.gmtime";
    "Unix.clock_gettime";
    "Sys.time";
  ]

let hashtbl_order_idents = [ "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.hash" ]

let poly_cmp_idents =
  [ "compare"; "min"; "max"; "Stdlib.compare"; "Stdlib.min"; "Stdlib.max" ]

let is_random_ident name =
  name = "Random"
  || (String.length name > 7 && String.sub name 0 7 = "Random.")

let rec is_float_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (inner, { ptyp_desc = Ptyp_constr ({ txt; _ }, []); _ }) ->
    lid_to_string txt = "float" || is_float_operand inner
  | Pexp_constraint (inner, _) -> is_float_operand inner
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident ("~-." | "~+."); _ }; _ }, [ (_, a) ])
    ->
    is_float_operand a
  | _ -> false

let determinism_iterator ctx =
  let stack = ref [] in
  let top () = match !stack with [] -> None | r :: _ -> Some r in
  let with_waiver attrs f =
    match waiver_reason ctx ~rule:"det-waiver-reason" "hrt.nondet" attrs with
    | Some r ->
      stack := r :: !stack;
      f ();
      stack := List.tl !stack
    | None -> f ()
  in
  let expr it e =
    with_waiver e.pexp_attributes (fun () ->
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
          let name = lid_to_string txt in
          if List.mem name wallclock_idents then
            emit ctx ?waiver:(top ()) ~rule:"det-wallclock" e.pexp_loc
              (name
             ^ ": wall-clock in the deterministic core; use the engine \
                clock (Engine.now / Time) for simulated time, or \
                Hrt_harness.Clock (monotonic, NTP-step immune) where the \
                scope allows self-timing")
          else if is_random_ident name then
            emit ctx ?waiver:(top ()) ~rule:"det-entropy" e.pexp_loc
              (name ^ ": ambient entropy; draw from the seeded Rng instead")
          else if List.mem name hashtbl_order_idents then
            emit ctx ?waiver:(top ()) ~rule:"det-hashtbl-order" e.pexp_loc
              (name
             ^ ": hash-order iteration can feed ordered output; iterate \
                sorted keys or waive with [@hrt.nondet \"reason\"]")
        | Pexp_apply (f, args) -> (
          match head_ident f with
          | Some name
            when List.mem name poly_cmp_idents
                 && List.exists (fun (_, a) -> is_float_operand a) args ->
            emit ctx ?waiver:(top ()) ~rule:"det-float-polycmp" e.pexp_loc
              (name
             ^ " on float operands: use Float.compare / Float.min / \
                Float.max (NaN-total, no polymorphic dispatch)")
          | _ -> ())
        | _ -> ());
        Ast_iterator.default_iterator.expr it e)
  in
  let value_binding it vb =
    with_waiver vb.pvb_attributes (fun () ->
        Ast_iterator.default_iterator.value_binding it vb)
  in
  { Ast_iterator.default_iterator with expr; value_binding }

(* ------------------------------------------------------------------ *)
(* Hot-path allocation *)

let format_prefixes = [ "Printf."; "Format."; "Fmt." ]

let is_format_ident name =
  List.exists
    (fun p ->
      String.length name > String.length p
      && String.sub name 0 (String.length p) = p)
    format_prefixes

let append_idents =
  [
    "@";
    "^";
    "List.append";
    "List.map";
    "List.mapi";
    "List.rev_map";
    "List.concat";
    "List.concat_map";
    "List.rev_append";
    "List.filter";
    "String.concat";
    "Array.append";
    "Array.to_list";
  ]

(* Known arities for partial-application detection: applying one of these
   to fewer arguments builds a closure at runtime. *)
let known_arity =
  [
    ("List.map", 2);
    ("List.mapi", 2);
    ("List.iter", 2);
    ("List.iter2", 3);
    ("List.fold_left", 3);
    ("List.fold_right", 3);
    ("List.filter", 2);
    ("List.exists", 2);
    ("Array.map", 2);
    ("Array.iter", 2);
    ("Array.fold_left", 3);
    ("Hashtbl.fold", 3);
    ("Hashtbl.iter", 2);
    ("Option.map", 2);
    ("Option.iter", 2);
  ]

let rec is_static_const e =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_construct (_, Some a) -> is_static_const a
  | Pexp_tuple es -> List.for_all is_static_const es
  | Pexp_variant (_, None) -> true
  | Pexp_variant (_, Some a) -> is_static_const a
  | _ -> false

let alloc_iterator ctx =
  let stack = ref [] in
  let top () = match !stack with [] -> None | r :: _ -> Some r in
  let with_waiver attrs f =
    match waiver_reason ctx ~rule:"alloc-waiver-reason" "hrt.alloc_ok" attrs with
    | Some r ->
      stack := r :: !stack;
      f ();
      stack := List.tl !stack
    | None -> f ()
  in
  (* One diagnostic per cons spine, not one per cell, and none for the
     internal (head, tail) tuples of the cells themselves. *)
  let skip = Hashtbl.create 16 in
  let mark e =
    Hashtbl.replace skip
      (e.pexp_loc.Location.loc_start, e.pexp_loc.Location.loc_end)
      ()
  in
  let skipped e =
    Hashtbl.mem skip (e.pexp_loc.Location.loc_start, e.pexp_loc.Location.loc_end)
  in
  let expr it e =
    if has_attr "hrt.cold" e.pexp_attributes then ()
    else
      with_waiver e.pexp_attributes (fun () ->
          (match e.pexp_desc with
          | Pexp_match ({ pexp_desc = Pexp_tuple _; _ } as scrut, _) ->
            (* [match (a, b) with] compiles without building the tuple. *)
            mark scrut
          | Pexp_fun _ | Pexp_function _ ->
            emit ctx ?waiver:(top ()) ~rule:"alloc-closure" e.pexp_loc
              "closure literal in a hot path (allocates unless capture-free)"
          | Pexp_tuple _ when not (is_static_const e) && not (skipped e) ->
            emit ctx ?waiver:(top ()) ~rule:"alloc-tuple" e.pexp_loc
              "tuple construction in a hot path"
          | Pexp_construct ({ txt = Longident.Lident "Some"; _ }, Some _)
            when not (is_static_const e) ->
            emit ctx ?waiver:(top ()) ~rule:"alloc-option" e.pexp_loc
              "option construction in a hot path"
          | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some arg)
            when not (is_static_const e) ->
            if not (skipped e) then
              emit ctx ?waiver:(top ()) ~rule:"alloc-list" e.pexp_loc
                "list construction in a hot path";
            (match arg.pexp_desc with
            | Pexp_tuple [ _; tl ] ->
              mark arg;
              (match tl.pexp_desc with
              | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) ->
                mark tl
              | _ -> ())
            | _ -> ())
          | Pexp_apply (f, args) -> (
            match head_ident f with
            | Some name -> (
              match List.assoc_opt name known_arity with
              | Some ar when List.length args < ar ->
                emit ctx ?waiver:(top ()) ~rule:"alloc-partial" e.pexp_loc
                  (Printf.sprintf
                     "partial application of %s (%d of %d arguments) builds \
                      a closure in a hot path"
                     name (List.length args) ar)
              | _ ->
                if is_format_ident name then
                  emit ctx ?waiver:(top ()) ~rule:"alloc-format" e.pexp_loc
                    (name ^ ": formatting allocates in a hot path")
                else if List.mem name append_idents then
                  emit ctx ?waiver:(top ()) ~rule:"alloc-append" e.pexp_loc
                    (name ^ ": list/string building allocates in a hot path"))
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e)
  in
  let value_binding it vb =
    if has_attr "hrt.cold" vb.pvb_attributes then ()
    else
      with_waiver vb.pvb_attributes (fun () ->
          Ast_iterator.default_iterator.value_binding it vb)
  in
  { Ast_iterator.default_iterator with expr; value_binding }

(* Peel the definition spine of a binding (the leading fun chain and
   constraints): those funs are the function's own definition, not
   closure literals. *)
let rec peel_spine e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> peel_spine body
  | Pexp_constraint (body, _) | Pexp_coerce (body, _, _) -> peel_spine body
  | _ -> e

let hot_check_binding ctx vb =
  let it = alloc_iterator ctx in
  let body = peel_spine vb.pvb_expr in
  it.Ast_iterator.expr it body

(* ------------------------------------------------------------------ *)
(* Structure walk: domain at each structure level, alloc wherever a hot
   annotation is in force, determinism over the whole file. *)

let structure_is_hot items =
  List.exists
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute a -> attr_name a = "hrt.hot"
      | _ -> false)
    items

let binding_is_hot vb =
  has_attr "hrt.hot" vb.pvb_attributes
  || has_attr "hrt.hot" vb.pvb_expr.pexp_attributes

let binding_is_cold vb =
  has_attr "hrt.cold" vb.pvb_attributes
  || has_attr "hrt.cold" vb.pvb_expr.pexp_attributes

let rec walk_structure ctx ~hot items =
  domain_check_structure ctx items;
  let hot = hot || structure_is_hot items in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            if (hot || binding_is_hot vb) && not (binding_is_cold vb) then
              hot_check_binding ctx vb)
          vbs
      | Pstr_module mb -> walk_module ctx ~hot mb.pmb_expr
      | Pstr_recmodule mbs ->
        List.iter (fun mb -> walk_module ctx ~hot mb.pmb_expr) mbs
      | _ -> ())
    items

and walk_module ctx ~hot me =
  match me.pmod_desc with
  | Pmod_structure items -> walk_structure ctx ~hot items
  | Pmod_functor (_, body) -> walk_module ctx ~hot body
  | Pmod_constraint (me, _) -> walk_module ctx ~hot me
  | _ -> ()

let check ~file ~rule_on ast =
  let ctx = { file; on = rule_on; out = [] } in
  walk_structure ctx ~hot:false ast;
  let det = determinism_iterator ctx in
  det.Ast_iterator.structure det ast;
  List.sort Diag.compare_diag ctx.out
