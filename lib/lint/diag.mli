(** A single lint finding: location, rule id, message, optional waiver. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
  waiver : string option;
}

val v :
  ?waiver:string ->
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  string ->
  t

val of_loc :
  ?waiver:string -> file:string -> rule:string -> Location.t -> string -> t

val waived : t -> bool

(** Waiver-budget family keyword for a rule id: ["unsynchronized"] for
    [dom-*], ["nondet"] for [det-*], ["alloc_ok"] for [alloc-*]. *)
val family : t -> string

val compare_diag : t -> t -> int

(** [file:line:col: [rule-id] message], with the waiver reason inlined
    when present. *)
val to_string : t -> string
