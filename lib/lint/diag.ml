(* A single lint finding. [waiver] is [Some reason] when an explicit
   waiver attribute covers the finding: it is still reported (and counted
   against the configured budget) but does not fail the run. *)

type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  msg : string;
  waiver : string option;
}

let v ?waiver ~file ~line ~col ~rule msg = { file; line; col; rule; msg; waiver }

let of_loc ?waiver ~file ~rule (loc : Location.t) msg =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    msg;
    waiver;
  }

let waived d = d.waiver <> None

(* The family a rule belongs to is encoded in its id prefix; the waiver
   budget is tracked per family keyword. *)
let family d =
  if String.length d.rule >= 4 && String.sub d.rule 0 4 = "dom-" then
    "unsynchronized"
  else if String.length d.rule >= 4 && String.sub d.rule 0 4 = "det-" then
    "nondet"
  else if String.length d.rule >= 6 && String.sub d.rule 0 6 = "alloc-" then
    "alloc_ok"
  else "other"

let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_string d =
  match d.waiver with
  | None -> Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.msg
  | Some reason ->
    Printf.sprintf "%s:%d:%d: [%s] (waived: %s) %s" d.file d.line d.col d.rule
      reason d.msg
