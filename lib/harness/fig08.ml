let run ?ctx () =
  [
    Miss_sweep.miss_time_table
      ~title:"Fig 8: miss times on Phi, mean +- std (us); 0 where feasible"
      (Fig06.points ~ctx:(Exp.or_default ctx) ());
  ]
