let run ?(scale = Exp.scale_of_env ()) () =
  Fig15.table_of
    ~title:"Fig 16: barrier removal, finest granularity (255 CPUs at Full)"
    ~scale ~params:Hrt_bsp.Bsp.fine_grain ()
