let run ?ctx () =
  let ctx = Exp.or_default ctx in
  Fig15.table_of
    ~title:"Fig 16: barrier removal, finest granularity (255 CPUs at Full)"
    ~ctx ~params:Hrt_bsp.Bsp.fine_grain ()
