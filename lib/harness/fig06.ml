let points ?(scale = Exp.scale_of_env ()) () =
  Miss_sweep.sweep ~scale ~platform:Hrt_hw.Platform.phi
    ~periods_us:Miss_sweep.phi_periods ~slices_pct:Miss_sweep.slices ()

let run ?(scale = Exp.scale_of_env ()) () =
  [
    Miss_sweep.rate_table
      ~title:
        "Fig 6: deadline miss rate on Phi (admission control off). Edge of \
         feasibility ~10us"
      (points ~scale ());
  ]
