let points ?ctx () =
  Miss_sweep.sweep ~ctx:(Exp.or_default ctx) ~platform:Hrt_hw.Platform.phi
    ~periods_us:Miss_sweep.phi_periods ~slices_pct:Miss_sweep.slices ()

let run ?ctx () =
  [
    Miss_sweep.rate_table
      ~title:
        "Fig 6: deadline miss rate on Phi (admission control off). Edge of \
         feasibility ~10us"
      (points ~ctx:(Exp.or_default ctx) ());
  ]
