(** Fault-intensity sweep: graceful degradation under injected faults.

    Boots a mixed-criticality workload (one high-criticality thread with
    ample slack, two heavy low-criticality threads, all on CPU 1) and
    sweeps a fault plan's intensity for EDF and RM, with degradation on
    and off. The headline result: with degradation on, high-criticality
    misses stay at zero across the whole intensity range (the lows are
    shed), while with it off EDF's overload behaviour lets overdue
    low-criticality threads starve the high one. *)

open Hrt_engine
open Hrt_core

val hi_period : Time.ns
val hi_slice : Time.ns
val lo_period : Time.ns
val lo_slice : Time.ns

type outcome = {
  hi_misses : int;
  lo_misses : int;
  hi_arrivals : int;
  lo_arrivals : int;
  sheds : int;
  recovers : int;
  boundary : int;  (** shed boundary at end of run *)
}

val run_demo :
  ?sink:Hrt_obs.Sink.t ->
  seed:int64 ->
  policy:Config.policy ->
  degrade:bool ->
  fault:Hrt_fault.Fault.Plan.t option ->
  horizon:Time.ns ->
  unit ->
  outcome
(** One run of the demo workload (the CLI's [run --inject] default
    scenario). *)

val intensities : float list
(** The sweep's intensity grid (0 = no fault). *)

type point = {
  policy : Config.policy;
  intensity : float;
  degrade : bool;
  out : outcome;
}

val points :
  ?ctx:Exp.Ctx.t -> ?plan_name:string -> unit -> point list
(** The full (policy x intensity x degrade) grid, fanned across
    [ctx.jobs] domains. [plan_name] defaults to ["smi-storm"]. *)

val table : title:string -> point list -> Hrt_stats.Table.t

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
(** The registry entry point. *)
