open Hrt_engine
open Hrt_core
module Fault = Hrt_fault.Fault

(* The mixed-criticality demo workload: one high-criticality control
   thread with ample slack next to two heavy low-criticality workers on
   the same CPU. Nominal utilization (0.1 + 2 x 0.3 = 0.7) is admissible,
   but an injected fault plan pushes the CPU past capacity: without
   degradation EDF's overload behaviour lets the overdue low threads
   starve the high one; with degradation the first low miss sheds both
   lows and the high thread keeps every deadline. *)

let hi_period = Time.us 500
let hi_slice = Time.us 50
let lo_period = Time.us 1000
let lo_slice = Time.us 300

(* A sized-job body: compute [work] once per arrival, then sleep until the
   next one. Unlike [Program.compute_forever], the demand is finite per
   period, so WCET-overrun faults (which inflate each burst) actually
   change feasibility. While shed to aperiodic the thread just polls
   lazily; recovery re-anchors its arrivals. *)
let sized_job ~work ~period =
  let served = ref 0 in
  fun ({ Thread.svc; self } : Thread.ctx) ->
    if self.Thread.arrivals > !served then begin
      served := self.Thread.arrivals;
      Thread.Compute work
    end
    else if Thread.is_realtime self then
      Thread.Sleep_until Time.(self.Thread.arrival + period)
    else Thread.Sleep_until Time.(svc.Thread.now () + period)

let spawn_rt sys ~name ~cpu ~crit ~period ~slice =
  let constr = Constraints.periodic ~period ~slice () in
  Scheduler.spawn sys ~name ~cpu ~bound:true ~crit
    (Program.seq
       [
         Program.of_steps
           (Scheduler.admission_ops sys constr ~on_result:(fun _ -> ()));
         sized_job ~work:slice ~period;
       ])

type outcome = {
  hi_misses : int;
  lo_misses : int;
  hi_arrivals : int;
  lo_arrivals : int;
  sheds : int;
  recovers : int;
  boundary : int;  (** shed boundary at end of run *)
}

let run_demo ?(sink = Hrt_obs.Sink.null) ~seed ~policy ~degrade ~fault
    ~horizon () =
  let config =
    {
      Config.default with
      Config.policy;
      degradation = degrade;
      work_stealing = false;
    }
  in
  let sys =
    Scheduler.create ~seed ~num_cpus:2 ~config ~obs:sink
      Hrt_hw.Platform.phi
  in
  let hi =
    spawn_rt sys ~name:"hi" ~cpu:1 ~crit:Constraints.High ~period:hi_period
      ~slice:hi_slice
  in
  let lo_a =
    spawn_rt sys ~name:"lo-a" ~cpu:1 ~crit:Constraints.Low ~period:lo_period
      ~slice:lo_slice
  in
  let lo_b =
    spawn_rt sys ~name:"lo-b" ~cpu:1 ~crit:Constraints.Low ~period:lo_period
      ~slice:lo_slice
  in
  (match fault with Some plan -> Fault.inject plan sys | None -> ());
  Scheduler.run ~until:horizon sys;
  let sheds, recovers, _demotes =
    Local_sched.degradation_stats (Scheduler.sched sys 1)
  in
  {
    hi_misses = hi.Thread.misses;
    lo_misses = lo_a.Thread.misses + lo_b.Thread.misses;
    hi_arrivals = hi.Thread.arrivals;
    lo_arrivals = lo_a.Thread.arrivals + lo_b.Thread.arrivals;
    sheds;
    recovers;
    boundary = Local_sched.shed_boundary (Scheduler.sched sys 1);
  }

let intensities = [ 0.0; 0.5; 1.0; 1.5; 2.0 ]

type point = {
  policy : Config.policy;
  intensity : float;
  degrade : bool;
  out : outcome;
}

(* One grid point per (policy, intensity, degrade) combination; each is a
   self-contained job so the sweep fans across domains. *)
let points ?ctx ?(plan_name = "smi-storm") () =
  let ctx = Exp.or_default ctx in
  let horizon =
    match ctx.Exp.Ctx.scale with
    | Exp.Quick -> Time.ms 30
    | Exp.Full -> Time.ms 300
  in
  let combos =
    List.concat_map
      (fun policy ->
        List.concat_map
          (fun intensity ->
            List.map
              (fun degrade -> (policy, intensity, degrade))
              [ true; false ])
          intensities)
      [ Config.Edf; Config.Rm ]
  in
  Exp.parallel_map ctx
    (fun (jctx : Exp.Ctx.t) (policy, intensity, degrade) ->
      let fault =
        if intensity = 0. then None else Fault.of_name ~intensity plan_name
      in
      let out =
        run_demo ~sink:jctx.Exp.Ctx.sink ~seed:jctx.Exp.Ctx.seed ~policy
          ~degrade ~fault ~horizon ()
      in
      { policy; intensity; degrade; out })
    combos

let pct misses arrivals =
  if arrivals = 0 then "-"
  else Printf.sprintf "%.0f%%" (100. *. float_of_int misses /. float_of_int arrivals)

let table ~title pts =
  let columns =
    [
      ("policy", Hrt_stats.Table.Left);
      ("intensity", Hrt_stats.Table.Right);
      ("degrade", Hrt_stats.Table.Left);
      ("hi miss", Hrt_stats.Table.Right);
      ("lo miss", Hrt_stats.Table.Right);
      ("sheds", Hrt_stats.Table.Right);
      ("recovers", Hrt_stats.Table.Right);
    ]
  in
  let t = Hrt_stats.Table.create ~title ~columns in
  List.iter
    (fun p ->
      Hrt_stats.Table.row t
        [
          Config.policy_name p.policy;
          Printf.sprintf "%.1f" p.intensity;
          (if p.degrade then "on" else "off");
          pct p.out.hi_misses p.out.hi_arrivals;
          pct p.out.lo_misses p.out.lo_arrivals;
          string_of_int p.out.sheds;
          string_of_int p.out.recovers;
        ])
    pts;
  t

let run ?ctx () =
  let ctx = Exp.or_default ctx in
  [
    table
      ~title:
        "Fault-intensity sweep: miss rate by criticality (smi-storm plan, \
         mixed-criticality workload, EDF vs RM)"
      (points ~ctx ());
  ]
