open Hrt_engine
open Hrt_hw
open Hrt_core
open Hrt_analysis

type outcome = {
  sets : int;
  admitted : int;
  infeasible : int;
  middle : int;
  disagreements : string list;
}

(* Period palette for the randomized corpus: all well above the
   granularity bound, with a 10 ms hyperperiod so the EDF demand scan is
   always exact (never the capped-lcm fallback). *)
let palette = [| Time.us 500; Time.ms 1; Time.ms 2; Time.ms 5; Time.ms 10 |]

(* One set per index: 1-4 periodic tasks whose total utilization spans
   ~0.3 to ~1.1 — straddling both corridor edges (capacity 0.79 with
   overhead on one side, raw feasibility at 1.0 on the other). *)
let gen_tasks ~seed ~index =
  let rng = Rng.create Int64.(add seed (mul 1_000_003L (of_int index))) in
  let n = 1 + Rng.int rng 4 in
  let target = 0.3 +. (0.8 *. Rng.float rng) in
  List.init n (fun _ ->
      let period = palette.(Rng.int rng (Array.length palette)) in
      let share = target /. float_of_int n in
      let slice =
        Time.min period
          (Time.max (Time.us 10)
             (Int64.of_float (Int64.to_float period *. share)))
      in
      Constraints.periodic ~period ~slice ())

let horizon = function
  | Exp.Quick -> Time.ms 103
  | Exp.Full -> Time.ms 503

(* Run the set through the simulator with admission control off, all
   tasks re-anchored to one synchronous release at 3 ms (the critical
   instant — the pattern the exact tests are about; staggered releases
   would let an infeasible set dodge its misses). *)
let simulate ~ctx tasks =
  let config =
    {
      Config.default with
      Config.admission_control = false;
      policy = ctx.Exp.Ctx.policy;
    }
  in
  let sys =
    Scheduler.create ~seed:ctx.Exp.Ctx.seed ~num_cpus:2 ~config
      ~obs:ctx.Exp.Ctx.sink Platform.phi
  in
  let phase = Time.ms 5 in
  let threads =
    List.map
      (fun c ->
        match c with
        | Constraints.Periodic { period; slice; _ } ->
          Exp.periodic_thread sys ~cpu:1 ~phase ~period ~slice ()
        | _ -> invalid_arg "Admit_xval.simulate: periodic tasks only")
      tasks
  in
  ignore
    (Engine.schedule (Scheduler.engine sys) ~at:(Time.ms 2) (fun _ ->
         List.iter
           (fun t -> Scheduler.reanchor sys t ~first_arrival:(Time.ms 3))
           threads));
  Scheduler.run ~until:(horizon ctx.Exp.Ctx.scale) sys;
  Account.misses (Local_sched.account (Scheduler.sched sys 1))

(* The runtime ledger's answer for the whole set, requested one task at
   a time against the given config. *)
let ledger_admits ~config ~overhead_ns tasks =
  let a = Admission.create config ~overhead_ns in
  let old = Constraints.aperiodic () in
  List.for_all
    (fun c -> Admission.admitted (Admission.request a ~now:0L ~old_constr:old c))
    tasks

type classification = Admitted_default | Infeasible_stress | Middle

let check_one ~ctx ~index =
  let policy = ctx.Exp.Ctx.policy in
  let tasks = gen_tasks ~seed:ctx.Exp.Ctx.seed ~index in
  let problems = ref [] in
  let problem fmt =
    Printf.ksprintf
      (fun s -> problems := Printf.sprintf "set %d [%s]: %s" index
            (Config.policy_name policy) s :: !problems)
      fmt
  in
  let overhead_ns = Taskset.overhead_of_platform Platform.phi in
  let default_cfg = { Config.default with Config.policy } in
  let stress_cfg =
    {
      Config.default with
      Config.policy;
      util_limit = 1.0;
      strict_reservations = false;
    }
  in
  let ts_default = Taskset.make ~config:default_cfg ~overhead_ns tasks in
  let ts_stress = Taskset.make ~config:stress_cfg ~overhead_ns:0L tasks in
  let r_default = Oracle.analyze ts_default in
  let r_stress = Oracle.analyze ts_stress in
  (* Certificates must replay independently. *)
  (match Oracle.check ts_default r_default with
  | Ok () -> ()
  | Error msg -> problem "default certificate fails replay: %s" msg);
  (match Oracle.check ts_stress r_stress with
  | Ok () -> ()
  | Error msg -> problem "stress certificate fails replay: %s" msg);
  let misses = simulate ~ctx tasks in
  let cls =
    if Admission.admitted r_default.Oracle.verdict then Admitted_default
    else if Oracle.exact_infeasible ts_stress r_stress then Infeasible_stress
    else Middle
  in
  (match cls with
  | Admitted_default ->
    if misses > 0 then
      problem "oracle-admitted (headroom %s) but simulator missed %d deadlines"
        (match Admission.headroom r_default.Oracle.verdict with
        | Some h -> Printf.sprintf "%.4f" h
        | None -> "?")
        misses
  | Infeasible_stress ->
    if misses = 0 then
      problem "oracle proved infeasibility but the simulator never missed"
  | Middle -> ());
  (* Ledger agreement. EDF: the oracle's demand scan and the ledger's
     Hyperperiod_sim mode share their numerics — verdicts must match
     exactly. RM: the ledger's Liu-Layland bound is sufficient only, so
     ledger admission (at zero overhead) must imply exact-test
     admission. *)
  (match policy with
  | Config.Edf ->
    let sim_cfg =
      { default_cfg with Config.admission = Config.Hyperperiod_sim }
    in
    let ledger = ledger_admits ~config:sim_cfg ~overhead_ns tasks in
    let ts_sim = Taskset.make ~config:sim_cfg ~overhead_ns tasks in
    let oracle = Admission.admitted (Oracle.analyze ts_sim).Oracle.verdict in
    if ledger <> oracle then
      problem "EDF ledger (%b) disagrees with oracle (%b)" ledger oracle
  | Config.Rm ->
    let ledger = ledger_admits ~config:default_cfg ~overhead_ns:0L tasks in
    let ts_rm = Taskset.make ~config:default_cfg ~overhead_ns:0L tasks in
    let oracle = Admission.admitted (Oracle.analyze ts_rm).Oracle.verdict in
    if ledger && not oracle then
      problem "RM Liu-Layland admission not confirmed by the exact test");
  (cls, List.rev !problems)

let run ?ctx ?(sets = 200) ~policy () =
  let ctx = { (Exp.or_default ctx) with Exp.Ctx.policy } in
  let results =
    Exp.parallel_map ctx
      (fun jctx index -> check_one ~ctx:jctx ~index)
      (List.init sets Fun.id)
  in
  List.fold_left
    (fun acc (cls, problems) ->
      {
        acc with
        admitted = (acc.admitted + match cls with Admitted_default -> 1 | _ -> 0);
        infeasible =
          (acc.infeasible + match cls with Infeasible_stress -> 1 | _ -> 0);
        middle = (acc.middle + match cls with Middle -> 1 | _ -> 0);
        disagreements = acc.disagreements @ problems;
      })
    { sets; admitted = 0; infeasible = 0; middle = 0; disagreements = [] }
    results

let pp_outcome fmt o =
  Format.fprintf fmt
    "@[<v>%d sets: %d admitted / %d infeasible / %d middle; %d \
     disagreements%a@]"
    o.sets o.admitted o.infeasible o.middle
    (List.length o.disagreements)
    (fun fmt -> function
      | [] -> ()
      | ds ->
        Format.fprintf fmt "@,%a"
          (Format.pp_print_list Format.pp_print_string)
          ds)
    o.disagreements
