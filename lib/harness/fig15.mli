(** Fig 15: benefit of barrier removal at the coarsest granularity.

    Every (period, slice) combination runs the BSP benchmark twice under
    hard real-time group scheduling — with and without the per-iteration
    barrier. Paper claim: almost all points gain from removal; at 90 %
    utilization the no-barrier real-time run matches (sometimes slightly
    exceeds) the non-real-time run with barriers at 100 % utilization. *)

val table_of :
  title:string ->
  ctx:Exp.Ctx.t ->
  params:(cpus:int -> barrier:bool -> Hrt_bsp.Bsp.params) ->
  unit ->
  Hrt_stats.Table.t list
(** Shared with Fig 16. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
