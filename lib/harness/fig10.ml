open Hrt_engine
open Hrt_core
open Hrt_group
open Hrt_stats

type timing = {
  join : Summary.t;
  election : Summary.t;
  admission : Summary.t;  (* whole group change constraints *)
  barrier_phase : Summary.t;  (* reduced -> done *)
  local : Summary.t;  (* attached -> admitted (local admission inside) *)
}

let fresh () =
  {
    join = Summary.create ();
    election = Summary.create ();
    admission = Summary.create ();
    barrier_phase = Summary.create ();
    local = Summary.create ();
  }

(* One experiment: n workers join a group and collectively adopt periodic
   constraints; per-thread step boundaries are timestamped. *)
let measure (ctx : Exp.Ctx.t) n =
  let plat = Hrt_hw.Platform.phi in
  let sys =
    Scheduler.create ~seed:ctx.Exp.Ctx.seed ~num_cpus:(n + 1)
      ~obs:ctx.Exp.Ctx.sink plat
  in
  let ghz = plat.Hrt_hw.Platform.ghz in
  let t = fresh () in
  let group = Group.create sys ~name:"fig10" in
  let start_barrier = Gbarrier.create sys ~parties:n in
  let marks : (int, (string * Time.ns) list) Hashtbl.t = Hashtbl.create 64 in
  let mark name (th : Thread.t) now =
    let cur = Option.value ~default:[] (Hashtbl.find_opt marks th.Thread.id) in
    Hashtbl.replace marks th.Thread.id ((name, now) :: cur)
  in
  (* A high-utilization constraint: once members become real-time mid-
     protocol, the remaining steps run nearly unthrottled, as on the
     paper's dedicated testbed. *)
  let constr =
    Constraints.periodic ~period:(Time.ms 10) ~slice:(Time.us 7_800) ()
  in
  for i = 1 to n do
    ignore
      (Scheduler.spawn sys ~name:(Printf.sprintf "g%d" i) ~cpu:i ~bound:true
         (Program.seq
            [
              (* Align all threads before joining so join contention is
                 maximal, as when a runtime starts a parallel phase. *)
              Gbarrier.cross start_barrier;
              (fun ({ Thread.svc; self } : Thread.ctx) ->
                mark "join-start" self (svc.Thread.now ());
                Thread.Exit);
              Group.join group;
              (fun ({ Thread.svc; self } : Thread.ctx) ->
                mark "join-done" self (svc.Thread.now ());
                Thread.Exit);
              (* Park until the harness swaps in the admission body. *)
              (fun _ctx -> Thread.Block);
            ]))
  done;
  (* Two engine phases: first everyone joins and parks, then the group
     collectively changes constraints. *)
  Scheduler.run ~until:(Time.ms 400) sys;
  let sess = Group_sched.prepare group constr in
  List.iter
    (fun (th : Thread.t) ->
      th.Thread.body <-
        Program.seq
          [
            Group_sched.change_constraints ~probe:mark sess
              ~on_result:(fun _ -> ());
            Program.of_steps [ Thread.Exit ];
          ];
      Scheduler.wake sys th)
    (Group.members group);
  Scheduler.run ~until:(Time.sec 2) sys;
  (* Collect per-thread step durations (cycles), in thread-id order so
     the float accumulation in each Summary is independent of hash
     order. *)
  let per_thread =
    (Hashtbl.fold (fun id entries acc -> (id, entries) :: acc) marks []
     [@hrt.nondet "entries are sorted by thread id before accumulation"])
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (_, entries) ->
      let find name = List.assoc_opt name entries in
      let span a b acc =
        match (find a, find b) with
        | Some ta, Some tb ->
          Summary.add acc (Int64.to_float Time.(tb - ta) *. ghz)
        | _ -> ()
      in
      span "join-start" "join-done" t.join;
      span "start" "elected" t.election;
      span "start" "done" t.admission;
      span "reduced" "done" t.barrier_phase;
      span "attached" "admitted" t.local)
    per_thread;
  t

let run ?ctx () =
  let ctx = Exp.or_default ctx in
  let sizes =
    match ctx.Exp.Ctx.scale with
    | Exp.Quick -> [ 2; 8; 16; 32; 64 ]
    | Exp.Full -> [ 2; 8; 32; 64; 128; 255 ]
  in
  let table =
    Table.create
      ~title:
        "Fig 10: group admission control costs on Phi (cycles, mean / max \
         across threads). Linear in group size; local admission constant"
      ~columns:
        [
          ("threads", Table.Right);
          ("join", Table.Right);
          ("election", Table.Right);
          ("group change constraints", Table.Right);
          ("barrier/phase corr", Table.Right);
          ("local change constraints", Table.Right);
          ("total (Mcycles)", Table.Right);
        ]
  in
  (* One job per group size; rows land in size order. *)
  List.iter
    (fun (n, t) ->
      let cell s =
        Printf.sprintf "%.2g / %.2g" (Summary.mean s) (Summary.max s)
      in
      let total =
        (Summary.mean t.join +. Summary.mean t.election
        +. Summary.mean t.admission)
        /. 1e6
      in
      Table.row table
        [
          string_of_int n;
          cell t.join;
          cell t.election;
          cell t.admission;
          cell t.barrier_phase;
          cell t.local;
          Printf.sprintf "%.2f" total;
        ])
    (Exp.parallel_map ctx (fun jctx n -> (n, measure jctx n)) sizes);
  [ table ]
