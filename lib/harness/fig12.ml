open Hrt_stats

let run ?ctx () =
  let ctx = Exp.or_default ctx in
  let sizes =
    match ctx.Exp.Ctx.scale with
    | Exp.Quick -> [ 8; 32; 64 ]
    | Exp.Full -> [ 8; 64; 128; 255 ]
  in
  let table =
    Table.create
      ~title:
        "Fig 12: cross-CPU synchronization vs group size (max difference \
         in context-switch instants, cycles). Bias grows with size; phase \
         correction cancels it; residual variation is size-independent"
      ~columns:
        [
          ("threads", Table.Right);
          ("uncorrected mean", Table.Right);
          ("uncorrected max", Table.Right);
          ("corrected mean", Table.Right);
          ("corrected max", Table.Right);
        ]
  in
  (* One job per group size (each job runs the uncorrected and corrected
     variants back to back); rows land in size order. *)
  List.iter
    (fun (n, raw, fixed) ->
      let sr = Summary.of_array raw and sf = Summary.of_array fixed in
      Table.row table
        [
          string_of_int n;
          Printf.sprintf "%.0f" (Summary.mean sr);
          Printf.sprintf "%.0f" (Summary.max sr);
          Printf.sprintf "%.0f" (Summary.mean sf);
          Printf.sprintf "%.0f" (Summary.max sf);
        ])
    (Exp.parallel_map ctx
       (fun jctx n ->
         ( n,
           Fig11.collect ~ctx:jctx ~workers:n ~phase_correction:false (),
           Fig11.collect ~ctx:jctx ~workers:n ~phase_correction:true () ))
       sizes);
  [ table ]
