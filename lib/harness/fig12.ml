open Hrt_stats

let run ?(scale = Exp.scale_of_env ()) () =
  let sizes =
    match scale with
    | Exp.Quick -> [ 8; 32; 64 ]
    | Exp.Full -> [ 8; 64; 128; 255 ]
  in
  let table =
    Table.create
      ~title:
        "Fig 12: cross-CPU synchronization vs group size (max difference \
         in context-switch instants, cycles). Bias grows with size; phase \
         correction cancels it; residual variation is size-independent"
      ~columns:
        [
          ("threads", Table.Right);
          ("uncorrected mean", Table.Right);
          ("uncorrected max", Table.Right);
          ("corrected mean", Table.Right);
          ("corrected max", Table.Right);
        ]
  in
  List.iter
    (fun n ->
      let raw = Fig11.collect ~scale ~workers:n ~phase_correction:false () in
      let fixed = Fig11.collect ~scale ~workers:n ~phase_correction:true () in
      let sr = Summary.of_array raw and sf = Summary.of_array fixed in
      Table.row table
        [
          string_of_int n;
          Printf.sprintf "%.0f" (Summary.mean sr);
          Printf.sprintf "%.0f" (Summary.max sr);
          Printf.sprintf "%.0f" (Summary.mean sf);
          Printf.sprintf "%.0f" (Summary.max sf);
        ])
    sizes;
  [ table ]
