(** Shared experiment plumbing for the figure-reproduction harness. *)

open Hrt_engine
open Hrt_core

type scale =
  | Quick  (** scaled-down CPU counts / sweeps / durations (seconds of wall time) *)
  | Full  (** paper-scale parameters (minutes of wall time) *)

val scale_of_env : unit -> scale
(** [Full] when the environment variable [HRT_FULL] is set, else [Quick]. *)

val cpus : scale -> int -> int -> int
(** [cpus scale quick full] picks a worker count. *)

val jobs_of_env : unit -> int
(** Parallel sweep width from the [HRT_JOBS] environment variable;
    [1] (sequential) when unset or unparsable. *)

(** The run context: everything an experiment needs to be self-contained.

    A context replaces the process-wide mutable defaults the harness used
    to lean on (the default observability sink, the ambient [--policy]).
    Every harness entry point takes [?ctx] and threads it into each
    simulated system it builds — engine seed, scale, scheduling policy,
    sink — so two runs with equal contexts are bit-identical, and
    independent jobs can execute on parallel domains without sharing any
    ambient state. *)
module Ctx : sig
  type t = {
    seed : int64;  (** engine seed for every system the experiment boots *)
    scale : scale;
    policy : Config.policy;  (** the CLI's [--policy], explicit *)
    sink : Hrt_obs.Sink.t;  (** where instrumented code reports *)
    jobs : int;  (** parallel sweep width (1 = sequential) *)
    fault : Hrt_fault.Fault.Plan.t option;
        (** fault plan armed on every system the experiment boots *)
    degrade : bool;  (** enable graceful degradation (DESIGN §8) *)
  }

  val make :
    ?seed:int64 ->
    ?scale:scale ->
    ?policy:Config.policy ->
    ?sink:Hrt_obs.Sink.t ->
    ?jobs:int ->
    ?fault:Hrt_fault.Fault.Plan.t ->
    ?degrade:bool ->
    unit ->
    t
  (** Defaults — the documented behavior of every [?ctx]-taking entry
      point when no context is passed: seed 42 (the repo-wide golden
      seed), scale from [HRT_FULL], EDF policy, the disabled
      {!Hrt_obs.Sink.null} sink, jobs from [HRT_JOBS] (else 1), no fault
      plan, degradation off. *)

  val default : unit -> t
  (** [make ()]. *)

  val quick : unit -> t
  (** [make ~scale:Quick ()] — the test suite's context. *)

  val with_sink : t -> Hrt_obs.Sink.t -> t
  val with_jobs : t -> int -> t
  val with_fault : t -> Hrt_fault.Fault.Plan.t option -> t
  val with_degrade : t -> bool -> t
end

val or_default : Ctx.t option -> Ctx.t
(** Resolve an optional [?ctx] argument. *)

val parallel_map : Ctx.t -> (Ctx.t -> 'a -> 'b) -> 'a list -> 'b list
(** Run one job per list element, fanned across [ctx.jobs] domains
    ({!Hrt_par.Par}), results in submission order. Each job gets its own
    context: the parent's seed/scale/policy, plus a private child sink
    when the parent sink is enabled (absorbed back in submission order
    afterwards, so observability output matches a sequential run —
    {!Hrt_obs.Sink.absorb}). Jobs must be independent: each builds its
    own simulated system and touches nothing shared. Output is therefore
    bit-identical for any [jobs] value. *)

val periodic_thread :
  Scheduler.t ->
  cpu:int ->
  ?phase:Time.ns ->
  period:Time.ns ->
  slice:Time.ns ->
  ?on_admit:(Admission.verdict -> unit) ->
  unit ->
  Thread.t
(** Spawn a CPU-burning thread that requests the given periodic
    constraints through the normal admission path. [on_admit] receives the
    typed admission verdict. *)

type spread_collector

val make_spread_collector :
  Scheduler.t -> workers:int -> period:Time.ns -> settle:Time.ns -> spread_collector
(** Installs a dispatch hook measuring, for every arrival period, the
    cross-CPU spread (max - min, in cycles) of the instants the group
    members were context-switched in — the Fig 11/12 instrument. Workers
    are assumed to live on CPUs 1..workers with aligned periods. *)

val spreads : spread_collector -> float array
(** Per-period spreads (cycles), in time order. *)

val run_group_admission :
  ?phase_correction:bool ->
  ?probe:(string -> Thread.t -> Time.ns -> unit) ->
  ?after:(Thread.ctx -> Thread.op) ->
  Scheduler.t ->
  workers:int ->
  Constraints.t ->
  unit ->
  unit
(** Spawn [workers] threads (CPUs 1..workers), have them join one group and
    collectively adopt the constraints (Algorithm 1), then continue with
    [after] (default: burn CPU forever). Does not run the engine. *)
