(** Shared experiment plumbing for the figure-reproduction harness. *)

open Hrt_engine
open Hrt_core

type scale =
  | Quick  (** scaled-down CPU counts / sweeps / durations (seconds of wall time) *)
  | Full  (** paper-scale parameters (minutes of wall time) *)

val scale_of_env : unit -> scale
(** [Full] when the environment variable [HRT_FULL] is set, else [Quick]. *)

val cpus : scale -> int -> int -> int
(** [cpus scale quick full] picks a worker count. *)

val set_policy : Config.policy -> unit
(** Set the scheduling policy experiments run under (the CLI's [--policy]
    flag). Defaults to {!Config.Edf}, the paper's discipline. *)

val policy : unit -> Config.policy
(** The policy experiment configs should carry. *)

val periodic_thread :
  Scheduler.t ->
  cpu:int ->
  ?phase:Time.ns ->
  period:Time.ns ->
  slice:Time.ns ->
  ?on_admit:(bool -> unit) ->
  unit ->
  Thread.t
(** Spawn a CPU-burning thread that requests the given periodic
    constraints through the normal admission path. *)

type spread_collector

val make_spread_collector :
  Scheduler.t -> workers:int -> period:Time.ns -> settle:Time.ns -> spread_collector
(** Installs a dispatch hook measuring, for every arrival period, the
    cross-CPU spread (max - min, in cycles) of the instants the group
    members were context-switched in — the Fig 11/12 instrument. Workers
    are assumed to live on CPUs 1..workers with aligned periods. *)

val spreads : spread_collector -> float array
(** Per-period spreads (cycles), in time order. *)

val run_group_admission :
  ?phase_correction:bool ->
  ?probe:(string -> Thread.t -> Time.ns -> unit) ->
  ?after:(Thread.ctx -> Thread.op) ->
  Scheduler.t ->
  workers:int ->
  Constraints.t ->
  unit ->
  unit
(** Spawn [workers] threads (CPUs 1..workers), have them join one group and
    collectively adopt the constraints (Algorithm 1), then continue with
    [after] (default: burn CPU forever). Does not run the engine. *)
