open Hrt_engine

type sample = {
  name : string;
  events : int;
  seconds : float;
  events_per_sec : float;
  minor_words_per_event : float;
}

type crossover = { size : int; wheel_ns_per_op : float; heap_ns_per_op : float }

type result = {
  events : int;
  sources : int;
  samples : sample list;
  speedup : float; (* wheel+actions vs heap baseline, events/sec *)
  crossovers : crossover list;
}

(* One timed run: settle the heap first so the measurement window only sees
   the workload's own allocation, then read wall time and minor words. *)
let timed f =
  Gc.full_major ();
  let mw0 = Gc.minor_words () in
  let t0 = Clock.now () in
  f ();
  let seconds = Clock.now () -. t0 in
  (seconds, Gc.minor_words () -. mw0)

let mk_sample name ~events (seconds, minor_words) =
  {
    name;
    events;
    seconds;
    events_per_sec = (if seconds > 0. then float_of_int events /. seconds else 0.);
    minor_words_per_event = minor_words /. float_of_int events;
  }

(* Per-source reschedule stride: small, deterministic, and co-prime-ish so
   the wheel sees a realistic spread of near-future slots rather than one
   hot slot. *)
let stride i = Int64.of_int (1 + (i * 7 mod 97))

(* The engine as the scheduler core uses it: every source schedules one
   cached action value, so steady state allocates nothing but the advancing
   clock's boxed int64s. *)
let run_wheel_actions ~events ~sources =
  let eng = Engine.create () in
  let remaining = ref events in
  let actions = Array.make sources (Engine.Callback (fun _ -> ())) in
  for i = 0 to sources - 1 do
    let after = stride i in
    let key =
      Engine.register_source eng (fun eng ->
          if !remaining > 0 then begin
            decr remaining;
            ignore (Engine.schedule_action_after eng ~after actions.(i))
          end)
    in
    actions.(i) <- Engine.Timer_fire key
  done;
  for i = 0 to sources - 1 do
    ignore (Engine.schedule_action eng ~at:(Int64.of_int (i + 1)) actions.(i))
  done;
  mk_sample "wheel+actions" ~events (timed (fun () -> Engine.run eng))

(* Same wheel-backed engine, but every reschedule allocates a fresh closure
   (the pre-refactor calling convention). Isolates the dispatch win from
   the queue win. *)
let run_wheel_closures ~events ~sources =
  let eng = Engine.create () in
  let remaining = ref events in
  let rec step after eng =
    if !remaining > 0 then begin
      decr remaining;
      ignore (Engine.schedule_after eng ~after (step after))
    end
  in
  for i = 0 to sources - 1 do
    ignore (Engine.schedule eng ~at:(Int64.of_int (i + 1)) (step (stride i)))
  done;
  mk_sample "wheel+closures" ~events (timed (fun () -> Engine.run eng))

(* The original core, reconstructed: a binary heap of closure payloads
   driven by pop, one record + one closure + one option/tuple per event. *)
let run_heap_baseline ~events ~sources =
  let q : (unit -> unit) Heap_queue.t = Heap_queue.create () in
  let now = ref 0L in
  let remaining = ref events in
  let rec step after () =
    if !remaining > 0 then begin
      decr remaining;
      ignore (Heap_queue.add q ~time:(Int64.add !now after) (step after))
    end
  in
  for i = 0 to sources - 1 do
    ignore (Heap_queue.add q ~time:(Int64.of_int (i + 1)) (step (stride i)))
  done;
  let drain () =
    let continue = ref true in
    while !continue do
      match Heap_queue.pop q with
      | Some (t, f) ->
        now := t;
        f ()
      | None -> continue := false
    done
  in
  mk_sample "heap+closures" ~events (timed drain)

(* Queue-structure churn at a fixed population: each op removes the
   earliest entry and re-inserts it [4 * size] ns later, each structure
   through its engine-facing hot path (wheel: take / defer_inflight;
   heap: pop / add). ns/op as a function of population locates the
   crossover between O(1) wheel traffic and O(log n) sifting. *)
let churn_sizes = [ 16; 64; 256; 1024; 4096; 16384 ]

let churn_wheel ~size ~ops =
  let q = Event_queue.create ~dummy:0 in
  let span = Int64.of_int (4 * size) in
  for i = 0 to size - 1 do
    ignore (Event_queue.add q ~time:(Int64.of_int (1 + (i * 13 mod (4 * size)))) 0)
  done;
  let seconds, _ =
    timed (fun () ->
        for _ = 1 to ops do
          let h = Event_queue.take q in
          let t = Int64.of_int (Event_queue.inflight_tick q h) in
          Event_queue.defer_inflight q h ~time:(Int64.add t span)
        done)
  in
  seconds *. 1e9 /. float_of_int ops

let churn_heap ~size ~ops =
  let q : int Heap_queue.t = Heap_queue.create () in
  let span = Int64.of_int (4 * size) in
  for i = 0 to size - 1 do
    ignore (Heap_queue.add q ~time:(Int64.of_int (1 + (i * 13 mod (4 * size)))) 0)
  done;
  let seconds, _ =
    timed (fun () ->
        for _ = 1 to ops do
          match Heap_queue.pop q with
          | Some (t, v) -> ignore (Heap_queue.add q ~time:(Int64.add t span) v)
          | None -> assert false
        done)
  in
  seconds *. 1e9 /. float_of_int ops

let measure ~events ~sources ~churn_ops =
  let wheel = run_wheel_actions ~events ~sources in
  let wheel_cl = run_wheel_closures ~events ~sources in
  let heap = run_heap_baseline ~events ~sources in
  let crossovers =
    List.map
      (fun size ->
        {
          size;
          wheel_ns_per_op = churn_wheel ~size ~ops:churn_ops;
          heap_ns_per_op = churn_heap ~size ~ops:churn_ops;
        })
      churn_sizes
  in
  {
    events;
    sources;
    samples = [ wheel; wheel_cl; heap ];
    speedup =
      (if heap.events_per_sec > 0. then
         wheel.events_per_sec /. heap.events_per_sec
       else 0.);
    crossovers;
  }

(* ---- JSON artifact ---- *)

(* Hand-rolled, flat JSON (the repo deliberately has no JSON dependency).
   The headline numbers are duplicated at top level so the CI regression
   gate can read them with a string scan instead of a parser. *)
let to_json r =
  let b = Buffer.create 1024 in
  let wheel = List.hd r.samples in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hrt-engine-bench/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"events\": %d,\n" r.events);
  Buffer.add_string b (Printf.sprintf "  \"sources\": %d,\n" r.sources);
  Buffer.add_string b
    (Printf.sprintf "  \"wheel_events_per_sec\": %.0f,\n" wheel.events_per_sec);
  Buffer.add_string b (Printf.sprintf "  \"speedup_vs_heap\": %.3f,\n" r.speedup);
  Buffer.add_string b "  \"samples\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"name\": \"%s\", \"events\": %d, \"seconds\": %.6f, \
            \"events_per_sec\": %.0f, \"minor_words_per_event\": %.2f }"
           s.name s.events s.seconds s.events_per_sec s.minor_words_per_event))
    r.samples;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"crossover\": [";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"size\": %d, \"wheel_ns_per_op\": %.1f, \
            \"heap_ns_per_op\": %.1f }"
           c.size c.wheel_ns_per_op c.heap_ns_per_op))
    r.crossovers;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let write r ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json r))

(* Read one top-level numeric field out of a committed artifact. *)
let scan_field text key =
  let needle = Printf.sprintf "\"%s\":" key in
  let nlen = String.length needle in
  let len = String.length text in
  let rec find from =
    if from + nlen > len then None
    else if String.sub text from nlen = needle then Some (from + nlen)
    else find (from + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < len
      && (match text.[!stop] with
         | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | ' ' -> true
         | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.trim (String.sub text start (!stop - start)))

let baseline_events_per_sec ~path =
  if not (Sys.file_exists path) then Error (path ^ ": no such baseline")
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match scan_field text "wheel_events_per_sec" with
    | Some v when v > 0. -> Ok v
    | _ -> Error (path ^ ": no wheel_events_per_sec field")
  end

(* CI gate: the measured wheel throughput may not fall more than
   [tolerance] below the committed baseline. *)
let check_against r ~path ~tolerance =
  match baseline_events_per_sec ~path with
  | Error _ as e -> e
  | Ok base ->
    let wheel = (List.hd r.samples).events_per_sec in
    let floor = base *. (1. -. tolerance) in
    if wheel >= floor then Ok base
    else
      Error
        (Printf.sprintf
           "events/sec regression: measured %.0f < %.0f (baseline %.0f, \
            tolerance %.0f%%)"
           wheel floor base (100. *. tolerance))
