open Hrt_core
open Hrt_stats

let run ?ctx () =
  let ctx = Exp.or_default ctx in
  let num_cpus = Exp.cpus ctx.Exp.Ctx.scale 256 256 in
  let sys =
    Scheduler.create ~seed:ctx.Exp.Ctx.seed ~num_cpus ~obs:ctx.Exp.Ctx.sink
      Hrt_hw.Platform.phi
  in
  let residuals =
    match Scheduler.calibration sys with
    | Some r -> r.Sync_cal.residual_cycles
    | None -> [||]
  in
  let abs = Array.map Float.abs residuals in
  let hist = Histogram.of_array ~lo:0. ~hi:1000. ~bins:10 abs in
  let table =
    Table.create
      ~title:
        "Fig 3: cross-CPU cycle counter offsets vs CPU 0 after calibration \
         (Phi, 256 CPUs)"
      ~columns:
        [ ("offset range (cycles)", Table.Left); ("CPUs", Table.Right) ]
  in
  for i = 0 to Histogram.bins hist - 1 do
    Table.row table
      [
        Printf.sprintf "[%4.0f, %4.0f)" (Histogram.bin_lo hist i)
          (Histogram.bin_hi hist i);
        string_of_int (Histogram.bin_count hist i);
      ]
  done;
  Table.row table [ ">= 1000"; string_of_int (Histogram.overflow hist) ];
  let s = Summary.of_array abs in
  let summary =
    Table.create ~title:"Fig 3: summary"
      ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.row summary [ "CPUs"; string_of_int (Array.length residuals) ];
  Table.row summary [ "mean |offset| (cycles)"; Printf.sprintf "%.0f" (Summary.mean s) ];
  Table.row summary [ "max |offset| (cycles)"; Printf.sprintf "%.0f" (Summary.max s) ];
  Table.row summary
    [ "within 1000 cycles"; Printf.sprintf "%d" (Histogram.count hist - Histogram.overflow hist) ];
  [ table; summary ]
