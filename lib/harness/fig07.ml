let points ?ctx () =
  Miss_sweep.sweep ~ctx:(Exp.or_default ctx) ~platform:Hrt_hw.Platform.r415
    ~periods_us:Miss_sweep.r415_periods ~slices_pct:Miss_sweep.slices ()

let run ?ctx () =
  [
    Miss_sweep.rate_table
      ~title:
        "Fig 7: deadline miss rate on R415 (admission control off). Edge of \
         feasibility ~4us"
      (points ~ctx:(Exp.or_default ctx) ());
  ]
