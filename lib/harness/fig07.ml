let points ?(scale = Exp.scale_of_env ()) () =
  Miss_sweep.sweep ~scale ~platform:Hrt_hw.Platform.r415
    ~periods_us:Miss_sweep.r415_periods ~slices_pct:Miss_sweep.slices ()

let run ?(scale = Exp.scale_of_env ()) () =
  [
    Miss_sweep.rate_table
      ~title:
        "Fig 7: deadline miss rate on R415 (admission control off). Edge of \
         feasibility ~4us"
      (points ~scale ());
  ]
