(** Fig 8: average and deviation of miss times on Phi.

    Paper claim: for infeasible constraints (normally filtered by
    admission control) deadlines are missed by only small amounts —
    microseconds, comparable to the scheduler overhead, not to the
    constraint. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
