open Hrt_engine
open Hrt_core
open Hrt_stats

let measure ?ctx platform =
  let ctx = match ctx with Some c -> c | None -> Exp.Ctx.quick () in
  let horizon =
    match ctx.Exp.Ctx.scale with
    | Exp.Quick -> Time.ms 50
    | Exp.Full -> Time.ms 500
  in
  let sys =
    Scheduler.create ~seed:ctx.Exp.Ctx.seed ~num_cpus:2 ~obs:ctx.Exp.Ctx.sink
      platform
  in
  ignore
    (Exp.periodic_thread sys ~cpu:1 ~period:(Time.us 100) ~slice:(Time.us 50) ());
  Scheduler.run ~until:horizon sys;
  Local_sched.account (Scheduler.sched sys 1)

let run ?ctx () =
  let ctx = Exp.or_default ctx in
  let table =
    Table.create
      ~title:
        "Fig 5: local scheduler overhead breakdown per invocation (cycles)"
      ~columns:
        [
          ("platform", Table.Left);
          ("component", Table.Left);
          ("mean", Table.Right);
          ("stddev", Table.Right);
        ]
  in
  let totals =
    (* One job per platform: the two accounting runs are independent. *)
    Exp.parallel_map ctx
      (fun jctx plat ->
        let acc = measure ~ctx:jctx plat in
        let row name s =
          Table.row table
            [
              plat.Hrt_hw.Platform.name;
              name;
              Printf.sprintf "%.0f" (Summary.mean s);
              Printf.sprintf "%.0f" (Summary.stddev s);
            ]
        in
        row "IRQ" (Account.irq_cycles acc);
        row "Other" (Account.other_cycles acc);
        row "Resched" (Account.resched_cycles acc);
        row "Switch" (Account.switch_cycles acc);
        (plat, Account.total_overhead_cycles acc))
      [ Hrt_hw.Platform.phi; Hrt_hw.Platform.r415 ]
  in
  let summary =
    Table.create ~title:"Fig 5: total software overhead per invocation"
      ~columns:
        [
          ("platform", Table.Left);
          ("total (cycles)", Table.Right);
          ("total (us)", Table.Right);
        ]
  in
  List.iter
    (fun (plat, cycles) ->
      Table.row summary
        [
          plat.Hrt_hw.Platform.name;
          Printf.sprintf "%.0f" cycles;
          Printf.sprintf "%.2f" (cycles /. plat.Hrt_hw.Platform.ghz /. 1000.);
        ])
    totals;
  [ table; summary ]
