open Hrt_engine
open Hrt_core
open Hrt_group

type scale = Quick | Full

let scale_of_env () =
  match Sys.getenv_opt "HRT_FULL" with Some _ -> Full | None -> Quick

let cpus scale quick full = match scale with Quick -> quick | Full -> full

(* The CLI's --policy flag lands here; every harness that builds its own
   Config picks it up, so one flag switches the whole figure suite. *)
let default_policy = ref Config.Edf
let set_policy p = default_policy := p
let policy () = !default_policy

let periodic_thread sys ~cpu ?(phase = 0L) ~period ~slice ?(on_admit = fun _ -> ())
    () =
  let constr = Constraints.periodic ~phase ~period ~slice () in
  Scheduler.spawn sys ~name:(Printf.sprintf "rt-%d" cpu) ~cpu ~bound:true
    (Program.seq
       [
         Program.of_steps (Scheduler.admission_ops sys constr ~on_result:on_admit);
         Program.compute_forever (Time.sec 3600);
       ])

type spread_collector = {
  mutable acc : (int * Time.ns) list array;  (* bucket -> (cpu, time) *)
  mutable spreads_rev : float list;
  workers : int;
  period : Time.ns;
  settle : Time.ns;
  ghz : float;
}

let make_spread_collector sys ~workers ~period ~settle =
  let buckets = 65536 in
  let c =
    {
      acc = Array.make buckets [];
      spreads_rev = [];
      workers;
      period;
      settle;
      ghz = (Scheduler.platform sys).Hrt_hw.Platform.ghz;
    }
  in
  Scheduler.set_dispatch_hook sys
    (Some
       (fun cpu th time ->
         if
           cpu >= 1 && cpu <= workers
           && Thread.is_realtime th
           && Time.(time > c.settle)
           (* Only the arrival dispatch (first dispatch of the period). *)
           && Time.(time - th.Thread.arrival < c.period / 2)
         then begin
           let bucket =
             Int64.to_int (Int64.div th.Thread.arrival c.period)
             mod Array.length c.acc
           in
           let cur = c.acc.(bucket) in
           if not (List.mem_assoc cpu cur) then begin
             let cur = (cpu, time) :: cur in
             c.acc.(bucket) <- cur;
             if List.length cur = workers then begin
               let ts = List.map snd cur in
               let mx = List.fold_left Time.max (List.hd ts) ts in
               let mn = List.fold_left Time.min (List.hd ts) ts in
               let spread_cycles = Int64.to_float Time.(mx - mn) *. c.ghz in
               c.spreads_rev <- spread_cycles :: c.spreads_rev;
               (let sink = Scheduler.obs sys in
                if Hrt_obs.Sink.enabled sink then
                  Hrt_obs.Metrics.observe
                    (Hrt_obs.Metrics.histo
                       (Hrt_obs.Sink.metrics sink)
                       "group.spread_cycles")
                    spread_cycles);
               c.acc.(bucket) <- []
             end
           end
         end));
  c

let spreads c = Array.of_list (List.rev c.spreads_rev)

let run_group_admission ?(phase_correction = true) ?probe ?after sys ~workers
    constr () =
  let group = Group.create sys ~name:"exp-group" in
  let start_barrier = Gbarrier.create sys ~parties:workers in
  let session = ref None in
  let after =
    match after with
    | Some f -> f
    | None -> Program.compute_forever (Time.sec 3600)
  in
  for i = 1 to workers do
    ignore
      (Scheduler.spawn sys ~name:(Printf.sprintf "g-%d" i) ~cpu:i ~bound:true
         (Program.seq
            [
              Group.join group;
              Gbarrier.cross start_barrier;
              (fun _ctx ->
                (if !session = None then
                   session :=
                     Some (Group_sched.prepare ~phase_correction group constr));
                Thread.Exit);
              (let body = ref None in
               fun ctx ->
                 let b =
                   match !body with
                   | Some b -> b
                   | None ->
                     let b =
                       Group_sched.change_constraints ?probe
                         (Option.get !session) ~on_result:(fun _ -> ())
                     in
                     body := Some b;
                     b
                 in
                 b ctx);
              after;
            ]))
  done
