open Hrt_engine
open Hrt_core
open Hrt_group

type scale = Quick | Full

let scale_of_env () =
  match Sys.getenv_opt "HRT_FULL" with Some _ -> Full | None -> Quick

let cpus scale quick full = match scale with Quick -> quick | Full -> full

let jobs_of_env () =
  match Sys.getenv_opt "HRT_JOBS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> 1)

module Ctx = struct
  type t = {
    seed : int64;
    scale : scale;
    policy : Config.policy;
    sink : Hrt_obs.Sink.t;
    jobs : int;
    fault : Hrt_fault.Fault.Plan.t option;
    degrade : bool;
  }

  let make ?(seed = 42L) ?scale ?(policy = Config.Edf)
      ?(sink = Hrt_obs.Sink.null) ?jobs ?fault ?(degrade = false) () =
    let scale = match scale with Some s -> s | None -> scale_of_env () in
    let jobs =
      match jobs with Some j -> Stdlib.max 1 j | None -> jobs_of_env ()
    in
    { seed; scale; policy; sink; jobs; fault; degrade }

  let default () = make ()
  let quick () = make ~scale:Quick ()
  let with_sink t sink = { t with sink }
  let with_jobs t jobs = { t with jobs = Stdlib.max 1 jobs }
  let with_fault t fault = { t with fault }
  let with_degrade t degrade = { t with degrade }
end

let or_default ctx = match ctx with Some c -> c | None -> Ctx.default ()

(* Fan a list of independent job descriptions across domains. Each job
   receives its own context: when fanning out with an enabled sink, a
   fresh child sink per job (a sink is touched by exactly one domain);
   otherwise the parent context verbatim. Children are absorbed back into
   the parent in submission order after every job has finished, so the
   metric/trace/subscriber streams are identical to a sequential run —
   see Hrt_obs.Sink.absorb. *)
let parallel_map (ctx : Ctx.t) f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let fan = ctx.Ctx.jobs > 1 && Hrt_obs.Sink.enabled ctx.Ctx.sink in
    let ctxs =
      if fan then
        Array.init n (fun _ ->
            { ctx with Ctx.sink = Hrt_obs.Sink.child ctx.Ctx.sink })
      else Array.make n ctx
    in
    let pool = Hrt_par.Par.Pool.create ~jobs:ctx.Ctx.jobs in
    let out =
      Hrt_par.Par.map pool
        (fun i -> f ctxs.(i) arr.(i))
        (Array.init n (fun i -> i))
    in
    if fan then
      Array.iter
        (fun (jctx : Ctx.t) -> Hrt_obs.Sink.absorb ctx.Ctx.sink jctx.Ctx.sink)
        ctxs;
    Array.to_list out
  end

let periodic_thread sys ~cpu ?(phase = 0L) ~period ~slice ?(on_admit = fun _ -> ())
    () =
  let constr = Constraints.periodic ~phase ~period ~slice () in
  Scheduler.spawn sys ~name:(Printf.sprintf "rt-%d" cpu) ~cpu ~bound:true
    (Program.seq
       [
         Program.of_steps (Scheduler.admission_ops sys constr ~on_result:on_admit);
         Program.compute_forever (Time.sec 3600);
       ])

type spread_collector = {
  mutable acc : (int * Time.ns) list array;  (* bucket -> (cpu, time) *)
  mutable spreads_rev : float list;
  workers : int;
  period : Time.ns;
  settle : Time.ns;
  ghz : float;
}

let make_spread_collector sys ~workers ~period ~settle =
  let buckets = 65536 in
  let c =
    {
      acc = Array.make buckets [];
      spreads_rev = [];
      workers;
      period;
      settle;
      ghz = (Scheduler.platform sys).Hrt_hw.Platform.ghz;
    }
  in
  Scheduler.set_dispatch_hook sys
    (Some
       (fun cpu th time ->
         if
           cpu >= 1 && cpu <= workers
           && Thread.is_realtime th
           && Time.(time > c.settle)
           (* Only the arrival dispatch (first dispatch of the period). *)
           && Time.(time - th.Thread.arrival < c.period / 2)
         then begin
           let bucket =
             Int64.to_int (Int64.div th.Thread.arrival c.period)
             mod Array.length c.acc
           in
           let cur = c.acc.(bucket) in
           if not (List.mem_assoc cpu cur) then begin
             let cur = (cpu, time) :: cur in
             c.acc.(bucket) <- cur;
             if List.length cur = workers then begin
               let ts = List.map snd cur in
               let mx = List.fold_left Time.max (List.hd ts) ts in
               let mn = List.fold_left Time.min (List.hd ts) ts in
               let spread_cycles = Int64.to_float Time.(mx - mn) *. c.ghz in
               c.spreads_rev <- spread_cycles :: c.spreads_rev;
               (let sink = Scheduler.obs sys in
                if Hrt_obs.Sink.enabled sink then
                  Hrt_obs.Metrics.observe
                    (Hrt_obs.Metrics.histo
                       (Hrt_obs.Sink.metrics sink)
                       "group.spread_cycles")
                    spread_cycles);
               c.acc.(bucket) <- []
             end
           end
         end));
  c

let spreads c = Array.of_list (List.rev c.spreads_rev)

let run_group_admission ?(phase_correction = true) ?probe ?after sys ~workers
    constr () =
  let group = Group.create sys ~name:"exp-group" in
  let start_barrier = Gbarrier.create sys ~parties:workers in
  let session = ref None in
  let after =
    match after with
    | Some f -> f
    | None -> Program.compute_forever (Time.sec 3600)
  in
  for i = 1 to workers do
    ignore
      (Scheduler.spawn sys ~name:(Printf.sprintf "g-%d" i) ~cpu:i ~bound:true
         (Program.seq
            [
              Group.join group;
              Gbarrier.cross start_barrier;
              (fun _ctx ->
                (if !session = None then
                   session :=
                     Some (Group_sched.prepare ~phase_correction group constr));
                Thread.Exit);
              (let body = ref None in
               fun ctx ->
                 let b =
                   match !body with
                   | Some b -> b
                   | None ->
                     let b =
                       Group_sched.change_constraints ?probe
                         (Option.get !session) ~on_result:(fun _ -> ())
                     in
                     body := Some b;
                     b
                 in
                 b ctx);
              after;
            ]))
  done
