/* Monotonic clock for harness self-timing (Harness.Clock).
 *
 * The stdlib Unix module shipped with this compiler has no
 * clock_gettime binding, and Unix.gettimeofday is wall-clock: an NTP
 * step mid-benchmark yields negative or wildly skewed durations. This
 * stub exposes CLOCK_MONOTONIC directly as nanoseconds. */

#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value hrt_harness_monotonic_ns(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  CAMLreturn(caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec));
}
