(** Fig 11: cross-CPU scheduler synchronization in an 8-thread group.

    An 8-thread group is admitted with a periodic constraint, phase
    correction disabled. For every arrival period we measure the maximum
    difference, across the 8 local schedulers, of the instants they
    context-switch to their group member. Paper claim: context switches
    happen within a few thousand cycles of each other, with an average
    bias (the first member runs ahead) that phase correction removes. *)

val collect :
  ?ctx:Exp.Ctx.t -> workers:int -> phase_correction:bool -> unit -> float array
(** Per-period cross-CPU dispatch spreads (cycles) for a periodic group of
    the given size. Shared with Fig 12. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
