(** Monotonic wall-time for harness self-timing.

    Every place the harness measures {e its own} elapsed time — bench
    runners, experiment wall-clock reporting, the serving daemon's
    request latencies — reads this clock, never [Unix.gettimeofday]:
    the monotonic clock is immune to NTP steps and daylight shifts, so a
    duration computed as [now () -. t0] can never be negative or skewed.
    (Simulated time is a different thing entirely and lives in
    {!Hrt_engine.Time}/[Engine.now].)

    The [det-wallclock] lint rule still flags raw wall-clock reads; this
    module is the sanctioned way to time real execution where the
    [.hrt-lint] scope allows it. *)

val now_ns : unit -> int64
(** Nanoseconds on [CLOCK_MONOTONIC]. Only differences are meaningful —
    the epoch is unspecified (typically boot time). *)

val now : unit -> float
(** Seconds on the same clock, for arithmetic convenience. *)

val timed : (unit -> 'a) -> float * 'a
(** [timed f] runs [f] and returns (elapsed seconds, result). *)
