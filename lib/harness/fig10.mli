(** Fig 10: group admission control costs vs group size.

    Paper claims: join, leader election, distributed admission control, and
    the final barrier/phase-correction step all grow linearly with the
    number of threads (simple serialized coordination schemes); the local
    admission-control cost inside is constant; at 255 threads the whole
    operation needs only ~8 M cycles (~6.2 ms). *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
