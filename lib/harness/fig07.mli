(** Fig 7: local scheduler deadline miss rate on the R415 (edge ~4 us). *)

val points : ?ctx:Exp.Ctx.t -> unit -> Miss_sweep.point list
val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
