(** Fig 7: local scheduler deadline miss rate on the R415 (edge ~4 us). *)

val points : ?scale:Exp.scale -> unit -> Miss_sweep.point list
val run : ?scale:Exp.scale -> unit -> Hrt_stats.Table.t list
