(** Fig 5: local scheduler overhead breakdown on Phi and R415.

    Paper claim: on the Phi the software overhead is ~6000 cycles per
    invocation (IRQ dispatch + "other" + scheduling pass + context
    switch), about half of it in the pass; the R415 is cheaper in cycles
    and much cheaper in wall time. *)

val measure : ?ctx:Exp.Ctx.t -> Hrt_hw.Platform.t -> Hrt_core.Account.t
(** Run the single-thread workload and return the CPU-1 accounting. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
