(** Cross-validation of the analytical admission oracle against the
    simulator (and against the runtime admission ledger).

    Each randomized periodic task set is pushed through three judges:

    - {!Hrt_analysis.Oracle.analyze} at the {e default} configuration
      (79 % periodic capacity, the platform's per-arrival overhead
      charged) — the conservative production view;
    - the oracle again at a {e stress} configuration (100 % capacity,
      zero overhead, reservations off) — rejection here is an exact
      claim that no schedule exists at all;
    - the simulator with admission control disabled and every task
      re-anchored to a synchronous release (the critical instant),
      counting deadline misses over the measurement horizon.

    The corridor asserted is one-sided on both edges, leaving the band
    between them (where only reservations or overhead conservatism
    separate the configs) unconstrained:

    - oracle-admitted at default ⟹ zero simulator misses;
    - oracle-rejected at stress with an exact certificate
      ({!Hrt_analysis.Oracle.exact_infeasible}) ⟹ simulator misses.

    Every oracle result additionally has its certificate replayed through
    {!Hrt_analysis.Oracle.check}, and the EDF oracle is compared against
    a sequential [Hyperperiod_sim] ledger run (same numerics — verdicts
    must match exactly); under RM, ledger admission by the Liu–Layland
    bound must imply exact-test admission. *)

open Hrt_core

type outcome = {
  sets : int;
  admitted : int;  (** oracle-admitted at the default configuration *)
  infeasible : int;  (** exactly infeasible at the stress configuration *)
  middle : int;  (** between the corridor edges; not asserted against *)
  disagreements : string list;  (** empty on success *)
}

val run : ?ctx:Exp.Ctx.t -> ?sets:int -> policy:Config.policy -> unit -> outcome
(** [sets] defaults to 200. Simulations fan across [ctx.jobs] domains;
    generation is seeded from [ctx.seed] per set index, so outcomes are
    reproducible for equal contexts and independent of [jobs]. *)

val pp_outcome : Format.formatter -> outcome -> unit
