(** Ablations of the design choices the paper argues for.

    - {!eager_vs_lazy}: Section 3.6 — eager, work-conserving EDF starts
      early to end early, so SMI "missing time" rarely pushes completions
      past deadlines; classic latest-start (lazy) dispatch is fragile.
    - {!edf_vs_rm}: why the paper schedules by deadline — past the
      Liu-Layland bound (2 tasks: ~82.8%; asymptotically ln 2 ~ 69.3%)
      rate-monotonic fixed priorities miss deadlines that EDF meets on
      the identical workload.
    - {!interrupt_steering}: Section 3.5 — steering device interrupts away
      from the hard real-time partition (and masking them with the APIC
      processor priority) protects timing.
    - {!utilization_limit}: Section 3.6 — the utilization limit is a knob
      trading CPU utilization against sensitivity to missing time.
    - {!phase_correction}: Section 4.4 — release-order phase correction
      removes the group-size-dependent bias (see also Fig 12). *)

val eager_vs_lazy : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
val edf_vs_rm : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
val interrupt_steering : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
val utilization_limit : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
val phase_correction : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list

val cyclic_executive : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
(** Section 8 future work: the same harmonic job set run as independent
    EDF periodic threads vs compiled into one static cyclic executive —
    both meet every deadline, but the executive needs far fewer scheduler
    invocations. *)

(** Raw data behind {!edf_vs_rm}, one point per swept total utilization. *)
type policy_point = {
  util : float;
  edf_arrivals : int;
  edf_misses : int;
  rm_arrivals : int;
  rm_misses : int;
  rm_admissible : bool;  (** would RM admission (Liu-Layland) accept it *)
}

val edf_vs_rm_points : ?ctx:Exp.Ctx.t -> unit -> policy_point list
