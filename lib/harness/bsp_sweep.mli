(** Shared BSP sweeps behind Figs 13-16. *)

open Hrt_engine
open Hrt_bsp

type row = {
  period : Time.ns;
  slice : Time.ns;
  utilization : float;
  with_barrier : Bsp.result option;
  without_barrier : Bsp.result option;
}

val combos : scale:Exp.scale -> (Time.ns * Time.ns) list
(** (period, slice) grid: the paper sweeps 900 combinations; Quick uses a
    coarser grid with the same envelope (periods 100 us - 5 ms, slices
    10-90 %). *)

val workers : scale:Exp.scale -> int
(** 255 at Full scale (the interrupt-free partition of the Phi). *)

val sweep :
  ?ctx:Exp.Ctx.t ->
  params:(cpus:int -> barrier:bool -> Bsp.params) ->
  barrier:bool ->
  no_barrier:bool ->
  unit ->
  row list
(** Run the grid in the requested variants, one job per (period, slice)
    combination, fanned across [ctx.jobs] domains ({!Exp.parallel_map});
    rows come back in grid order, bit-identical for any job count. [ctx]
    defaults to {!Exp.Ctx.default}. *)

val aperiodic_reference :
  ?ctx:Exp.Ctx.t -> params:(cpus:int -> barrier:bool -> Bsp.params) -> unit -> Bsp.result
(** The non-real-time baseline: aperiodic scheduling at 100 % utilization,
    barriers on (required for correctness). *)
