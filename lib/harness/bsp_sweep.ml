open Hrt_engine
open Hrt_bsp

type row = {
  period : Time.ns;
  slice : Time.ns;
  utilization : float;
  with_barrier : Bsp.result option;
  without_barrier : Bsp.result option;
}

let combos ~scale =
  let periods_us, slices_pct =
    match scale with
    | Exp.Quick -> ([ 100; 500 ], [ 30; 50; 70; 90 ])
    | Exp.Full ->
      ( [ 100; 200; 500; 1000; 2000; 5000 ],
        [ 10; 20; 30; 40; 50; 60; 70; 80; 90 ] )
  in
  List.concat_map
    (fun p ->
      List.map
        (fun s ->
          let period = Time.us p in
          (period, Int64.div (Int64.mul period (Int64.of_int s)) 100L))
        slices_pct)
    periods_us

let workers ~scale = match scale with Exp.Quick -> 24 | Exp.Full -> 255

let util period slice = Int64.to_float slice /. Int64.to_float period

let run_one (ctx : Exp.Ctx.t) ~params ~barrier mode =
  let scale = ctx.Exp.Ctx.scale in
  let p = params ~cpus:(workers ~scale) ~barrier in
  let p =
    match scale with
    | Exp.Quick -> { p with Bsp.iters = Stdlib.max 20 (p.Bsp.iters / 5) }
    | Exp.Full -> p
  in
  Bsp.run ~seed:ctx.Exp.Ctx.seed ~policy:ctx.Exp.Ctx.policy
    ~obs:ctx.Exp.Ctx.sink p mode

(* One job per (period, slice) combination; the job runs its requested
   variants back to back so a row is always produced whole. *)
let sweep ?ctx ~params ~barrier ~no_barrier () =
  let ctx = Exp.or_default ctx in
  Exp.parallel_map ctx
    (fun jctx (period, slice) ->
      let mode = Bsp.Rt { period; slice; phase_correction = true } in
      {
        period;
        slice;
        utilization = util period slice;
        with_barrier =
          (if barrier then Some (run_one jctx ~params ~barrier:true mode)
           else None);
        without_barrier =
          (if no_barrier then Some (run_one jctx ~params ~barrier:false mode)
           else None);
      })
    (combos ~scale:ctx.Exp.Ctx.scale)

let aperiodic_reference ?ctx ~params () =
  let ctx = Exp.or_default ctx in
  run_one ctx ~params ~barrier:true Bsp.Aperiodic
