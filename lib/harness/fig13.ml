open Hrt_engine
open Hrt_stats

let table_of ~title ~ctx ~params () =
  let rows = Bsp_sweep.sweep ~ctx ~params ~barrier:true ~no_barrier:false () in
  let aper = Bsp_sweep.aperiodic_reference ~ctx ~params () in
  let aper_ms = Time.to_float_ms aper.Hrt_bsp.Bsp.exec_time in
  let table =
    Table.create ~title
      ~columns:
        [
          ("period", Table.Left);
          ("slice", Table.Left);
          ("utilization", Table.Right);
          ("exec time (ms)", Table.Right);
          ("exec * util (ms)", Table.Right);
          ("vs aperiodic@100%", Table.Right);
        ]
  in
  List.iter
    (fun (r : Bsp_sweep.row) ->
      match r.Bsp_sweep.with_barrier with
      | None -> ()
      | Some res ->
        let ms = Time.to_float_ms res.Hrt_bsp.Bsp.exec_time in
        Table.row table
          [
            Format.asprintf "%a" Time.pp r.Bsp_sweep.period;
            Format.asprintf "%a" Time.pp r.Bsp_sweep.slice;
            Printf.sprintf "%.0f%%" (100. *. r.Bsp_sweep.utilization);
            Printf.sprintf "%.2f" ms;
            Printf.sprintf "%.2f" (ms *. r.Bsp_sweep.utilization);
            Printf.sprintf "%.2fx" (ms /. aper_ms);
          ])
    rows;
  Table.row table
    [ "aperiodic"; "-"; "100%"; Printf.sprintf "%.2f" aper_ms; "-"; "1.00x" ];
  table

let run ?ctx () =
  let ctx = Exp.or_default ctx in
  [
    table_of
      ~title:
        "Fig 13: resource control, coarsest granularity (BSP with \
         barriers). exec*util should be ~constant across combinations"
      ~ctx ~params:Hrt_bsp.Bsp.coarse_grain ();
  ]
