(** Fig 3: cross-CPU cycle-counter synchronization after boot calibration.

    Paper claim: all 256 CPUs agree on wall-clock time to within ~1000
    cycles of CPU 0. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
