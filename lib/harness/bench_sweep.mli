(** Sweep-parallelism benchmark: the artifact behind [BENCH_sweep.json].

    For each registry entry this runs the sweep twice — sequentially
    (jobs=1) and at the context's job count — times both, and checks the
    rendered tables are byte-identical (the determinism guarantee of
    {!Exp.parallel_map}). The result is written as a small hand-rolled
    JSON document so CI can archive it and fail on divergence. *)

type sample = {
  name : string;  (** registry entry name, e.g. "fig13" *)
  jobs : int;  (** parallel job count used for [par_seconds] *)
  seq_seconds : float;  (** wall time at jobs=1 *)
  par_seconds : float;  (** wall time at [jobs] *)
  speedup : float;  (** [seq_seconds /. par_seconds] *)
  identical : bool;  (** rendered tables byte-identical across the two runs *)
}

val measure : ?ctx:Exp.Ctx.t -> Registry.entry -> sample
(** Run [entry] at jobs=1 then at [ctx.jobs] and compare. [ctx] defaults
    to {!Exp.or_default}[ None] (so jobs comes from [HRT_JOBS]). *)

val to_json : jobs:int -> sample list -> string
(** The [BENCH_sweep.json] document. *)

val write : path:string -> jobs:int -> sample list -> unit
