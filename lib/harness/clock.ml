external now_ns : unit -> int64 = "hrt_harness_monotonic_ns"

let now () = Int64.to_float (now_ns ()) *. 1e-9

let timed f =
  let t0 = now () in
  let v = f () in
  (now () -. t0, v)
