open Hrt_engine
open Hrt_core
open Hrt_analysis
open Hrt_par

type result = {
  sets : int;
  repeats : int;
  jobs : int;
  cold_seconds : float;
  warm_seconds : float;
  cold_qps : float;
  warm_qps : float;
  warm_speedup : float;
  par_qps : float;
  identical : bool;
  hits : int;
  misses : int;
}

(* Near-harmonic periods whose lcm is 252 ms: the EDF demand scan walks
   a few thousand deadlines per analysis, so a cold query costs orders
   of magnitude more than the fingerprint-plus-lookup of a warm one —
   the regime the memoization is for. *)
let palette =
  [| Time.us 500; Time.us 600; Time.us 700; Time.us 800; Time.us 900; Time.ms 1 |]

let gen_taskset ~seed index =
  let rng = Rng.create Int64.(add seed (mul 998_244_353L (of_int index))) in
  let n = 6 + Rng.int rng 7 in
  let target = 0.5 +. (0.4 *. Rng.float rng) in
  let tasks =
    List.init n (fun _ ->
        let period = palette.(Rng.int rng (Array.length palette)) in
        let share = target /. float_of_int n in
        let slice =
          Time.min period
            (Time.max (Time.us 5)
               (Int64.of_float (Int64.to_float period *. share)))
        in
        Constraints.periodic ~period ~slice ())
  in
  let policy = if index mod 2 = 0 then Config.Edf else Config.Rm in
  let config = { Config.default with Config.policy } in
  Taskset.make ~config
    ~overhead_ns:(Taskset.overhead_of_platform Hrt_hw.Platform.phi)
    tasks

let timed f = Clock.timed f

let measure ?(seed = 42L) ~sets ~repeats ~jobs () =
  let corpus = List.init sets (gen_taskset ~seed) in
  let svc = Service.create () in
  let cold_seconds, seq_results =
    timed (fun () -> Service.batch svc corpus)
  in
  let warm_total, _ =
    timed (fun () ->
        for _ = 1 to repeats do
          ignore (Service.batch svc corpus)
        done)
  in
  let pool = Par.Pool.create ~jobs in
  let par_total, par_results =
    timed (fun () ->
        let last = ref [] in
        for _ = 1 to repeats do
          last := Service.batch ~pool svc corpus
        done;
        !last)
  in
  let stats = Service.stats svc in
  let qps n seconds = if seconds > 0. then float_of_int n /. seconds else 0. in
  let warm_seconds = warm_total /. float_of_int repeats in
  let cold_qps = qps sets cold_seconds in
  let warm_qps = qps (sets * repeats) warm_total in
  {
    sets;
    repeats;
    jobs;
    cold_seconds;
    warm_seconds;
    cold_qps;
    warm_qps;
    warm_speedup = (if cold_qps > 0. then warm_qps /. cold_qps else 0.);
    par_qps = qps (sets * repeats) par_total;
    identical = par_results = seq_results;
    hits = stats.Service.hits;
    misses = stats.Service.misses;
  }

(* ---- JSON artifact (same hand-rolled flat style as BENCH_engine) ---- *)

let to_json r =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hrt-admit-bench/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"sets\": %d,\n" r.sets);
  Buffer.add_string b (Printf.sprintf "  \"repeats\": %d,\n" r.repeats);
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" r.jobs);
  Buffer.add_string b
    (Printf.sprintf "  \"warm_queries_per_sec\": %.0f,\n" r.warm_qps);
  Buffer.add_string b
    (Printf.sprintf "  \"cold_queries_per_sec\": %.0f,\n" r.cold_qps);
  Buffer.add_string b
    (Printf.sprintf "  \"warm_speedup_vs_cold\": %.2f,\n" r.warm_speedup);
  Buffer.add_string b
    (Printf.sprintf "  \"par_queries_per_sec\": %.0f,\n" r.par_qps);
  Buffer.add_string b (Printf.sprintf "  \"identical\": %b,\n" r.identical);
  Buffer.add_string b (Printf.sprintf "  \"cache_hits\": %d,\n" r.hits);
  Buffer.add_string b (Printf.sprintf "  \"cache_misses\": %d\n" r.misses);
  Buffer.add_string b "}\n";
  Buffer.contents b

let write r ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json r))

let scan_field text key =
  let needle = Printf.sprintf "\"%s\":" key in
  let nlen = String.length needle in
  let len = String.length text in
  let rec find from =
    if from + nlen > len then None
    else if String.sub text from nlen = needle then Some (from + nlen)
    else find (from + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < len
      && (match text.[!stop] with
         | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | ' ' -> true
         | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.trim (String.sub text start (!stop - start)))

let baseline_warm_qps ~path =
  if not (Sys.file_exists path) then Error (path ^ ": no such baseline")
  else begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match scan_field text "warm_queries_per_sec" with
    | Some v when v > 0. -> Ok v
    | _ -> Error (path ^ ": no warm_queries_per_sec field")
  end

let check_against r ~path ~tolerance =
  match baseline_warm_qps ~path with
  | Error _ as e -> e
  | Ok base ->
    let floor = base *. (1. -. tolerance) in
    if r.warm_qps >= floor then Ok base
    else
      Error
        (Printf.sprintf
           "warm-cache regression: measured %.0f q/s < %.0f (baseline %.0f, \
            tolerance %.0f%%)"
           r.warm_qps floor base (100. *. tolerance))
