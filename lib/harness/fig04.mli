(** Fig 4: external (oscilloscope) verification of hard real-time
    scheduling.

    A periodic thread (period 100 us, slice 50 us) toggles GPIO pins from
    inside the scheduler: the test thread's trace, the scheduler pass, and
    the interrupt handler. Paper claim: the interrupt/scheduler traces are
    "fuzzy" (their durations vary) while the thread's trace stays sharp —
    the scheduler absorbs its own jitter to keep the thread's constraints
    deterministic. We report duty cycle and the coefficient of variation
    of each trace's high-interval durations. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
