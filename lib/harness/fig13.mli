(** Fig 13: resource control with commensurate performance, coarsest
    granularity.

    The BSP benchmark (with barriers) runs under every (period, slice)
    combination; paper claim: regardless of the specific period chosen,
    execution time is cleanly controlled by the allocated utilization
    (execution time ~ work / (slice/period)). *)

val table_of :
  title:string ->
  ctx:Exp.Ctx.t ->
  params:(cpus:int -> barrier:bool -> Hrt_bsp.Bsp.params) ->
  unit ->
  Hrt_stats.Table.t
(** Shared with Fig 14. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
