(** The catalogue of reproducible experiments. *)

type entry = {
  name : string;  (** e.g. "fig6" *)
  title : string;
  run : Exp.scale -> Hrt_stats.Table.t list;
}

val all : entry list
(** Figures 3-16 then the ablations, in order. *)

val find : string -> entry option

val run_and_print : ?scale:Exp.scale -> entry -> unit
(** Execute and print the entry's tables, with a wall-clock note. *)
