(** The catalogue of reproducible experiments. *)

type entry = {
  name : string;  (** e.g. "fig6" *)
  title : string;
  run : Exp.Ctx.t -> Hrt_stats.Table.t list;
}

val all : entry list
(** Figures 3-16 then the ablations, in order. *)

val find : string -> entry option

val time_run : ?ctx:Exp.Ctx.t -> entry -> Hrt_stats.Table.t list * float
(** Execute the entry under [ctx] (default {!Exp.or_default}[ None]) and
    return its tables plus the wall-clock seconds the run took. *)

val run_and_print : ?ctx:Exp.Ctx.t -> entry -> unit
(** Execute and print the entry's tables, with a wall-clock note. *)
