(** Shared sweep behind Figs 6-9: deadline miss rates and miss times as a
    function of period and slice, with admission control disabled so
    infeasible constraints reach the scheduler. *)

open Hrt_engine
open Hrt_hw

type point = {
  period : Time.ns;
  slice_pct : int;
  arrivals : int;
  misses : int;
  miss_rate : float;  (** 0..1 *)
  miss_mean_us : float;
  miss_std_us : float;
}

val sweep :
  ?ctx:Exp.Ctx.t ->
  platform:Platform.t ->
  periods_us:int list ->
  slices_pct:int list ->
  unit ->
  point list
(** Run the period x slice grid, one self-contained simulation per point,
    fanned across [ctx.jobs] domains ({!Exp.parallel_map}). Results are in
    grid order and bit-identical for any job count. [ctx] defaults to
    {!Exp.Ctx.default}. *)

val rate_table : title:string -> point list -> Hrt_stats.Table.t
(** Periods as rows, slice percentages as columns, miss-rate cells. *)

val miss_time_table : title:string -> point list -> Hrt_stats.Table.t
(** Mean +- std miss times (us), same layout. *)

val phi_periods : int list
(** 1000, 100, 50, 40, 30, 20, 10 (us), as in Fig 6. *)

val r415_periods : int list
(** Fig 7 adds a 4 us period. *)

val slices : int list
(** 10..90 by 10, as in the figures. *)
