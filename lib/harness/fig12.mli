(** Fig 12: cross-CPU scheduler synchronization vs group size.

    Paper claim: the average difference (bias) grows with group size — at
    255 threads it reaches tens of thousands of cycles — but it is exactly
    what phase correction cancels; the uncorrectable variation stays a few
    thousand cycles regardless of group size. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
