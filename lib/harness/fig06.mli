(** Fig 6: local scheduler deadline miss rate on Phi vs period and slice.

    Paper claim: the feasibility edge sits at ~10 us periods (two ~6000
    cycle invocations per period); once period and slice are feasible the
    miss rate is exactly zero. *)

val points : ?ctx:Exp.Ctx.t -> unit -> Miss_sweep.point list
val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
