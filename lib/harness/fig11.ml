open Hrt_engine
open Hrt_core
open Hrt_stats

let collect ?ctx ~workers ~phase_correction () =
  let ctx = match ctx with Some c -> c | None -> Exp.Ctx.quick () in
  let horizon =
    match ctx.Exp.Ctx.scale with
    | Exp.Quick -> Time.ms 120
    | Exp.Full -> Time.sec 1
  in
  let period = Time.us 100 in
  let sys =
    Scheduler.create ~seed:ctx.Exp.Ctx.seed ~num_cpus:(workers + 1)
      ~obs:ctx.Exp.Ctx.sink Hrt_hw.Platform.phi
  in
  let collector =
    Exp.make_spread_collector sys ~workers ~period ~settle:(Time.ms 20)
  in
  Exp.run_group_admission ~phase_correction sys ~workers
    (Constraints.periodic ~period ~slice:(Time.us 20) ())
    ();
  Scheduler.run ~until:horizon sys;
  (* Unregister the group so the whole system can be collected. *)
  (match Hrt_group.Group.find sys "exp-group" with
  | Some g -> Hrt_group.Group.dispose g
  | None -> ());
  Exp.spreads collector

let run ?ctx () =
  let ctx = Exp.or_default ctx in
  let spreads = collect ~ctx ~workers:8 ~phase_correction:false () in
  let s = Summary.of_array spreads in
  let table =
    Table.create
      ~title:
        "Fig 11: cross-CPU scheduler synchronization, 8-thread periodic \
         group, phase correction off (max difference in context-switch \
         instants, cycles)"
      ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.row table [ "scheduler invocations measured"; string_of_int (Summary.count s) ];
  Table.row table [ "mean max-difference (cycles)"; Printf.sprintf "%.0f" (Summary.mean s) ];
  Table.row table [ "min (cycles)"; Printf.sprintf "%.0f" (Summary.min s) ];
  Table.row table [ "max (cycles)"; Printf.sprintf "%.0f" (Summary.max s) ];
  Table.row table [ "stddev (cycles)"; Printf.sprintf "%.0f" (Summary.stddev s) ];
  (* A small sample of the series, for plotting the Fig 11 scatter. *)
  let sample =
    Table.create ~title:"Fig 11: series sample (every ~10% of the run)"
      ~columns:
        [ ("invocation index", Table.Right); ("max difference (cycles)", Table.Right) ]
  in
  let n = Array.length spreads in
  if n > 0 then
    for k = 0 to 9 do
      let i = k * (n - 1) / 9 in
      Table.row sample [ string_of_int i; Printf.sprintf "%.0f" spreads.(i) ]
    done;
  [ table; sample ]
