type sample = {
  name : string;
  jobs : int;
  seq_seconds : float;
  par_seconds : float;
  speedup : float;
  identical : bool;
}

let render_all tables =
  String.concat "\n" (List.map Hrt_stats.Table.render tables)

let measure ?ctx entry =
  let ctx = Exp.or_default ctx in
  let seq_tables, seq_seconds =
    Registry.time_run ~ctx:(Exp.Ctx.with_jobs ctx 1) entry
  in
  let par_tables, par_seconds = Registry.time_run ~ctx entry in
  {
    name = entry.Registry.name;
    jobs = ctx.Exp.Ctx.jobs;
    seq_seconds;
    par_seconds;
    speedup = (if par_seconds > 0. then seq_seconds /. par_seconds else 0.);
    identical = String.equal (render_all seq_tables) (render_all par_tables);
  }

(* Hand-rolled JSON: the artifact is flat and the repo deliberately has no
   JSON dependency. *)
let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ~jobs samples =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hrt-bench-sweep/1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  Buffer.add_string b "  \"sweeps\": [";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"name\": \"%s\", \"jobs\": %d, \"seq_seconds\": %.6f, \
            \"par_seconds\": %.6f, \"speedup\": %.3f, \"identical\": %b }"
           (escape s.name) s.jobs s.seq_seconds s.par_seconds s.speedup
           s.identical))
    samples;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let write ~path ~jobs samples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ~jobs samples))
