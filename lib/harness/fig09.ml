let run ?ctx () =
  [
    Miss_sweep.miss_time_table
      ~title:"Fig 9: miss times on R415, mean +- std (us); 0 where feasible"
      (Fig07.points ~ctx:(Exp.or_default ctx) ());
  ]
