let run ?(scale = Exp.scale_of_env ()) () =
  [
    Miss_sweep.miss_time_table
      ~title:"Fig 9: miss times on R415, mean +- std (us); 0 where feasible"
      (Fig07.points ~scale ());
  ]
