open Hrt_engine
open Hrt_stats

let table_of ~title ~ctx ~params () =
  let rows = Bsp_sweep.sweep ~ctx ~params ~barrier:true ~no_barrier:true () in
  let aper = Bsp_sweep.aperiodic_reference ~ctx ~params () in
  let aper_ms = Time.to_float_ms aper.Hrt_bsp.Bsp.exec_time in
  let table =
    Table.create ~title
      ~columns:
        [
          ("period", Table.Left);
          ("utilization", Table.Right);
          ("with barrier (ms)", Table.Right);
          ("without barrier (ms)", Table.Right);
          ("gain", Table.Right);
          ("no-barrier vs aperiodic", Table.Right);
        ]
  in
  let gains = Summary.create () in
  List.iter
    (fun (r : Bsp_sweep.row) ->
      match (r.Bsp_sweep.with_barrier, r.Bsp_sweep.without_barrier) with
      | Some wb, Some nb ->
        let t_wb = Time.to_float_ms wb.Hrt_bsp.Bsp.exec_time in
        let t_nb = Time.to_float_ms nb.Hrt_bsp.Bsp.exec_time in
        let gain = (t_wb /. t_nb -. 1.) *. 100. in
        Summary.add gains gain;
        Table.row table
          [
            Format.asprintf "%a" Time.pp r.Bsp_sweep.period;
            Printf.sprintf "%.0f%%" (100. *. r.Bsp_sweep.utilization);
            Printf.sprintf "%.2f" t_wb;
            Printf.sprintf "%.2f" t_nb;
            Printf.sprintf "%+.0f%%" gain;
            Printf.sprintf "%.2fx" (t_nb /. aper_ms);
          ]
      | _ -> ())
    rows;
  Table.row table
    [
      "aperiodic+barrier";
      "100%";
      Printf.sprintf "%.2f" aper_ms;
      "-";
      "-";
      "1.00x";
    ];
  let summary =
    Table.create ~title:(title ^ " - gain summary")
      ~columns:[ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.row summary
    [ "combinations"; string_of_int (Summary.count gains) ];
  Table.row summary
    [ "mean gain from barrier removal"; Printf.sprintf "%+.0f%%" (Summary.mean gains) ];
  Table.row summary
    [ "min gain"; Printf.sprintf "%+.0f%%" (Summary.min gains) ];
  Table.row summary
    [ "max gain"; Printf.sprintf "%+.0f%%" (Summary.max gains) ];
  [ table; summary ]

let run ?ctx () =
  let ctx = Exp.or_default ctx in
  table_of
    ~title:"Fig 15: barrier removal, coarsest granularity (255 CPUs at Full)"
    ~ctx ~params:Hrt_bsp.Bsp.coarse_grain ()
