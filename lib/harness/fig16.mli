(** Fig 16: benefit of barrier removal at the finest granularity.

    Paper claim: the benefit is much more pronounced than at coarse
    granularity (Amdahl), ranging from ~20 % to over 300 %, and the
    real-time no-barrier runs considerably exceed the non-real-time
    barrier baseline. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
