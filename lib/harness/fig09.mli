(** Fig 9: average and deviation of miss times on the R415. *)

val run : ?scale:Exp.scale -> unit -> Hrt_stats.Table.t list
