(** Fig 9: average and deviation of miss times on the R415. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
