let run ?ctx () =
  let ctx = Exp.or_default ctx in
  [
    Fig13.table_of
      ~title:
        "Fig 14: resource control, finest granularity (BSP with barriers). \
         Throttling remains commensurate, with more variance"
      ~ctx ~params:Hrt_bsp.Bsp.fine_grain ();
  ]
