let run ?(scale = Exp.scale_of_env ()) () =
  [
    Fig13.table_of
      ~title:
        "Fig 14: resource control, finest granularity (BSP with barriers). \
         Throttling remains commensurate, with more variance"
      ~scale ~params:Hrt_bsp.Bsp.fine_grain ();
  ]
