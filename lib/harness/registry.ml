type entry = {
  name : string;
  title : string;
  run : Exp.scale -> Hrt_stats.Table.t list;
}

let all =
  [
    {
      name = "fig3";
      title = "Cross-CPU cycle counter synchronization (histogram)";
      run = (fun scale -> Fig03.run ~scale ());
    };
    {
      name = "fig4";
      title = "External scope verification of a periodic thread";
      run = (fun scale -> Fig04.run ~scale ());
    };
    {
      name = "fig5";
      title = "Local scheduler overhead breakdown (Phi, R415)";
      run = (fun scale -> Fig05.run ~scale ());
    };
    {
      name = "fig6";
      title = "Deadline miss rate vs period/slice (Phi)";
      run = (fun scale -> Fig06.run ~scale ());
    };
    {
      name = "fig7";
      title = "Deadline miss rate vs period/slice (R415)";
      run = (fun scale -> Fig07.run ~scale ());
    };
    {
      name = "fig8";
      title = "Miss times for infeasible constraints (Phi)";
      run = (fun scale -> Fig08.run ~scale ());
    };
    {
      name = "fig9";
      title = "Miss times for infeasible constraints (R415)";
      run = (fun scale -> Fig09.run ~scale ());
    };
    {
      name = "fig10";
      title = "Group admission control costs vs group size";
      run = (fun scale -> Fig10.run ~scale ());
    };
    {
      name = "fig11";
      title = "Cross-CPU synchronization, 8-thread group";
      run = (fun scale -> Fig11.run ~scale ());
    };
    {
      name = "fig12";
      title = "Cross-CPU synchronization vs group size";
      run = (fun scale -> Fig12.run ~scale ());
    };
    {
      name = "fig13";
      title = "BSP resource control, coarsest granularity";
      run = (fun scale -> Fig13.run ~scale ());
    };
    {
      name = "fig14";
      title = "BSP resource control, finest granularity";
      run = (fun scale -> Fig14.run ~scale ());
    };
    {
      name = "fig15";
      title = "Barrier removal benefit, coarsest granularity";
      run = (fun scale -> Fig15.run ~scale ());
    };
    {
      name = "fig16";
      title = "Barrier removal benefit, finest granularity";
      run = (fun scale -> Fig16.run ~scale ());
    };
    {
      name = "ablation-eager";
      title = "Eager vs lazy EDF under SMIs";
      run = (fun scale -> Ablations.eager_vs_lazy ~scale ());
    };
    {
      name = "ablation-policy";
      title = "EDF vs rate-monotonic past the Liu-Layland bound";
      run = (fun scale -> Ablations.edf_vs_rm ~scale ());
    };
    {
      name = "ablation-steering";
      title = "Interrupt steering and priority segregation";
      run = (fun scale -> Ablations.interrupt_steering ~scale ());
    };
    {
      name = "ablation-util";
      title = "Utilization-limit knob under SMIs";
      run = (fun scale -> Ablations.utilization_limit ~scale ());
    };
    {
      name = "ablation-phase";
      title = "Phase correction on/off";
      run = (fun scale -> Ablations.phase_correction ~scale ());
    };
    {
      name = "ablation-cyclic";
      title = "EDF threads vs compiled cyclic executive";
      run = (fun scale -> Ablations.cyclic_executive ~scale ());
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let run_and_print ?(scale = Exp.scale_of_env ()) entry =
  let t0 = Sys.time () in
  let tables = entry.run scale in
  List.iter Hrt_stats.Table.print tables;
  Printf.printf "[%s completed in %.1fs CPU]\n\n%!" entry.name (Sys.time () -. t0)
