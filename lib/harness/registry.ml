type entry = {
  name : string;
  title : string;
  run : Exp.Ctx.t -> Hrt_stats.Table.t list;
}

let all =
  [
    {
      name = "fig3";
      title = "Cross-CPU cycle counter synchronization (histogram)";
      run = (fun ctx -> Fig03.run ~ctx ());
    };
    {
      name = "fig4";
      title = "External scope verification of a periodic thread";
      run = (fun ctx -> Fig04.run ~ctx ());
    };
    {
      name = "fig5";
      title = "Local scheduler overhead breakdown (Phi, R415)";
      run = (fun ctx -> Fig05.run ~ctx ());
    };
    {
      name = "fig6";
      title = "Deadline miss rate vs period/slice (Phi)";
      run = (fun ctx -> Fig06.run ~ctx ());
    };
    {
      name = "fig7";
      title = "Deadline miss rate vs period/slice (R415)";
      run = (fun ctx -> Fig07.run ~ctx ());
    };
    {
      name = "fig8";
      title = "Miss times for infeasible constraints (Phi)";
      run = (fun ctx -> Fig08.run ~ctx ());
    };
    {
      name = "fig9";
      title = "Miss times for infeasible constraints (R415)";
      run = (fun ctx -> Fig09.run ~ctx ());
    };
    {
      name = "fig10";
      title = "Group admission control costs vs group size";
      run = (fun ctx -> Fig10.run ~ctx ());
    };
    {
      name = "fig11";
      title = "Cross-CPU synchronization, 8-thread group";
      run = (fun ctx -> Fig11.run ~ctx ());
    };
    {
      name = "fig12";
      title = "Cross-CPU synchronization vs group size";
      run = (fun ctx -> Fig12.run ~ctx ());
    };
    {
      name = "fig13";
      title = "BSP resource control, coarsest granularity";
      run = (fun ctx -> Fig13.run ~ctx ());
    };
    {
      name = "fig14";
      title = "BSP resource control, finest granularity";
      run = (fun ctx -> Fig14.run ~ctx ());
    };
    {
      name = "fig15";
      title = "Barrier removal benefit, coarsest granularity";
      run = (fun ctx -> Fig15.run ~ctx ());
    };
    {
      name = "fig16";
      title = "Barrier removal benefit, finest granularity";
      run = (fun ctx -> Fig16.run ~ctx ());
    };
    {
      name = "ablation-eager";
      title = "Eager vs lazy EDF under SMIs";
      run = (fun ctx -> Ablations.eager_vs_lazy ~ctx ());
    };
    {
      name = "ablation-policy";
      title = "EDF vs rate-monotonic past the Liu-Layland bound";
      run = (fun ctx -> Ablations.edf_vs_rm ~ctx ());
    };
    {
      name = "ablation-steering";
      title = "Interrupt steering and priority segregation";
      run = (fun ctx -> Ablations.interrupt_steering ~ctx ());
    };
    {
      name = "ablation-util";
      title = "Utilization-limit knob under SMIs";
      run = (fun ctx -> Ablations.utilization_limit ~ctx ());
    };
    {
      name = "ablation-phase";
      title = "Phase correction on/off";
      run = (fun ctx -> Ablations.phase_correction ~ctx ());
    };
    {
      name = "ablation-cyclic";
      title = "EDF threads vs compiled cyclic executive";
      run = (fun ctx -> Ablations.cyclic_executive ~ctx ());
    };
    {
      name = "fault-intensity";
      title = "Miss rate vs fault intensity with graceful degradation";
      run = (fun ctx -> Fault_sweep.run ~ctx ());
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let time_run ?ctx entry =
  let ctx = Exp.or_default ctx in
  let t0 = Clock.now () in
  let tables = entry.run ctx in
  (tables, Clock.now () -. t0)

let run_and_print ?ctx entry =
  let ctx = Exp.or_default ctx in
  let tables, elapsed = time_run ~ctx entry in
  List.iter Hrt_stats.Table.print tables;
  Printf.printf "[%s completed in %.1fs wall, jobs=%d]\n\n%!" entry.name
    elapsed ctx.Exp.Ctx.jobs
