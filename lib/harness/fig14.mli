(** Fig 14: resource control at the finest granularity.

    Paper claim: proportionate control remains, with more variation across
    period/slice combinations of equal utilization because per-iteration
    work becomes comparable to the timing constraints themselves. *)

val run : ?ctx:Exp.Ctx.t -> unit -> Hrt_stats.Table.t list
