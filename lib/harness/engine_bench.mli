(** Engine-core microbenchmark behind [hrt_sim enginebench].

    Three workloads of self-rescheduling event sources measure the
    zero-allocation refactor end to end:

    - ["wheel+actions"] — the current core: timing-wheel queue, cached
      monomorphic {!Hrt_engine.Engine.action} values;
    - ["wheel+closures"] — wheel queue, but a fresh closure per event
      (isolates the dispatch win from the queue win);
    - ["heap+closures"] — the original binary-heap core, reconstructed
      over {!Hrt_engine.Heap_queue}.

    A separate churn pass measures ns/op for each queue structure at fixed
    populations to locate the wheel-vs-heap crossover. Results serialize
    to a flat JSON artifact ([BENCH_engine.json]) whose headline
    [wheel_events_per_sec] field backs the CI regression gate. *)

type sample = {
  name : string;
  events : int;
  seconds : float;
  events_per_sec : float;
  minor_words_per_event : float;
}

type crossover = { size : int; wheel_ns_per_op : float; heap_ns_per_op : float }

type result = {
  events : int;
  sources : int;
  samples : sample list;  (** wheel+actions, wheel+closures, heap+closures *)
  speedup : float;  (** wheel+actions over heap+closures, events/sec *)
  crossovers : crossover list;
}

val measure : events:int -> sources:int -> churn_ops:int -> result

val to_json : result -> string
val write : result -> path:string -> unit

val baseline_events_per_sec : path:string -> (float, string) Result.t
(** The [wheel_events_per_sec] field of a committed artifact. *)

val check_against : result -> path:string -> tolerance:float -> (float, string) Result.t
(** [check_against r ~path ~tolerance] compares [r]'s wheel throughput to
    the committed baseline at [path]: [Ok baseline] when within
    [tolerance] (a fraction, e.g. [0.2]), [Error message] on regression
    or unreadable baseline. *)
