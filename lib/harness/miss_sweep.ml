open Hrt_engine
open Hrt_core
open Hrt_stats

type point = {
  period : Time.ns;
  slice_pct : int;
  arrivals : int;
  misses : int;
  miss_rate : float;
  miss_mean_us : float;
  miss_std_us : float;
}

let phi_periods = [ 1000; 100; 50; 40; 30; 20; 10 ]
let r415_periods = [ 1000; 100; 50; 40; 30; 20; 10; 4 ]
let slices = [ 10; 20; 30; 40; 50; 60; 70; 80; 90 ]

(* One grid point = one self-contained job: it builds its own system from
   the job context alone, so the grid can fan across domains. *)
let run_point ~horizon (ctx : Exp.Ctx.t) platform ~period_us ~slice_pct =
  let config =
    {
      Config.default with
      Config.admission_control = false;
      policy = ctx.Exp.Ctx.policy;
      degradation = ctx.Exp.Ctx.degrade;
    }
  in
  let sys =
    Scheduler.create ~seed:ctx.Exp.Ctx.seed ~num_cpus:2 ~config
      ~obs:ctx.Exp.Ctx.sink platform
  in
  let period = Time.us period_us in
  let slice = Int64.div (Int64.mul period (Int64.of_int slice_pct)) 100L in
  ignore (Exp.periodic_thread sys ~cpu:1 ~period ~slice ());
  (match ctx.Exp.Ctx.fault with
  | Some plan -> Hrt_fault.Fault.inject plan sys
  | None -> ());
  Scheduler.run ~until:horizon sys;
  let acc = Local_sched.account (Scheduler.sched sys 1) in
  let times = Account.miss_times_us acc in
  {
    period;
    slice_pct;
    arrivals = Account.arrivals acc;
    misses = Account.misses acc;
    miss_rate = Account.miss_rate acc;
    miss_mean_us = Summary.mean times;
    miss_std_us = Summary.stddev times;
  }

let sweep ?ctx ~platform ~periods_us ~slices_pct () =
  let ctx = Exp.or_default ctx in
  let horizon =
    match ctx.Exp.Ctx.scale with
    | Exp.Quick -> Time.ms 30
    | Exp.Full -> Time.ms 300
  in
  let combos =
    List.concat_map
      (fun period_us -> List.map (fun s -> (period_us, s)) slices_pct)
      periods_us
  in
  Exp.parallel_map ctx
    (fun jctx (period_us, slice_pct) ->
      run_point ~horizon jctx platform ~period_us ~slice_pct)
    combos

let grid ~title ~cell points =
  let slices_pct =
    List.sort_uniq compare (List.map (fun p -> p.slice_pct) points)
  in
  let periods =
    List.sort_uniq (fun a b -> Int64.compare b a) (List.map (fun p -> p.period) points)
  in
  let columns =
    ("period", Table.Left)
    :: List.map
         (fun s -> (Printf.sprintf "%d%%" s, Table.Right))
         slices_pct
  in
  let table = Table.create ~title ~columns in
  List.iter
    (fun period ->
      let cells =
        List.map
          (fun s ->
            match
              List.find_opt
                (fun p -> Int64.equal p.period period && p.slice_pct = s)
                points
            with
            | Some p -> cell p
            | None -> "-")
          slices_pct
      in
      Table.row table
        (Printf.sprintf "%.0fus" (Int64.to_float period /. 1000.) :: cells))
    periods;
  table

let rate_table ~title points =
  grid ~title ~cell:(fun p -> Printf.sprintf "%.0f%%" (100. *. p.miss_rate)) points

let miss_time_table ~title points =
  grid ~title
    ~cell:(fun p ->
      if p.misses = 0 then "0"
      else Printf.sprintf "%.1f+-%.1f" p.miss_mean_us p.miss_std_us)
    points
