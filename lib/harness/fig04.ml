open Hrt_engine
open Hrt_core
open Hrt_hw
open Hrt_stats

let thread_pin = 0
let sched_pin = 1
let irq_pin = 2

let run ?ctx () =
  let ctx = Exp.or_default ctx in
  let horizon =
    match ctx.Exp.Ctx.scale with
    | Exp.Quick -> Time.ms 50
    | Exp.Full -> Time.ms 500
  in
  (* The scope pins are driven from the observability stream: the same
     Irq/Sched_pass/Dispatch/Idle events every consumer sees. When the
     caller's context has no sink (the common case), a private traceless
     sink is created just for the pin subscriber. *)
  let sink =
    if Hrt_obs.Sink.enabled ctx.Exp.Ctx.sink then ctx.Exp.Ctx.sink
    else Hrt_obs.Sink.create ~trace:false ()
  in
  let sys = Scheduler.create ~seed:ctx.Exp.Ctx.seed ~num_cpus:2 ~obs:sink Platform.phi in
  let machine = Scheduler.machine sys in
  let gpio = machine.Machine.gpio in
  let eng = Scheduler.engine sys in
  let test =
    Exp.periodic_thread sys ~cpu:1 ~period:(Time.us 100) ~slice:(Time.us 50) ()
  in
  let set pin at level =
    (* One outb at each edge, at the instant the scheduler reaches it. *)
    ignore
      (Engine.schedule eng ~at:(Time.max at (Engine.now eng)) (fun _ ->
           Gpio.set gpio ~pin level))
  in
  let window pin ~start ~stop =
    set pin start true;
    set pin stop false
  in
  Hrt_obs.Sink.subscribe sink (fun ~time ~cpu ev ->
      if cpu = 1 then
        match ev with
        | Hrt_obs.Event.Irq { dur_ns } ->
          window irq_pin ~start:time ~stop:Time.(time + dur_ns)
        | Hrt_obs.Event.Sched_pass { dur_ns } ->
          window sched_pin ~start:time ~stop:Time.(time + dur_ns)
        | Hrt_obs.Event.Dispatch { tid; _ } ->
          set thread_pin time (tid = test.Thread.id)
        | Hrt_obs.Event.Idle -> set thread_pin time false
        | _ -> ());
  Scheduler.run ~until:horizon sys;
  let settle = Time.ms 5 in
  let analyze name pin =
    let intervals =
      Array.of_list
        (List.filter
           (fun (a, _) -> Time.(a > settle))
           (Array.to_list (Gpio.high_intervals gpio ~pin)))
    in
    let durations = Summary.create () in
    let total_high = ref 0L in
    Array.iter
      (fun (a, b) ->
        Summary.add durations (Int64.to_float Time.(b - a));
        total_high := Time.(!total_high + (b - a)))
      intervals;
    let duty = Int64.to_float !total_high /. Int64.to_float Time.(horizon - settle) in
    let cov =
      if Summary.mean durations > 0. then
        Summary.stddev durations /. Summary.mean durations
      else 0.
    in
    (name, Array.length intervals, duty, Summary.mean durations /. 1000., cov)
  in
  let rows =
    [
      analyze "test thread" thread_pin;
      analyze "scheduler pass" sched_pin;
      analyze "interrupt handler" irq_pin;
    ]
  in
  (* ASCII rendering of a 600us window, like the scope photograph: one
     character per 2us, '#' = pin high. *)
  let waveform pin =
    let t0 = Time.ms 10 in
    let step = Time.us 2 in
    let samples = 150 in
    let trans = Gpio.transitions gpio ~pin in
    let buf = Bytes.make samples '.' in
    let level_at tm =
      let lvl = ref false in
      Array.iter (fun (t, v) -> if Time.(t <= tm) then lvl := v) trans;
      !lvl
    in
    for i = 0 to samples - 1 do
      if level_at Time.(t0 + (step * i)) then Bytes.set buf i '#'
    done;
    Bytes.to_string buf
  in
  let scope =
    Table.create
      ~title:
        "Fig 4: 600us scope window starting at t=10ms ('#' = pin high, 2us          per column)"
      ~columns:[ ("trace", Table.Left); ("waveform", Table.Left) ]
  in
  Table.row scope [ "test thread"; waveform thread_pin ];
  Table.row scope [ "scheduler pass"; waveform sched_pin ];
  Table.row scope [ "interrupt handler"; waveform irq_pin ];
  let table =
    Table.create
      ~title:
        "Fig 4: scope traces of a periodic 100us/50us thread (Phi). Sharp \
         thread trace = low CoV; fuzzy scheduler/IRQ traces = high CoV"
      ~columns:
        [
          ("trace", Table.Left);
          ("pulses", Table.Right);
          ("duty cycle", Table.Right);
          ("mean high (us)", Table.Right);
          ("duration CoV", Table.Right);
        ]
  in
  List.iter
    (fun (name, n, duty, mean_us, cov) ->
      Table.row table
        [
          name;
          string_of_int n;
          Printf.sprintf "%.1f%%" (100. *. duty);
          Printf.sprintf "%.2f" mean_us;
          Printf.sprintf "%.4f" cov;
        ])
    rows;
  [ table; scope ]
