open Hrt_engine
open Hrt_core
open Hrt_hw
open Hrt_stats

let horizon scale =
  match scale with Exp.Quick -> Time.ms 200 | Exp.Full -> Time.sec 2

(* ------------------------------------------------------------------ *)

let eager_vs_lazy ?ctx () =
  let ctx = Exp.or_default ctx in
  let smi =
    { Smi.mean_interval = Time.us 400; duration_mean = Time.us 30; duration_jitter = 0.2 }
  in
  let run (jctx : Exp.Ctx.t) dispatch =
    let config = { Config.default with Config.dispatch } in
    let sys =
      Scheduler.create ~seed:jctx.Exp.Ctx.seed ~num_cpus:2 ~config
        ~obs:jctx.Exp.Ctx.sink Platform.phi
    in
    let generator = Smi.install (Scheduler.engine sys) smi in
    ignore
      (Exp.periodic_thread sys ~cpu:1 ~period:(Time.us 100) ~slice:(Time.us 50)
         ());
    Scheduler.run ~until:(horizon jctx.Exp.Ctx.scale) sys;
    let acc = Local_sched.account (Scheduler.sched sys 1) in
    (Account.arrivals acc, Account.misses acc, Account.miss_rate acc,
     Smi.count generator)
  in
  let table =
    Table.create
      ~title:
        "Ablation: eager vs lazy EDF under SMIs (periodic 100us/50us, SMIs \
         ~30us every ~400us). Eager starts early to end early (Section 3.6)"
      ~columns:
        [
          ("dispatch policy", Table.Left);
          ("arrivals", Table.Right);
          ("misses", Table.Right);
          ("miss rate", Table.Right);
          ("SMIs injected", Table.Right);
        ]
  in
  List.iter
    (fun (name, (arrivals, misses, rate, smis)) ->
      Table.row table
        [
          name;
          string_of_int arrivals;
          string_of_int misses;
          Printf.sprintf "%.1f%%" (100. *. rate);
          string_of_int smis;
        ])
    (Exp.parallel_map ctx
       (fun jctx (name, policy) -> (name, run jctx policy))
       [
         ("eager (this paper)", Config.Eager);
         ("lazy (latest start)", Config.Lazy);
       ]);
  [ table ]

(* ------------------------------------------------------------------ *)

(* EDF vs rate-monotonic past the Liu-Layland bound. Two periodic threads
   with non-harmonic periods (1 ms and 1.5 ms) share CPU 1, splitting the
   swept utilization evenly. The 2-task Liu-Layland bound is
   2(sqrt 2 - 1) ~ 0.828 (-> ln 2 ~ 0.693 as n grows); EDF's bound is 1.
   Between the two, RM's fixed priorities let the short-period thread
   starve the long one past its deadline while EDF schedules the same set
   cleanly — the classic optimality gap the pluggable-policy layer lets
   the harness demonstrate. Admission control is off so the sweep can
   drive RM past its bound; the "RM admits" column shows what the
   Liu-Layland test would have said. *)

type policy_point = {
  util : float;
  edf_arrivals : int;
  edf_misses : int;
  rm_arrivals : int;
  rm_misses : int;
  rm_admissible : bool;
}

let edf_vs_rm_points ?ctx () =
  let ctx = Exp.or_default ctx in
  let p1 = Time.us 1000 and p2 = Time.us 1500 in
  let slice p util =
    Int64.of_float (Int64.to_float p *. (util /. 2.))
  in
  let run (jctx : Exp.Ctx.t) policy util =
    let config =
      { Config.default with Config.admission_control = false; policy }
    in
    let sys =
      Scheduler.create ~seed:jctx.Exp.Ctx.seed ~num_cpus:2 ~config
        ~obs:jctx.Exp.Ctx.sink Platform.phi
    in
    (* Align the first arrivals at one absolute instant (admissions are
       serialized, so relative phases alone leave a stagger): a generous
       phase keeps both threads pending, then both are re-anchored to the
       same release point. Simultaneous release recreates the critical
       instant every hyperperiod — the pattern RM's bound is about;
       staggered releases let RM dodge it. *)
    let phase = Time.ms 5 in
    let t1 = Exp.periodic_thread sys ~cpu:1 ~phase ~period:p1 ~slice:(slice p1 util) () in
    let t2 = Exp.periodic_thread sys ~cpu:1 ~phase ~period:p2 ~slice:(slice p2 util) () in
    ignore
      (Engine.schedule (Scheduler.engine sys) ~at:(Time.ms 2) (fun _ ->
           Scheduler.reanchor sys t1 ~first_arrival:(Time.ms 3);
           Scheduler.reanchor sys t2 ~first_arrival:(Time.ms 3)));
    Scheduler.run ~until:(horizon jctx.Exp.Ctx.scale) sys;
    let acc = Local_sched.account (Scheduler.sched sys 1) in
    (Account.arrivals acc, Account.misses acc)
  in
  let rm_admissible util =
    (* What RM admission (Liu-Layland scaled by capacity) says about this
       set, with reservations relaxed so the bound itself is the limiter. *)
    let config =
      {
        Config.default with
        Config.policy = Config.Rm;
        strict_reservations = false;
      }
    in
    let a = Admission.create config in
    let old = Constraints.aperiodic () in
    let req p =
      Admission.admitted
        (Admission.request a ~now:0L ~old_constr:old
           (Constraints.periodic ~period:p ~slice:(slice p util) ()))
    in
    req p1 && req p2
  in
  (* One job per utilization point; each job runs EDF then RM. *)
  Exp.parallel_map ctx
    (fun jctx util ->
      let edf_arrivals, edf_misses = run jctx Config.Edf util in
      let rm_arrivals, rm_misses = run jctx Config.Rm util in
      {
        util;
        edf_arrivals;
        edf_misses;
        rm_arrivals;
        rm_misses;
        rm_admissible = rm_admissible util;
      })
    [ 0.60; 0.70; 0.75; 0.85; 0.90; 0.95 ]

let edf_vs_rm ?ctx () =
  let ctx = Exp.or_default ctx in
  let points = edf_vs_rm_points ~ctx () in
  let table =
    Table.create
      ~title:
        "Ablation: EDF vs rate-monotonic past the Liu-Layland bound \
         (2-task bound ~82.8%, ln 2 ~ 69.3% asymptotically). Periodic \
         1000us + 1500us threads split the utilization on one CPU; \
         admission control off"
      ~columns:
        [
          ("total util", Table.Right);
          ("RM admits", Table.Left);
          ("EDF arrivals", Table.Right);
          ("EDF misses", Table.Right);
          ("RM arrivals", Table.Right);
          ("RM misses", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Table.row table
        [
          Printf.sprintf "%.0f%%" (100. *. p.util);
          (if p.rm_admissible then "yes" else "no");
          string_of_int p.edf_arrivals;
          string_of_int p.edf_misses;
          string_of_int p.rm_arrivals;
          string_of_int p.rm_misses;
        ])
    points;
  [ table ]

(* ------------------------------------------------------------------ *)

let interrupt_steering ?ctx () =
  let ctx = Exp.or_default ctx in
  let run (jctx : Exp.Ctx.t) ?(threaded = false) ~target_cpu ~prio () =
    let sys =
      Scheduler.create ~seed:jctx.Exp.Ctx.seed ~num_cpus:2
        ~obs:jctx.Exp.Ctx.sink Platform.phi
    in
    let dev =
      Scheduler.add_device sys ~name:"nic" ~prio ~threaded
        ~mean_interval:(Time.us 150)
        ~handler_cost:(Platform.cost 40_000. 4_000.)
        ()
    in
    Scheduler.steer_device sys dev ~cpus:[ target_cpu ];
    Scheduler.start_device sys dev;
    ignore
      (Exp.periodic_thread sys ~cpu:1 ~period:(Time.us 100) ~slice:(Time.us 70)
         ());
    Scheduler.run ~until:(horizon jctx.Exp.Ctx.scale) sys;
    let acc = Local_sched.account (Scheduler.sched sys 1) in
    (Account.arrivals acc, Account.misses acc, Account.miss_rate acc)
  in
  let table =
    Table.create
      ~title:
        "Ablation: interrupt steering and priority segregation (Section \
         3.5). RT thread 100us/70us on CPU 1; noisy device (~31us handler \
         every ~150us)"
      ~columns:
        [
          ("configuration", Table.Left);
          ("arrivals", Table.Right);
          ("misses", Table.Right);
          ("miss rate", Table.Right);
        ]
  in
  List.iter
    (fun (name, (arrivals, misses, rate)) ->
      Table.row table
        [
          name;
          string_of_int arrivals;
          string_of_int misses;
          Printf.sprintf "%.1f%%" (100. *. rate);
        ])
    (Exp.parallel_map ctx
       (fun jctx (name, cpu, prio, threaded) ->
         (name, run jctx ~threaded ~target_cpu:cpu ~prio ()))
       [
      ("steered away (interrupt-laden CPU 0)", 0, 8, false);
      ("on RT CPU, masked by processor priority", 1, 8, false);
      ("on RT CPU, above processor priority", 1, 15, false);
         ("on RT CPU, threaded interrupt handler", 1, 15, true);
       ]);
  [ table ]

(* ------------------------------------------------------------------ *)

let utilization_limit ?ctx () =
  let ctx = Exp.or_default ctx in
  let smi =
    { Smi.mean_interval = Time.us 500; duration_mean = Time.us 25; duration_jitter = 0.2 }
  in
  let run (jctx : Exp.Ctx.t) limit =
    let config =
      {
        Config.default with
        Config.util_limit = limit;
        strict_reservations = false;
      }
    in
    let sys =
      Scheduler.create ~seed:jctx.Exp.Ctx.seed ~num_cpus:2 ~config
        ~obs:jctx.Exp.Ctx.sink Platform.phi
    in
    ignore (Smi.install (Scheduler.engine sys) smi);
    (* Request the largest admissible slice under this limit. *)
    let period = Time.us 100 in
    let slice = Int64.of_float (Int64.to_float period *. (limit -. 0.005)) in
    let admitted = ref false in
    ignore
      (Exp.periodic_thread sys ~cpu:1 ~period ~slice
         ~on_admit:(fun v -> admitted := Admission.admitted v)
         ());
    Scheduler.run ~until:(horizon jctx.Exp.Ctx.scale) sys;
    let acc = Local_sched.account (Scheduler.sched sys 1) in
    (!admitted, slice, Account.miss_rate acc)
  in
  let table =
    Table.create
      ~title:
        "Ablation: the utilization limit trades utilization against SMI \
         sensitivity (Section 3.6). Thread always requests the maximum \
         admissible slice of a 100us period"
      ~columns:
        [
          ("utilization limit", Table.Right);
          ("admitted slice", Table.Left);
          ("miss rate under SMIs", Table.Right);
        ]
  in
  List.iter
    (fun (limit, (admitted, slice, rate)) ->
      Table.row table
        [
          Printf.sprintf "%.0f%%" (100. *. limit);
          (if admitted then Format.asprintf "%a" Time.pp slice else "rejected");
          Printf.sprintf "%.1f%%" (100. *. rate);
        ])
    (Exp.parallel_map ctx
       (fun jctx limit -> (limit, run jctx limit))
       [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.99 ]);
  [ table ]

(* ------------------------------------------------------------------ *)

let cyclic_executive ?ctx () =
  let ctx = Exp.or_default ctx in
  let horizon = horizon ctx.Exp.Ctx.scale in
  let jobs =
    [
      { Cyclic.name = "fast"; period = Time.us 100; slice = Time.us 15 };
      { Cyclic.name = "mid"; period = Time.us 200; slice = Time.us 30 };
      { Cyclic.name = "slow"; period = Time.us 400; slice = Time.us 50 };
    ]
  in
  (* (a) Three independent EDF periodic threads. *)
  let edf (jctx : Exp.Ctx.t) =
    let sys =
      Scheduler.create ~seed:jctx.Exp.Ctx.seed ~num_cpus:2
        ~obs:jctx.Exp.Ctx.sink Platform.phi
    in
    let threads =
      List.map
        (fun j ->
          Scheduler.spawn sys ~cpu:1 ~bound:true
            (Program.seq
               [
                 Program.of_steps
                   (Scheduler.admission_ops sys
                      (Constraints.periodic ~period:j.Cyclic.period
                         ~slice:j.Cyclic.slice ())
                      ~on_result:(fun _ -> ()));
                 Program.compute_forever (Time.sec 3600);
               ]))
        jobs
    in
    Scheduler.run ~until:horizon sys;
    let acc = Local_sched.account (Scheduler.sched sys 1) in
    let misses = List.fold_left (fun a (t : Thread.t) -> a + t.Thread.misses) 0 threads in
    (Account.invocations acc, Account.total_overhead_cycles acc, misses)
  in
  (* (b) The same set compiled into one cyclic executive. *)
  let cyclic (jctx : Exp.Ctx.t) =
    let sys =
      Scheduler.create ~seed:jctx.Exp.Ctx.seed ~num_cpus:2
        ~obs:jctx.Exp.Ctx.sink Platform.phi
    in
    let table = Result.get_ok (Cyclic.plan jobs) in
    let th = Cyclic.spawn sys ~cpu:1 table in
    Scheduler.run ~until:horizon sys;
    let acc = Local_sched.account (Scheduler.sched sys 1) in
    (Account.invocations acc, Account.total_overhead_cycles acc, th.Thread.misses)
  in
  let table =
    Table.create
      ~title:
        "Ablation: EDF threads vs compiled cyclic executive (Section 8 future \
         work) for the same harmonic job set"
      ~columns:
        [
          ("scheduling", Table.Left);
          ("scheduler invocations", Table.Right);
          ("overhead/invocation (cycles)", Table.Right);
          ("deadline misses", Table.Right);
        ]
  in
  let row name (inv, ovh, misses) =
    Table.row table
      [ name; string_of_int inv; Printf.sprintf "%.0f" ovh; string_of_int misses ]
  in
  (match
     Exp.parallel_map ctx
       (fun jctx which ->
         match which with `Edf -> edf jctx | `Cyclic -> cyclic jctx)
       [ `Edf; `Cyclic ]
   with
  | [ e; c ] ->
    row "3 EDF periodic threads" e;
    row "1 cyclic executive (static table)" c
  | _ -> assert false);
  [ table ]

(* ------------------------------------------------------------------ *)

let phase_correction ?ctx () =
  let ctx = Exp.or_default ctx in
  let workers =
    match ctx.Exp.Ctx.scale with Exp.Quick -> 32 | Exp.Full -> 128
  in
  let raw, fixed =
    match
      Exp.parallel_map ctx
        (fun jctx pc -> Fig11.collect ~ctx:jctx ~workers ~phase_correction:pc ())
        [ false; true ]
    with
    | [ r; f ] -> (r, f)
    | _ -> assert false
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: phase correction (Section 4.4), %d-thread group"
           workers)
      ~columns:
        [
          ("phase correction", Table.Left);
          ("mean spread (cycles)", Table.Right);
          ("max spread (cycles)", Table.Right);
        ]
  in
  List.iter
    (fun (name, data) ->
      let s = Summary.of_array data in
      Table.row table
        [
          name;
          Printf.sprintf "%.0f" (Summary.mean s);
          Printf.sprintf "%.0f" (Summary.max s);
        ])
    [ ("off", raw); ("on", fixed) ];
  [ table ]
