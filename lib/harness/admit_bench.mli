(** Admission-service benchmark behind [hrt_sim admitbench].

    Measures the memoized {!Hrt_analysis.Service} on a randomized corpus
    of analysis-heavy task sets (6-12 tasks, near-harmonic periods with a
    252 ms hyperperiod, EDF and RM alternating):

    - {e cold}: every query distinct against a fresh service — each pays
      for a full oracle analysis;
    - {e warm}: the same batch repeated — every query is a fingerprint
      plus a cache hit;
    - {e par}: the warm batch fanned across a {!Hrt_par.Par} pool,
      verifying the results stay identical to the sequential run.

    The headline [warm_queries_per_sec] backs the CI regression gate
    ([BENCH_admit.json]); [warm_speedup_vs_cold] backs the ≥ 10x
    memoization claim. *)

type result = {
  sets : int;
  repeats : int;
  jobs : int;
  cold_seconds : float;
  warm_seconds : float;  (** one warm pass over the corpus *)
  cold_qps : float;
  warm_qps : float;
  warm_speedup : float;  (** warm_qps / cold_qps *)
  par_qps : float;  (** warm passes at [jobs] domains *)
  identical : bool;  (** parallel results byte-identical to sequential *)
  hits : int;
  misses : int;
}

val measure : ?seed:int64 -> sets:int -> repeats:int -> jobs:int -> unit -> result

val to_json : result -> string
val write : result -> path:string -> unit

val baseline_warm_qps : path:string -> (float, string) Result.t
(** The [warm_queries_per_sec] field of a committed artifact. *)

val check_against : result -> path:string -> tolerance:float -> (float, string) Result.t
(** Compare warm-cache throughput to the committed baseline: [Ok baseline]
    when within [tolerance] (a fraction), [Error message] on regression
    or unreadable baseline. *)
