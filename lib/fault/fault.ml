open Hrt_engine
open Hrt_hw
open Hrt_core
module Obs = Hrt_obs

module Plan = struct
  type action =
    | Smi_storm of Smi.config
    | Irq_burst of {
        mean_interval : Time.ns;
        handler_cycles : float;
        cpus : int list;
      }
    | Tsc_step of { cpu : int; delta_ns : Time.ns }
    | Timer_jitter of { max_ns : Time.ns }
    | Wcet_overrun of { thread : string option; pct : int }
    | Release_jitter of { thread : string option; max_ns : Time.ns }

  type item = { at : Time.ns; action : action }
  type t = { name : string; seed : int64; items : item list }

  (* Rates multiply by the intensity (inter-arrival means divide),
     magnitudes multiply. Guard rails: scaled inter-arrivals never drop
     below 1 ns, percentages and jitter bounds round toward zero. *)
  let scale_action i = function
    | Smi_storm cfg ->
      Smi_storm
        {
          cfg with
          Smi.mean_interval =
            Time.max 1L
              (Int64.of_float (Int64.to_float cfg.Smi.mean_interval /. i));
        }
    | Irq_burst b ->
      Irq_burst
        {
          b with
          mean_interval =
            Time.max 1L (Int64.of_float (Int64.to_float b.mean_interval /. i));
        }
    | Tsc_step s ->
      Tsc_step
        { s with delta_ns = Int64.of_float (Int64.to_float s.delta_ns *. i) }
    | Timer_jitter { max_ns } ->
      Timer_jitter { max_ns = Int64.of_float (Int64.to_float max_ns *. i) }
    | Wcet_overrun o ->
      Wcet_overrun { o with pct = int_of_float (float_of_int o.pct *. i) }
    | Release_jitter r ->
      Release_jitter
        { r with max_ns = Int64.of_float (Int64.to_float r.max_ns *. i) }

  let scale t ~intensity =
    let i = Float.max 0. intensity in
    if i = 0. then { t with items = [] }
    else if i = 1. then t
    else
      {
        t with
        items =
          List.map (fun it -> { it with action = scale_action i it.action }) t.items;
      }
end

open Plan

(* Builtin plans. Seeds are arbitrary but fixed: a plan's behaviour must
   not depend on which workload it is armed against. *)

let smi_storm =
  {
    name = "smi-storm";
    seed = 7001L;
    items =
      [
        {
          at = 0L;
          action =
            Smi_storm
              {
                Smi.mean_interval = Time.us 150;
                duration_mean = Time.us 50;
                duration_jitter = 0.25;
              };
        };
      ];
  }

let irq_burst =
  {
    name = "irq-burst";
    seed = 7002L;
    items =
      [
        {
          at = 0L;
          action =
            Irq_burst
              {
                mean_interval = Time.us 40;
                handler_cycles = 30_000.;
                cpus = [];
              };
        };
      ];
  }

let clock_step =
  {
    name = "clock-step";
    seed = 7003L;
    items =
      [
        { at = Time.ms 5; action = Tsc_step { cpu = 1; delta_ns = Time.us 50 } };
        {
          at = Time.ms 15;
          action = Tsc_step { cpu = 1; delta_ns = Time.us 100 };
        };
      ];
  }

let timer_jitter =
  {
    name = "timer-jitter";
    seed = 7004L;
    items = [ { at = 0L; action = Timer_jitter { max_ns = Time.us 20 } } ];
  }

let wcet_overrun =
  {
    name = "wcet-overrun";
    seed = 7005L;
    items = [ { at = 0L; action = Wcet_overrun { thread = None; pct = 60 } } ];
  }

let release_jitter =
  {
    name = "release-jitter";
    seed = 7006L;
    items =
      [ { at = 0L; action = Release_jitter { thread = None; max_ns = Time.us 100 } } ];
  }

let combined =
  {
    name = "combined";
    seed = 7007L;
    items =
      [
        {
          at = 0L;
          action =
            Smi_storm
              {
                Smi.mean_interval = Time.us 300;
                duration_mean = Time.us 40;
                duration_jitter = 0.25;
              };
        };
        {
          at = 0L;
          action =
            Irq_burst
              {
                mean_interval = Time.us 80;
                handler_cycles = 20_000.;
                cpus = [];
              };
        };
        { at = 0L; action = Wcet_overrun { thread = None; pct = 30 } };
      ];
  }

let builtins =
  [
    smi_storm;
    irq_burst;
    clock_step;
    timer_jitter;
    wcet_overrun;
    release_jitter;
    combined;
  ]

let names () = List.map (fun p -> p.name) builtins

let of_name ?(intensity = 1.0) name =
  List.find_opt (fun p -> String.equal p.name name) builtins
  |> Option.map (fun p -> Plan.scale p ~intensity)

let describe_action = function
  | Smi_storm cfg ->
    Printf.sprintf "SMI storm (mean every %Ldus, ~%Ldus each)"
      (Int64.div cfg.Smi.mean_interval 1000L)
      (Int64.div cfg.Smi.duration_mean 1000L)
  | Irq_burst b ->
    Printf.sprintf "IRQ burst (mean every %Ldus)" (Int64.div b.mean_interval 1000L)
  | Tsc_step s ->
    Printf.sprintf "TSC step on cpu %d (+%Ldus)" s.cpu (Int64.div s.delta_ns 1000L)
  | Timer_jitter { max_ns } ->
    Printf.sprintf "timer jitter (up to %Ldus)" (Int64.div max_ns 1000L)
  | Wcet_overrun { thread; pct } ->
    Printf.sprintf "WCET overrun +%d%% (%s)" pct
      (match thread with Some n -> n | None -> "all threads")
  | Release_jitter { thread; max_ns } ->
    Printf.sprintf "release jitter up to %Ldus (%s)"
      (Int64.div max_ns 1000L)
      (match thread with Some n -> n | None -> "all threads")

let describe p =
  match p.items with
  | [] -> "empty plan"
  | items -> String.concat "; " (List.map (fun it -> describe_action it.action) items)

(* ---- arming ---- *)

let on_threads sys thread f =
  match thread with
  | Some name -> (
    match Scheduler.find_thread sys name with Some th -> f th | None -> ())
  | None -> Scheduler.iter_threads sys f

let apply sys rng eng action =
  match action with
  | Smi_storm cfg -> ignore (Smi.install ~rng eng cfg)
  | Irq_burst { mean_interval; handler_cycles; cpus } ->
    let dev =
      Scheduler.add_device sys ~name:"fault-irq" ~mean_interval
        ~handler_cost:(Platform.cost handler_cycles (handler_cycles /. 5.))
        ()
    in
    if cpus <> [] then Scheduler.steer_device sys dev ~cpus;
    Scheduler.start_device sys dev
  | Tsc_step { cpu; delta_ns } ->
    if cpu >= 0 && cpu < Scheduler.num_cpus sys then begin
      let machine = Scheduler.machine sys in
      let hw = Machine.cpu machine cpu in
      Tsc.adjust hw.Machine.tsc (Tsc.reading_of_ns hw.Machine.tsc delta_ns);
      (* The scheduler's notion of local time jumps with the counter. *)
      let s = Scheduler.sched sys cpu in
      Local_sched.set_clock_skew s Time.(Local_sched.clock_skew s + delta_ns)
    end
  | Timer_jitter { max_ns } ->
    let machine = Scheduler.machine sys in
    Array.iter
      (fun (hw : Machine.cpu) ->
        Apic.set_timer_jitter hw.Machine.apic ~rng:(Rng.split rng) ~max_ns ())
      machine.Machine.cpus
  | Wcet_overrun { thread; pct } ->
    on_threads sys thread (fun th -> th.Thread.wcet_overrun_pct <- pct)
  | Release_jitter { thread; max_ns } ->
    on_threads sys thread (fun th -> th.Thread.release_jitter_ns <- max_ns)

let inject plan sys =
  let eng = Scheduler.engine sys in
  let rng = Rng.create plan.seed in
  let obs = Scheduler.obs sys in
  if Obs.Sink.enabled obs then
    Obs.Sink.emit obs ~time:(Engine.now eng) ~cpu:0
      (Obs.Event.Fault_plan { plan = plan.name });
  List.iter
    (fun it ->
      (* Split per item up front so an item's draws are independent of how
         many items precede it and of when they fire. *)
      let irng = Rng.split rng in
      let arm e = apply sys irng e it.action in
      if Time.(it.at <= Engine.now eng) then arm eng
      else begin
        (* Registered as a named source so the trace identifies the event
           as a fault arming rather than an anonymous callback. *)
        let key = Engine.register_source eng arm in
        ignore (Engine.schedule_action eng ~at:it.at (Engine.Fault_tick key))
      end)
    plan.items
