(** Fault injection: named, seeded, schedulable interference scenarios.

    A fault plan composes the hardware interference sources the simulator
    already models — SMI storms (missing time), device-interrupt bursts,
    TSC steps, timer-delivery jitter — with task-level faults (WCET
    overruns, release jitter) into a single value that can be armed on any
    running system. Plans are deterministic: every random choice a plan
    makes comes from its own seeded stream, split per item, so arming a
    plan never perturbs the workload's draws and the same plan replays
    byte-identically across runs and domain counts.

    Arming a plan emits an {!Hrt_obs.Event.Fault_plan} marker into the
    trace; the verifier switches the affected segment from
    hard-rt-soundness to the graceful-degradation rule (misses allowed
    only below the announced shed boundary, DESIGN §8). *)

open Hrt_engine
open Hrt_hw
open Hrt_core

module Plan : sig
  type action =
    | Smi_storm of Smi.config
        (** periodic firmware stalls stealing cycles from every CPU *)
    | Irq_burst of {
        mean_interval : Time.ns;
        handler_cycles : float;
        cpus : int list;  (** steering; empty = CPU 0 (the default) *)
      }  (** a chatty device raising exponential-arrival interrupts *)
    | Tsc_step of { cpu : int; delta_ns : Time.ns }
        (** one-shot clock step: the CPU's TSC (and the scheduler's view
            of local time) jumps forward by [delta_ns] *)
    | Timer_jitter of { max_ns : Time.ns }
        (** extra uniform APIC timer delivery latency on every CPU *)
    | Wcet_overrun of { thread : string option; pct : int }
        (** inflate compute bursts by [pct]% ([None] = every thread) *)
    | Release_jitter of { thread : string option; max_ns : Time.ns }
        (** delay real-time releases uniformly in [0, max_ns) *)

  type item = { at : Time.ns; action : action }
  (** One scheduled fault: [action] starts (or fires) at simulated time
      [at]. Generators started by an item run until the end of the run. *)

  type t = { name : string; seed : int64; items : item list }

  val scale : t -> intensity:float -> t
  (** Scale a plan's severity by [intensity]: event rates multiply by it
      (inter-arrival means divide), magnitudes (steps, jitter bounds,
      overrun percentages) multiply by it. [1.0] is the nominal plan;
      [0.0] yields an empty plan (no items). Negative intensities are
      clamped to zero. *)
end

val builtins : Plan.t list
(** The named plans shipped with the simulator (nominal intensity). *)

val names : unit -> string list
(** Names of {!builtins}, in listing order. *)

val of_name : ?intensity:float -> string -> Plan.t option
(** Look up a builtin by name, optionally scaled. *)

val describe : Plan.t -> string
(** One-line summary of what the plan injects. *)

val inject : Plan.t -> Scheduler.t -> unit
(** Arm every item of the plan on the system: emits the
    {!Hrt_obs.Event.Fault_plan} trace marker, then schedules each item at
    its [at]. Must be called before [Scheduler.run]; idempotence is not
    guaranteed (arm a plan once per system). *)
