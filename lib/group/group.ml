open Hrt_engine
open Hrt_core

(* A contended spin section: the [p]-th thread to enter since the section
   went quiet spins for (p+1) holdings of the lock. "Quiet" is detected by
   wall-clock distance: contenders arriving within the window pile up. *)
type section = {
  mutable contenders : int;
  mutable last_enter : Time.ns;
  cost : Hrt_hw.Platform.cost;
}

type t = {
  sys : Scheduler.t;
  name : string;
  mutable members : Thread.t list; (* reverse join order *)
  mutable size : int;
  mutable constraints : Constraints.t option;
  mutable locked_by : Thread.t option;
  join_sec : section;
}

(* The name registry is a process-wide association list filtered by
   scheduler identity, so independent simulated systems cannot see each
   other's groups. It is the one piece of state shared between systems,
   so it is mutex-protected: parallel sweep jobs (Hrt_par) create and
   dispose groups from different domains. *)
let registry : t list ref = ref []
let registry_mu = Mutex.create ()

let create sys ~name =
  let t =
    {
      sys;
      name;
      members = [];
      size = 0;
      constraints = None;
      locked_by = None;
      join_sec =
        {
          contenders = 0;
          last_enter = Int64.min_int;
          cost = (Scheduler.platform sys).Hrt_hw.Platform.group_join_step;
        };
    }
  in
  Mutex.protect registry_mu (fun () -> registry := t :: !registry);
  t

let find sys name =
  Mutex.protect registry_mu (fun () ->
      List.find_opt (fun g -> g.name = name && g.sys == sys) !registry)

let dispose t =
  Mutex.protect registry_mu (fun () ->
      registry := List.filter (fun g -> not (g == t)) !registry)

let destroy t =
  if t.size > 0 then invalid_arg "Group.destroy: members remain";
  dispose t

let name t = t.name
let size t = t.size
let members t = List.rev t.members
let scheduler t = t.sys

let set_constraints t c = t.constraints <- c
let constraints t = t.constraints

let lock t th =
  match t.locked_by with
  | Some owner when not (owner == th) -> invalid_arg "Group.lock: held"
  | Some _ | None -> t.locked_by <- Some th

let unlock t th =
  match t.locked_by with
  | Some owner when owner == th -> t.locked_by <- None
  | Some _ -> invalid_arg "Group.unlock: not owner"
  | None -> ()

let locked_by t = t.locked_by

let make_section _t cost = { contenders = 0; last_enter = Int64.min_int; cost }

let enter_section s =
  let pos = ref None in
  fun ({ Thread.svc; self } as _ctx : Thread.ctx) ->
    match !pos with
    | None ->
      let now = svc.Thread.now () in
      let window = Time.us 500 in
      if Time.(now - s.last_enter > window) then s.contenders <- 0;
      s.last_enter <- now;
      let p = s.contenders in
      s.contenders <- p + 1;
      pos := Some p;
      let hold = svc.Thread.sample self s.cost in
      Thread.Compute (Int64.mul hold (Int64.of_int (p + 1)))
    | Some _ -> Thread.Exit

let join t =
  let inner = enter_section t.join_sec in
  let registered = ref false in
  fun ctx ->
    if not !registered then begin
      registered := true;
      t.members <- ctx.Thread.self :: t.members;
      t.size <- t.size + 1
    end;
    inner ctx

let leave t =
  let inner = enter_section t.join_sec in
  let removed = ref false in
  fun ctx ->
    if not !removed then begin
      removed := true;
      t.members <- List.filter (fun m -> not (m == ctx.Thread.self)) t.members;
      t.size <- t.size - 1
    end;
    inner ctx
