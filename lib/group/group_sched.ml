open Hrt_engine
open Hrt_core

type session = {
  group : Group.t;
  constr : Constraints.t;
  phase_correction : bool;
  parties : int;
  election : Election.t;
  b_attach : Gbarrier.t;
  err_reduce : Admission.verdict Reduction.t;
  b_final : Gbarrier.t;
  b_fail : Gbarrier.t;
  orders : (int, int) Hashtbl.t; (* thread id -> release order *)
  mutable verdict : Admission.verdict option;
}

(* Reduction identity: no member has objected yet. [Admission.worse] keeps
   the smallest headroom, so infinity is neutral. *)
let verdict_zero = Admission.Admitted { headroom = infinity }

let prepare ?(phase_correction = true) group constr =
  let sys = Group.scheduler group in
  let plat = Scheduler.platform sys in
  let parties = Group.size group in
  if parties <= 0 then invalid_arg "Group_sched.prepare: empty group";
  {
    group;
    constr;
    phase_correction;
    parties;
    election = Election.create group;
    (* The kernel's group-admission barriers serialize each arrival on the
       group lock (simple schemes, §4.3), which is where the linear costs
       of Figs 10(c,d) come from. *)
    b_attach =
      Gbarrier.create sys ~parties
        ~arrive_cost:plat.Hrt_hw.Platform.group_admit_step
        ~serialized_arrivals:true;
    err_reduce =
      (let r =
         Reduction.create group ~zero:verdict_zero ~combine:Admission.worse
       in
       Reduction.set_parties r parties;
       r);
    b_final =
      Gbarrier.create sys ~parties
        ~arrive_cost:plat.Hrt_hw.Platform.phase_correct_step
        ~serialized_arrivals:true;
    b_fail = Gbarrier.create sys ~parties;
    orders = Hashtbl.create 64;
    verdict = None;
  }

let release_order s (th : Thread.t) = Hashtbl.find_opt s.orders th.Thread.id
let verdict s = s.verdict
let succeeded s = Option.map Admission.admitted s.verdict

let constraint_phase = function
  | Constraints.Periodic { phase; _ } | Constraints.Sporadic { phase; _ } ->
    phase
  | Constraints.Aperiodic _ -> 0L

let constraint_period = function
  | Constraints.Periodic { period; _ } -> period
  | Constraints.Sporadic { deadline; _ } -> Time.max 1L deadline
  | Constraints.Aperiodic _ -> 1L

let change_constraints ?probe s ~on_result =
  let sys = Group.scheduler s.group in
  let sink = Scheduler.obs sys in
  (* Each phase mark feeds both the (optional) legacy probe callback and,
     when the sink is enabled, a typed [Group_phase] event. *)
  let mark name ({ Thread.svc; self } : Thread.ctx) =
    (match probe with
    | None -> ()
    | Some f -> f name self (svc.Thread.now ()));
    if Hrt_obs.Sink.enabled sink then
      Hrt_obs.Sink.emit sink
        ~time:(svc.Thread.now ())
        ~cpu:self.Thread.cpu
        (Hrt_obs.Event.Group_phase { tid = self.Thread.id; phase = name });
    Thread.Exit
  in
  let is_leader = ref false in
  let my_verdict = ref verdict_zero in
  let group_verdict = ref verdict_zero in
  let any_failed = ref false in
  let leader_steps ({ Thread.self; _ } : Thread.ctx) =
    if !is_leader then begin
      Group.lock s.group self;
      Group.set_constraints s.group (Some s.constr)
    end;
    Thread.Exit
  in
  let admit =
    Program.of_steps
      (Scheduler.admission_ops sys s.constr ~on_result:(fun v -> my_verdict := v))
  in
  let success_tail () =
    Program.seq
      [
        Gbarrier.cross
          ~record_order:(fun th k -> Hashtbl.replace s.orders th.Thread.id k)
          s.b_final;
        (fun ({ Thread.svc; self } : Thread.ctx) ->
          (* Departure from the final barrier is the moment the thread
             "becomes real-time". The paper corrects each member's phase by
             its release order i: phi_i = phi + (n-i)*delta, which aligns
             everyone to the same instant R + n*delta + phi (R = release).
             We anchor to that instant directly — equivalent when departure
             i happens at R + i*delta, and robust when a member's own
             departure was further delayed by its old schedule. Without
             correction, each member anchors at its own departure. *)
          let now = svc.Thread.now () in
          let phi = constraint_phase s.constr in
          (* Align future arrivals to the anchor's timeline even if this
             member only got here after the anchor passed. *)
          let rec catch_up a =
            if Time.(a > now) then a
            else catch_up Time.(a + constraint_period s.constr)
          in
          let delta = Gbarrier.release_delta s.b_final in
          let first_arrival =
            match Gbarrier.last_release_time s.b_final with
            | None -> Time.(now + phi)
            | Some release ->
              if s.phase_correction then begin
                (* Everyone anchors at R + (n+1)*delta + phi. *)
                let span = Int64.mul delta (Int64.of_int (s.parties + 1)) in
                catch_up Time.(release + span + phi)
              end
              else begin
                (* Uncorrected: each member anchors at its own nominal
                   departure Lambda_i = R + (i+1)*delta, so the release-
                   order bias (i*delta) persists in the schedules. *)
                let k =
                  Option.value ~default:0
                    (Hashtbl.find_opt s.orders self.Thread.id)
                in
                let off = Int64.mul delta (Int64.of_int (k + 1)) in
                catch_up Time.(release + off + phi)
              end
          in
          Scheduler.reanchor sys self ~first_arrival;
          (if !is_leader then begin
             Group.unlock s.group self;
             s.verdict <- Some !group_verdict
           end);
          on_result !group_verdict;
          Thread.Exit);
      ]
  in
  let failure_tail () =
    Program.seq
      [
        Program.of_steps
          (Scheduler.admission_ops sys
             (Constraints.aperiodic ())
             ~on_result:(fun _ -> ()));
        Gbarrier.cross s.b_fail;
        (fun ({ Thread.self; _ } : Thread.ctx) ->
          (if !is_leader then begin
             Group.unlock s.group self;
             s.verdict <- Some !group_verdict
           end);
          on_result !group_verdict;
          Thread.Exit);
      ]
  in
  let branch =
    let chosen = ref None in
    fun ctx ->
      let body =
        match !chosen with
        | Some b -> b
        | None ->
          let b = if !any_failed then failure_tail () else success_tail () in
          chosen := Some b;
          b
      in
      body ctx
  in
  Program.seq
    [
      mark "start";
      Election.elect s.election ~on_result:(fun l -> is_leader := l);
      mark "elected";
      leader_steps;
      Gbarrier.cross s.b_attach;
      mark "attached";
      admit;
      mark "admitted";
      Reduction.reduce s.err_reduce
        ~value:(fun () -> !my_verdict)
        ~on_result:(fun v ->
          group_verdict := v;
          any_failed := not (Admission.admitted v));
      mark "reduced";
      branch;
      mark "done";
    ]
