(** Group-scoped barrier with release-order detection (paper Section 4.4).

    Arrivals pay a small serialized cost (cache-line contention on the
    shared counter); the last arriver releases everyone, with the [k]-th
    waiter (in arrival order) departing [k * delta] after the release —
    the measured per-thread delay delta that phase correction later
    cancels. The barrier is reusable across rounds (sense reversal is
    implicit: state resets at release). *)

open Hrt_engine
open Hrt_core

type t

val create :
  ?arrive_cost:Hrt_hw.Platform.cost ->
  ?serialized_arrivals:bool ->
  Scheduler.t ->
  parties:int ->
  t
(** A barrier for [parties] threads. [arrive_cost] defaults to the
    platform's lean spin-barrier arrival cost. With [serialized_arrivals]
    (the kernel's group-admission barriers, which take the group lock per
    arrival), the [p]-th arriver pays [(p+1)] holdings — this produces the
    linear per-member costs of Figs 10(c,d) while departures stay aligned
    to within the release stagger. *)

val set_parties : t -> int -> unit
val parties : t -> int

val id : t -> int
(** Process-unique creation-ordered identifier, stamped on the barrier's
    trace events so the verifier can separate interleaved barriers. *)

val release_delta : t -> Time.ns
(** The mean per-thread departure stagger (the delta of Section 4.4),
    derived from the platform's barrier-release cost. *)

val rounds : t -> int
(** Completed rounds. *)

val last_release_time : t -> Hrt_engine.Time.ns option
(** Instant the last round was released (the group-common anchor that
    phase correction aligns schedules to). *)

val cross :
  ?on_release:(unit -> unit) ->
  ?record_order:(Thread.t -> int -> unit) ->
  t ->
  Thread.body
(** Fragment: one barrier crossing. [on_release] runs once per round, at
    the instant the last thread arrives (before anyone departs) — used by
    reductions to freeze their accumulator. [record_order] tells each
    thread its release index (0 = first out). *)
