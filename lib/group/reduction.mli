(** Group-wide reductions (and broadcast) (paper Section 4.2).

    An all-reduce: every member contributes a value, the combined result is
    visible to all members after the crossing. Built on the group barrier;
    the accumulator freezes at the release instant. Reusable across
    rounds. Broadcast is the special case of reducing with "keep the
    leader's value". *)

open Hrt_core

type 'a t

val create : Group.t -> zero:'a -> combine:('a -> 'a -> 'a) -> 'a t

val set_parties : 'a t -> int -> unit

val reduce : 'a t -> value:(unit -> 'a) -> on_result:('a -> unit) -> Thread.body
(** Fragment: contribute [value ()] (evaluated at contribution time) and
    receive the combined result after everyone has contributed. *)

val last_result : 'a t -> 'a option
