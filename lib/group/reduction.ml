open Hrt_core

type 'a t = {
  group : Group.t;
  zero : 'a;
  combine : 'a -> 'a -> 'a;
  mutable acc : 'a;
  mutable result : 'a option;
  barrier : Gbarrier.t;
}

let create group ~zero ~combine =
  let parties = Stdlib.max 1 (Group.size group) in
  {
    group;
    zero;
    combine;
    acc = zero;
    result = None;
    barrier = Gbarrier.create (Group.scheduler group) ~parties;
  }

let set_parties t n = Gbarrier.set_parties t.barrier n

let reduce t ~value ~on_result =
  let contributed = ref false in
  let cross =
    Gbarrier.cross
      ~on_release:(fun () ->
        t.result <- Some t.acc;
        t.acc <- t.zero)
      t.barrier
  in
  let finished = ref false in
  fun ctx ->
    if not !contributed then begin
      contributed := true;
      t.acc <- t.combine t.acc (value ())
    end;
    match cross ctx with
    | Thread.Exit when not !finished ->
      finished := true;
      (match t.result with
      | Some r -> on_result r
      | None -> on_result t.zero);
      Thread.Exit
    | op -> op

let last_result t = t.result
