(** Thread groups (paper Section 4.2).

    Threads can create, join, leave, and destroy named groups; a group
    carries shared state (notably the timing constraints all members want).
    Join/leave serialize on the group's spin lock, so their cost grows
    with contention — exactly the linear behaviour of Fig 10(a).

    Group operations are exposed as {e body fragments}: values of type
    {!Hrt_core.Thread.body} that perform the operation (consuming
    simulated time) and then return [Exit], which {!Hrt_core.Program.seq}
    interprets as "fragment done, continue with the next". *)

open Hrt_core

type t

val create : Scheduler.t -> name:string -> t
(** Create (and register) a named group. *)

val find : Scheduler.t -> string -> t option
val destroy : t -> unit
(** Unregister the group. Raises [Invalid_argument] if members remain. *)

val dispose : t -> unit
(** Unregister unconditionally (end-of-experiment cleanup: the registry is
    global, so a forgotten group would retain its whole simulated system). *)

val name : t -> string
val size : t -> int
val members : t -> Thread.t list
(** In join order. *)

val scheduler : t -> Scheduler.t

val join : t -> Thread.body
(** Fragment: join the group (serialized on the group lock; cost is
    position-dependent under contention). *)

val leave : t -> Thread.body

val set_constraints : t -> Constraints.t option -> unit
(** Attach shared constraints to the group (leader-side state). *)

val constraints : t -> Constraints.t option

val lock : t -> Thread.t -> unit
(** Leader lock for group admission. Raises [Invalid_argument] if already
    locked by another thread. *)

val unlock : t -> Thread.t -> unit
val locked_by : t -> Thread.t option

type section
(** A contended spin-lock-protected section: the [p]-th contender (since
    the section last went quiet) spins for [(p+1)] holdings of the lock.
    This models every serialized group-bookkeeping step and yields the
    linear per-member costs of Fig 10. *)

val make_section : t -> Hrt_hw.Platform.cost -> section
(** A fresh section whose holding cost is one sample of [cost]. *)

val enter_section : section -> Thread.body
(** Fragment: pass through the section. *)
