(** Group admission control — Algorithm 1 of the paper (Section 4.3).

    All members of a group call a single function paralleling individual
    admission: instead of [nk_sched_thread_change_constraints], each member
    runs [nk_group_sched_change_constraints]. The call succeeds or fails
    for {e all} members:

    {v
    conduct leader election;
    if leader then lock group; attach constraints;
    execute group barrier;
    conduct local admission control;
    execute group reduction over errors;
    if any local admission failed then
      readmit myself using default (aperiodic) constraints;
      barrier; leader unlocks; return failure;
    execute group barrier and get my release order;
    phase correct my schedule based on my release order;
    leader unlocks; return success
    v}

    Once admitted, the members never communicate again: their local
    schedulers make identical decisions at (phase-corrected) identical
    times, which gang-schedules the group (Section 4.1). *)

open Hrt_core

type session
(** Shared state of one collective constraint change. All members of the
    group must use the same session, and the membership must not change
    while it runs. *)

val prepare :
  ?phase_correction:bool -> Group.t -> Constraints.t -> session
(** Build a session that will install the given constraints in every
    member. [phase_correction] (default true) applies the release-order
    phase correction of Section 4.4 — disable it to reproduce the bias of
    Figs 11/12. *)

val change_constraints :
  ?probe:(string -> Thread.t -> Hrt_engine.Time.ns -> unit) ->
  session ->
  on_result:(Admission.verdict -> unit) ->
  Thread.body
(** Fragment: this member's side of the collective call. The callback
    receives the group-wide verdict: the pessimistic combine
    ({!Admission.worse}) of every member's local verdict — the smallest
    headroom when all were admitted, the first rejection (in reduction
    arrival order) otherwise. [probe] is called at step boundaries with
    one of ["start"; "elected"; "attached"; "admitted"; "reduced";
    "done"] — the instrumentation behind Fig 10. *)

val release_order : session -> Thread.t -> int option
(** After success: the thread's release order from the final barrier. *)

val verdict : session -> Admission.verdict option
(** Group-wide verdict, once known. *)

val succeeded : session -> bool option
(** [Option.map Admission.admitted (verdict s)]. *)
