(** Distributed leader election, scoped to a group (paper Section 4.2).

    The election is a contended compare-and-swap on shared group state:
    the first thread through wins. Cost is position-dependent (Fig 10b's
    linear growth). An election instance is reusable: {!reset} rearms it. *)

open Hrt_core

type t

val create : Group.t -> t

val elect : t -> on_result:(bool -> unit) -> Thread.body
(** Fragment: participate; the callback says whether the caller won. *)

val leader : t -> Thread.t option

val reset : t -> unit
(** Rearm for a new round (increments {!round}). *)

val id : t -> int
(** Process-unique creation-ordered identifier, stamped on [Elected]
    trace events. *)

val round : t -> int
(** Current round, starting at 0; {!reset} advances it. *)
