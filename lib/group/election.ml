open Hrt_core

type t = {
  group : Group.t;
  mutable leader : Thread.t option;
  mutable contenders : int;
}

let create group = { group; leader = None; contenders = 0 }

let elect t ~on_result =
  let plat = Scheduler.platform (Group.scheduler t.group) in
  let decided = ref false in
  let spin = ref None in
  fun ({ Thread.svc; self } as _ctx) ->
    match !spin with
    | None ->
      (* CAS attempt: position in the contention queue decides the cost. *)
      let p = t.contenders in
      t.contenders <- t.contenders + 1;
      if t.leader = None then t.leader <- Some self;
      spin := Some p;
      let hold = svc.Thread.sample self plat.Hrt_hw.Platform.group_elect_step in
      Thread.Compute (Int64.mul hold (Int64.of_int (p + 1)))
    | Some _ ->
      if not !decided then begin
        decided := true;
        on_result (match t.leader with Some l -> l == self | None -> false)
      end;
      Thread.Exit

let leader t = t.leader

let reset t =
  t.leader <- None;
  t.contenders <- 0
