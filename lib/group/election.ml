open Hrt_core
module Obs = Hrt_obs

type t = {
  group : Group.t;
  id : int;
      (* unique within the owning system, creation-ordered — distinguishes
         interleaved elections in one trace; allocated per system so
         traces stay deterministic under domain-parallel sweeps *)
  mutable round : int;
  mutable leader : Thread.t option;
  mutable contenders : int;
}

let create group =
  let id = Scheduler.fresh_id (Group.scheduler group) in
  { group; id; round = 0; leader = None; contenders = 0 }

let id t = t.id
let round t = t.round

let elect t ~on_result =
  let plat = Scheduler.platform (Group.scheduler t.group) in
  let decided = ref false in
  let spin = ref None in
  fun ({ Thread.svc; self } as _ctx) ->
    match !spin with
    | None ->
      (* CAS attempt: position in the contention queue decides the cost. *)
      let p = t.contenders in
      t.contenders <- t.contenders + 1;
      if t.leader = None then t.leader <- Some self;
      spin := Some p;
      let hold = svc.Thread.sample self plat.Hrt_hw.Platform.group_elect_step in
      Thread.Compute (Int64.mul hold (Int64.of_int (p + 1)))
    | Some _ ->
      if not !decided then begin
        decided := true;
        let leader = match t.leader with Some l -> l == self | None -> false in
        let sink = Scheduler.obs (Group.scheduler t.group) in
        (if Obs.Sink.enabled sink then
           Obs.Sink.emit sink
             ~time:(svc.Thread.now ())
             ~cpu:self.Thread.cpu
             (Obs.Event.Elected
                { election = t.id; round = t.round; tid = self.Thread.id; leader }));
        on_result leader
      end;
      Thread.Exit

let leader t = t.leader

let reset t =
  t.leader <- None;
  t.contenders <- 0;
  t.round <- t.round + 1
