open Hrt_engine
open Hrt_core
module Obs = Hrt_obs

type t = {
  sys : Scheduler.t;
  id : int;
      (* unique within the owning system, creation-ordered: lets trace
         events from distinct barriers be told apart by the verifier. Ids
         are allocated per system (Scheduler.fresh_id), never from global
         state, so a system's trace is identical whether it ran alone or
         alongside others on parallel domains. *)
  arrive_cost : Hrt_hw.Platform.cost;
  serialized : bool;
  mutable parties : int;
  mutable pre_arrived : int;
  mutable arrived : int;
  mutable waiters : Thread.t list; (* reverse arrival order *)
  mutable rounds : int;
  mutable last_release : Time.ns option;
  mutable first_arrive : Time.ns option;
      (* arrival time of the round's first thread, for the release-time
         wait-span event *)
  delta : Time.ns;
}

let create ?arrive_cost ?(serialized_arrivals = false) sys ~parties =
  if parties <= 0 then invalid_arg "Gbarrier.create";
  let id = Scheduler.fresh_id sys in
  let plat = Scheduler.platform sys in
  let arrive_cost =
    match arrive_cost with
    | Some c -> c
    | None -> plat.Hrt_hw.Platform.barrier_arrive
  in
  let delta =
    Hrt_hw.Platform.cycles_to_ns plat
      plat.Hrt_hw.Platform.barrier_release_step.Hrt_hw.Platform.mean_cycles
  in
  {
    sys;
    id;
    arrive_cost;
    serialized = serialized_arrivals;
    parties;
    pre_arrived = 0;
    arrived = 0;
    waiters = [];
    rounds = 0;
    last_release = None;
    first_arrive = None;
    delta;
  }

let set_parties t n =
  if n <= 0 then invalid_arg "Gbarrier.set_parties";
  t.parties <- n

let id t = t.id

let parties t = t.parties
let release_delta t = t.delta
let rounds t = t.rounds
let last_release_time t = t.last_release

type phase = Pre_arrive | Arriving | Waiting | Done

(* Departure order equals arrival order: the k-th thread to arrive leaves
   (k+1)*delta after the release instant. Everybody (including the last
   arriver) blocks and is woken on that staggered schedule, so the wake
   path cost is common to the whole group and cancels in cross-CPU
   comparisons; only the k*delta stagger differentiates members, and that
   is exactly what phase correction cancels. Registration and blocking
   happen in the same body call, so there is no lost-wakeup window. *)
let cross ?on_release ?record_order t =
  let phase = ref Pre_arrive in
  fun { Thread.svc; self } ->
    match !phase with
    | Done -> Thread.Exit
    | Waiting ->
      phase := Done;
      Thread.Exit
    | Pre_arrive ->
      (* The contended counter/lock update, charged before registering so
         that registration and blocking stay atomic (no lost wakeup). *)
      phase := Arriving;
      let p = t.pre_arrived in
      t.pre_arrived <- t.pre_arrived + 1;
      let one = svc.Thread.sample self t.arrive_cost in
      let cost = if t.serialized then Int64.mul one (Int64.of_int (p + 1)) else one in
      Thread.Compute cost
    | Arriving ->
      let k = t.arrived in
      t.arrived <- t.arrived + 1;
      (match record_order with Some f -> f self k | None -> ());
      let sink = Scheduler.obs t.sys in
      let now = svc.Thread.now () in
      if Obs.Sink.enabled sink then begin
        if t.first_arrive = None then t.first_arrive <- Some now;
        Obs.Sink.emit sink ~time:now ~cpu:self.Thread.cpu
          (Obs.Event.Barrier_arrive { barrier = t.id; tid = self.Thread.id; order = k })
      end;
      phase := Waiting;
      if t.arrived < t.parties then begin
        t.waiters <- self :: t.waiters;
        Thread.Block
      end
      else begin
        t.last_release <- Some now;
        (if Obs.Sink.enabled sink then
           let wait_ns =
             match t.first_arrive with
             | Some first -> Int64.sub now first
             | None -> 0L
           in
           Obs.Sink.emit sink ~time:now ~cpu:self.Thread.cpu
             (Obs.Event.Barrier_release { barrier = t.id; parties = t.parties; wait_ns }));
        t.first_arrive <- None;
        (match on_release with Some f -> f () | None -> ());
        let all = List.rev (self :: t.waiters) in
        t.waiters <- [];
        t.arrived <- 0;
        t.pre_arrived <- 0;
        t.rounds <- t.rounds + 1;
        let eng = Scheduler.engine t.sys in
        List.iteri
          (fun i th ->
            let delay = Int64.mul t.delta (Int64.of_int (i + 1)) in
            ignore
              (Engine.schedule_after eng ~after:delay (fun _ ->
                   svc.Thread.wake th)))
          all;
        Thread.Block
      end
