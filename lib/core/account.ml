open Hrt_stats

type t = {
  ghz : float;
  irq : Summary.t;
  other : Summary.t;
  resched : Summary.t;
  switch : Summary.t;
  miss_times : Summary.t;
  mutable invocations : int;
  mutable arrivals : int;
  mutable misses : int;
  mutable kicks : int;
  mutable steals : int;
}

let create ~ghz =
  {
    ghz;
    irq = Summary.create ();
    other = Summary.create ();
    resched = Summary.create ();
    switch = Summary.create ();
    miss_times = Summary.create ();
    invocations = 0;
    arrivals = 0;
    misses = 0;
    kicks = 0;
    steals = 0;
  }

let cycles t ns = Int64.to_float ns *. t.ghz

let record_invocation t ~irq_ns ~other_ns ~pass_ns ~switch_ns =
  t.invocations <- t.invocations + 1;
  Summary.add t.irq (cycles t irq_ns);
  Summary.add t.other (cycles t other_ns);
  Summary.add t.resched (cycles t pass_ns);
  if Int64.compare switch_ns 0L > 0 then Summary.add t.switch (cycles t switch_ns)

let record_arrival t = t.arrivals <- t.arrivals + 1
let record_miss t ~miss_time_ns =
  t.misses <- t.misses + 1;
  Summary.add t.miss_times (Int64.to_float miss_time_ns /. 1_000.)

let record_kick t = t.kicks <- t.kicks + 1
let record_steal t = t.steals <- t.steals + 1

let invocations t = t.invocations
let arrivals t = t.arrivals
let misses t = t.misses

let miss_rate t =
  if t.arrivals = 0 then 0.
  else float_of_int t.misses /. float_of_int t.arrivals

let kicks t = t.kicks
let steals t = t.steals

let irq_cycles t = t.irq
let other_cycles t = t.other
let resched_cycles t = t.resched
let switch_cycles t = t.switch
let miss_times_us t = t.miss_times

let total_overhead_cycles t =
  Summary.mean t.irq +. Summary.mean t.other +. Summary.mean t.resched
  +. Summary.mean t.switch

let merge a b =
  {
    ghz = a.ghz;
    irq = Summary.merge a.irq b.irq;
    other = Summary.merge a.other b.other;
    resched = Summary.merge a.resched b.resched;
    switch = Summary.merge a.switch b.switch;
    miss_times = Summary.merge a.miss_times b.miss_times;
    invocations = a.invocations + b.invocations;
    arrivals = a.arrivals + b.arrivals;
    misses = a.misses + b.misses;
    kicks = a.kicks + b.kicks;
    steals = a.steals + b.steals;
  }
