open Hrt_engine

type job = { name : string; period : Time.ns; slice : Time.ns }

type table = {
  jobs : job list;
  hyperperiod : Time.ns;
  frame : Time.ns;
  assignments : (string * Time.ns) list array;
}

type error =
  | Empty_job_set
  | Invalid_job of string
  | Utilization_too_high of float
  | No_valid_frame
  | Unschedulable of string

let pp_error fmt = function
  | Empty_job_set -> Format.fprintf fmt "empty job set"
  | Invalid_job n -> Format.fprintf fmt "invalid job %s" n
  | Utilization_too_high u -> Format.fprintf fmt "utilization %.2f > 1" u
  | No_valid_frame -> Format.fprintf fmt "no valid frame size"
  | Unschedulable n -> Format.fprintf fmt "cannot pack job %s" n

let rec gcd64 a b = if Int64.equal b 0L then a else gcd64 b (Int64.rem a b)

let lcm64 a b = Int64.div (Int64.mul a b) (gcd64 a b)

let utilization_of jobs =
  List.fold_left
    (fun acc j -> acc +. (Int64.to_float j.slice /. Int64.to_float j.period))
    0. jobs

(* Frame-size constraints (Liu, ch. 5):
   (1) f >= max slice (no instance is split);
   (2) f divides the hyperperiod;
   (3) 2f - gcd(f, T_i) <= T_i for every job (a full frame fits between
       any release and its deadline). *)
let frame_ok jobs f =
  List.for_all
    (fun j ->
      Time.(f >= j.slice)
      && Int64.compare
           (Int64.sub (Int64.mul 2L f) (gcd64 f j.period))
           j.period
         <= 0)
    jobs

let divisors h =
  (* Candidate frame sizes f = h/k, descending: every divisor that yields
     at most 100k frames (finer frames are never useful and keep this
     bounded). *)
  let out = ref [] in
  let k = ref 1L in
  while Int64.compare !k 100_000L <= 0 do
    if Int64.equal (Int64.rem h !k) 0L then out := Int64.div h !k :: !out;
    k := Int64.add !k 1L
  done;
  List.sort (fun a b -> Int64.compare b a) !out

let plan jobs =
  if jobs = [] then Error Empty_job_set
  else begin
    match
      List.find_opt
        (fun j ->
          Time.(j.period <= 0L) || Time.(j.slice <= 0L) || Time.(j.slice > j.period))
        jobs
    with
    | Some j -> Error (Invalid_job j.name)
    | None ->
      let u = utilization_of jobs in
      if u > 1. then Error (Utilization_too_high u)
      else begin
        let h = List.fold_left (fun acc j -> lcm64 acc j.period) 1L jobs in
        if Int64.compare h (Time.sec 100) > 0 then Error No_valid_frame
        else begin
          match List.find_opt (frame_ok jobs) (divisors h) with
          | None -> Error No_valid_frame
          | Some f ->
            let nframes = Int64.to_int (Int64.div h f) in
            let capacity = Array.make nframes f in
            let assignments = Array.make nframes [] in
            (* All instances over the hyperperiod, EDF order. *)
            let instances =
              List.concat_map
                (fun j ->
                  let count = Int64.to_int (Int64.div h j.period) in
                  List.init count (fun k ->
                      let release = Int64.mul j.period (Int64.of_int k) in
                      let deadline = Int64.add release j.period in
                      (j, release, deadline)))
                jobs
            in
            let instances =
              List.sort
                (fun (_, _, d1) (_, _, d2) -> Int64.compare d1 d2)
                instances
            in
            (* Worst-fit: place each instance in the least-loaded eligible
               frame, which balances frames and keeps the executive's
               worst-frame slice (and hence its admission demand) low. *)
            let place (j, release, deadline) =
              let first = Int64.to_int (Int64.div (Int64.add release (Int64.sub f 1L)) f) in
              let last = Int64.to_int (Int64.div deadline f) - 1 in
              let best = ref None in
              for m = first to last do
                if Time.(capacity.(m) >= j.slice) then
                  match !best with
                  | Some b when Time.(capacity.(b) >= capacity.(m)) -> ()
                  | Some _ | None -> best := Some m
              done;
              match !best with
              | None -> false
              | Some m ->
                capacity.(m) <- Time.(capacity.(m) - j.slice);
                assignments.(m) <- (j.name, j.slice) :: assignments.(m);
                true
            in
            let rec pack = function
              | [] -> Ok ()
              | ((j, _, _) as inst) :: rest ->
                if place inst then pack rest else Error (Unschedulable j.name)
            in
            (match pack instances with
            | Error e -> Error e
            | Ok () ->
              Array.iteri
                (fun m pieces -> assignments.(m) <- List.rev pieces)
                assignments;
              Ok { jobs; hyperperiod = h; frame = f; assignments })
        end
      end
  end

let hyperperiod t = t.hyperperiod
let frame_size t = t.frame
let frames t = Array.copy t.assignments
let utilization t = utilization_of t.jobs

let frame_load pieces =
  List.fold_left (fun acc (_, s) -> Time.(acc + s)) 0L pieces

let validate t =
  let nframes = Array.length t.assignments in
  if Int64.compare (Int64.mul t.frame (Int64.of_int nframes)) t.hyperperiod <> 0
  then Error "frames do not tile the hyperperiod"
  else begin
    let overflow = ref None in
    Array.iteri
      (fun m pieces ->
        if Time.(frame_load pieces > t.frame) then
          overflow := Some (Printf.sprintf "frame %d overflows" m))
      t.assignments;
    match !overflow with
    | Some msg -> Error msg
    | None ->
      (* Every job must appear hyperperiod/period times, each instance in
         a frame within [release, deadline). *)
      let rec check_jobs = function
        | [] -> Ok ()
        | j :: rest ->
          let expected = Int64.to_int (Int64.div t.hyperperiod j.period) in
          let placements = ref [] in
          Array.iteri
            (fun m pieces ->
              List.iter
                (fun (n, _) -> if n = j.name then placements := m :: !placements)
                pieces)
            t.assignments;
          let placements = List.sort compare !placements in
          if List.length placements <> expected then
            Error (Printf.sprintf "job %s has %d placements, expected %d"
                     j.name (List.length placements) expected)
          else begin
            let ok =
              List.for_all2
                (fun k m ->
                  let release = Int64.mul j.period (Int64.of_int k) in
                  let deadline = Int64.add release j.period in
                  let fstart = Int64.mul t.frame (Int64.of_int m) in
                  let fend = Int64.add fstart t.frame in
                  Int64.compare fstart release >= 0
                  && Int64.compare fend deadline <= 0)
                (List.init expected Fun.id)
                placements
            in
            if ok then check_jobs rest
            else Error (Printf.sprintf "job %s placed outside a window" j.name)
          end
      in
      check_jobs t.jobs
  end

let spawn sys ~cpu ?(on_job = fun _ _ -> ()) t =
  let nframes = Array.length t.assignments in
  let max_load =
    Array.fold_left
      (fun acc pieces -> Time.max acc (frame_load pieces))
      0L t.assignments
  in
  let admitted = ref None in
  let served = ref 0 in
  let remaining = ref [] in
  let last_job = ref None in
  let body ({ Thread.svc; self } : Thread.ctx) =
    let flush_last () =
      match !last_job with
      | Some name ->
        on_job name (svc.Thread.now ());
        last_job := None
      | None -> ()
    in
    flush_last ();
    match !remaining with
    | (name, w) :: rest ->
      remaining := rest;
      last_job := Some name;
      Thread.Compute w
    | [] ->
      if self.Thread.arrivals > !served then begin
        served := self.Thread.arrivals;
        let frame = (self.Thread.arrivals - 1) mod nframes in
        match t.assignments.(frame) with
        | [] -> Thread.Sleep_until Time.(self.Thread.arrival + t.frame)
        | (name, w) :: rest ->
          remaining := rest;
          last_job := Some name;
          Thread.Compute w
      end
      else
        (* Frame finished early: sleep until the next frame boundary. *)
        Thread.Sleep_until Time.(self.Thread.arrival + t.frame)
  in
  let th =
    Scheduler.spawn sys ~name:"cyclic-exec" ~cpu ~bound:true
      (Program.seq
         [
           Program.of_steps
             (Scheduler.admission_ops sys
                (Constraints.periodic ~period:t.frame ~slice:max_load ())
                ~on_result:(fun v -> admitted := Some v));
           body;
         ])
  in
  (* Drive the admission through so the caller gets a crisp error. *)
  Scheduler.run
    ~until:Time.(Engine.now (Scheduler.engine sys) + Time.ms 1)
    sys;
  (match !admitted with
  | Some (Admission.Admitted _) -> ()
  | Some (Admission.Rejected { reason }) ->
    failwith
      ("Cyclic.spawn: executive rejected by admission: "
      ^ Admission.Rejection.describe reason)
  | None -> failwith "Cyclic.spawn: admission did not run");
  th
