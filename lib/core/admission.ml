open Hrt_engine

module Rejection = struct
  type t =
    | Invalid of { msg : string }
    | Granularity of { period : Time.ns; slice : Time.ns }
    | Utilization_bound of { util : float; bound : float }
    | Density_bound of { density : float; bound : float }
    | Hyperperiod_demand of { interval : Time.ns; demand : Time.ns }
    | Past_deadline of { arrival : Time.ns; deadline : Time.ns }
    | Overload_shed of { boundary : int }

  let name = function
    | Invalid _ -> "invalid"
    | Granularity _ -> "granularity"
    | Utilization_bound _ -> "utilization-bound"
    | Density_bound _ -> "density-bound"
    | Hyperperiod_demand _ -> "hyperperiod-demand"
    | Past_deadline _ -> "past-deadline"
    | Overload_shed _ -> "overload-shed"

  let describe = function
    | Invalid { msg } -> Printf.sprintf "invalid constraints: %s" msg
    | Granularity { period; slice } ->
      Printf.sprintf "below scheduler granularity (period=%Ldns slice=%Ldns)"
        period slice
    | Utilization_bound { util; bound } ->
      Printf.sprintf "utilization %.6f exceeds bound %.6f" util bound
    | Density_bound { density; bound } ->
      Printf.sprintf "sporadic density %.6f exceeds reservation %.6f" density
        bound
    | Hyperperiod_demand { interval; demand } ->
      Printf.sprintf "demand %Ldns exceeds supply in interval [0,%Ldns]" demand
        interval
    | Past_deadline { arrival; deadline } ->
      Printf.sprintf "deadline %Ldns not after arrival %Ldns" deadline arrival
    | Overload_shed { boundary } ->
      Printf.sprintf "overload mode: criticality below shed boundary %d"
        boundary

  let pp fmt t = Format.pp_print_string fmt (describe t)
end

type verdict =
  | Admitted of { headroom : float }
  | Rejected of { reason : Rejection.t }

let admitted = function Admitted _ -> true | Rejected _ -> false
let headroom = function Admitted { headroom } -> Some headroom | Rejected _ -> None

let worse a b =
  match (a, b) with
  | Rejected _, _ -> a
  | _, Rejected _ -> b
  | Admitted { headroom = ha }, Admitted { headroom = hb } ->
    if ha <= hb then a else b

let pp_verdict fmt = function
  | Admitted { headroom } -> Format.fprintf fmt "admitted (headroom %.6f)" headroom
  | Rejected { reason } -> Format.fprintf fmt "rejected: %a" Rejection.pp reason

type t = {
  config : Config.t;
  overhead_ns : Time.ns;
  mutable periodic_util : float;
  mutable periodic_count : int;
  mutable periodic_set : (Time.ns * Time.ns) list;  (* (period, slice) *)
  mutable sporadic : (Time.ns * float) list;  (* (deadline, density) *)
  mutable rejections : int;
  mutable shed_boundary : int;  (* overload mode: min admitted crit rank *)
}

let create ?(overhead_ns = 0L) config =
  {
    config;
    overhead_ns;
    periodic_util = 0.;
    periodic_count = 0;
    periodic_set = [];
    sporadic = [];
    rejections = 0;
    shed_boundary = 0;
  }

let periodic_util t = t.periodic_util
let overhead_ns t = t.overhead_ns

let set_overload t ~boundary = t.shed_boundary <- Stdlib.max 0 boundary
let clear_overload t = t.shed_boundary <- 0
let shed_boundary t = t.shed_boundary

let purge t ~now =
  t.sporadic <- List.filter (fun (d, _) -> Time.(d > now)) t.sporadic

let sporadic_density t ~now =
  purge t ~now;
  List.fold_left (fun acc (_, d) -> acc +. d) 0. t.sporadic

let remove_from_set t period slice =
  let rec go = function
    | [] -> []
    | (p, s) :: rest when Int64.equal p period && Int64.equal s slice -> rest
    | x :: rest -> x :: go rest
  in
  t.periodic_set <- go t.periodic_set

let release_one t = function
  | Constraints.Aperiodic _ -> ()
  | Constraints.Periodic { period; slice; _ } as c ->
    t.periodic_util <- Float.max 0. (t.periodic_util -. Constraints.utilization c);
    t.periodic_count <- Stdlib.max 0 (t.periodic_count - 1);
    remove_from_set t period slice
  | Constraints.Sporadic { deadline; _ } -> (
    (* Drop one entry with this deadline; densities of distinct admissions
       with equal deadlines are interchangeable. *)
    match List.partition (fun (d, _) -> Int64.equal d deadline) t.sporadic with
    | [], _ -> ()
    | _ :: rest_same, others -> t.sporadic <- rest_same @ others)

let release t c = release_one t c

let liu_layland n =
  if n <= 0 then 1.
  else begin
    let fn = float_of_int n in
    fn *. ((2. ** (1. /. fn)) -. 1.)
  end

let rec gcd64 a b = if Int64.equal b 0L then a else gcd64 b (Int64.rem a b)

(* Processor-demand test over one hyperperiod, charging each arrival its
   scheduler overhead (the paper's prototype admission, Section 3.2). The
   hyperperiod is capped: pathological period combinations fall back to the
   plain utilization test with overhead folded into each cost. On success
   the headroom is the smallest normalized slack over all checked
   deadlines. *)
let hyperperiod_check t ~capacity set =
  let ovh = t.overhead_ns in
  let lcm_capped acc p =
    let l = Int64.div (Int64.mul acc p) (gcd64 acc p) in
    if Int64.compare l 1_000_000_000L > 0 then Int64.min_int else l
  in
  let h = List.fold_left (fun acc (p, _) ->
      if Int64.equal acc Int64.min_int then acc else lcm_capped acc p)
      1L set
  in
  let effective_util =
    List.fold_left
      (fun acc (p, s) ->
        acc +. (Int64.to_float Time.(s + ovh) /. Int64.to_float p))
      0. set
  in
  if Int64.equal h Int64.min_int then begin
    if effective_util <= capacity then Ok (capacity -. effective_util)
    else
      Error
        (Rejection.Utilization_bound { util = effective_util; bound = capacity })
  end
  else begin
    (* Check demand at every deadline (arrival multiple) up to H. *)
    let deadlines =
      List.concat_map
        (fun (p, _) ->
          let count = Int64.to_int (Int64.div h p) in
          if count > 4096 then [] (* bounded pass; H check below covers it *)
          else List.init count (fun k -> Int64.mul p (Int64.of_int (k + 1))))
        set
    in
    let deadlines = List.sort_uniq Int64.compare (h :: deadlines) in
    let rec scan min_slack = function
      | [] -> Ok min_slack
      | d :: rest ->
        let demand =
          List.fold_left
            (fun acc (p, s) ->
              let jobs = Int64.div d p in
              Time.(acc + Int64.mul jobs Time.(s + ovh)))
            0L set
        in
        let supply = Int64.to_float d *. capacity in
        if Int64.to_float demand <= supply then
          scan
            (Float.min min_slack
               ((supply -. Int64.to_float demand) /. Int64.to_float d))
            rest
        else Error (Rejection.Hyperperiod_demand { interval = d; demand })
    in
    scan infinity deadlines
  end

let admit_periodic t ~period ~slice =
  let cfg = t.config in
  if Time.(period < cfg.Config.min_period) || Time.(slice < cfg.Config.min_slice)
  then Error (Rejection.Granularity { period; slice })
  else begin
    let u = Int64.to_float slice /. Int64.to_float period in
    let capacity = Config.periodic_capacity cfg in
    (* The admission bound follows the scheduling policy: a bound is only a
       guarantee when the dispatcher runs the discipline it was proved
       for. The hyperperiod simulation is an EDF processor-demand test
       (Config.validate rejects it combined with RM). *)
    match (cfg.Config.admission, cfg.Config.policy) with
    | Config.Hyperperiod_sim, _ ->
      hyperperiod_check t ~capacity ((period, slice) :: t.periodic_set)
    | Config.Policy_bound, Config.Edf ->
      let total = t.periodic_util +. u in
      if total <= capacity then Ok (capacity -. total)
      else Error (Rejection.Utilization_bound { util = total; bound = capacity })
    | Config.Policy_bound, Config.Rm ->
      let bound = liu_layland (t.periodic_count + 1) *. capacity in
      let total = t.periodic_util +. u in
      if total <= bound then Ok (bound -. total)
      else Error (Rejection.Utilization_bound { util = total; bound })
  end

let admit_sporadic t ~now ~phase ~size ~deadline =
  let arrival = Time.(now + phase) in
  if Time.(deadline <= arrival) then
    Error (Rejection.Past_deadline { arrival; deadline })
  else begin
    let density = Int64.to_float size /. Int64.to_float Time.(deadline - arrival) in
    let total = sporadic_density t ~now +. density in
    let bound =
      t.config.Config.sporadic_reservation *. t.config.Config.util_limit
    in
    if total <= bound then Ok (bound -. total)
    else Error (Rejection.Density_bound { density = total; bound })
  end

(* Informational headroom for runs with admission control disabled: the
   verdict is always [Admitted], but callers still see how far past (or
   inside) the bound the accepted set sits — negative past the edge. *)
let unchecked_headroom t ~now c =
  let capacity = Config.periodic_capacity t.config in
  match c with
  | Constraints.Aperiodic _ -> capacity -. t.periodic_util
  | Constraints.Periodic _ ->
    capacity -. (t.periodic_util +. Constraints.utilization c)
  | Constraints.Sporadic { phase; size; deadline; _ } ->
    let arrival = Time.(now + phase) in
    let density =
      Int64.to_float size /. Int64.to_float (Time.max 1L Time.(deadline - arrival))
    in
    t.config.Config.sporadic_reservation *. t.config.Config.util_limit
    -. (sporadic_density t ~now +. density)

let commit t ~now = function
  | Constraints.Aperiodic _ -> ()
  | Constraints.Periodic { period; slice; _ } as c ->
    t.periodic_util <- t.periodic_util +. Constraints.utilization c;
    t.periodic_count <- t.periodic_count + 1;
    t.periodic_set <- (period, slice) :: t.periodic_set
  | Constraints.Sporadic { phase; size; deadline; _ } ->
    let arrival = Time.(now + phase) in
    let density =
      Int64.to_float size /. Int64.to_float (Time.max 1L Time.(deadline - arrival))
    in
    t.sporadic <- (deadline, density) :: t.sporadic

let request t ~now ?(crit = Constraints.High) ~old_constr c =
  (* Snapshot the full accounting state before releasing [old_constr]:
     on rejection it is restored verbatim. Re-committing [old_constr]
     here would recompute a sporadic entry's density at the current
     [now], so each rejected re-request would silently shift the stored
     density away from what was admitted. *)
  let snap_util = t.periodic_util in
  let snap_count = t.periodic_count in
  let snap_set = t.periodic_set in
  let snap_sporadic = t.sporadic in
  release_one t old_constr;
  let overload_blocked =
    (* Overload mode is orthogonal to [admission_control]: once the
       scheduler has shed threads, real-time guarantees below the shed
       boundary stay revoked until recovery even in runs that disable
       the feasibility tests. *)
    t.shed_boundary > 0
    && Constraints.is_realtime c
    && Constraints.crit_rank crit < t.shed_boundary
  in
  let result =
    match Constraints.validate c with
    | Error msg -> Error (Rejection.Invalid { msg })
    | Ok () ->
      if overload_blocked then
        Error (Rejection.Overload_shed { boundary = t.shed_boundary })
      else if not t.config.Config.admission_control then
        Ok (unchecked_headroom t ~now c)
      else begin
        match c with
        | Constraints.Aperiodic _ ->
          Ok (Config.periodic_capacity t.config -. t.periodic_util)
        | Constraints.Periodic { period; slice; _ } ->
          admit_periodic t ~period ~slice
        | Constraints.Sporadic { phase; size; deadline; _ } ->
          admit_sporadic t ~now ~phase ~size ~deadline
      end
  in
  match result with
  | Ok headroom ->
    commit t ~now c;
    Admitted { headroom }
  | Error reason ->
    t.rejections <- t.rejections + 1;
    t.periodic_util <- snap_util;
    t.periodic_count <- snap_count;
    t.periodic_set <- snap_set;
    t.sporadic <- snap_sporadic;
    Rejected { reason }

let rejections t = t.rejections
