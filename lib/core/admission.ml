open Hrt_engine

type t = {
  config : Config.t;
  overhead_ns : Time.ns;
  mutable periodic_util : float;
  mutable periodic_count : int;
  mutable periodic_set : (Time.ns * Time.ns) list;  (* (period, slice) *)
  mutable sporadic : (Time.ns * float) list;  (* (deadline, density) *)
  mutable rejections : int;
  mutable shed_boundary : int;  (* overload mode: min admitted crit rank *)
}

let create ?(overhead_ns = 0L) config =
  {
    config;
    overhead_ns;
    periodic_util = 0.;
    periodic_count = 0;
    periodic_set = [];
    sporadic = [];
    rejections = 0;
    shed_boundary = 0;
  }

let periodic_util t = t.periodic_util

let set_overload t ~boundary = t.shed_boundary <- Stdlib.max 0 boundary
let clear_overload t = t.shed_boundary <- 0
let shed_boundary t = t.shed_boundary

let purge t ~now =
  t.sporadic <- List.filter (fun (d, _) -> Time.(d > now)) t.sporadic

let sporadic_density t ~now =
  purge t ~now;
  List.fold_left (fun acc (_, d) -> acc +. d) 0. t.sporadic

let remove_from_set t period slice =
  let rec go = function
    | [] -> []
    | (p, s) :: rest when Int64.equal p period && Int64.equal s slice -> rest
    | x :: rest -> x :: go rest
  in
  t.periodic_set <- go t.periodic_set

let release_one t = function
  | Constraints.Aperiodic _ -> ()
  | Constraints.Periodic { period; slice; _ } as c ->
    t.periodic_util <- Float.max 0. (t.periodic_util -. Constraints.utilization c);
    t.periodic_count <- Stdlib.max 0 (t.periodic_count - 1);
    remove_from_set t period slice
  | Constraints.Sporadic { deadline; _ } -> (
    (* Drop one entry with this deadline; densities of distinct admissions
       with equal deadlines are interchangeable. *)
    match List.partition (fun (d, _) -> Int64.equal d deadline) t.sporadic with
    | [], _ -> ()
    | _ :: rest_same, others -> t.sporadic <- rest_same @ others)

let release t c = release_one t c

let liu_layland n =
  if n <= 0 then 1.
  else begin
    let fn = float_of_int n in
    fn *. ((2. ** (1. /. fn)) -. 1.)
  end

let rec gcd64 a b = if Int64.equal b 0L then a else gcd64 b (Int64.rem a b)

(* Processor-demand test over one hyperperiod, charging each arrival its
   scheduler overhead (the paper's prototype admission, Section 3.2). The
   hyperperiod is capped: pathological period combinations fall back to the
   plain utilization test with overhead folded into each cost. *)
let hyperperiod_feasible t ~capacity set =
  let ovh = t.overhead_ns in
  let lcm_capped acc p =
    let l = Int64.div (Int64.mul acc p) (gcd64 acc p) in
    if Int64.compare l 1_000_000_000L > 0 then Int64.min_int else l
  in
  let h = List.fold_left (fun acc (p, _) -> 
      if Int64.equal acc Int64.min_int then acc else lcm_capped acc p)
      1L set
  in
  let effective_util =
    List.fold_left
      (fun acc (p, s) ->
        acc +. (Int64.to_float Time.(s + ovh) /. Int64.to_float p))
      0. set
  in
  if Int64.equal h Int64.min_int then effective_util <= capacity
  else begin
    (* Check demand at every deadline (arrival multiple) up to H. *)
    let deadlines =
      List.concat_map
        (fun (p, _) ->
          let count = Int64.to_int (Int64.div h p) in
          if count > 4096 then [] (* bounded pass; H check below covers it *)
          else List.init count (fun k -> Int64.mul p (Int64.of_int (k + 1))))
        set
    in
    let deadlines = List.sort_uniq Int64.compare (h :: deadlines) in
    List.for_all
      (fun d ->
        let demand =
          List.fold_left
            (fun acc (p, s) ->
              let jobs = Int64.div d p in
              Time.(acc + Int64.mul jobs Time.(s + ovh)))
            0L set
        in
        Int64.to_float demand <= Int64.to_float d *. capacity)
      deadlines
  end

let admissible_periodic t ~period ~slice =
  let cfg = t.config in
  if Time.(period < cfg.Config.min_period) || Time.(slice < cfg.Config.min_slice)
  then false
  else begin
    let u = Int64.to_float slice /. Int64.to_float period in
    let capacity = Config.periodic_capacity cfg in
    (* The admission bound follows the scheduling policy: a bound is only a
       guarantee when the dispatcher runs the discipline it was proved
       for. The hyperperiod simulation is an EDF processor-demand test
       (Config.validate rejects it combined with RM). *)
    match (cfg.Config.admission, cfg.Config.policy) with
    | Config.Hyperperiod_sim, _ ->
      hyperperiod_feasible t ~capacity ((period, slice) :: t.periodic_set)
    | Config.Policy_bound, Config.Edf -> t.periodic_util +. u <= capacity
    | Config.Policy_bound, Config.Rm ->
      let bound = liu_layland (t.periodic_count + 1) in
      t.periodic_util +. u <= bound *. capacity
  end

let admissible_sporadic t ~now ~phase ~size ~deadline =
  let arrival = Time.(now + phase) in
  if Time.(deadline <= arrival) then false
  else begin
    let density = Int64.to_float size /. Int64.to_float Time.(deadline - arrival) in
    sporadic_density t ~now +. density
    <= t.config.Config.sporadic_reservation *. t.config.Config.util_limit
  end

let commit t ~now = function
  | Constraints.Aperiodic _ -> ()
  | Constraints.Periodic { period; slice; _ } as c ->
    t.periodic_util <- t.periodic_util +. Constraints.utilization c;
    t.periodic_count <- t.periodic_count + 1;
    t.periodic_set <- (period, slice) :: t.periodic_set
  | Constraints.Sporadic { phase; size; deadline; _ } ->
    let arrival = Time.(now + phase) in
    let density =
      Int64.to_float size /. Int64.to_float (Time.max 1L Time.(deadline - arrival))
    in
    t.sporadic <- (deadline, density) :: t.sporadic

let request t ~now ?(crit = Constraints.High) ~old_constr c =
  (* Snapshot the full accounting state before releasing [old_constr]:
     on rejection it is restored verbatim. Re-committing [old_constr]
     here would recompute a sporadic entry's density at the current
     [now], so each rejected re-request would silently shift the stored
     density away from what was admitted. *)
  let snap_util = t.periodic_util in
  let snap_count = t.periodic_count in
  let snap_set = t.periodic_set in
  let snap_sporadic = t.sporadic in
  release_one t old_constr;
  let structurally_ok = Result.is_ok (Constraints.validate c) in
  let overload_blocked =
    (* Overload mode is orthogonal to [admission_control]: once the
       scheduler has shed threads, real-time guarantees below the shed
       boundary stay revoked until recovery even in runs that disable
       the feasibility tests. *)
    t.shed_boundary > 0
    && Constraints.is_realtime c
    && Constraints.crit_rank crit < t.shed_boundary
  in
  let ok =
    structurally_ok
    && (not overload_blocked)
    && (not t.config.Config.admission_control
       ||
       match c with
       | Constraints.Aperiodic _ -> true
       | Constraints.Periodic { period; slice; _ } ->
         admissible_periodic t ~period ~slice
       | Constraints.Sporadic { phase; size; deadline; _ } ->
         admissible_sporadic t ~now ~phase ~size ~deadline)
  in
  if ok then begin
    commit t ~now c;
    true
  end
  else begin
    t.rejections <- t.rejections + 1;
    t.periodic_util <- snap_util;
    t.periodic_count <- snap_count;
    t.periodic_set <- snap_set;
    t.sporadic <- snap_sporadic;
    false
  end

let rejections t = t.rejections
