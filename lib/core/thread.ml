open Hrt_engine
open Hrt_hw

type state = Ready | Running | Blocked | Pending_arrival | Exited

type t = {
  id : int;
  name : string;
  mutable cpu : int;
  mutable bound : bool;
  mutable state : state;
  mutable body : body;
  mutable has_op : bool;
  mutable work_left : Time.ns;
  mutable constr : Constraints.t;
  mutable admit_time : Time.ns;
  mutable arrival : Time.ns;
  mutable deadline : Time.ns;
  mutable slice_left : Time.ns;
  mutable next_arrival : Time.ns;
  mutable quantum_left : Time.ns;
  mutable missed_current : bool;
  mutable miss_deadline : Time.ns;
  mutable arrivals : int;
  mutable misses : int;
  mutable miss_time_total : Time.ns;
  mutable cpu_time : Time.ns;
  mutable run_since : Time.ns;
  mutable preemptions : int;
  mutable stashed_op : op option;
  mutable block_start : Time.ns;
  mutable spin_block : bool;
  mutable wake_token : int;
  mutable tag : int;
  mutable crit : Constraints.criticality;
  mutable wcet_overrun_pct : int;
  mutable release_jitter_ns : Time.ns;
  mutable shed_constr : Constraints.t option;
}

and op =
  | Compute of Time.ns
  | Yield
  | Block
  | Sleep_until of Time.ns
  | Set_constraints of Constraints.t * (Admission.verdict -> unit)
  | Exit

and body = ctx -> op

and ctx = { svc : services; self : t }

and services = {
  now : unit -> Time.ns;
  wake : t -> unit;
  sample : t -> Platform.cost -> Time.ns;
  rng : Rng.t;
}

let make ~id ~name ~cpu ?(bound = false) body =
  {
    id;
    name;
    cpu;
    bound;
    state = Ready;
    body;
    has_op = false;
    work_left = 0L;
    constr = Constraints.aperiodic ();
    admit_time = 0L;
    arrival = 0L;
    deadline = 0L;
    slice_left = 0L;
    next_arrival = 0L;
    quantum_left = 0L;
    missed_current = false;
    miss_deadline = 0L;
    arrivals = 0;
    misses = 0;
    miss_time_total = 0L;
    cpu_time = 0L;
    run_since = 0L;
    preemptions = 0;
    stashed_op = None;
    block_start = 0L;
    spin_block = false;
    wake_token = 0;
    tag = 0;
    crit = Constraints.Mid;
    wcet_overrun_pct = 0;
    release_jitter_ns = 0L;
    shed_constr = None;
  }

let is_realtime t = Constraints.is_realtime t.constr

let aper_prio t =
  match t.constr with
  | Constraints.Aperiodic { prio } -> prio
  | Constraints.Periodic _ -> 0
  | Constraints.Sporadic { aper_prio; _ } -> aper_prio

let runnable t = match t.state with Ready | Running -> true | _ -> false

let mean_miss_time t =
  if t.misses = 0 then 0.
  else Int64.to_float t.miss_time_total /. float_of_int t.misses

let pp fmt t =
  let state =
    match t.state with
    | Ready -> "ready"
    | Running -> "running"
    | Blocked -> "blocked"
    | Pending_arrival -> "pending"
    | Exited -> "exited"
  in
  Format.fprintf fmt "#%d %s cpu=%d %s %a" t.id t.name t.cpu state
    Constraints.pp t.constr
