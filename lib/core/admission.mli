(** Local admission control (paper Section 3.2).

    Admission is entirely per-CPU: each local scheduler accounts its own
    utilization, which is what makes communication-free group scheduling
    possible (Section 4.1). The classic single-CPU tests are used:

    - periodic threads: the bound matching [Config.policy] — utilization
      test against the periodic capacity (EDF) or the Liu-Layland bound
      scaled by the capacity (rate monotonic) — or the hyperperiod
      processor-demand simulation when [Config.admission] selects it
      (EDF only);
    - sporadic threads: density test ([size / (deadline - arrival)])
      against the sporadic reservation, with expired sporadics purged;
    - aperiodic threads: always admitted.

    Every request is answered with a typed {!verdict}: admitted requests
    carry the remaining headroom under the governing bound, rejections
    carry a {!Rejection.t} naming the exact test that failed. The
    utilization limit leaves headroom for the scheduler itself, SMIs, and
    interrupts (Section 3.6). *)

open Hrt_engine

(** Why a request was refused — one constructor per admission test. *)
module Rejection : sig
  type t =
    | Invalid of { msg : string }
        (** Structural validation failed ({!Constraints.validate}). *)
    | Granularity of { period : Time.ns; slice : Time.ns }
        (** Period or slice below the scheduler's minimum granularity. *)
    | Utilization_bound of { util : float; bound : float }
        (** Total utilization [util] would exceed the policy bound
            (periodic capacity for EDF, Liu-Layland-scaled capacity for
            RM, or the fallback utilization test of the capped
            hyperperiod simulation). *)
    | Density_bound of { density : float; bound : float }
        (** Total sporadic density would exceed the sporadic
            reservation. *)
    | Hyperperiod_demand of { interval : Time.ns; demand : Time.ns }
        (** Processor-demand simulation found an interval [[0, interval]]
            whose demand exceeds the supplied capacity — the witness the
            analytical oracle re-checks. *)
    | Past_deadline of { arrival : Time.ns; deadline : Time.ns }
        (** Sporadic deadline not strictly after its arrival. *)
    | Overload_shed of { boundary : int }
        (** Overload mode: the request's criticality rank sits below the
            current shed boundary (DESIGN §8). *)

  val name : t -> string
  (** Stable kebab-case tag ("utilization-bound", "overload-shed", ...)
      used as the [reason] of the Obs admission-reject event. *)

  val describe : t -> string
  (** One-line human-readable explanation with the numbers that failed. *)

  val pp : Format.formatter -> t -> unit
end

type verdict =
  | Admitted of { headroom : float }
      (** Remaining slack under the governing bound: utilization slack for
          the policy-bound tests, smallest normalized interval slack for
          the hyperperiod simulation, density slack for sporadics. With
          [admission_control] off the verdict is always [Admitted] but the
          headroom still reports the distance to the bound (negative past
          the feasibility edge — Figs 6-9 runs). *)
  | Rejected of { reason : Rejection.t }

val admitted : verdict -> bool
val headroom : verdict -> float option
val worse : verdict -> verdict -> verdict
(** Pessimistic combine for gang admission (Group Algorithm 1): a
    rejection beats any admission (first rejection wins), two admissions
    keep the smaller headroom. Associative; deterministic for arrival
    order. *)

val pp_verdict : Format.formatter -> verdict -> unit

type t

val create : ?overhead_ns:Time.ns -> Config.t -> t
(** [overhead_ns] is the scheduler's per-arrival overhead (two invocations)
    charged by the hyperperiod-simulation policy; 0 by default. *)

val periodic_util : t -> float
(** Committed periodic utilization. *)

val overhead_ns : t -> Time.ns
(** The per-arrival overhead this controller charges (see {!create}). *)

val sporadic_density : t -> now:Time.ns -> float
(** Committed density of still-live sporadic admissions. *)

val request :
  t ->
  now:Time.ns ->
  ?crit:Constraints.criticality ->
  old_constr:Constraints.t ->
  Constraints.t ->
  verdict
(** Test-and-commit: releases [old_constr]'s contribution, tests the new
    constraints, commits them on success and restores the accounting
    state byte-for-byte on failure (a sporadic [old_constr] keeps the
    density computed at its original commit, not one recomputed at the
    current [now]). Always succeeds for aperiodic constraints, and for
    any constraints when [admission_control] is off in the config (Figs
    6-9 turn it off to drive the scheduler past the feasibility edge) —
    except in overload mode: real-time requests with [crit] (default
    [High]) ranked below {!shed_boundary} are rejected with
    [Overload_shed] regardless of [admission_control]. *)

val set_overload : t -> boundary:int -> unit
(** Enter overload mode: real-time requests below criticality rank
    [boundary] are rejected until {!clear_overload}. *)

val clear_overload : t -> unit
val shed_boundary : t -> int
(** Current boundary; 0 when not in overload mode. *)

val release : t -> Constraints.t -> unit
(** Remove a thread's contribution (thread exit). *)

val rejections : t -> int
