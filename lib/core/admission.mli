(** Local admission control (paper Section 3.2).

    Admission is entirely per-CPU: each local scheduler accounts its own
    utilization, which is what makes communication-free group scheduling
    possible (Section 4.1). The classic single-CPU tests are used:

    - periodic threads: the bound matching [Config.policy] — utilization
      test against the periodic capacity (EDF) or the Liu-Layland bound
      scaled by the capacity (rate monotonic) — or the hyperperiod
      processor-demand simulation when [Config.admission] selects it
      (EDF only);
    - sporadic threads: density test ([size / (deadline - arrival)])
      against the sporadic reservation, with expired sporadics purged;
    - aperiodic threads: always admitted.

    The utilization limit leaves headroom for the scheduler itself, SMIs,
    and interrupts (Section 3.6). *)

open Hrt_engine

type t

val create : ?overhead_ns:Time.ns -> Config.t -> t
(** [overhead_ns] is the scheduler's per-arrival overhead (two invocations)
    charged by the hyperperiod-simulation policy; 0 by default. *)

val periodic_util : t -> float
(** Committed periodic utilization. *)

val sporadic_density : t -> now:Time.ns -> float
(** Committed density of still-live sporadic admissions. *)

val request :
  t ->
  now:Time.ns ->
  ?crit:Constraints.criticality ->
  old_constr:Constraints.t ->
  Constraints.t ->
  bool
(** Test-and-commit: releases [old_constr]'s contribution, tests the new
    constraints, commits them on success and restores the accounting
    state byte-for-byte on failure (a sporadic [old_constr] keeps the
    density computed at its original commit, not one recomputed at the
    current [now]). Always succeeds for aperiodic constraints, and for
    any constraints when [admission_control] is off in the config (Figs
    6-9 turn it off to drive the scheduler past the feasibility edge) —
    except in overload mode: real-time requests with [crit] (default
    [High]) ranked below {!shed_boundary} are rejected regardless of
    [admission_control]. *)

val set_overload : t -> boundary:int -> unit
(** Enter overload mode: real-time requests below criticality rank
    [boundary] are rejected until {!clear_overload}. *)

val clear_overload : t -> unit
val shed_boundary : t -> int
(** Current boundary; 0 when not in overload mode. *)

val release : t -> Constraints.t -> unit
(** Remove a thread's contribution (thread exit). *)

val rejections : t -> int
