open Hrt_engine

type kind = Config.policy = Edf | Rm

module type POLICY = sig
  val kind : kind
  val name : string
  val run_key : Thread.t -> Time.ns
  val preempts : Thread.t -> over:Thread.t -> bool
  val missed : now:Time.ns -> Thread.t -> bool
  val latest_start : slack:Time.ns -> Thread.t -> Time.ns
end

(* The miss criterion and the latest feasible start are properties of the
   *constraint* (finish the slice by the deadline), not of the dispatch
   order, so every deadline-constrained policy shares them. They stay in
   the signature because a policy with a different contract (e.g. a soft
   or firm discipline) redefines exactly these. *)

let missed_deadline ~now (th : Thread.t) =
  Time.(th.Thread.slice_left > 0L) && Time.(th.Thread.deadline <= now)

let latest_feasible_start ~slack (th : Thread.t) =
  Time.(th.Thread.deadline - th.Thread.slice_left - slack)

module Edf = struct
  let kind = Edf
  let name = Config.policy_name Config.Edf
  let run_key (th : Thread.t) = th.Thread.deadline
  let preempts a ~over = Time.(run_key a < run_key over)
  let missed = missed_deadline
  let latest_start = latest_feasible_start
end

module Rm = struct
  let kind = Rm
  let name = Config.policy_name Config.Rm

  (* Fixed priority: shorter period first (rate monotonic); sporadic
     threads rank by relative deadline (deadline monotonic), which
     coincides with RM when deadline = period. Aperiodic threads never
     enter the RT run queue; give them the weakest possible key so a
     mis-filed one cannot starve real-time work. *)
  let run_key (th : Thread.t) =
    match th.Thread.constr with
    | Constraints.Periodic { period; _ } -> period
    | Constraints.Sporadic _ ->
      Time.max 1L Time.(th.Thread.deadline - th.Thread.arrival)
    | Constraints.Aperiodic _ -> Int64.max_int

  let preempts a ~over = Time.(run_key a < run_key over)
  let missed = missed_deadline
  let latest_start = latest_feasible_start
end

type t = (module POLICY)

let of_kind : kind -> t = function
  | Edf -> (module Edf)
  | Rm -> (module Rm)

let kind (module P : POLICY) = P.kind
let name (module P : POLICY) = P.name
let run_key (module P : POLICY) th = P.run_key th
let preempts (module P : POLICY) th ~over = P.preempts th ~over
let missed (module P : POLICY) ~now th = P.missed ~now th
let latest_start (module P : POLICY) ~slack th = P.latest_start ~slack th
