(** The per-CPU hard real-time scheduler (paper Section 3).

    A local scheduler is a staged pipeline around three queues: a pending
    queue (admitted real-time threads waiting for their next arrival), a
    real-time run queue ordered by the configured {!Policy} — absolute
    deadline under EDF (the paper's discipline and the default), period
    under rate-monotonic — and a non-real-time run queue (round-robin
    within priority). It is invoked only by a timer interrupt, a kick IPI
    from another local scheduler, a device interrupt, or an action of the
    current thread (op completion, yield, block, exit, constraint change).

    Every invocation runs the pipeline stages in order:
    + {b charge} — charge the interrupted thread's progress (subtracting
      any SMI "missing time"),
    + {b pump} — move newly arrived threads from the pending queue into
      the RT run queue (keyed by the policy's run key) and flag deadline
      misses,
    + {b settle} — resolve the current thread (slice exhaustion, op
      completion, class transitions), then run size-tagged tasks if there
      is room before the next arrival,
    + {b pick} — select the next thread (preferring runnable RT work,
      subject to the dispatch mode) and charge the scheduler's own
      overhead (IRQ entry + pass + other + context switch),
    + {b program-timer} — reprogram the APIC one-shot timer for the next
      scheduling event.

    The stages are policy-agnostic: every discipline-specific decision
    (run-queue order, miss test, lazy-dispatch horizon) goes through the
    {!Policy.t} carried in [shared]. The scheduler is driven entirely by
    wall-clock time; its only cross-CPU interactions are kick IPIs and
    (optional) work stealing. *)

open Hrt_engine
open Hrt_hw
open Hrt_kernel

type shared = {
  machine : Machine.t;
  config : Config.t;
  policy : Policy.t;
      (** first-class scheduling policy; must match [config.policy]
          ({!Policy.of_kind} of it) so admission and dispatch agree *)
  pool : Thread_pool.t;
  workload_rng : Rng.t;  (** stream for thread-body randomness *)
  obs : Hrt_obs.Sink.t;
      (** observability sink shared by every local scheduler; the null sink
          disables all instrumentation at the cost of one branch per site *)
  mutable scheds : t array;
  mutable total_aper_queued : int;
      (** machine-wide count of queued aperiodic threads (steal signal) *)
  mutable dispatch_hook : (int -> Thread.t -> Time.ns -> unit) option;
      (** called with (cpu, thread, time) on every context switch to a
          thread — the instrument behind Figs 11/12 *)
}

and t

val create : shared -> Machine.cpu -> t
(** Build the local scheduler for one CPU and install its APIC timer
    vector. [shared.scheds] must be set by the caller once all local
    schedulers exist. *)

val shared : t -> shared
val cpu_id : t -> int

val services : t -> Thread.services
(** The kernel services handed to thread bodies running on this CPU; its
    [wake] routes cross-CPU wakes through kick IPIs. *)

val set_task_thread : t -> Thread.t -> unit
(** Register the helper thread that drains untagged tasks on this CPU. *)

val task_thread : t -> Thread.t option

val account : t -> Account.t
val admission : t -> Admission.t
val tasks : t -> Task.t
val current : t -> Thread.t option

val obs : t -> Hrt_obs.Sink.t
(** The shared observability sink (possibly {!Hrt_obs.Sink.null}). *)

val set_clock_skew : t -> Time.ns -> unit
(** Residual TSC error after calibration: how far ahead (ns) this CPU's
    notion of wall-clock time runs. Absolute timer targets are reached when
    the {e local} clock says so, which is what limits cross-CPU
    synchronization (Section 4.4, Figs 11/12). *)

val clock_skew : t -> Time.ns

val enroll : t -> Thread.t -> unit
(** Add a new (aperiodic) thread to this CPU's run queue and request a
    scheduling pass. *)

val wake : t -> Thread.t -> unit
(** Transition a Blocked thread of this CPU to the appropriate queue and
    request a scheduling pass. No-op for non-blocked threads. *)

val request_invoke : t -> unit
(** Ask for a scheduling pass (soft, coalesced). *)

val rephase : t -> Thread.t -> delta:Time.ns -> unit
(** Shift a real-time thread's arrival schedule by [delta] (the phase
    correction of Section 4.4). Takes effect from the next arrival. *)

val reanchor : t -> Thread.t -> first_arrival:Time.ns -> unit
(** Re-anchor a real-time thread's arrival schedule at an absolute time
    (group admission re-anchors every member at its final-barrier
    departure, Section 4.4). *)

val kick : t -> from:int -> unit
(** Deliver a kick IPI to this CPU (models cross-CPU scheduling requests). *)

val on_device_irq : t -> handler_ns:Time.ns -> unit
(** Entry point for a steered external interrupt: charges the handler cost
    and runs a scheduling pass (paper: bounded interrupt handler time). *)

val aper_load : t -> int
(** Stealable aperiodic threads queued here (work-stealing load metric). *)

val try_steal_from : t -> thief_cpu:int -> Thread.t option
(** Remove the oldest unbound aperiodic thread, rebinding it to the thief.
    Used by the idle-thread work stealer. *)

val rt_queue_length : t -> int
val pending_length : t -> int

val sync_accounting : t -> unit
(** Charge the running thread's progress up to the current instant, so
    [cpu_time] reads are exact between invocations (measurement only). *)

val idle_time : t -> Time.ns
(** Total time this CPU spent with no thread dispatched. *)

val shed_boundary : t -> int
(** The current shed boundary of the graceful-degradation state machine
    (DESIGN §8): 0 when not overloaded, otherwise the lowest
    {!Constraints.crit_rank} still entitled to real-time service on this
    CPU. Only moves when [Config.degradation] is on. *)

val degradation_stats : t -> int * int * int
(** [(sheds, recovers, demotes)]: cumulative counts of threads shed to
    aperiodic, re-admitted after recovery, and throttled (late arrival
    retired at its deadline). *)
