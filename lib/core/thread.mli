(** Thread control blocks and the thread execution model.

    A thread's behaviour is a {e body}: a closure the kernel calls to obtain
    the thread's next operation whenever the previous one finishes. Side
    effects (touching shared data, waking other threads, group protocol
    state) run inside the body at operation boundaries and take zero
    simulated time; time is consumed explicitly through {!op.Compute}
    operations. This mirrors how the real scheduler only observes threads
    at well-defined transition points.

    The record fields of {!t} are mutable because the local scheduler owns
    them; code outside [hrt_core] should treat them as read-only. *)

open Hrt_engine
open Hrt_hw

type state =
  | Ready  (** runnable, in a run queue *)
  | Running  (** current on its CPU *)
  | Blocked  (** off-queue, waiting for a wake *)
  | Pending_arrival  (** real-time, waiting for its next arrival *)
  | Exited

type t = {
  id : int;
  name : string;
  mutable cpu : int;
  mutable bound : bool;  (** bound threads are never stolen *)
  mutable state : state;
  mutable body : body;
  mutable has_op : bool;  (** a [Compute] is in progress *)
  mutable work_left : Time.ns;  (** remaining work of the current compute *)
  mutable constr : Constraints.t;
  mutable admit_time : Time.ns;  (** Lambda: when current constraints were admitted *)
  mutable arrival : Time.ns;  (** current arrival instant *)
  mutable deadline : Time.ns;  (** EDF key of the current arrival *)
  mutable slice_left : Time.ns;  (** guaranteed time still owed this arrival *)
  mutable next_arrival : Time.ns;
  mutable quantum_left : Time.ns;  (** aperiodic round-robin budget *)
  mutable missed_current : bool;
  mutable miss_deadline : Time.ns;
  mutable arrivals : int;
  mutable misses : int;
  mutable miss_time_total : Time.ns;
  mutable cpu_time : Time.ns;
  mutable run_since : Time.ns;  (** progress charged up to here while Running *)
  mutable preemptions : int;
  mutable stashed_op : op option;
      (** an op produced but not yet consumed (scheduler fast path) *)
  mutable block_start : Time.ns;  (** when the thread last blocked *)
  mutable spin_block : bool;
      (** the current block models a spin-wait: a real thread would burn
          its slice polling, so blocked time is charged against the slice
          (true for [Block], false for [Sleep_until]) *)
  mutable wake_token : int;
      (** incremented on every block; guards stale sleep timeouts *)
  mutable tag : int;  (** free for harness/group use *)
  mutable crit : Constraints.criticality;
      (** importance under overload (default [Mid]); see DESIGN §8 *)
  mutable wcet_overrun_pct : int;
      (** fault injection: inflate every [Compute] by this percentage
          (0 = faithful WCET declaration) *)
  mutable release_jitter_ns : Time.ns;
      (** fault injection: each real-time release is delayed by a uniform
          draw in [0, release_jitter_ns); the deadline stays nominal *)
  mutable shed_constr : Constraints.t option;
      (** real-time constraints revoked by a shed, restored on recovery *)
}

and op =
  | Compute of Time.ns  (** consume this much CPU time *)
  | Yield  (** give up the CPU, stay runnable *)
  | Block  (** sleep until woken ({!services.wake}) *)
  | Sleep_until of Time.ns  (** sleep until an absolute wall-clock time *)
  | Set_constraints of Constraints.t * (Admission.verdict -> unit)
      (** request admission with new constraints; the callback receives the
          typed verdict (headroom on success, the failed test on
          rejection). By convention the body charges the admission-control
          cost with a preceding [Compute] (see {!Scheduler.admission_ops}). *)
  | Exit

and body = ctx -> op

and ctx = { svc : services; self : t }

and services = {
  now : unit -> Time.ns;
  wake : t -> unit;
      (** make a blocked thread runnable (cross-CPU wakes send kick IPIs) *)
  sample : t -> Platform.cost -> Time.ns;
      (** draw a platform cost on the thread's current CPU *)
  rng : Rng.t;  (** workload-level randomness, deterministic per seed *)
}

val make :
  id:int -> name:string -> cpu:int -> ?bound:bool -> body -> t
(** A fresh aperiodic thread (priority 0) bound state per [bound]
    (default false: aperiodic threads may be stolen). *)

val is_realtime : t -> bool
(** The thread currently holds periodic or sporadic constraints. *)

val aper_prio : t -> int
(** Aperiodic priority (0 for real-time threads). *)

val runnable : t -> bool
(** Ready or Running. *)

val mean_miss_time : t -> float
(** Mean miss time in ns over this thread's misses; 0 if none. *)

val pp : Format.formatter -> t -> unit
