(** The global scheduler: system construction and public API.

    "The global scheduler is the distributed system comprising the local
    schedulers and their interactions" (paper Section 3). This facade
    builds a simulated machine, boots one local scheduler per CPU,
    calibrates the cycle counters, and exposes thread, task, and device
    management. *)

open Hrt_engine
open Hrt_hw

type t

val create :
  ?seed:int64 ->
  ?num_cpus:int ->
  ?config:Config.t ->
  ?calibrate:bool ->
  ?obs:Hrt_obs.Sink.t ->
  Platform.t ->
  t
(** Boot a system. [calibrate] (default true) runs the boot-time TSC
    synchronization and installs the residual clock skews into the local
    schedulers. [obs] is the observability sink shared by every local
    scheduler; it defaults to {!Hrt_obs.Sink.null}, so instrumentation
    costs one dead branch per site unless the caller passes an enabled
    sink (the harness threads one through [Hrt_harness.Exp.Ctx]). There is
    no process-wide ambient sink: a system is fully described by its
    arguments, which is what lets independent systems run on parallel
    domains. *)

val machine : t -> Machine.t
val engine : t -> Engine.t
val config : t -> Config.t
val platform : t -> Platform.t
val num_cpus : t -> int
val sched : t -> int -> Local_sched.t
val calibration : t -> Sync_cal.result option

val obs : t -> Hrt_obs.Sink.t
(** The observability sink this system reports through. *)

val fresh_id : t -> int
(** A small integer unique within this system, in allocation order.
    Used by groups/barriers/elections to tag their trace events: keeping
    the counter per system (rather than process-wide) makes event ids a
    deterministic function of the system's own history, so traces are
    reproducible even when many systems run concurrently on different
    domains. *)

val spawn :
  t ->
  ?name:string ->
  ?cpu:int ->
  ?bound:bool ->
  ?prio:int ->
  ?crit:Constraints.criticality ->
  Thread.body ->
  Thread.t
(** Create an aperiodic thread (priority [prio], default 0) on the given
    CPU (default 0) and enqueue it. [crit] (default [Mid]) is the thread's
    criticality for graceful degradation: under overload, lower-criticality
    threads are shed first (DESIGN §8). Raises [Failure] when the
    compile-time thread limit is exhausted. *)

val wake : t -> Thread.t -> unit
(** Wake a blocked thread from outside any thread context. *)

val rephase : t -> Thread.t -> delta:Time.ns -> unit
(** Shift a real-time thread's arrival schedule (phase correction,
    Section 4.4). *)

val reanchor : t -> Thread.t -> first_arrival:Time.ns -> unit
(** Re-anchor a real-time thread's arrival schedule at an absolute time. *)

val submit_task :
  t -> cpu:int -> ?declared:Time.ns -> duration:Time.ns -> (unit -> unit) -> unit
(** Queue a lightweight task on a CPU. Tasks with a [declared] size may be
    run directly by the local scheduler; others are processed by a helper
    thread created on first use (paper Section 3.1). *)

val admission_ops :
  t -> Constraints.t -> on_result:(Admission.verdict -> unit) -> Thread.op list
(** The op sequence a thread issues to (re-)negotiate its constraints:
    a [Compute] charging the local admission-control cost followed by
    [Set_constraints]. Admission runs in the requesting thread's context,
    so its cost never perturbs already-admitted threads (Section 3.2). *)

val run : ?until:Time.ns -> t -> unit
(** Run the simulation; progress accounting is synchronized on return, and
    (when the sink is enabled) engine/accounting gauges are snapshot into
    the metrics registry via {!snapshot_metrics}. *)

val snapshot_metrics : t -> unit
(** Scrape engine counters (events executed, queue-depth high-water mark,
    simulated time, missing time) and per-CPU accounting (idle time,
    invocations, arrivals, misses, kicks, steals) into the sink's metrics
    registry as gauges. No-op on a disabled sink. *)

val sync_accounting : t -> unit
(** Charge all running threads' progress up to the current instant (done
    automatically by {!run}). *)

val set_dispatch_hook : t -> (int -> Thread.t -> Time.ns -> unit) option -> unit

val add_device :
  t ->
  name:string ->
  ?prio:int ->
  ?threaded:bool ->
  mean_interval:Time.ns ->
  handler_cost:Platform.cost ->
  unit ->
  Irq.device
(** Declare an interrupting device (steered to CPU 0 — the interrupt-laden
    partition — until re-steered). With [threaded] (paper Section 3.5's
    second mechanism), the interrupt entry only acknowledges and wakes a
    per-CPU {e interrupt thread} that runs the handler body at aperiodic
    priority — so hard real-time threads are never delayed by handler
    time, only by the bounded acknowledge cost. *)

val steer_device : t -> Irq.device -> cpus:int list -> unit
val start_device : t -> Irq.device -> unit
val stop_device : t -> Irq.device -> unit

val total_account : t -> Account.t
(** All CPUs' accounting merged. *)

val total_misses : t -> int
val total_arrivals : t -> int

val threads_alive : t -> int
(** Threads currently holding a pool slot. *)

val iter_threads : t -> (Thread.t -> unit) -> unit
(** Visit every thread ever spawned through this scheduler (including
    exited ones), in spawn order. Fault plans use this to target
    task-level faults (WCET overrun, release jitter) by thread. *)

val find_thread : t -> string -> Thread.t option
(** Look up a spawned thread by name (newest first on duplicates). *)
