open Hrt_engine

type policy = Edf | Rm

let policy_name = function Edf -> "edf" | Rm -> "rm"

let policy_of_string = function
  | "edf" -> Some Edf
  | "rm" -> Some Rm
  | _ -> None

type admission_mode = Policy_bound | Hyperperiod_sim
type dispatch_policy = Eager | Lazy

type t = {
  util_limit : float;
  sporadic_reservation : float;
  aperiodic_reservation : float;
  aperiodic_quantum : Time.ns;
  min_period : Time.ns;
  min_slice : Time.ns;
  max_threads : int;
  policy : policy;
  admission : admission_mode;
  dispatch : dispatch_policy;
  admission_control : bool;
  strict_reservations : bool;
  work_stealing : bool;
  steal_interval : Time.ns;
  lazy_slack : Time.ns;
  degradation : bool;
  shed_recovery : Time.ns;
}

let default =
  {
    util_limit = 0.99;
    sporadic_reservation = 0.10;
    aperiodic_reservation = 0.10;
    aperiodic_quantum = Time.ms 100;
    min_period = Time.us 2;
    min_slice = Time.ns 500;
    max_threads = 2048;
    policy = Edf;
    admission = Policy_bound;
    dispatch = Eager;
    admission_control = true;
    strict_reservations = true;
    work_stealing = true;
    steal_interval = Time.us 20;
    lazy_slack = Time.us 15;
    degradation = false;
    shed_recovery = Time.ms 20;
  }

let periodic_capacity t =
  if t.strict_reservations then
    t.util_limit -. t.sporadic_reservation -. t.aperiodic_reservation
  else t.util_limit

let validate t =
  if t.util_limit <= 0. || t.util_limit > 1. then Error "util_limit out of (0,1]"
  else if t.sporadic_reservation < 0. || t.aperiodic_reservation < 0. then
    Error "negative reservation"
  else if periodic_capacity t <= 0. then Error "reservations exhaust the limit"
  else if Time.(t.aperiodic_quantum <= 0L) then Error "non-positive quantum"
  else if Time.(t.min_period <= 0L) then Error "non-positive min_period"
  else if Time.(t.min_slice <= 0L) then Error "non-positive min_slice"
  else if Time.(t.steal_interval <= 0L) then Error "non-positive steal_interval"
  else if Time.(t.lazy_slack < 0L) then Error "negative lazy_slack"
  else if Time.(t.shed_recovery <= 0L) then Error "non-positive shed_recovery"
  else if t.max_threads <= 0 then Error "non-positive max_threads"
  else if t.policy = Rm && t.admission = Hyperperiod_sim then
    Error
      "hyperperiod simulation is an EDF processor-demand test; it would \
       over-admit under rate-monotonic dispatch"
  else Ok ()
