(** Scheduler configuration.

    Defaults mirror the paper's evaluation setup (Section 5.1): 99 %
    utilization limit, 10 % sporadic reservation, 10 % aperiodic
    reservation, aperiodic round-robin at 10 Hz. *)

open Hrt_engine

(** The scheduling policy: one coherent knob that drives {e both} the
    admission test and the dispatch order (see {!Policy}). Admission and
    dispatch must agree — admitting against the EDF utilization bound but
    dispatching fixed-priority (or vice versa) voids the schedulability
    guarantee either test provides. *)
type policy =
  | Edf  (** earliest deadline first; utilization-bound admission *)
  | Rm
      (** rate monotonic: fixed priority by period (deadline-monotonic for
          sporadic threads); Liu-Layland bound n(2^{1/n} - 1) admission *)

val policy_name : policy -> string
(** Stable lowercase label ("edf" / "rm") used by the CLI and the
    observability layer. *)

val policy_of_string : string -> policy option

(** How periodic admission is tested. The per-policy utilization bound is
    the default; the hyperperiod simulation is the paper's prototype and
    only sound under EDF dispatch ({!validate} rejects it with {!Rm}).

    This type replaces the former [admission_policy] enum
    ([Edf_utilization | Rate_monotonic | Hyperperiod_sim]), which let the
    admission test contradict the (then hardwired EDF) dispatch order; the
    bound is now derived from {!policy}. *)
type admission_mode =
  | Policy_bound
      (** the utilization-bound test matching {!policy}: sum of
          utilizations against the limit (EDF), or the Liu-Layland bound
          scaled by the capacity (RM) *)
  | Hyperperiod_sim
      (** the paper's prototype (Section 3.2): simulate the schedule over a
          hyperperiod — a processor-demand test that charges each arrival
          its two scheduler invocations, so it admits more than the RM
          bound while rejecting constraint sets that only fail because of
          scheduler overhead (the Fig 6 edge) *)

type dispatch_policy =
  | Eager
      (** work-conserving: never delay switching to a runnable RT thread —
          start early to end early despite missing time (§3.6) *)
  | Lazy
      (** classic: delay the switch to the latest start time that still
          meets the deadline (the baseline the paper argues against) *)

type t = {
  util_limit : float;  (** fraction of each CPU schedulable at all *)
  sporadic_reservation : float;
  aperiodic_reservation : float;
  aperiodic_quantum : Time.ns;  (** round-robin quantum, default 100 ms *)
  min_period : Time.ns;  (** granularity bound on constraints (§3.3) *)
  min_slice : Time.ns;
  max_threads : int;  (** fixed system-wide thread limit (§3.3) *)
  policy : policy;  (** drives both admission and dispatch *)
  admission : admission_mode;
  dispatch : dispatch_policy;
  admission_control : bool;  (** off to reproduce Figs 6-9 *)
  strict_reservations : bool;
      (** subtract the sporadic/aperiodic reservations from the capacity
          available to periodic threads; turn off to admit the paper's
          90 %-utilization BSP constraints (Figs 13-16) *)
  work_stealing : bool;
  steal_interval : Time.ns;  (** idle-thread probe cadence *)
  lazy_slack : Time.ns;  (** safety margin for the Lazy policy *)
  degradation : bool;
      (** graceful degradation (DESIGN §8): on a deadline miss, raise the
          shed boundary above the missing thread's criticality, shed
          lower-criticality real-time threads to aperiodic, and throttle
          missed arrivals instead of letting them steal others' slack.
          Off by default — the baseline experiments measure raw miss
          behavior past the feasibility edge. *)
  shed_recovery : Time.ns;
      (** quiet time (no deadline miss) after which shed threads are
          re-admitted, default 20 ms *)
}

val default : t

val periodic_capacity : t -> float
(** Utilization available to periodic threads:
    [util_limit - sporadic_reservation - aperiodic_reservation]. *)

val validate : t -> (unit, string) result
