open Hrt_engine
open Hrt_hw

type result = {
  residual_cycles : float array;
  residual_ns : Time.ns array;
}

let measured_offsets (m : Machine.t) =
  let now = Engine.now m.Machine.engine in
  let read i = Tsc.read (Machine.cpu m i).Machine.tsc ~now in
  let base = read 0 in
  Array.init (Machine.num_cpus m) (fun i -> Int64.to_float (Int64.sub (read i) base))

let calibrate (m : Machine.t) =
  let plat = m.Machine.platform in
  let n = Machine.num_cpus m in
  let rng = Rng.split m.Machine.rng in
  let now = Engine.now m.Machine.engine in
  let ref_tsc = (Machine.cpu m 0).Machine.tsc in
  let ref_read = Tsc.read ref_tsc ~now in
  let residual_cycles = Array.make n 0. in
  for i = 1 to n - 1 do
    let tsc = (Machine.cpu m i).Machine.tsc in
    let true_delta = Int64.sub (Tsc.read tsc ~now) ref_read in
    (* The round-trip measurement has error whose magnitude follows the
       platform's calibration error model; sign is symmetric. *)
    let magnitude =
      Float.abs
        (Rng.gaussian rng ~mu:plat.Platform.cal_error_mu
           ~sigma:plat.Platform.cal_error_sigma)
    in
    let sign = if Rng.int rng 2 = 0 then 1. else -1. in
    let error = sign *. magnitude in
    let measured = Int64.add true_delta (Int64.of_float error) in
    Tsc.adjust tsc (Int64.neg measured);
    residual_cycles.(i) <- Int64.to_float (Int64.sub (Tsc.read tsc ~now) ref_read)
  done;
  let residual_ns =
    Array.map
      (fun c -> Int64.of_float (Float.round (c /. plat.Platform.ghz)))
      residual_cycles
  in
  { residual_cycles; residual_ns }
