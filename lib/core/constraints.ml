open Hrt_engine

type t =
  | Aperiodic of { prio : int }
  | Periodic of { phase : Time.ns; period : Time.ns; slice : Time.ns }
  | Sporadic of {
      phase : Time.ns;
      size : Time.ns;
      deadline : Time.ns;
      aper_prio : int;
    }

let aperiodic ?(prio = 0) () = Aperiodic { prio }

let periodic ?(phase = 0L) ~period ~slice () = Periodic { phase; period; slice }

let sporadic ?(phase = 0L) ~size ~deadline ?(aper_prio = 0) () =
  Sporadic { phase; size; deadline; aper_prio }

let is_realtime = function
  | Aperiodic _ -> false
  | Periodic _ | Sporadic _ -> true

type criticality = Low | Mid | High

let crit_rank = function Low -> 0 | Mid -> 1 | High -> 2
let crit_name = function Low -> "low" | Mid -> "mid" | High -> "high"

let crit_of_name = function
  | "low" -> Some Low
  | "mid" -> Some Mid
  | "high" -> Some High
  | _ -> None

let crit_of_rank r = if r <= 0 then Low else if r = 1 then Mid else High

let pp_crit fmt c = Format.pp_print_string fmt (crit_name c)

let utilization = function
  | Periodic { period; slice; _ } ->
    if Int64.compare period 0L > 0 then
      Int64.to_float slice /. Int64.to_float period
    else 0.
  | Aperiodic _ | Sporadic _ -> 0.

let with_phase t phase =
  match t with
  | Aperiodic _ -> t
  | Periodic p -> Periodic { p with phase }
  | Sporadic s -> Sporadic { s with phase }

let validate = function
  | Aperiodic _ -> Ok ()
  | Periodic { phase; period; slice } ->
    if Time.(phase < 0L) then Error "periodic: negative phase"
    else if Time.(period <= 0L) then Error "periodic: non-positive period"
    else if Time.(slice <= 0L) then Error "periodic: non-positive slice"
    else if Time.(slice > period) then Error "periodic: slice exceeds period"
    else Ok ()
  | Sporadic { phase; size; deadline; _ } ->
    if Time.(phase < 0L) then Error "sporadic: negative phase"
    else if Time.(size <= 0L) then Error "sporadic: non-positive size"
    else if Time.(deadline <= 0L) then Error "sporadic: non-positive deadline"
    else Ok ()

let pp fmt = function
  | Aperiodic { prio } -> Format.fprintf fmt "aperiodic(prio=%d)" prio
  | Periodic { phase; period; slice } ->
    Format.fprintf fmt "periodic(phase=%a, period=%a, slice=%a)" Time.pp phase
      Time.pp period Time.pp slice
  | Sporadic { phase; size; deadline; aper_prio } ->
    Format.fprintf fmt "sporadic(phase=%a, size=%a, deadline=%a, prio=%d)"
      Time.pp phase Time.pp size Time.pp deadline aper_prio
