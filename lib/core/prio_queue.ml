type 'a cell = { key : int64; seq : int; v : 'a }

type 'a t = {
  mutable cells : 'a cell array;
  mutable len : int;
  capacity : int;
  mutable next_seq : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Prio_queue.create";
  { cells = [||]; len = 0; capacity; next_seq = 0 }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = t.capacity

let before a b =
  Int64.compare a.key b.key < 0
  || (Int64.equal a.key b.key && a.seq < b.seq)

let swap t i j =
  let tmp = t.cells.(i) in
  t.cells.(i) <- t.cells.(j);
  t.cells.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if before t.cells.(i) t.cells.(p) then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < t.len && before t.cells.(l) t.cells.(!m) then m := l;
  if r < t.len && before t.cells.(r) t.cells.(!m) then m := r;
  if !m <> i then begin
    swap t i !m;
    sift_down t !m
  end

let add t ~key v =
  if t.len >= t.capacity then false
  else begin
    let cell = { key; seq = t.next_seq; v } in
    t.next_seq <- t.next_seq + 1;
    if t.len = Array.length t.cells then begin
      let ncap = Stdlib.min t.capacity (Stdlib.max 8 (2 * Stdlib.max 1 t.len)) in
      let ncells = Array.make ncap cell in
      Array.blit t.cells 0 ncells 0 t.len;
      t.cells <- ncells
    end;
    t.cells.(t.len) <- cell;
    t.len <- t.len + 1;
    sift_up t (t.len - 1);
    true
  end

let peek t = if t.len = 0 then None else Some (t.cells.(0).key, t.cells.(0).v)

let pop t =
  if t.len = 0 then None
  else begin
    let root = t.cells.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.cells.(0) <- t.cells.(t.len);
      sift_down t 0
    end;
    Some (root.key, root.v)
  end

let remove_at t i =
  let cell = t.cells.(i) in
  t.len <- t.len - 1;
  if i < t.len then begin
    t.cells.(i) <- t.cells.(t.len);
    sift_down t i;
    sift_up t i
  end;
  cell.v

let remove t pred =
  let rec find i = if i >= t.len then None else if pred t.cells.(i).v then Some i else find (i + 1) in
  match find 0 with None -> None | Some i -> Some (remove_at t i)

let mem t pred =
  let rec go i = i < t.len && (pred t.cells.(i).v || go (i + 1)) in
  go 0

let iter t f =
  for i = 0 to t.len - 1 do
    f t.cells.(i).key t.cells.(i).v
  done

let to_list t =
  let cells = Array.sub t.cells 0 t.len in
  Array.sort (fun a b -> if before a b then -1 else 1) cells;
  Array.to_list (Array.map (fun c -> (c.key, c.v)) cells)

let clear t = t.len <- 0
