(** Pluggable real-time scheduling policies.

    The local scheduler ({!Local_sched}) is a staged pipeline
    (charge, pump, settle, pick, program-timer) whose stages are
    policy-agnostic: every decision that distinguishes one real-time
    discipline from another is delegated to a [POLICY] module —

    - the {e run-queue key}: what the RT {!Prio_queue} orders by (ties
      break FIFO by insertion, preserving determinism);
    - the {e preemption test}: would one runnable thread run before
      another (the ordering the key encodes);
    - the {e deadline-miss check}: has a thread failed its current
      arrival;
    - the {e lazy-dispatch horizon}: the latest instant the queue head may
      start and still meet its deadline (used by the [Lazy] dispatch
      baseline for both the dispatch decision and the one-shot timer
      target).

    Two policies are provided. {!Edf} reproduces the paper's eager
    earliest-deadline-first scheduler bit-for-bit. {!Rm} is fixed-priority
    rate-monotonic (deadline-monotonic for sporadic threads), paired with
    the Liu-Layland admission bound in {!Admission}.

    Admission and dispatch must agree: {!Config.t}'s single [policy] field
    selects both, so a constraint set admitted under a bound is always
    dispatched by the discipline that bound is valid for. Adding a policy
    means implementing this signature and extending {!Config.policy} — no
    scheduler surgery. *)

open Hrt_engine

type kind = Config.policy = Edf | Rm

module type POLICY = sig
  val kind : kind

  val name : string
  (** Stable lowercase label ({!Config.policy_name}). *)

  val run_key : Thread.t -> Time.ns
  (** Priority key for the RT run queue; the smallest key runs first.
      Must be stable for the lifetime of one arrival (threads are re-keyed
      whenever they re-enter the queue). *)

  val preempts : Thread.t -> over:Thread.t -> bool
  (** [preempts th ~over] — would [th] run before [over]? This is the
      strict ordering the run-queue key encodes; equal keys do not
      preempt (FIFO tie-break). *)

  val missed : now:Time.ns -> Thread.t -> bool
  (** Has this thread missed the deadline of its current arrival: the
      deadline passed while slice time was still owed. *)

  val latest_start : slack:Time.ns -> Thread.t -> Time.ns
  (** Lazy dispatch: the latest instant this thread can start running and
      still finish its remaining slice by its deadline, minus [slack]. *)
end

module Edf : POLICY
(** Earliest deadline first: the run queue orders by absolute deadline.
    The paper's policy (Section 3), and the default. *)

module Rm : POLICY
(** Rate monotonic: fixed priority by period for periodic threads,
    relative deadline for sporadic threads (deadline-monotonic). Pairs
    with the Liu-Layland admission bound. *)

type t = (module POLICY)

val of_kind : kind -> t
val kind : t -> kind
val name : t -> string

(** Convenience wrappers over a first-class policy value (what
    {!Local_sched} calls on its hot paths). *)

val run_key : t -> Thread.t -> Time.ns
val preempts : t -> Thread.t -> over:Thread.t -> bool
val missed : t -> now:Time.ns -> Thread.t -> bool
val latest_start : t -> slack:Time.ns -> Thread.t -> Time.ns
