open Hrt_engine
open Hrt_hw
open Hrt_kernel
module Obs = Hrt_obs

type t = {
  shared : Local_sched.shared;
  mutable calibration : Sync_cal.result option;
  mutable next_name : int;
  mutable next_obj_id : int;
  mutable threaded_devices : Irq.device list;
  irq_threads : (int, Thread.t * Time.ns Queue.t) Hashtbl.t;
  mutable threads : Thread.t list;  (** every spawn, newest first *)
}

let machine t = t.shared.Local_sched.machine
let engine t = (machine t).Machine.engine
let config t = t.shared.Local_sched.config
let platform t = (machine t).Machine.platform
let num_cpus t = Machine.num_cpus (machine t)
let sched t i = t.shared.Local_sched.scheds.(i)
let calibration t = t.calibration
let obs t = t.shared.Local_sched.obs

let fresh_id t =
  let id = t.next_obj_id in
  t.next_obj_id <- id + 1;
  id

let rec spawn t ?name ?(cpu = 0) ?(bound = false) ?(prio = 0)
    ?(crit = Constraints.Mid) body =
  if cpu < 0 || cpu >= num_cpus t then invalid_arg "Scheduler.spawn: bad CPU";
  match Thread_pool.alloc t.shared.Local_sched.pool with
  | None -> failwith "Scheduler.spawn: thread limit exceeded"
  | Some id ->
    let name =
      match name with
      | Some n -> n
      | None ->
        t.next_name <- t.next_name + 1;
        Printf.sprintf "thread-%d" t.next_name
    in
    let th = Thread.make ~id ~name ~cpu ~bound body in
    th.Thread.constr <- Constraints.aperiodic ~prio ();
    th.Thread.crit <- crit;
    t.threads <- th :: t.threads;
    Local_sched.enroll (sched t cpu) th;
    th

and irq_thread_body queue =
  let in_flight = ref None in
  fun (_ : Thread.ctx) ->
    match !in_flight with
    | Some () ->
      in_flight := None;
      (match Queue.take_opt queue with
      | Some d ->
        in_flight := Some ();
        Thread.Compute d
      | None -> Thread.Block)
    | None -> (
      match Queue.take_opt queue with
      | Some d ->
        in_flight := Some ();
        Thread.Compute d
      | None -> Thread.Block)

and ensure_irq_thread t ~cpu =
  match Hashtbl.find_opt t.irq_threads cpu with
  | Some entry -> entry
  | None ->
    let queue = Queue.create () in
    let th =
      spawn t ~name:(Printf.sprintf "irq-thread-%d" cpu) ~cpu ~bound:true
        ~prio:(max_int - 1) (irq_thread_body queue)
    in
    Hashtbl.replace t.irq_threads cpu (th, queue);
    (th, queue)

and enqueue_threaded_irq t ~cpu ~handler_ns =
  let th, queue = ensure_irq_thread t ~cpu in
  Queue.add handler_ns queue;
  (* The entry path itself: a bounded acknowledge, then a scheduling pass
     that wakes the interrupt thread. *)
  Local_sched.on_device_irq (sched t cpu) ~handler_ns:0L;
  Local_sched.wake (sched t cpu) th

let wake t th = Local_sched.wake (sched t th.Thread.cpu) th

let rephase t th ~delta = Local_sched.rephase (sched t th.Thread.cpu) th ~delta

let reanchor t th ~first_arrival =
  Local_sched.reanchor (sched t th.Thread.cpu) th ~first_arrival

let task_helper_body t cpu =
  let queue = Local_sched.tasks (sched t cpu) in
  let in_flight = ref None in
  fun _ctx ->
    match !in_flight with
    | Some task ->
      task.Task.run ();
      Task.complete queue task ~now:(Engine.now (engine t));
      in_flight := None;
      (match Task.take_unsized queue with
      | Some next ->
        in_flight := Some next;
        Thread.Compute next.Task.duration
      | None -> Thread.Block)
    | None -> (
      match Task.take_unsized queue with
      | Some task ->
        in_flight := Some task;
        Thread.Compute task.Task.duration
      | None -> Thread.Block)

let submit_task t ~cpu ?declared ~duration run =
  if cpu < 0 || cpu >= num_cpus t then invalid_arg "Scheduler.submit_task";
  let s = sched t cpu in
  let now = Engine.now (engine t) in
  Task.submit (Local_sched.tasks s) ?declared ~duration ~now run;
  (match declared with
  | Some _ -> ()
  | None ->
    (* Lazily create the per-CPU helper thread for untagged tasks. *)
    if Local_sched.task_thread s = None then begin
      (* The helper runs like a softIRQ thread: above ordinary aperiodic
         work, still below every real-time thread. *)
      let helper =
        spawn t ~name:(Printf.sprintf "task-exec-%d" cpu) ~cpu ~bound:true
          ~prio:max_int (task_helper_body t cpu)
      in
      Local_sched.set_task_thread s helper
    end);
  Local_sched.request_invoke s

let admission_ops t constr ~on_result =
  let plat = platform t in
  let cost =
    Int64.of_float
      (Float.ceil (plat.Platform.admission_cost.Platform.mean_cycles /. plat.Platform.ghz))
  in
  [ Thread.Compute cost; Thread.Set_constraints (constr, on_result) ]

let sync_accounting t =
  Array.iter Local_sched.sync_accounting t.shared.Local_sched.scheds

(* End-of-run scrape of the engine's and each CPU's native counters into
   the metrics registry, so every harness that calls [run] exports
   event-loop and accounting health for free. Gauges hold the latest run's
   value; event-derived counters/histograms keep accumulating. *)
let snapshot_metrics t =
  let obs = t.shared.Local_sched.obs in
  if Obs.Sink.enabled obs then begin
    let m = Obs.Sink.metrics obs in
    let eng = engine t in
    let setg ?cpu name v = Obs.Metrics.set (Obs.Metrics.gauge m ?cpu name) v in
    setg ("sched.policy." ^ Config.policy_name (config t).Config.policy) 1.;
    setg "engine.events_executed" (float_of_int (Engine.events_executed eng));
    setg "engine.queue_depth_hwm" (float_of_int (Engine.max_queue_depth eng));
    setg "engine.pending_events" (float_of_int (Engine.pending eng));
    setg "engine.sim_time_ns" (Int64.to_float (Engine.now eng));
    setg "engine.total_frozen_ns" (Int64.to_float (Engine.total_frozen eng));
    Obs.Sink.sample_probes obs;
    Array.iteri
      (fun i s ->
        let acc = Local_sched.account s in
        setg ~cpu:i "cpu.idle_ns" (Int64.to_float (Local_sched.idle_time s));
        setg ~cpu:i "account.invocations"
          (float_of_int (Account.invocations acc));
        setg ~cpu:i "account.arrivals" (float_of_int (Account.arrivals acc));
        setg ~cpu:i "account.misses" (float_of_int (Account.misses acc));
        setg ~cpu:i "account.kicks" (float_of_int (Account.kicks acc));
        setg ~cpu:i "account.steals" (float_of_int (Account.steals acc)))
      t.shared.Local_sched.scheds
  end

let run ?until t =
  Engine.run ?until (engine t);
  sync_accounting t;
  snapshot_metrics t

let set_dispatch_hook t hook = t.shared.Local_sched.dispatch_hook <- hook

let add_device t ~name ?(prio = 8) ?(threaded = false) ~mean_interval
    ~handler_cost () =
  let dev =
    Irq.add_device (machine t).Machine.irq ~name ~prio ~mean_interval
      ~handler_cost
  in
  if threaded then t.threaded_devices <- dev :: t.threaded_devices;
  dev

let steer_device t dev ~cpus = Irq.steer (machine t).Machine.irq dev ~cpus
let start_device t dev = Irq.start (machine t).Machine.irq dev
let stop_device t dev = Irq.stop (machine t).Machine.irq dev

let total_account t =
  let scheds = t.shared.Local_sched.scheds in
  let acc = ref (Local_sched.account scheds.(0)) in
  for i = 1 to Array.length scheds - 1 do
    acc := Account.merge !acc (Local_sched.account scheds.(i))
  done;
  !acc

let total_misses t =
  Array.fold_left
    (fun n s -> n + Account.misses (Local_sched.account s))
    0 t.shared.Local_sched.scheds

let total_arrivals t =
  Array.fold_left
    (fun n s -> n + Account.arrivals (Local_sched.account s))
    0 t.shared.Local_sched.scheds

let threads_alive t = Thread_pool.in_use t.shared.Local_sched.pool

let iter_threads t f = List.iter f (List.rev t.threads)

let find_thread t name =
  List.find_opt (fun th -> String.equal th.Thread.name name) t.threads

let create ?(seed = 42L) ?num_cpus ?(config = Config.default)
    ?(calibrate = true) ?obs platform =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scheduler.create: " ^ msg));
  let obs = match obs with Some s -> s | None -> Obs.Sink.null in
  let machine = Machine.create ~seed ?num_cpus platform in
  let shared =
    {
      Local_sched.machine;
      config;
      policy = Policy.of_kind config.Config.policy;
      pool = Thread_pool.create ~capacity:config.Config.max_threads;
      workload_rng = Rng.split machine.Machine.rng;
      obs;
      scheds = [||];
      total_aper_queued = 0;
      dispatch_hook = None;
    }
  in
  let scheds =
    Array.map (fun cpu -> Local_sched.create shared cpu) machine.Machine.cpus
  in
  shared.Local_sched.scheds <- scheds;
  (* Stamp every CPU's trace with the dispatch policy so exported traces
     and metric snapshots are self-describing. *)
  (if Obs.Sink.enabled obs then begin
     let policy = Config.policy_name config.Config.policy in
     Array.iteri
       (fun cpu _ ->
         Obs.Sink.emit obs ~time:0L ~cpu (Obs.Event.Policy { policy }))
       scheds;
     (* Live queue-depth gauge: pulled at snapshot points rather than
        pushed per event — the engine hot loop stays instrumentation-free. *)
     let eng = machine.Machine.engine in
     Obs.Sink.add_probe obs ~name:"engine.pending" (fun () ->
         float_of_int (Engine.pending_events eng))
   end);
  let t =
    {
      shared;
      calibration = None;
      next_name = 0;
      next_obj_id = 0;
      threaded_devices = [];
      irq_threads = Hashtbl.create 8;
      threads = [];
    }
  in
  (if calibrate then begin
     let result = Sync_cal.calibrate machine in
     t.calibration <- Some result;
     Array.iteri
       (fun i skew -> Local_sched.set_clock_skew scheds.(i) skew)
       result.Sync_cal.residual_ns
   end);
  (* Boot: every local scheduler runs one pass (arming the idle work
     stealer on otherwise empty CPUs). *)
  Array.iter Local_sched.request_invoke scheds;
  (* Device interrupts enter through the local scheduler of the target CPU
     with the device's handler cost charged inline — unless the device is
     threaded, in which case the entry only queues work for the CPU's
     interrupt thread (§3.5). *)
  Irq.set_dispatch machine.Machine.irq (fun ~cpu dev _eng ->
      let s = scheds.(cpu) in
      let handler_ns =
        Machine.sample machine (Machine.cpu machine cpu) (Irq.handler_cost dev)
      in
      if List.exists (fun d -> d == dev) t.threaded_devices then
        enqueue_threaded_irq t ~cpu ~handler_ns
      else Local_sched.on_device_irq s ~handler_ns);
  t
