(** Combinators for writing thread bodies.

    A body is pulled for its next operation whenever the previous one
    completes; these helpers cover the common shapes (finite scripts,
    infinite loops, bounded iteration) so workloads don't hand-roll state
    machines. *)

open Hrt_engine

val of_steps : Thread.op list -> Thread.body
(** Perform the operations in order, then [Exit]. *)

val of_thunks : (Thread.ctx -> Thread.op) list -> Thread.body
(** Like {!of_steps} with late-bound operations (each thunk may perform
    side effects when its turn comes), then [Exit]. *)

val forever : (Thread.ctx -> Thread.op) -> Thread.body
(** Pull every operation from the same generator, never exiting. *)

val repeat : int -> (int -> Thread.ctx -> Thread.op) -> Thread.body
(** [repeat n f] runs [f 0], [f 1], ..., [f (n-1)], then exits. *)

val compute_forever : Time.ns -> Thread.body
(** Burn CPU in chunks of the given size — the canonical real-time test
    thread. *)

val seq : Thread.body list -> Thread.body
(** Run each body until it would [Exit], then move to the next; exits after
    the last. *)
