(** Per-CPU scheduler accounting.

    Collects the quantities the paper's evaluation reports: the overhead
    breakdown of each local-scheduler invocation (Fig 5: IRQ / Other /
    Resched / Switch, in cycles), deadline miss counts and miss times
    (Figs 6-9), and general activity counters. *)

open Hrt_stats

type t

val create : ghz:float -> t

val record_invocation :
  t -> irq_ns:int64 -> other_ns:int64 -> pass_ns:int64 -> switch_ns:int64 -> unit
(** Record one invocation's overhead components (ns; stored as cycles).
    A zero [switch_ns] means no context switch happened and is not added to
    the switch distribution. *)

val record_arrival : t -> unit
val record_miss : t -> miss_time_ns:int64 -> unit
val record_kick : t -> unit
val record_steal : t -> unit

val invocations : t -> int
val arrivals : t -> int
val misses : t -> int
val miss_rate : t -> float
(** misses / arrivals, 0 when no arrivals. *)

val kicks : t -> int
val steals : t -> int

val irq_cycles : t -> Summary.t
val other_cycles : t -> Summary.t
val resched_cycles : t -> Summary.t
val switch_cycles : t -> Summary.t

val miss_times_us : t -> Summary.t
(** Distribution of miss times in microseconds. *)

val total_overhead_cycles : t -> float
(** Mean total overhead per invocation, cycles. *)

val merge : t -> t -> t
(** Aggregate two CPUs' accounts (same clock assumed). *)
