(** Fixed-capacity priority queue keyed by [int64].

    The local scheduler's pending and real-time run queues are fixed-size
    priority queues so that every scheduler pass has bounded cost (paper
    Section 3.3). Ties break by insertion order, keeping the simulation
    deterministic. Elements can be removed from the middle (a thread
    changing class or being stolen). *)

type 'a t

val create : capacity:int -> 'a t
(** Requires [capacity > 0]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val capacity : 'a t -> int

val add : 'a t -> key:int64 -> 'a -> bool
(** [false] when the queue is full (admission should prevent this). *)

val peek : 'a t -> (int64 * 'a) option
(** Smallest key (earliest deadline / arrival). *)

val pop : 'a t -> (int64 * 'a) option

val remove : 'a t -> ('a -> bool) -> 'a option
(** Remove the first (heap-order scan) element satisfying the predicate. *)

val mem : 'a t -> ('a -> bool) -> bool
val iter : 'a t -> (int64 -> 'a -> unit) -> unit
val to_list : 'a t -> (int64 * 'a) list
(** Sorted by (key, insertion order). *)

val clear : 'a t -> unit
