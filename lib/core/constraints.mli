(** Timing constraints (paper Section 3.1, following Liu's model).

    - {e Aperiodic} threads have no real-time constraint, only a priority.
      Newly created threads start in this class.
    - {e Periodic} threads have (phase, period, slice): first arrival at
      admission time + phase, then every period; each arrival is guaranteed
      [slice] of CPU before the next arrival (its deadline).
    - {e Sporadic} threads have (phase, size, deadline, priority): one
      arrival at admission + phase, guaranteed [size] of CPU before the
      absolute wall-clock [deadline], after which the thread continues as an
      aperiodic thread with the given priority. *)

open Hrt_engine

type t =
  | Aperiodic of { prio : int }
  | Periodic of { phase : Time.ns; period : Time.ns; slice : Time.ns }
  | Sporadic of {
      phase : Time.ns;
      size : Time.ns;
      deadline : Time.ns;  (** absolute wall-clock time *)
      aper_prio : int;
    }

val aperiodic : ?prio:int -> unit -> t
(** Default priority 0 (lowest). *)

val periodic : ?phase:Time.ns -> period:Time.ns -> slice:Time.ns -> unit -> t
val sporadic :
  ?phase:Time.ns -> size:Time.ns -> deadline:Time.ns -> ?aper_prio:int -> unit -> t

val is_realtime : t -> bool

type criticality = Low | Mid | High
(** Per-thread importance for graceful degradation (the overload story of
    DESIGN §8): when interference pushes demand past the admission bound,
    the scheduler sheds lower-criticality threads first so higher ones
    keep their guarantees. Orthogonal to the constraint class — any class
    may carry any criticality. *)

val crit_rank : criticality -> int
(** [Low] = 0, [Mid] = 1, [High] = 2. *)

val crit_name : criticality -> string
(** Stable lowercase name ("low" / "mid" / "high") used in Obs events. *)

val crit_of_name : string -> criticality option
val crit_of_rank : int -> criticality
(** Clamps out-of-range ranks to the nearest level. *)

val pp_crit : Format.formatter -> criticality -> unit

val utilization : t -> float
(** [slice/period] for periodic constraints; 0 otherwise (sporadic
    utilization depends on admission time, see {!Admission}). *)

val with_phase : t -> Time.ns -> t
(** Replace the phase (used by group phase correction, §4.4). Aperiodic
    constraints are returned unchanged. *)

val validate : t -> (unit, string) result
(** Structural sanity: positive period/slice/size, slice <= period. *)

val pp : Format.formatter -> t -> unit
