
let of_thunks thunks =
  let remaining = ref thunks in
  fun ctx ->
    match !remaining with
    | [] -> Thread.Exit
    | f :: rest ->
      remaining := rest;
      f ctx

let of_steps steps = of_thunks (List.map (fun op _ctx -> op) steps)

let forever f = f

let repeat n f =
  let i = ref 0 in
  fun ctx ->
    if !i >= n then Thread.Exit
    else begin
      let k = !i in
      incr i;
      f k ctx
    end

let compute_forever chunk = forever (fun _ctx -> Thread.Compute chunk)

let seq bodies =
  let remaining = ref bodies in
  let rec next ctx =
    match !remaining with
    | [] -> Thread.Exit
    | b :: rest -> (
      match b ctx with
      | Thread.Exit ->
        remaining := rest;
        next ctx
      | op -> op)
  in
  next
