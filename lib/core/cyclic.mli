(** Cyclic executives: real-time behaviour by static construction.

    The paper's future work (Section 8) proposes "compiling parallel
    programs directly into cyclic executives, providing real-time behavior
    by static construction". This module implements the classic
    frame-based cyclic executive of Liu's textbook on top of the same
    simulated node:

    - given a set of periodic jobs [(period, slice)], compute the
      hyperperiod and pick a frame size [f] that (a) divides the
      hyperperiod, (b) fits the largest slice, and (c) satisfies the
      frame/deadline constraint [2f - gcd(f, T_i) <= T_i] for every job;
    - statically pack every job instance into a frame between its release
      and its deadline (earliest-deadline-first-fit);
    - at run time, a single periodic "executive" thread per CPU executes
      each frame's jobs back to back — one admission, one timer stream,
      no per-job scheduling decisions ever again.

    The static table is validated at construction, so deadline misses are
    impossible by construction (the EDF scheduler underneath only sees one
    perfectly feasible periodic thread). *)

open Hrt_engine

type job = { name : string; period : Time.ns; slice : Time.ns }

type table
(** A validated static schedule. *)

type error =
  | Empty_job_set
  | Invalid_job of string  (** non-positive period/slice or slice > period *)
  | Utilization_too_high of float
  | No_valid_frame  (** no divisor of the hyperperiod satisfies the
                        frame-size constraints *)
  | Unschedulable of string  (** packing failed for this job *)

val pp_error : Format.formatter -> error -> unit

val plan : job list -> (table, error) result
(** Build the static schedule. Deterministic. *)

val hyperperiod : table -> Time.ns
val frame_size : table -> Time.ns
val frames : table -> (string * Time.ns) list array
(** For each frame, the (job, slice) pieces executed in order. A job
    instance may be split across frames only never — instances are packed
    whole; [plan] fails instead of splitting. *)

val utilization : table -> float

val validate : table -> (unit, string) result
(** Re-check the invariants: every job has hyperperiod/period instances,
    each placed between release and deadline, and no frame overflows. Used
    by the test suite (and callers that build tables by other means). *)

val spawn :
  Scheduler.t ->
  cpu:int ->
  ?on_job:(string -> Time.ns -> unit) ->
  table ->
  Thread.t
(** Start the executive on a CPU: one periodic thread with period = frame
    size and slice = the largest frame's load, executing each frame's jobs
    in order. [on_job] is called with (job, completion time) after each
    job piece. The executive negotiates its constraints through normal
    admission control. Raises [Failure] if admission is rejected (the
    caller sized the system wrong). *)
