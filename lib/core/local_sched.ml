open Hrt_engine
open Hrt_hw
open Hrt_kernel
module Obs = Hrt_obs

type shared = {
  machine : Machine.t;
  config : Config.t;
  policy : Policy.t;
  pool : Thread_pool.t;
  workload_rng : Rng.t;
  obs : Obs.Sink.t;
  mutable scheds : t array;
  mutable total_aper_queued : int;
  mutable dispatch_hook : (int -> Thread.t -> Time.ns -> unit) option;
}

and t = {
  shared : shared;
  cpu : Machine.cpu;
  pending : Thread.t Prio_queue.t;
  rt_run : Thread.t Prio_queue.t;
  aper_run : Thread.t Deque.t;
  task_queue : Task.t;
  admission : Admission.t;
  account : Account.t;
  mutable services : Thread.services;
  mutable current : Thread.t option;
  mutable completion_ev : Engine.handle;
  mutable completion_gen : int;
  mutable completion_armed_gen : int;
  (* Cached engine actions for the recurring per-CPU events (scheduler
     pass requests, op completions, kick IPIs, steal polls). Each names a
     source registered at [create]; scheduling them allocates nothing. *)
  mutable soft_action : Engine.action;
  mutable complete_action : Engine.action;
  mutable kick_action : Engine.action;
  mutable kick_inner : Engine.action;
  mutable steal_action : Engine.action;
  mutable steal_armed : bool;
  mutable busy_until : Time.ns;
  mutable clock_skew : Time.ns;
  mutable soft_pending : bool;
  mutable idle_since : Time.ns option;
  mutable idle_total : Time.ns;
  mutable task_thread : Thread.t option;
  (* Graceful-degradation state (only touched when [Config.degradation]):
     threads currently shed (with their pre-shed [bound] flag, since shed
     threads are pinned home so recovery can find them), the shed
     boundary (criticality ranks below it hold no RT guarantee; 0 = not
     in overload), and the quiet-time clock for recovery. *)
  mutable shed_list : (Thread.t * bool) list;
  mutable boundary : int;
  mutable last_miss : Time.ns;
  mutable recover_armed : bool;
  mutable sheds : int;
  mutable recovers : int;
  mutable demotes : int;
}

let shared t = t.shared
let cpu_id t = t.cpu.Machine.id
let account t = t.account
let admission t = t.admission
let tasks t = t.task_queue
let current t = t.current
let services t = t.services
let set_clock_skew t s = t.clock_skew <- s
let clock_skew t = t.clock_skew
let set_task_thread t th = t.task_thread <- Some th
let task_thread t = t.task_thread
let shed_boundary t = t.boundary
let degradation_stats t = (t.sheds, t.recovers, t.demotes)

let engine t = t.shared.machine.Machine.engine
let platform t = t.shared.machine.Machine.platform
let config t = t.shared.config
let policy t = t.shared.policy
let obs t = t.shared.obs

(* Every policy decision below goes through these: what the RT run queue
   orders by, whether a deadline was missed, and the lazy-dispatch
   horizon. The pipeline stages themselves are policy-agnostic. *)
let rt_key t th = Policy.run_key t.shared.policy th

(* Instrumentation sites call [obs_on] first so a disabled sink costs one
   predictable branch and no event allocation. *)
let obs_on t = Obs.Sink.enabled t.shared.obs

let obs_emit t ~time ev = Obs.Sink.emit t.shared.obs ~time ~cpu:(cpu_id t) ev

let cls_of_constr = function
  | Constraints.Aperiodic _ -> Obs.Event.Cls_aperiodic
  | Constraints.Periodic _ -> Obs.Event.Cls_periodic
  | Constraints.Sporadic _ -> Obs.Event.Cls_sporadic

(* The retirement of a real-time arrival, wherever it happens (slice
   consumed, sporadic degrade, abandoned by a re-anchor or re-admission,
   exit mid-arrival). The verifier pairs these with [Arrival] events to
   reconstruct the runnable RT set. *)
let emit_complete t (th : Thread.t) now =
  if obs_on t then
    obs_emit t ~time:now (Obs.Event.Complete { tid = th.id; thread = th.name })

let emit_block t (th : Thread.t) now =
  if obs_on t then
    obs_emit t ~time:now (Obs.Event.Block { tid = th.id; thread = th.name })

let emit_wake t (th : Thread.t) now =
  if obs_on t then
    obs_emit t ~time:now (Obs.Event.Wake { tid = th.id; thread = th.name })

let sample t cost = Machine.sample t.shared.machine t.cpu cost

let rt_queue_length t = Prio_queue.length t.rt_run
let pending_length t = Prio_queue.length t.pending

(* Aperiodic-queue wrappers maintain the machine-wide stealable count used
   as the cheap "is there anything to steal" signal. *)
let aper_push_back t th =
  Deque.push_back t.aper_run th;
  t.shared.total_aper_queued <- t.shared.total_aper_queued + 1

let aper_push_front t th =
  Deque.push_front t.aper_run th;
  t.shared.total_aper_queued <- t.shared.total_aper_queued + 1

let aper_taken t = t.shared.total_aper_queued <- t.shared.total_aper_queued - 1

let aper_load t =
  let n = ref 0 in
  Deque.iter t.aper_run (fun th -> if not th.Thread.bound then incr n);
  !n

(* ------------------------------------------------------------------ *)
(* Serialization of the CPU: any event landing inside a busy window is
   deferred to the end of the window (interrupts are effectively off while
   the scheduler or an interrupt handler runs). *)

let run_gated t f =
  (* One closure per [run_gated] call, reused across every bounce off the
     busy window (each bounce is still a fresh engine event with a fresh
     sequence number, exactly as before). *)
  let rec g eng =
    let now = Engine.now eng in
    if Time.(now < t.busy_until) then
      ignore (Engine.schedule eng ~at:t.busy_until g)
    else f eng
  in
  g

(* ------------------------------------------------------------------ *)
(* Pipeline stage 1 — charge: account the interrupted thread's progress
   (subtracting SMI "missing time") before any queue surgery. *)

let rt_active (th : Thread.t) =
  match th.constr with
  | Constraints.Periodic _ | Constraints.Sporadic _ -> true
  | Constraints.Aperiodic _ -> false

let[@hrt.hot] charge_current t now =
  match t.current with
  | Some th when th.Thread.state = Thread.Running ->
    let start = th.Thread.run_since in
    if Time.(now > start) then begin
      let frozen = Engine.frozen_overlap (engine t) start now in
      let progress = Time.max 0L Time.(now - start - frozen) in
      th.cpu_time <- Time.(th.cpu_time + progress);
      if th.has_op then th.work_left <- Time.max 0L Time.(th.work_left - progress);
      if rt_active th then
        th.slice_left <- Time.max 0L Time.(th.slice_left - progress)
      else th.quantum_left <- Time.max 0L Time.(th.quantum_left - progress);
      th.run_since <- now
    end
  | Some _ | None -> ()

(* The generation also invalidates a completion that was deferred past a
   busy window or frozen stretch before the cancel landed: the deferred
   entry keeps its handle, so [Engine.cancel] usually reaches it, but the
   handler re-checks the generation as the authoritative test. *)
let cancel_completion t =
  t.completion_gen <- t.completion_gen + 1;
  Engine.cancel (engine t) t.completion_ev;
  t.completion_ev <- Engine.no_handle

(* ------------------------------------------------------------------ *)
(* Pipeline stage 2 — pump: move due arrivals from the pending queue into
   the RT run queue, keyed by the policy's run key, and flag deadline
   misses the policy detects. *)

let[@hrt.hot] process_arrival t (th : Thread.t) now =
  th.arrivals <- th.arrivals + 1;
  Account.record_arrival t.account;
  (match th.constr with
  | Constraints.Periodic { period; slice; _ } ->
    th.arrival <- th.next_arrival;
    th.deadline <- Time.(th.arrival + period);
    th.slice_left <- slice;
    th.next_arrival <- th.deadline;
    th.missed_current <- false
  | Constraints.Sporadic { size; deadline; _ } ->
    th.arrival <- th.next_arrival;
    th.deadline <- deadline;
    th.slice_left <- size;
    th.missed_current <- false
  | Constraints.Aperiodic _ ->
    (* An aperiodic thread can never sit in the pending queue. *)
    assert false);
  th.state <- Thread.Ready;
  (if obs_on t then
     let period =
       match th.constr with
       | Constraints.Periodic { period; _ } -> period
       | Constraints.Sporadic _ -> Time.max 1L Time.(th.deadline - th.arrival)
       | Constraints.Aperiodic _ -> assert false
     in
     obs_emit t ~time:now
       (Obs.Event.Arrival
          {
            tid = th.id;
            thread = th.name;
            arrival = th.arrival;
            deadline = th.deadline;
            period;
          }));
  if not (Prio_queue.add t.rt_run ~key:(rt_key t th) th) then
    failwith "local_sched: real-time run queue overflow"

(* Task-level fault hooks (Hrt_fault): a WCET-overrun fault inflates
   every compute the thread issues beyond its declared cost; a
   release-jitter fault delays each release by a uniform draw while the
   deadline stays nominal. Both are inert (and draw nothing from the
   workload stream) at their zero defaults. *)
let inflate (th : Thread.t) w =
  if th.Thread.wcet_overrun_pct <= 0 then w
  else
    Time.(
      w + Int64.div (Int64.mul w (Int64.of_int th.Thread.wcet_overrun_pct)) 100L)

let release_jitter t (th : Thread.t) =
  if Time.(th.Thread.release_jitter_ns <= 0L) then 0L
  else Rng.range_ns t.shared.workload_rng 0L th.Thread.release_jitter_ns

(* The one way into the pending queue: keyed by the (possibly jittered)
   release instant. *)
let[@hrt.hot] pend t (th : Thread.t) =
  let key = Time.(th.Thread.next_arrival + release_jitter t th) in
  if not (Prio_queue.add t.pending ~key th) then
    failwith "local_sched: pending queue overflow"

let[@hrt.hot] rec pump t now =
  match Prio_queue.peek t.pending with
  | Some (k, _) when Time.(k <= now) -> (
    match Prio_queue.pop t.pending with
    | Some (_, th) ->
      process_arrival t th now;
      pump t now
    | None -> ())
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Miss detection: a runnable RT thread whose deadline passed while it was
   still owed slice time has missed. The miss *time* is recorded when the
   late slice finally completes. *)

let flag_miss t (th : Thread.t) now =
  if
    rt_active th
    && (not th.missed_current)
    && Policy.missed (policy t) ~now th
  then begin
    th.missed_current <- true;
    th.miss_deadline <- th.deadline;
    th.misses <- th.misses + 1;
    if obs_on t then
      obs_emit t ~time:now
        (Obs.Event.Deadline_miss
           {
             tid = th.id;
             thread = th.name;
             lateness_ns = Time.(now - th.deadline);
             crit = Constraints.crit_name th.crit;
           })
  end

let missed_now t (th : Thread.t) now =
  rt_active th && (not th.missed_current) && Policy.missed (policy t) ~now th

(* The baseline (no-degradation) miss pass; with [Config.degradation] the
   invoke pipeline runs [degrade_on_misses] instead. *)
let flag_misses t now =
  (match t.current with Some th -> flag_miss t th now | None -> ());
  Prio_queue.iter t.rt_run (fun _ th -> flag_miss t th now)

let record_miss_completion t (th : Thread.t) now =
  if th.missed_current then begin
    let miss_time = Time.max 0L Time.(now - th.miss_deadline) in
    th.miss_time_total <- Time.(th.miss_time_total + miss_time);
    Account.record_miss t.account ~miss_time_ns:miss_time;
    (if obs_on t then
       Obs.Metrics.observe
         (Obs.Metrics.histo
            (Obs.Sink.metrics t.shared.obs)
            ~cpu:(cpu_id t) "sched.miss_time_us")
         (Int64.to_float miss_time /. 1_000.));
    th.missed_current <- false
  end

(* ------------------------------------------------------------------ *)
(* Thread body advancement: pull ops until the thread has CPU work to do or
   leaves the runnable set. Side effects inside bodies are instantaneous. *)

let do_set_constraints t (th : Thread.t) c cb now =
  (* Whether the thread is abandoning an in-flight real-time arrival: it is
     executing this op, so an RT constraint implies an active arrival. *)
  let was_rt = rt_active th in
  let verdict =
    Admission.request t.admission ~now ~crit:th.crit ~old_constr:th.constr c
  in
  let ok = Admission.admitted verdict in
  (if obs_on t then
     let cls = cls_of_constr c in
     obs_emit t ~time:now
       (match verdict with
       | Admission.Admitted _ -> Obs.Event.Admission_accept { tid = th.id; cls }
       | Admission.Rejected { reason } ->
         Obs.Event.Admission_reject
           { tid = th.id; cls; reason = Admission.Rejection.name reason }));
  let effective = if ok then c else th.constr in
  if ok then begin
    th.constr <- c;
    th.admit_time <- now
  end;
  (match effective with
  | Constraints.Aperiodic _ ->
    if was_rt then emit_complete t th now;
    th.quantum_left <- (config t).Config.aperiodic_quantum;
    th.state <- Thread.Ready;
    aper_push_back t th
  | Constraints.Periodic { phase; _ } when ok ->
    if was_rt then emit_complete t th now;
    th.next_arrival <- Time.(now + phase);
    th.slice_left <- 0L;
    th.missed_current <- false;
    th.state <- Thread.Pending_arrival;
    pend t th;
    (* A zero-phase first arrival is due immediately; pump here because
       this can run after the invocation's own pumps (pick phase). *)
    pump t now
  | Constraints.Sporadic { phase; _ } when ok ->
    if was_rt then emit_complete t th now;
    th.next_arrival <- Time.(now + phase);
    th.slice_left <- 0L;
    th.missed_current <- false;
    th.state <- Thread.Pending_arrival;
    pend t th;
    pump t now
  | Constraints.Periodic _ | Constraints.Sporadic _ ->
    (* Admission failed mid-arrival: the thread keeps its old (admitted)
       real-time constraints and resumes its current arrival, or waits for
       the next one. *)
    if Time.(th.slice_left > 0L) && Time.(th.deadline > now) then begin
      th.state <- Thread.Ready;
      ignore (Prio_queue.add t.rt_run ~key:(rt_key t th) th)
    end
    else begin
      emit_complete t th now;
      th.state <- Thread.Pending_arrival;
      pend t th
    end);
  cb verdict

let exit_thread t (th : Thread.t) =
  Admission.release t.admission th.constr;
  th.state <- Thread.Exited;
  th.has_op <- false;
  Thread_pool.free t.shared.pool th.id

(* Returns true when the thread is runnable with CPU work in hand. *)
let rec advance t (th : Thread.t) now =
  let ctx = { Thread.svc = t.services; self = th } in
  let guard = ref 0 in
  let next_op () =
    match th.stashed_op with
    | Some op ->
      th.stashed_op <- None;
      op
    | None -> th.body ctx
  in
  let rec go () =
    if th.has_op then true
    else begin
      incr guard;
      if !guard > 1024 then
        failwith
          (Printf.sprintf "thread %s: livelock: 1024 zero-cost ops" th.name);
      match next_op () with
      | Thread.Compute w ->
        if Time.(w <= 0L) then go ()
        else begin
          th.has_op <- true;
          th.work_left <- inflate th w;
          true
        end
      | Thread.Yield ->
        th.state <- Thread.Ready;
        (if rt_active th then
           ignore (Prio_queue.add t.rt_run ~key:(rt_key t th) th)
         else begin
           th.quantum_left <- (config t).Config.aperiodic_quantum;
           aper_push_back t th
         end);
        false
      | Thread.Block ->
        emit_block t th now;
        th.state <- Thread.Blocked;
        th.block_start <- now;
        th.spin_block <- true;
        th.wake_token <- th.wake_token + 1;
        false
      | Thread.Sleep_until tm ->
        emit_block t th now;
        th.state <- Thread.Blocked;
        th.block_start <- now;
        th.spin_block <- false;
        th.wake_token <- th.wake_token + 1;
        let token = th.wake_token in
        let at = Time.max tm Time.(now + 1L) in
        ignore
          (Engine.schedule (engine t) ~at (fun _eng ->
               if th.state = Thread.Blocked && th.wake_token = token then
                 wake_sched t th));
        false
      | Thread.Set_constraints (c, cb) ->
        do_set_constraints t th c cb now;
        false
      | Thread.Exit ->
        if rt_active th then emit_complete t th now;
        exit_thread t th;
        false
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Wakes. [wake_enqueue] places a blocked thread back in the right queue
   without requesting a pass (the cross-CPU path lets the kick IPI do
   that); [wake_sched] is the local path. *)

and wake_enqueue t (th : Thread.t) =
  if th.Thread.state = Thread.Blocked && th.cpu = cpu_id t then begin
    let now = Engine.now (engine t) in
    (* Spin-wait semantics: a real thread polls the flag, burning its
       guaranteed time, so the blocked interval is charged against the
       slice (capped). Pure sleeps are not charged. *)
    (if th.spin_block && rt_active th then begin
       let waited = Time.max 0L Time.(now - th.block_start) in
       th.slice_left <- Time.max 0L Time.(th.slice_left - waited)
     end);
    (match th.constr with
    | Constraints.Aperiodic _ ->
      emit_wake t th now;
      th.state <- Thread.Ready;
      if Time.(th.quantum_left <= 0L) then
        th.quantum_left <- (config t).Config.aperiodic_quantum;
      aper_push_back t th
    | Constraints.Sporadic _ ->
      emit_wake t th now;
      th.state <- Thread.Ready;
      ignore (Prio_queue.add t.rt_run ~key:(rt_key t th) th)
    | Constraints.Periodic { period; _ } ->
      if Time.(th.slice_left > 0L) && Time.(th.deadline > now) then begin
        (* Resume the current arrival. *)
        emit_wake t th now;
        th.state <- Thread.Ready;
        ignore (Prio_queue.add t.rt_run ~key:(rt_key t th) th)
      end
      else begin
        (* Rejoin the arrival schedule at the latest arrival point <= now
           (or the already-pending future arrival). The pending pump turns
           it into a proper arrival; the blocked-through arrival is over.
           Like the wake itself, this can run at a remote waker's clock,
           inside this CPU's busy window — stamp the completion at the
           serialization point so the per-CPU trace stays monotone. *)
        emit_complete t th (Time.max now t.busy_until);
        while Time.(th.next_arrival + period <= now) do
          th.next_arrival <- Time.(th.next_arrival + period)
        done;
        th.missed_current <- false;
        th.slice_left <- 0L;
        th.state <- Thread.Pending_arrival;
        pend t th
      end)
  end

and wake_sched t (th : Thread.t) =
  if th.Thread.state = Thread.Blocked then begin
    wake_enqueue t th;
    request_invoke t
  end

and request_invoke t =
  if not t.soft_pending then begin
    t.soft_pending <- true;
    ignore (Engine.schedule_action_after (engine t) ~after:0L t.soft_action)
  end

(* The registered handler behind [t.soft_action]: gated on the busy
   window like every scheduler entry, but by parking the event itself
   ([Engine.defer_current] — fresh sequence number, no allocation)
   instead of scheduling a bounce closure. *)
and soft_entry t eng =
  if Time.(Engine.now eng < t.busy_until) then
    Engine.defer_current eng ~at:t.busy_until
  else begin
    t.soft_pending <- false;
    invoke t eng ~irq_ns:0L ~handler_ns:0L
  end

(* ------------------------------------------------------------------ *)
(* Graceful degradation (DESIGN §8). With [Config.degradation] on, the
   miss pass becomes a state machine: a flagged miss raises this CPU's
   shed boundary to one rank above the highest criticality that missed
   (capped at High — High is never shed, so a High miss is a contract
   violation the verifier flags), sheds every queued lower-criticality
   RT thread to aperiodic, and throttles the missed arrivals themselves
   (retired at the deadline instead of running late into others' slack).
   After [Config.shed_recovery] of miss-free time, shed threads are
   re-admitted under their saved constraints, highest criticality first.

   Event order within one instant is part of the contract the offline
   checker relies on: Overload first (so misses are judged against the
   raised boundary), then the Deadline_miss events (while each arrival
   is still in flight), then Shed/Demote with their retiring Completes. *)

and crit_rank_of (th : Thread.t) = Constraints.crit_rank th.Thread.crit

and emit_overload t now rank =
  if obs_on t then
    obs_emit t ~time:now
      (Obs.Event.Overload
         {
           boundary =
             (if rank <= 0 then "none"
              else Constraints.crit_name (Constraints.crit_of_rank rank));
         })

and emit_shed t (th : Thread.t) now =
  if obs_on t then
    obs_emit t ~time:now
      (Obs.Event.Shed
         {
           tid = th.id;
           thread = th.name;
           crit = Constraints.crit_name th.crit;
         })

and shed_thread t (th : Thread.t) now ~in_flight =
  (* Revoke the RT constraints (remembering them, and the stealability
     the thread had, for recovery) and continue it as a priority-0
     aperiodic thread pinned to its home CPU. *)
  record_miss_completion t th now;
  if in_flight then emit_complete t th now;
  Admission.release t.admission th.constr;
  th.shed_constr <- Some th.constr;
  t.shed_list <- (th, th.bound) :: t.shed_list;
  th.bound <- true;
  th.constr <- Constraints.Aperiodic { prio = 0 };
  th.slice_left <- 0L;
  th.missed_current <- false;
  th.quantum_left <- (config t).Config.aperiodic_quantum;
  t.sheds <- t.sheds + 1;
  emit_shed t th now

and shed_below t now =
  let b = t.boundary in
  let rec drain_rt () =
    match Prio_queue.remove t.rt_run (fun th -> crit_rank_of th < b) with
    | Some th ->
      (* In the RT run queue: an arrival is in flight; retire it. *)
      shed_thread t th now ~in_flight:true;
      th.state <- Thread.Ready;
      aper_push_back t th;
      drain_rt ()
    | None -> ()
  in
  drain_rt ();
  let rec drain_pending () =
    match Prio_queue.remove t.pending (fun th -> crit_rank_of th < b) with
    | Some th ->
      (* Waiting for its next arrival: nothing in flight to retire. *)
      shed_thread t th now ~in_flight:false;
      th.state <- Thread.Ready;
      aper_push_back t th;
      drain_pending ()
    | None -> ()
  in
  drain_pending ();
  match t.current with
  | Some th when rt_active th && crit_rank_of th < b ->
    (* The interrupted thread itself: revoke in place — the settle stage
       sees an aperiodic thread and requeues it accordingly. *)
    shed_thread t th now ~in_flight:true
  | Some _ | None -> ()

and throttle t (th : Thread.t) now =
  (* A missed thread at or above the boundary keeps its guarantee going
     forward but forfeits the late arrival: budget enforcement means an
     overrun is cut off at its deadline, not allowed to steal slack. *)
  if rt_active th && th.missed_current then begin
    t.demotes <- t.demotes + 1;
    if obs_on t then
      obs_emit t ~time:now (Obs.Event.Demote { tid = th.id; thread = th.name });
    match th.state with
    | Thread.Ready -> (
      match Prio_queue.remove t.rt_run (fun x -> x == th) with
      | Some _ -> end_rt_arrival t th now
      | None -> ())
    | Thread.Running ->
      (* Zero the remaining slice; this invocation's settle stage retires
         the arrival (emitting its Complete). *)
      th.slice_left <- 0L
    | Thread.Blocked | Thread.Pending_arrival | Thread.Exited -> ()
  end

and degrade_on_misses t now =
  let missed = ref [] in
  let consider th = if missed_now t th now then missed := th :: !missed in
  (match t.current with Some th -> consider th | None -> ());
  Prio_queue.iter t.rt_run (fun _ th -> consider th);
  match !missed with
  | [] -> ()
  | misses ->
    t.last_miss <- now;
    let top = List.fold_left (fun acc th -> max acc (crit_rank_of th)) 0 misses in
    let want = min (top + 1) (Constraints.crit_rank Constraints.High) in
    if want > t.boundary then begin
      t.boundary <- want;
      Admission.set_overload t.admission ~boundary:want;
      emit_overload t now want
    end;
    List.iter (fun th -> flag_miss t th now) misses;
    shed_below t now;
    List.iter (fun th -> throttle t th now) misses;
    arm_recovery t

and arm_recovery t =
  if not t.recover_armed then begin
    t.recover_armed <- true;
    ignore
      (Engine.schedule_after (engine t)
         ~after:(config t).Config.shed_recovery
         (run_gated t (recovery_tick t)))
  end

and recovery_tick t eng =
  t.recover_armed <- false;
  if t.boundary > 0 then begin
    let now = Engine.now eng in
    let quiet_at = Time.(t.last_miss + (config t).Config.shed_recovery) in
    if Time.(now < quiet_at) then begin
      (* A miss happened since arming: wait out the rest of the quiet
         window. *)
      t.recover_armed <- true;
      ignore (Engine.schedule eng ~at:quiet_at (run_gated t (recovery_tick t)))
    end
    else begin
      (* Lift the admission block while re-requesting; re-imposed below
         if some threads could not come back yet. *)
      Admission.clear_overload t.admission;
      recover_shed t now;
      if t.shed_list = [] then begin
        t.boundary <- 0;
        emit_overload t now 0
      end
      else begin
        Admission.set_overload t.admission ~boundary:t.boundary;
        arm_recovery t
      end;
      invoke t eng ~irq_ns:0L ~handler_ns:0L
    end
  end

and recover_shed t now =
  (* Highest criticality first, so contention for the freed capacity
     resolves in favor of the threads that matter most. Only threads
     parked in this CPU's aperiodic queue can be re-anchored cleanly;
     Running/Blocked ones are retried on a later tick. Sporadic saved
     constraints are dropped — their absolute deadline has passed, which
     is exactly the existing degrade-to-aperiodic semantics. *)
  let ordered =
    List.stable_sort
      (fun (a, _) (b, _) -> compare (crit_rank_of b) (crit_rank_of a))
      t.shed_list
  in
  let still = ref [] in
  List.iter
    (fun ((th : Thread.t), was_bound) ->
      match th.shed_constr with
      | None -> ()
      | Some (Constraints.Aperiodic _) | Some (Constraints.Sporadic _) ->
        th.shed_constr <- None;
        th.bound <- was_bound
      | Some (Constraints.Periodic { phase; _ } as c) ->
        if th.state = Thread.Exited then th.shed_constr <- None
        else begin
          (* A shed thread sits either parked in this CPU's aperiodic
             queue (Ready) or asleep inside its polling loop (Blocked);
             both re-anchor cleanly. A Running one is retried on a later
             tick. *)
          let was_blocked = th.state = Thread.Blocked in
          let taken =
            if rt_active th then false
            else if was_blocked then true
            else
              th.state = Thread.Ready
              && Deque.remove t.aper_run (fun x -> x == th) <> None
              && begin
                   aper_taken t;
                   true
                 end
          in
          if not taken then still := (th, was_bound) :: !still
          else if
            Admission.admitted
              (Admission.request t.admission ~now ~crit:th.crit
                 ~old_constr:th.constr c)
          then begin
            (* Orphan any pending sleep wake-up: the thread restarts its
               arrival loop from scratch (the stale event also checks the
               token before waking). *)
            if was_blocked then th.wake_token <- th.wake_token + 1;
            th.shed_constr <- None;
            th.bound <- was_bound;
            th.constr <- c;
            th.admit_time <- now;
            th.slice_left <- 0L;
            th.missed_current <- false;
            th.next_arrival <- Time.(now + phase);
            th.state <- Thread.Pending_arrival;
            pend t th;
            t.recovers <- t.recovers + 1;
            if obs_on t then begin
              obs_emit t ~time:now
                (Obs.Event.Admission_accept
                   { tid = th.id; cls = cls_of_constr c });
              obs_emit t ~time:now
                (Obs.Event.Recover
                   {
                     tid = th.id;
                     thread = th.name;
                     crit = Constraints.crit_name th.crit;
                   })
            end
          end
          else begin
            (* Capacity moved elsewhere meanwhile: park it back where it
               came from (a Blocked one just keeps sleeping). *)
            if not was_blocked then begin
              th.state <- Thread.Ready;
              aper_push_back t th
            end;
            still := (th, was_bound) :: !still
          end
        end)
    ordered;
  t.shed_list <- List.rev !still

(* ------------------------------------------------------------------ *)
(* Pipeline stage 3 — settle: resolve the interrupted thread — op
   completion, slice exhaustion, class transitions. Afterwards
   [t.current] is [None] and any still-runnable previous thread sits in
   the proper queue (re-keyed by the policy). *)

and end_rt_arrival t (th : Thread.t) now =
  record_miss_completion t th now;
  emit_complete t th now;
  match th.constr with
  | Constraints.Periodic { period; _ } ->
    (* Skip only arrivals whose whole period has already elapsed: a small
       overrun still gets (what remains of) the next period. *)
    while Time.(th.next_arrival + period <= now) do
      th.next_arrival <- Time.(th.next_arrival + period)
    done;
    th.state <- Thread.Pending_arrival;
    pend t th
  | Constraints.Sporadic { aper_prio; _ } ->
    (* The guaranteed size is consumed: continue as an aperiodic thread. *)
    Admission.release t.admission th.constr;
    th.constr <- Constraints.Aperiodic { prio = aper_prio };
    th.quantum_left <- (config t).Config.aperiodic_quantum;
    th.state <- Thread.Ready;
    aper_push_back t th
  | Constraints.Aperiodic _ -> assert false

and settle_current t now =
  match t.current with
  | None -> ()
  | Some th ->
    t.current <- None;
    if th.Thread.state = Thread.Running then begin
      if th.has_op && Time.(th.work_left <= 0L) then th.has_op <- false;
      if rt_active th && Time.(th.slice_left <= 0L) then begin
        (* Slice/size consumed for this arrival. *)
        th.state <- Thread.Ready;
        end_rt_arrival t th now
      end
      else begin
        th.state <- Thread.Ready;
        if advance t th now then begin
          (* Still runnable: requeue for the picker. *)
          if rt_active th then begin
            if th.state = Thread.Ready then
              ignore (Prio_queue.add t.rt_run ~key:(rt_key t th) th)
          end
          else begin
            th.state <- Thread.Ready;
            if Time.(th.quantum_left <= 0L) then begin
              (* Quantum expired: rotate to the back (round robin). *)
              th.quantum_left <- (config t).Config.aperiodic_quantum;
              aper_push_back t th
            end
            else aper_push_front t th
          end
        end
        (* else: advance already placed/parked it *)
      end
    end
[@@hrt.hot]

(* ------------------------------------------------------------------ *)
(* Size-tagged task execution (only when no RT thread wants the CPU, and
   only while the next RT arrival leaves room — §3.1). Returns the busy
   time consumed. *)

and run_sized_tasks t now =
  if not (Prio_queue.is_empty t.rt_run) then 0L
  else begin
    let consumed = ref 0L in
    let room () =
      match Prio_queue.peek t.pending with
      | None -> Time.sec 1
      | Some (k, _) -> Time.(k - now - !consumed)
    in
    let rec loop () =
      let fits = room () in
      if Time.(fits > 0L) then begin
        match Task.take_sized t.task_queue ~fits with
        | Some task ->
          consumed := Time.(!consumed + task.Task.duration);
          task.Task.run ();
          Task.complete t.task_queue task ~now:Time.(now + !consumed);
          loop ()
        | None -> ()
      end
    in
    loop ();
    (* Untagged tasks must go through the helper thread. *)
    (if Task.unsized_pending t.task_queue > 0 then
       match t.task_thread with
       | Some helper when helper.Thread.state = Thread.Blocked ->
         wake_sched t helper
       | Some _ | None -> ());
    !consumed
  end

(* ------------------------------------------------------------------ *)
(* Pipeline stage 4 — pick: next-thread selection. The RT run queue head
   (already policy-ordered) wins, subject to the dispatch mode's
   lazy-start test; then priority round-robin over aperiodics; else
   idle. *)

and take_best_aper t =
  (* Highest priority wins; FIFO (deque order) within a priority. The scan
     is bounded by the compile-time thread limit, preserving the bounded-
     pass-cost argument. *)
  (let best = ref None in
   Deque.iter t.aper_run (fun th ->
       match !best with
       | None -> best := Some th
       | Some b -> if Thread.aper_prio th > Thread.aper_prio b then best := Some th);
   match !best with
   | None -> None
   | Some th ->
     let found = Deque.remove t.aper_run (fun x -> x == th) in
     assert (found != None);
     aper_taken t;
     Some th)
  [@hrt.alloc_ok "bounded aperiodic scan, once per scheduler decision \
                  (not per event): two iteration closures and a boxed \
                  result"]
[@@hrt.hot]

and pick t now = pick_bounded t now 0 [@@hrt.hot]

and pick_bounded t now depth =
  if depth > (2 * (config t).Config.max_threads) + 16 then
    failwith
      "local_sched: livelock: a thread body re-issues a non-Compute op \
       without making progress (use Program.of_thunks for one-shot ops)";
  let rt_candidate =
    (match Prio_queue.peek t.rt_run with
     | None -> None
     | Some (_, th) -> (
       match (config t).Config.dispatch with
       | Config.Eager -> Some th
       | Config.Lazy ->
         let latest =
           Policy.latest_start (policy t)
             ~slack:(config t).Config.lazy_slack th
         in
         if Time.(now >= latest) || th.missed_current then Some th else None)
     [@hrt.alloc_ok "one boxed candidate per scheduler decision"])
  in
  match rt_candidate with
  | Some _ -> (
    match Prio_queue.pop t.rt_run with
    | Some (_, th) -> prepare t th now depth
    | None -> assert false)
  | None -> (
    match take_best_aper t with
    | Some th -> prepare t th now depth
    | None -> None)
[@@hrt.hot]

and prepare t (th : Thread.t) now depth =
  (if th.has_op then Some th
   else if advance t th now then Some th
   else pick_bounded t now (depth + 1))
  [@hrt.alloc_ok "one boxed pick result per scheduler decision"]
[@@hrt.hot]

(* ------------------------------------------------------------------ *)
(* Pipeline stage 5 — program-timer: one one-shot armed at the earliest
   future scheduling event (next arrival, current thread's slice end or
   deadline, or the policy's lazy-start horizon). Absolute wall-clock
   targets are reached when the local (skewed) clock says so; durations
   are unaffected by clock skew. *)

and program_timer t now resume_at =
  let cfg = config t in
  (* Fold the candidate targets straight into a running minimum: this
     runs once per scheduler decision and builds no intermediate lists.
     Absolute targets already in the past were handled by this very
     invocation (arrivals pumped, misses flagged); arming for them again
     would only re-enter the scheduler without letting the thread run.
     Absolute wall-clock targets are skew-adjusted; durations are not. *)
  let best = Int64.max_int in
  let best =
    match Prio_queue.peek t.pending with
    | Some (k, _) when Time.(k > now) -> Time.min best Time.(k - t.clock_skew)
    | Some _ | None -> best
  in
  let best =
    match t.current with
    | Some th when rt_active th ->
      let best =
        if Time.(th.deadline > now) then
          Time.min best Time.(th.deadline - t.clock_skew)
        else best
      in
      Time.min best Time.(resume_at + th.slice_left)
    | Some th ->
      if not (Deque.is_empty t.aper_run) then
        Time.min best Time.(resume_at + th.Thread.quantum_left)
      else best
    | None -> best
  in
  let best =
    match (cfg.Config.dispatch, Prio_queue.peek t.rt_run) with
    | Config.Lazy, Some (_, th) ->
      let a = Policy.latest_start (policy t) ~slack:cfg.Config.lazy_slack th in
      if Time.(a > now) then Time.min best Time.(a - t.clock_skew) else best
    | (Config.Eager | Config.Lazy), _ -> best
  in
  if Int64.equal best Int64.max_int then Apic.cancel_timer t.cpu.Machine.apic
  else Apic.arm t.cpu.Machine.apic ~at:(Time.max best Time.(now + 1L))
[@@hrt.hot]

and schedule_completion t resume_at =
  match t.current with
  | Some th when th.Thread.has_op && Time.(th.work_left > 0L) ->
    let at = Time.(resume_at + th.work_left) in
    t.completion_gen <- t.completion_gen + 1;
    t.completion_armed_gen <- t.completion_gen;
    t.completion_ev <- Engine.schedule_action (engine t) ~at t.complete_action
  | Some _ | None -> ()
[@@hrt.hot]

(* The registered handler behind [t.complete_action]: gate first, then
   drop the fire if a cancel/re-schedule happened while it sat deferred
   behind a busy window. *)
and complete_entry t eng =
  if Time.(Engine.now eng < t.busy_until) then
    Engine.defer_current eng ~at:t.busy_until
  else if t.completion_armed_gen = t.completion_gen then begin
    t.completion_ev <- Engine.no_handle;
    on_completion t eng
  end
[@@hrt.hot]

(* Op completion is a thread-level transition, not an interrupt. When the
   thread simply continues computing (the common BSP inner loop) no
   scheduler pass happens at all — the thread never entered the kernel. A
   full invocation is only needed when the thread does something the
   scheduler must see, or when its budget ran out. *)
and on_completion t eng =
  let now = Engine.now eng in
  match t.current with
  | Some th when th.Thread.state = Thread.Running ->
    charge_current t now;
    if th.has_op && Time.(th.work_left > 0L) then
      (* An SMI (or interrupt) stole part of the run: keep going. *)
      schedule_completion t now
    else begin
      th.has_op <- false;
      let budget_ok =
        if rt_active th then Time.(th.slice_left > 0L)
        else Time.(th.quantum_left > 0L)
      in
      if not budget_ok then invoke t eng ~irq_ns:0L ~handler_ns:0L
      else begin
        let ctx = { Thread.svc = t.services; self = th } in
        match th.body ctx with
        | Thread.Compute w when Time.(w > 0L) ->
          th.has_op <- true;
          th.work_left <- inflate th w;
          schedule_completion t now
        | op ->
          (* Anything else goes through the scheduler proper. *)
          th.stashed_op <-
            (Some op [@hrt.alloc_ok "stashes the non-compute op for the \
                                     pass; one box per kernel entry"]);
          invoke t eng ~irq_ns:0L ~handler_ns:0L
      end
    end
  | Some _ | None -> invoke t eng ~irq_ns:0L ~handler_ns:0L
[@@hrt.hot]

(* ------------------------------------------------------------------ *)
(* Work stealing (the idle thread's job, §3.4). *)

and arm_steal t =
  (* The idle thread polls for stealable work: fast when the machine has
     queued aperiodic threads, slow (1 ms) otherwise so quiescent systems
     stay cheap to simulate. *)
  let cfg = config t in
  if cfg.Config.work_stealing && not t.steal_armed then begin
    let interval =
      if t.shared.total_aper_queued > 0 then cfg.Config.steal_interval
      else Time.ms 1
    in
    t.steal_armed <- true;
    ignore
      (Engine.schedule_action_after (engine t) ~after:interval t.steal_action)
  end

(* The registered handler behind [t.steal_action]. Gated like every other
   scheduler entry: the idle thread cannot poll while the CPU is
   serialized in a pass or handler, and gating keeps steal-attempt events
   inside the CPU's monotone timeline. *)
and steal_entry t eng =
  if Time.(Engine.now eng < t.busy_until) then
    Engine.defer_current eng ~at:t.busy_until
  else begin
    t.steal_armed <- false;
    if t.current = None then
      if t.shared.total_aper_queued > 0 then attempt_steal t eng
      else arm_steal t
  end

and attempt_steal t eng =
  let n = Array.length t.shared.scheds in
  let victim =
    Worksteal.pick_victim t.cpu.Machine.rng ~self:(cpu_id t) ~n ~load:(fun i ->
        aper_load t.shared.scheds.(i))
  in
  let cost = sample t (platform t).Platform.steal_check in
  t.busy_until <- Time.max t.busy_until Time.(Engine.now eng + cost);
  let emit_attempt victim success =
    if obs_on t then
      obs_emit t ~time:(Engine.now eng)
        (Obs.Event.Steal_attempt { victim; success })
  in
  (match victim with
  | Some v -> (
    match try_steal_from t.shared.scheds.(v) ~thief_cpu:(cpu_id t) with
    | Some th ->
      emit_attempt (Some v) true;
      th.Thread.cpu <- cpu_id t;
      aper_push_back t th;
      Account.record_steal t.account;
      request_invoke t
    | None ->
      emit_attempt (Some v) false;
      arm_steal t)
  | None ->
    emit_attempt None false;
    arm_steal t)

and try_steal_from t ~thief_cpu =
  ignore thief_cpu;
  match
    Deque.remove t.aper_run (fun (th : Thread.t) ->
        (not th.bound) && th.state = Thread.Ready)
  with
  | Some th ->
    aper_taken t;
    Some th
  | None -> None

(* ------------------------------------------------------------------ *)
(* The invocation itself: the staged pipeline in order —
   charge -> pump -> settle -> pick -> program-timer. Each stage is
   policy-agnostic; policy decisions happen through the [Policy.t] the
   shared state carries (run-queue keys, miss checks, lazy horizons). *)

and invoke t eng ~irq_ns ~handler_ns =
  let now = Engine.now eng in
  let prev = t.current in
  cancel_completion t;
  (* charge *)
  charge_current t now;
  (* pump *)
  pump t now;
  if (config t).Config.degradation then degrade_on_misses t now
  else flag_misses t now;
  (* settle *)
  settle_current t now;
  (* Settling can enqueue an arrival due immediately (e.g. a constraint
     change with zero phase) — pump again so it is not stranded. *)
  pump t now;
  let task_ns = run_sized_tasks t now in
  (* pick *)
  let next = pick t now in
  let switching =
    match (prev, next) with
    | None, None -> false
    | Some a, Some b -> not (a == b)
    | None, Some _ | Some _, None -> true
  in
  (match (prev, next) with
  | Some p, Some n when (not (p == n)) && Thread.runnable p ->
    p.preemptions <- p.preemptions + 1
  | _ -> ());
  let plat = platform t in
  let pass_ns = sample t plat.Platform.sched_pass in
  let other_ns =
    Time.(sample t plat.Platform.sched_other + sample t plat.Platform.timer_program)
  in
  let switch_ns = if switching then sample t plat.Platform.ctx_switch else 0L in
  Account.record_invocation t.account ~irq_ns ~other_ns ~pass_ns ~switch_ns;
  let overhead =
    Time.(irq_ns + handler_ns + task_ns + pass_ns + other_ns + switch_ns)
  in
  let resume_at = Time.(now + overhead) in
  (if obs_on t then begin
     if Time.(irq_ns > 0L) then
       obs_emit t ~time:now
         (Obs.Event.Irq { dur_ns = Time.(irq_ns + handler_ns) });
     (* Preempt (stamped at [now]) goes before the pass span (stamped at
        [now + irq]) so per-CPU trace timestamps stay non-decreasing — an
        invariant the verifier checks. *)
     (match (prev, next) with
     | Some p, Some n when (not (p == n)) && Thread.runnable p ->
       obs_emit t ~time:now
         (Obs.Event.Preempt { tid = p.Thread.id; thread = p.Thread.name })
     | _ -> ());
     obs_emit t
       ~time:Time.(now + irq_ns + handler_ns)
       (Obs.Event.Sched_pass { dur_ns = Time.(pass_ns + other_ns) });
     match next with
     | Some th ->
       obs_emit t ~time:resume_at
         (Obs.Event.Dispatch { tid = th.Thread.id; thread = th.Thread.name })
     | None -> if t.idle_since = None then obs_emit t ~time:resume_at Obs.Event.Idle
   end);
  t.busy_until <- resume_at;
  (match next with
  | Some th ->
    th.state <- Thread.Running;
    th.run_since <- resume_at;
    t.current <- (Some th [@hrt.alloc_ok "one box per dispatch"]);
    (match t.idle_since with
    | Some s ->
      t.idle_total <- Time.(t.idle_total + (now - s));
      t.idle_since <- None
    | None -> ());
    (match t.shared.dispatch_hook with
    | Some hook -> hook (cpu_id t) th resume_at
    | None -> ())
  | None ->
    t.current <- None;
    if t.idle_since = None then
      t.idle_since <- (Some resume_at [@hrt.alloc_ok "one box per idle transition"]);
    arm_steal t);
  Apic.set_ppr t.cpu.Machine.apic eng
    (match next with
    | Some th when rt_active th -> Apic.rt_ppr
    | Some _ | None -> 0);
  schedule_completion t resume_at;
  (* program-timer *)
  program_timer t now resume_at
[@@hrt.hot]

(* ------------------------------------------------------------------ *)
(* Entry points. *)

let[@hrt.hot] on_timer t eng =
  (* A one-shot APIC holds exactly one shot in flight. If the timer is
     armed again by the time a fire is delivered, this fire left the APIC
     before a re-program and then sat deferred behind a busy window — on
     real hardware that shot no longer exists, so drop it. Without this,
     a slice remainder smaller than the pass overhead livelocks: each
     stale fire lands at the next dispatch instant, charges zero
     progress, and re-arms at the same relative offset. *)
  if not (Apic.timer_armed t.cpu.Machine.apic) then begin
    let irq_ns = sample t (platform t).Platform.irq_dispatch in
    invoke t eng ~irq_ns ~handler_ns:0L
  end

let wake t th = wake_sched t th

let kick t ~from =
  ignore from;
  Account.record_kick t.account;
  let latency = sample t (platform t).Platform.ipi_latency in
  ignore (Engine.schedule_action_after (engine t) ~after:latency t.kick_action)

(* The registered handler behind [t.kick_action]: the IPI reaching this
   CPU's APIC after the wire latency. The APIC then delivers the cached
   [kick_inner] (gated scheduler entry) or holds it pending by PPR. *)
let kick_entry t eng =
  Apic.deliver t.cpu.Machine.apic eng ~prio:Apic.sched_prio t.kick_inner

let on_device_irq t ~handler_ns =
  let eng = engine t in
  run_gated t
    (fun eng ->
      let irq_ns = sample t (platform t).Platform.irq_dispatch in
      invoke t eng ~irq_ns ~handler_ns)
    eng

let set_next_arrival t (th : Thread.t) arrival =
  match th.state with
  | Thread.Pending_arrival -> (
    match Prio_queue.remove t.pending (fun x -> x == th) with
    | Some _ ->
      th.next_arrival <- arrival;
      if not (Prio_queue.add t.pending ~key:th.next_arrival th) then
        failwith "local_sched: pending queue overflow";
      request_invoke t
    | None -> th.next_arrival <- arrival)
  | Thread.Ready | Thread.Running | Thread.Blocked ->
    (* The in-flight arrival is abandoned: the thread finishes its current
       computation step and then waits for the new schedule, rather than
       running an old-schedule slice into the new timeline (which would be
       charged as an administrative "miss"). *)
    th.next_arrival <- arrival;
    th.slice_left <- 0L;
    th.missed_current <- false
  | Thread.Exited -> ()

let rephase t (th : Thread.t) ~delta =
  if rt_active th then set_next_arrival t th Time.(th.next_arrival + delta)

let reanchor t (th : Thread.t) ~first_arrival =
  if rt_active th then set_next_arrival t th first_arrival

let enroll t (th : Thread.t) =
  th.cpu <- cpu_id t;
  th.quantum_left <- (config t).Config.aperiodic_quantum;
  th.state <- Thread.Ready;
  aper_push_back t th;
  request_invoke t

let sync_accounting t =
  let now = Engine.now (engine t) in
  if Time.(now >= t.busy_until) then charge_current t now

let idle_time t =
  match t.idle_since with
  | None -> t.idle_total
  | Some s -> Time.(t.idle_total + (Engine.now (engine t) - s))

let make_services t =
  {
    Thread.now = (fun () -> Engine.now (engine t));
    wake =
      (fun th ->
        let target = t.shared.scheds.(th.Thread.cpu) in
        if th.Thread.state = Thread.Blocked then
          if cpu_id target = cpu_id t then wake_sched target th
          else begin
            (* Shared memory: enqueue directly, then kick the remote local
               scheduler so it notices (the only IPI use, §3.5). *)
            wake_enqueue target th;
            kick target ~from:(cpu_id t)
          end);
    sample =
      (fun th cost ->
        let m = t.shared.machine in
        Machine.sample m (Machine.cpu m th.Thread.cpu) cost);
    rng = t.shared.workload_rng;
  }

let create shared cpu =
  let cfg = shared.config in
  let plat = shared.machine.Machine.platform in
  let t =
    {
      shared;
      cpu;
      pending = Prio_queue.create ~capacity:cfg.Config.max_threads;
      rt_run = Prio_queue.create ~capacity:cfg.Config.max_threads;
      aper_run = Deque.create ();
      task_queue = Task.create ();
      admission =
        (let per_invocation =
           plat.Platform.irq_dispatch.Platform.mean_cycles
           +. plat.Platform.sched_pass.Platform.mean_cycles
           +. plat.Platform.sched_other.Platform.mean_cycles
           +. plat.Platform.ctx_switch.Platform.mean_cycles
         in
         (* Two invocations per arrival: the arrival and the timeout. *)
         Admission.create cfg
           ~overhead_ns:(Platform.cycles_to_ns plat (2. *. per_invocation)));
      account = Account.create ~ghz:plat.Platform.ghz;
      services =
        {
          Thread.now = (fun () -> 0L);
          wake = (fun _ -> ());
          sample = (fun _ _ -> 0L);
          rng = shared.workload_rng;
        };
      current = None;
      completion_ev = Engine.no_handle;
      completion_gen = 0;
      completion_armed_gen = 0;
      soft_action = Engine.Soft_invoke 0;
      complete_action = Engine.Complete 0;
      kick_action = Engine.Wake 0;
      kick_inner = Engine.Callback (fun _ -> ());
      steal_action = Engine.Callback (fun _ -> ());
      steal_armed = false;
      busy_until = 0L;
      clock_skew = 0L;
      soft_pending = false;
      idle_since = None;
      idle_total = 0L;
      task_thread = None;
      shed_list = [];
      boundary = 0;
      last_miss = 0L;
      recover_armed = false;
      sheds = 0;
      recovers = 0;
      demotes = 0;
    }
  in
  t.services <- make_services t;
  (* Cache one action value per long-lived event source so the steady-state
     hot paths (soft-IRQ requests, completion timers, kick IPIs, steal
     polls) schedule without allocating a closure per event. The timer
     vector stays a gated closure: [Apic.fire] disarms before entering the
     handler, so deferring from inside it would lose a re-armed shot. *)
  let eng = engine t in
  t.soft_action <-
    Engine.Soft_invoke (Engine.register_source eng (fun eng -> soft_entry t eng));
  t.complete_action <-
    Engine.Complete (Engine.register_source eng (fun eng -> complete_entry t eng));
  t.kick_action <-
    Engine.Wake (Engine.register_source eng (fun eng -> kick_entry t eng));
  t.kick_inner <-
    Engine.Callback
      (run_gated t (fun eng ->
           let irq_ns = sample t (platform t).Platform.irq_dispatch in
           invoke t eng ~irq_ns ~handler_ns:0L));
  t.steal_action <- Engine.Callback (fun eng -> steal_entry t eng);
  Apic.set_timer_handler cpu.Machine.apic (run_gated t (on_timer t));
  t
