(** Boot-time cycle-counter calibration (paper Section 3.4, Fig 3).

    At boot the local schedulers run a barrier-like protocol to estimate
    each CPU's TSC phase relative to CPU 0 (the wall-clock reference) and
    write predicted values into the counters to bring them as close to
    identical as possible. The measurement itself uses instruction
    sequences whose granularity exceeds a cycle, so a per-CPU residual
    error remains; the paper measures ~1000 cycles of residual agreement
    across 256 CPUs. *)

open Hrt_engine
open Hrt_hw

type result = {
  residual_cycles : float array;
      (** post-calibration offset of each CPU vs CPU 0, cycles (signed) *)
  residual_ns : Time.ns array;  (** same, in nanoseconds (signed) *)
}

val calibrate : Machine.t -> result
(** Measure and write-correct every CPU's TSC. CPU 0 is the reference and
    keeps residual 0. Deterministic per machine seed. *)

val measured_offsets : Machine.t -> float array
(** Current true offsets (cycles) of each CPU's TSC vs CPU 0 — what an
    all-knowing observer (Fig 3's histogram) sees right now. *)
