(** The fine-grain BSP microbenchmark (paper Section 6.1).

    Emulates iterative computation on a discrete domain (a vector of
    doubles), parameterized by:

    - [cpus] (P): worker CPUs, one thread per CPU (workers occupy CPUs
      1..P; CPU 0 is the interrupt-laden partition);
    - [ne] (NE): domain elements local to each CPU;
    - [nc] (NC): computations per element per iteration;
    - [nw] (NW): remote writes per iteration, ring pattern — CPU i writes
      into elements owned by CPU ((i+1) mod P);
    - [iters] (N): iterations;
    - [barrier]: whether the optional per-iteration barrier runs.

    Under {!mode.Aperiodic} the benchmark runs exactly like a conventional
    non-real-time system (and needs the barrier for correctness); under
    {!mode.Rt} all workers are admitted as a hard real-time group with a
    common (period, slice) constraint, which throttles them to
    slice/period of the CPU (Figs 13/14) and keeps them in lock-step so
    the barrier can be discarded (Figs 15/16). *)

open Hrt_engine
open Hrt_hw
open Hrt_core

type params = {
  cpus : int;
  ne : int;
  nc : int;
  nw : int;
  iters : int;
  barrier : bool;
}

val fine_grain : cpus:int -> barrier:bool -> params
(** The paper's finest granularity: tiny per-iteration work. *)

val coarse_grain : cpus:int -> barrier:bool -> params
(** The paper's coarsest granularity. *)

type mode =
  | Aperiodic
  | Rt of { period : Time.ns; slice : Time.ns; phase_correction : bool }

type result = {
  exec_time : Time.ns;  (** last worker's finish minus first worker's start *)
  start_time : Time.ns;
  end_time : Time.ns;
  iterations_done : int;  (** summed over workers; P*N on success *)
  misses : int;
  checksum : float;  (** domain checksum, for correctness comparisons *)
  admitted : bool;  (** group admission verdict (always true for Aperiodic) *)
}

val work_per_iteration : Platform.t -> params -> Time.ns
(** Mean compute time of one iteration of one worker (NE*NC element
    computations + NW remote writes), before scheduling effects. *)

val run :
  ?seed:int64 ->
  ?platform:Platform.t ->
  ?until:Time.ns ->
  ?policy:Config.policy ->
  ?obs:Hrt_obs.Sink.t ->
  params ->
  mode ->
  result
(** Build a fresh system and execute the benchmark to completion (or until
    the [until] safety horizon, default 100 s simulated). [policy] selects
    the scheduling discipline for admission and dispatch (default
    {!Config.Edf}). [obs] is the observability sink for the system
    (default {!Hrt_obs.Sink.null}); the run is fully described by its
    arguments, so concurrent runs on different domains are safe. *)
