open Hrt_engine
open Hrt_hw
open Hrt_core
open Hrt_group

type params = {
  cpus : int;
  ne : int;
  nc : int;
  nw : int;
  iters : int;
  barrier : bool;
}

(* Granularities calibrated so that, on the Phi platform, one iteration's
   work is ~8-12 us (finest) or ~500 us (coarsest), matching the regimes
   of Figs 13-16. *)
let fine_grain ~cpus ~barrier =
  { cpus; ne = 200; nc = 10; nw = 16; iters = 1000; barrier }

let coarse_grain ~cpus ~barrier =
  { cpus; ne = 2500; nc = 65; nw = 64; iters = 400; barrier }

type mode =
  | Aperiodic
  | Rt of { period : Time.ns; slice : Time.ns; phase_correction : bool }

type result = {
  exec_time : Time.ns;
  start_time : Time.ns;
  end_time : Time.ns;
  iterations_done : int;
  misses : int;
  checksum : float;
  admitted : bool;
}

let iteration_cost_model (plat : Platform.t) p =
  let flops = float_of_int (p.ne * p.nc) in
  let writes = float_of_int p.nw in
  let mean =
    (flops *. plat.Platform.flop_cost.Platform.mean_cycles)
    +. (writes *. plat.Platform.remote_write.Platform.mean_cycles)
  in
  let sigma =
    (sqrt flops *. plat.Platform.flop_cost.Platform.sigma_cycles)
    +. (sqrt writes *. plat.Platform.remote_write.Platform.sigma_cycles)
  in
  Platform.cost mean sigma

let work_per_iteration plat p =
  Platform.cycles_to_ns plat (iteration_cost_model plat p).Platform.mean_cycles

type shared_state = {
  domain : float array;  (* cpus * ne doubles *)
  mutable started : int;
  mutable finished : int;
  mutable first_start : Time.ns;
  mutable last_end : Time.ns;
  mutable iterations_done : int;
  mutable admitted_all : bool;
}

(* One worker's iteration loop as a hand-rolled state machine: compute,
   apply remote writes (ring pattern), optionally cross the barrier. *)
let worker_loop sys shared p ~index ~iter_cost ~barrier_for =
  let my_base = index * p.ne in
  let neighbour_base = (index + 1) mod p.cpus * p.ne in
  let iter = ref 0 in
  let stage = ref `Compute in
  let crossing = ref None in
  let recorded_start = ref false in
  fun ({ Thread.svc; self } as ctx : Thread.ctx) ->
    if not !recorded_start then begin
      recorded_start := true;
      let now = svc.Thread.now () in
      if shared.started = 0 then shared.first_start <- now;
      shared.started <- shared.started + 1
    end;
    let rec step () =
      if !iter >= p.iters then begin
        let now = svc.Thread.now () in
        shared.finished <- shared.finished + 1;
        if Time.(now > shared.last_end) then shared.last_end <- now;
        if shared.finished = p.cpus then Engine.stop (Scheduler.engine sys);
        Thread.Exit
      end
      else begin
        match !stage with
        | `Compute ->
          stage := `Update;
          Thread.Compute (svc.Thread.sample self iter_cost)
        | `Update ->
          (* compute_local_element over the local region, then remote
             writes into the ring neighbour's region. *)
          for j = 0 to Stdlib.min (p.ne - 1) 63 do
            let idx = my_base + j in
            shared.domain.(idx) <-
              (shared.domain.(idx) *. 0.5) +. float_of_int ((!iter + j) mod 7)
          done;
          for w = 0 to p.nw - 1 do
            let idx = neighbour_base + (w mod p.ne) in
            shared.domain.(idx) <- shared.domain.(idx) +. 1.0
          done;
          shared.iterations_done <- shared.iterations_done + 1;
          if p.barrier then begin
            crossing := Some (Gbarrier.cross barrier_for);
            stage := `Barrier;
            step ()
          end
          else begin
            incr iter;
            stage := `Compute;
            step ()
          end
        | `Barrier -> (
          match !crossing with
          | None -> assert false
          | Some body -> (
            match body ctx with
            | Thread.Exit ->
              crossing := None;
              incr iter;
              stage := `Compute;
              step ()
            | op -> op))
      end
    in
    step ()

let run ?(seed = 42L) ?(platform = Platform.phi) ?(until = Time.sec 100)
    ?(policy = Config.Edf) ?obs p mode =
  if p.cpus < 1 then invalid_arg "Bsp.run: cpus < 1";
  let config =
    { Config.default with Config.strict_reservations = false; policy }
  in
  let sys =
    Scheduler.create ~seed ~num_cpus:(p.cpus + 1) ~config ?obs platform
  in
  let shared =
    {
      domain = Array.make (p.cpus * p.ne) 0.;
      started = 0;
      finished = 0;
      first_start = 0L;
      last_end = 0L;
      iterations_done = 0;
      admitted_all = true;
    }
  in
  let iter_cost = iteration_cost_model platform p in
  let barrier = Gbarrier.create sys ~parties:p.cpus in
  let start_barrier = Gbarrier.create sys ~parties:p.cpus in
  let group = Group.create sys ~name:"bsp" in
  let session = ref None in
  let prelude index =
    match mode with
    | Aperiodic -> [ Gbarrier.cross start_barrier ]
    | Rt { period; slice; phase_correction } ->
      [
        Group.join group;
        Gbarrier.cross start_barrier;
        (fun _ctx ->
          (if !session = None then
             session :=
               Some
                 (Group_sched.prepare ~phase_correction group
                    (Constraints.periodic ~period ~slice ())));
          ignore index;
          Thread.Exit);
        (let body = ref None in
         fun ctx ->
           let b =
             match !body with
             | Some b -> b
             | None ->
               let b =
                 Group_sched.change_constraints (Option.get !session)
                   ~on_result:(fun v ->
                     if not (Admission.admitted v) then
                       shared.admitted_all <- false)
               in
               body := Some b;
               b
           in
           b ctx);
      ]
  in
  for i = 0 to p.cpus - 1 do
    let cpu = i + 1 in
    ignore
      (Scheduler.spawn sys ~name:(Printf.sprintf "bsp-%d" i) ~cpu ~bound:true
         (Program.seq
            (prelude i
            @ [ worker_loop sys shared p ~index:i ~iter_cost ~barrier_for:barrier ])))
  done;
  let miss_before = Scheduler.total_misses sys in
  Scheduler.run ~until sys;
  (* The group registry is process-global: drop the reference so this
     run's whole simulated system can be collected. *)
  Group.dispose group;
  let checksum = Array.fold_left ( +. ) 0. shared.domain in
  {
    exec_time =
      (if Time.(shared.last_end > shared.first_start) then
         Time.(shared.last_end - shared.first_start)
       else 0L);
    start_time = shared.first_start;
    end_time = shared.last_end;
    iterations_done = shared.iterations_done;
    misses = Scheduler.total_misses sys - miss_before;
    checksum;
    admitted = shared.admitted_all;
  }
