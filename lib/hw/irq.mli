(** External (device) interrupts with steering and partitioning.

    External interrupts can be steered to any CPU (paper Section 3.5); the
    default configuration routes everything to CPU 0, partitioning the
    machine into an interrupt-laden partition (CPU 0) and an interrupt-free
    partition (everything else). The handler behaviour itself belongs to the
    kernel, which installs a dispatch hook; this module only models arrival
    processes and routing. *)

open Hrt_engine

type t

type device

val create : engine:Engine.t -> apic_of:(int -> Apic.t) -> t
(** [apic_of cpu] resolves the APIC that receives a vector routed to
    [cpu]. *)

val set_dispatch : t -> (cpu:int -> device -> Engine.t -> unit) -> unit
(** Install the kernel's interrupt entry point. Called once per delivered
    interrupt, on the target CPU's APIC path (so PPR gating has already been
    applied). *)

val add_device :
  t ->
  name:string ->
  prio:int ->
  mean_interval:Time.ns ->
  handler_cost:Platform.cost ->
  device
(** Declare a device raising interrupts with exponential inter-arrival
    times. The device is initially steered to CPU 0 and idle until
    {!start}. *)

val steer : t -> device -> cpus:int list -> unit
(** Route the device to the given CPUs (round-robin across them). Raises
    [Invalid_argument] on an empty list. *)

val start : t -> device -> unit
(** Begin generating interrupts. *)

val stop : t -> device -> unit

val device_name : device -> string
val handler_cost : device -> Platform.cost
val delivered : device -> int
(** Interrupts delivered (handed to an APIC) so far. *)
