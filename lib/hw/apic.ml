open Hrt_engine

(* Interrupt delivery and one-shot timer reprogramming run once per
   scheduler decision: hot. Masked-delivery queueing and the pending
   flush are the cold slow path. *)
[@@@hrt.hot]

let sched_prio = 15
let rt_ppr = 14

type pending = { prio : int; seq : int; action : Engine.action }

(* Sentinel for "timer disarmed": arming the one-shot then stores a plain
   int64 deadline, no option box per reprogram. *)
let no_deadline = Int64.min_int

type t = {
  engine : Engine.t;
  rng : Rng.t;
  tick_ns : int;
  tsc_deadline : bool;
  jitter_max_cycles : float;
  ghz : float;
  mutable ppr : int;
  mutable timer_handler : Engine.t -> unit;
  mutable timer_ev : Engine.handle;
  mutable timer_at : Time.ns; (* [no_deadline] when disarmed *)
  mutable timer_gen : int;
      (* Bumped on every arm/cancel. A one-shot timer holds exactly one
         shot in flight; the fire event validates its generation at
         delivery so a reprogrammed-away shot is dropped even if its
         queue entry could not be cancelled precisely. *)
  mutable armed_gen : int; (* generation of the armed shot, if any *)
  mutable fire_action : Engine.action;
      (* The single cached timer-expiry action: every arm schedules this
         same value, so reprogramming the one-shot allocates no closure. *)
  mutable pending : pending list; (* unsorted; flushed by priority *)
  mutable pending_seq : int;
  mutable extra_jitter_ns : Time.ns; (* fault-injected latency, uniform max *)
  mutable extra_rng : Rng.t option;
}

(* Timer expiry: drop stale generations (reprogrammed or cancelled shots
   whose queue entry outlived them), otherwise disarm and enter the
   installed vector. *)
let fire t eng =
  if t.armed_gen = t.timer_gen && t.timer_at <> no_deadline then begin
    t.timer_ev <- Engine.no_handle;
    t.timer_at <- no_deadline;
    t.timer_handler eng
  end

let[@hrt.cold] create ~engine ~rng ~tick_ns ~tsc_deadline ~jitter_max_cycles ~ghz =
  let t =
    {
      engine;
      rng;
      tick_ns;
      tsc_deadline;
      jitter_max_cycles;
      ghz;
      ppr = 0;
      timer_handler = (fun _ -> ());
      timer_ev = Engine.no_handle;
      timer_at = no_deadline;
      timer_gen = 0;
      armed_gen = -1;
      fire_action = Engine.Timer_fire 0;
      pending = [];
      pending_seq = 0;
      extra_jitter_ns = 0L;
      extra_rng = None;
    }
  in
  t.fire_action <-
    Engine.Timer_fire (Engine.register_source engine (fun eng -> fire t eng));
  t

let set_timer_handler t f = t.timer_handler <- f

let set_timer_jitter t ?rng ~max_ns () =
  t.extra_jitter_ns <- Time.max 0L max_ns;
  t.extra_rng <- rng

let delivery_latency t =
  let base =
    if t.jitter_max_cycles <= 0. then 0L
    else begin
      let cycles = Rng.float t.rng *. t.jitter_max_cycles in
      Time.ns_of_cycles ~ghz:t.ghz (Int64.of_float cycles)
    end
  in
  (* Injected latency draws from its own stream so arming/clearing a fault
     plan never shifts the hardware jitter sequence. *)
  if Time.(t.extra_jitter_ns <= 0L) then base
  else
    let rng = match t.extra_rng with Some r -> r | None -> t.rng in
    Time.(base + Rng.range_ns rng 0L t.extra_jitter_ns)

let cancel_timer t =
  t.timer_gen <- t.timer_gen + 1;
  Engine.cancel t.engine t.timer_ev;
  t.timer_ev <- Engine.no_handle;
  t.timer_at <- no_deadline

let arm t ~at =
  cancel_timer t;
  let now = Engine.now t.engine in
  let fire_at =
    if t.tsc_deadline then Time.max at now
    else begin
      (* Round the countdown down to whole ticks: conservative (early). *)
      let delta = Time.max Time.(at - now) 0L in
      let ticks = Int64.div delta (Int64.of_int t.tick_ns) in
      let ticks = if Int64.compare ticks 1L < 0 then 1L else ticks in
      Time.(now + Int64.mul ticks (Int64.of_int t.tick_ns))
    end
  in
  let fire_at = Time.(fire_at + delivery_latency t) in
  t.timer_at <- fire_at;
  t.armed_gen <- t.timer_gen;
  t.timer_ev <- Engine.schedule_action t.engine ~at:fire_at t.fire_action

let timer_armed t = t.timer_at <> no_deadline

(* Option-building accessor for tests and diagnostics; the scheduler's
   per-decision check is [timer_armed]. *)
let[@hrt.cold] timer_armed_at t =
  if t.timer_at = no_deadline then None else Some t.timer_at

let ppr t = t.ppr

let[@hrt.cold] flush t eng =
  let deliverable, still =
    List.partition (fun p -> p.prio > t.ppr) t.pending
  in
  t.pending <- still;
  let ordered =
    List.sort
      (fun a b ->
        if a.prio <> b.prio then compare b.prio a.prio else compare a.seq b.seq)
      deliverable
  in
  List.iter
    (fun p -> ignore (Engine.schedule_action_after eng ~after:0L p.action))
    ordered

let set_ppr t eng prio =
  let old = t.ppr in
  t.ppr <- prio;
  if prio < old then flush t eng

let deliver t eng ~prio action =
  if prio > t.ppr then
    ignore (Engine.schedule_action_after eng ~after:(delivery_latency t) action)
  else begin
    t.pending <-
      ({ prio; seq = t.pending_seq; action } :: t.pending
      [@hrt.alloc_ok "masked delivery is the slow path; one record per \
                      deferred interrupt"]);
    t.pending_seq <- t.pending_seq + 1
  end

let pending_count t = List.length t.pending
