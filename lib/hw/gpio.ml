open Hrt_engine

let pins = 8

type t = {
  engine : Engine.t;
  levels : bool array;
  trace : Trace.t;
  series : Trace.series array;
}

let create engine =
  let trace = Trace.create () in
  let series =
    Array.init pins (fun i -> Trace.series trace (Printf.sprintf "gpio.%d" i))
  in
  { engine; levels = Array.make pins false; trace; series }

let check_pin pin =
  if pin < 0 || pin >= pins then invalid_arg "Gpio: pin out of range"

let set t ~pin v =
  check_pin pin;
  if t.levels.(pin) <> v then begin
    t.levels.(pin) <- v;
    Trace.record t.series.(pin)
      ~time:(Engine.now t.engine)
      (if v then 1.0 else 0.0)
  end

let level t ~pin =
  check_pin pin;
  t.levels.(pin)

let transitions t ~pin =
  check_pin pin;
  let s = t.series.(pin) in
  let times = Trace.times s and vals = Trace.values s in
  Array.init (Array.length times) (fun i -> (times.(i), vals.(i) > 0.5))

let high_intervals t ~pin =
  let trans = transitions t ~pin in
  let acc = ref [] in
  let rise = ref None in
  Array.iter
    (fun (tm, v) ->
      match (v, !rise) with
      | true, None -> rise := Some tm
      | false, Some r ->
        acc := (r, tm) :: !acc;
        rise := None
      | true, Some _ | false, None -> ())
    trans;
  Array.of_list (List.rev !acc)
