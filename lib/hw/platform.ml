open Hrt_engine

type cost = { mean_cycles : float; sigma_cycles : float }

let cost mean_cycles sigma_cycles = { mean_cycles; sigma_cycles }

type t = {
  name : string;
  ghz : float;
  num_cpus : int;
  cores : int;
  boot_skew_ns : int;
  cal_error_mu : float;
  cal_error_sigma : float;
  apic_tick_ns : int;
  tsc_deadline : bool;
  ipi_latency : cost;
  irq_dispatch : cost;
  sched_pass : cost;
  ctx_switch : cost;
  sched_other : cost;
  admission_cost : cost;
  timer_program : cost;
  group_join_step : cost;
  group_elect_step : cost;
  group_admit_step : cost;
  phase_correct_step : cost;
  barrier_arrive : cost;
  barrier_release_step : cost;
  timer_fire_jitter_max : float;
  flop_cost : cost;
  remote_write : cost;
  steal_check : cost;
}

(* Calibration notes (all figures refer to the paper):
   - Phi scheduler software overhead ~6000 cycles/invocation, about half in
     the scheduling pass (Fig 5a, Section 5.3); two invocations per period
     put the feasibility edge at ~10 us (Fig 6).
   - R415 overhead lower in cycles and much lower in time (Fig 5b); edge
     ~4 us at 2.2 GHz (Fig 7).
   - Group admission at 255 threads: join ~2.5e5, election ~4e4, distributed
     admission ~4.5e6, final barrier + phase correction ~2.5e6 cycles
     (Fig 10), ~8e6 cycles (~6.2 ms) total.
   - Barrier release stagger delta ~175 cycles/position reproduces the
     group-size-dependent bias of Figs 11/12 (~4.5e4 cycles at 255). *)

let phi =
  {
    name = "phi";
    ghz = 1.3;
    num_cpus = 256;
    cores = 64;
    boot_skew_ns = 2_000_000;
    cal_error_mu = 300.;
    cal_error_sigma = 180.;
    apic_tick_ns = 25;
    tsc_deadline = false;
    ipi_latency = cost 2_000. 300.;
    irq_dispatch = cost 1_500. 350.;
    sched_pass = cost 3_000. 300.;
    ctx_switch = cost 1_200. 120.;
    sched_other = cost 300. 40.;
    admission_cost = cost 300_000. 15_000.;
    timer_program = cost 300. 30.;
    group_join_step = cost 1_000. 100.;
    group_elect_step = cost 160. 20.;
    group_admit_step = cost 14_000. 1_400.;
    phase_correct_step = cost 9_500. 950.;
    barrier_arrive = cost 300. 30.;
    barrier_release_step = cost 175. 15.;
    timer_fire_jitter_max = 300.;
    flop_cost = cost 4. 0.2;
    remote_write = cost 250. 30.;
    steal_check = cost 800. 100.;
  }

let r415 =
  {
    name = "r415";
    ghz = 2.2;
    num_cpus = 8;
    cores = 8;
    boot_skew_ns = 400_000;
    cal_error_mu = 150.;
    cal_error_sigma = 80.;
    apic_tick_ns = 10;
    tsc_deadline = false;
    ipi_latency = cost 1_200. 200.;
    irq_dispatch = cost 900. 200.;
    sched_pass = cost 1_700. 180.;
    ctx_switch = cost 800. 90.;
    sched_other = cost 200. 30.;
    admission_cost = cost 220_000. 11_000.;
    timer_program = cost 200. 20.;
    group_join_step = cost 700. 70.;
    group_elect_step = cost 120. 15.;
    group_admit_step = cost 9_000. 900.;
    phase_correct_step = cost 6_000. 600.;
    barrier_arrive = cost 180. 20.;
    barrier_release_step = cost 120. 12.;
    timer_fire_jitter_max = 180.;
    flop_cost = cost 2. 0.1;
    remote_write = cost 120. 15.;
    steal_check = cost 500. 60.;
  }

let cycles_to_ns t cycles =
  if cycles <= 0. then 0L
  else Int64.of_float (Float.max 1. (Float.ceil (cycles /. t.ghz)))

let ns_to_cycles t ns = Int64.to_float ns *. t.ghz

let sample_cycles t rng c =
  ignore t;
  if c.sigma_cycles <= 0. then c.mean_cycles
  else begin
    let x = Rng.gaussian rng ~mu:c.mean_cycles ~sigma:c.sigma_cycles in
    Float.max (c.mean_cycles /. 4.) x
  end

let sample t rng c = cycles_to_ns t (sample_cycles t rng c)

let pp fmt t =
  Format.fprintf fmt "%s: %d CPUs (%d cores) @ %.1f GHz" t.name t.num_cpus
    t.cores t.ghz
