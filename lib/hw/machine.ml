open Hrt_engine

type cpu = {
  id : int;
  core : int;
  tsc : Tsc.t;
  apic : Apic.t;
  rng : Rng.t;
}

type t = {
  engine : Engine.t;
  platform : Platform.t;
  cpus : cpu array;
  gpio : Gpio.t;
  irq : Irq.t;
  rng : Rng.t;
}

let create ?(seed = 42L) ?num_cpus platform =
  let engine = Engine.create ~seed () in
  let rng = Rng.split (Engine.rng engine) in
  let n =
    match num_cpus with
    | None -> platform.Platform.num_cpus
    | Some n when n >= 1 -> n
    | Some n -> invalid_arg (Printf.sprintf "Machine.create: num_cpus %d" n)
  in
  let threads_per_core =
    Stdlib.max 1 (platform.Platform.num_cpus / platform.Platform.cores)
  in
  let skew_rng = Rng.split rng in
  let cpus =
    Array.init n (fun id ->
        let start_skew =
          if id = 0 then 0L
          else Rng.range_ns skew_rng 0L (Time.ns platform.Platform.boot_skew_ns)
        in
        {
          id;
          core = id / threads_per_core;
          tsc = Tsc.create ~ghz:platform.Platform.ghz ~start_skew;
          apic =
            Apic.create ~engine ~rng:(Rng.split rng)
              ~tick_ns:platform.Platform.apic_tick_ns
              ~tsc_deadline:platform.Platform.tsc_deadline
              ~jitter_max_cycles:platform.Platform.timer_fire_jitter_max
              ~ghz:platform.Platform.ghz;
          rng = Rng.split rng;
        })
  in
  let gpio = Gpio.create engine in
  let irq = Irq.create ~engine ~apic_of:(fun i -> cpus.(i).apic) in
  { engine; platform; cpus; gpio; irq; rng }

let num_cpus t = Array.length t.cpus

let cpu t i = t.cpus.(i)

let sample t (c : cpu) cost = Platform.sample t.platform c.rng cost

let read_tsc t (c : cpu) = Tsc.read c.tsc ~now:(Engine.now t.engine)
