(** Per-CPU advanced programmable interrupt controller.

    Models the three APIC behaviours the scheduler depends on (paper
    Sections 3.3 and 3.5):

    - a one-shot timer with tick-granularity {e conservative} programming
      (resolution mismatch fires the interrupt earlier, never later), or
      cycle-exact "TSC-deadline" mode where supported;
    - a hardware task/processor priority register (PPR): interrupts at or
      below the current priority are held pending and delivered when the
      priority drops — this is how interrupts are steered {e away} from hard
      real-time threads;
    - interrupt delivery latency, modelled as a small uniform jitter.

    Priorities are 0..15; scheduling interrupts (timer, kick IPI) use
    {!sched_prio} = 15 and are never masked by the scheduler, which sets the
    PPR to at most {!rt_ppr} = 14 while a real-time thread runs. *)

open Hrt_engine

type t

val sched_prio : int
(** Priority of scheduling-related interrupts (timer, kick). *)

val rt_ppr : int
(** PPR installed while a hard real-time thread runs: only scheduling
    interrupts get through. *)

val create :
  engine:Engine.t ->
  rng:Rng.t ->
  tick_ns:int ->
  tsc_deadline:bool ->
  jitter_max_cycles:float ->
  ghz:float ->
  t

val set_timer_handler : t -> (Engine.t -> unit) -> unit
(** Install the timer-interrupt vector (the local scheduler entry). *)

val set_timer_jitter : t -> ?rng:Rng.t -> max_ns:Time.ns -> unit -> unit
(** Add a fault-injected uniform [0, max_ns) delivery latency on top of
    the platform's own jitter (zero [max_ns] clears it). Draws come from
    [rng] when given — fault plans pass a plan-seeded stream so the
    platform's jitter sequence is untouched. *)

val arm : t -> at:Time.ns -> unit
(** Program the one-shot to fire at wall-clock [at] (cancelling any earlier
    programming). Without TSC-deadline mode the countdown is rounded down to
    whole ticks so the interrupt never fires later than [at] minus delivery
    latency; a minimum of one tick applies. Delivery latency is then added. *)

val cancel_timer : t -> unit

val timer_armed : t -> bool
(** Whether a one-shot is currently programmed. Allocation-free; this is
    the check scheduler hot paths use. *)

val timer_armed_at : t -> Time.ns option
(** The wall-clock instant the one-shot will fire (post-quantization,
    pre-latency), if armed. Builds an option: tests and diagnostics
    only. *)

val ppr : t -> int

val set_ppr : t -> Engine.t -> int -> unit
(** Change the processor priority; lowering it delivers any pending
    interrupts that are now unmasked, highest priority first. *)

val deliver : t -> Engine.t -> prio:int -> Engine.action -> unit
(** Present an interrupt to this CPU. Schedules the action (as a fresh
    engine event at the current instant plus delivery latency) if
    [prio > ppr], otherwise holds it pending. Callers on hot paths pass a
    cached action so delivery allocates nothing. *)

val pending_count : t -> int
