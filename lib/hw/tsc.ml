open Hrt_engine

type t = { ghz : float; mutable offset : int64 }

let create ~ghz ~start_skew =
  (* Counting began at [start_skew], so the counter lags an ideal time-zero
     counter by cycles(start_skew). *)
  { ghz; offset = Int64.neg (Time.cycles_of_ns ~ghz start_skew) }

let ideal t now = Time.cycles_of_ns ~ghz:t.ghz now

let read t ~now = Int64.add (ideal t now) t.offset

let write t ~now v = t.offset <- Int64.sub v (ideal t now)

let adjust t delta = t.offset <- Int64.add t.offset delta

let offset_cycles t = t.offset

let ghz t = t.ghz

let ns_of_reading t v = Time.ns_of_cycles ~ghz:t.ghz v

let reading_of_ns t ns = Time.cycles_of_ns ~ghz:t.ghz ns
