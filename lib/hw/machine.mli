(** A simulated shared-memory node: engine + CPUs + interrupt fabric.

    "CPU" means an individual hardware thread (hyperthread), as in the
    paper. Each CPU owns a TSC that started with a boot-time stagger and an
    APIC; the machine also carries the GPIO port used for external
    verification and the device-interrupt fabric. *)

open Hrt_engine

type cpu = {
  id : int;
  core : int;  (** physical core this hardware thread belongs to *)
  tsc : Tsc.t;
  apic : Apic.t;
  rng : Rng.t;  (** per-CPU stream for cost sampling *)
}

type t = {
  engine : Engine.t;
  platform : Platform.t;
  cpus : cpu array;
  gpio : Gpio.t;
  irq : Irq.t;
  rng : Rng.t;
}

val create : ?seed:int64 -> ?num_cpus:int -> Platform.t -> t
(** Build a machine. [num_cpus] overrides the platform CPU count (for
    scaled-down experiments); it must be at least 1. CPU 0's TSC starts at
    boot time zero (it is the wall-clock reference); other CPUs start with a
    uniform stagger in [0, boot_skew_ns). *)

val num_cpus : t -> int
val cpu : t -> int -> cpu

val sample : t -> cpu -> Platform.cost -> Time.ns
(** Sample a platform cost using the CPU's RNG stream. *)

val read_tsc : t -> cpu -> int64
(** The CPU's cycle counter right now. *)
