open Hrt_engine

(* Device arrivals run inside the event loop; the recurring arrival event
   reuses a cached action, but per-delivery dispatch legitimately
   allocates one closure (see [pull]). *)
[@@@hrt.hot]

type device = {
  name : string;
  prio : int;
  mean_interval : Time.ns;
  handler_cost : Platform.cost;
  mutable targets : int list;
  mutable next_target : int; (* round-robin index *)
  mutable running : bool;
  mutable delivered : int;
  rng : Rng.t;
  mutable pull_action : Engine.action;
      (* Cached action for the device's recurring arrival event. *)
}

type t = {
  engine : Engine.t;
  apic_of : int -> Apic.t;
  mutable dispatch : cpu:int -> device -> Engine.t -> unit;
  mutable devices : device list;
}

let[@hrt.cold] create ~engine ~apic_of =
  { engine; apic_of; dispatch = (fun ~cpu:_ _ _ -> ()); devices = [] }

let set_dispatch t f = t.dispatch <- f

let steer _t d ~cpus =
  if cpus = [] then invalid_arg "Irq.steer: empty CPU list";
  d.targets <- cpus;
  d.next_target <- 0

let pick_target d =
  let n = List.length d.targets in
  let cpu = List.nth d.targets (d.next_target mod n) in
  d.next_target <- (d.next_target + 1) mod n;
  cpu

(* An arrival: steer to the next target CPU and present the interrupt to
   its APIC, then draw the gap to the next arrival. The dispatch closure
   captures the chosen CPU, so it is allocated per delivery; the recurring
   arrival event itself reuses the device's cached action. *)
let rec pull t d eng =
  if d.running then begin
    let cpu = pick_target d in
    d.delivered <- d.delivered + 1;
    Apic.deliver (t.apic_of cpu) eng ~prio:d.prio
      (Engine.Callback
         (fun eng -> t.dispatch ~cpu d eng)
       [@hrt.alloc_ok "one closure per delivery: the handler must capture \
                       the steered CPU"]);
    arm t d
  end

and arm t d =
  let gap =
    Int64.of_float
      (Float.max 1. (Rng.exponential d.rng ~mean:(Int64.to_float d.mean_interval)))
  in
  ignore (Engine.schedule_action_after t.engine ~after:gap d.pull_action)

let[@hrt.cold] add_device t ~name ~prio ~mean_interval ~handler_cost =
  let d =
    {
      name;
      prio;
      mean_interval;
      handler_cost;
      targets = [ 0 ];
      next_target = 0;
      running = false;
      delivered = 0;
      rng = Rng.split (Engine.rng t.engine);
      pull_action = Engine.Irq_pull 0;
    }
  in
  d.pull_action <-
    Engine.Irq_pull (Engine.register_source t.engine (fun eng -> pull t d eng));
  t.devices <- d :: t.devices;
  d

let start t d =
  if not d.running then begin
    d.running <- true;
    arm t d
  end

let stop _t d = d.running <- false

let device_name d = d.name
let handler_cost d = d.handler_cost
let delivered d = d.delivered
