open Hrt_engine

type device = {
  name : string;
  prio : int;
  mean_interval : Time.ns;
  handler_cost : Platform.cost;
  mutable targets : int list;
  mutable next_target : int; (* round-robin index *)
  mutable running : bool;
  mutable delivered : int;
  rng : Rng.t;
}

type t = {
  engine : Engine.t;
  apic_of : int -> Apic.t;
  mutable dispatch : cpu:int -> device -> Engine.t -> unit;
  mutable devices : device list;
}

let create ~engine ~apic_of =
  { engine; apic_of; dispatch = (fun ~cpu:_ _ _ -> ()); devices = [] }

let set_dispatch t f = t.dispatch <- f

let add_device t ~name ~prio ~mean_interval ~handler_cost =
  let d =
    {
      name;
      prio;
      mean_interval;
      handler_cost;
      targets = [ 0 ];
      next_target = 0;
      running = false;
      delivered = 0;
      rng = Rng.split (Engine.rng t.engine);
    }
  in
  t.devices <- d :: t.devices;
  d

let steer _t d ~cpus =
  if cpus = [] then invalid_arg "Irq.steer: empty CPU list";
  d.targets <- cpus;
  d.next_target <- 0

let pick_target d =
  let n = List.length d.targets in
  let cpu = List.nth d.targets (d.next_target mod n) in
  d.next_target <- (d.next_target + 1) mod n;
  cpu

let rec arm t d =
  let gap =
    Int64.of_float
      (Float.max 1. (Rng.exponential d.rng ~mean:(Int64.to_float d.mean_interval)))
  in
  ignore
    (Engine.schedule_after t.engine ~after:gap (fun eng ->
         if d.running then begin
           let cpu = pick_target d in
           d.delivered <- d.delivered + 1;
           Apic.deliver (t.apic_of cpu) eng ~prio:d.prio (fun eng ->
               t.dispatch ~cpu d eng);
           arm t d
         end))

let start t d =
  if not d.running then begin
    d.running <- true;
    arm t d
  end

let stop _t d = d.running <- false

let device_name d = d.name
let handler_cost d = d.handler_cost
let delivered d = d.delivered
