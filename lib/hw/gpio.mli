(** Parallel-port GPIO + "oscilloscope" capture.

    The paper verifies hard real-time behaviour externally by toggling
    parallel-port pins from inside the scheduler and watching them on a
    scope (Section 5.2, Fig 4). We record every pin transition with its
    simulated timestamp; the harness then computes the duty cycle and edge
    jitter ("fuzz") that the scope photograph shows. *)

open Hrt_engine

type t

val pins : int
(** Number of output pins (8, as on a parallel port). *)

val create : Engine.t -> t

val set : t -> pin:int -> bool -> unit
(** Drive a pin; transitions (only) are recorded with the current time. *)

val level : t -> pin:int -> bool

val transitions : t -> pin:int -> (Time.ns * bool) array
(** All recorded transitions of a pin, in time order. *)

val high_intervals : t -> pin:int -> (Time.ns * Time.ns) array
(** Maximal [(rise, fall)] intervals; an unterminated final high level is
    dropped. *)
