(** Platform descriptions with calibrated cost constants.

    The two presets mirror the paper's testbeds (Section 5.1):

    - {!phi}: Colfax KNL Ninja — Intel Xeon Phi 7210, 64 cores x 4 hardware
      threads = 256 CPUs at 1.3 GHz. Scheduler software overhead ~6000
      cycles per invocation (Fig 5a), feasibility edge ~10 us (Fig 6).
    - {!r415}: Dell R415 — dual AMD 4122, 8 CPUs at 2.2 GHz. Lower overhead,
      feasibility edge ~4 us (Figs 5b, 7).

    Costs are expressed in cycles as (mean, sigma) pairs; sampling converts
    to nanoseconds through the platform clock. Absolute values are
    calibrated so magnitudes land where the paper reports them; the
    experiments only rely on their order of magnitude and relative size. *)

open Hrt_engine

type cost = { mean_cycles : float; sigma_cycles : float }

val cost : float -> float -> cost
(** [cost mean sigma]. *)

type t = {
  name : string;
  ghz : float;
  num_cpus : int;
  cores : int;  (** physical cores; [num_cpus / cores] hardware threads each *)
  boot_skew_ns : int;  (** max per-CPU TSC start stagger at boot *)
  cal_error_mu : float;  (** TSC calibration residual, cycles (mean) *)
  cal_error_sigma : float;  (** TSC calibration residual, cycles (sigma) *)
  apic_tick_ns : int;  (** one-shot timer resolution *)
  tsc_deadline : bool;  (** APIC supports TSC-deadline mode *)
  ipi_latency : cost;  (** kick IPI cross-CPU latency *)
  irq_dispatch : cost;  (** hardware + entry cost of taking an interrupt *)
  sched_pass : cost;  (** one local-scheduler pass (the "Resched" bar) *)
  ctx_switch : cost;  (** context-switch cost (the "Switch" bar) *)
  sched_other : cost;  (** residual bookkeeping (the "Other" bar) *)
  admission_cost : cost;  (** local admission control, constant (Fig 10c) *)
  timer_program : cost;  (** programming the APIC one-shot *)
  (* Group operation step costs (per member; simple linear schemes, §4.3). *)
  group_join_step : cost;
  group_elect_step : cost;
  group_admit_step : cost;
  phase_correct_step : cost;
      (** per-member bookkeeping in the final barrier + phase-correction
          step of group admission (Fig 10d) *)
  barrier_arrive : cost;  (** lean spin-barrier per-member serialized cost *)
  barrier_release_step : cost;  (** per-thread stagger leaving a barrier *)
  timer_fire_jitter_max : float;
      (** uniform [0, max] cycles of hardware timer-delivery latency *)
  (* Memory-system costs for the BSP benchmark (§6.1). *)
  flop_cost : cost;  (** one compute_local_element unit *)
  remote_write : cost;  (** one write_remote_element_on *)
  steal_check : cost;  (** one work-stealing probe *)
}

val phi : t
val r415 : t

val cycles_to_ns : t -> float -> Time.ns
(** Convert a cycle quantity to nanoseconds on this platform's clock,
    rounded up to at least 1 ns for positive inputs. *)

val ns_to_cycles : t -> Time.ns -> float

val sample : t -> Rng.t -> cost -> Time.ns
(** Draw a cost: Gaussian (mean, sigma) truncated below at mean/4, in
    cycles, converted to ns. Deterministic given the RNG stream. *)

val sample_cycles : t -> Rng.t -> cost -> float

val pp : Format.formatter -> t -> unit
