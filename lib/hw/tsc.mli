(** Per-CPU cycle counter (TSC) model.

    Each CPU's counter runs at the platform frequency ("constant TSC") but
    starts at a slightly different moment of the boot sequence, so raw
    counters disagree by a per-CPU offset. The counter is writable, which is
    how the boot-time calibration (paper Section 3.4, Fig 3) corrects the
    skew on machines that support it. *)

open Hrt_engine

type t

val create : ghz:float -> start_skew:Time.ns -> t
(** A counter that began counting [start_skew] after simulated time zero. *)

val read : t -> now:Time.ns -> int64
(** Value of the counter at wall-clock [now]. *)

val write : t -> now:Time.ns -> int64 -> unit
(** Set the counter so that a read at [now] returns the written value. *)

val adjust : t -> int64 -> unit
(** Add a signed delta to the counter. *)

val offset_cycles : t -> int64
(** Current offset relative to an ideal counter started at time zero
    (0 for a perfectly synchronized CPU). *)

val ghz : t -> float

val ns_of_reading : t -> int64 -> Time.ns
(** Convert a counter value back to estimated wall-clock nanoseconds using
    the calibrated frequency (the scheduler's view of time, §3.3). *)

val reading_of_ns : t -> Time.ns -> int64
