open Hrt_engine

(* SMI storms are the paper's worst-case interference: generation,
   stealing, and rescheduling run inside the event loop and must not
   allocate. *)
[@@@hrt.hot]

type config = {
  mean_interval : Time.ns;
  duration_mean : Time.ns;
  duration_jitter : float;
}

let default_config =
  { mean_interval = Time.ms 500; duration_mean = Time.us 80; duration_jitter = 0.2 }

type t = {
  engine : Engine.t;
  config : config;
  rng : Rng.t;
  mutable stopped : bool;
  mutable count : int;
  mutable stolen : Time.ns;
  mutable fire_action : Engine.action;
      (* One registered source per generator: the self-rescheduling expiry
         event reuses this cached action, so a storm allocates nothing. *)
}

let draw_interval t =
  let x = Rng.exponential t.rng ~mean:(Int64.to_float t.config.mean_interval) in
  Int64.of_float (Float.max 1. x)

let draw_duration t =
  let mu = Int64.to_float t.config.duration_mean in
  let sigma = mu *. t.config.duration_jitter in
  let x = Rng.gaussian t.rng ~mu ~sigma in
  Int64.of_float (Float.max (mu /. 4.) x)

(* Freeze [now, now + duration) and charge this generator only for the
   part not already covered by an open freeze window: when windows merge,
   the overlap was stolen once already, so counting the full duration
   again would overstate [total_stolen]. The overlap must be measured
   before the freeze extends the window. *)
let steal t eng ~duration =
  let now = Engine.now eng in
  let until = Time.(now + duration) in
  let already = Engine.frozen_overlap eng now until in
  t.count <- t.count + 1;
  t.stolen <- Time.(t.stolen + Time.max 0L (duration - already));
  Engine.freeze eng ~until

let rec fire t eng =
  if not t.stopped then begin
    steal t eng ~duration:(draw_duration t);
    schedule_next t
  end

and schedule_next t =
  ignore
    (Engine.schedule_action_after t.engine ~after:(draw_interval t)
       t.fire_action)

let[@hrt.cold] install ?rng engine config =
  let t =
    {
      engine;
      config;
      rng = (match rng with Some r -> r | None -> Rng.split (Engine.rng engine));
      stopped = false;
      count = 0;
      stolen = 0L;
      fire_action = Engine.Smi_fire 0;
    }
  in
  t.fire_action <-
    Engine.Smi_fire (Engine.register_source engine (fun eng -> fire t eng));
  schedule_next t;
  t

let stop t = t.stopped <- true

let inject eng ~duration = Engine.freeze eng ~until:Time.(Engine.now eng + duration)

let inject_on t ~duration = steal t t.engine ~duration

let count t = t.count
let total_stolen t = t.stolen
