(** System management interrupts — "missing time" (paper Section 3.6).

    When the firmware raises an SMI, {e all} CPUs stop, one executes the
    curtained handler, and then everything resumes; kernel software only
    observes that the cycle counter jumped forward. We model this with the
    engine's freeze mechanism: a freeze window defers every event inside it
    and is subtracted from thread progress accounting. *)

open Hrt_engine

type config = {
  mean_interval : Time.ns;  (** exponential inter-arrival mean *)
  duration_mean : Time.ns;
  duration_jitter : float;  (** relative sigma of duration, e.g. 0.2 *)
}

val default_config : config
(** Rare, modest SMIs: mean interval 500 ms, duration 80 us +- 20%. *)

type t

val install : ?rng:Rng.t -> Engine.t -> config -> t
(** Start generating SMIs on the given engine (first arrival one
    exponential draw from now). [rng] overrides the generator's stream
    (default: a split of the engine's); fault plans pass a plan-seeded
    stream so injected interference never perturbs workload draws. *)

val stop : t -> unit
(** No further SMIs after the current one completes. *)

val inject : Engine.t -> duration:Time.ns -> unit
(** Force one SMI right now (for tests and failure injection). Not
    charged to any generator's accounting. *)

val inject_on : t -> duration:Time.ns -> unit
(** Force one SMI right now through this generator, counting it and
    charging [total_stolen] with only the incremental extension of the
    freeze window (overlap with an already-open window is not
    double-counted). *)

val count : t -> int
(** SMIs delivered so far. *)

val total_stolen : t -> Time.ns
(** Total missing time injected by this generator. *)
