(** Minimal CSV writing for exporting experiment series. *)

val escape : string -> string
(** RFC-4180 quoting when the field contains a comma, quote, or newline. *)

val line : string list -> string
(** One CSV record (no trailing newline). *)

val write : path:string -> header:string list -> string list list -> unit
(** Write a whole file: header then rows. *)
