type t = {
  mutable data : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create () = { data = Array.make 64 0.; len = 0; sorted = true }

let add t x =
  if Float.is_nan x then invalid_arg "Percentile.add: NaN sample";
  if t.len = Array.length t.data then begin
    let ndata = Array.make (t.len * 2) 0. in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let ensure_sorted t =
  if not t.sorted then begin
    let sub = Array.sub t.data 0 t.len in
    (* Float.compare, not polymorphic compare: same order, but monomorphic
       (no generic-compare dispatch per element). NaN is rejected in [add],
       so the order here is total. *)
    Array.sort Float.compare sub;
    Array.blit sub 0 t.data 0 t.len;
    t.sorted <- true
  end

let value t p =
  if t.len = 0 then invalid_arg "Percentile.value: empty";
  if p < 0. || p > 100. then invalid_arg "Percentile.value: p out of range";
  ensure_sorted t;
  let rank = p /. 100. *. float_of_int (t.len - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then t.data.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
  end

let median t = value t 50.

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t
