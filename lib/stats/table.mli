(** ASCII table rendering for experiment output.

    Every figure/table the benchmark harness regenerates is printed through
    this module so the output has one consistent look. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** A table with a caption and named columns. *)

val row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] on column-count mismatch. *)

val rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [rowf t fmt ...] formats a single-cell-per-'\t' row: the formatted string
    is split on tab characters into cells. *)

val rows : t -> int

val title : t -> string
val headers : t -> string list
val to_rows : t -> string list list
(** Body rows in insertion order (for CSV export). *)

val render : t -> string
(** Boxed ASCII rendering with column widths fitted to content. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val cell_f : float -> string
(** Canonical float cell: 6 significant digits, no trailing noise. *)

val cell_pct : float -> string
(** Percentage with one decimal, e.g. "42.5%". *)
