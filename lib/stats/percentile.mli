(** Exact percentiles over stored samples. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Raises [Invalid_argument] on NaN: a NaN sample would silently poison
    the sort order and every percentile after it. *)

val count : t -> int

val value : t -> float -> float
(** [value t p] is the [p]-th percentile (0. <= p <= 100.), linear
    interpolation between closest ranks. Raises [Invalid_argument] when
    empty or [p] out of range. *)

val median : t -> float

val iter : t -> (float -> unit) -> unit
(** Visit every stored sample. Samples are visited in insertion order as
    long as no percentile has been queried yet; {!value} sorts the store
    in place, after which iteration order is the sorted order. Callers
    that replay samples into another store (e.g.
    [Hrt_obs.Metrics.merge]) should do so before querying. *)

val of_array : float array -> t
