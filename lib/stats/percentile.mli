(** Exact percentiles over stored samples. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Raises [Invalid_argument] on NaN: a NaN sample would silently poison
    the sort order and every percentile after it. *)

val count : t -> int

val value : t -> float -> float
(** [value t p] is the [p]-th percentile (0. <= p <= 100.), linear
    interpolation between closest ranks. Raises [Invalid_argument] when
    empty or [p] out of range. *)

val median : t -> float
val of_array : float array -> t
