(** Fixed-bin histograms, as used for the cycle-offset figure (Fig 3). *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal bins.
    Requires [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit
(** Samples outside [\[lo, hi)] are counted in underflow/overflow. Raises
    [Invalid_argument] on NaN (which belongs to no bin). *)

val count : t -> int
(** Total samples, including under/overflow. *)

val bin_count : t -> int -> int
val bin_lo : t -> int -> float
val bin_hi : t -> int -> float
val bins : t -> int
val underflow : t -> int
val overflow : t -> int

val max_bin : t -> int
(** Index of the fullest bin (ties: lowest index). *)

val of_array : lo:float -> hi:float -> bins:int -> float array -> t

val of_counts : lo:float -> hi:float -> int array -> t
(** A histogram from pre-aggregated per-bin counts (one bin per array
    cell, under/overflow zero). Raises [Invalid_argument] on a negative
    count. *)

val render : ?width:int -> t -> string
(** ASCII bar rendering, one line per bin: "[lo, hi) count ####". Bar
    lengths are scaled through float, so counts anywhere up to [max_int]
    render correctly (no [count * width] overflow). *)
