type align = Left | Right

type t = {
  title : string;
  columns : (string * align) list;
  mutable body : string list list; (* reverse order *)
  mutable nrows : int;
}

let create ~title ~columns = { title; columns; body = []; nrows = 0 }

let row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.row: %d cells for %d columns (table %S)"
         (List.length cells) (List.length t.columns) t.title);
  t.body <- cells :: t.body;
  t.nrows <- t.nrows + 1

let rowf t fmt =
  Printf.ksprintf (fun s -> row t (String.split_on_char '\t' s)) fmt

let rows t = t.nrows
let title t = t.title
let headers t = List.map fst t.columns
let to_rows t = List.rev t.body

let render t =
  let headers = List.map fst t.columns in
  let body = List.rev t.body in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri
      (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  measure headers;
  List.iter measure body;
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let aligns = List.map snd t.columns in
  let render_row ?(as_header = false) cells =
    let padded =
      List.mapi
        (fun i c ->
          let a = if as_header then Left else List.nth aligns i in
          pad a widths.(i) c)
        cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let sep =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (render_row ~as_header:true headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun cells -> Buffer.add_string buf (render_row cells ^ "\n")) body;
  Buffer.add_string buf (sep ^ "\n");
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_f x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

let cell_pct x = Printf.sprintf "%.1f%%" x
