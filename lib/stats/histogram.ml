type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  { lo; hi; counts = Array.make bins 0; under = 0; over = 0; total = 0 }

let add t x =
  if Float.is_nan x then invalid_arg "Histogram.add: NaN sample";
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let nbins = Array.length t.counts in
    let idx =
      int_of_float (float_of_int nbins *. (x -. t.lo) /. (t.hi -. t.lo))
    in
    let idx = if idx >= nbins then nbins - 1 else idx in
    t.counts.(idx) <- t.counts.(idx) + 1
  end

let count t = t.total
let bins t = Array.length t.counts
let bin_count t i = t.counts.(i)

let bin_width t = (t.hi -. t.lo) /. float_of_int (Array.length t.counts)
let bin_lo t i = t.lo +. (float_of_int i *. bin_width t)
let bin_hi t i = t.lo +. (float_of_int (i + 1) *. bin_width t)

let underflow t = t.under
let overflow t = t.over

let max_bin t =
  let best = ref 0 in
  for i = 1 to Array.length t.counts - 1 do
    if t.counts.(i) > t.counts.(!best) then best := i
  done;
  !best

let of_array ~lo ~hi ~bins xs =
  let t = create ~lo ~hi ~bins in
  Array.iter (add t) xs;
  t

let of_counts ~lo ~hi counts =
  let t = create ~lo ~hi ~bins:(Array.length counts) in
  Array.iteri
    (fun i c ->
      if c < 0 then invalid_arg "Histogram.of_counts: negative count";
      t.counts.(i) <- c;
      t.total <- t.total + c)
    counts;
  t

let render ?(width = 50) t =
  let buf = Buffer.create 256 in
  let peak = Stdlib.max 1 (t.counts.(max_bin t)) in
  for i = 0 to bins t - 1 do
    let c = t.counts.(i) in
    (* Scale through float: [c * width] overflows for counts past
       [max_int / width], flipping the bar length negative. [c <= peak]
       keeps the quotient in [0, width], so the rounding cast is safe. *)
    let bar =
      int_of_float (float_of_int c *. float_of_int width /. float_of_int peak)
    in
    Buffer.add_string buf
      (Printf.sprintf "[%10.1f, %10.1f) %6d %s\n" (bin_lo t i) (bin_hi t i) c
         (String.make bar '#'))
  done;
  if t.under > 0 then
    Buffer.add_string buf (Printf.sprintf "underflow %d\n" t.under);
  if t.over > 0 then
    Buffer.add_string buf (Printf.sprintf "overflow %d\n" t.over);
  Buffer.contents buf
