(** Streaming summary statistics (Welford's online algorithm).

    Numerically stable mean/variance plus min/max over a stream of samples,
    without storing them. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Raises [Invalid_argument] on NaN, which would silently poison the
    running mean while leaving min/max untouched. *)

val add_int64 : t -> int64 -> unit

val count : t -> int
val mean : t -> float
(** 0.0 when empty. *)

val variance : t -> float
(** Sample variance (n-1 denominator); 0.0 with fewer than two samples. *)

val stddev : t -> float

val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val total : t -> float

val merge : t -> t -> t
(** Combine two summaries as if their streams were concatenated. *)

val of_array : float array -> t

val pp : Format.formatter -> t -> unit
(** "mean=… std=… min=… max=… n=…" *)
