type t =
  | Monotonic_time
  | Causality
  | Cpu_mutex
  | Hard_rt
  | Policy_conformance
  | Accounting
  | Barrier_safety
  | Election_safety
  | Degradation

let all =
  [
    Monotonic_time;
    Causality;
    Cpu_mutex;
    Hard_rt;
    Policy_conformance;
    Accounting;
    Barrier_safety;
    Election_safety;
    Degradation;
  ]

let name = function
  | Monotonic_time -> "monotonic-time"
  | Causality -> "causality"
  | Cpu_mutex -> "cpu-mutex"
  | Hard_rt -> "hard-rt-soundness"
  | Policy_conformance -> "policy-conformance"
  | Accounting -> "accounting"
  | Barrier_safety -> "barrier-safety"
  | Election_safety -> "election-safety"
  | Degradation -> "graceful-degradation"

let of_name = function
  | "monotonic-time" -> Some Monotonic_time
  | "causality" -> Some Causality
  | "cpu-mutex" -> Some Cpu_mutex
  | "hard-rt-soundness" -> Some Hard_rt
  | "policy-conformance" -> Some Policy_conformance
  | "accounting" -> Some Accounting
  | "barrier-safety" -> Some Barrier_safety
  | "election-safety" -> Some Election_safety
  | "graceful-degradation" -> Some Degradation
  | _ -> None

let describe = function
  | Monotonic_time ->
    "per-CPU event timestamps never go backwards (cross-CPU wakes, stamped \
     at the waker's clock, are exempt)"
  | Causality ->
    "lifecycle order holds: admit before arrival, arrival before \
     completion/miss, block before wake, and no dispatch of a blocked thread"
  | Cpu_mutex -> "a thread is dispatched on at most one CPU at a time"
  | Hard_rt ->
    "no admitted periodic/sporadic arrival misses its deadline (every \
     deadline-miss event is a verdict failure)"
  | Policy_conformance ->
    "every real-time dispatch picks a thread with minimal policy key (EDF \
     deadline / RM period) among that CPU's released, unblocked arrivals"
  | Accounting ->
    "interrupt and scheduler-pass spans never overlap, and cumulative \
     charged overhead never exceeds elapsed time on any CPU"
  | Barrier_safety ->
    "a barrier round releases exactly its parties, after the last arrival, \
     with distinct arrival orders and no thread crossing twice"
  | Election_safety ->
    "an election round decides each contender at most once and produces at \
     most one leader"
  | Degradation ->
    "in a fault-injected segment, deadline misses occur only on threads of \
     criticality strictly below the CPU's announced shed boundary, and \
     sheds only remove threads below it (replaces hard-rt-soundness there)"
