(* Replay side of the export pipeline: parse a chrome-trace JSON file (as
   written by [Obs.Export.write_chrome_trace]) back into typed events via
   [Event.of_parts]. The repo deliberately has no JSON dependency, so this
   carries a minimal recursive-descent parser — general enough for any
   JSON, sized for the exporter's flat records. *)

open Hrt_engine
module Obs = Hrt_obs

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail c msg =
  (* Report a line number: traces are line-oriented, so this locates the
     offending record directly. *)
  let line = ref 1 in
  for i = 0 to min c.pos (String.length c.src) - 1 do
    if c.src.[i] = '\n' then incr line
  done;
  raise (Parse_error (Printf.sprintf "line %d: %s" !line msg))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  let n = String.length c.src in
  while
    c.pos < n
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c (Printf.sprintf "expected '%c', found '%c'" ch x)
  | None -> fail c (Printf.sprintf "expected '%c', found end of input" ch)

let parse_literal c lit value =
  let n = String.length lit in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = lit
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "invalid literal (expected %s)" lit)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' ->
      c.pos <- c.pos + 1;
      (match peek c with
      | None -> fail c "unterminated escape"
      | Some ch ->
        c.pos <- c.pos + 1;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if c.pos + 4 > String.length c.src then fail c "truncated \\u escape";
          let hex = String.sub c.src c.pos 4 in
          c.pos <- c.pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | None -> fail c "invalid \\u escape"
          | Some code ->
            (* The exporter only \u-escapes control characters; anything
               outside latin-1 is preserved as a literal '?'. *)
            if code < 0x100 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?')
        | _ -> fail c "invalid escape"));
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      c.pos <- c.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let n = String.length c.src in
  let adv () = c.pos <- c.pos + 1 in
  if peek c = Some '-' then adv ();
  while
    c.pos < n
    &&
    match c.src.[c.pos] with
    | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
    | _ -> false
  do
    adv ()
  done;
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some f -> Num f
  | None -> fail c "invalid number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' -> parse_obj c
  | Some '[' -> parse_arr c
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character '%c'" ch)

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    c.pos <- c.pos + 1;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec go () =
      skip_ws c;
      let key = parse_string c in
      expect c ':';
      let v = parse_value c in
      fields := (key, v) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' ->
        c.pos <- c.pos + 1;
        go ()
      | _ -> expect c '}'
    in
    go ();
    Obj (List.rev !fields)
  end

and parse_arr c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    c.pos <- c.pos + 1;
    Arr []
  end
  else begin
    let items = ref [] in
    let rec go () =
      let v = parse_value c in
      items := v :: !items;
      skip_ws c;
      match peek c with
      | Some ',' ->
        c.pos <- c.pos + 1;
        go ()
      | _ -> expect c ']'
    in
    go ();
    Arr (List.rev !items)
  end

let parse_json src =
  let c = { src; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length src then fail c "trailing garbage after JSON value";
  v

(* ------------------------------------------------------------------ *)

type record = { time : Time.ns; cpu : int; event : Obs.Event.t }

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

(* Chrome-trace timestamps are microseconds with three decimals; recover
   integer nanoseconds by rounding. *)
let ns_of_us f = Int64.of_float (Float.round (f *. 1_000.))

let record_of_json ~index v =
  let ctx msg = Error (Printf.sprintf "record %d: %s" index msg) in
  match member "ph" v with
  | Some (Str "M") -> Ok None (* metadata: process names etc. *)
  | _ -> (
    match (member "name" v, member "ts" v, member "pid" v) with
    | Some (Str name), Some (Num ts), Some (Num pid) ->
      let dur_ns =
        match member "dur" v with Some (Num d) -> Some (ns_of_us d) | _ -> None
      in
      let args =
        match member "args" v with
        | Some (Obj kvs) ->
          List.filter_map
            (fun (k, v) -> match v with Str s -> Some (k, s) | _ -> None)
            kvs
        | _ -> []
      in
      (match Obs.Event.of_parts ~kind:name ~args ~dur_ns with
      | Some event ->
        Ok (Some { time = ns_of_us ts; cpu = int_of_float pid; event })
      | None -> ctx (Printf.sprintf "unknown or malformed event %S" name))
    | _ -> ctx "missing name/ts/pid field")

let parse src =
  match parse_json src with
  | exception Parse_error msg -> Error msg
  | Arr items ->
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | v :: rest -> (
        match record_of_json ~index:i v with
        | Ok (Some r) -> go (i + 1) (r :: acc) rest
        | Ok None -> go (i + 1) acc rest
        | Error _ as e -> e)
    in
    go 0 [] items
  | _ -> Error "trace is not a JSON array"

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | src -> parse src
