open Hrt_engine
module Obs = Hrt_obs
module Event = Obs.Event

type policy = Edf | Rm | Unknown

let policy_of_name = function
  | "edf" -> Edf
  | "rm" -> Rm
  | _ -> Unknown

let policy_name = function Edf -> "edf" | Rm -> "rm" | Unknown -> "unknown"

type violation = {
  rule : Rules.t;
  index : int;
  time : Time.ns;
  cpu : int;
  segment : int;
  detail : string;
}

(* One released real-time job: alive between its [Arrival] and the matching
   [Complete]. [a_cpu] is the home CPU stamped on the arrival event —
   real-time threads never migrate, so the conformance oracle compares only
   jobs released on the same CPU. *)
type arrival = { a_deadline : Time.ns; a_period : Time.ns; a_cpu : int }

type cpu_state = {
  mutable seen : bool;
  mutable first_time : Time.ns;
  mutable last_time : Time.ns;
  mutable current : int option;  (* tid of the thread dispatched here *)
  mutable span_end : Time.ns;  (* end of the latest overhead span *)
  mutable overhead : Time.ns;  (* cumulative Irq + Sched_pass durations *)
  mutable boundary : int;  (* shed boundary rank; 0 = not in overload *)
}

(* Criticality names as stamped by [Constraints.crit_name]; an unknown
   name ranks above every boundary, so its misses always flag. *)
let crit_rank = function "low" -> 0 | "mid" -> 1 | "high" -> 2 | _ -> 3
let boundary_rank = function "none" -> 0 | b -> crit_rank b

type round_state = {
  mutable r_arrived : (int * int) list;  (* (tid, order), newest first *)
  mutable r_first : Time.ns option;
  mutable r_last : Time.ns;
}

type election_round = { mutable e_leaders : int; mutable e_decided : int list }

type t = {
  mutable index : int;  (* events fed so far *)
  mutable in_segment : int;  (* events fed since the last segment reset *)
  mutable segment : int;
  mutable policy : policy;
  mutable faulted : bool;  (* a Fault_plan event marked this segment *)
  cpus : (int, cpu_state) Hashtbl.t;
  admitted : (int, Event.cls) Hashtbl.t;  (* tid -> admitted RT class *)
  active : (int, arrival) Hashtbl.t;  (* tid -> in-flight arrival *)
  blocked : (int, unit) Hashtbl.t;
  where : (int, int) Hashtbl.t;  (* tid -> cpu currently dispatched on *)
  barriers : (int, round_state) Hashtbl.t;
  elections : (int * int, election_round) Hashtbl.t;
  counts : (Rules.t, int) Hashtbl.t;
  mutable violations : violation list;  (* newest first, capped per rule *)
}

(* Full violation counts are always kept; only the stored counterexamples
   are capped, so a pathological trace cannot make the report unbounded. *)
let max_kept_per_rule = 64

let create () =
  {
    index = 0;
    in_segment = 0;
    segment = 0;
    policy = Unknown;
    faulted = false;
    cpus = Hashtbl.create 16;
    admitted = Hashtbl.create 64;
    active = Hashtbl.create 64;
    blocked = Hashtbl.create 64;
    where = Hashtbl.create 64;
    barriers = Hashtbl.create 8;
    elections = Hashtbl.create 8;
    counts = Hashtbl.create 8;
    violations = [];
  }

(* A [Policy] event on CPU 0 is the boot stamp of a fresh scheduler: traces
   holding several sequential runs (sweeps, ablations) restart the whole
   world there, so all cross-event state is dropped. Violations and counts
   survive — they describe the trace, not the segment. *)
let reset_segment t =
  t.faulted <- false;
  Hashtbl.reset t.cpus;
  Hashtbl.reset t.admitted;
  Hashtbl.reset t.active;
  Hashtbl.reset t.blocked;
  Hashtbl.reset t.where;
  Hashtbl.reset t.barriers;
  Hashtbl.reset t.elections

let count t rule = match Hashtbl.find_opt t.counts rule with Some n -> n | None -> 0

let violate t rule ~index ~time ~cpu detail =
  let n = count t rule + 1 in
  Hashtbl.replace t.counts rule n;
  if n <= max_kept_per_rule then
    t.violations <-
      { rule; index; time; cpu; segment = t.segment; detail } :: t.violations

let cpu_state t cpu =
  match Hashtbl.find_opt t.cpus cpu with
  | Some st -> st
  | None ->
    let st =
      {
        seen = false;
        first_time = 0L;
        last_time = 0L;
        current = None;
        span_end = 0L;
        overhead = 0L;
        boundary = 0;
      }
    in
    Hashtbl.replace t.cpus cpu st;
    st

let round_state t barrier =
  match Hashtbl.find_opt t.barriers barrier with
  | Some b -> b
  | None ->
    let b = { r_arrived = []; r_first = None; r_last = 0L } in
    Hashtbl.replace t.barriers barrier b;
    b

let election_round t key =
  match Hashtbl.find_opt t.elections key with
  | Some e -> e
  | None ->
    let e = { e_leaders = 0; e_decided = [] } in
    Hashtbl.replace t.elections key e;
    e

(* Drop [tid] from the running set (it blocked, or its CPU moved on). *)
let clear_running t tid =
  match Hashtbl.find_opt t.where tid with
  | None -> ()
  | Some c ->
    Hashtbl.remove t.where tid;
    (match Hashtbl.find_opt t.cpus c with
    | Some sc when sc.current = Some tid -> sc.current <- None
    | Some _ | None -> ())

let conformance_key t (a : arrival) =
  match t.policy with
  | Edf -> a.a_deadline
  | Rm -> a.a_period
  | Unknown -> 0L

let check_dispatch t ~index ~time ~cpu st tid thread =
  if Hashtbl.mem t.blocked tid then
    violate t Rules.Causality ~index ~time ~cpu
      (Printf.sprintf "thread %d (%s) dispatched while blocked" tid thread);
  (match Hashtbl.find_opt t.where tid with
  | Some c when c <> cpu ->
    violate t Rules.Cpu_mutex ~index ~time ~cpu
      (Printf.sprintf
         "thread %d (%s) dispatched on cpu %d while still dispatched on cpu %d"
         tid thread cpu c);
    (match Hashtbl.find_opt t.cpus c with
    | Some sc when sc.current = Some tid -> sc.current <- None
    | Some _ | None -> ())
  | Some _ | None -> ());
  (match st.current with
  | Some old when old <> tid -> Hashtbl.remove t.where old
  | Some _ | None -> ());
  st.current <- Some tid;
  Hashtbl.replace t.where tid cpu;
  (* Policy conformance: a real-time dispatch must pick a minimal-key job
     among this CPU's released, unblocked arrivals. Aperiodic dispatches
     (no arrival in flight) are exempt — under lazy dispatch they may
     legally run ahead of a waiting RT head. *)
  match (t.policy, Hashtbl.find_opt t.active tid) with
  | Unknown, _ | _, None -> ()
  | (Edf | Rm), Some arr ->
    let k = conformance_key t arr in
    let offender = ref None in
    (* Report the minimal (key, tid) offender: ties on key break toward
       the smaller thread id, so the diagnostic does not depend on hash
       order. *)
    (Hashtbl.iter
       (fun tid' arr' ->
         if
           tid' <> tid && arr'.a_cpu = cpu
           && (not (Hashtbl.mem t.blocked tid'))
           && (match Hashtbl.find_opt t.where tid' with
              | Some c -> c = cpu
              | None -> true)
           && Int64.compare (conformance_key t arr') k < 0
         then
           let k' = conformance_key t arr' in
           match !offender with
           | Some (tb, kb)
             when Int64.compare kb k' < 0
                  || (Int64.compare kb k' = 0 && tb <= tid') -> ()
           | Some _ | None -> offender := Some (tid', k'))
       t.active
     [@hrt.nondet "minimal (key, tid) selection is iteration-order-independent"]);
    (match !offender with
    | Some (tid', k') ->
      violate t Rules.Policy_conformance ~index ~time ~cpu
        (Printf.sprintf
           "thread %d (key %Ld) dispatched on cpu %d while thread %d (key \
            %Ld) was runnable under %s"
           tid k cpu tid' k' (policy_name t.policy))
    | None -> ())

let check_span t ~index ~time ~cpu st ~kind ~dur =
  if Int64.compare dur 0L < 0 then
    violate t Rules.Accounting ~index ~time ~cpu
      (Printf.sprintf "%s span has negative duration %Ldns" kind dur);
  if Int64.compare time st.span_end < 0 then
    violate t Rules.Accounting ~index ~time ~cpu
      (Printf.sprintf
         "%s span starting at %Ldns overlaps the previous overhead span \
          ending at %Ldns"
         kind time st.span_end);
  st.span_end <- Time.max st.span_end (Int64.add time dur);
  st.overhead <- Int64.add st.overhead dur;
  let elapsed = Int64.sub st.span_end st.first_time in
  if Int64.compare st.overhead elapsed > 0 then
    violate t Rules.Accounting ~index ~time ~cpu
      (Printf.sprintf
         "cumulative overhead %Ldns exceeds elapsed %Ldns on cpu %d"
         st.overhead elapsed cpu)

let feed t ~time ~cpu event =
  let index = t.index in
  t.index <- index + 1;
  (match event with
  | Event.Policy { policy } when cpu = 0 ->
    if t.in_segment > 0 then begin
      reset_segment t;
      t.segment <- t.segment + 1;
      t.in_segment <- 0
    end;
    t.policy <- policy_of_name policy
  | _ -> ());
  t.in_segment <- t.in_segment + 1;
  let st = cpu_state t cpu in
  (* Wake events are stamped at the *waker's* clock and may land inside the
     target CPU's busy window, so they are exempt from the per-CPU
     monotonicity rule (and do not advance its clock). *)
  (match event with
  | Event.Wake _ -> ()
  | _ ->
    if st.seen && Int64.compare time st.last_time < 0 then
      violate t Rules.Monotonic_time ~index ~time ~cpu
        (Printf.sprintf
           "timestamp %Ldns precedes cpu %d's previous event at %Ldns" time
           cpu st.last_time);
    if not st.seen then begin
      st.seen <- true;
      st.first_time <- time;
      st.last_time <- time
    end
    else if Int64.compare time st.last_time > 0 then st.last_time <- time);
  match event with
  | Event.Policy _ | Event.Steal_attempt _ | Event.Group_phase _ -> ()
  | Event.Idle -> (
    match st.current with
    | Some tid ->
      Hashtbl.remove t.where tid;
      st.current <- None
    | None -> ())
  | Event.Dispatch { tid; thread } ->
    check_dispatch t ~index ~time ~cpu st tid thread
  | Event.Preempt { tid; thread } -> (
    match st.current with
    | Some c when c = tid -> ()
    | Some c ->
      violate t Rules.Causality ~index ~time ~cpu
        (Printf.sprintf
           "preempt of thread %d (%s) but cpu %d is running thread %d" tid
           thread cpu c)
    | None ->
      violate t Rules.Causality ~index ~time ~cpu
        (Printf.sprintf "preempt of thread %d (%s) on idle cpu %d" tid thread
           cpu))
  | Event.Admission_accept { tid; cls } ->
    if cls = Event.Cls_aperiodic then Hashtbl.remove t.admitted tid
    else Hashtbl.replace t.admitted tid cls
  | Event.Admission_reject _ -> ()
  | Event.Arrival { tid; thread; arrival = _; deadline; period } ->
    if Hashtbl.mem t.active tid then
      violate t Rules.Causality ~index ~time ~cpu
        (Printf.sprintf
           "second arrival for thread %d (%s) while one is in flight" tid
           thread);
    if not (Hashtbl.mem t.admitted tid) then
      violate t Rules.Causality ~index ~time ~cpu
        (Printf.sprintf "arrival for thread %d (%s) without real-time \
                         admission" tid thread);
    Hashtbl.replace t.active tid
      { a_deadline = deadline; a_period = period; a_cpu = cpu };
    (* A periodic thread blocked through the end of its arrival re-enters
       the schedule via pump without a Wake event. *)
    Hashtbl.remove t.blocked tid
  | Event.Complete { tid; thread } ->
    if not (Hashtbl.mem t.active tid) then
      violate t Rules.Causality ~index ~time ~cpu
        (Printf.sprintf "completion for thread %d (%s) with no arrival in \
                         flight" tid thread);
    Hashtbl.remove t.active tid
  | Event.Deadline_miss { tid; thread; lateness_ns; crit } -> (
    match Hashtbl.find_opt t.active tid with
    | Some _ ->
      if not t.faulted then
        let cls =
          match Hashtbl.find_opt t.admitted tid with
          | Some c -> Event.cls_name c
          | None -> "unadmitted"
        in
        violate t Rules.Hard_rt ~index ~time ~cpu
          (Printf.sprintf "%s thread %d (%s) missed its deadline by %Ldns" cls
             tid thread lateness_ns)
      else if
        (* Fault-injected segment: the graceful-degradation contract
           replaces hard-RT soundness. A miss is tolerable exactly when
           the CPU has announced a shed boundary strictly above the
           missing thread's criticality. *)
        crit_rank crit >= st.boundary
      then
        violate t Rules.Degradation ~index ~time ~cpu
          (if st.boundary = 0 then
             Printf.sprintf
               "%s-criticality thread %d (%s) missed its deadline by %Ldns \
                under an injected fault with no shed in effect"
               crit tid thread lateness_ns
           else
             Printf.sprintf
               "%s-criticality thread %d (%s) missed its deadline by %Ldns \
                at or above the shed boundary"
               crit tid thread lateness_ns)
    | None ->
      violate t Rules.Causality ~index ~time ~cpu
        (Printf.sprintf "deadline-miss for thread %d (%s) with no arrival \
                         in flight" tid thread))
  | Event.Fault_plan _ -> t.faulted <- true
  | Event.Overload { boundary } -> st.boundary <- boundary_rank boundary
  | Event.Shed { tid; thread; crit } ->
    if crit_rank crit >= st.boundary then
      violate t Rules.Degradation ~index ~time ~cpu
        (Printf.sprintf
           "thread %d (%s) shed at criticality %s, at or above the boundary"
           tid thread crit);
    (* The shed thread is aperiodic from here on; its in-flight arrival,
       if any, is retired by a separate Complete event. *)
    Hashtbl.remove t.admitted tid
  | Event.Demote _ | Event.Recover _ ->
    (* Informational: the paired Complete / Admission_accept events carry
       the state transitions the checker tracks. *)
    ()
  | Event.Block { tid; thread } ->
    if Hashtbl.mem t.blocked tid then
      violate t Rules.Causality ~index ~time ~cpu
        (Printf.sprintf "thread %d (%s) blocked while already blocked" tid
           thread);
    Hashtbl.replace t.blocked tid ();
    clear_running t tid
  | Event.Wake { tid; thread } ->
    if not (Hashtbl.mem t.blocked tid) then
      violate t Rules.Causality ~index ~time ~cpu
        (Printf.sprintf "wake of thread %d (%s) that is not blocked" tid
           thread);
    Hashtbl.remove t.blocked tid
  | Event.Irq { dur_ns } ->
    check_span t ~index ~time ~cpu st ~kind:"irq" ~dur:dur_ns
  | Event.Sched_pass { dur_ns } ->
    check_span t ~index ~time ~cpu st ~kind:"sched-pass" ~dur:dur_ns
  | Event.Barrier_arrive { barrier; tid; order } ->
    let b = round_state t barrier in
    if List.exists (fun (_, o) -> o = order) b.r_arrived then
      violate t Rules.Barrier_safety ~index ~time ~cpu
        (Printf.sprintf
           "duplicate arrival order %d at barrier %d (thread %d)" order
           barrier tid);
    if List.exists (fun (tid', _) -> tid' = tid) b.r_arrived then
      violate t Rules.Barrier_safety ~index ~time ~cpu
        (Printf.sprintf
           "thread %d crossed barrier %d twice before its release" tid
           barrier);
    if b.r_first = None then b.r_first <- Some time;
    b.r_arrived <- (tid, order) :: b.r_arrived;
    b.r_last <- Time.max b.r_last time
  | Event.Barrier_release { barrier; parties; wait_ns } ->
    let b = round_state t barrier in
    let n = List.length b.r_arrived in
    if n <> parties then
      violate t Rules.Barrier_safety ~index ~time ~cpu
        (Printf.sprintf "barrier %d released with %d of %d arrivals" barrier
           n parties);
    if Int64.compare time b.r_last < 0 then
      violate t Rules.Barrier_safety ~index ~time ~cpu
        (Printf.sprintf
           "barrier %d released at %Ldns, before its last arrival at %Ldns"
           barrier time b.r_last);
    (match b.r_first with
    | Some first when Int64.compare wait_ns (Int64.sub time first) <> 0 ->
      violate t Rules.Barrier_safety ~index ~time ~cpu
        (Printf.sprintf
           "barrier %d release reports a %Ldns wait span but its arrivals \
            spanned %Ldns"
           barrier wait_ns (Int64.sub time first))
    | Some _ | None -> ());
    b.r_arrived <- [];
    b.r_first <- None;
    b.r_last <- 0L
  | Event.Elected { election; round; tid; leader } ->
    let e = election_round t (election, round) in
    if List.mem tid e.e_decided then
      violate t Rules.Election_safety ~index ~time ~cpu
        (Printf.sprintf "thread %d decided twice in election %d round %d"
           tid election round);
    e.e_decided <- tid :: e.e_decided;
    if leader then begin
      e.e_leaders <- e.e_leaders + 1;
      if e.e_leaders > 1 then
        violate t Rules.Election_safety ~index ~time ~cpu
          (Printf.sprintf "election %d round %d produced %d leaders" election
             round e.e_leaders)
    end

let events_seen t = t.index
let segments t = t.segment + 1
let violations t = List.rev t.violations
let total_violations t =
  (Hashtbl.fold (fun _ n acc -> acc + n) t.counts 0
   [@hrt.nondet "commutative integer sum"])
let rule_counts t = List.map (fun r -> (r, count t r)) Rules.all
let clean t = total_violations t = 0
