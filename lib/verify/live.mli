(** The verifying sink: run the invariant checker online, as events are
    emitted, instead of replaying a trace file afterwards. Backs the CLI's
    [--selfcheck] flag.

    Attach to an enabled sink *before* the scheduler is created so the
    checker sees the boot [Policy] events and every admission. *)

type t

val attach : Hrt_obs.Sink.t -> t
(** Subscribe a fresh checker to [sink]; every event emitted from then on
    is fed to it in emission order. *)

val checker : t -> Checker.t

val report : t -> Report.t
(** Snapshot the verdict so far. *)
