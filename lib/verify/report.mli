(** The verdict report: a checker's findings, rendered for people (a
    per-rule table plus counterexamples) and for machines (a one-line
    verdict with stable [key=value] fields). *)

type t = {
  events : int;
  segments : int;
  counts : (Rules.t * int) list;
  violations : Checker.violation list;
}

val of_checker : Checker.t -> t

val passed : t -> bool
val total : t -> int

val verdict_line : t -> string
(** One line, e.g.
    ["verdict=fail events=812 segments=1 violations=3 rules=hard-rt-soundness:3"].
    The [rules=] field lists only rules that fired and is omitted on a
    passing verdict. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val write : t -> path:string -> unit
(** Write the full human-readable report to [path]. *)
