(** The streaming invariant checker: a state machine over the ordered
    [Obs.Event] stream that accumulates {!Rules.t} violations.

    Feed it events in trace (emission) order — the same order the tracer
    buffers them and the exporter writes them. The checker reconstructs the
    scheduler's observable state (running set, released arrivals, blocked
    set, barrier rounds, elections) and flags every event inconsistent with
    the invariant catalog.

    A [Policy] event on CPU 0 marks the boot of a fresh scheduler; traces
    holding several sequential runs are split into segments there and all
    cross-event state is reset. Interleaved events from two live schedulers
    sharing one sink are not supported.

    Violation counts are exact; stored counterexamples are capped per rule
    so reports stay bounded on pathological traces. *)

open Hrt_engine

type t

type violation = {
  rule : Rules.t;
  index : int;  (** 0-based position of the offending event in the stream *)
  time : Time.ns;  (** simulated timestamp of the offending event *)
  cpu : int;
  segment : int;  (** 0-based run segment within the trace *)
  detail : string;  (** human-readable counterexample *)
}

val create : unit -> t

val feed : t -> time:Time.ns -> cpu:int -> Hrt_obs.Event.t -> unit
(** Check one event and update the reconstructed state. *)

val events_seen : t -> int
val segments : t -> int

val violations : t -> violation list
(** Stored counterexamples, in stream order (capped per rule). *)

val rule_counts : t -> (Rules.t * int) list
(** Exact violation count for every rule, in {!Rules.all} order. *)

val total_violations : t -> int

val clean : t -> bool
(** [true] iff no rule fired. *)
