let records rs =
  let checker = Checker.create () in
  List.iter
    (fun { Trace_reader.time; cpu; event } ->
      Checker.feed checker ~time ~cpu event)
    rs;
  Report.of_checker checker

let file path = Result.map records (Trace_reader.read_file path)
