(** Trace replay: parse a chrome-trace JSON file written by
    [Obs.Export.write_chrome_trace] back into typed events, preserving the
    emission order the checker depends on.

    Carries its own minimal JSON parser (the repo has no JSON dependency);
    timestamps are recovered from the exporter's microsecond floats by
    rounding to integer nanoseconds, which is exact for the three-decimal
    precision the exporter writes. *)

open Hrt_engine

type record = { time : Time.ns; cpu : int; event : Hrt_obs.Event.t }

val parse : string -> (record list, string) result
(** Parse trace-file contents. Metadata records ([ph = "M"]) are skipped;
    an unknown or malformed event record is an error (the verifier must
    understand every event it is asked to check). *)

val read_file : string -> (record list, string) result
