(** The invariant catalog: every property the trace verifier checks, as a
    named rule. A rule is the unit of reporting — violations carry the rule
    that fired plus a counterexample locating the offending event. *)

type t =
  | Monotonic_time  (** per-CPU timestamps are non-decreasing *)
  | Causality  (** lifecycle events appear in a legal order *)
  | Cpu_mutex  (** a thread runs on at most one CPU at a time *)
  | Hard_rt  (** admitted real-time arrivals never miss deadlines *)
  | Policy_conformance  (** dispatches agree with the EDF/RM oracle *)
  | Accounting  (** charged overhead is consistent with elapsed time *)
  | Barrier_safety  (** barrier rounds release completely, in order *)
  | Election_safety  (** elections produce at most one leader per round *)
  | Degradation
      (** under an injected fault plan, misses stay below the shed
          boundary (graceful degradation, DESIGN §8) *)

val all : t list
(** Every rule, in reporting order. *)

val name : t -> string
(** Stable kebab-case identifier used in verdict lines and reports. *)

val of_name : string -> t option
(** Inverse of {!name}. *)

val describe : t -> string
(** One-sentence statement of the invariant. *)
