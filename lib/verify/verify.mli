(** Facade: one-call offline verification. *)

val records : Trace_reader.record list -> Report.t
(** Check an already-parsed event stream. *)

val file : string -> (Report.t, string) result
(** Replay a chrome-trace JSON file through the checker.
    [Error] means the file could not be parsed (the verdict inside [Ok]
    says whether the trace satisfied the invariants). *)
