module Obs = Hrt_obs

type t = { checker : Checker.t }

let attach sink =
  let checker = Checker.create () in
  Obs.Sink.subscribe sink (fun ~time ~cpu ev -> Checker.feed checker ~time ~cpu ev);
  { checker }

let checker t = t.checker
let report t = Report.of_checker t.checker
