type t = {
  events : int;
  segments : int;
  counts : (Rules.t * int) list;
  violations : Checker.violation list;
}

let of_checker c =
  {
    events = Checker.events_seen c;
    segments = Checker.segments c;
    counts = Checker.rule_counts c;
    violations = Checker.violations c;
  }

let total r = List.fold_left (fun acc (_, n) -> acc + n) 0 r.counts
let passed r = total r = 0

(* One line, machine-readable, stable field order: what --selfcheck prints
   on stderr and what the CI verify job greps. *)
let verdict_line r =
  let base =
    Printf.sprintf "verdict=%s events=%d segments=%d violations=%d"
      (if passed r then "pass" else "fail")
      r.events r.segments (total r)
  in
  let firing = List.filter (fun (_, n) -> n > 0) r.counts in
  if firing = [] then base
  else
    base ^ " rules="
    ^ String.concat ","
        (List.map (fun (rule, n) -> Printf.sprintf "%s:%d" (Rules.name rule) n) firing)

let max_printed_counterexamples = 32

let pp ppf r =
  Format.fprintf ppf "%s@." (verdict_line r);
  Format.fprintf ppf "@.rule                 violations@.";
  List.iter
    (fun (rule, n) ->
      Format.fprintf ppf "%-20s %d@." (Rules.name rule) n)
    r.counts;
  match r.violations with
  | [] -> ()
  | vs ->
    let shown = ref 0 in
    Format.fprintf ppf "@.counterexamples:@.";
    List.iter
      (fun (v : Checker.violation) ->
        if !shown < max_printed_counterexamples then begin
          incr shown;
          Format.fprintf ppf "  event %d  t=%Ldns  cpu=%d  seg=%d  [%s] %s@."
            v.index v.time v.cpu v.segment (Rules.name v.rule) v.detail
        end)
      vs;
    let dropped = total r - !shown in
    if dropped > 0 then
      Format.fprintf ppf "  ... and %d more violation(s)@." dropped

let to_string r = Format.asprintf "%a" pp r

let write r ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string r))
