(* Benchmark harness.

   Running `dune exec bench/main.exe` does two things:

   1. Regenerates every table/figure of the paper's evaluation (Figs 3-16)
      plus the ablations, printing the same rows/series the paper reports.
      Scaled-down parameters by default; set HRT_FULL=1 for paper-scale.

   2. Runs one Bechamel micro-benchmark per figure: how long the simulator
      takes to execute a miniature instance of that experiment, plus
      micro-benchmarks of the scheduler's hot paths — the performance of
      the reproduction itself rather than the simulated metrics.

   `dune exec bench/main.exe -- tables` or `-- micro` runs one half.
   `--jobs N` (or HRT_JOBS=N) fans every sweep across N domains; the
   tables are bit-identical for any N. *)

open Bechamel
open Bechamel.Toolkit
open Hrt_engine
open Hrt_core

(* ------------------------------------------------------------------ *)
(* Part 1: figure regeneration. *)

let run_tables ~jobs () =
  print_endline "======================================================";
  print_endline " Reproduction of every figure (see EXPERIMENTS.md)";
  print_endline
    (match Hrt_harness.Exp.scale_of_env () with
    | Hrt_harness.Exp.Quick ->
      " scale: QUICK (scaled-down; set HRT_FULL=1 for paper scale)"
    | Hrt_harness.Exp.Full -> " scale: FULL (paper-scale parameters)");
  Printf.printf " jobs: %d (set with --jobs N or HRT_JOBS=N)\n" jobs;
  print_endline "======================================================\n";
  let ctx = Hrt_harness.Exp.Ctx.make ~jobs () in
  List.iter
    (Hrt_harness.Registry.run_and_print ~ctx)
    Hrt_harness.Registry.all

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks. *)

let staged = Staged.stage

let bench_boot () = ignore (Scheduler.create ~num_cpus:64 Hrt_hw.Platform.phi)

let periodic_workload platform ~admission ~period_us ~slice_us () =
  let config = { Config.default with Config.admission_control = admission } in
  let sys = Scheduler.create ~num_cpus:2 ~config platform in
  ignore
    (Scheduler.spawn sys ~cpu:1 ~bound:true
       (Program.seq
          [
            Program.of_steps
              (Scheduler.admission_ops sys
                 (Constraints.periodic ~period:(Time.us period_us)
                    ~slice:(Time.us slice_us) ())
                 ~on_result:(fun _ -> ()));
            Program.compute_forever (Time.sec 1);
          ]));
  Scheduler.run ~until:(Time.ms 2) sys

let bench_group workers () =
  let sys = Scheduler.create ~num_cpus:(workers + 1) Hrt_hw.Platform.phi in
  Hrt_harness.Exp.run_group_admission sys ~workers
    (Constraints.periodic ~period:(Time.us 200) ~slice:(Time.us 40) ())
    ();
  Scheduler.run ~until:(Time.ms 5) sys

let bsp_rt =
  Hrt_bsp.Bsp.Rt
    { period = Time.us 100; slice = Time.us 90; phase_correction = true }

let bench_bsp ~coarse ~barrier () =
  let params =
    if coarse then
      { (Hrt_bsp.Bsp.coarse_grain ~cpus:8 ~barrier) with Hrt_bsp.Bsp.iters = 10 }
    else { (Hrt_bsp.Bsp.fine_grain ~cpus:8 ~barrier) with Hrt_bsp.Bsp.iters = 50 }
  in
  ignore (Hrt_bsp.Bsp.run params bsp_rt)

let experiment_tests =
  [
    Test.make ~name:"fig3 boot+calibrate 64 CPUs" (staged bench_boot);
    Test.make ~name:"fig4 scope-trace workload"
      (staged (periodic_workload Hrt_hw.Platform.phi ~admission:true ~period_us:100 ~slice_us:50));
    Test.make ~name:"fig5 overhead workload"
      (staged (periodic_workload Hrt_hw.Platform.r415 ~admission:true ~period_us:100 ~slice_us:50));
    Test.make ~name:"fig6 miss-rate point phi"
      (staged (periodic_workload Hrt_hw.Platform.phi ~admission:false ~period_us:20 ~slice_us:12));
    Test.make ~name:"fig7 miss-rate point r415"
      (staged (periodic_workload Hrt_hw.Platform.r415 ~admission:false ~period_us:20 ~slice_us:12));
    Test.make ~name:"fig8 miss-time point phi"
      (staged (periodic_workload Hrt_hw.Platform.phi ~admission:false ~period_us:10 ~slice_us:5));
    Test.make ~name:"fig9 miss-time point r415"
      (staged (periodic_workload Hrt_hw.Platform.r415 ~admission:false ~period_us:10 ~slice_us:5));
    Test.make ~name:"fig10 group admission 8t" (staged (bench_group 8));
    Test.make ~name:"fig11 group sync 8t" (staged (bench_group 8));
    Test.make ~name:"fig12 group sync 16t" (staged (bench_group 16));
    Test.make ~name:"fig13 bsp coarse+barrier" (staged (bench_bsp ~coarse:true ~barrier:true));
    Test.make ~name:"fig14 bsp fine+barrier" (staged (bench_bsp ~coarse:false ~barrier:true));
    Test.make ~name:"fig15 bsp coarse-nobarrier" (staged (bench_bsp ~coarse:true ~barrier:false));
    Test.make ~name:"fig16 bsp fine-nobarrier" (staged (bench_bsp ~coarse:false ~barrier:false));
  ]

let hot_path_tests =
  let q = Event_queue.create ~dummy:() in
  let pq = Prio_queue.create ~capacity:1024 in
  let rng = Rng.create 1L in
  [
    Test.make ~name:"micro event-queue add+pop"
      (staged (fun () ->
           ignore (Event_queue.add q ~time:(Int64.of_int (Rng.int rng 1000)) ());
           ignore (Event_queue.pop q)));
    Test.make ~name:"micro prio-queue add+pop"
      (staged (fun () ->
           ignore (Prio_queue.add pq ~key:(Int64.of_int (Rng.int rng 1000)) ());
           ignore (Prio_queue.pop pq)));
    Test.make ~name:"micro rng gaussian"
      (staged (fun () -> ignore (Rng.gaussian rng ~mu:0. ~sigma:1.)));
    Test.make ~name:"micro platform sample"
      (staged (fun () ->
           ignore
             (Hrt_hw.Platform.sample Hrt_hw.Platform.phi rng
                Hrt_hw.Platform.phi.Hrt_hw.Platform.sched_pass)));
  ]

let run_micro () =
  print_endline "======================================================";
  print_endline " Bechamel micro-benchmarks (simulator performance)";
  print_endline "======================================================";
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Bechamel.Time.second 0.25) ~kde:None ()
  in
  let instances = [ Instance.monotonic_clock ] in
  let table =
    Hrt_stats.Table.create
      ~title:"wall-clock cost of simulating each experiment (OLS estimate)"
      ~columns:
        [ ("benchmark", Hrt_stats.Table.Left); ("time/run", Hrt_stats.Table.Right) ]
  in
  let grouped =
    Test.make_grouped ~name:"hrt" ~fmt:"%s %s" (experiment_tests @ hot_path_tests)
  in
  let results = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let analyzed = Analyze.all ols Instance.monotonic_clock results in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let cell =
        match Analyze.OLS.estimates result with
        | Some (est :: _) ->
          if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
          else Printf.sprintf "%.0f ns" est
        | Some [] | None -> "n/a"
      in
      rows := (name, cell) :: !rows)
    analyzed;
  List.iter
    (fun (name, cell) -> Hrt_stats.Table.row table [ name; cell ])
    (List.sort compare !rows);
  Hrt_stats.Table.print table

let () =
  (* Tiny hand-rolled argv scan: a mode word plus an optional --jobs N. *)
  let argv = Array.to_list Sys.argv in
  let jobs = ref (Hrt_harness.Exp.jobs_of_env ()) in
  let mode = ref "all" in
  let rec scan = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
      | Some j when j >= 1 -> jobs := j
      | _ ->
        prerr_endline "bench: --jobs expects a positive integer";
        exit 1);
      scan rest
    | ("tables" | "micro" | "all") :: rest as l ->
      mode := List.hd l;
      scan rest
    | a :: rest ->
      Printf.eprintf "bench: ignoring unknown argument %S\n" a;
      scan rest
  in
  scan (List.tl argv);
  (match !mode with
  | "tables" -> run_tables ~jobs:!jobs ()
  | "micro" -> run_micro ()
  | _ ->
    run_tables ~jobs:!jobs ();
    run_micro ());
  print_endline "bench: done."
