#!/bin/sh
# CI gate: type-check, run the full test suite, then verify that the
# observability layer costs nothing when disabled (bench/overhead_check.ml).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build @check =="
dune build @check

echo "== dune runtest =="
dune runtest

echo "== hrt_lint (zero unwaived findings) =="
dune exec hrt_lint -- --root . lib bin

echo "== observability overhead gate =="
dune exec bench/overhead_check.exe

echo "== engine core smoke bench (quick) =="
# Small sizes: proves the harness runs and the wheel still beats the
# reference heap; the full-size regression gate is CI's enginebench job.
dune exec bin/hrt_sim.exe -- enginebench --quick --out /tmp/BENCH_engine_quick.json

echo "== analytical admission smoke =="
# A feasible set must be admitted (exit 0) with a certificate that
# replays, and the overloaded one rejected (exit 1) with a witness; the
# full cross-validation corpus is CI's admit job.
dune exec bin/hrt_sim.exe -- admit query P:1000:300 P:2000:400 S:50:1000
if dune exec bin/hrt_sim.exe -- admit query P:100:90; then
  echo "check.sh: overloaded set was admitted" >&2
  exit 1
fi
dune exec bin/hrt_sim.exe -- admitbench --quick --out /tmp/BENCH_admit_quick.json

echo "== admission serving smoke =="
# Boot a real daemon + client round trips (cold/warm/batch) on a private
# socket; warm replies must be byte-identical to cold. The full-size
# regression gate is CI's serve job.
dune exec bin/hrt_sim.exe -- servebench --quick --out /tmp/BENCH_serve_quick.json

echo "check.sh: all gates passed"
