(* Observability overhead gate.

   The observability layer must be zero-cost when disabled: every
   instrumentation site guards event construction behind a single
   [Sink.enabled] branch on the null sink. This check times a fixed
   scheduler workload with the sink disabled, twice, and fails if the two
   series disagree by more than the tolerance — i.e. if the "disabled" path
   has any measurable, non-noise cost. The enabled-sink cost is reported
   informationally (it is allowed to cost something; that is what you pay
   for a trace).

   Run via bench/check.sh or `dune exec bench/overhead_check.exe`. *)

open Hrt_engine
open Hrt_core

let tolerance = 0.02 (* 2% *)

let workload ~obs () =
  let config = { Config.default with Config.admission_control = false } in
  let sys =
    Scheduler.create ~num_cpus:4 ~config ~calibrate:false ~obs
      Hrt_hw.Platform.phi
  in
  for cpu = 1 to 3 do
    ignore
      (Hrt_harness.Exp.periodic_thread sys ~cpu ~period:(Time.us 100)
         ~slice:(Time.us 60) ())
  done;
  Scheduler.run ~until:(Time.ms 10) sys

(* Min-of-N over samples of [reps] back-to-back runs each: the minimum is
   the least-noise estimate of the true cost. *)
let measure ?(samples = 9) ~reps f =
  let best = ref infinity in
  for _ = 1 to samples do
    let t0 = Sys.time () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let () =
  let reps = 20 in
  (* Warm up allocators and code paths. *)
  workload ~obs:Hrt_obs.Sink.null ();
  let disabled_a = measure ~reps (workload ~obs:Hrt_obs.Sink.null) in
  let disabled_b = measure ~reps (workload ~obs:Hrt_obs.Sink.null) in
  let enabled =
    measure ~reps (fun () -> workload ~obs:(Hrt_obs.Sink.create ()) ())
  in
  let base = Float.min disabled_a disabled_b in
  let delta = Float.abs (disabled_a -. disabled_b) /. base in
  Printf.printf "disabled: %.4fs / %.4fs (delta %.2f%%)\n" disabled_a
    disabled_b (100. *. delta);
  Printf.printf "enabled:  %.4fs (+%.1f%% over disabled; informational)\n"
    enabled
    (100. *. ((enabled -. base) /. base));
  if delta > tolerance then begin
    (* One retry: a background process can poison a series. *)
    let a = measure ~reps (workload ~obs:Hrt_obs.Sink.null) in
    let b = measure ~reps (workload ~obs:Hrt_obs.Sink.null) in
    let delta = Float.abs (a -. b) /. Float.min a b in
    Printf.printf "retry: %.4fs / %.4fs (delta %.2f%%)\n" a b (100. *. delta);
    if delta > tolerance then begin
      Printf.printf
        "FAIL: disabled-observability runs differ by more than %.0f%%\n"
        (100. *. tolerance);
      exit 1
    end
  end;
  print_endline "overhead check: OK"
